package hwgc

import (
	"encoding/json"
	"fmt"
	"io"

	"hwgc/internal/plan"
)

// This file defines the batch request/response encoding behind
// POST /v1/batch, served identically by one gcserved (internal/server runs
// every item through its own cache and worker pool) and by the gcfleet
// coordinator (internal/cluster shards items across backends by content
// key and gathers the results). Because both tiers build the response from
// the same deterministic per-item bodies and the same encoder, a fleet
// batch reply is byte-identical to a single-node reply for the same items.

// MaxBatchItems bounds the number of items one batch request may carry.
const MaxBatchItems = 256

// BatchItem is one entry of a batch request: exactly one of Collect and
// Sweep must be set.
type BatchItem struct {
	Collect *CollectRequest `json:",omitempty"`
	Sweep   *SweepRequest   `json:",omitempty"`
}

// Prep canonicalizes the item in place and returns the single-request
// endpoint path it maps to, its content key, and its canonical JSON body —
// everything a server or fleet needs to execute or route it.
func (it *BatchItem) Prep() (path, key string, body []byte, err error) {
	switch {
	case it.Collect == nil && it.Sweep == nil:
		return "", "", nil, fmt.Errorf("hwgc: batch item needs a Collect or Sweep request")
	case it.Collect != nil && it.Sweep != nil:
		return "", "", nil, fmt.Errorf("hwgc: batch item has both a Collect and a Sweep request")
	case it.Collect != nil:
		body, err = it.Collect.CanonicalJSON()
		path = "/v1/collect"
	default:
		body, err = it.Sweep.CanonicalJSON()
		path = "/v1/sweep"
	}
	if err != nil {
		return "", "", nil, err
	}
	return path, KeyBytes(body), body, nil
}

// Scale returns the workload scale the item requests (for server-side
// MaxScale admission checks).
func (it *BatchItem) Scale() int {
	switch {
	case it.Collect != nil:
		return it.Collect.Scale
	case it.Sweep != nil:
		return it.Sweep.Scale
	}
	return 0
}

// BatchRequest is the POST /v1/batch body: a list of collect/sweep items
// executed with bounded concurrency and reported individually, so one bad
// or slow item never fails the whole batch.
type BatchRequest struct {
	Items []BatchItem
}

// Validate checks the batch shape (item count bounds). Per-item validation
// is deliberately deferred to execution time so an invalid item becomes a
// per-item failure, not a whole-batch rejection.
func (r *BatchRequest) Validate() error {
	if len(r.Items) == 0 {
		return fmt.Errorf("hwgc: batch request has no items")
	}
	if len(r.Items) > MaxBatchItems {
		return fmt.Errorf("hwgc: batch request has %d items, max %d", len(r.Items), MaxBatchItems)
	}
	return nil
}

// DecodeBatchRequest strictly decodes and shape-validates a batch request.
func DecodeBatchRequest(r io.Reader) (*BatchRequest, error) {
	var req BatchRequest
	if err := plan.DecodeStrict(r, &req); err != nil {
		return nil, fmt.Errorf("hwgc: decoding batch request: %w", err)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// BatchItemResult reports the outcome of one batch item. Status carries
// the HTTP status the item would have received from the single-request
// endpoint (200, 400, 429, 500, 503, 504); Body is set only on success.
type BatchItemResult struct {
	Index  int
	Key    string `json:",omitempty"`
	Status int
	Error  string          `json:",omitempty"`
	Body   json.RawMessage `json:",omitempty"`
}

// BatchResponse is the POST /v1/batch reply: one result per request item,
// in request order, with partial failures reported per item.
type BatchResponse struct {
	OK     int
	Failed int
	Items  []BatchItemResult
}

// Tally recounts OK/Failed from the item statuses (an item is OK iff its
// status is 200).
func (r *BatchResponse) Tally() {
	r.OK, r.Failed = 0, 0
	for i := range r.Items {
		if r.Items[i].Status == 200 {
			r.OK++
		} else {
			r.Failed++
		}
	}
}

// Encode writes the response in the service's wire format: indented JSON
// with a trailing newline, deterministic byte for byte.
func (r *BatchResponse) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeBatchResponse strictly decodes a batch response (used by gcload and
// the fleet tests to check replies).
func DecodeBatchResponse(r io.Reader) (*BatchResponse, error) {
	var resp BatchResponse
	if err := plan.DecodeStrict(r, &resp); err != nil {
		return nil, fmt.Errorf("hwgc: decoding batch response: %w", err)
	}
	return &resp, nil
}
