package hwgc

import (
	"bytes"
	"strings"
	"testing"
)

func TestBatchItemPrep(t *testing.T) {
	it := BatchItem{Collect: &CollectRequest{Bench: "jlisp", Config: Config{Cores: 2}}}
	path, key, body, err := it.Prep()
	if err != nil {
		t.Fatal(err)
	}
	if path != "/v1/collect" {
		t.Errorf("path = %q, want /v1/collect", path)
	}
	if key != KeyBytes(body) {
		t.Errorf("key %q does not match KeyBytes of the canonical body", key)
	}
	want, err := it.Collect.Key()
	if err != nil {
		t.Fatal(err)
	}
	if key != want {
		t.Errorf("batch item key %q != single-request key %q", key, want)
	}

	sw := BatchItem{Sweep: &SweepRequest{Bench: "jlisp", Cores: []int{1, 2}}}
	path, _, _, err = sw.Prep()
	if err != nil {
		t.Fatal(err)
	}
	if path != "/v1/sweep" {
		t.Errorf("sweep path = %q, want /v1/sweep", path)
	}

	for name, bad := range map[string]BatchItem{
		"empty": {},
		"both":  {Collect: &CollectRequest{Bench: "jlisp"}, Sweep: &SweepRequest{Bench: "jlisp"}},
		"bogus": {Collect: &CollectRequest{Bench: "no-such-bench"}},
	} {
		if _, _, _, err := bad.Prep(); err == nil {
			t.Errorf("%s item accepted", name)
		}
	}
}

func TestDecodeBatchRequest(t *testing.T) {
	good := `{"Items":[{"Collect":{"Bench":"jlisp","Config":{}}},{"Sweep":{"Bench":"javac","Config":{}}}]}`
	req, err := DecodeBatchRequest(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Items) != 2 {
		t.Fatalf("decoded %d items, want 2", len(req.Items))
	}

	for name, bad := range map[string]string{
		"empty items":   `{"Items":[]}`,
		"no items":      `{}`,
		"unknown field": `{"Items":[{"Collect":{"Bench":"jlisp","Config":{}}}],"Nope":1}`,
		"trailing data": `{"Items":[{"Collect":{"Bench":"jlisp","Config":{}}}]} garbage`,
		"not json":      `what`,
	} {
		if _, err := DecodeBatchRequest(strings.NewReader(bad)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	var many strings.Builder
	many.WriteString(`{"Items":[`)
	for i := 0; i <= MaxBatchItems; i++ {
		if i > 0 {
			many.WriteString(",")
		}
		many.WriteString(`{"Collect":{"Bench":"jlisp","Config":{}}}`)
	}
	many.WriteString(`]}`)
	if _, err := DecodeBatchRequest(strings.NewReader(many.String())); err == nil {
		t.Errorf("oversized batch (%d items) accepted", MaxBatchItems+1)
	}
}

func TestBatchResponseTallyAndEncode(t *testing.T) {
	resp := BatchResponse{Items: []BatchItemResult{
		{Index: 0, Status: 200, Body: []byte(`{"Key":"k"}`)},
		{Index: 1, Status: 429, Error: "queue full"},
		{Index: 2, Status: 400, Error: "invalid"},
	}}
	resp.Tally()
	if resp.OK != 1 || resp.Failed != 2 {
		t.Fatalf("tally OK=%d Failed=%d, want 1/2", resp.OK, resp.Failed)
	}
	var a, b bytes.Buffer
	if err := resp.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := resp.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("batch response encoding is not deterministic")
	}
	back, err := DecodeBatchResponse(&a)
	if err != nil {
		t.Fatal(err)
	}
	if back.OK != 1 || back.Failed != 2 || len(back.Items) != 3 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}
