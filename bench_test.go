// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI), plus the ablations. The simulated coprocessor's results are
// deterministic clock-cycle counts, reported as custom metrics
// ("gc-clock-cycles", "speedup", "empty-%", ...); Go's wall-clock ns/op for
// those benchmarks measures only the simulator itself. The software baseline
// collectors (BenchmarkBaseline*) are real parallel collectors, so for them
// ns/op is the measurement.
//
// Mapping to the paper:
//
//	BenchmarkFig5      — Figure 5, speedup vs. cores per benchmark
//	BenchmarkFig6      — Figure 6, ditto with +20 cycles memory latency
//	BenchmarkTab1      — Table I, empty-work-list fraction
//	BenchmarkTab2      — Table II, stall breakdown at 16 cores
//	BenchmarkFIFO      — ablation A1, header FIFO capacity (cup)
//	BenchmarkMarkOpt   — ablation A2, unlocked mark-read (javac)
//	BenchmarkBandwidth — ablation A3, memory bandwidth (db)
//	BenchmarkBaseline  — ablation A4, software-parallel collectors
package hwgc

import (
	"fmt"
	"testing"

	"hwgc/internal/machine"
)

// benchSeed keeps every benchmark deterministic.
const benchSeed = 42

// runSim builds the workload and collects once per iteration, reporting the
// simulated clock cycles of the last run.
func runSim(b *testing.B, bench string, cfg Config) Stats {
	b.Helper()
	var st Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := BuildWorkload(bench, 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err = Collect(h, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Cycles), "gc-clock-cycles")
	return st
}

// benchScaling implements Fig. 5 and Fig. 6: per benchmark, per core count,
// report simulated cycles and the speedup over the 1-core run.
func benchScaling(b *testing.B, base Config) {
	for _, bench := range Workloads() {
		b.Run(bench, func(b *testing.B) {
			baseCycles := map[string]int64{}
			for _, cores := range PaperCoreCounts {
				b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
					cfg := base
					cfg.Cores = cores
					st := runSim(b, bench, cfg)
					if cores == 1 {
						baseCycles[bench] = st.Cycles
					}
					if c1, ok := baseCycles[bench]; ok && st.Cycles > 0 {
						b.ReportMetric(float64(c1)/float64(st.Cycles), "speedup")
					}
				})
			}
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: GC speedup for 1..16 cores with the
// prototype's memory parameters.
func BenchmarkFig5(b *testing.B) { benchScaling(b, Config{}) }

// BenchmarkFig6 regenerates Figure 6: the same sweep with an artificial 20
// clock cycles added to every memory access — scalability improves because
// more stalled cores are needed to exhaust the memory bandwidth.
func BenchmarkFig6(b *testing.B) { benchScaling(b, Config{ExtraMemLatency: 20}) }

// BenchmarkTab1 regenerates Table I: the fraction of clock cycles during
// which the work list is empty.
func BenchmarkTab1(b *testing.B) {
	for _, bench := range Workloads() {
		b.Run(bench, func(b *testing.B) {
			for _, cores := range PaperCoreCounts {
				b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
					st := runSim(b, bench, Config{Cores: cores})
					b.ReportMetric(100*st.EmptyWorklistFraction(), "empty-%")
				})
			}
		})
	}
}

// BenchmarkTab2 regenerates Table II: the per-cause stall breakdown of a
// 16-core collection, as mean stall cycles per core.
func BenchmarkTab2(b *testing.B) {
	for _, bench := range Workloads() {
		b.Run(bench, func(b *testing.B) {
			st := runSim(b, bench, Config{Cores: 16})
			m := st.Mean()
			b.ReportMetric(float64(m.ScanLockStall), "scan-lock-stall")
			b.ReportMetric(float64(m.FreeLockStall), "free-lock-stall")
			b.ReportMetric(float64(m.HeaderLockStall), "header-lock-stall")
			b.ReportMetric(float64(m.BodyLoadStall), "body-load-stall")
			b.ReportMetric(float64(m.BodyStoreStall), "body-store-stall")
			b.ReportMetric(float64(m.HeaderLoadStall), "header-load-stall")
			b.ReportMetric(float64(m.HeaderStoreStall), "header-store-stall")
		})
	}
}

// BenchmarkFIFO is ablation A1: cup at 16 cores across header-FIFO
// capacities. Overflow forces gray-header loads inside the scan critical
// section; the scan-lock stall metric shows the effect.
func BenchmarkFIFO(b *testing.B) {
	for _, capacity := range []int{1024, 8192, 32768, 131072} {
		b.Run(fmt.Sprintf("capacity=%d", capacity), func(b *testing.B) {
			st := runSim(b, "cup", Config{Cores: 16, FIFOCapacity: capacity})
			b.ReportMetric(float64(st.Mean().ScanLockStall), "scan-lock-stall")
			b.ReportMetric(float64(st.FIFODrops), "fifo-drops")
		})
	}
}

// BenchmarkMarkOpt is ablation A2: javac at 16 cores with and without the
// unlocked mark-read optimization the paper proposes in Section VI-B.
func BenchmarkMarkOpt(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("opt=%v", on), func(b *testing.B) {
			st := runSim(b, "javac", Config{Cores: 16, OptUnlockedMarkRead: on})
			b.ReportMetric(float64(st.Mean().HeaderLockStall), "header-lock-stall")
		})
	}
}

// BenchmarkBandwidth is ablation A3: db's 16-core speedup as a function of
// memory bandwidth (the second scalability limiter named in Section VII).
func BenchmarkBandwidth(b *testing.B) {
	for _, bw := range []int{2, 4, 6, 8, 12} {
		b.Run(fmt.Sprintf("bw=%d", bw), func(b *testing.B) {
			var c1 int64
			for _, cores := range []int{1, 16} {
				st := runSim(b, "db", Config{Cores: cores, MemBandwidth: bw})
				if cores == 1 {
					c1 = st.Cycles
				} else {
					b.ReportMetric(float64(c1)/float64(st.Cycles), "speedup16")
				}
			}
		})
	}
}

// BenchmarkBaseline is ablation A4: the software-parallel collectors of the
// paper's Section III survey, as real goroutine-parallel collectors. Here
// ns/op is the true measurement; sync-ops/object and wasted words quantify
// the trade-offs the paper discusses.
func BenchmarkBaseline(b *testing.B) {
	for _, name := range Baselines() {
		b.Run(name, func(b *testing.B) {
			for _, workers := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					var res BaselineResult
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						h, err := BuildWorkload("db", 1, benchSeed)
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						res, err = RunBaseline(name, h, workers)
						if err != nil {
							b.Fatal(err)
						}
					}
					if res.LiveObjects > 0 {
						b.ReportMetric(float64(res.Sync.Total())/float64(res.LiveObjects), "sync-ops/obj")
						b.ReportMetric(float64(res.WastedWords), "wasted-words")
					}
				})
			}
		})
	}
}

// BenchmarkReference measures the untimed sequential reference collector —
// the software specification every other collector is checked against.
func BenchmarkReference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := BuildWorkload("db", 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, _, err := CollectSequential(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput reports how fast the cycle-stepped simulator
// itself runs (simulated clock cycles per second of wall time), for sizing
// larger experiments.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := BuildWorkload("javacc", 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := Collect(h, Config{Cores: 16})
		if err != nil {
			b.Fatal(err)
		}
		cycles += st.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkFastForward quantifies the event-driven fast-forward by running
// the same latency-bound collection fully stepped and with fast-forwarding
// enabled (the default). The reported gc-clock-cycles must be identical in
// both modes; only the wall time may differ.
func BenchmarkFastForward(b *testing.B) {
	cfg := Config{Cores: 1, ExtraMemLatency: 20}
	for _, mode := range []struct {
		name string
		noFF bool
	}{
		{"stepped", true},
		{"event-driven", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var cycles, skipped int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h, err := BuildWorkload("javacc", 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				m, err := machine.New(h, cfg)
				if err != nil {
					b.Fatal(err)
				}
				m.NoFastForward = mode.noFF
				b.StartTimer()
				st, err := m.Collect()
				if err != nil {
					b.Fatal(err)
				}
				cycles = st.Cycles
				_, skipped = m.FastForwardStats()
			}
			b.ReportMetric(float64(cycles), "gc-clock-cycles")
			b.ReportMetric(100*float64(skipped)/float64(cycles), "skipped-%")
		})
	}
}

// BenchmarkStride is extension E1 (paper §VII): sub-object work distribution
// on the blob workload, whose object-level parallelism is bounded by its
// object count.
func BenchmarkStride(b *testing.B) {
	for _, stride := range []int{0, 64} {
		b.Run(fmt.Sprintf("stride=%d", stride), func(b *testing.B) {
			var c1 int64
			for _, cores := range []int{1, 16} {
				st := runSim(b, "blob", Config{Cores: cores, StrideWords: stride})
				if cores == 1 {
					c1 = st.Cycles
				} else {
					b.ReportMetric(float64(c1)/float64(st.Cycles), "speedup16")
				}
			}
		})
	}
}

// BenchmarkHeaderCache is extension E2 (paper §VII): an on-chip header cache
// absorbing repeated forwarding-pointer loads (javac's hub traffic).
func BenchmarkHeaderCache(b *testing.B) {
	for _, lines := range []int{0, 4096} {
		b.Run(fmt.Sprintf("lines=%d", lines), func(b *testing.B) {
			st := runSim(b, "javac", Config{Cores: 16, HeaderCacheLines: lines})
			b.ReportMetric(float64(st.Mean().HeaderLoadStall), "header-load-stall")
		})
	}
}

// BenchmarkConcurrent is extension E3 (paper §V-B outlook): a concurrent
// collection with a churning mutator on the coprocessor's mutator port.
// The key metric is the worst single mutator operation latency — the
// concurrent analogue of the stop-the-world pause.
func BenchmarkConcurrent(b *testing.B) {
	var ms MutatorStats
	var st Stats
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h, err := BuildWorkload("jlisp", 1, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		driver := NewConcurrentChurn(h, benchSeed, 1<<40, 200)
		b.StartTimer()
		st, ms, err = CollectConcurrent(h, Config{Cores: 8}, driver, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(st.Cycles), "gc-clock-cycles")
	b.ReportMetric(float64(ms.MaxOpLatency), "worst-mutator-op")
	b.ReportMetric(float64(ms.Ops), "mutator-ops")
}

// BenchmarkBarrierModes is extension E4: the same concurrent collection under
// each write-barrier mode, through the config-driven mutator path the serving
// stack uses. The reported gc-clock-cycles and barrier-cycles are exact
// deterministic simulation outputs; CI pins them against BENCH_8.json so a
// change to barrier cost attribution cannot land silently.
func BenchmarkBarrierModes(b *testing.B) {
	for _, mode := range []BarrierMode{BarrierNone, BarrierSATB, BarrierIncUpdate} {
		name := string(mode)
		if name == "" {
			name = "none"
		}
		b.Run(name, func(b *testing.B) {
			var st Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h, err := BuildWorkload("jlisp", 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				st, err = Collect(h, Config{Cores: 8, MutatorOps: 1 << 40, BarrierMode: mode})
				if err != nil {
					b.Fatal(err)
				}
			}
			if st.Mutator == nil {
				b.Fatal("concurrent run reported no mutator stats")
			}
			b.ReportMetric(float64(st.Cycles), "gc-clock-cycles")
			b.ReportMetric(float64(st.Mutator.BarrierCycles), "barrier-cycles")
			b.ReportMetric(float64(st.Mutator.FloatingWords), "floating-words")
		})
	}
}

// BenchmarkNUMAModes is extension E5: the same collection on the flat
// machine and on a 4-domain NUMA machine under naive and locality-aware
// tospace placement. The reported gc-clock-cycles and the local/remote
// access split are exact deterministic simulation outputs; CI pins them
// against BENCH_9.json so a change to domain classification or placement
// cannot land silently.
func BenchmarkNUMAModes(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"flat", Config{Cores: 8}},
		{"naive", Config{Cores: 8, NUMADomains: 4}},
		{"local", Config{Cores: 8, NUMADomains: 4, NUMAPlacement: PlacementLocal}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var st Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h, err := BuildWorkload("jlisp", 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				st, err = Collect(h, mode.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Cycles), "gc-clock-cycles")
			b.ReportMetric(float64(st.Mem.LocalAccesses), "local-accesses")
			b.ReportMetric(float64(st.Mem.RemoteAccesses), "remote-accesses")
		})
	}
}

// BenchmarkCacheModel is the cache half of extension E5: the collection
// with the private-L1/shared-L2 model on, alone and composed with NUMA.
// gc-clock-cycles and the hit/miss words are exact deterministic outputs;
// CI pins them against BENCH_9.json so a change to tag handling, MSHR
// accounting or the hit-latency path cannot land silently.
func BenchmarkCacheModel(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"cache", Config{Cores: 8, L1Sets: 16}},
		{"cache-numa", Config{Cores: 8, L1Sets: 16, NUMADomains: 4}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var st Stats
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h, err := BuildWorkload("jlisp", 1, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				st, err = Collect(h, mode.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			if st.Mem.L1Hits == 0 {
				b.Fatal("cache run recorded no L1 hits")
			}
			b.ReportMetric(float64(st.Cycles), "gc-clock-cycles")
			b.ReportMetric(float64(st.Mem.L1Hits), "l1-hit-words")
			b.ReportMetric(float64(st.Mem.L2Hits), "l2-hit-words")
			b.ReportMetric(float64(st.Mem.L2Misses), "dram-words")
		})
	}
}
