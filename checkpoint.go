package hwgc

import (
	"fmt"

	"hwgc/internal/core"
	"hwgc/internal/machine"
	"hwgc/internal/snapshot"
)

// This file exposes checkpoint/restore for the simulator: a collection can
// be suspended between any two clock cycles, serialized to a snapshot, and
// later resumed — in the same process or another one — finishing with
// Stats and heap image bit-identical to the uninterrupted run. It is the
// software stand-in for the FPGA prototype's state readback (paper Section
// VI-A); cmd/gcreplay builds record/resume/bisect on it and gcserved uses
// it for preempt/resume of heavy requests.

// Collection is an in-progress, suspendable collection cycle.
type Collection struct {
	m *machine.Machine
}

// StartCollection begins a collection over h without running it; drive it
// with StepCycles and Finish. The heap is owned by the collection until
// Finish returns.
func StartCollection(h *Heap, cfg Config) (*Collection, error) {
	m, err := machine.New(h, cfg)
	if err != nil {
		return nil, err
	}
	m.BeginCollect()
	return &Collection{m: m}, nil
}

// ResumeCollection reconstructs a suspended collection from snapshot bytes
// produced by Collection.Snapshot. The restored collection owns a private
// copy of the captured heap.
func ResumeCollection(data []byte) (*Collection, error) {
	st, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	m, err := machine.RestoreMachine(st)
	if err != nil {
		return nil, err
	}
	return &Collection{m: m}, nil
}

// Heap returns the heap the collection operates on.
func (c *Collection) Heap() *Heap { return c.m.Heap() }

// Cycle returns the collection's current clock cycle.
func (c *Collection) Cycle() int64 { return c.m.Cycle() }

// StepCycle advances the collection by one clock cycle (or one provably
// dead fast-forward jump) and reports whether it has terminated.
func (c *Collection) StepCycle() (done bool, err error) { return c.m.StepCycle() }

// StepCycles advances the collection until at least n more cycles have
// elapsed, it terminates, or an error occurs.
func (c *Collection) StepCycles(n int64) (done bool, err error) { return c.m.StepCycles(n) }

// Snapshot serializes the collection's complete state. It fails once the
// collection has terminated (there is nothing left to resume — call Finish)
// or after an error.
func (c *Collection) Snapshot() ([]byte, error) {
	st, err := c.m.Snapshot()
	if err != nil {
		return nil, err
	}
	return snapshot.Encode(st), nil
}

// Finish drives the collection to completion (if it is not already done)
// and returns its statistics; the heap has then been flipped and compacted,
// exactly as an uninterrupted Collect would have left it.
func (c *Collection) Finish() (Stats, error) { return c.m.Resume() }

// DiffSnapshots decodes two snapshots and returns their field-level
// differences, one line per differing field (capped), skipping the named
// top-level fields. Identical snapshots yield an empty slice.
func DiffSnapshots(a, b []byte, ignore ...string) ([]string, error) {
	sa, err := snapshot.Decode(a)
	if err != nil {
		return nil, fmt.Errorf("hwgc: snapshot a: %w", err)
	}
	sb, err := snapshot.Decode(b)
	if err != nil {
		return nil, fmt.Errorf("hwgc: snapshot b: %w", err)
	}
	return snapshot.Diff(sa, sb, ignore...), nil
}

// RequestCollection is a suspendable variant of NewCollectResponse: it runs
// the simulation a canonical CollectRequest describes, but can checkpoint
// between cycles and resume in a later process, and its Response is byte-
// identical to the uninterrupted NewCollectResponse encoding. gcserved uses
// it to preempt heavy requests on shutdown and resume them on restart.
type RequestCollection struct {
	req    CollectRequest // canonicalized
	key    string
	plan   *Plan
	before *Graph // pre-GC oracle graph, captured when req.Verify
	col    *Collection
}

// buildRequestHeap builds the fresh heap and plan a canonicalized request
// describes. Deterministic: the same canonical request always builds the
// same heap image.
func buildRequestHeap(req *CollectRequest) (*Heap, *Plan, error) {
	if req.Plan != nil {
		h, err := req.Plan.BuildHeap(core.DefaultHeadroom)
		if err != nil {
			return nil, nil, fmt.Errorf("hwgc: building plan: %w", err)
		}
		return h, req.Plan, nil
	}
	return core.BuildBench(req.Bench, req.Scale, req.Seed)
}

// StartCollectRequest canonicalizes req, builds its heap and begins the
// collection, suspended at cycle 0.
func StartCollectRequest(req CollectRequest) (*RequestCollection, error) {
	key, err := req.Key() // canonicalizes req in place
	if err != nil {
		return nil, err
	}
	h, p, err := buildRequestHeap(&req)
	if err != nil {
		return nil, err
	}
	rc := &RequestCollection{req: req, key: key, plan: p}
	if req.Verify && !rc.concurrent() {
		if rc.before, err = Snapshot(h); err != nil {
			return nil, fmt.Errorf("hwgc: pre-GC snapshot: %w", err)
		}
	}
	if rc.col, err = StartCollection(h, req.Config); err != nil {
		return nil, err
	}
	return rc, nil
}

// ResumeCollectRequest reconstructs a suspended request collection from a
// snapshot taken by its Snapshot method. The request must be the same one
// the snapshot was taken under (the configs are cross-checked); the pre-GC
// verification graph and the plan statistics are rebuilt deterministically
// from the request, the machine state comes from the snapshot.
func ResumeCollectRequest(req CollectRequest, snap []byte) (*RequestCollection, error) {
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	st, err := snapshot.Decode(snap)
	if err != nil {
		return nil, err
	}
	if want := req.Config.WithDefaults(); st.Config != want {
		return nil, fmt.Errorf("hwgc: snapshot config %+v does not match request config %+v", st.Config, want)
	}
	m, err := machine.RestoreMachine(st)
	if err != nil {
		return nil, err
	}
	rc := &RequestCollection{req: req, key: key, col: &Collection{m: m}}
	if req.Plan != nil {
		rc.plan = req.Plan
	} else {
		if _, rc.plan, err = core.BuildBench(req.Bench, req.Scale, req.Seed); err != nil {
			return nil, err
		}
	}
	if req.Verify && !rc.concurrent() {
		h, _, err := buildRequestHeap(&rc.req)
		if err != nil {
			return nil, err
		}
		if rc.before, err = Snapshot(h); err != nil {
			return nil, fmt.Errorf("hwgc: pre-GC snapshot: %w", err)
		}
	}
	return rc, nil
}

// concurrent reports whether the request runs the built-in concurrent
// mutator, in which case the stop-the-world oracle cannot predict the
// outcome and verification uses the structural integrity check instead.
func (rc *RequestCollection) concurrent() bool { return rc.req.Config.MutatorOps > 0 }

// Key returns the canonical request hash (the serving tier's cache key).
func (rc *RequestCollection) Key() string { return rc.key }

// Cycle returns the collection's current clock cycle.
func (rc *RequestCollection) Cycle() int64 { return rc.col.Cycle() }

// StepCycles advances the collection; see Collection.StepCycles.
func (rc *RequestCollection) StepCycles(n int64) (done bool, err error) {
	return rc.col.StepCycles(n)
}

// Snapshot serializes the collection's state for a later
// ResumeCollectRequest.
func (rc *RequestCollection) Snapshot() ([]byte, error) { return rc.col.Snapshot() }

// Response finishes the collection (driving it to completion if needed),
// verifies it when the request asked for verification, and returns the
// response — byte-identical, once encoded, to what NewCollectResponse
// produces for the same request uninterrupted.
func (rc *RequestCollection) Response() (*CollectResponse, error) {
	st, err := rc.col.Finish()
	if err != nil {
		return nil, err
	}
	if rc.req.Verify {
		if rc.concurrent() {
			if err := rc.col.Heap().CheckIntegrity(); err != nil {
				return nil, fmt.Errorf("hwgc: concurrent collection verification failed: %w", err)
			}
		} else if err := Verify(rc.before, rc.col.Heap()); err != nil {
			return nil, fmt.Errorf("hwgc: collection verification failed: %w", err)
		}
	}
	bench := rc.req.Bench
	if rc.req.Plan != nil {
		bench = "plan"
	}
	liveObj, liveWords := rc.plan.LiveStats()
	return &CollectResponse{
		Key:   rc.key,
		Bench: bench,
		Scale: rc.req.Scale,
		Seed:  rc.req.Seed,
		Result: RunResult{
			Benchmark:   bench,
			Stats:       st,
			PlanObjects: len(rc.plan.Objs),
			PlanWords:   rc.plan.Words(),
			LiveObjects: liveObj,
			LiveWords:   liveWords,
		},
	}, nil
}
