// Command benchdiff records and compares `go test -bench` results, serving
// as the repository's benchmark-regression gate (stdlib only, no benchstat
// dependency).
//
// Record a baseline:
//
//	go test -run '^$' -bench 'Fig6' -benchtime 2x . | go run ./cmd/benchdiff -record -out BENCH_4.json
//
// Regenerate only the benchmarks that were re-run, keeping the rest of the
// committed baseline (and its note) intact:
//
//	go test -run '^$' -bench 'Snapshot' -benchtime 2x . | go run ./cmd/benchdiff -update -out BENCH_4.json
//
// Compare a fresh run against it:
//
//	go test -run '^$' -bench 'Fig6' -benchtime 2x . | go run ./cmd/benchdiff -baseline BENCH_4.json
//
// The comparison fails (exit 1) when
//
//   - the geometric mean of the per-benchmark ns/op ratios (new/old)
//     exceeds -threshold (default 1.10, i.e. a >10% mean slowdown),
//   - any metric listed in -exact (default "gc-clock-cycles") differs at
//     all — the simulator's cycle counts are deterministic, so any drift is
//     a correctness bug, not noise — or
//   - a baseline benchmark is missing from the new run (a gate that cannot
//     run is a gate that cannot fail).
//
// Wall-clock noise on shared CI runners is expected; only the geomean over
// the whole suite must stay within the threshold, not each benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result: Go's wall-clock ns/op plus any custom
// metrics reported via b.ReportMetric.
type Benchmark struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the committed reference file.
type Baseline struct {
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// cpuSuffix strips the trailing -GOMAXPROCS go test appends to benchmark
// names, so baselines transfer between machines with different core counts.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from `go test -bench` output.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		// Name, iteration count, then (value, unit) pairs.
		if len(f) < 4 || len(f)%2 != 0 {
			continue
		}
		if _, err := strconv.Atoi(f[1]); err != nil {
			continue
		}
		b := Benchmark{Name: cpuSuffix.ReplaceAllString(f[0], "")}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad value %q in %q", f[i], line)
			}
			if f[i+1] == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[f[i+1]] = v
		}
		if b.NsPerOp == 0 {
			return nil, fmt.Errorf("benchdiff: no ns/op in %q", line)
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark results in input")
	}
	return out, nil
}

// merge folds fresh results into an existing baseline: benchmarks present
// in fresh replace their baseline entries (or are appended, sorted among the
// newcomers), benchmarks absent from fresh are kept, and the note is
// preserved unless a new one is given. This is what -update uses to
// regenerate part of a committed baseline from a partial bench run.
func merge(base Baseline, fresh []Benchmark, note string) Baseline {
	freshBy := map[string]Benchmark{}
	for _, b := range fresh {
		freshBy[b.Name] = b
	}
	out := Baseline{Note: base.Note, Benchmarks: make([]Benchmark, 0, len(base.Benchmarks)+len(fresh))}
	if note != "" {
		out.Note = note
	}
	for _, old := range base.Benchmarks {
		if nw, ok := freshBy[old.Name]; ok {
			out.Benchmarks = append(out.Benchmarks, nw)
			delete(freshBy, old.Name)
		} else {
			out.Benchmarks = append(out.Benchmarks, old)
		}
	}
	added := make([]Benchmark, 0, len(freshBy))
	for _, b := range freshBy {
		added = append(added, b)
	}
	sort.Slice(added, func(i, j int) bool { return added[i].Name < added[j].Name })
	out.Benchmarks = append(out.Benchmarks, added...)
	return out
}

// compare checks fresh results against the baseline and writes a report to
// w. It returns an error describing the first gate that failed, or nil.
func compare(base Baseline, fresh []Benchmark, threshold float64, exact []string, w io.Writer) error {
	freshBy := map[string]Benchmark{}
	for _, b := range fresh {
		freshBy[b.Name] = b
	}
	exactSet := map[string]bool{}
	for _, m := range exact {
		if m != "" {
			exactSet[m] = true
		}
	}

	var missing, exactBad []string
	var logSum float64
	var n int
	type row struct {
		name  string
		ratio float64
	}
	var rows []row
	for _, old := range base.Benchmarks {
		nw, ok := freshBy[old.Name]
		if !ok {
			missing = append(missing, old.Name)
			continue
		}
		ratio := nw.NsPerOp / old.NsPerOp
		logSum += math.Log(ratio)
		n++
		rows = append(rows, row{old.Name, ratio})
		for m := range exactSet {
			ov, oHas := old.Metrics[m]
			nv, nHas := nw.Metrics[m]
			if oHas != nHas || ov != nv {
				exactBad = append(exactBad, fmt.Sprintf("%s: %s %v -> %v", old.Name, m, ov, nv))
			}
		}
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	for i, r := range rows {
		if i == 5 {
			fmt.Fprintf(w, "  ... %d more\n", len(rows)-i)
			break
		}
		fmt.Fprintf(w, "  %-60s %+.1f%%\n", r.name, 100*(r.ratio-1))
	}
	geomean := math.Exp(logSum / float64(max(n, 1)))
	fmt.Fprintf(w, "geomean ns/op ratio over %d benchmarks: %.3f (threshold %.3f)\n", n, geomean, threshold)

	switch {
	case len(exactBad) > 0:
		return fmt.Errorf("deterministic metrics changed:\n  %s", strings.Join(exactBad, "\n  "))
	case len(missing) > 0:
		return fmt.Errorf("baseline benchmarks missing from this run: %s", strings.Join(missing, ", "))
	case n == 0:
		return fmt.Errorf("no benchmarks in common with the baseline")
	case geomean > threshold:
		return fmt.Errorf("geomean ns/op regression %.1f%% exceeds %.1f%%", 100*(geomean-1), 100*(threshold-1))
	}
	return nil
}

func main() {
	record := flag.Bool("record", false, "record a new baseline instead of comparing")
	update := flag.Bool("update", false, "merge this run into the baseline at -out, keeping benchmarks that were not re-run")
	out := flag.String("out", "BENCH_4.json", "baseline file to write with -record or -update")
	baselinePath := flag.String("baseline", "", "baseline file to compare against")
	threshold := flag.Float64("threshold", 1.10, "maximum allowed geomean ns/op ratio (new/old)")
	exactList := flag.String("exact", "gc-clock-cycles", "comma-separated metrics that must match exactly")
	note := flag.String("note", "", "free-form note stored in a recorded baseline")
	flag.Parse()

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *record || *update {
		base := Baseline{Note: *note, Benchmarks: results}
		if *update {
			raw, err := os.ReadFile(*out)
			if err != nil && !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			var prev Baseline
			if err == nil {
				if err := json.Unmarshal(raw, &prev); err != nil {
					fmt.Fprintf(os.Stderr, "benchdiff: bad baseline %s: %v\n", *out, err)
					os.Exit(2)
				}
			}
			base = merge(prev, results, *note)
		}
		buf, err := json.MarshalIndent(base, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("recorded %d benchmarks to %s\n", len(base.Benchmarks), *out)
		return
	}

	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -record or -baseline FILE")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: bad baseline %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if err := compare(base, results, *threshold, strings.Split(*exactList, ","), os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("PASS: within threshold, deterministic metrics unchanged")
}
