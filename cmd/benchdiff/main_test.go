package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hwgc
BenchmarkSimulatorThroughput-16         12      52000000 ns/op        1980000 sim-cycles/s
BenchmarkFig6/javacc/cores=1            1       95000000 ns/op        6741031 gc-clock-cycles
BenchmarkFig6/javacc/cores=16-4         1        5000000 ns/op         215000 gc-clock-cycles          31.4 speedup
PASS
ok      hwgc    2.1s
`

func parsed(t *testing.T, s string) []Benchmark {
	t.Helper()
	b, err := parseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParseBench(t *testing.T) {
	bs := parsed(t, sampleOutput)
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(bs))
	}
	if bs[0].Name != "BenchmarkSimulatorThroughput" {
		t.Errorf("cpu suffix not stripped: %q", bs[0].Name)
	}
	if bs[2].Name != "BenchmarkFig6/javacc/cores=16" {
		t.Errorf("cpu suffix not stripped from subbenchmark: %q", bs[2].Name)
	}
	if bs[1].NsPerOp != 95000000 {
		t.Errorf("ns/op = %v, want 95000000", bs[1].NsPerOp)
	}
	if bs[1].Metrics["gc-clock-cycles"] != 6741031 {
		t.Errorf("gc-clock-cycles = %v, want 6741031", bs[1].Metrics["gc-clock-cycles"])
	}
	if _, err := parseBench(strings.NewReader("PASS\nok hwgc 1s\n")); err == nil {
		t.Error("expected error for input with no benchmarks")
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := Baseline{Benchmarks: parsed(t, sampleOutput)}
	fresh := parsed(t, strings.ReplaceAll(sampleOutput, "95000000", "99000000")) // +4%
	var sb strings.Builder
	if err := compare(base, fresh, 1.10, []string{"gc-clock-cycles"}, &sb); err != nil {
		t.Fatalf("4%% slowdown on one benchmark must pass a 10%% geomean gate: %v", err)
	}
}

func TestCompareGeomeanRegression(t *testing.T) {
	base := Baseline{Benchmarks: parsed(t, sampleOutput)}
	fresh := parsed(t, sampleOutput)
	for i := range fresh {
		fresh[i].NsPerOp *= 1.25 // +25% across the board
	}
	var sb strings.Builder
	err := compare(base, fresh, 1.10, nil, &sb)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("expected geomean regression failure, got %v", err)
	}
}

func TestCompareExactMetricDrift(t *testing.T) {
	base := Baseline{Benchmarks: parsed(t, sampleOutput)}
	fresh := parsed(t, strings.ReplaceAll(sampleOutput, "6741031 gc-clock-cycles", "6741030 gc-clock-cycles"))
	var sb strings.Builder
	err := compare(base, fresh, 1.10, []string{"gc-clock-cycles"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "deterministic") {
		t.Fatalf("a 1-cycle drift must fail the gate, got %v", err)
	}
	// Wall-clock-dependent metrics are not gated.
	fresh = parsed(t, strings.ReplaceAll(sampleOutput, "1980000 sim-cycles/s", "990000 sim-cycles/s"))
	if err := compare(base, fresh, 1.10, []string{"gc-clock-cycles"}, &sb); err != nil {
		t.Fatalf("sim-cycles/s is noise and must not be gated: %v", err)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := Baseline{Benchmarks: parsed(t, sampleOutput)}
	fresh := parsed(t, sampleOutput)[:2] // drop one
	var sb strings.Builder
	err := compare(base, fresh, 1.10, nil, &sb)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("a silently skipped benchmark must fail the gate, got %v", err)
	}
}

func TestMergeUpdatesBaseline(t *testing.T) {
	base := Baseline{
		Note: "original note",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkA", NsPerOp: 100, Metrics: map[string]float64{"gc-clock-cycles": 10}},
			{Name: "BenchmarkB", NsPerOp: 200},
			{Name: "BenchmarkC", NsPerOp: 300},
		},
	}
	fresh := []Benchmark{
		{Name: "BenchmarkB", NsPerOp: 250}, // replaces in place
		{Name: "BenchmarkZ", NsPerOp: 50},  // appended, sorted
		{Name: "BenchmarkD", NsPerOp: 75},  // appended, sorted
	}
	got := merge(base, fresh, "")
	if got.Note != "original note" {
		t.Errorf("note not preserved: %q", got.Note)
	}
	names := make([]string, len(got.Benchmarks))
	for i, b := range got.Benchmarks {
		names[i] = b.Name
	}
	want := []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkD", "BenchmarkZ"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("merged order %v, want %v", names, want)
	}
	if got.Benchmarks[1].NsPerOp != 250 {
		t.Errorf("BenchmarkB not replaced: %+v", got.Benchmarks[1])
	}
	if got.Benchmarks[0].Metrics["gc-clock-cycles"] != 10 {
		t.Errorf("untouched benchmark lost metrics: %+v", got.Benchmarks[0])
	}
	if n := merge(base, fresh, "new note"); n.Note != "new note" {
		t.Errorf("explicit note not applied: %q", n.Note)
	}
}
