// Command experiments regenerates every table and figure of the paper's
// evaluation section from the simulator, printing measured values next to
// the paper's published numbers, plus the ablations discussed in the paper.
//
// Usage:
//
//	experiments [flags] <fig5|fig6|tab1|tab2|fifo|markopt|bandwidth|numa|baselines|all>
//
// Flags:
//
//	-scale N    workload scale factor (default 1)
//	-seed N     workload seed (default 42)
//	-verify     verify every collection against the oracle (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hwgc"
	"hwgc/internal/baseline"
	"hwgc/internal/experiments"
	"hwgc/internal/stats"
)

var (
	scale    = flag.Int("scale", 1, "workload scale factor")
	seed     = flag.Int64("seed", 42, "workload seed")
	verify   = flag.Bool("verify", false, "verify every collection against the oracle")
	markdown = flag.Bool("markdown", false, "emit a self-contained markdown report instead of tables")
)

func main() {
	flag.Parse()
	if *markdown {
		if err := experiments.WriteReport(os.Stdout, opts(experiments.Fig5Config())); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	cmds := flag.Args()
	if len(cmds) == 0 {
		cmds = []string{"all"}
	}
	for _, cmd := range cmds {
		if err := run(cmd); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}

func opts(base hwgc.Config) experiments.Options {
	return experiments.Options{Scale: *scale, Seed: *seed, Verify: *verify, Base: base}
}

func run(cmd string) error {
	switch cmd {
	case "fig5":
		return fig(5, experiments.Fig5Config())
	case "fig6":
		return fig(6, experiments.Fig6Config())
	case "tab1":
		return tab1()
	case "tab2":
		return tab2()
	case "fifo":
		return fifo()
	case "markopt":
		return markopt()
	case "bandwidth":
		return bandwidth()
	case "baselines":
		return baselines()
	case "stride":
		return strideCmd()
	case "hdrcache":
		return hdrcache()
	case "heapsize":
		return heapsize()
	case "pauses":
		return pauses()
	case "robustness":
		return robustness()
	case "concurrent":
		return concurrent()
	case "barriers":
		return barriers()
	case "numa":
		return numa()
	case "seeds":
		return seeds()
	case "all":
		for _, c := range []string{"fig5", "fig6", "tab1", "tab2", "fifo", "markopt", "bandwidth", "stride", "hdrcache", "heapsize", "pauses", "robustness", "seeds", "concurrent", "barriers", "numa", "baselines"} {
			if err := run(c); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q (have fig5 fig6 tab1 tab2 fifo markopt bandwidth stride hdrcache heapsize pauses robustness seeds concurrent barriers numa baselines all)", cmd)
	}
}

func fig(n int, base hwgc.Config) error {
	rows, err := experiments.Scaling(experiments.Benches(), experiments.PaperCoreCounts, opts(base))
	if err != nil {
		return err
	}
	title := "Figure 5: GC speedup vs. number of cores (baseline: 1 core)"
	if n == 6 {
		title = "Figure 6: GC speedup with +20 cycles memory latency (baseline: 1 core, +20)"
	}
	t := experiments.FormatScaling(title, rows)
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	var max8, max16 float64
	for _, r := range rows {
		if s := r.Speedup[3]; s > max8 {
			max8 = s
		}
		if s := r.Speedup[4]; s > max16 {
			max16 = s
		}
	}
	fmt.Printf("max speedup: %.2f at 8 cores, %.2f at 16 cores", max8, max16)
	if n == 5 {
		fmt.Printf("   (paper: up to %.1f and %.1f)", experiments.PaperMaxSpeedup8, experiments.PaperMaxSpeedup16)
	}
	fmt.Println()
	return nil
}

func tab1() error {
	rows, err := experiments.EmptyWorklist(experiments.Benches(), experiments.PaperCoreCounts, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Table I: fraction of clock cycles during which the work list is empty (measured | paper)",
		"Application", "1 core", "2 cores", "4 cores", "8 cores", "16 cores")
	for _, r := range rows {
		paper := experiments.PaperTable1[r.Bench]
		cells := []string{r.Bench}
		for i, f := range r.Fraction {
			cells = append(cells, fmt.Sprintf("%.2f%% | %.2f%%", 100*f, paper[i]))
		}
		t.Add(cells...)
	}
	return t.Write(os.Stdout)
}

func tab2() error {
	rows, err := experiments.StallBreakdown(experiments.Benches(), 16, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Table II: clock cycle distribution for 16 cores (mean per core; measured, with paper's % in brackets)",
		"Application", "Total", "Scan-lock", "Free-lock", "Header-lock",
		"Body load", "Body store", "Header load", "Header store")
	for _, r := range rows {
		p := experiments.PaperTable2[r.Bench]
		cell := func(v, pv int64) string {
			return fmt.Sprintf("%s [%s]", stats.CyclesAndPercent(v, r.Total), stats.Percent(pv, p.Total))
		}
		t.Add(r.Bench, fmt.Sprint(r.Total),
			cell(r.Mean.ScanLockStall, p.ScanLock),
			cell(r.Mean.FreeLockStall, p.FreeLock),
			cell(r.Mean.HeaderLockStall, p.HeaderLock),
			cell(r.Mean.BodyLoadStall, p.BodyLoad),
			cell(r.Mean.BodyStoreStall, p.BodyStore),
			cell(r.Mean.HeaderLoadStall, p.HeaderLoad),
			cell(r.Mean.HeaderStoreStall, p.HeaderStore),
		)
	}
	return t.Write(os.Stdout)
}

func fifo() error {
	caps := []int{0, 1024, 4096, 16384, 32768, 65536, 131072}
	pts, err := experiments.FIFOSweep("cup", caps, 16, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Ablation A1: header FIFO capacity on cup, 16 cores (overflow prolongs the scan critical section)",
		"FIFO capacity", "Cycles", "Scan-lock stall/core", "Drops", "Max depth")
	for _, p := range pts {
		capS := fmt.Sprint(p.Capacity)
		if p.Capacity <= 0 {
			capS = "disabled"
		}
		t.Add(capS, fmt.Sprint(p.Cycles), fmt.Sprint(p.ScanLockStall), fmt.Sprint(p.FIFODrops), fmt.Sprint(p.FIFOMaxDepth))
	}
	return t.Write(os.Stdout)
}

func markopt() error {
	rows, err := experiments.MarkOpt(experiments.Benches(), 16, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Ablation A2: unlocked mark-read optimization (paper §VI-B proposal for javac), 16 cores",
		"Application", "Cycles (off)", "Cycles (on)", "Gain", "Hdr-lock stall/core (off)", "(on)")
	for _, r := range rows {
		t.Add(r.Bench,
			fmt.Sprint(r.CyclesOff), fmt.Sprint(r.CyclesOn),
			fmt.Sprintf("%.2fx", float64(r.CyclesOff)/float64(r.CyclesOn)),
			fmt.Sprint(r.HdrLockOff), fmt.Sprint(r.HdrLockOn))
	}
	return t.Write(os.Stdout)
}

func bandwidth() error {
	pts, err := experiments.BandwidthSweep("db", []int{2, 3, 4, 6, 8, 12, 16}, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Ablation A3: 16-core speedup vs. memory bandwidth on db (bandwidth is the second scalability limiter, §VII)",
		"Bandwidth (req/cycle)", "16-core speedup")
	for _, p := range pts {
		t.Add(fmt.Sprint(p.Bandwidth), fmt.Sprintf("%.2f", p.Speedup16))
	}
	return t.Write(os.Stdout)
}

func strideCmd() error {
	pts, err := experiments.StrideSweep("blob", []int{0, 16, 64, 256}, []int{1, 2, 4, 8, 16}, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Extension E1 (paper §VII): sub-object (stride) work distribution on blob — speedup vs cores",
		"Stride (words)", "1", "2", "4", "8", "16")
	for _, p := range pts {
		sw := fmt.Sprint(p.StrideWords)
		if p.StrideWords == 0 {
			sw = "objects"
		}
		cells := []string{sw}
		for _, s := range p.Speedup {
			cells = append(cells, fmt.Sprintf("%.2f", s))
		}
		t.Add(cells...)
	}
	return t.Write(os.Stdout)
}

func hdrcache() error {
	rows, err := experiments.HeaderCache(experiments.Benches(), 4096, 16, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Extension E2 (paper §VII): 4096-line header cache, 16 cores",
		"Application", "Cycles (off)", "Cycles (on)", "Gain", "Hit rate", "Hdr loads to mem (off)", "(on)")
	for _, r := range rows {
		t.Add(r.Bench,
			fmt.Sprint(r.CyclesOff), fmt.Sprint(r.CyclesOn),
			fmt.Sprintf("%.2fx", float64(r.CyclesOff)/float64(r.CyclesOn)),
			fmt.Sprintf("%.1f%%", 100*r.HitRate),
			fmt.Sprint(r.HdrLoadsOff), fmt.Sprint(r.HdrLoadsOn))
	}
	return t.Write(os.Stdout)
}

func heapsize() error {
	pts, err := experiments.HeapSizeSweep("db", []float64{1.2, 1.5, 2.0, 4.0, 8.0}, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Heap-size sweep on db (paper §VI-B: heap size has little influence; copying cost tracks the live set)",
		"Semispace / live set", "16-core cycles", "16-core speedup")
	for _, p := range pts {
		t.Add(fmt.Sprintf("%.1fx", p.Headroom), fmt.Sprint(p.Cycles16), fmt.Sprintf("%.2f", p.Speedup16))
	}
	return t.Write(os.Stdout)
}

func pauses() error {
	pts, err := experiments.Pauses([]int{1, 2, 4, 8, 16}, 96*1024, 120000, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"GC pauses under a churning mutator (stop-the-world; identical allocation sequence per row)",
		"Cores", "Collections", "Mean pause (cycles)", "Max pause (cycles)", "Total GC cycles")
	for _, p := range pts {
		t.Add(fmt.Sprint(p.Cores), fmt.Sprint(p.Collections),
			fmt.Sprint(p.MeanPause), fmt.Sprint(p.MaxPause), fmt.Sprint(p.TotalGC))
	}
	return t.Write(os.Stdout)
}

func robustness() error {
	pts, err := experiments.ScaleRobustness("db", []int{1, 2, 4}, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Scale robustness: 16-core speedup on db at growing workload sizes (conclusions are size-independent)",
		"Workload scale", "16-core speedup")
	for _, p := range pts {
		t.Add(fmt.Sprint(p.Bandwidth), fmt.Sprintf("%.2f", p.Speedup16))
	}
	return t.Write(os.Stdout)
}

func seeds() error {
	rows, err := experiments.SeedRobustness(experiments.Benches(), []int64{42, 7, 1234, 99, 31337}, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Seed robustness: 16-core speedup across five workload seeds (conclusions are shape properties)",
		"Application", "Min", "Mean", "Max")
	for _, r := range rows {
		t.Add(r.Bench, fmt.Sprintf("%.2f", r.Min), fmt.Sprintf("%.2f", r.Mean), fmt.Sprintf("%.2f", r.Max))
	}
	return t.Write(os.Stdout)
}

func concurrent() error {
	rows, err := experiments.Concurrent([]string{"jlisp", "javac", "jflex", "db"}, 8, 2, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Extension E3 (paper §V-B outlook): concurrent collection, 8 cores, wait-until-black barrier",
		"Application", "STW pause", "Concurrent GC cycles", "Mutator ops", "Allocs", "Worst mutator op", "Barrier share")
	for _, r := range rows {
		t.Add(r.Bench, fmt.Sprint(r.STWPause), fmt.Sprint(r.ConcCycles),
			fmt.Sprint(r.MutOps), fmt.Sprint(r.MutAllocs),
			fmt.Sprintf("%d cycles", r.MaxOpLatency), fmt.Sprintf("%.0f%%", r.BarrierPct))
	}
	return t.Write(os.Stdout)
}

func barriers() error {
	rows, err := experiments.Barriers([]string{"jlisp", "javac", "jflex", "db"}, 8, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Extension E4: write-barrier comparison, 8 cores, built-in churn mutator on the mutator port",
		"Application", "Barrier", "STW pause", "Concurrent GC cycles", "Invocations", "Barrier cycles", "Floating words", "Mark term.", "Worst mutator op")
	for _, r := range rows {
		t.Add(r.Bench, r.Mode, fmt.Sprint(r.STWPause), fmt.Sprint(r.Cycles),
			fmt.Sprint(r.BarrierInvocations), fmt.Sprint(r.BarrierCycles),
			fmt.Sprint(r.FloatingWords), fmt.Sprint(r.MarkTermCycles),
			fmt.Sprintf("%d cycles", r.MaxOpLatency))
	}
	return t.Write(os.Stdout)
}

func numa() error {
	rows, err := experiments.NUMA([]string{"jlisp", "db"}, experiments.PaperCoreCounts, opts(experiments.Fig5Config()))
	if err != nil {
		return err
	}
	t := stats.NewTable(
		"Extension E5: NUMA locality, 4 domains, naive vs locality-aware tospace placement",
		"Application", "Cores", "Placement", "GC cycles", "Slowdown vs flat", "Local", "Remote", "Remote frac")
	for _, r := range rows {
		slow, frac := "-", "-"
		if r.Mode != "flat" {
			slow = fmt.Sprintf("%.3f", r.Slowdown())
			frac = fmt.Sprintf("%.1f%%", 100*r.RemoteFraction)
		}
		t.Add(r.Bench, fmt.Sprint(r.Cores), r.Mode, fmt.Sprint(r.Cycles), slow,
			fmt.Sprint(r.LocalAccesses), fmt.Sprint(r.RemoteAccesses), frac)
	}
	return t.Write(os.Stdout)
}

func baselines() error {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	t := stats.NewTable(
		fmt.Sprintf("Ablation A4: software-parallel baseline collectors (%d goroutines) vs. reference, on db", workers),
		"Collector", "Wall time", "Sync ops/object", "CAS retries", "Wasted words", "Notes")
	for _, name := range baseline.Names() {
		c, err := baseline.ByName(name)
		if err != nil {
			return err
		}
		h, err := hwgc.BuildWorkload("db", *scale, *seed)
		if err != nil {
			return err
		}
		before, err := hwgc.Snapshot(h)
		if err != nil {
			return err
		}
		res, err := c.Collect(h, workers)
		if err != nil {
			return err
		}
		if err := baseline.VerifyPreserved(before, h); err != nil {
			return fmt.Errorf("%s corrupted the heap: %w", name, err)
		}
		perObj := float64(res.Sync.Total()) / float64(res.LiveObjects)
		t.Add(name, res.Elapsed.String(), fmt.Sprintf("%.1f", perObj),
			fmt.Sprint(res.Sync.CASRetries), fmt.Sprint(res.WastedWords), c.Description())
	}
	return t.Write(os.Stdout)
}
