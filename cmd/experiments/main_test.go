package main

import (
	"os"
	"strings"
	"testing"
)

// TestRunEachExperiment smoke-tests every subcommand (the fast ones at
// small scale; the full sweep runs in CI-style via `experiments all`).
func TestRunEachExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment subcommands are slow")
	}
	for _, cmd := range []string{"tab1", "fifo", "markopt", "heapsize", "robustness", "stride", "hdrcache", "concurrent"} {
		cmd := cmd
		t.Run(cmd, func(t *testing.T) {
			out := captureStdout(t, func() {
				if err := run(cmd); err != nil {
					t.Fatal(err)
				}
			})
			if len(out) < 50 || !strings.Contains(out, "-----") {
				t.Errorf("%s produced no table:\n%s", cmd, out)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}
