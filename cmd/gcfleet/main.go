// Command gcfleet fronts a fleet of gcserved backends with a single
// gcserved-compatible endpoint set. Requests are routed by the content key
// of their canonical plan over a consistent-hash ring (so repeats land on
// the backend whose cache is already warm), failures fail over to the next
// ring replica under a capped-backoff retry policy, unhealthy backends are
// quarantined by per-backend circuit breakers fed by /healthz probing, and
// POST /v1/batch scatter-gathers mixed collect/sweep experiments with
// per-item partial-failure reporting.
//
// Usage:
//
//	gcfleet -backends http://h1:8080,http://h2:8080,http://h3:8080
//	        [-addr :8090] [-vnodes 128] [-replicas 3] [-attempts 4]
//	        [-timeout 60s] [-hedge-quantile 0] [-hedge-min 20ms]
//	        [-health-interval 2s] [-breaker-failures 3] [-breaker-cooldown 5s]
//	        [-batch-inflight 4] [-export-wait 30s] [-registry-limit 4096]
//	        [-sweep-poll 250ms] [-drain 30s]
//
// Endpoints (same wire format as one gcserved):
//
//	POST /v1/collect   routed to the key's ring owner, proxied verbatim
//	POST /v1/sweep     routed to the key's ring owner, proxied verbatim
//	POST /v1/batch     scatter-gather over the fleet, per-item results
//	POST /v1/jobs      async jobs, routed by the job's content key
//	GET  /v1/jobs/{id} job status/result/events, routed like the submit
//	POST /v1/sweeps    sweep spec planned at the proxy, points fanned out
//	                   to their cache-owning backends by content key
//	GET  /v1/sweeps/{id}[/events]  progress + ranked frontier aggregated
//	                   at the proxy; SSE with Last-Event-ID resume
//	DELETE /v1/sweeps/{id}  cancel a running sweep
//	GET  /v1/workloads proxied from any live backend
//	GET  /healthz      fleet health (ok while any backend is admissible)
//	GET  /metrics      fleet-level Prometheus counters
//
// Admin (elastic membership — see internal/elastic):
//
//	POST   /v1/admin/backends      health-gated join of a new backend
//	DELETE /v1/admin/backends/{id} remove a backend (drained by migration)
//	GET    /v1/admin/topology      ring membership, shares, breaker states
//	POST   /v1/admin/rebalance     synchronous checkpoint-migration pass
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hwgc/internal/cluster"
)

func main() {
	addr, opts, drain, err := parseOptions(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcfleet:", err)
		os.Exit(2)
	}
	if err := run(addr, opts, drain); err != nil {
		fmt.Fprintln(os.Stderr, "gcfleet:", err)
		os.Exit(1)
	}
}

// parseOptions turns CLI arguments into fleet options. Split from main so
// flag wiring is testable without spawning a process.
func parseOptions(args []string) (addr string, opts cluster.Options, drain time.Duration, err error) {
	fs := flag.NewFlagSet("gcfleet", flag.ContinueOnError)
	var (
		addrFlag       = fs.String("addr", ":8090", "listen address")
		backends       = fs.String("backends", "", "comma-separated gcserved base URLs (required)")
		vnodes         = fs.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per backend on the hash ring")
		replicas       = fs.Int("replicas", 3, "ring replicas tried per request (failover width)")
		attempts       = fs.Int("attempts", 4, "total send attempts per request across replicas and retries")
		timeout        = fs.Duration("timeout", 60*time.Second, "per-request deadline including retries")
		hedgeQuantile  = fs.Float64("hedge-quantile", 0, "latency quantile after which to hedge to the next replica (0 = off)")
		hedgeMin       = fs.Duration("hedge-min", 20*time.Millisecond, "floor for the hedge delay")
		healthInterval = fs.Duration("health-interval", 2*time.Second, "backend /healthz probe interval (negative = disabled)")
		brkFailures    = fs.Int("breaker-failures", 3, "consecutive failures that open a backend's circuit breaker")
		brkCooldown    = fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before the half-open probe")
		batchInflight  = fs.Int("batch-inflight", 4, "concurrent batch items per backend")
		exportWait     = fs.Duration("export-wait", 30*time.Second, "how long a migration export waits for a running job's next snapshot boundary")
		registryLimit  = fs.Int("registry-limit", 4096, "job submissions remembered for dead-owner rescue during rebalance")
		sweepPoll      = fs.Duration("sweep-poll", 250*time.Millisecond, "per-point result poll interval of the fleet sweep engine")
		drainFlag      = fs.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
	)
	if err := fs.Parse(args); err != nil {
		return "", cluster.Options{}, 0, err
	}
	if fs.NArg() > 0 {
		return "", cluster.Options{}, 0, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *backends == "" {
		return "", cluster.Options{}, 0, fmt.Errorf("-backends is required")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return "", cluster.Options{}, 0, fmt.Errorf("-backends lists no URLs")
	}
	if *hedgeQuantile < 0 || *hedgeQuantile >= 1 {
		return "", cluster.Options{}, 0, fmt.Errorf("-hedge-quantile must be in [0, 1), got %g", *hedgeQuantile)
	}
	return *addrFlag, cluster.Options{
		Backends:         urls,
		Vnodes:           *vnodes,
		Replicas:         *replicas,
		MaxAttempts:      *attempts,
		Timeout:          *timeout,
		HedgeQuantile:    *hedgeQuantile,
		HedgeMinDelay:    *hedgeMin,
		HealthInterval:   *healthInterval,
		BreakerThreshold: *brkFailures,
		BreakerCooldown:  *brkCooldown,
		BatchInflight:    *batchInflight,
		ExportWait:       *exportWait,
		RegistryLimit:    *registryLimit,
		SweepPoll:        *sweepPoll,
	}, *drainFlag, nil
}

func run(addr string, opts cluster.Options, drain time.Duration) error {
	f, err := cluster.New(opts)
	if err != nil {
		return err
	}
	f.Start()
	defer f.Close()

	hs := &http.Server{
		Addr:              addr,
		Handler:           f.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("gcfleet: listening on %s, %d backends", addr, len(f.Backends()))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("gcfleet: shutting down, draining for up to %s", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("gcfleet: http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("gcfleet: drained cleanly")
	return nil
}
