package main

import (
	"strings"
	"testing"
	"time"

	"hwgc/internal/cluster"
)

func TestParseOptionsRequiresBackends(t *testing.T) {
	if _, _, _, err := parseOptions(nil); err == nil {
		t.Error("missing -backends accepted")
	}
	if _, _, _, err := parseOptions([]string{"-backends", " , "}); err == nil {
		t.Error("blank -backends accepted")
	}
}

func TestParseOptionsDefaults(t *testing.T) {
	addr, opts, drain, err := parseOptions([]string{"-backends", "http://a:1,http://b:2"})
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":8090" {
		t.Errorf("addr = %q, want :8090", addr)
	}
	if len(opts.Backends) != 2 || opts.Backends[0] != "http://a:1" || opts.Backends[1] != "http://b:2" {
		t.Errorf("backends = %v", opts.Backends)
	}
	if opts.Vnodes != cluster.DefaultVnodes || opts.Replicas != 3 || opts.MaxAttempts != 4 {
		t.Errorf("ring/retry defaults wrong: %+v", opts)
	}
	if opts.HedgeQuantile != 0 || opts.HealthInterval != 2*time.Second {
		t.Errorf("hedge/health defaults wrong: %+v", opts)
	}
	if opts.ExportWait != 30*time.Second || opts.RegistryLimit != 4096 {
		t.Errorf("elastic defaults wrong: %+v", opts)
	}
	if drain != 30*time.Second {
		t.Errorf("drain = %s, want 30s", drain)
	}
	// The defaults must actually construct a fleet.
	f, err := cluster.New(opts)
	if err != nil {
		t.Fatalf("default options rejected by cluster.New: %v", err)
	}
	f.Close()
}

func TestParseOptionsAllFlags(t *testing.T) {
	addr, opts, drain, err := parseOptions(strings.Fields(
		"-addr :7000 -backends http://x:1 -vnodes 16 -replicas 2 -attempts 5 -timeout 9s " +
			"-hedge-quantile 0.9 -hedge-min 5ms -health-interval 1s " +
			"-breaker-failures 7 -breaker-cooldown 3s -batch-inflight 2 " +
			"-export-wait 11s -registry-limit 99 -drain 4s"))
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":7000" || drain != 4*time.Second {
		t.Errorf("addr=%q drain=%s", addr, drain)
	}
	if opts.Vnodes != 16 || opts.Replicas != 2 || opts.MaxAttempts != 5 ||
		opts.Timeout != 9*time.Second || opts.HedgeQuantile != 0.9 ||
		opts.HedgeMinDelay != 5*time.Millisecond || opts.HealthInterval != time.Second ||
		opts.BreakerThreshold != 7 || opts.BreakerCooldown != 3*time.Second ||
		opts.BatchInflight != 2 || opts.ExportWait != 11*time.Second ||
		opts.RegistryLimit != 99 {
		t.Errorf("parsed options: %+v", opts)
	}
}

func TestParseOptionsErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"bad quantile":  {"-backends", "http://a:1", "-hedge-quantile", "1.5"},
		"unit quantile": {"-backends", "http://a:1", "-hedge-quantile", "1"},
		"stray arg":     {"-backends", "http://a:1", "stray"},
		"unknown flag":  {"-no-such-flag"},
	} {
		if _, _, _, err := parseOptions(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
