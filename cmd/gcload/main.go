// Command gcload drives a running gcserved instance with concurrent
// POST /v1/collect (or /v1/sweep) traffic and reports achieved throughput,
// status-code counts, latency percentiles and response byte-identity — so
// "serves heavy traffic" is a measured claim, not a slogan.
//
// Each in-flight request rotates through -distinct seed variants; with the
// default settings repeats of each variant verify the server's result cache
// returns byte-identical bodies. 429 responses (deliberate backpressure)
// are counted separately and are not errors.
//
// Usage:
//
//	gcload [-url http://localhost:8080] [-n 1000] [-c 100] [-qps 0]
//	       [-bench jlisp] [-cores 8] [-scale 1] [-distinct 8]
//	       [-sweep] [-timeout 30s]
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hwgc"
)

type loadConfig struct {
	url      string
	requests int
	workers  int
	qps      int
	bench    string
	cores    int
	scale    int
	distinct int
	sweep    bool
	timeout  time.Duration
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.url, "url", "http://localhost:8080", "gcserved base URL")
	flag.IntVar(&cfg.requests, "n", 1000, "total requests to send")
	flag.IntVar(&cfg.workers, "c", 100, "concurrent in-flight requests")
	flag.IntVar(&cfg.qps, "qps", 0, "target request rate (0 = as fast as possible)")
	flag.StringVar(&cfg.bench, "bench", "jlisp", "benchmark workload to request")
	flag.IntVar(&cfg.cores, "cores", 8, "coprocessor cores per request")
	flag.IntVar(&cfg.scale, "scale", 1, "workload scale per request")
	flag.IntVar(&cfg.distinct, "distinct", 8, "distinct seed variants to rotate through")
	flag.BoolVar(&cfg.sweep, "sweep", false, "POST /v1/sweep instead of /v1/collect")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request client timeout")
	flag.Parse()

	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcload:", err)
		os.Exit(1)
	}
	rep.print(os.Stdout)
	if rep.failed() {
		os.Exit(1)
	}
}

// report aggregates the outcome of one load run.
type report struct {
	cfg       loadConfig
	elapsed   time.Duration
	statuses  map[int]int
	transport int // client-side errors (dial, timeout, ...)
	mismatch  int // cache responses that were not byte-identical
	latencies []time.Duration
	bytes     int64
}

func (r *report) failed() bool {
	if r.transport > 0 || r.mismatch > 0 {
		return true
	}
	for code, n := range r.statuses {
		// 429 is deliberate backpressure, not a failure.
		if n > 0 && code != http.StatusOK && code != http.StatusTooManyRequests {
			return true
		}
	}
	return false
}

func (r *report) percentile(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(q*float64(len(r.latencies))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(r.latencies) {
		i = len(r.latencies) - 1
	}
	return r.latencies[i]
}

func (r *report) print(w io.Writer) {
	endpoint := "/v1/collect"
	if r.cfg.sweep {
		endpoint = "/v1/sweep"
	}
	fmt.Fprintf(w, "gcload: POST %s bench=%s cores=%d scale=%d distinct-seeds=%d\n",
		endpoint, r.cfg.bench, r.cfg.cores, r.cfg.scale, r.cfg.distinct)
	secs := r.elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Fprintf(w, "requests %d in %.2fs -> %.1f req/s, concurrency %d, %.1f MiB read\n",
		r.cfg.requests, r.elapsed.Seconds(), float64(r.cfg.requests)/secs,
		r.cfg.workers, float64(r.bytes)/(1<<20))
	codes := make([]int, 0, len(r.statuses))
	for c := range r.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Fprintf(w, "status  ")
	for _, c := range codes {
		fmt.Fprintf(w, " %d x%d", c, r.statuses[c])
	}
	if r.transport > 0 {
		fmt.Fprintf(w, " transport-errors x%d", r.transport)
	}
	fmt.Fprintln(w)
	if r.mismatch > 0 {
		fmt.Fprintf(w, "identity FAILED: %d responses differed from the first response for their request\n", r.mismatch)
	} else {
		fmt.Fprintf(w, "identity OK: repeated requests returned byte-identical responses\n")
	}
	if len(r.latencies) > 0 {
		fmt.Fprintf(w, "latency  p50 %s  p95 %s  p99 %s  max %s\n",
			r.percentile(0.50).Round(time.Microsecond),
			r.percentile(0.95).Round(time.Microsecond),
			r.percentile(0.99).Round(time.Microsecond),
			r.latencies[len(r.latencies)-1].Round(time.Microsecond))
	}
}

// body returns the request body for seed variant v. Bodies are canonical
// requests, so the server's cache key for variant v is stable.
func (cfg *loadConfig) body(v int) ([]byte, error) {
	seed := int64(v + 1)
	if cfg.sweep {
		req := hwgc.SweepRequest{Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
			Config: hwgc.Config{Cores: cfg.cores}}
		return req.CanonicalJSON()
	}
	req := hwgc.CollectRequest{Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
		Config: hwgc.Config{Cores: cfg.cores}}
	return req.CanonicalJSON()
}

func runLoad(cfg loadConfig) (*report, error) {
	if cfg.requests < 1 || cfg.workers < 1 {
		return nil, fmt.Errorf("need -n >= 1 and -c >= 1")
	}
	if cfg.distinct < 1 {
		cfg.distinct = 1
	}
	if cfg.workers > cfg.requests {
		cfg.workers = cfg.requests
	}
	endpoint := cfg.url + "/v1/collect"
	if cfg.sweep {
		endpoint = cfg.url + "/v1/sweep"
	}
	bodies := make([][]byte, cfg.distinct)
	for v := range bodies {
		b, err := cfg.body(v)
		if err != nil {
			return nil, err
		}
		bodies[v] = b
	}

	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers,
			MaxIdleConnsPerHost: cfg.workers,
		},
	}

	// Optional QPS pacing: a shared token channel fed at the target rate.
	var pace chan struct{}
	if cfg.qps > 0 {
		pace = make(chan struct{})
		interval := time.Second / time.Duration(cfg.qps)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		go func() {
			for range tick.C {
				select {
				case pace <- struct{}{}:
				default: // nobody waiting; don't bank tokens
				}
			}
		}()
	}

	rep := &report{cfg: cfg, statuses: make(map[int]int)}
	var (
		next      atomic.Int64 // next request index to issue
		mu        sync.Mutex   // guards rep + firstSums
		firstSums = make(map[int][32]byte, cfg.distinct)
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.requests {
					return
				}
				if pace != nil {
					<-pace
				}
				v := i % cfg.distinct
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(bodies[v]))
				if err != nil {
					mu.Lock()
					rep.transport++
					mu.Unlock()
					continue
				}
				data, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)
				mu.Lock()
				if rerr != nil {
					rep.transport++
				} else {
					rep.statuses[resp.StatusCode]++
					rep.bytes += int64(len(data))
					rep.latencies = append(rep.latencies, lat)
					if resp.StatusCode == http.StatusOK {
						sum := sha256.Sum256(data)
						if prev, ok := firstSums[v]; !ok {
							firstSums[v] = sum
						} else if prev != sum {
							rep.mismatch++
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.elapsed = time.Since(start)
	sort.Slice(rep.latencies, func(a, b int) bool { return rep.latencies[a] < rep.latencies[b] })
	return rep, nil
}
