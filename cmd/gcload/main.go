// Command gcload drives a running gcserved instance with concurrent
// POST /v1/collect (or /v1/sweep) traffic and reports achieved throughput,
// status-code counts, latency percentiles and response byte-identity — so
// "serves heavy traffic" is a measured claim, not a slogan.
//
// With -sweep <spec.json>, gcload instead submits the SweepSpace spec to
// POST /v1/sweeps (gcserved or gcfleet), follows the sweep's SSE event
// stream — reconnecting with Last-Event-ID if the stream drops — and
// reports submit latency, completion time, and frontier-convergence
// latency: how long after submit the ranked frontier last changed. The
// final frontier is printed ranked.
//
// Each in-flight request rotates through -distinct seed variants; with the
// default settings repeats of each variant verify the server's result cache
// returns byte-identical bodies. 429 responses (deliberate backpressure)
// are counted separately and are not errors.
//
// With -batch N, each request is instead a POST /v1/batch of N mixed
// collect/sweep items (a scatter-gather experiment against gcserved or
// gcfleet). Per-item 429s are tolerated like single-request 429s; response
// identity is checked only for fully-successful batches, whose encodings
// are deterministic.
//
// With -async, each logical request is instead submitted as a durable job
// (POST /v1/jobs, optionally with -class) and its result polled every
// -poll until done. The report then carries two separate distributions:
// submit latency (how fast the server durably accepts work) and end-to-end
// latency (submit through completed result). -async excludes -batch.
//
// Usage:
//
// With -barrier <none|satb|incupdate>, every generated request becomes a
// concurrent-collection scenario: the built-in churn mutator runs on the
// coprocessor's mutator port under the selected write barrier (-mutops
// bounds its operation budget; 0 means effectively unbounded). Sweep spec
// files passed via -sweep flow through verbatim, so BarrierMode axes in the
// spec JSON reach the server unchanged.
//
// With -numa <domains>, every generated request runs on a NUMA machine with
// that many memory domains (-placement selects naive or locality-aware
// tospace placement); with -cache <sets>, the private-L1/shared-L2 cache
// model is enabled with that many L1 sets. Both compose with -barrier, so a
// single gcload invocation can exercise the full concurrent + hierarchy
// configuration space against a server.
//
// Usage:
//
//	gcload [-url http://localhost:8080] [-n 1000] [-c 100] [-qps 0]
//	       [-bench jlisp] [-cores 8] [-scale 1] [-distinct 8]
//	       [-barrier M] [-mutops N] [-numa D] [-placement P] [-cache S]
//	       [-sweepreq] [-batch 0] [-async] [-class C] [-poll 25ms]
//	       [-sweep spec.json] [-timeout 30s]
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hwgc"
)

type loadConfig struct {
	url       string
	requests  int
	workers   int
	qps       int
	bench     string
	cores     int
	scale     int
	distinct  int
	barrier   string // write-barrier mode; non-empty turns requests concurrent
	mutops    int64  // concurrent mutator operation budget (0 = unbounded)
	numa      int    // NUMA domain count; positive enables the NUMA model
	placement string // tospace placement for -numa ("naive" or "local")
	cache     int    // L1 sets; positive enables the cache model
	sweepReq  bool
	sweepSpec string // path to a SweepSpace JSON file (-sweep mode)
	batch     int
	async     bool
	class     string
	poll      time.Duration
	timeout   time.Duration
}

func main() {
	var cfg loadConfig
	flag.StringVar(&cfg.url, "url", "http://localhost:8080", "gcserved base URL")
	flag.IntVar(&cfg.requests, "n", 1000, "total requests to send")
	flag.IntVar(&cfg.workers, "c", 100, "concurrent in-flight requests")
	flag.IntVar(&cfg.qps, "qps", 0, "target request rate (0 = as fast as possible)")
	flag.StringVar(&cfg.bench, "bench", "jlisp", "benchmark workload to request")
	flag.IntVar(&cfg.cores, "cores", 8, "coprocessor cores per request")
	flag.IntVar(&cfg.scale, "scale", 1, "workload scale per request")
	flag.IntVar(&cfg.distinct, "distinct", 8, "distinct seed variants to rotate through")
	flag.StringVar(&cfg.barrier, "barrier", "", `write-barrier mode for generated requests ("none", "satb", "incupdate"); any value turns on the built-in concurrent mutator`)
	flag.Int64Var(&cfg.mutops, "mutops", 0, "concurrent mutator operation budget (0 with -barrier = effectively unbounded)")
	flag.IntVar(&cfg.numa, "numa", 0, "NUMA domain count for generated requests (0 = uniform memory)")
	flag.StringVar(&cfg.placement, "placement", "", `tospace placement with -numa ("naive" or "local")`)
	flag.IntVar(&cfg.cache, "cache", 0, "L1 cache sets for generated requests (0 = no cache model)")
	flag.BoolVar(&cfg.sweepReq, "sweepreq", false, "POST /v1/sweep instead of /v1/collect")
	flag.StringVar(&cfg.sweepSpec, "sweep", "", "submit this SweepSpace spec file to POST /v1/sweeps and report frontier convergence")
	flag.IntVar(&cfg.batch, "batch", 0, "POST /v1/batch with this many mixed items per request (0 = single requests)")
	flag.BoolVar(&cfg.async, "async", false, "submit jobs via POST /v1/jobs and poll each result to completion")
	flag.StringVar(&cfg.class, "class", "", "job class for -async submissions (empty = server default)")
	flag.DurationVar(&cfg.poll, "poll", 25*time.Millisecond, "result poll interval in -async mode")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request client timeout (in -async mode also the per-job completion deadline)")
	flag.Parse()

	if cfg.sweepSpec != "" {
		ok, err := runSweepMode(cfg, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gcload:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}
	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcload:", err)
		os.Exit(1)
	}
	rep.print(os.Stdout)
	if rep.failed() {
		os.Exit(1)
	}
}

// report aggregates the outcome of one load run.
type report struct {
	cfg       loadConfig
	elapsed   time.Duration
	statuses  map[int]int
	transport int // client-side errors (dial, timeout, ...)
	mismatch  int // cache responses that were not byte-identical
	latencies []time.Duration
	bytes     int64

	// Batch mode (-batch N): per-item tallies across all batches.
	itemsOK     int
	items429    int
	itemsFailed int // any per-item status other than 200 and 429

	// Async mode (-async): submit-only latencies, kept separate from the
	// end-to-end latencies above so queueing/service time is not conflated
	// with how fast the server durably accepts work.
	submitLats []time.Duration
}

func (r *report) failed() bool {
	if r.transport > 0 || r.mismatch > 0 || r.itemsFailed > 0 {
		return true
	}
	for code, n := range r.statuses {
		// 429 is deliberate backpressure, not a failure; 207 is a batch
		// with per-item failures, judged by itemsFailed above.
		if n > 0 && code != http.StatusOK && code != http.StatusTooManyRequests &&
			code != http.StatusMultiStatus {
			return true
		}
	}
	return false
}

func (r *report) percentile(q float64) time.Duration { return percentileOf(r.latencies, q) }

// percentileOf reads the q-quantile from an ascending-sorted sample.
func percentileOf(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(q*float64(len(lats))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

func (r *report) print(w io.Writer) {
	endpoint := "/v1/collect"
	if r.cfg.sweepReq {
		endpoint = "/v1/sweep"
	}
	if r.cfg.batch > 0 {
		endpoint = fmt.Sprintf("/v1/batch (%d items)", r.cfg.batch)
	}
	if r.cfg.async {
		endpoint = "/v1/jobs (async"
		if r.cfg.class != "" {
			endpoint += " class=" + r.cfg.class
		}
		endpoint += ")"
	}
	scenario := ""
	if r.cfg.barrier != "" || r.cfg.mutops > 0 {
		scenario = fmt.Sprintf(" barrier=%s mutops=%d", r.cfg.config().BarrierMode, r.cfg.config().MutatorOps)
	}
	if r.cfg.numa > 0 {
		placement := r.cfg.placement
		if placement == "" {
			placement = "naive"
		}
		scenario += fmt.Sprintf(" numa=%d placement=%s", r.cfg.numa, placement)
	}
	if r.cfg.cache > 0 {
		scenario += fmt.Sprintf(" cache=%d", r.cfg.cache)
	}
	fmt.Fprintf(w, "gcload: POST %s bench=%s cores=%d scale=%d distinct-seeds=%d%s\n",
		endpoint, r.cfg.bench, r.cfg.cores, r.cfg.scale, r.cfg.distinct, scenario)
	secs := r.elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	fmt.Fprintf(w, "requests %d in %.2fs -> %.1f req/s, concurrency %d, %.1f MiB read\n",
		r.cfg.requests, r.elapsed.Seconds(), float64(r.cfg.requests)/secs,
		r.cfg.workers, float64(r.bytes)/(1<<20))
	codes := make([]int, 0, len(r.statuses))
	for c := range r.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	fmt.Fprintf(w, "status  ")
	for _, c := range codes {
		fmt.Fprintf(w, " %d x%d", c, r.statuses[c])
	}
	if r.transport > 0 {
		fmt.Fprintf(w, " transport-errors x%d", r.transport)
	}
	fmt.Fprintln(w)
	if r.cfg.batch > 0 {
		fmt.Fprintf(w, "items    ok x%d  429 x%d  failed x%d\n", r.itemsOK, r.items429, r.itemsFailed)
	}
	if r.mismatch > 0 {
		fmt.Fprintf(w, "identity FAILED: %d responses differed from the first response for their request\n", r.mismatch)
	} else {
		fmt.Fprintf(w, "identity OK: repeated requests returned byte-identical responses\n")
	}
	if len(r.submitLats) > 0 {
		fmt.Fprintf(w, "submit   p50 %s  p95 %s  p99 %s  max %s\n",
			percentileOf(r.submitLats, 0.50).Round(time.Microsecond),
			percentileOf(r.submitLats, 0.95).Round(time.Microsecond),
			percentileOf(r.submitLats, 0.99).Round(time.Microsecond),
			r.submitLats[len(r.submitLats)-1].Round(time.Microsecond))
	}
	if len(r.latencies) > 0 {
		label := "latency "
		if r.cfg.async {
			label = "e2e     "
		}
		fmt.Fprintf(w, "%s p50 %s  p95 %s  p99 %s  max %s\n", label,
			r.percentile(0.50).Round(time.Microsecond),
			r.percentile(0.95).Round(time.Microsecond),
			r.percentile(0.99).Round(time.Microsecond),
			r.latencies[len(r.latencies)-1].Round(time.Microsecond))
	}
}

// config returns the coprocessor configuration every generated request
// carries. With -barrier (or -mutops) set the request becomes a concurrent-
// collection scenario: the built-in churn mutator runs on the mutator port
// under the selected write barrier. -numa and -cache switch on the memory
// hierarchy. Validation happens downstream when the request canonicalizes,
// so a bad -barrier or -placement value fails fast with the library's own
// error.
func (cfg *loadConfig) config() hwgc.Config {
	c := hwgc.Config{Cores: cfg.cores, MutatorOps: cfg.mutops}
	if cfg.barrier != "" {
		c.BarrierMode = hwgc.BarrierMode(cfg.barrier)
		if c.MutatorOps == 0 {
			c.MutatorOps = 1 << 40 // churn for the whole collection
		}
	}
	if cfg.numa > 0 || cfg.placement != "" {
		c.NUMADomains = cfg.numa
		c.NUMAPlacement = hwgc.NUMAPlacement(cfg.placement)
	}
	if cfg.cache > 0 {
		c.L1Sets = cfg.cache
	}
	return c
}

// body returns the request body for seed variant v. Bodies are canonical
// requests, so the server's cache key for variant v is stable.
func (cfg *loadConfig) body(v int) ([]byte, error) {
	if cfg.batch > 0 {
		return cfg.batchBody(v)
	}
	if cfg.async {
		return cfg.asyncBody(v)
	}
	seed := int64(v + 1)
	if cfg.sweepReq {
		req := hwgc.SweepRequest{Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
			Config: cfg.config()}
		return req.CanonicalJSON()
	}
	req := hwgc.CollectRequest{Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
		Config: cfg.config()}
	return req.CanonicalJSON()
}

// asyncBody wraps the canonical request for seed variant v in the
// POST /v1/jobs submit envelope. The inner request is canonicalized first
// so every worker hitting the same variant submits identical bytes and
// dedupes onto one job.
func (cfg *loadConfig) asyncBody(v int) ([]byte, error) {
	seed := int64(v + 1)
	sub := struct {
		Collect *hwgc.CollectRequest `json:",omitempty"`
		Sweep   *hwgc.SweepRequest   `json:",omitempty"`
		Class   string               `json:",omitempty"`
	}{Class: cfg.class}
	if cfg.sweepReq {
		sub.Sweep = &hwgc.SweepRequest{Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
			Config: cfg.config()}
		if _, err := sub.Sweep.Key(); err != nil {
			return nil, err
		}
	} else {
		sub.Collect = &hwgc.CollectRequest{Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
			Config: cfg.config()}
		if _, err := sub.Collect.Key(); err != nil {
			return nil, err
		}
	}
	return json.Marshal(sub)
}

// batchBody builds the mixed collect/sweep batch for seed variant v: every
// fourth item is a two-core sweep, the rest are collects, each with a seed
// unique to (variant, item) so distinct variants occupy distinct cache
// entries end to end.
func (cfg *loadConfig) batchBody(v int) ([]byte, error) {
	var req hwgc.BatchRequest
	for i := 0; i < cfg.batch; i++ {
		seed := int64(v*cfg.batch + i + 1)
		if i%4 == 3 {
			req.Items = append(req.Items, hwgc.BatchItem{Sweep: &hwgc.SweepRequest{
				Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
				Cores: []int{1, cfg.cores}}})
		} else {
			req.Items = append(req.Items, hwgc.BatchItem{Collect: &hwgc.CollectRequest{
				Bench: cfg.bench, Scale: cfg.scale, Seed: seed,
				Config: cfg.config()}})
		}
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	for i := range req.Items {
		if _, _, _, err := req.Items[i].Prep(); err != nil {
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
	}
	return json.Marshal(req)
}

func runLoad(cfg loadConfig) (*report, error) {
	if cfg.requests < 1 || cfg.workers < 1 {
		return nil, fmt.Errorf("need -n >= 1 and -c >= 1")
	}
	if cfg.distinct < 1 {
		cfg.distinct = 1
	}
	if cfg.workers > cfg.requests {
		cfg.workers = cfg.requests
	}
	if cfg.batch < 0 || cfg.batch > hwgc.MaxBatchItems {
		return nil, fmt.Errorf("-batch must be in [0, %d]", hwgc.MaxBatchItems)
	}
	if cfg.async && cfg.batch > 0 {
		return nil, fmt.Errorf("-async and -batch are mutually exclusive")
	}
	if cfg.class != "" && !cfg.async {
		return nil, fmt.Errorf("-class requires -async")
	}
	if cfg.async && cfg.poll <= 0 {
		return nil, fmt.Errorf("-async needs -poll > 0")
	}
	endpoint := cfg.url + "/v1/collect"
	if cfg.sweepReq {
		endpoint = cfg.url + "/v1/sweep"
	}
	if cfg.batch > 0 {
		endpoint = cfg.url + "/v1/batch"
	}
	if cfg.async {
		endpoint = cfg.url + "/v1/jobs"
	}
	bodies := make([][]byte, cfg.distinct)
	for v := range bodies {
		b, err := cfg.body(v)
		if err != nil {
			return nil, err
		}
		bodies[v] = b
	}

	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers,
			MaxIdleConnsPerHost: cfg.workers,
		},
	}

	// Optional QPS pacing: a shared token channel fed at the target rate.
	var pace chan struct{}
	if cfg.qps > 0 {
		pace = make(chan struct{})
		interval := time.Second / time.Duration(cfg.qps)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		go func() {
			for range tick.C {
				select {
				case pace <- struct{}{}:
				default: // nobody waiting; don't bank tokens
				}
			}
		}()
	}

	rep := &report{cfg: cfg, statuses: make(map[int]int)}
	var (
		next      atomic.Int64 // next request index to issue
		mu        sync.Mutex   // guards rep + firstSums
		firstSums = make(map[int][32]byte, cfg.distinct)
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.requests {
					return
				}
				if pace != nil {
					<-pace
				}
				v := i % cfg.distinct
				if cfg.async {
					asyncRequest(cfg, client, endpoint, bodies[v], v, rep, &mu, firstSums)
					continue
				}
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(bodies[v]))
				if err != nil {
					mu.Lock()
					rep.transport++
					mu.Unlock()
					continue
				}
				data, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				lat := time.Since(t0)

				// Batch mode: tally per-item outcomes; a decode failure of
				// a 200/207 reply counts as a transport error.
				var br *hwgc.BatchResponse
				if rerr == nil && cfg.batch > 0 &&
					(resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusMultiStatus) {
					br, rerr = hwgc.DecodeBatchResponse(bytes.NewReader(data))
				}

				mu.Lock()
				if rerr != nil {
					rep.transport++
				} else {
					rep.statuses[resp.StatusCode]++
					rep.bytes += int64(len(data))
					rep.latencies = append(rep.latencies, lat)
					identical := resp.StatusCode == http.StatusOK
					if br != nil {
						for _, it := range br.Items {
							switch it.Status {
							case http.StatusOK:
								rep.itemsOK++
							case http.StatusTooManyRequests:
								rep.items429++
							default:
								rep.itemsFailed++
							}
						}
						// Deterministic encodings make fully-successful
						// batches byte-identical across repeats; batches
						// with transient 429s legitimately differ.
						identical = br.Failed == 0
					}
					if identical {
						sum := sha256.Sum256(data)
						if prev, ok := firstSums[v]; !ok {
							firstSums[v] = sum
						} else if prev != sum {
							rep.mismatch++
						}
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.elapsed = time.Since(start)
	sort.Slice(rep.latencies, func(a, b int) bool { return rep.latencies[a] < rep.latencies[b] })
	sort.Slice(rep.submitLats, func(a, b int) bool { return rep.submitLats[a] < rep.submitLats[b] })
	return rep, nil
}

// asyncRequest performs one -async exchange: durably submit the job, then
// poll its result endpoint until the job is terminal or the per-job
// deadline passes. The submit latency and the end-to-end latency go into
// separate distributions.
func asyncRequest(cfg loadConfig, client *http.Client, endpoint string, body []byte, v int,
	rep *report, mu *sync.Mutex, firstSums map[int][32]byte) {
	fail := func() {
		mu.Lock()
		rep.transport++
		mu.Unlock()
	}
	t0 := time.Now()
	resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		fail()
		return
	}
	_, rerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	submitLat := time.Since(t0)
	if rerr != nil {
		fail()
		return
	}
	loc := resp.Header.Get("Location")
	accepted := resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted
	if !accepted || loc == "" {
		// Rejected before a job existed (400, 503, ...): the submit status
		// is the final outcome of this logical request.
		mu.Lock()
		rep.submitLats = append(rep.submitLats, submitLat)
		rep.statuses[resp.StatusCode]++
		mu.Unlock()
		return
	}
	resultURL := cfg.url + loc + "/result"
	deadline := t0.Add(cfg.timeout)
	for {
		r2, err := client.Get(resultURL)
		if err != nil {
			fail()
			return
		}
		data, rerr := io.ReadAll(r2.Body)
		r2.Body.Close()
		if rerr != nil {
			fail()
			return
		}
		if r2.StatusCode != http.StatusAccepted {
			e2e := time.Since(t0)
			mu.Lock()
			rep.submitLats = append(rep.submitLats, submitLat)
			rep.statuses[r2.StatusCode]++
			rep.bytes += int64(len(data))
			rep.latencies = append(rep.latencies, e2e)
			if r2.StatusCode == http.StatusOK {
				sum := sha256.Sum256(data)
				if prev, ok := firstSums[v]; !ok {
					firstSums[v] = sum
				} else if prev != sum {
					rep.mismatch++
				}
			}
			mu.Unlock()
			return
		}
		if time.Now().After(deadline) {
			// The job outlived the deadline; count it like a timed-out
			// request rather than hanging the worker forever.
			fail()
			return
		}
		time.Sleep(cfg.poll)
	}
}
