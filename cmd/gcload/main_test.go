package main

import (
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hwgc"
	"hwgc/internal/server"
)

// TestLoadAgainstLiveServer is the acceptance check of the serving
// subsystem end to end: gcload drives a real in-process gcserved instance
// at ≥100 concurrent in-flight requests; the only tolerated non-200
// outcome is deliberate 429 backpressure, and repeated requests must come
// back byte-identical.
func TestLoadAgainstLiveServer(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server drain: %v", err)
		}
	}()

	rep, err := runLoad(loadConfig{
		url:      ts.URL,
		requests: 400,
		workers:  120,
		bench:    "jlisp",
		cores:    4,
		scale:    1,
		distinct: 4,
		timeout:  60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed() {
		rep.print(testWriter{t})
		t.Fatal("load run reported failure")
	}
	if rep.statuses[200] == 0 {
		t.Fatalf("no successful requests: %v", rep.statuses)
	}
	if rep.statuses[200]+rep.statuses[429] != 400 {
		t.Fatalf("unexpected outcomes: %v (transport errors %d)", rep.statuses, rep.transport)
	}
	if rep.mismatch != 0 {
		t.Fatalf("%d responses were not byte-identical to their first occurrence", rep.mismatch)
	}
	if len(rep.latencies) != 400 {
		t.Fatalf("recorded %d latencies, want 400", len(rep.latencies))
	}
	if rep.percentile(0.5) <= 0 || rep.percentile(0.99) < rep.percentile(0.5) {
		t.Fatalf("implausible percentiles: p50 %s p99 %s", rep.percentile(0.5), rep.percentile(0.99))
	}
}

// TestHierarchyLoadAgainstLiveServer drives the -numa/-placement/-cache
// flags against a real gcserved: hierarchy-enabled requests must succeed and
// stay byte-identical across repeats, exactly like the flat path.
func TestHierarchyLoadAgainstLiveServer(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server drain: %v", err)
		}
	}()

	rep, err := runLoad(loadConfig{
		url:       ts.URL,
		requests:  60,
		workers:   20,
		bench:     "jlisp",
		cores:     4,
		scale:     1,
		distinct:  2,
		numa:      2,
		placement: "local",
		cache:     16,
		timeout:   60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed() {
		rep.print(testWriter{t})
		t.Fatal("hierarchy load run reported failure")
	}
	if rep.statuses[200] == 0 {
		t.Fatalf("no successful requests: %v", rep.statuses)
	}
	if rep.mismatch != 0 {
		t.Fatalf("%d hierarchy responses were not byte-identical to their first occurrence", rep.mismatch)
	}
}

// TestLoadConfigHierarchy pins the flag-to-config mapping: -numa selects the
// domain count and placement, -cache the L1 set count, and leaving them at
// their zero values keeps the generated config flat (bit-identical requests
// with pre-hierarchy gcload builds).
func TestLoadConfigHierarchy(t *testing.T) {
	cfg := loadConfig{cores: 4, numa: 2, placement: "local", cache: 16}
	c := cfg.config()
	if c.NUMADomains != 2 || c.NUMAPlacement != hwgc.PlacementLocal {
		t.Fatalf("NUMA flags not mapped: %+v", c)
	}
	if c.L1Sets != 16 {
		t.Fatalf("-cache not mapped to L1Sets: %+v", c)
	}
	flat := loadConfig{cores: 4}
	if got := flat.config(); got != (hwgc.Config{Cores: 4}) {
		t.Fatalf("flat config grew fields: %+v", got)
	}
}

// TestBatchLoadAgainstLiveServer drives the -batch mode against a real
// gcserved: every batch must come back 200 or 207, per-item failures other
// than backpressure are errors, and fully-successful batches must be
// byte-identical across repeats.
func TestBatchLoadAgainstLiveServer(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server drain: %v", err)
		}
	}()

	rep, err := runLoad(loadConfig{
		url:      ts.URL,
		requests: 40,
		workers:  8,
		bench:    "jlisp",
		cores:    2,
		scale:    1,
		distinct: 4,
		batch:    8,
		timeout:  60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed() {
		rep.print(testWriter{t})
		t.Fatal("batch load run reported failure")
	}
	if rep.itemsOK+rep.items429 != 40*8 {
		t.Fatalf("item outcomes ok=%d 429=%d failed=%d, want %d total",
			rep.itemsOK, rep.items429, rep.itemsFailed, 40*8)
	}
	if rep.mismatch != 0 {
		t.Fatalf("%d fully-successful batches were not byte-identical", rep.mismatch)
	}
}

// TestAsyncLoadAgainstLiveServer drives the -async mode end to end against
// a jobs-enabled gcserved: every logical request must submit, poll and
// complete with a byte-identical result, and the report must carry the two
// separate latency distributions.
func TestAsyncLoadAgainstLiveServer(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 2, JobsDir: t.TempDir(), JobRunners: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server drain: %v", err)
		}
	}()

	rep, err := runLoad(loadConfig{
		url:      ts.URL,
		requests: 60,
		workers:  20,
		bench:    "jlisp",
		cores:    2,
		scale:    1,
		distinct: 4,
		async:    true,
		poll:     2 * time.Millisecond,
		timeout:  60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.failed() {
		rep.print(testWriter{t})
		t.Fatal("async load run reported failure")
	}
	if rep.statuses[200] != 60 {
		t.Fatalf("want 60 completed jobs, got %v (transport %d)", rep.statuses, rep.transport)
	}
	if rep.mismatch != 0 {
		t.Fatalf("%d job results were not byte-identical across repeats", rep.mismatch)
	}
	if len(rep.submitLats) != 60 || len(rep.latencies) != 60 {
		t.Fatalf("recorded %d submit and %d e2e latencies, want 60 each",
			len(rep.submitLats), len(rep.latencies))
	}
	if percentileOf(rep.submitLats, 0.5) <= 0 || rep.percentile(0.5) <= 0 {
		t.Fatal("implausible zero medians")
	}
}

func TestRunLoadValidation(t *testing.T) {
	if _, err := runLoad(loadConfig{requests: 0, workers: 1}); err == nil {
		t.Error("zero requests accepted")
	}
	if _, err := runLoad(loadConfig{requests: 1, workers: 1, bench: "no-such-bench"}); err == nil {
		t.Error("unknown benchmark accepted (request canonicalization should reject it)")
	}
	if _, err := runLoad(loadConfig{requests: 1, workers: 1, bench: "jlisp", batch: 100000}); err == nil {
		t.Error("oversized -batch accepted")
	}
	if _, err := runLoad(loadConfig{requests: 1, workers: 1, bench: "no-such-bench", batch: 4}); err == nil {
		t.Error("unknown benchmark accepted in batch mode")
	}
	if _, err := runLoad(loadConfig{requests: 1, workers: 1, bench: "jlisp", async: true, batch: 4, poll: time.Millisecond}); err == nil {
		t.Error("-async with -batch accepted")
	}
	if _, err := runLoad(loadConfig{requests: 1, workers: 1, bench: "jlisp", class: "interactive"}); err == nil {
		t.Error("-class without -async accepted")
	}
	if _, err := runLoad(loadConfig{requests: 1, workers: 1, bench: "jlisp", async: true}); err == nil {
		t.Error("-async with zero -poll accepted")
	}
	if _, err := runLoad(loadConfig{requests: 1, workers: 1, bench: "no-such-bench", async: true, poll: time.Millisecond}); err == nil {
		t.Error("unknown benchmark accepted in async mode")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}

// TestSweepModeAgainstLiveServer drives -sweep end to end: submit a small
// spec to a jobs-enabled gcserved, follow the SSE stream to the terminal
// event and verify the report covers convergence and the top frontier. A
// second run must dedupe onto the finished sweep and still succeed.
func TestSweepModeAgainstLiveServer(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 2, JobsDir: t.TempDir(), JobRunners: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server drain: %v", err)
		}
	}()

	spec := filepath.Join(t.TempDir(), "spec.json")
	body := `{"Benches":["jlisp"],"Seeds":[7],"Base":{},"Axes":[{"Field":"Cores","Values":[1,2,4]}]}`
	if err := os.WriteFile(spec, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := loadConfig{url: ts.URL, sweepSpec: spec, timeout: 60 * time.Second}
	var out strings.Builder
	ok, err := runSweepMode(cfg, &out)
	if err != nil {
		t.Fatalf("sweep mode: %v\n%s", err, out.String())
	}
	if !ok {
		t.Fatalf("sweep mode reported failure:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{"3 points", "objective speedup-per-core", "accepted",
		"done in", "completed 3  failed 0", "frontier converged", "#1 bench=jlisp"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// Resubmitting the identical space must coalesce onto the finished
	// sweep: same ID, zero new jobs, and the done event replays immediately.
	out.Reset()
	ok, err = runSweepMode(cfg, &out)
	if err != nil || !ok {
		t.Fatalf("deduped sweep mode: ok=%v err=%v\n%s", ok, err, out.String())
	}
	if !strings.Contains(out.String(), "deduped onto existing sweep") {
		t.Errorf("second run did not dedupe:\n%s", out.String())
	}

	// Mode exclusions are errors, not silent fallbacks.
	if _, err := runSweepMode(loadConfig{sweepSpec: spec, batch: 4}, io.Discard); err == nil {
		t.Error("-sweep with -batch accepted")
	}
	if _, err := runSweepMode(loadConfig{sweepSpec: spec, async: true}, io.Discard); err == nil {
		t.Error("-sweep with -async accepted")
	}
}
