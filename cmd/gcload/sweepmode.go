package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hwgc"
	"hwgc/internal/sweep"
)

// runSweepMode drives one parameter-space sweep end to end: submit the spec
// to POST /v1/sweeps, follow the SSE event stream (reconnecting with
// Last-Event-ID on drops), and report submit latency, completion time and
// frontier-convergence latency — the time from submit to the last ranking
// change, which is the number an exploration user actually waits for: the
// moment the top of the frontier stopped moving. Returns ok=false when the
// sweep finished with failures or was cancelled.
func runSweepMode(cfg loadConfig, w io.Writer) (bool, error) {
	if cfg.batch > 0 || cfg.async || cfg.sweepReq {
		return false, fmt.Errorf("-sweep excludes -batch, -async and -sweepreq")
	}
	spec, err := os.Open(cfg.sweepSpec)
	if err != nil {
		return false, err
	}
	space, err := hwgc.DecodeSweepSpace(spec)
	spec.Close()
	if err != nil {
		return false, fmt.Errorf("decoding %s: %w", cfg.sweepSpec, err)
	}

	body, err := json.Marshal(struct {
		Space *hwgc.SweepSpace
		Class string `json:",omitempty"`
	}{Space: space, Class: cfg.class})
	if err != nil {
		return false, err
	}

	// No client-level timeout: the SSE stream is long-lived by design. The
	// whole sweep is bounded by -timeout through the context instead.
	client := &http.Client{}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.url+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	data, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	submitLat := time.Since(start)
	if rerr != nil {
		return false, rerr
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("submit status %d: %s", resp.StatusCode, data)
	}
	var info sweep.Info
	if err := json.Unmarshal(data, &info); err != nil {
		return false, fmt.Errorf("decoding sweep info: %w", err)
	}
	verb := "accepted"
	if resp.StatusCode == http.StatusOK {
		verb = "deduped onto existing sweep"
	}
	fmt.Fprintf(w, "gcload: sweep %s (%d points, objective %s) %s\n",
		shortID(info.ID), info.Points, info.Objective, verb)
	fmt.Fprintf(w, "submit   %s\n", submitLat.Round(time.Microsecond))

	final, convergedAt, updates, reconnects, err := followSweep(ctx, client, cfg.url, info.ID, start)
	if err != nil {
		return false, err
	}
	elapsed := final.at
	fmt.Fprintf(w, "%s in %s: completed %d  failed %d  cancelled %d  deduped %d\n",
		final.ev.Type, elapsed.Round(time.Millisecond),
		final.ev.Completed, final.ev.Failed, final.ev.Cancelled, info.Deduped)
	if updates > 0 {
		fmt.Fprintf(w, "frontier converged %s after submit (%d ranking updates", convergedAt.Round(time.Millisecond), updates)
		if reconnects > 0 {
			fmt.Fprintf(w, ", %d stream reconnects", reconnects)
		}
		fmt.Fprintln(w, ")")
	}
	top := final.ev.Frontier
	if len(top) > 5 {
		top = top[:5]
	}
	for _, e := range top {
		fmt.Fprintf(w, "  #%d bench=%s scale=%d seed=%d cores=%d value=%.4f cycles=%d\n",
			e.Rank, e.Bench, e.Scale, e.Seed, e.Cores, e.Value, e.Cycles)
	}
	return final.ev.Type == sweep.StateDone && final.ev.Failed == 0, nil
}

// terminalEvent is the sweep's closing event plus when it was observed.
type terminalEvent struct {
	ev sweep.Event
	at time.Duration // since submit
}

// followSweep reads the sweep's SSE stream to its terminal event. A dropped
// stream reconnects with Last-Event-ID, so no event is observed twice and
// none is missed — the same resume contract a browser EventSource uses.
func followSweep(ctx context.Context, client *http.Client, baseURL, id string, start time.Time) (final terminalEvent, convergedAt time.Duration, updates, reconnects int, err error) {
	var lastSeq int64
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			reconnects++
			select {
			case <-time.After(100 * time.Millisecond):
			case <-ctx.Done():
				return final, 0, 0, reconnects, fmt.Errorf("sweep %s: %w", shortID(id), ctx.Err())
			}
		}
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/sweeps/"+id+"/events", nil)
		if rerr != nil {
			return final, 0, 0, reconnects, rerr
		}
		if lastSeq > 0 {
			req.Header.Set("Last-Event-ID", fmt.Sprint(lastSeq))
		}
		resp, rerr := client.Do(req)
		if rerr != nil {
			if ctx.Err() != nil {
				return final, 0, 0, reconnects, fmt.Errorf("sweep %s: %w", shortID(id), ctx.Err())
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return final, 0, 0, reconnects, fmt.Errorf("event stream status %d", resp.StatusCode)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && data != "":
				var ev sweep.Event
				if jerr := json.Unmarshal([]byte(data), &ev); jerr != nil {
					resp.Body.Close()
					return final, 0, 0, reconnects, fmt.Errorf("decoding event: %w", jerr)
				}
				data = ""
				lastSeq = ev.Seq
				switch ev.Type {
				case "frontier":
					updates++
					convergedAt = time.Since(start)
				case sweep.StateDone, sweep.StateCancelled:
					resp.Body.Close()
					return terminalEvent{ev: ev, at: time.Since(start)}, convergedAt, updates, reconnects, nil
				}
			}
		}
		resp.Body.Close()
		// Stream ended without a terminal event: reconnect and resume.
	}
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
