// Command gcreplay records, resumes, diffs, and bisects deterministic
// collection runs through the snapshot subsystem. It is the replay-debugging
// companion to gcsim: where gcsim answers "what are the stats", gcreplay
// answers "at which exact clock cycle did two runs stop agreeing, and in
// which machine register".
//
// Usage:
//
//	gcreplay record -bench javac -cores 8 -every 1000 -out ckpts/
//	gcreplay resume -snap ckpts/snap-0000012000.snap
//	gcreplay diff a.snap b.snap [-ignore Config,Cycle]
//	gcreplay bisect -bench javac -config-a '{"Cores":8}' -config-b '{"Cores":8,"ExtraMemLatency":20}'
//	gcreplay bisect -bench jlisp -config-a '{"Cores":4}' -config-b '{"Cores":4}' -inject 100:500
//
// record runs a collection, writing a snapshot roughly every N cycles.
// resume restores one snapshot and drives it to completion. diff prints the
// field-level difference between two snapshots. bisect binary-searches the
// first clock cycle at which two deterministic runs differ in machine state,
// re-running both from scratch with fast-forward disabled so every probe is
// cycle-exact; -inject addr:cycle flips a heap bit in run B at a chosen
// cycle, giving a synthetic divergence with a known ground-truth answer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hwgc"
	"hwgc/internal/machine"
	"hwgc/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "gcreplay: expected a subcommand: record, resume, diff, bisect")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:], os.Stdout)
	case "resume":
		err = cmdResume(os.Args[2:], os.Stdout)
	case "diff":
		err = cmdDiff(os.Args[2:], os.Stdout)
	case "bisect":
		err = cmdBisect(os.Args[2:], os.Stdout)
	default:
		err = fmt.Errorf("unknown subcommand %q (want record, resume, diff, or bisect)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcreplay:", err)
		os.Exit(1)
	}
}

// parseConfig merges a JSON config with the convenience flags; the flags win
// so `-config '{"Cores":8}' -cores 16` behaves like the last word given.
func parseConfig(configJSON string, cores, extraLat int) (hwgc.Config, error) {
	var cfg hwgc.Config
	if configJSON != "" {
		if err := json.Unmarshal([]byte(configJSON), &cfg); err != nil {
			return cfg, fmt.Errorf("parsing -config: %w", err)
		}
	}
	if cores != 0 {
		cfg.Cores = cores
	}
	if extraLat != 0 {
		cfg.ExtraMemLatency = extraLat
	}
	return cfg, nil
}

func cmdRecord(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gcreplay record", flag.ContinueOnError)
	var (
		bench      = fs.String("bench", "javac", "benchmark workload ("+strings.Join(hwgc.Workloads(), ", ")+")")
		scale      = fs.Int("scale", 1, "workload scale factor")
		seed       = fs.Int64("seed", 42, "workload seed")
		cores      = fs.Int("cores", 0, "number of GC cores (overrides -config)")
		extraLat   = fs.Int("extra-latency", 0, "extra memory latency in cycles (overrides -config)")
		configJSON = fs.String("config", "", "full machine config as JSON (hwgc.Config)")
		every      = fs.Int64("every", 1000, "cycles between checkpoints")
		outDir     = fs.String("out", "checkpoints", "directory to write snap-<cycle>.snap files into")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *every <= 0 {
		return fmt.Errorf("-every must be positive")
	}
	cfg, err := parseConfig(*configJSON, *cores, *extraLat)
	if err != nil {
		return err
	}
	h, err := hwgc.BuildWorkload(*bench, *scale, *seed)
	if err != nil {
		return err
	}
	col, err := hwgc.StartCollection(h, cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	written := 0
	for {
		done, err := col.StepCycles(*every)
		if err != nil {
			return err
		}
		if done {
			break
		}
		snap, err := col.Snapshot()
		if err != nil {
			return err
		}
		path := filepath.Join(*outDir, fmt.Sprintf("snap-%010d.snap", col.Cycle()))
		if err := os.WriteFile(path, snap, 0o644); err != nil {
			return err
		}
		written++
	}
	st, err := col.Finish()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "recorded %s: %d checkpoints in %s, finished at cycle %d (gc-clock-cycles %d)\n",
		*bench, written, *outDir, st.Cycles, st.Cycles)
	return nil
}

func cmdResume(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gcreplay resume", flag.ContinueOnError)
	snapPath := fs.String("snap", "", "snapshot file to resume from")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" {
		return fmt.Errorf("-snap is required")
	}
	data, err := os.ReadFile(*snapPath)
	if err != nil {
		return err
	}
	col, err := hwgc.ResumeCollection(data)
	if err != nil {
		return err
	}
	from := col.Cycle()
	st, err := col.Finish()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "resumed from cycle %d, finished at cycle %d (%d cores, %d words copied)\n",
		from, st.Cycles, len(st.PerCore), st.Sum().WordsCopied)
	return nil
}

func cmdDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gcreplay diff", flag.ContinueOnError)
	ignore := fs.String("ignore", "", "comma-separated top-level state fields to ignore")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two snapshot files, got %d", fs.NArg())
	}
	a, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	var skip []string
	if *ignore != "" {
		skip = strings.Split(*ignore, ",")
	}
	lines, err := hwgc.DiffSnapshots(a, b, skip...)
	if err != nil {
		return err
	}
	if len(lines) == 0 {
		fmt.Fprintln(out, "snapshots identical")
		return nil
	}
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	return fmt.Errorf("snapshots differ in %d+ fields", len(lines))
}

// runSpec describes one side of a bisection: a deterministic workload build
// plus an optional heap-bit injection at a chosen cycle.
type runSpec struct {
	bench       string
	scale       int
	seed        int64
	cfg         hwgc.Config
	injectAddr  int64 // heap word index to corrupt; -1 = none
	injectCycle int64
}

// stateAt replays spec cycle-exactly (fast-forward disabled) up to the given
// cycle and returns the machine state there. If the collection terminates
// first it returns (nil, endCycle, nil).
func stateAt(spec runSpec, cycle int64) (*machine.State, int64, error) {
	h, err := hwgc.BuildWorkload(spec.bench, spec.scale, spec.seed)
	if err != nil {
		return nil, 0, err
	}
	m, err := machine.New(h, spec.cfg)
	if err != nil {
		return nil, 0, err
	}
	m.NoFastForward = true
	m.BeginCollect()
	injected := false
	for {
		if spec.injectAddr >= 0 && !injected && m.Cycle() == spec.injectCycle {
			mem := h.Mem()
			if spec.injectAddr >= int64(len(mem)) {
				return nil, 0, fmt.Errorf("inject address %d outside heap of %d words", spec.injectAddr, len(mem))
			}
			mem[spec.injectAddr] ^= 1
			injected = true
		}
		if m.Cycle() >= cycle {
			break
		}
		done, err := m.StepCycle()
		if err != nil {
			return nil, 0, err
		}
		if done {
			return nil, m.Cycle(), nil
		}
	}
	st, err := m.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	return st, 0, nil
}

// bisect finds the first clock cycle at which the two runs' machine states
// differ (configuration differences themselves are ignored). It returns the
// divergent cycle, the field-level diff there, and the two divergent states.
// A divergence of -1 means the runs never differed.
func bisect(a, b runSpec, progress func(cycle int64, diverged bool)) (int64, []string, *machine.State, *machine.State, error) {
	// Find both end cycles with one full stepped run each.
	const forever = int64(1) << 62
	_, endA, err := stateAt(a, forever)
	if err != nil {
		return 0, nil, nil, nil, fmt.Errorf("run A: %w", err)
	}
	_, endB, err := stateAt(b, forever)
	if err != nil {
		return 0, nil, nil, nil, fmt.Errorf("run B: %w", err)
	}
	end := endA
	if endB < end {
		end = endB
	}
	// The last cycle with a live (snapshot-able) machine on both sides.
	hi := end - 1
	probe := func(c int64) (bool, []string, *machine.State, *machine.State, error) {
		sa, _, err := stateAt(a, c)
		if err != nil {
			return false, nil, nil, nil, fmt.Errorf("run A at cycle %d: %w", c, err)
		}
		sb, _, err := stateAt(b, c)
		if err != nil {
			return false, nil, nil, nil, fmt.Errorf("run B at cycle %d: %w", c, err)
		}
		d := snapshot.Diff(sa, sb, "Config")
		if progress != nil {
			progress(c, len(d) > 0)
		}
		return len(d) > 0, d, sa, sb, nil
	}
	diverged, diff, sa, sb, err := probe(hi)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	if !diverged {
		if endA != endB {
			// States agree while both run, but one terminates earlier.
			return end, []string{fmt.Sprintf("end cycle: %d != %d", endA, endB)}, sa, sb, nil
		}
		return -1, nil, nil, nil, nil
	}
	lo := int64(0)
	if d0, diff0, sa0, sb0, err := probe(lo); err != nil {
		return 0, nil, nil, nil, err
	} else if d0 {
		return 0, diff0, sa0, sb0, nil
	}
	// Invariant: states agree at lo, differ at hi.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		d, dm, sam, sbm, err := probe(mid)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		if d {
			hi, diff, sa, sb = mid, dm, sam, sbm
		} else {
			lo = mid
		}
	}
	return hi, diff, sa, sb, nil
}

func cmdBisect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gcreplay bisect", flag.ContinueOnError)
	var (
		bench   = fs.String("bench", "javac", "benchmark workload ("+strings.Join(hwgc.Workloads(), ", ")+")")
		scale   = fs.Int("scale", 1, "workload scale factor")
		seed    = fs.Int64("seed", 42, "workload seed")
		cfgA    = fs.String("config-a", "", "run A machine config as JSON (hwgc.Config)")
		cfgB    = fs.String("config-b", "", "run B machine config as JSON (hwgc.Config)")
		inject  = fs.String("inject", "", "corrupt run B's heap: addr:cycle flips bit 0 of heap word addr at that cycle (a wild flip in a header or pointer word can crash the run; an unused word diverges only the heap image)")
		dumpDir = fs.String("dump-dir", "", "write the divergent snapshot pair into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	a := runSpec{bench: *bench, scale: *scale, seed: *seed, injectAddr: -1}
	b := a
	var err error
	if a.cfg, err = parseConfig(*cfgA, 0, 0); err != nil {
		return fmt.Errorf("-config-a: %w", err)
	}
	if b.cfg, err = parseConfig(*cfgB, 0, 0); err != nil {
		return fmt.Errorf("-config-b: %w", err)
	}
	if *inject != "" {
		addr, cycle, ok := strings.Cut(*inject, ":")
		if !ok {
			return fmt.Errorf("-inject wants addr:cycle, got %q", *inject)
		}
		if b.injectAddr, err = strconv.ParseInt(addr, 10, 64); err != nil {
			return fmt.Errorf("-inject address: %w", err)
		}
		if b.injectCycle, err = strconv.ParseInt(cycle, 10, 64); err != nil {
			return fmt.Errorf("-inject cycle: %w", err)
		}
	}
	cycle, diff, sa, sb, err := bisect(a, b, func(c int64, diverged bool) {
		verdict := "identical"
		if diverged {
			verdict = "DIVERGED"
		}
		fmt.Fprintf(out, "probe cycle %d: %s\n", c, verdict)
	})
	if err != nil {
		return err
	}
	if cycle < 0 {
		fmt.Fprintln(out, "no divergence: the two runs are bit-identical at every cycle")
		return nil
	}
	fmt.Fprintf(out, "first divergent cycle: %d\n", cycle)
	for _, l := range diff {
		fmt.Fprintln(out, "  "+l)
	}
	if *dumpDir != "" && sa != nil && sb != nil {
		if err := os.MkdirAll(*dumpDir, 0o755); err != nil {
			return err
		}
		pa := filepath.Join(*dumpDir, fmt.Sprintf("divergent-a-cycle%d.snap", cycle))
		pb := filepath.Join(*dumpDir, fmt.Sprintf("divergent-b-cycle%d.snap", cycle))
		if err := os.WriteFile(pa, snapshot.Encode(sa), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(pb, snapshot.Encode(sb), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "divergent pair written to %s and %s\n", pa, pb)
	}
	return nil
}
