package main

import (
	"bytes"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hwgc"
)

func TestRecordResumeDiff(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := cmdRecord([]string{"-bench", "jlisp", "-cores", "4", "-every", "500", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "recorded jlisp:") {
		t.Fatalf("record output: %s", out.String())
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoints written (err=%v)", err)
	}

	// Resuming any checkpoint must land on the uninterrupted cycle count.
	h, err := hwgc.BuildWorkload("jlisp", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hwgc.Collect(h, hwgc.Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range snaps {
		out.Reset()
		if err := cmdResume([]string{"-snap", snap}, &out); err != nil {
			t.Fatalf("resume %s: %v", snap, err)
		}
		if !strings.Contains(out.String(), "finished at cycle "+strconv.FormatInt(want.Cycles, 10)) {
			t.Errorf("resume %s: output %q does not mention cycle %d", snap, out.String(), want.Cycles)
		}
	}

	// diff: a snapshot against itself is identical, two different checkpoints
	// differ (non-nil error) and report at least the cycle counter.
	out.Reset()
	if err := cmdDiff([]string{snaps[0], snaps[0]}, &out); err != nil {
		t.Fatalf("self-diff: %v", err)
	}
	if !strings.Contains(out.String(), "identical") {
		t.Fatalf("self-diff output: %s", out.String())
	}
	if len(snaps) > 1 {
		out.Reset()
		if err := cmdDiff([]string{snaps[0], snaps[len(snaps)-1]}, &out); err == nil {
			t.Fatal("diff of different checkpoints reported no difference")
		}
		if !strings.Contains(out.String(), "!=") {
			t.Fatalf("diff output has no field differences: %s", out.String())
		}
	}
}

// TestRecordResumeBarrierMode runs the record/resume loop over a concurrent
// collection: the -config JSON carries MutatorOps and BarrierMode, the
// recorded checkpoints embed the mutator state, and every resume lands on
// the uninterrupted run's cycle count.
func TestRecordResumeBarrierMode(t *testing.T) {
	cfg := hwgc.Config{Cores: 4, MutatorOps: 1 << 40, BarrierMode: hwgc.BarrierSATB}
	h, err := hwgc.BuildWorkload("jlisp", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hwgc.Collect(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Mutator == nil || want.Mutator.BarrierInvocations == 0 {
		t.Fatalf("reference run has no barrier activity: %+v", want.Mutator)
	}

	dir := t.TempDir()
	var out bytes.Buffer
	err = cmdRecord([]string{"-bench", "jlisp",
		"-config", `{"Cores":4,"MutatorOps":1099511627776,"BarrierMode":"satb"}`,
		"-every", "500", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoints written (err=%v)", err)
	}
	for _, snap := range snaps {
		out.Reset()
		if err := cmdResume([]string{"-snap", snap}, &out); err != nil {
			t.Fatalf("resume %s: %v", snap, err)
		}
		if !strings.Contains(out.String(), "finished at cycle "+strconv.FormatInt(want.Cycles, 10)) {
			t.Errorf("resume %s: output %q does not mention cycle %d", snap, out.String(), want.Cycles)
		}
	}
}

// TestRecordResumeMemoryHierarchy runs the record/resume loop over a
// NUMA + cache collection: the -config JSON carries the hierarchy knobs,
// the recorded checkpoints embed the completion classes, extra completion
// rings and cache tag arrays, and every resume lands on the uninterrupted
// run's cycle count.
func TestRecordResumeMemoryHierarchy(t *testing.T) {
	cfg := hwgc.Config{Cores: 4, NUMADomains: 2, NUMAPlacement: hwgc.PlacementLocal, L1Sets: 16}
	h, err := hwgc.BuildWorkload("jlisp", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hwgc.Collect(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Mem.LocalAccesses+want.Mem.RemoteAccesses == 0 || want.Mem.L1Hits == 0 {
		t.Fatalf("reference run has no hierarchy activity: %+v", want.Mem)
	}

	dir := t.TempDir()
	var out bytes.Buffer
	err = cmdRecord([]string{"-bench", "jlisp",
		"-config", `{"Cores":4,"NUMADomains":2,"NUMAPlacement":"local","L1Sets":16}`,
		"-every", "500", "-out", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no checkpoints written (err=%v)", err)
	}
	for _, snap := range snaps {
		out.Reset()
		if err := cmdResume([]string{"-snap", snap}, &out); err != nil {
			t.Fatalf("resume %s: %v", snap, err)
		}
		if !strings.Contains(out.String(), "finished at cycle "+strconv.FormatInt(want.Cycles, 10)) {
			t.Errorf("resume %s: output %q does not mention cycle %d", snap, out.String(), want.Cycles)
		}
	}
}

// TestBisectInjectedDivergence is the acceptance test for bisect: inject a
// single-bit heap corruption into run B at a known cycle and check that the
// binary search pinpoints exactly that cycle.
func TestBisectInjectedDivergence(t *testing.T) {
	spec := runSpec{bench: "jlisp", scale: 1, seed: 42, cfg: hwgc.Config{Cores: 4}, injectAddr: -1}
	// Corrupt a word at the very top of to-space: with 2x headroom the
	// evacuation never reaches it, so the flipped bit perturbs exactly the
	// heap image from the injection cycle onward without sending the
	// simulation off into the weeds.
	h, err := hwgc.BuildWorkload("jlisp", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	addr := int64(len(h.Mem())) - 2
	for _, injectCycle := range []int64{1, 137, 600} {
		b := spec
		b.injectAddr = addr
		b.injectCycle = injectCycle
		cycle, diff, sa, sb, err := bisect(spec, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cycle != injectCycle {
			t.Errorf("inject at %d: bisect reported first divergent cycle %d", injectCycle, cycle)
		}
		if len(diff) == 0 || sa == nil || sb == nil {
			t.Errorf("inject at %d: no field diff returned", injectCycle)
		}
	}
}

// TestBisectIdenticalRuns checks the no-divergence verdict.
func TestBisectIdenticalRuns(t *testing.T) {
	spec := runSpec{bench: "jlisp", scale: 1, seed: 42, cfg: hwgc.Config{Cores: 2}, injectAddr: -1}
	cycle, _, _, _, err := bisect(spec, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cycle != -1 {
		t.Fatalf("identical runs: bisect reported divergence at cycle %d", cycle)
	}
}

// TestBisectConfigDivergence bisects two genuinely different configurations;
// the exact cycle depends on the configs, but it must be positive, stable,
// and the diff must not mention Config (which is ignored).
func TestBisectConfigDivergence(t *testing.T) {
	a := runSpec{bench: "jlisp", scale: 1, seed: 42, cfg: hwgc.Config{Cores: 4}, injectAddr: -1}
	b := a
	b.cfg.ExtraMemLatency = 20
	var out bytes.Buffer
	err := cmdBisect([]string{
		"-bench", "jlisp", "-scale", "1", "-seed", "42",
		"-config-a", `{"Cores":4}`,
		"-config-b", `{"Cores":4,"ExtraMemLatency":20}`,
		"-dump-dir", t.TempDir(),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "first divergent cycle:") {
		t.Fatalf("bisect output: %s", s)
	}
	if strings.Contains(s, "  Config") {
		t.Fatalf("diff should ignore Config: %s", s)
	}
	if !strings.Contains(s, "divergent pair written to") {
		t.Fatalf("missing dump confirmation: %s", s)
	}

	cycle, _, _, _, err := bisect(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	cycle2, _, _, _, err := bisect(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cycle != cycle2 || cycle <= 0 {
		t.Fatalf("bisect unstable or nonpositive: %d vs %d", cycle, cycle2)
	}
}

func TestBisectInjectAddrOutOfRange(t *testing.T) {
	b := runSpec{bench: "jlisp", scale: 1, seed: 42, cfg: hwgc.Config{Cores: 2}, injectAddr: 1 << 40, injectCycle: 1}
	a := b
	a.injectAddr = -1
	if _, _, _, _, err := bisect(a, b, nil); err == nil {
		t.Fatal("out-of-range inject address should fail")
	}
}

func TestCmdDirectErrors(t *testing.T) {
	var out bytes.Buffer
	if err := cmdResume([]string{}, &out); err == nil {
		t.Error("resume without -snap should fail")
	}
	if err := cmdDiff([]string{"only-one"}, &out); err == nil {
		t.Error("diff with one arg should fail")
	}
	if err := cmdRecord([]string{"-every", "0", "-out", t.TempDir()}, &out); err == nil {
		t.Error("record with -every 0 should fail")
	}
	if err := cmdBisect([]string{"-inject", "nonsense"}, &out); err == nil {
		t.Error("malformed -inject should fail")
	}
}
