// Command gcserved serves the hwgc simulator over HTTP/JSON: a fixed worker
// pool over a bounded job queue with 429 backpressure, a content-addressed
// LRU result cache (simulations are deterministic, so hits are
// byte-identical), per-request deadlines, Prometheus-format metrics and
// graceful shutdown that drains admitted jobs. With -checkpoint-dir set,
// long collections checkpoint their simulator state every -checkpoint-cycles
// clock cycles: shutdown preempts in-flight jobs at a snapshot boundary
// instead of waiting them out, and a restarted server resumes them from disk
// with byte-identical results.
//
// Usage:
//
//	gcserved [-addr :8080] [-workers N] [-queue 64] [-cache-entries 1024]
//	         [-cache-mb 64] [-timeout 60s] [-max-scale 64] [-retry-after 1s]
//	         [-checkpoint-dir DIR] [-checkpoint-cycles 200000]
//	         [-jobs-dir DIR] [-job-classes interactive:8,batch:1] [-job-runners 2]
//
// Endpoints:
//
//	POST /v1/collect   {"Bench":"javac","Scale":1,"Seed":42,"Config":{"Cores":16}}
//	POST /v1/sweep     {"Bench":"javac","Cores":[1,2,4,8,16],"Config":{}}
//	POST /v1/batch     {"Items":[{"Collect":{...}},{"Sweep":{...}}]}
//	GET  /v1/workloads
//	GET  /healthz
//	GET  /metrics
//
// With -jobs-dir set, the durable async job tier is mounted as well:
// POST /v1/jobs, GET /v1/jobs/{id}[/result|/events], DELETE /v1/jobs/{id}.
// Submissions, transitions and results are WAL-logged in -jobs-dir, running
// jobs checkpoint every -checkpoint-cycles and yield to higher-priority
// classes at those boundaries, and a restarted server resumes unfinished
// jobs with byte-identical results.
//
// The job tier also mounts parameter-space sweeps (see internal/sweep):
// POST /v1/sweeps expands a versioned SweepSpace spec into canonical
// collect points, dedupes against cached results and fans the remainder
// out as jobs; GET /v1/sweeps/{id} reports progress plus the current
// ranked frontier; GET /v1/sweeps/{id}/events streams frontier updates
// over SSE with Last-Event-ID resume; DELETE /v1/sweeps/{id} cancels.
// Sweep state rides the jobs WAL, so a restart resumes unfinished sweeps.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hwgc/internal/jobs"
	"hwgc/internal/server"
)

func main() {
	addr, opts, drain, err := parseOptions(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcserved:", err)
		os.Exit(2)
	}
	if err := run(addr, opts, drain); err != nil {
		fmt.Fprintln(os.Stderr, "gcserved:", err)
		os.Exit(1)
	}
}

// parseOptions turns CLI arguments into server options. Split from main so
// flag wiring is testable without spawning a process.
func parseOptions(args []string) (addr string, opts server.Options, drain time.Duration, err error) {
	fs := flag.NewFlagSet("gcserved", flag.ContinueOnError)
	var (
		addrFlag     = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "bounded job queue depth")
		cacheEntries = fs.Int("cache-entries", 1024, "result cache entry bound")
		cacheMB      = fs.Int64("cache-mb", 64, "result cache size bound in MiB")
		timeout      = fs.Duration("timeout", 60*time.Second, "per-request deadline (queue wait + simulation)")
		maxScale     = fs.Int("max-scale", 64, "largest accepted workload scale (-1 = unlimited)")
		retryAfter   = fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses (rounded up to whole seconds)")
		drainFlag    = fs.Duration("drain", 30*time.Second, "graceful shutdown drain budget")
		ckptDir      = fs.String("checkpoint-dir", "", "directory for simulation checkpoints; enables preempt-on-shutdown and crash recovery")
		ckptCycles   = fs.Int64("checkpoint-cycles", 0, "clock cycles between checkpoints (0 = default 200000)")
		jobsDir      = fs.String("jobs-dir", "", "directory for the durable async job tier (WAL + job checkpoints); enables /v1/jobs")
		jobClasses   = fs.String("job-classes", "", "async job priority classes as name:weight,... (default interactive:8,batch:1)")
		jobRunners   = fs.Int("job-runners", 0, "async job runners (0 = default 2)")
	)
	if err := fs.Parse(args); err != nil {
		return "", server.Options{}, 0, err
	}
	if fs.NArg() > 0 {
		return "", server.Options{}, 0, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *retryAfter <= 0 {
		return "", server.Options{}, 0, fmt.Errorf("-retry-after must be positive, got %s", *retryAfter)
	}
	if *ckptCycles < 0 {
		return "", server.Options{}, 0, fmt.Errorf("-checkpoint-cycles must be nonnegative, got %d", *ckptCycles)
	}
	if *ckptCycles > 0 && *ckptDir == "" {
		return "", server.Options{}, 0, fmt.Errorf("-checkpoint-cycles requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return "", server.Options{}, 0, fmt.Errorf("-checkpoint-dir: %v", err)
		}
	}
	if *jobClasses != "" && *jobsDir == "" {
		return "", server.Options{}, 0, fmt.Errorf("-job-classes requires -jobs-dir")
	}
	if *jobRunners < 0 {
		return "", server.Options{}, 0, fmt.Errorf("-job-runners must be nonnegative, got %d", *jobRunners)
	}
	if *jobRunners > 0 && *jobsDir == "" {
		return "", server.Options{}, 0, fmt.Errorf("-job-runners requires -jobs-dir")
	}
	if *jobClasses != "" {
		if _, err := jobs.ParseClasses(*jobClasses); err != nil {
			return "", server.Options{}, 0, fmt.Errorf("-job-classes: %v", err)
		}
	}
	return *addrFlag, server.Options{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheMB << 20,
		Timeout:          *timeout,
		MaxScale:         *maxScale,
		RetryAfter:       *retryAfter,
		CheckpointDir:    *ckptDir,
		CheckpointCycles: *ckptCycles,
		JobsDir:          *jobsDir,
		JobClasses:       *jobClasses,
		JobRunners:       *jobRunners,
	}, *drainFlag, nil
}

func run(addr string, opts server.Options, drain time.Duration) error {
	srv, err := server.New(opts)
	if err != nil {
		return err
	}
	srv.Start()

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("gcserved: listening on %s (workers %d, queue %d)", addr, srv.Workers(), srv.Queue().Cap())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("gcserved: shutting down, draining for up to %s", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Drain the serving layer before the HTTP layer: handlers of in-flight
	// jobs only unblock once the pool drains (checkpointed jobs preempt at
	// their next snapshot boundary when draining begins), and hs.Shutdown
	// waits for those very handlers — the reverse order deadlocks until the
	// drain deadline. New requests keep getting clean 503s meanwhile.
	if err := srv.Shutdown(dctx); err != nil {
		return err
	}
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("gcserved: http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("gcserved: drained cleanly")
	return nil
}
