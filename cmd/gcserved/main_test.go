package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"hwgc/internal/server"
)

func TestParseOptionsDefaults(t *testing.T) {
	addr, opts, drain, err := parseOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if addr != ":8080" {
		t.Errorf("addr = %q, want :8080", addr)
	}
	if opts.QueueDepth != 64 || opts.CacheEntries != 1024 || opts.CacheBytes != 64<<20 {
		t.Errorf("unexpected defaults: %+v", opts)
	}
	if opts.RetryAfter != time.Second {
		t.Errorf("RetryAfter default = %s, want 1s", opts.RetryAfter)
	}
	if drain != 30*time.Second {
		t.Errorf("drain default = %s, want 30s", drain)
	}
}

func TestParseOptionsRetryAfterWiring(t *testing.T) {
	// The satellite regression: -retry-after must reach server.Options and
	// survive into the actual 429 Retry-After header, including sub-second
	// values which round up to 1, never 0.
	for _, tc := range []struct {
		flag string
		want string
	}{
		{"500ms", "1"},
		{"1s", "1"},
		{"3s", "3"},
		{"2500ms", "3"},
	} {
		_, opts, _, err := parseOptions([]string{"-retry-after", tc.flag})
		if err != nil {
			t.Fatalf("-retry-after %s: %v", tc.flag, err)
		}

		// Boot a server with a full queue so a POST gets a real 429.
		opts.Workers = 1
		opts.QueueDepth = 1
		srv, err := server.New(opts) // never Start()ed: the one queue slot fills and stays full
		if err != nil {
			t.Fatal(err)
		}
		body := []byte(`{"Bench":"jlisp","Config":{}}`)
		first := httptest.NewRecorder()
		done := make(chan struct{})
		go func() {
			defer close(done)
			req := httptest.NewRequest("POST", "/v1/collect", bytes.NewReader(body))
			srv.Handler().ServeHTTP(first, req)
		}()
		// Wait until the queued job occupies the slot.
		deadline := time.Now().Add(time.Second)
		for srv.Queue().Depth() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}

		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/collect", bytes.NewReader([]byte(`{"Bench":"jlisp","Seed":99,"Config":{}}`)))
		srv.Handler().ServeHTTP(rec, req)
		if rec.Code != 429 {
			t.Fatalf("-retry-after %s: status %d, want 429", tc.flag, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("-retry-after %s: header %q, want %q", tc.flag, got, tc.want)
		}
		srv.Start() // drain the parked job so the goroutine exits
		<-done
	}
}

func TestParseOptionsErrors(t *testing.T) {
	if _, _, _, err := parseOptions([]string{"-retry-after", "0s"}); err == nil {
		t.Error("zero -retry-after accepted")
	}
	if _, _, _, err := parseOptions([]string{"-retry-after", "-1s"}); err == nil {
		t.Error("negative -retry-after accepted")
	}
	if _, _, _, err := parseOptions([]string{"stray"}); err == nil {
		t.Error("stray positional argument accepted")
	}
	if _, _, _, err := parseOptions([]string{"-no-such-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, _, _, err := parseOptions([]string{"-checkpoint-cycles", "-1"}); err == nil {
		t.Error("negative -checkpoint-cycles accepted")
	}
	if _, _, _, err := parseOptions([]string{"-checkpoint-cycles", "100"}); err == nil {
		t.Error("-checkpoint-cycles without -checkpoint-dir accepted")
	}
}

func TestParseOptionsCheckpointFlags(t *testing.T) {
	dir := t.TempDir() + "/ckpts"
	_, opts, _, err := parseOptions([]string{"-checkpoint-dir", dir, "-checkpoint-cycles", "5000"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.CheckpointDir != dir || opts.CheckpointCycles != 5000 {
		t.Errorf("checkpoint options not wired: %+v", opts)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Errorf("checkpoint dir not created: %v", err)
	}
}

func TestParseOptionsAllFlags(t *testing.T) {
	addr, opts, drain, err := parseOptions(strings.Fields(
		"-addr :9999 -workers 3 -queue 7 -cache-entries 11 -cache-mb 2 -timeout 5s -max-scale 9 -retry-after 2s -drain 1s"))
	if err != nil {
		t.Fatal(err)
	}
	want := server.Options{Workers: 3, QueueDepth: 7, CacheEntries: 11, CacheBytes: 2 << 20,
		Timeout: 5 * time.Second, MaxScale: 9, RetryAfter: 2 * time.Second}
	if addr != ":9999" || opts != want || drain != time.Second {
		t.Errorf("parsed addr=%q opts=%+v drain=%s", addr, opts, drain)
	}
}
