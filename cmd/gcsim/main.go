// Command gcsim runs a single garbage collection cycle of one benchmark
// workload on the simulated multi-core GC coprocessor and prints the
// clock-cycle statistics, optionally with a signal trace.
//
// Usage:
//
//	gcsim -bench javac -cores 16 [-scale 1] [-seed 42] [-latency 3]
//	      [-extra-latency 0] [-bandwidth 6] [-fifo 32768] [-no-fifo]
//	      [-markopt] [-verify] [-trace trace.csv] [-json]
//
// With -json the human-readable report is replaced by the exact response
// encoding the gcserved service returns from POST /v1/collect
// (hwgc.CollectResponse), so scripts and the service speak one format.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hwgc"
	"hwgc/internal/stats"
)

func main() {
	var (
		bench     = flag.String("bench", "javac", "benchmark workload ("+strings.Join(hwgc.Workloads(), ", ")+")")
		planFile  = flag.String("plan", "", "JSON plan file to collect instead of a named benchmark")
		cores     = flag.Int("cores", 8, "number of GC coprocessor cores (1..64)")
		scale     = flag.Int("scale", 1, "workload scale factor")
		seed      = flag.Int64("seed", 42, "workload seed")
		latency   = flag.Int("latency", 0, "memory latency in cycles (0 = default)")
		extraLat  = flag.Int("extra-latency", 0, "artificial extra memory latency (paper Fig. 6 uses 20)")
		bandwidth = flag.Int("bandwidth", 0, "memory requests accepted per cycle (0 = default)")
		fifoCap   = flag.Int("fifo", 0, "header FIFO capacity (0 = default 32768)")
		noFIFO    = flag.Bool("no-fifo", false, "disable the header FIFO")
		markOpt   = flag.Bool("markopt", false, "enable the unlocked mark-read optimization (paper §VI-B)")
		hdrCache  = flag.Int("hdr-cache", 0, "header cache lines (paper §VII extension; 0 = off)")
		stride    = flag.Int("stride", 0, "stride words for sub-object work distribution (§VII extension; 0 = off)")
		verify    = flag.Bool("verify", true, "verify the collection against the reference oracle")
		traceOut  = flag.String("trace", "", "write a signal trace CSV to this file")
		interval  = flag.Int64("trace-interval", 16, "cycles between trace samples")
		jsonOut   = flag.Bool("json", false, "emit the gcserved /v1/collect response encoding instead of the report")
	)
	flag.Parse()

	cfg := hwgc.Config{
		Cores:               *cores,
		MemLatency:          *latency,
		ExtraMemLatency:     *extraLat,
		MemBandwidth:        *bandwidth,
		FIFOCapacity:        *fifoCap,
		DisableFIFO:         *noFIFO,
		OptUnlockedMarkRead: *markOpt,
		HeaderCacheLines:    *hdrCache,
		StrideWords:         *stride,
	}

	var err error
	if *jsonOut {
		err = runJSON(*bench, *planFile, *scale, *seed, cfg, *verify, *traceOut)
	} else {
		err = run(*bench, *planFile, *scale, *seed, cfg, *verify, *traceOut, *interval)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcsim:", err)
		os.Exit(1)
	}
}

// runJSON runs the collection through the same canonical request/response
// path the gcserved service uses and writes the service's wire encoding.
func runJSON(bench, planFile string, scale int, seed int64, cfg hwgc.Config, verify bool, traceOut string) error {
	if traceOut != "" {
		return fmt.Errorf("-json and -trace cannot be combined")
	}
	req := hwgc.CollectRequest{Bench: bench, Scale: scale, Seed: seed, Config: cfg, Verify: verify}
	if planFile != "" {
		plan, err := hwgc.ReadPlanFile(planFile)
		if err != nil {
			return err
		}
		req.Bench = ""
		req.Plan = plan
	}
	resp, err := hwgc.NewCollectResponse(req)
	if err != nil {
		return err
	}
	return resp.Encode(os.Stdout)
}

func run(bench, planFile string, scale int, seed int64, cfg hwgc.Config, verify bool, traceOut string, interval int64) error {
	var h *hwgc.Heap
	var err error
	if planFile != "" {
		plan, perr := hwgc.ReadPlanFile(planFile)
		if perr != nil {
			return perr
		}
		h, err = plan.BuildHeap(2.0)
		bench = planFile
	} else {
		h, err = hwgc.BuildWorkload(bench, scale, seed)
	}
	if err != nil {
		return err
	}

	var before *hwgc.Graph
	if verify {
		if before, err = hwgc.Snapshot(h); err != nil {
			return err
		}
	}

	var mon *hwgc.Monitor
	var st hwgc.Stats
	if traceOut != "" {
		mon = hwgc.NewMonitor(interval, 1<<20)
		st, err = hwgc.CollectTraced(h, cfg, mon)
	} else {
		st, err = hwgc.Collect(h, cfg)
	}
	if err != nil {
		return err
	}
	if verify {
		if err := hwgc.Verify(before, h); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Println("verification: OK (logical graph preserved, perfectly compacted)")
	}

	sum := st.Sum()
	mean := st.Mean()
	fmt.Printf("benchmark            %s (scale %d, seed %d)\n", bench, scale, seed)
	fmt.Printf("cores                %d\n", len(st.PerCore))
	fmt.Printf("collection cycle     %d clock cycles\n", st.Cycles)
	fmt.Printf("live                 %d objects, %d words\n", st.LiveObjects, st.LiveWords)
	fmt.Printf("evacuated            %d objects, %d body words copied\n", sum.ObjectsEvacuated, sum.WordsCopied)
	fmt.Printf("work list empty      %s of cycles\n", stats.Percent(st.EmptyWorklistCycles, st.Cycles))
	fmt.Printf("header FIFO          %d hits, %d misses, %d drops, max depth %d\n",
		sum.FIFOHits, sum.FIFOMisses, st.FIFODrops, st.FIFOMaxDepth)
	fmt.Println()

	t := stats.NewTable("Mean stall cycles per core (cf. paper Table II)", "cause", "cycles", "of total")
	add := func(name string, v int64) { t.Add(name, fmt.Sprint(v), stats.Percent(v, st.Cycles)) }
	add("scan-lock stall", mean.ScanLockStall)
	add("free-lock stall", mean.FreeLockStall)
	add("header-lock stall", mean.HeaderLockStall)
	add("body load stall", mean.BodyLoadStall)
	add("body store stall", mean.BodyStoreStall)
	add("header load stall", mean.HeaderLoadStall)
	add("header store stall", mean.HeaderStoreStall)
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	if mon != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mon.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("\ntrace: %d samples written to %s (peak work list %d words)\n",
			mon.Len(), traceOut, mon.MaxGrayWords())
	}
	return nil
}
