package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hwgc"
)

func TestRunNamedBenchmark(t *testing.T) {
	// Redirect stdout to keep the test log clean and to inspect the report.
	out := captureStdout(t, func() {
		if err := run("jlisp", "", 1, 42, hwgc.Config{Cores: 4}, true, "", 16); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"verification: OK", "collection cycle", "scan-lock stall"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithTrace(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.csv")
	_ = captureStdout(t, func() {
		if err := run("jlisp", "", 1, 42, hwgc.Config{Cores: 4}, false, trace, 8); err != nil {
			t.Fatal(err)
		}
	})
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "cycle,scan,free") {
		t.Fatalf("trace CSV malformed: %q", string(data[:40]))
	}
}

func TestRunPlanFile(t *testing.T) {
	dir := t.TempDir()
	planFile := filepath.Join(dir, "plan.json")
	plan := `{"Objs":[{"Pi":1,"Delta":1,"Ptrs":[1],"Data":[7]},{"Pi":0,"Delta":2,"Ptrs":[],"Data":[8,9]}],"Roots":[0]}`
	if err := os.WriteFile(planFile, []byte(plan), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := run("", planFile, 1, 42, hwgc.Config{Cores: 2}, true, "", 16); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(out, "2 objects") {
		t.Errorf("plan collection output wrong:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	out := captureStdout(t, func() {
		if err := runJSON("jlisp", "", 1, 42, hwgc.Config{Cores: 4}, true, ""); err != nil {
			t.Fatal(err)
		}
	})
	var resp hwgc.CollectResponse
	if err := json.Unmarshal([]byte(out), &resp); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if resp.Bench != "jlisp" || resp.Key == "" || resp.Result.Stats.Cycles <= 0 {
		t.Fatalf("-json content wrong: %+v", resp)
	}
	// The encoding is the service's: the same request must produce the
	// same Key the server would cache under.
	req := hwgc.CollectRequest{Bench: "jlisp", Scale: 1, Seed: 42, Config: hwgc.Config{Cores: 4}, Verify: true}
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	if key != resp.Key {
		t.Fatalf("CLI key %s != canonical request key %s", resp.Key, key)
	}

	if err := runJSON("jlisp", "", 1, 42, hwgc.Config{Cores: 4}, false, "trace.csv"); err == nil {
		t.Error("-json with -trace accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("no-such-benchmark", "", 1, 42, hwgc.Config{Cores: 2}, false, "", 16); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run("", "/does/not/exist.json", 1, 42, hwgc.Config{Cores: 2}, false, "", 16); err == nil {
		t.Error("missing plan file accepted")
	}
	if err := run("jlisp", "", 1, 42, hwgc.Config{Cores: -5}, false, "", 16); err == nil {
		t.Error("invalid config accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- b.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	fn()
	w.Close()
	out := <-done
	os.Stdout = old
	return out
}
