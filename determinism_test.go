package hwgc

import (
	"fmt"
	"testing"

	"hwgc/internal/machine"
)

// The event-driven fast-forward (internal/machine/fastforward.go) must be
// invisible in every reported number: a fast-forwarded collection has to
// produce Stats that are bit-identical to the fully stepped run — total and
// per-phase cycle counts, per-core per-cause stall counters, empty-work-list
// cycles, FIFO, header-cache, memory and synchronization counters, and the
// final heap image. These tests collect every workload twice from identical
// heaps, once stepped and once fast-forwarded, and fail on the first field
// that differs.

// collectBoth builds the workload twice from the same seed and collects one
// copy with fast-forwarding (and load-wait micro-sleep) enabled and the
// other fully stepped. It returns both Stats and the fast-forwarding
// machine's jump telemetry.
func collectBoth(t *testing.T, bench string, scale int, seed int64, cfg Config) (ff, stepped Stats, jumps, skipped int64) {
	t.Helper()
	run := func(noFF bool) (Stats, int64, int64) {
		h, err := BuildWorkload(bench, scale, seed)
		if err != nil {
			t.Fatalf("BuildWorkload(%s): %v", bench, err)
		}
		m, err := machine.New(h, cfg)
		if err != nil {
			t.Fatalf("machine.New: %v", err)
		}
		m.NoFastForward = noFF
		st, err := m.Collect()
		if err != nil {
			t.Fatalf("Collect (NoFastForward=%v): %v", noFF, err)
		}
		j, s := m.FastForwardStats()
		return st, j, s
	}
	ff, jumps, skipped = run(false)
	stepped, steppedJumps, _ := run(true)
	if steppedJumps != 0 {
		t.Fatalf("NoFastForward run still performed %d jumps", steppedJumps)
	}
	return ff, stepped, jumps, skipped
}

// checkIdentical fails the test with a per-field diff when the two Stats are
// not bit-identical.
func checkIdentical(t *testing.T, ff, stepped Stats) {
	t.Helper()
	if diffs := ff.DiffFields(&stepped); diffs != nil {
		for _, d := range diffs {
			t.Errorf("fast-forwarded vs stepped: %s", d)
		}
	}
}

// TestFastForwardDeterminism sweeps every workload over the paper's core
// counts.
func TestFastForwardDeterminism(t *testing.T) {
	for _, bench := range Workloads() {
		for _, cores := range PaperCoreCounts {
			bench, cores := bench, cores
			t.Run(fmt.Sprintf("%s/cores=%d", bench, cores), func(t *testing.T) {
				t.Parallel()
				if testing.Short() && cores != 1 && cores != 16 {
					t.Skip("short mode: endpoints only")
				}
				ff, stepped, _, _ := collectBoth(t, bench, 1, 42, Config{Cores: cores})
				checkIdentical(t, ff, stepped)
			})
		}
	}
}

// TestBarrierModeDeterminism sweeps the concurrent-collection extension over
// the paper's core counts: each write-barrier mode (and the bare concurrent
// mutator with no barrier) must report bit-identical Stats between the
// fast-forward-enabled and fully stepped runs. An attached mutator disables
// fast-forwarding structurally — every cycle can produce a mutator store —
// so the suite also pins jumps==0 on the "fast-forwarding" run.
func TestBarrierModeDeterminism(t *testing.T) {
	for _, mode := range []BarrierMode{BarrierNone, BarrierSATB, BarrierIncUpdate} {
		for _, cores := range PaperCoreCounts {
			mode, cores := mode, cores
			name := string(mode)
			if name == "" {
				name = "none"
			}
			t.Run(fmt.Sprintf("%s/cores=%d", name, cores), func(t *testing.T) {
				t.Parallel()
				if testing.Short() && cores != 1 && cores != 16 {
					t.Skip("short mode: endpoints only")
				}
				cfg := Config{Cores: cores, MutatorOps: 1 << 40, BarrierMode: mode}
				ff, stepped, jumps, _ := collectBoth(t, "jlisp", 1, 42, cfg)
				if jumps != 0 {
					t.Errorf("machine fast-forwarded %d times with a mutator attached", jumps)
				}
				checkIdentical(t, ff, stepped)
				if ff.Mutator == nil {
					t.Fatal("concurrent run reported no mutator stats")
				}
				if mode != BarrierNone && ff.Mutator.BarrierInvocations == 0 {
					t.Errorf("%s run invoked no barriers", name)
				}
			})
		}
	}
}

// TestFastForwardDeterminismConfigs exercises the model variants whose extra
// machinery interacts with the dead-cycle classification: added memory
// latency (long stall windows), stride mode (scan-lock stalls while the
// stride table fills), header cache, a tiny FIFO (frequent fallback header
// loads), and the DRAM bank model (arbitration skips).
func TestFastForwardDeterminismConfigs(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"extra-latency", Config{ExtraMemLatency: 20}},
		{"stride", Config{StrideWords: 8}},
		{"header-cache", Config{HeaderCacheLines: 16}},
		{"tiny-fifo", Config{FIFOCapacity: 2}},
		{"no-fifo", Config{DisableFIFO: true}},
		{"banks", Config{MemBanks: 4}},
		{"numa", Config{NUMADomains: 4, NUMARemotePenalty: 30}},
		{"numa-local", Config{NUMADomains: 4, NUMAPlacement: PlacementLocal}},
		{"numa-banks", Config{NUMADomains: 2, NUMABandwidth: 2, MemBanks: 4}},
	}
	for _, v := range variants {
		for _, cores := range []int{1, 4, 16} {
			v, cores := v, cores
			t.Run(fmt.Sprintf("%s/cores=%d", v.name, cores), func(t *testing.T) {
				t.Parallel()
				cfg := v.cfg
				cfg.Cores = cores
				ff, stepped, _, _ := collectBoth(t, "javacc", 1, 42, cfg)
				checkIdentical(t, ff, stepped)
			})
		}
	}
}

// TestCacheModelDeterminism covers the private-L1/shared-L2 extension. The
// cache model disables fast-forwarding structurally — a hit can complete a
// load in any cycle, so no cycle is provably dead — which makes the FF run
// trivially identical; the suite therefore pins jumps==0 (the gate actually
// engaged) and additionally checks the model did real work (L1 hits landed).
func TestCacheModelDeterminism(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"cache", Config{L1Sets: 16}},
		{"cache-mshr", Config{L1Sets: 8, L1Ways: 1, MSHRs: 2}},
		{"cache-numa", Config{L1Sets: 16, NUMADomains: 4, NUMARemotePenalty: 30}},
	}
	for _, v := range variants {
		for _, cores := range []int{1, 4, 16} {
			v, cores := v, cores
			t.Run(fmt.Sprintf("%s/cores=%d", v.name, cores), func(t *testing.T) {
				t.Parallel()
				cfg := v.cfg
				cfg.Cores = cores
				ff, stepped, jumps, _ := collectBoth(t, "javacc", 1, 42, cfg)
				if jumps != 0 {
					t.Errorf("machine fast-forwarded %d times with the cache model on", jumps)
				}
				checkIdentical(t, ff, stepped)
				if ff.Mem.L1Hits == 0 {
					t.Errorf("%s run recorded no L1 hits", v.name)
				}
			})
		}
	}
}

// TestNUMAFastForwardSkipsCycles pins the NUMA rows of the determinism
// matrix against vacuity: unlike the cache model, pure NUMA keeps every
// completion time computable at issue, so fast-forwarding stays live — and
// on a one-core run with a heavy remote penalty it must skip a large share
// of the (mostly remote-latency) cycles.
func TestNUMAFastForwardSkipsCycles(t *testing.T) {
	cfg := Config{Cores: 1, NUMADomains: 4, NUMARemotePenalty: 40}
	ff, stepped, jumps, skipped := collectBoth(t, "javacc", 1, 42, cfg)
	checkIdentical(t, ff, stepped)
	if jumps == 0 || skipped == 0 {
		t.Fatalf("fast-forward never fired under NUMA: jumps=%d skipped=%d", jumps, skipped)
	}
	if ff.Mem.RemoteAccesses == 0 {
		t.Fatal("NUMA run classified no remote accesses")
	}
	if frac := float64(skipped) / float64(ff.Cycles); frac < 0.5 {
		t.Errorf("fast-forward skipped only %.1f%% of %d cycles; expected a remote-latency-bound 1-core run to be mostly dead",
			100*frac, ff.Cycles)
	}
}

// TestFastForwardSkipsCycles pins the suite against vacuity: on a one-core
// run with added latency most cycles are memory-latency windows, so the
// fast-forward must actually have jumped over a large share of them.
func TestFastForwardSkipsCycles(t *testing.T) {
	ff, stepped, jumps, skipped := collectBoth(t, "javacc", 1, 42, Config{Cores: 1, ExtraMemLatency: 20})
	checkIdentical(t, ff, stepped)
	if jumps == 0 || skipped == 0 {
		t.Fatalf("fast-forward never fired: jumps=%d skipped=%d", jumps, skipped)
	}
	if frac := float64(skipped) / float64(ff.Cycles); frac < 0.5 {
		t.Errorf("fast-forward skipped only %.1f%% of %d cycles; expected a latency-bound 1-core run to be mostly dead",
			100*frac, ff.Cycles)
	}
}

// TestProbeForcesStepping guards the tracing contract: with a Probe
// attached, the machine must step every cycle (no jumps), invoke the probe
// once per cycle, and still produce the exact Stats of the stepped run.
func TestProbeForcesStepping(t *testing.T) {
	cfg := Config{Cores: 4}

	h, err := BuildWorkload("javacc", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var probed int64
	m.Probe = func(cycle int64, mm *machine.Machine) {
		if cycle != probed+1 {
			t.Fatalf("probe cycle %d after %d: a cycle was skipped", cycle, probed)
		}
		probed = cycle
	}
	st, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if j, s := m.FastForwardStats(); j != 0 || s != 0 {
		t.Fatalf("machine fast-forwarded under a probe: jumps=%d skipped=%d", j, s)
	}
	// The loop breaks before probing the final cycle.
	loopCycles := st.Cycles - st.Config.ShutdownCycles
	if probed != loopCycles-1 {
		t.Errorf("probe ran %d times, want %d (one per cycle but the last)", probed, loopCycles-1)
	}

	// The traced collection must report the same numbers as the others.
	_, stepped, _, _ := collectBoth(t, "javacc", 1, 42, cfg)
	checkIdentical(t, st, stepped)
}

// TestCollectTracedSamplesEveryCycle is the same contract through the public
// monitoring API: an interval-1 monitor observes every loop cycle.
func TestCollectTracedSamplesEveryCycle(t *testing.T) {
	h, err := BuildWorkload("compress", 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(1, 64)
	st, err := CollectTraced(h, Config{Cores: 2}, mon)
	if err != nil {
		t.Fatal(err)
	}
	want := st.Cycles - st.Config.ShutdownCycles - 1
	if mon.Total() != want {
		t.Fatalf("monitor took %d samples, want %d (every cycle but the last)", mon.Total(), want)
	}
}
