package hwgc_test

import (
	"fmt"
	"log"

	"hwgc"
)

// Build a tiny object graph, collect it on a 4-core simulated coprocessor,
// and verify the result against the oracle.
func ExampleCollect() {
	h := hwgc.NewHeap(1024)
	list, _ := h.Alloc(1, 1) // π=1 pointer slot, δ=1 data word
	tail, _ := h.Alloc(0, 1)
	h.SetPtr(list, 0, tail)
	h.SetData(list, 0, 1)
	h.SetData(tail, 0, 2)
	h.AddRoot(list)
	_, _ = h.Alloc(0, 100) // garbage

	before, _ := hwgc.Snapshot(h)
	st, err := hwgc.Collect(h, hwgc.Config{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := hwgc.Verify(before, h); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d objects survived, garbage reclaimed: %v\n",
		st.LiveObjects, h.UsedWords() < 100)
	// Output:
	// 2 objects survived, garbage reclaimed: true
}

// Sweep a benchmark across the paper's core counts — the Figure 5
// measurement — and print the speedups.
func ExampleSweepCores() {
	res, err := hwgc.SweepCores("search", []int{1, 16}, 1, 42, hwgc.Config{}, true)
	if err != nil {
		log.Fatal(err)
	}
	speedup := float64(res[0].Stats.Cycles) / float64(res[1].Stats.Cycles)
	fmt.Printf("search (a linear graph) speeds up less than 2x at 16 cores: %v\n", speedup < 2)
	// Output:
	// search (a linear graph) speeds up less than 2x at 16 cores: true
}

// Drive a heap through many allocation/collection cycles with automatic
// verified GC.
func ExampleNewMutator() {
	mu, err := hwgc.NewMutator(2048, hwgc.Config{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}
	mu.Verify = true
	rep, err := mu.RunChurn(hwgc.ChurnConfig{Ops: 4000, RootSlots: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collections triggered automatically: %v\n", rep.Collections > 0)
	// Output:
	// collections triggered automatically: true
}

// Run a software-parallel baseline collector (Flood-style work stealing)
// and check it preserved the graph.
func ExampleRunBaseline() {
	h, _ := hwgc.BuildWorkload("jlisp", 1, 7)
	before, _ := hwgc.Snapshot(h)
	res, err := hwgc.RunBaseline("stealing", h, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := hwgc.VerifyPreserved(before, h); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synchronization operations per object > 3: %v\n",
		float64(res.Sync.Total())/float64(res.LiveObjects) > 3)
	// Output:
	// synchronization operations per object > 3: true
}

// Collect concurrently with a running mutator (the paper's §V-B outlook):
// the worst single mutator stall replaces the stop-the-world pause.
func ExampleCollectConcurrent() {
	h, _ := hwgc.BuildWorkload("jlisp", 1, 42)
	driver := hwgc.NewConcurrentChurn(h, 42, 1<<40, 50)
	st, ms, err := hwgc.CollectConcurrent(h, hwgc.Config{Cores: 8}, driver, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mutator kept running during GC: %v, worst stall far below the cycle: %v\n",
		ms.Ops > 0, ms.MaxOpLatency*4 < st.Cycles)
	// Output:
	// mutator kept running during GC: true, worst stall far below the cycle: true
}

// Trace the coprocessor's internal signals while it collects, like the
// prototype's on-chip monitor.
func ExampleCollectTraced() {
	h, _ := hwgc.BuildWorkload("jlisp", 1, 42)
	mon := hwgc.NewMonitor(16, 1<<12)
	if _, err := hwgc.CollectTraced(h, hwgc.Config{Cores: 8}, mon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sampled the work list growing and draining: %v\n", mon.MaxGrayWords() > 0)
	// Output:
	// sampled the work list growing and draining: true
}
