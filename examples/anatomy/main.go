// Anatomy: watch one collection cycle happen, clock cycle by clock cycle.
//
// A tiny object graph (the diamond of the paper's Figure 1, plus garbage)
// is collected by a 2-core coprocessor while a monitor samples the scan and
// free pointers and the work-list size every cycle; the trace shows the
// work list filling during root evacuation and draining as the cores
// scan — Cheney's elegant "the tospace is the work list" in motion.
//
// Run with:
//
//	go run ./examples/anatomy [-cores 2]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"strings"

	"hwgc"
)

func main() {
	cores := flag.Int("cores", 2, "GC coprocessor cores")
	flag.Parse()

	// The paper's Figure 1 heap: A points to B and C; B and C share D; an
	// unreachable object E sits between them as garbage.
	h := hwgc.NewHeap(512)
	alloc := func(pi, delta int) hwgc.Addr {
		a, err := h.Alloc(pi, delta)
		if err != nil {
			log.Fatal(err)
		}
		return a
	}
	A := alloc(2, 1)
	E := alloc(0, 6) // garbage
	B := alloc(1, 2)
	C := alloc(1, 2)
	D := alloc(0, 3)
	_ = E
	h.SetPtr(A, 0, B)
	h.SetPtr(A, 1, C)
	h.SetPtr(B, 0, D)
	h.SetPtr(C, 0, D)
	for i, obj := range []hwgc.Addr{A, B, C, D} {
		h.SetData(obj, 0, uint64(0xA0+i))
	}
	h.AddRoot(A)

	fmt.Println("before collection:")
	if err := h.Dump(newIndent()); err != nil {
		log.Fatal(err)
	}

	before, err := hwgc.Snapshot(h)
	if err != nil {
		log.Fatal(err)
	}

	// Sample every cycle; the heap is tiny, so the trace is short.
	mon := hwgc.NewMonitor(1, 4096)
	st, err := hwgc.CollectTraced(h, hwgc.Config{
		Cores:         *cores,
		StartupCycles: -1, // skip the main-processor coordination for a compact trace
	}, mon)
	if err != nil {
		log.Fatal(err)
	}
	if err := hwgc.Verify(before, h); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncollection trace (%d cores):\n", *cores)
	fmt.Printf("%7s  %6s  %6s  %10s  %s\n", "cycle", "scan", "free", "work list", "")
	prev := int64(-1)
	for _, s := range mon.Samples() {
		if s.GrayWords == prev && s.GrayWords == 0 {
			continue // compress the idle tail
		}
		prev = s.GrayWords
		bar := strings.Repeat("#", int(s.GrayWords))
		fmt.Printf("%7d  %6d  %6d  %10d  %s\n", s.Cycle, s.Scan, s.Free, s.GrayWords, bar)
	}

	fmt.Printf("\nafter collection (%d cycles, %d objects live, garbage E gone):\n",
		st.Cycles, st.LiveObjects)
	if err := h.Dump(newIndent()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnote how B and C still share a single D: the second core to reach")
	fmt.Println("D's fromspace header found it marked and reused the forwarding pointer.")
}

// indentWriter prefixes each line with two spaces.
type indentWriter struct{ pending bool }

func newIndent() *indentWriter { return &indentWriter{pending: true} }

func (w *indentWriter) Write(p []byte) (int, error) {
	rest := p
	for len(rest) > 0 {
		if w.pending {
			fmt.Print("  ")
			w.pending = false
		}
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			fmt.Print(string(rest))
			break
		}
		fmt.Print(string(rest[:i+1]))
		w.pending = true
		rest = rest[i+1:]
	}
	return len(p), nil
}
