// Baselines: compare the software-parallel collectors from the paper's
// related-work section (Section III) against each other and against the
// hardware approach, on the same heap and object layout.
//
// The software collectors are real goroutine-parallel copying collectors;
// the example reports their wall time, their synchronization operations per
// object — the cost the paper's coprocessor reduces to zero in the
// uncontended case — and their fragmentation (words lost to chunk/LAB
// leftovers, a cost the fine-grained approach does not pay). The simulated
// coprocessor's cycle counts are shown alongside for the same workload.
//
// Run with:
//
//	go run ./examples/baselines [-bench db] [-workers 8] [-scale 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hwgc"
)

func main() {
	bench := flag.String("bench", "db", "workload ("+strings.Join(hwgc.Workloads(), ", ")+")")
	workers := flag.Int("workers", 8, "goroutines for the software collectors")
	scale := flag.Int("scale", 1, "workload scale factor")
	flag.Parse()

	fmt.Printf("workload %s (scale %d): software-parallel collectors, %d goroutines\n\n", *bench, *scale, *workers)
	fmt.Printf("%-12s  %12s  %14s  %12s  %12s  %s\n",
		"collector", "wall time", "sync ops/obj", "CAS retries", "wasted words", "strategy")

	for _, name := range hwgc.Baselines() {
		h, err := hwgc.BuildWorkload(*bench, *scale, 42)
		if err != nil {
			log.Fatal(err)
		}
		before, err := hwgc.Snapshot(h)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hwgc.RunBaseline(name, h, *workers)
		if err != nil {
			log.Fatal(err)
		}
		if err := hwgc.VerifyPreserved(before, h); err != nil {
			log.Fatalf("%s corrupted the heap: %v", name, err)
		}
		desc, _ := hwgc.BaselineDescription(name)
		fmt.Printf("%-12s  %12v  %14.1f  %12d  %12d  %s\n",
			name, res.Elapsed.Round(10_000),
			float64(res.Sync.Total())/float64(res.LiveObjects),
			res.Sync.CASRetries, res.WastedWords, desc)
	}

	fmt.Printf("\nsimulated GC coprocessor on the same workload (hardware synchronization,\n")
	fmt.Printf("object-granularity work distribution, zero waste):\n\n")
	fmt.Printf("%8s  %14s  %10s\n", "cores", "clock cycles", "speedup")
	results, err := hwgc.SweepCores(*bench, []int{1, 2, 4, 8, 16}, *scale, 42, hwgc.Config{}, true)
	if err != nil {
		log.Fatal(err)
	}
	base := results[0].Stats.Cycles
	for _, r := range results {
		fmt.Printf("%8d  %14d  %9.2fx\n", len(r.Stats.PerCore), r.Stats.Cycles,
			float64(base)/float64(r.Stats.Cycles))
	}
	fmt.Println("\nthe software collectors pay ~5-10 atomic operations per object (or waste")
	fmt.Println("space to avoid them); the coprocessor's synchronization block makes the")
	fmt.Println("same per-object operations free in the uncontended case (paper §V-C).")
}
