// Concurrent: the paper's Section V-B outlook, runnable — the coprocessor
// collects while the application keeps executing on the machine's mutator
// port, under a wait-until-black access barrier.
//
// The example collects the same heap twice: once stop-the-world (the
// application pauses for the whole cycle) and once concurrently (the
// application's worst pause is its longest single stalled operation), and
// prints both.
//
// Run with:
//
//	go run ./examples/concurrent [-bench jlisp] [-cores 8] [-period 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hwgc"
)

func main() {
	bench := flag.String("bench", "jlisp", "workload ("+strings.Join(hwgc.Workloads(), ", ")+")")
	cores := flag.Int("cores", 8, "GC coprocessor cores")
	period := flag.Int("period", 2, "cycles between mutator operations")
	flag.Parse()

	spec, err := hwgc.Workload(*bench)
	if err != nil {
		log.Fatal(err)
	}

	// Stop-the-world run.
	h1, err := spec.Plan(1, 42).BuildHeap(3.0)
	if err != nil {
		log.Fatal(err)
	}
	stw, err := hwgc.Collect(h1, hwgc.Config{Cores: *cores})
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent run on an identical heap: the driver chases pointers,
	// reads and writes fields, and allocates, one operation every -period
	// cycles, for the whole collection.
	h2, err := spec.Plan(1, 42).BuildHeap(3.0)
	if err != nil {
		log.Fatal(err)
	}
	driver := hwgc.NewConcurrentChurn(h2, 42, 1<<40, 400)
	st, ms, err := hwgc.CollectConcurrent(h2, hwgc.Config{Cores: *cores}, driver, *period)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s, %d GC cores\n\n", *bench, *cores)
	fmt.Printf("stop-the-world:  collection %8d cycles — the application pauses for all of them\n", stw.Cycles)
	fmt.Printf("concurrent:      collection %8d cycles (+%.2f%%), application kept running:\n",
		st.Cycles, 100*float64(st.Cycles-stw.Cycles)/float64(stw.Cycles))
	fmt.Printf("  %d operations completed, %d objects allocated mid-collection\n", ms.Ops, ms.Allocs)
	fmt.Printf("  worst single operation: %d cycles  (the concurrent 'pause')\n", ms.MaxOpLatency)
	fmt.Printf("  stalls: %d cycles total, %d waiting for gray objects, %d on the free lock\n",
		ms.StallCycles, ms.BarrierStalls, ms.AllocLock)
	fmt.Printf("  scanners stepped over %d black-at-birth frames\n\n", ms.FramesSkipped)
	fmt.Printf("pause reduction: %.0fx (%d -> %d cycles)\n",
		float64(stw.Cycles)/float64(ms.MaxOpLatency), stw.Cycles, ms.MaxOpLatency)
}
