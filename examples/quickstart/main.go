// Quickstart: build a small object graph by hand, run one collection on the
// simulated multi-core GC coprocessor, and print what happened.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hwgc"
)

func main() {
	// A heap with two semispaces of 4096 words each. Word addresses are the
	// pointer values; address 0 is nil.
	h := hwgc.NewHeap(4096)

	// Build a tiny object graph: a ring of three nodes, each with one
	// pointer slot and two data words, plus an unreachable (garbage) node.
	var nodes [3]hwgc.Addr
	for i := range nodes {
		a, err := h.Alloc(1, 2)
		if err != nil {
			log.Fatal(err)
		}
		nodes[i] = a
		h.SetData(a, 0, uint64(100+i))
		h.SetData(a, 1, uint64(200+i))
	}
	for i := range nodes {
		h.SetPtr(nodes[i], 0, nodes[(i+1)%len(nodes)])
	}
	if _, err := h.Alloc(0, 50); err != nil { // garbage: never referenced
		log.Fatal(err)
	}
	h.AddRoot(nodes[0])

	fmt.Printf("before GC: %d words used (including 52 words of garbage)\n", h.UsedWords())

	// Snapshot the logical graph so we can verify the collection later.
	before, err := hwgc.Snapshot(h)
	if err != nil {
		log.Fatal(err)
	}

	// Collect with a 4-core coprocessor.
	st, err := hwgc.Collect(h, hwgc.Config{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}

	// The oracle checks the graph survived bit for bit and the new space is
	// perfectly compacted.
	if err := hwgc.Verify(before, h); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("after GC:  %d words used, %d live objects, collection took %d simulated clock cycles\n",
		h.UsedWords(), st.LiveObjects, st.Cycles)
	fmt.Printf("the ring survived: root -> %d -> %d -> %d (data %d %d)\n",
		h.Root(0), h.Ptr(h.Root(0), 0), h.Ptr(h.Ptr(h.Root(0), 0), 0),
		h.Data(h.Root(0), 0), h.Data(h.Root(0), 1))

	// The mutator can keep allocating; the next collection happens
	// automatically when the semispace fills (see the mutator API).
	mu, err := hwgc.NewMutator(2048, hwgc.Config{Cores: 4})
	if err != nil {
		log.Fatal(err)
	}
	mu.Verify = true // oracle-check every automatic collection
	rep, err := mu.RunChurn(hwgc.ChurnConfig{Ops: 4000, RootSlots: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("churn: allocated %d objects, %d automatic collections, %d total GC cycles (all verified)\n",
		rep.Allocated, rep.Collections, rep.GCCycles)
}
