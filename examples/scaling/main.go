// Scaling: reproduce the paper's core experiment (Figure 5) on a workload of
// your choice — how much faster does a collection cycle get as GC cores are
// added, and where does it stop scaling?
//
// Run with:
//
//	go run ./examples/scaling [-bench javac] [-max-cores 32] [-extra-latency 0]
//
// Try -bench search to see a workload with no object-level parallelism, or
// -extra-latency 20 to see the paper's counter-intuitive Figure 6 result:
// slower memory scales better, because more stalled cores are needed to
// exhaust the memory bandwidth.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"hwgc"
)

func main() {
	bench := flag.String("bench", "javac", "workload ("+strings.Join(hwgc.Workloads(), ", ")+")")
	maxCores := flag.Int("max-cores", 32, "sweep core counts up to this power-of-two bound")
	extraLat := flag.Int("extra-latency", 0, "artificial extra memory latency in cycles")
	flag.Parse()

	var coreCounts []int
	for n := 1; n <= *maxCores; n *= 2 {
		coreCounts = append(coreCounts, n)
	}

	cfg := hwgc.Config{ExtraMemLatency: *extraLat}
	results, err := hwgc.SweepCores(*bench, coreCounts, 1, 42, cfg, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s: %d live objects, %d live words (every run oracle-verified)\n\n",
		*bench, results[0].LiveObjects, results[0].LiveWords)
	fmt.Printf("%6s  %12s  %8s  %s\n", "cores", "cycles", "speedup", "")
	base := results[0].Stats.Cycles
	for _, r := range results {
		speedup := float64(base) / float64(r.Stats.Cycles)
		bar := strings.Repeat("#", int(speedup*2+0.5))
		fmt.Printf("%6d  %12d  %8.2f  %s\n", len(r.Stats.PerCore), r.Stats.Cycles, speedup, bar)
	}

	last := results[len(results)-1].Stats
	sum := last.Sum()
	fmt.Printf("\nat %d cores: work list empty %.2f%% of cycles, mean stalls/core:\n",
		len(last.PerCore), 100*last.EmptyWorklistFraction())
	mean := last.Mean()
	fmt.Printf("  scan-lock %d, free-lock %d, header-lock %d, body-load %d, header-load %d\n",
		mean.ScanLockStall, mean.FreeLockStall, mean.HeaderLockStall, mean.BodyLoadStall, mean.HeaderLoadStall)
	fmt.Printf("  FIFO: %d hits / %d misses / %d drops\n", sum.FIFOHits, sum.FIFOMisses, last.FIFODrops)
}
