// Webcache: a domain scenario for the collector — an in-memory session
// cache of the kind the paper's introduction motivates (multi-core servers
// allocating at high bandwidth, where a slow collector becomes the
// bottleneck).
//
// The cache holds sessions; each session references a user record, a few
// cart entries, and one of a handful of shared template objects (hubs, the
// javac pattern). Sessions expire continuously, creating garbage; the heap
// fills up and the coprocessor collects. The example runs the same cache
// workload against a 1-core and an 8-core coprocessor and compares the GC
// pause times — the paper's headline claim, observed end to end from the
// application's perspective.
//
// Run with:
//
//	go run ./examples/webcache [-sessions 120000] [-cores 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"hwgc"
)

// cache simulates the application. All state lives in the simulated heap;
// the Go side only keeps the root index of the session table.
type cache struct {
	mu       *hwgc.Mutator
	rng      *rand.Rand
	table    int // root slot holding the session table object
	slots    int
	temps    int // root slot holding the template array
	scratch  int // reusable root slot for objects under construction
	sessions int64
	expired  int64
}

func newCache(cores, slots int, seed int64) (*cache, error) {
	mu, err := hwgc.NewMutator(256*1024, hwgc.Config{Cores: cores})
	if err != nil {
		return nil, err
	}
	mu.Verify = true // oracle-check every collection this example triggers
	c := &cache{mu: mu, rng: rand.New(rand.NewSource(seed)), slots: slots}
	h := mu.Heap()

	// The session table: one pointer slot per cache slot.
	table, err := mu.Alloc(slots, 0)
	if err != nil {
		return nil, err
	}
	c.table = h.AddRoot(table)

	// Eight shared template objects (every session references one — the
	// "few objects referenced by many objects" hub pattern).
	tmpl, err := mu.Alloc(8, 0)
	if err != nil {
		return nil, err
	}
	c.temps = h.AddRoot(tmpl)
	for i := 0; i < 8; i++ {
		t, err := mu.Alloc(0, 64)
		if err != nil {
			return nil, err
		}
		h.SetPtr(h.Root(c.temps), i, t)
	}
	c.scratch = h.AddRoot(hwgc.NilPtr)
	return c, nil
}

// admit creates a session and installs it in a (possibly occupied) slot;
// overwriting an occupied slot expires the old session, creating garbage.
//
// A collection may run inside any Alloc call and *move* every object, so
// raw addresses must never be held across an allocation. The idiom — the
// same one the prototype's Java runtime uses via its registers — is to park
// the object under construction in a scratch root slot and re-read it after
// every allocation.
func (c *cache) admit() error {
	h := c.mu.Heap()
	carts := 1 + c.rng.Intn(3)
	// session layout: pointers [user, template, cart...] + a data payload.
	sess, err := c.mu.Alloc(2+carts, 6)
	if err != nil {
		return err
	}
	scratch := c.scratch
	h.SetRoot(scratch, sess)
	defer func() { h.SetRoot(scratch, hwgc.NilPtr) }()

	user, err := c.mu.Alloc(0, 10)
	if err != nil {
		return err
	}
	// Re-read from the scratch root: a GC during Alloc forwards it.
	h.SetPtr(h.Root(scratch), 0, user)
	h.SetPtr(h.Root(scratch), 1, h.Ptr(h.Root(c.temps), c.rng.Intn(8)))
	for i := 0; i < carts; i++ {
		item, err := c.mu.Alloc(0, 4)
		if err != nil {
			return err
		}
		h.SetPtr(h.Root(scratch), 2+i, item)
	}
	for i := 0; i < 6; i++ {
		h.SetData(h.Root(scratch), i, c.rng.Uint64())
	}

	slot := c.rng.Intn(c.slots)
	if h.Ptr(h.Root(c.table), slot) != hwgc.NilPtr {
		c.expired++
	}
	h.SetPtr(h.Root(c.table), slot, h.Root(scratch))
	c.sessions++
	return nil
}

func run(cores, sessions, slots int) error {
	c, err := newCache(cores, slots, 7)
	if err != nil {
		return err
	}
	for i := 0; i < sessions; i++ {
		if err := c.admit(); err != nil {
			return fmt.Errorf("session %d: %w", i, err)
		}
	}
	cols := c.mu.Collections()
	var total, max int64
	for _, st := range cols {
		total += st.Cycles
		if st.Cycles > max {
			max = st.Cycles
		}
	}
	fmt.Printf("%2d cores: %6d sessions admitted, %6d expired, %2d collections (verified), "+
		"GC cycles total=%d max-pause=%d mean-pause=%d\n",
		cores, c.sessions, c.expired, len(cols), total, max, total/int64(max1(len(cols))))
	return nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

func main() {
	sessions := flag.Int("sessions", 120000, "sessions to admit")
	cores := flag.Int("cores", 8, "coprocessor cores for the second run")
	flag.Parse()

	slots := 2048
	fmt.Println("session-cache workload; identical allocation sequence, two coprocessor sizes:")
	if err := run(1, *sessions, slots); err != nil {
		log.Fatal(err)
	}
	if err := run(*cores, *sessions, slots); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe application is stopped for every GC cycle, so shorter cycles mean")
	fmt.Println("shorter pauses — the paper's motivation for the multi-core coprocessor.")
}
