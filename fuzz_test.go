package hwgc

import (
	"strings"
	"testing"
)

// FuzzDecodeBatchRequest checks that arbitrary input never panics the
// /v1/batch request decoder, and that every accepted batch is servable:
// each item either preps cleanly (canonical path/key/body) or fails with a
// per-item error — never a panic, and never an item that preps to an
// invalid key.
func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(`{"Items":[{"Collect":{"Bench":"jlisp","Config":{}}}]}`)
	f.Add(`{"Items":[{"Sweep":{"Bench":"javac","Cores":[1,2,4],"Config":{"Cores":4}}}]}`)
	f.Add(`{"Items":[{"Collect":{"Plan":{"Objs":[{"Pi":1,"Delta":1,"Ptrs":[-1],"Data":[7]}],"Roots":[0]},"Config":{}}}]}`)
	f.Add(`{"Items":[{}]}`)
	f.Add(`{"Items":[]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, in string) {
		req, err := DecodeBatchRequest(strings.NewReader(in))
		if err != nil {
			return // rejected: fine
		}
		if len(req.Items) == 0 || len(req.Items) > MaxBatchItems {
			t.Fatalf("accepted batch with %d items outside (0, %d]", len(req.Items), MaxBatchItems)
		}
		for i := range req.Items {
			path, key, body, err := req.Items[i].Prep()
			if err != nil {
				continue // a per-item failure at serve time: fine
			}
			if path != "/v1/collect" && path != "/v1/sweep" {
				t.Fatalf("item %d prepped to unknown path %q", i, path)
			}
			if len(key) != 64 || len(body) == 0 {
				t.Fatalf("item %d prepped to key %q body len %d", i, key, len(body))
			}
		}
	})
}
