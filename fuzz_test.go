package hwgc

import (
	"strings"
	"testing"
)

// FuzzDecodeBatchRequest checks that arbitrary input never panics the
// /v1/batch request decoder, and that every accepted batch is servable:
// each item either preps cleanly (canonical path/key/body) or fails with a
// per-item error — never a panic, and never an item that preps to an
// invalid key.
// FuzzSweepSpaceDecode checks that arbitrary input never panics the sweep
// spec decoder, and that every accepted space upholds the planner's
// invariants: canonicalization is a fixed point (re-decoding canonical
// bytes reproduces them and the key), the post-constraint point count
// respects the cap, and expansion yields exactly that many points with
// unique well-formed keys.
func FuzzSweepSpaceDecode(f *testing.F) {
	f.Add(`{"Benches":["jlisp"]}`)
	f.Add(`{"Benches":["javac","jlisp"],"Scales":[1,2],"Seeds":[7],` +
		`"Axes":[{"Field":"Cores","Values":[1,2,4]},{"Field":"MemLatency","Values":[10,40]}],` +
		`"Constraints":[{"A":"MemLatency","Op":">=","Value":10}],"Objective":"speedup","TopK":8}`)
	f.Add(`{"Benches":["compress"],"Axes":[{"Field":"FIFOCapacity","Values":[0,1024,32768]}],"MaxPoints":4}`)
	f.Add(`{"V":1,"Benches":["db"],"Constraints":[{"A":"MemBanks","Op":">=","B":"Cores"}]}`)
	f.Add(`{"Benches":["jlisp"],"Base":{"MutatorOps":4096},` +
		`"Axes":[{"Field":"BarrierMode","Strings":["none","satb","incupdate"]},{"Field":"Cores","Values":[1,4]}]}`)
	f.Add(`{"Benches":["db"],"Axes":[{"Field":"BarrierMode","Strings":["","satb",""]},{"Field":"MutatorOps","Values":[0,4096]}]}`)
	f.Add(`{"Benches":["jlisp"],"MaxPoints":99999}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, in string) {
		s, err := DecodeSweepSpace(strings.NewReader(in))
		if err != nil {
			return // rejected: fine
		}
		canonical, err := s.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted space fails CanonicalJSON: %v", err)
		}
		key := KeyBytes(canonical)
		pts, err := s.Points()
		if err != nil {
			t.Fatalf("accepted space fails Points: %v", err)
		}
		if len(pts) == 0 || len(pts) > s.MaxPoints {
			t.Fatalf("accepted space plans %d points outside (0, %d]", len(pts), s.MaxPoints)
		}
		seen := make(map[string]bool, len(pts))
		for i, p := range pts {
			if p.Index != i || len(p.Key) != 64 || len(p.Canonical) == 0 {
				t.Fatalf("point %d malformed: %+v", i, p)
			}
			if seen[p.Key] {
				t.Fatalf("duplicate point key %s", p.Key)
			}
			seen[p.Key] = true
		}
		s2, err := DecodeSweepSpace(strings.NewReader(string(canonical)))
		if err != nil {
			t.Fatalf("canonical bytes rejected on re-decode: %v", err)
		}
		canonical2, err := s2.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(canonical2) != string(canonical) || KeyBytes(canonical2) != key {
			t.Fatalf("canonicalization not idempotent:\n%s\n%s", canonical, canonical2)
		}
	})
}

func FuzzDecodeBatchRequest(f *testing.F) {
	f.Add(`{"Items":[{"Collect":{"Bench":"jlisp","Config":{}}}]}`)
	f.Add(`{"Items":[{"Sweep":{"Bench":"javac","Cores":[1,2,4],"Config":{"Cores":4}}}]}`)
	f.Add(`{"Items":[{"Collect":{"Plan":{"Objs":[{"Pi":1,"Delta":1,"Ptrs":[-1],"Data":[7]}],"Roots":[0]},"Config":{}}}]}`)
	f.Add(`{"Items":[{}]}`)
	f.Add(`{"Items":[]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, in string) {
		req, err := DecodeBatchRequest(strings.NewReader(in))
		if err != nil {
			return // rejected: fine
		}
		if len(req.Items) == 0 || len(req.Items) > MaxBatchItems {
			t.Fatalf("accepted batch with %d items outside (0, %d]", len(req.Items), MaxBatchItems)
		}
		for i := range req.Items {
			path, key, body, err := req.Items[i].Prep()
			if err != nil {
				continue // a per-item failure at serve time: fine
			}
			if path != "/v1/collect" && path != "/v1/sweep" {
				t.Fatalf("item %d prepped to unknown path %q", i, path)
			}
			if len(key) != 64 || len(body) == 0 {
				t.Fatalf("item %d prepped to key %q body len %d", i, key, len(body))
			}
		}
	})
}
