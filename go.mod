module hwgc

go 1.22
