// Package hwgc is a library-grade reproduction of the system described in
// O. Horvath and M. Meyer, "Fine-Grained Parallel Compacting Garbage
// Collection through Hardware-Supported Synchronization" (ICPP 2010).
//
// The paper parallelizes Cheney's copying collector at object granularity
// with a single shared work list — the tospace region between the scan and
// free pointers — and makes the required synchronization affordable with a
// multi-core GC coprocessor: hardware locks for scan/free, per-core
// header-lock registers compared in parallel, hardware termination
// detection, a memory access scheduler that orders header accesses with a
// comparator array, and an on-chip FIFO for gray tospace headers.
//
// This package exposes:
//
//   - a word-addressed semispace object heap (NewHeap) with the paper's
//     object layout (two-word header, pointer area, data area);
//   - a deterministic cycle-stepped simulator of the coprocessor (Collect),
//     which reports the paper's metrics: collection duration in clock
//     cycles, per-cause stall cycles, empty-work-list cycles, FIFO and
//     memory statistics;
//   - an untimed reference collector and a verification oracle
//     (CollectSequential, Snapshot, Verify);
//   - the synthetic workload suite standing in for the paper's Java
//     benchmarks (Workloads, RunBenchmark, SweepCores);
//   - a mutator driver for multi-collection runs (NewMutator);
//   - software-parallel baseline collectors from the paper's related-work
//     discussion (Baselines, RunBaseline) for comparison;
//   - a monitoring facility in the spirit of the prototype's on-chip signal
//     tracer (NewMonitor, CollectTraced).
//
// All simulated measurements are deterministic: the same heap, seed and
// configuration produce bit-identical statistics.
package hwgc

import (
	"io"

	"hwgc/internal/baseline"
	"hwgc/internal/core"
	"hwgc/internal/gcalgo"
	"hwgc/internal/heap"
	"hwgc/internal/machine"
	"hwgc/internal/mutator"
	"hwgc/internal/object"
	"hwgc/internal/plan"
	"hwgc/internal/trace"
	"hwgc/internal/workload"
)

// Core data types, aliased from the internal packages so their methods and
// fields are part of the public API.
type (
	// Addr is a word address in the simulated memory; 0 is the nil pointer.
	Addr = object.Addr
	// Word is one memory word.
	Word = object.Word
	// Header is a decoded object header.
	Header = object.Header
	// Heap is a two-semispace object heap.
	Heap = heap.Heap
	// Config parameterizes the simulated GC coprocessor.
	Config = machine.Config
	// Stats reports one simulated collection cycle.
	Stats = machine.Stats
	// CoreStats holds the per-core counters of Stats.
	CoreStats = machine.CoreStats
	// Plan is a buildable description of an object graph.
	Plan = workload.Plan
	// WorkloadSpec is a named benchmark workload.
	WorkloadSpec = workload.Spec
	// Graph is the canonical logical object graph used for verification.
	Graph = gcalgo.Graph
	// RunResult is the outcome of one verified benchmark collection.
	RunResult = core.RunResult
	// Monitor samples the coprocessor's internal signals while it runs.
	Monitor = trace.Monitor
	// Mutator drives a heap through allocation and collection cycles.
	Mutator = mutator.Mutator
	// ChurnConfig parameterizes Mutator.RunChurn.
	ChurnConfig = mutator.ChurnConfig
	// MutOp is one operation of a concurrent-mode mutator (the paper's
	// Section V-B "next step", implemented as an extension).
	MutOp = machine.MutOp
	// MutKind enumerates concurrent mutator operations.
	MutKind = machine.MutKind
	// MutDriver produces a concurrent mutator's operation stream.
	MutDriver = machine.MutDriver
	// MutatorStats reports a concurrent mutator's progress and stalls.
	MutatorStats = machine.MutatorStats
	// BarrierMode selects the write-barrier discipline the concurrent
	// mutator's pointer stores go through.
	BarrierMode = machine.BarrierMode
	// NUMAPlacement selects how the collector places the tospace relative
	// to the NUMA domains (Config.NUMAPlacement).
	NUMAPlacement = machine.NUMAPlacement
)

// Write-barrier modes for concurrent collection (Config.BarrierMode).
const (
	// BarrierNone performs pointer stores with no barrier bookkeeping.
	BarrierNone = machine.BarrierNone
	// BarrierSATB is the Yuasa-style snapshot-at-the-beginning deletion
	// barrier: the overwritten slot's old target is shaded.
	BarrierSATB = machine.BarrierSATB
	// BarrierIncUpdate is the Dijkstra-style incremental-update insertion
	// barrier: the newly stored target is shaded.
	BarrierIncUpdate = machine.BarrierIncUpdate
)

// Tospace placement policies for the NUMA model (Config.NUMAPlacement).
const (
	// PlacementNaive interleaves the tospace across all domains.
	PlacementNaive = machine.PlacementNaive
	// PlacementLocal serves each core's evacuation window from its own
	// domain, so copied words never cross a domain boundary.
	PlacementLocal = machine.PlacementLocal
)

// Concurrent mutator operation kinds.
const (
	MutNop       = machine.MutNop
	MutLoadRoot  = machine.MutLoadRoot
	MutStoreRoot = machine.MutStoreRoot
	MutLoadPtr   = machine.MutLoadPtr
	MutStorePtr  = machine.MutStorePtr
	MutLoadData  = machine.MutLoadData
	MutStoreData = machine.MutStoreData
	MutAlloc     = machine.MutAlloc
)

// NilPtr is the null object reference.
const NilPtr = object.NilPtr

// NewHeap creates a heap with two semispaces of semiWords words each.
func NewHeap(semiWords int) *Heap { return heap.New(semiWords) }

// Collect runs one garbage collection cycle over h on the simulated
// multi-core coprocessor and returns its clock-cycle statistics. On return
// the heap has been flipped and compacted.
func Collect(h *Heap, cfg Config) (Stats, error) {
	m, err := machine.New(h, cfg)
	if err != nil {
		return Stats{}, err
	}
	return m.Collect()
}

// CollectVerified is Collect plus an oracle check that the collection
// preserved the logical object graph exactly and compacted perfectly.
func CollectVerified(h *Heap, cfg Config) (Stats, error) {
	return core.CollectOnce(h, cfg, true)
}

// CollectTraced runs Collect with a Monitor attached, sampling the
// coprocessor's internal signals every mon.Interval cycles.
func CollectTraced(h *Heap, cfg Config, mon *Monitor) (Stats, error) {
	m, err := machine.New(h, cfg)
	if err != nil {
		return Stats{}, err
	}
	mon.Attach(m)
	return m.Collect()
}

// NewConcurrentChurn returns a deterministic MutDriver performing a
// randomized pointer-chasing / field-writing / allocating workload over the
// heap's roots, for use with CollectConcurrent.
func NewConcurrentChurn(h *Heap, seed int64, maxOps, maxAllocs int64) MutDriver {
	return machine.NewConcurrentChurn(h, seed, maxOps, maxAllocs)
}

// CollectConcurrent runs one collection cycle with a mutator executing
// concurrently on the coprocessor's mutator port, under a wait-until-black
// access barrier (the extension of the paper's Section V-B outlook). The
// driver supplies the mutator's operations; period is the number of idle
// cycles between them. Returns the collection statistics and the mutator's
// side of the story, whose MaxOpLatency is the concurrent analogue of the
// stop-the-world pause.
func CollectConcurrent(h *Heap, cfg Config, driver MutDriver, period int) (Stats, MutatorStats, error) {
	m, err := machine.New(h, cfg)
	if err != nil {
		return Stats{}, MutatorStats{}, err
	}
	return m.CollectConcurrent(driver, period)
}

// CollectSequential runs the untimed reference implementation of Cheney's
// sequential algorithm over h (useful as a specification and for fast bulk
// collections in tests).
func CollectSequential(h *Heap) (liveObjects, liveWords int, err error) {
	return gcalgo.Collect(h)
}

// Snapshot captures the canonical logical object graph of h's current
// space, for later comparison with Verify.
func Snapshot(h *Heap) (*Graph, error) { return gcalgo.Snapshot(h) }

// Verify checks that h holds exactly the logical graph captured before a
// collection, with perfect compaction.
func Verify(before *Graph, h *Heap) error { return gcalgo.VerifyCollection(before, h) }

// NewMonitor creates a signal monitor sampling every interval cycles and
// retaining up to maxSamples samples.
func NewMonitor(interval int64, maxSamples int) *Monitor {
	return trace.NewMonitor(interval, maxSamples)
}

// NewMutator creates a mutator over a fresh heap with the given semispace
// size, collected by a coprocessor configured with cfg.
func NewMutator(semiWords int, cfg Config) (*Mutator, error) {
	return mutator.New(semiWords, cfg)
}

// Workloads returns the names of the built-in benchmark workloads, in the
// paper's table order.
func Workloads() []string { return workload.Names() }

// ReadPlan decodes and validates a JSON-encoded object-graph plan (a custom
// workload); see WritePlan for the format. The codec (one implementation,
// shared by the CLI, the gcserved service and the fuzz target) lives in
// internal/plan.
func ReadPlan(r io.Reader) (*Plan, error) { return plan.Read(r) }

// ReadPlanFile decodes and validates the JSON plan stored at path.
func ReadPlanFile(path string) (*Plan, error) { return plan.ReadFile(path) }

// WritePlan encodes a plan as JSON.
func WritePlan(w io.Writer, p *Plan) error { return plan.Write(w, p) }

// Workload returns the named benchmark workload.
func Workload(name string) (WorkloadSpec, error) { return workload.Get(name) }

// BuildWorkload constructs a fresh heap holding the named benchmark's object
// graph at the given scale and seed.
func BuildWorkload(name string, scale int, seed int64) (*Heap, error) {
	h, _, err := core.BuildBench(name, scale, seed)
	return h, err
}

// RunBenchmark builds the named benchmark and runs one collection with cfg,
// verifying the result against the reference oracle when verify is set.
func RunBenchmark(name string, scale int, seed int64, cfg Config, verify bool) (RunResult, error) {
	return core.RunBenchmark(name, scale, seed, cfg, verify)
}

// RunPlan builds a heap from a custom plan and runs one collection with cfg,
// verifying against the reference oracle when verify is set. name labels the
// result (the CLI uses the plan's file name; the server uses "plan").
func RunPlan(name string, p *Plan, cfg Config, verify bool) (RunResult, error) {
	return core.RunPlan(name, p, cfg, verify)
}

// SweepCores runs the named benchmark once per core count on identically
// built heaps — the measurement underlying the paper's Figures 5/6 and
// Table I.
func SweepCores(name string, coreCounts []int, scale int, seed int64, cfg Config, verify bool) ([]RunResult, error) {
	return core.SweepCores(name, coreCounts, scale, seed, cfg, verify)
}

// PaperCoreCounts are the coprocessor sizes measured in the paper (1, 2, 4,
// 8, 16).
var PaperCoreCounts = []int{1, 2, 4, 8, 16}

// BaselineResult describes one software-parallel baseline collection.
type BaselineResult = baseline.Result

// SyncCounts tallies the synchronization operations a software collector
// performed — the cost the paper's hardware support removes.
type SyncCounts = baseline.SyncCounts

// Baselines returns the names of the software-parallel baseline collectors
// from the paper's related-work discussion: "finegrained" (the paper's own
// algorithm with software atomics), "chunked" (Imai/Tick), "workpackets"
// (Ossia et al.), "stealing" (Flood et al.) and "taskpush" (Wu/Li).
func Baselines() []string { return baseline.Names() }

// BaselineDescription returns a one-line description of the named baseline.
func BaselineDescription(name string) (string, error) {
	c, err := baseline.ByName(name)
	if err != nil {
		return "", err
	}
	return c.Description(), nil
}

// RunBaseline collects h with the named software-parallel collector using
// the given number of goroutines. Unlike the coprocessor, the chunk/LAB
// based baselines may leave filler objects in tospace; the returned result
// reports those wasted words.
func RunBaseline(name string, h *Heap, workers int) (BaselineResult, error) {
	c, err := baseline.ByName(name)
	if err != nil {
		return BaselineResult{}, err
	}
	return c.Collect(h, workers)
}

// VerifyPreserved checks that a baseline collection preserved the logical
// object graph (without requiring perfect compaction, which the chunk/LAB
// collectors intentionally trade away).
func VerifyPreserved(before *Graph, h *Heap) error {
	return baseline.VerifyPreserved(before, h)
}
