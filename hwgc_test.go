package hwgc

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the README flow end to end through the
// public API only.
func TestPublicAPIQuickstart(t *testing.T) {
	h := NewHeap(1024)
	a, err := h.Alloc(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(0, 40); err != nil { // garbage
		t.Fatal(err)
	}
	h.SetPtr(a, 0, b)
	h.SetData(a, 0, 123)
	h.SetData(b, 0, 456)
	h.AddRoot(a)

	before, err := Snapshot(h)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Collect(h, Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(before, h); err != nil {
		t.Fatal(err)
	}
	if st.LiveObjects != 2 {
		t.Fatalf("live = %d", st.LiveObjects)
	}
	if h.Data(h.Ptr(h.Root(0), 0), 0) != 456 {
		t.Fatal("data lost through collection")
	}
}

func TestCollectVerifiedRejectsNothingOnCleanRun(t *testing.T) {
	h, err := BuildWorkload("jlisp", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectVerified(h, Config{Cores: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadRegistryPublic(t *testing.T) {
	names := Workloads()
	if len(names) != 9 { // the paper's eight benchmarks plus the blob extension workload
		t.Fatalf("workloads = %v", names)
	}
	for _, n := range names {
		spec, err := Workload(n)
		if err != nil || spec.Name != n {
			t.Fatalf("workload %q: %v", n, err)
		}
	}
	if _, err := Workload("bogus"); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestCollectTraced(t *testing.T) {
	h, err := BuildWorkload("jlisp", 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(8, 4096)
	st, err := CollectTraced(h, Config{Cores: 4}, mon)
	if err != nil {
		t.Fatal(err)
	}
	if mon.Len() == 0 || st.Cycles == 0 {
		t.Fatal("trace empty")
	}
	var sb strings.Builder
	if err := mon.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cycle,") {
		t.Fatal("CSV malformed")
	}
}

// TestPaperShapeHeadline asserts the reproduction's headline results keep
// the paper's shape: near-linear scaling to 8 cores (paper: up to 7.4),
// double-digit speedup at 16 (paper: up to 12.1), and no significant speedup
// for the linear benchmarks compress and search.
func TestPaperShapeHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("headline sweep is slow")
	}
	var max8, max16 float64
	for _, bench := range []string{"db", "javacc", "jlisp"} {
		res, err := SweepCores(bench, []int{1, 8, 16}, 1, 42, Config{}, false)
		if err != nil {
			t.Fatal(err)
		}
		s8 := float64(res[0].Stats.Cycles) / float64(res[1].Stats.Cycles)
		s16 := float64(res[0].Stats.Cycles) / float64(res[2].Stats.Cycles)
		if s8 > max8 {
			max8 = s8
		}
		if s16 > max16 {
			max16 = s16
		}
	}
	if max8 < 6.5 {
		t.Errorf("best 8-core speedup %.2f; paper reports up to 7.4", max8)
	}
	if max16 < 10 {
		t.Errorf("best 16-core speedup %.2f; paper reports up to 12.1", max16)
	}
	for _, bench := range []string{"compress", "search"} {
		res, err := SweepCores(bench, []int{1, 16}, 1, 42, Config{}, false)
		if err != nil {
			t.Fatal(err)
		}
		s := float64(res[0].Stats.Cycles) / float64(res[1].Stats.Cycles)
		if s > 3.5 {
			t.Errorf("%s speeds up %.2fx; the paper reports no significant speedup", bench, s)
		}
	}
}

// TestPaperShapeLatency asserts the Figure 6 result: adding 20 cycles of
// memory latency improves 16-core scalability for parallel benchmarks.
func TestPaperShapeLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency sweep is slow")
	}
	speedup16 := func(cfg Config) float64 {
		res, err := SweepCores("javacc", []int{1, 16}, 1, 42, cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res[0].Stats.Cycles) / float64(res[1].Stats.Cycles)
	}
	fast := speedup16(Config{})
	slow := speedup16(Config{ExtraMemLatency: 20})
	if slow <= fast {
		t.Errorf("Figure 6 shape lost: speedup %.2f with +20 latency vs %.2f without", slow, fast)
	}
}

// TestPaperShapeCup asserts cup's Table II signature: the header FIFO
// overflows and scan-lock stalls dominate among lock stalls.
func TestPaperShapeCup(t *testing.T) {
	if testing.Short() {
		t.Skip("cup run is slow")
	}
	r, err := RunBenchmark("cup", 1, 42, Config{Cores: 16}, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.FIFODrops == 0 {
		t.Error("cup did not overflow the 32k header FIFO")
	}
	m := r.Stats.Mean()
	if m.ScanLockStall <= m.HeaderLockStall || m.ScanLockStall <= m.FreeLockStall {
		t.Errorf("cup scan-lock stalls (%d) do not dominate lock stalls (%+v)", m.ScanLockStall, m)
	}
}

// TestPaperShapeJavac asserts javac's Table II signature: header-lock stalls
// far above every other benchmark's, and removed by the §VI-B optimization.
func TestPaperShapeJavac(t *testing.T) {
	if testing.Short() {
		t.Skip("javac run is slow")
	}
	r, err := RunBenchmark("javac", 1, 42, Config{Cores: 16}, false)
	if err != nil {
		t.Fatal(err)
	}
	db, err := RunBenchmark("db", 1, 42, Config{Cores: 16}, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Mean().HeaderLockStall < 100*max64(1, db.Stats.Mean().HeaderLockStall) {
		t.Errorf("javac header-lock stalls (%d) not far above db (%d)",
			r.Stats.Mean().HeaderLockStall, db.Stats.Mean().HeaderLockStall)
	}
	opt, err := RunBenchmark("javac", 1, 42, Config{Cores: 16, OptUnlockedMarkRead: true}, false)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.Mean().HeaderLockStall*10 > r.Stats.Mean().HeaderLockStall {
		t.Errorf("optimization left header-lock stalls: %d of %d",
			opt.Stats.Mean().HeaderLockStall, r.Stats.Mean().HeaderLockStall)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestBaselinesPublicAPI(t *testing.T) {
	if len(Baselines()) != 5 {
		t.Fatalf("baselines = %v", Baselines())
	}
	h, err := BuildWorkload("jlisp", 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	before, err := Snapshot(h)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBaseline("stealing", h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPreserved(before, h); err != nil {
		t.Fatal(err)
	}
	if res.LiveObjects == 0 || res.Sync.Total() == 0 {
		t.Fatalf("result empty: %+v", res)
	}
	if _, err := RunBaseline("bogus", h, 1); err == nil {
		t.Fatal("bogus baseline accepted")
	}
	if d, err := BaselineDescription("chunked"); err != nil || d == "" {
		t.Fatal("description missing")
	}
}

func TestMutatorPublicAPI(t *testing.T) {
	mu, err := NewMutator(4096, Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	mu.Verify = true
	rep, err := mu.RunChurn(ChurnConfig{Ops: 5000, RootSlots: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Allocated == 0 || rep.Collections == 0 {
		t.Fatalf("churn did nothing: %+v", rep)
	}
}
