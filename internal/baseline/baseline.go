// Package baseline implements software-parallel compacting collectors on
// stock shared memory, corresponding to the approaches the paper surveys in
// Section III — and to the "ideal" fine-grained approach the paper deems
// prohibitively expensive without hardware support (Section I).
//
// All four collectors are real goroutine-parallel copying collectors over
// the same heap and object layout as the simulated coprocessor:
//
//   - finegrained: the paper's own algorithm implemented with software
//     atomics — shared scan and free pointers, per-object CAS claiming. It
//     distributes work at object granularity like the coprocessor, but pays
//     several synchronization operations per object.
//   - chunked: Imai & Tick's chunk-based copying — the heap's tospace is
//     carved into fixed-size chunks; workers scan whole chunks and allocate
//     into private chunks, trading fragmentation for synchronization only
//     at chunk granularity.
//   - workpackets: Ossia et al.'s work packets — gray references travel in
//     fixed-capacity packets through shared pools, with per-worker local
//     allocation buffers.
//   - stealing: Flood et al.'s work stealing — per-worker deques of gray
//     references, idle workers steal, with per-worker local allocation
//     buffers.
//
// Every collector counts its synchronization operations, so the benchmark
// harness can quantify the trade-off the paper's hardware removes: sync
// operations per object versus work-distribution granularity and
// fragmentation. Each collector's output is checked by the same logical-
// graph oracle as the coprocessor's; the chunk/LAB-based collectors leave
// filler objects in the holes they create, so the heap remains walkable and
// the wasted words are measurable.
package baseline

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/gcalgo"
	"hwgc/internal/heap"
	"hwgc/internal/object"
)

// SyncCounts tallies the synchronization operations a collector performed.
// Plain loads/stores of heap words are not counted; the point is to measure
// the operations that are expensive on stock shared-memory machines
// (Section V-A: coherency traffic, write ordering, memory barriers).
type SyncCounts struct {
	AtomicLoads  int64 // atomic header/pointer loads
	AtomicStores int64 // atomic header publications
	CAS          int64 // compare-and-swap attempts
	CASRetries   int64 // failed CAS attempts (contention)
	FetchAdds    int64 // atomic fetch-and-add allocations / counters
	MutexOps     int64 // lock/unlock pairs on shared pools and deques
	SpinWaits    int64 // spin iterations waiting for another worker's store
}

// Total returns the total number of synchronization operations.
func (s SyncCounts) Total() int64 {
	return s.AtomicLoads + s.AtomicStores + s.CAS + s.FetchAdds + s.MutexOps
}

func (s *SyncCounts) add(o SyncCounts) {
	s.AtomicLoads += o.AtomicLoads
	s.AtomicStores += o.AtomicStores
	s.CAS += o.CAS
	s.CASRetries += o.CASRetries
	s.FetchAdds += o.FetchAdds
	s.MutexOps += o.MutexOps
	s.SpinWaits += o.SpinWaits
}

// Result describes one software-parallel collection.
type Result struct {
	Workers     int
	LiveObjects int64
	LiveWords   int64 // words of live objects (excludes fillers)
	WastedWords int64 // filler words lost to fragmentation (chunk/LAB leftovers)
	Elapsed     time.Duration
	Sync        SyncCounts
}

// Collector is a software-parallel compacting collector.
type Collector interface {
	// Name returns the registry name.
	Name() string
	// Description summarizes the work-distribution strategy.
	Description() string
	// Collect runs one full collection over h with the given number of
	// worker goroutines. On success the heap has been flipped; surviving
	// objects (plus any filler objects) occupy the bottom of the new space.
	Collect(h *heap.Heap, workers int) (Result, error)
}

var registry = map[string]Collector{}
var registryOrder []string

func register(c Collector) {
	registry[c.Name()] = c
	registryOrder = append(registryOrder, c.Name())
}

// Names returns the registered collector names in registration order.
func Names() []string { return append([]string(nil), registryOrder...) }

// ByName returns the named collector.
func ByName(name string) (Collector, error) {
	if c, ok := registry[name]; ok {
		return c, nil
	}
	all := Names()
	sort.Strings(all)
	return nil, fmt.Errorf("baseline: unknown collector %q (have %v)", name, all)
}

// VerifyPreserved checks that the collection preserved the logical object
// graph and left a structurally valid heap. Unlike the coprocessor oracle it
// does not require perfect compaction: the chunked and LAB-based collectors
// legitimately leave filler objects in tospace (that is their measured
// fragmentation cost).
func VerifyPreserved(before *gcalgo.Graph, h *heap.Heap) error {
	if err := h.CheckIntegrity(); err != nil {
		return err
	}
	after, err := gcalgo.Snapshot(h)
	if err != nil {
		return err
	}
	return before.Equal(after)
}

// cycle holds the shared state of one software collection over a heap.
type cycle struct {
	mem     []object.Word
	base    object.Addr
	limit   object.Addr
	free    atomic.Uint64 // next unallocated tospace word
	wasted  atomic.Int64  // filler words
	aborted atomic.Bool   // a worker hit a fatal error; spinners must bail out
	h       *heap.Heap
}

func newCycle(h *heap.Heap) *cycle {
	to := h.OtherSpace()
	c := &cycle{
		mem:   h.Mem(),
		base:  h.Base(to),
		limit: h.Limit(to),
		h:     h,
	}
	// Zero tospace: the fine-grained collector publishes frames through the
	// shared free pointer before their headers are written, so consumers
	// must be able to distinguish "not yet written" (zero) from stale
	// garbage of earlier cycles. The hardware needs no such pass — its
	// memory access scheduler orders header loads after pending header
	// stores instead.
	for i := c.base; i < c.limit; i++ {
		c.mem[i] = 0
	}
	c.free.Store(uint64(c.base))
	return c
}

// bump allocates size words from the shared free pointer with fetch-add.
func (c *cycle) bump(size int, sc *SyncCounts) (object.Addr, bool) {
	sc.FetchAdds++
	end := c.free.Add(uint64(size))
	if end > uint64(c.limit) {
		return 0, false
	}
	return object.Addr(end) - object.Addr(size), true
}

// errTospaceOverflow is produced when an allocation exceeds tospace.
var errTospaceOverflow = fmt.Errorf("baseline: tospace overflow")

// lab is a thread-local allocation buffer carved out of the shared tospace
// with a single fetch-add per refill (Flood's "local allocation buffers",
// Ossia's allocation caches). Leftover words are closed with a filler
// object; that waste is the fragmentation cost the paper's Section III
// discusses.
type lab struct {
	cur, end object.Addr
	size     int
}

func (l *lab) alloc(c *cycle, size int, sc *SyncCounts) (object.Addr, error) {
	if size > l.size || l.size-size == 1 {
		// Oversized object (or one that would leave an unfillable one-word
		// hole in a fresh LAB): dedicated allocation straight from the
		// shared pointer.
		a, ok := c.bump(size, sc)
		if !ok {
			return 0, errTospaceOverflow
		}
		return a, nil
	}
	for {
		rem := int(l.end) - int(l.cur)
		if size <= rem && rem-size != 1 {
			a := l.cur
			l.cur += object.Addr(size)
			return a, nil
		}
		// Close the current LAB with a filler and refill. The guard above
		// ensures a fresh LAB always satisfies the object.
		l.close(c)
		a, ok := c.bump(l.size, sc)
		if !ok {
			return 0, errTospaceOverflow
		}
		l.cur, l.end = a, a+object.Addr(l.size)
	}
}

// close writes a filler object over the LAB's unused tail. The allocation
// discipline guarantees the remainder is never exactly one word.
func (l *lab) close(c *cycle) {
	rem := int(l.end) - int(l.cur)
	if rem <= 0 {
		return
	}
	writeFiller(c.mem, l.cur, rem)
	c.wasted.Add(int64(rem))
	l.cur = l.end
}

// writeFiller covers exactly `words` words at `at` with one or more
// unreachable filler objects. Fillers keep the space walkable so the heap
// integrity checker and the next collection's allocator see a well-formed
// space. Holes larger than the maximum object size are split; the split
// never leaves a one-word remainder.
func writeFiller(mem []object.Word, at object.Addr, words int) {
	if words < object.HeaderWords {
		panic(fmt.Sprintf("baseline: cannot write %d-word filler", words))
	}
	const maxFiller = object.HeaderWords + object.MaxDelta
	for words > 0 {
		n := words
		if n > maxFiller {
			n = maxFiller
			if words-n == 1 {
				n--
			}
		}
		mem[at] = object.Header{Pi: 0, Delta: n - object.HeaderWords}.Encode()
		mem[at+1] = 0
		for i := object.HeaderWords; i < n; i++ {
			mem[at+object.Addr(i)] = 0
		}
		at += object.Addr(n)
		words -= n
	}
}

// claimEvacuate resolves the fromspace object at p to its tospace address,
// evacuating it if this worker wins the claim race. The protocol is the
// standard software one (cf. Flood et al.):
//
//  1. atomically load the header; if marked, return the forwarding pointer;
//  2. if claimed-but-unfinished (gray), spin until the winner publishes;
//  3. otherwise CAS the gray bit in; the winner allocates, copies the whole
//     body, publishes the tospace copy's header with an atomic store, and
//     finally publishes mark+forwarding pointer with an atomic store.
//
// This is exactly the per-object synchronization the paper's hardware makes
// free: one atomic load plus (for the winner) one CAS and two publishing
// stores — or spinning for losers.
//
// With publishGray set (the fine-grained collector), the tospace header is
// published with the gray bit set so that it is guaranteed non-zero — the
// shared-work-list consumers detect "frame reserved but header not yet
// visible" by a zero word, and a π=0, δ=0 object's black header would
// encode to exactly zero. The scanning owner blackens the header when it has
// finished with the object, mirroring the hardware lifecycle of Fig. 4.
func claimEvacuate(c *cycle, p object.Addr, publishGray bool, alloc func(int) (object.Addr, error), sc *SyncCounts) (object.Addr, bool, error) {
	for {
		sc.AtomicLoads++
		hdr := atomic.LoadUint64(&c.mem[p])
		if object.Marked(hdr) {
			return object.Link(hdr), false, nil
		}
		if object.GrayBit(hdr) {
			// Another worker holds the claim; wait for the forwarding
			// pointer — unless the collection is being aborted, in which
			// case the winner may never publish it.
			if c.aborted.Load() {
				return 0, false, errTospaceOverflow
			}
			sc.SpinWaits++
			runtime.Gosched()
			continue
		}
		sc.CAS++
		if !atomic.CompareAndSwapUint64(&c.mem[p], hdr, hdr|grayClaim) {
			sc.CASRetries++
			continue
		}
		size := object.SizeWords(hdr)
		dst, err := alloc(size)
		if err != nil {
			c.aborted.Store(true)
			return 0, false, err
		}
		// Copy the body; pointer slots still refer to fromspace and will be
		// rewritten by whoever scans the gray copy.
		copy(c.mem[dst+object.HeaderWords:dst+object.Addr(size)],
			c.mem[p+object.HeaderWords:p+object.Addr(size)])
		c.mem[dst+1] = 0
		// Publish the copy's header, then the forwarding pointer.
		sc.AtomicStores += 2
		newHdr := object.BlackHeader(hdr)
		if publishGray {
			newHdr |= grayClaim
		}
		atomic.StoreUint64(&c.mem[dst], newHdr)
		atomic.StoreUint64(&c.mem[p], object.WithMark(hdr, dst))
		return dst, true, nil
	}
}

// grayClaim is the header bit used to claim an object during the software
// evacuation race (the same bit the hardware uses for tospace gray frames).
var grayClaim = object.Header{Gray: true}.Encode()

// scanObject rewrites the pointer slots of the (exclusively owned) tospace
// copy at dst, resolving each child through resolve. It returns the object's
// size in words.
func scanObject(c *cycle, dst object.Addr, resolve func(object.Addr) (object.Addr, error)) (int, error) {
	hdr := c.mem[dst]
	pi := object.Pi(hdr)
	for i := 0; i < pi; i++ {
		slot := object.PtrSlot(dst, i)
		child := object.Addr(c.mem[slot])
		if child == object.NilPtr {
			continue
		}
		fwd, err := resolve(child)
		if err != nil {
			return 0, err
		}
		c.mem[slot] = object.Word(fwd)
	}
	return object.SizeWords(hdr), nil
}

// processRoots splits the root slots among the workers; worker w resolves
// every root slot i with i % workers == w and rewrites it in place.
func processRoots(c *cycle, w, workers int, resolve func(object.Addr) (object.Addr, error)) error {
	roots := c.h.Roots()
	for i := w; i < len(roots); i += workers {
		if roots[i] == object.NilPtr {
			continue
		}
		fwd, err := resolve(roots[i])
		if err != nil {
			return err
		}
		c.h.SetRoot(i, fwd)
	}
	return nil
}

// finish flips the heap and assembles the common parts of the Result.
func (c *cycle) finish(workers int, start time.Time, liveObjects, liveWords int64, sc SyncCounts) Result {
	c.h.FinishCycle(object.Addr(c.free.Load()))
	return Result{
		Workers:     workers,
		LiveObjects: liveObjects,
		LiveWords:   liveWords,
		WastedWords: c.wasted.Load(),
		Elapsed:     time.Since(start),
		Sync:        sc,
	}
}

// firstErr returns the first non-nil error of a per-worker error slice.
func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// pool is a mutex-protected work pool with built-in idle-based termination
// detection, shared by the chunked and work-packet collectors. Get blocks
// (politely spinning) until work is available or every worker is idle.
type pool[T any] struct {
	mu      sync.Mutex
	items   []T
	idle    int
	workers int
	aborted *atomic.Bool // the owning cycle's abort flag
}

func newPool[T any](workers int, aborted *atomic.Bool) *pool[T] {
	return &pool[T]{workers: workers, aborted: aborted}
}

// Put adds an item. Never called by an idle worker.
func (p *pool[T]) Put(it T, sc *SyncCounts) {
	sc.MutexOps++
	p.mu.Lock()
	p.items = append(p.items, it)
	p.mu.Unlock()
}

// Get returns the next item, or done=true when the pool is empty and all
// workers are idle (global termination: only active workers create items).
func (p *pool[T]) Get(sc *SyncCounts) (it T, done bool) {
	sc.MutexOps++
	p.mu.Lock()
	registered := false
	for {
		if n := len(p.items); n > 0 {
			it = p.items[n-1]
			p.items = p.items[:n-1]
			if registered {
				p.idle--
			}
			p.mu.Unlock()
			return it, false
		}
		if !registered {
			p.idle++
			registered = true
		}
		if p.idle == p.workers || p.aborted.Load() {
			p.mu.Unlock()
			return it, true
		}
		p.mu.Unlock()
		runtime.Gosched()
		sc.MutexOps++
		p.mu.Lock()
	}
}
