package baseline

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"hwgc/internal/gcalgo"
	"hwgc/internal/heap"
	"hwgc/internal/object"
	"hwgc/internal/workload"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		c, err := ByName(n)
		if err != nil || c.Name() != n || c.Description() == "" {
			t.Fatalf("collector %q broken", n)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown collector accepted")
	}
}

// TestAllCollectorsAllBenchmarks is the main integration matrix: every
// software collector collects every benchmark with several worker counts and
// must preserve the logical graph.
func TestAllCollectorsAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is slow")
	}
	for _, name := range Names() {
		for _, bench := range workload.Names() {
			for _, workers := range []int{1, 3, 8} {
				name, bench, workers := name, bench, workers
				t.Run(name+"/"+bench, func(t *testing.T) {
					c, _ := ByName(name)
					spec, _ := workload.Get(bench)
					plan := spec.Plan(1, 21)
					h, err := plan.BuildHeap(2.4)
					if err != nil {
						t.Fatal(err)
					}
					before, err := gcalgo.Snapshot(h)
					if err != nil {
						t.Fatal(err)
					}
					res, err := c.Collect(h, workers)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if err := VerifyPreserved(before, h); err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					liveObj, liveWords := plan.LiveStats()
					if res.LiveObjects != int64(liveObj) || res.LiveWords != int64(liveWords) {
						t.Fatalf("accounting: got (%d,%d), want (%d,%d)",
							res.LiveObjects, res.LiveWords, liveObj, liveWords)
					}
					// Space accounting: live + waste = words consumed.
					used := int64(h.UsedWords())
					if res.LiveWords+res.WastedWords != used {
						t.Fatalf("live %d + waste %d != used %d", res.LiveWords, res.WastedWords, used)
					}
				})
			}
		}
	}
}

// TestCollectorEquivalenceQuick: random cyclic graphs through every
// collector at random worker counts.
func TestCollectorEquivalenceQuick(t *testing.T) {
	f := func(seed int64, workersRaw, which uint8) bool {
		names := Names()
		c, _ := ByName(names[int(which)%len(names)])
		workers := 1 + int(workersRaw)%8

		rng := rand.New(rand.NewSource(seed))
		plan := &workload.Plan{}
		n := 2 + rng.Intn(150)
		entry := plan.RandomGraph(rng, n, 4, 6)
		plan.AddRoot(entry)
		plan.AddRoot(rng.Intn(n))
		plan.FillData(rng)

		h, err := plan.BuildHeap(2.5)
		if err != nil {
			return false
		}
		before, err := gcalgo.Snapshot(h)
		if err != nil {
			return false
		}
		if _, err := c.Collect(h, workers); err != nil {
			t.Logf("%s collect: %v", c.Name(), err)
			return false
		}
		if err := VerifyPreserved(before, h); err != nil {
			t.Logf("%s (seed %d, %d workers): %v", c.Name(), seed, workers, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedObjects exercises the direct-bump path for objects larger
// than a LAB.
func TestOversizedObjects(t *testing.T) {
	for _, name := range []string{"workpackets", "stealing"} {
		c, _ := ByName(name)
		// Tiny LABs force almost everything through the oversized path.
		switch c.(type) {
		case *workPackets:
			c = &workPackets{PacketCap: 4, LABWords: 8}
		case *stealing:
			c = &stealing{LABWords: 8}
		}
		h := heap.New(4096)
		var prev object.Addr
		for i := 0; i < 20; i++ {
			a, err := h.Alloc(1, 30+i) // size 33+: far above LABWords 8
			if err != nil {
				t.Fatal(err)
			}
			if prev != object.NilPtr {
				h.SetPtr(a, 0, prev)
			}
			prev = a
		}
		h.AddRoot(prev)
		before, _ := gcalgo.Snapshot(h)
		if _, err := c.Collect(h, 4); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyPreserved(before, h); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestTospaceOverflowAborts(t *testing.T) {
	// A corrupted (oversized) live header must abort the collection with an
	// error rather than deadlock the workers.
	for _, name := range Names() {
		c, _ := ByName(name)
		h := heap.New(128)
		a, _ := h.Alloc(1, 1)
		b, _ := h.Alloc(0, 1)
		h.SetPtr(a, 0, b)
		h.AddRoot(a)
		h.Mem()[b] = object.Header{Pi: 0, Delta: object.MaxDelta}.Encode()
		if _, err := c.Collect(h, 4); err == nil {
			t.Errorf("%s: oversized object not rejected", name)
		}
	}
}

func TestWriteFillerSplitsLargeHoles(t *testing.T) {
	mem := make([]object.Word, 20000)
	// A hole larger than the max object size, and one that would leave a
	// one-word remainder at the split boundary.
	for _, words := range []int{2, 3, object.MaxDelta + 2, object.MaxDelta + 3, 2*(object.MaxDelta+2) + 1, 12345} {
		for i := range mem {
			mem[i] = 0xFFFFFFFFFFFFFFFF
		}
		writeFiller(mem, 4, words)
		// Walk the fillers and verify they tile the hole exactly.
		at := object.Addr(4)
		total := 0
		for total < words {
			hd := object.Decode(mem[at])
			if hd.Pi != 0 || hd.Mark || hd.Gray {
				t.Fatalf("words=%d: bad filler header %+v", words, hd)
			}
			sz := object.SizeWords(mem[at])
			at += object.Addr(sz)
			total += sz
		}
		if total != words {
			t.Fatalf("words=%d: fillers tile %d", words, total)
		}
	}
}

func TestWriteFillerPanicsOnOneWord(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-word filler did not panic")
		}
	}()
	writeFiller(make([]object.Word, 8), 0, 1)
}

// TestLABNeverLeavesOneWordHole drives random allocations through a LAB and
// checks that fromspace stays tileable (the rem != 1 discipline).
func TestLABNeverLeavesOneWordHole(t *testing.T) {
	f := func(seed int64, labRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New(40000)
		c := newCycle(h)
		labSize := 16 + int(labRaw)%64
		l := &lab{size: labSize}
		var sc SyncCounts
		var allocs []object.Addr
		for i := 0; i < 200; i++ {
			size := 2 + rng.Intn(labSize+4) // some oversized
			a, err := l.alloc(c, size, &sc)
			if err != nil {
				return false
			}
			writeFiller(c.mem, a, size) // stand-in object of exactly that size
			allocs = append(allocs, a)
		}
		l.close(c)
		// The whole allocated prefix of tospace must tile with objects.
		at := c.base
		end := object.Addr(c.free.Load())
		for at < end {
			sz := object.SizeWords(c.mem[at])
			if sz < object.HeaderWords {
				t.Logf("hole at %d", at)
				return false
			}
			at += object.Addr(sz)
		}
		return at == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolTermination(t *testing.T) {
	var aborted atomic.Bool
	p := newPool[int](2, &aborted)
	var sc SyncCounts
	p.Put(7, &sc)

	got := make(chan int, 2)
	done := make(chan bool, 2)
	for w := 0; w < 2; w++ {
		go func() {
			var local SyncCounts
			for {
				it, fin := p.Get(&local)
				if fin {
					done <- true
					return
				}
				got <- it
			}
		}()
	}
	if v := <-got; v != 7 {
		t.Fatalf("got %d", v)
	}
	<-done
	<-done
}

func TestPoolAbort(t *testing.T) {
	var aborted atomic.Bool
	p := newPool[int](2, &aborted) // 2 workers but only 1 will ever call
	var sc SyncCounts
	doneCh := make(chan bool, 1)
	go func() {
		_, fin := p.Get(&sc)
		doneCh <- fin
	}()
	aborted.Store(true)
	if !<-doneCh {
		t.Fatal("abort did not release the pool")
	}
}

func TestSyncCountsArithmetic(t *testing.T) {
	a := SyncCounts{AtomicLoads: 1, AtomicStores: 2, CAS: 3, CASRetries: 1, FetchAdds: 4, MutexOps: 5, SpinWaits: 6}
	var b SyncCounts
	b.add(a)
	b.add(a)
	if b.AtomicLoads != 2 || b.MutexOps != 10 || b.SpinWaits != 12 {
		t.Fatalf("add wrong: %+v", b)
	}
	if a.Total() != 1+2+3+4+5 {
		t.Fatalf("Total = %d", a.Total())
	}
}

// TestFineGrainedPaysMoreSync asserts the paper's core quantitative claim in
// software: object-granularity work distribution costs strictly more
// synchronization operations per object than the coarser schemes.
func TestFineGrainedPaysMoreSync(t *testing.T) {
	perObj := map[string]float64{}
	for _, name := range Names() {
		c, _ := ByName(name)
		spec, _ := workload.Get("javacc")
		h, err := spec.Plan(1, 13).BuildHeap(2.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Collect(h, 4)
		if err != nil {
			t.Fatal(err)
		}
		perObj[name] = float64(res.Sync.Total()) / float64(res.LiveObjects)
	}
	if perObj["finegrained"] <= perObj["chunked"] || perObj["finegrained"] <= perObj["workpackets"] {
		t.Errorf("fine-grained sync cost %f not above coarse schemes %v", perObj["finegrained"], perObj)
	}
}

// TestChunkedFragmentationBounded: waste is at most one chunk per worker
// (plus oversized spill), and zero for the fine-grained collector.
func TestFragmentationAccounting(t *testing.T) {
	spec, _ := workload.Get("db")
	h, _ := spec.Plan(1, 5).BuildHeap(2.4)
	c, _ := ByName("finegrained")
	res, err := c.Collect(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.WastedWords != 0 {
		t.Errorf("fine-grained wasted %d words; must be 0", res.WastedWords)
	}

	h2, _ := spec.Plan(1, 5).BuildHeap(2.4)
	ch := &chunked{ChunkWords: 32 * 1024}
	res2, err := ch.Collect(h2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res2.WastedWords >= int64(4*32*1024) {
		t.Errorf("chunked wasted %d words, more than one chunk per worker", res2.WastedWords)
	}
}
