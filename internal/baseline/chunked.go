package baseline

import (
	"sync"
	"time"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

func init() { register(&chunked{ChunkWords: defaultChunkWords}) }

// defaultChunkWords is the chunk size of the chunked collector. It must be
// at least as large as the largest possible object (header + MaxPi +
// MaxDelta); larger chunks mean less synchronization and worse work
// balancing and fragmentation — exactly the trade-off of Section III.
const defaultChunkWords = 16 * 1024

// chunked is Imai & Tick's chunk-based parallel copying collector: tospace
// is dynamically partitioned into fixed-size chunks; at any given time a
// worker scans a single chunk and copies surviving objects into a private
// allocation chunk. References to chunks awaiting scanning travel through a
// shared stack, replacing object-level granularity by chunk-level
// granularity. The two drawbacks the paper names are directly measurable
// here: fragmentation (Result.WastedWords) and the auxiliary dynamic data
// structure apart from the heap (the chunk stack).
type chunked struct {
	// ChunkWords is the chunk size in words.
	ChunkWords int
}

func (*chunked) Name() string { return "chunked" }

func (*chunked) Description() string {
	return "Imai/Tick chunk-based copying (shared stack of chunks)"
}

// chunkRef describes a tospace chunk awaiting scanning: the address range
// that contains objects.
type chunkRef struct {
	start, end object.Addr
}

func (g *chunked) Collect(h *heap.Heap, workers int) (Result, error) {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	c := newCycle(h)
	// Clamp the chunk size so that small heaps stay collectable: the waste
	// bound is one open chunk per worker, which must fit in the tospace
	// headroom. Objects larger than a chunk bypass it with a dedicated
	// allocation.
	chunkWords := g.ChunkWords
	if chunkWords < 16 {
		chunkWords = defaultChunkWords
	}
	if cap := int(c.limit-c.base) / (4 * workers); chunkWords > cap {
		chunkWords = cap
	}
	if chunkWords < 16 {
		chunkWords = 16
	}
	full := newPool[chunkRef](workers, &c.aborted)

	syncs := make([]SyncCounts, workers)
	errs := make([]error, workers)
	objs := make([]int64, workers)
	words := make([]int64, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &syncs[w]

			// The worker's private allocation chunk doubles as its implicit
			// scan source: objects it evacuates into the chunk are scanned
			// by the worker itself unless the chunk fills up and is handed
			// to the shared stack first.
			var alloc struct {
				start, cur, end object.Addr
				scanned         object.Addr // scan frontier within the chunk
			}

			// closeAllocChunk fills the chunk's tail and pushes its
			// unscanned portion (if any) to the shared stack.
			closeAllocChunk := func() {
				if alloc.end == 0 {
					return
				}
				if rem := int(alloc.end) - int(alloc.cur); rem > 0 {
					writeFiller(c.mem, alloc.cur, rem)
					c.wasted.Add(int64(rem))
				}
				if alloc.scanned < alloc.cur {
					full.Put(chunkRef{alloc.scanned, alloc.cur}, sc)
				}
				alloc = struct{ start, cur, end, scanned object.Addr }{}
			}

			allocObj := func(size int) (object.Addr, error) {
				if size > chunkWords || chunkWords-size == 1 {
					// Oversized for a chunk: dedicated allocation. The
					// resulting range is never handed to the shared stack,
					// so the evacuating worker must scan it itself; hand it
					// over as a one-object "chunk".
					a, ok := c.bump(size, sc)
					if !ok {
						return 0, errTospaceOverflow
					}
					full.Put(chunkRef{a, a + object.Addr(size)}, sc)
					return a, nil
				}
				// The chunk allocation discipline mirrors the LAB one: never
				// leave a one-word hole.
				if rem := int(alloc.end) - int(alloc.cur); size > rem || rem-size == 1 {
					closeAllocChunk()
					a, ok := c.bump(chunkWords, sc)
					if !ok {
						return 0, errTospaceOverflow
					}
					alloc.start, alloc.cur, alloc.end, alloc.scanned = a, a, a+object.Addr(chunkWords), a
				}
				a := alloc.cur
				alloc.cur += object.Addr(size)
				return a, nil
			}

			resolve := func(p object.Addr) (object.Addr, error) {
				fwd, evac, err := claimEvacuate(c, p, false, allocObj, sc)
				if evac {
					objs[w]++
				}
				return fwd, err
			}

			fail := func(err error) {
				c.aborted.Store(true)
				errs[w] = err
			}

			if err := processRoots(c, w, workers, resolve); err != nil {
				fail(err)
				return
			}

			// scanRange scans the objects in [from, to) of a chunk the
			// worker owns exclusively.
			scanRange := func(from, to object.Addr) error {
				a := from
				for a < to {
					n, err := scanObject(c, a, resolve)
					if err != nil {
						return err
					}
					words[w] += int64(n)
					a += object.Addr(n)
				}
				return nil
			}

			for {
				// Prefer scanning our own allocation chunk: it needs no
				// synchronization at all (the Cheney trick at chunk scope).
				if alloc.scanned < alloc.cur {
					from, to := alloc.scanned, alloc.cur
					alloc.scanned = to
					if err := scanRange(from, to); err != nil {
						fail(err)
						return
					}
					continue
				}
				// Otherwise take a full chunk from the shared stack. Hand
				// over our (fully scanned) allocation chunk state first? Not
				// needed — it stays usable for future evacuations.
				ref, done := full.Get(sc)
				if done {
					closeAllocChunk()
					if c.aborted.Load() {
						return
					}
					// Re-check: closing may have pushed nothing (fully
					// scanned) and all others are idle too — terminate.
					return
				}
				if err := scanRange(ref.start, ref.end); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return Result{}, err
	}

	var total SyncCounts
	var liveObjects, liveWords int64
	for w := 0; w < workers; w++ {
		total.add(syncs[w])
		liveObjects += objs[w]
		liveWords += words[w]
	}
	return c.finish(workers, start, liveObjects, liveWords, total), nil
}
