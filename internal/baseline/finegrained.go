package baseline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

func init() { register(&fineGrained{}) }

// fineGrained is the paper's own algorithm — object-granularity work
// distribution over a single shared work list (the tospace region between
// scan and free) — implemented with software synchronization on stock
// shared memory. It is the approach Section I calls "prohibitively
// expensive" without hardware support: every object costs a CAS on the scan
// pointer, a fetch-add on the free pointer, an atomic claim on the header,
// and two publishing stores, and consumers may additionally spin on frames
// whose headers are not yet visible.
type fineGrained struct{}

func (*fineGrained) Name() string { return "finegrained" }

func (*fineGrained) Description() string {
	return "shared scan/free, per-object CAS (the paper's algorithm in software)"
}

func (*fineGrained) Collect(h *heap.Heap, workers int) (Result, error) {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	c := newCycle(h)

	var scan atomic.Uint64
	scan.Store(uint64(c.base))
	var active atomic.Int64
	active.Store(int64(workers))

	syncs := make([]SyncCounts, workers)
	errs := make([]error, workers)
	objs := make([]int64, workers)
	words := make([]int64, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &syncs[w]

			resolve := func(p object.Addr) (object.Addr, error) {
				fwd, evac, err := claimEvacuate(c, p, true, func(size int) (object.Addr, error) {
					a, ok := c.bump(size, sc)
					if !ok {
						return 0, errTospaceOverflow
					}
					return a, nil
				}, sc)
				if evac {
					objs[w]++
				}
				return fwd, err
			}

			if err := processRoots(c, w, workers, resolve); err != nil {
				c.aborted.Store(true)
				errs[w] = err
				return
			}

			idle := false
			for {
				if c.aborted.Load() {
					return
				}
				sc.AtomicLoads += 2
				s := object.Addr(scan.Load())
				f := object.Addr(c.free.Load())
				if s == f {
					if !idle {
						idle = true
						sc.FetchAdds++
						active.Add(-1)
					}
					sc.AtomicLoads++
					if active.Load() == 0 {
						// No worker is processing an object, so free cannot
						// advance: termination.
						return
					}
					runtime.Gosched()
					continue
				}
				if idle {
					// Work appeared: re-activate before touching it.
					idle = false
					sc.FetchAdds++
					active.Add(1)
					continue
				}
				// The copy's header may not be published yet (free is
				// advanced by the evacuating worker's fetch-add before the
				// header store); spin until it is.
				sc.AtomicLoads++
				hdr := atomic.LoadUint64(&c.mem[s])
				if hdr == 0 {
					sc.SpinWaits++
					runtime.Gosched()
					continue
				}
				size := object.SizeWords(hdr)
				sc.CAS++
				if !scan.CompareAndSwap(uint64(s), uint64(s)+uint64(size)) {
					sc.CASRetries++
					continue
				}
				// We own the object at s.
				n, err := scanObject(c, s, resolve)
				if err != nil {
					c.aborted.Store(true)
					errs[w] = err
					return
				}
				// Blacken: clear the gray publication bit. A worker that
				// read the scan register before our CAS may still issue a
				// racing atomic load of this header (and discard it after
				// its own CAS fails), so the store must be atomic too.
				sc.AtomicStores++
				atomic.StoreUint64(&c.mem[s], object.BlackHeader(hdr))
				words[w] += int64(n)
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return Result{}, err
	}

	var total SyncCounts
	var liveObjects, liveWords int64
	for w := 0; w < workers; w++ {
		total.add(syncs[w])
		liveObjects += objs[w]
		liveWords += words[w]
	}
	return c.finish(workers, start, liveObjects, liveWords, total), nil
}
