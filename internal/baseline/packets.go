package baseline

import (
	"sync"
	"time"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

func init() { register(&workPackets{PacketCap: defaultPacketCap, LABWords: defaultLABWords}) }

const (
	defaultPacketCap = 512
	defaultLABWords  = 2048
)

// workPackets is Ossia et al.'s work-packet collector: the collection work
// is divided into packets, each containing references to a set of gray
// objects. A worker repeatedly removes a single packet from a shared pool,
// locally scans the objects referenced by it, and inserts packets with new
// gray references back into the pool — replacing object-level granularity by
// packet-level granularity. Allocation goes through per-worker local
// allocation buffers so the shared free pointer is touched once per LAB.
type workPackets struct {
	// PacketCap is the number of gray references per packet.
	PacketCap int
	// LABWords is the local allocation buffer size in words.
	LABWords int
}

func (*workPackets) Name() string { return "workpackets" }

func (*workPackets) Description() string {
	return "Ossia-style work packets (shared packet pool, per-worker LABs)"
}

func (g *workPackets) Collect(h *heap.Heap, workers int) (Result, error) {
	if workers < 1 {
		workers = 1
	}
	packetCap := g.PacketCap
	if packetCap < 1 {
		packetCap = defaultPacketCap
	}
	start := time.Now()
	c := newCycle(h)
	// Clamp the LAB size so that small heaps stay collectable: the waste
	// bound of one open LAB per worker must fit in the tospace headroom.
	// Objects larger than a LAB take a dedicated allocation.
	labWords := g.LABWords
	if labWords < 16 {
		labWords = defaultLABWords
	}
	if cap := int(c.limit-c.base) / (4 * workers); labWords > cap {
		labWords = cap
	}
	if labWords < 16 {
		labWords = 16
	}
	pool := newPool[[]object.Addr](workers, &c.aborted)

	syncs := make([]SyncCounts, workers)
	errs := make([]error, workers)
	objs := make([]int64, workers)
	words := make([]int64, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &syncs[w]
			l := &lab{size: labWords}
			defer l.close(c)

			// out accumulates newly gray references; full packets go to the
			// shared pool.
			out := make([]object.Addr, 0, packetCap)
			flush := func() {
				if len(out) > 0 {
					pool.Put(out, sc)
					out = make([]object.Addr, 0, packetCap)
				}
			}

			resolve := func(p object.Addr) (object.Addr, error) {
				fwd, evac, err := claimEvacuate(c, p, false, func(size int) (object.Addr, error) {
					return l.alloc(c, size, sc)
				}, sc)
				if err != nil {
					return 0, err
				}
				if evac {
					objs[w]++
					out = append(out, fwd)
					if len(out) == packetCap {
						flush()
					}
				}
				return fwd, nil
			}

			fail := func(err error) {
				c.aborted.Store(true)
				errs[w] = err
			}

			if err := processRoots(c, w, workers, resolve); err != nil {
				fail(err)
				return
			}

			// in holds the packet currently being processed.
			var in []object.Addr
			for {
				if len(in) == 0 {
					// Before blocking on the shared pool, drain our own
					// partial out-packet: its work would otherwise be
					// invisible to the termination detector.
					if len(out) > 0 {
						in, out = out, in[:0]
					} else {
						var done bool
						in, done = pool.Get(sc)
						if done {
							return
						}
					}
				}
				g := in[len(in)-1]
				in = in[:len(in)-1]
				n, err := scanObject(c, g, resolve)
				if err != nil {
					fail(err)
					return
				}
				words[w] += int64(n)
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return Result{}, err
	}

	var total SyncCounts
	var liveObjects, liveWords int64
	for w := 0; w < workers; w++ {
		total.add(syncs[w])
		liveObjects += objs[w]
		liveWords += words[w]
	}
	return c.finish(workers, start, liveObjects, liveWords, total), nil
}
