package baseline

import (
	"testing"

	"hwgc/internal/gcalgo"
	"hwgc/internal/workload"
)

func TestBaselinesSmoke(t *testing.T) {
	for _, name := range Names() {
		for _, workers := range []int{1, 4} {
			c, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec, _ := workload.Get("db")
			plan := spec.Plan(1, 7)
			h, err := plan.BuildHeap(2.2)
			if err != nil {
				t.Fatal(err)
			}
			before, err := gcalgo.Snapshot(h)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Collect(h, workers)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, workers, err)
			}
			if err := VerifyPreserved(before, h); err != nil {
				t.Fatalf("%s/%d: %v", name, workers, err)
			}
			liveObj, _ := plan.LiveStats()
			if res.LiveObjects != int64(liveObj) {
				t.Errorf("%s/%d: live=%d want %d", name, workers, res.LiveObjects, liveObj)
			}
			t.Logf("%s/%d: %v, sync/obj=%.1f waste=%d", name, workers, res.Elapsed,
				float64(res.Sync.Total())/float64(res.LiveObjects), res.WastedWords)
		}
	}
}
