package baseline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

func init() { register(&stealing{LABWords: defaultLABWords}) }

// stealing is Flood et al.'s work-stealing collector: every worker owns a
// deque of gray references; it pushes and pops at the bottom, and idle
// workers steal from the top of other workers' deques. Unlike Endo et al.'s
// scheme, other workers may access all objects in all pools, not only a
// dedicated exposed subset. Allocation goes through per-worker local
// allocation buffers.
type stealing struct {
	// LABWords is the local allocation buffer size in words.
	LABWords int
}

func (*stealing) Name() string { return "stealing" }

func (*stealing) Description() string {
	return "Flood-style work stealing (per-worker deques, per-worker LABs)"
}

// deque is a mutex-protected double-ended work queue. The owner pushes and
// pops at the bottom (LIFO, cache-friendly); thieves take from the top
// (FIFO, steals old, presumably large subgraphs). A mutex keeps the
// implementation obviously correct; the acquisition count is what the
// benchmark reports.
type deque struct {
	mu    sync.Mutex
	items []object.Addr
}

func (d *deque) push(a object.Addr, sc *SyncCounts) {
	sc.MutexOps++
	d.mu.Lock()
	d.items = append(d.items, a)
	d.mu.Unlock()
}

func (d *deque) popBottom(sc *SyncCounts) (object.Addr, bool) {
	sc.MutexOps++
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.items)
	if n == 0 {
		return 0, false
	}
	a := d.items[n-1]
	d.items = d.items[:n-1]
	return a, true
}

func (d *deque) stealTop(sc *SyncCounts) (object.Addr, bool) {
	sc.MutexOps++
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.items) == 0 {
		return 0, false
	}
	a := d.items[0]
	d.items = d.items[1:]
	return a, true
}

func (g *stealing) Collect(h *heap.Heap, workers int) (Result, error) {
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	c := newCycle(h)
	// Clamp the LAB size so that small heaps stay collectable: the waste
	// bound of one open LAB per worker must fit in the tospace headroom.
	// Objects larger than a LAB take a dedicated allocation.
	labWords := g.LABWords
	if labWords < 16 {
		labWords = defaultLABWords
	}
	if cap := int(c.limit-c.base) / (4 * workers); labWords > cap {
		labWords = cap
	}
	if labWords < 16 {
		labWords = 16
	}
	deques := make([]deque, workers)
	var idle atomic.Int64

	syncs := make([]SyncCounts, workers)
	errs := make([]error, workers)
	objs := make([]int64, workers)
	words := make([]int64, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &syncs[w]
			l := &lab{size: labWords}
			defer l.close(c)
			own := &deques[w]

			resolve := func(p object.Addr) (object.Addr, error) {
				fwd, evac, err := claimEvacuate(c, p, false, func(size int) (object.Addr, error) {
					return l.alloc(c, size, sc)
				}, sc)
				if err != nil {
					return 0, err
				}
				if evac {
					objs[w]++
					own.push(fwd, sc)
				}
				return fwd, nil
			}

			fail := func(err error) {
				c.aborted.Store(true)
				errs[w] = err
			}

			if err := processRoots(c, w, workers, resolve); err != nil {
				fail(err)
				return
			}

			scan := func(a object.Addr) bool {
				n, err := scanObject(c, a, resolve)
				if err != nil {
					fail(err)
					return false
				}
				words[w] += int64(n)
				return true
			}

			registered := false
			for {
				if c.aborted.Load() {
					return
				}
				// Local work first.
				if a, ok := own.popBottom(sc); ok {
					if registered {
						registered = false
						idle.Add(-1)
					}
					if !scan(a) {
						return
					}
					continue
				}
				// Steal sweep, starting after ourselves for fairness.
				stolen := false
				for k := 1; k < workers; k++ {
					v := &deques[(w+k)%workers]
					if a, ok := v.stealTop(sc); ok {
						if registered {
							registered = false
							idle.Add(-1)
						}
						stolen = true
						if !scan(a) {
							return
						}
						break
					}
				}
				if stolen {
					continue
				}
				// Nothing anywhere: register idle and re-check. A worker
				// only pushes to its own deque while active, and it only
				// registers idle with an empty own deque, so when every
				// worker is idle all deques are empty for good.
				if !registered {
					registered = true
					idle.Add(1)
				}
				if idle.Load() == int64(workers) {
					return
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return Result{}, err
	}

	var total SyncCounts
	var liveObjects, liveWords int64
	for w := 0; w < workers; w++ {
		total.add(syncs[w])
		liveObjects += objs[w]
		liveWords += words[w]
	}
	return c.finish(workers, start, liveObjects, liveWords, total), nil
}
