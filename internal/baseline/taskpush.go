package baseline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

func init() {
	register(&taskPush{QueueCap: defaultTaskQueueCap, LABWords: defaultLABWords, LocalKeep: 64})
}

const defaultTaskQueueCap = 256

// taskPush is Wu & Li's task-pushing collector (IPDPS 2007), the last of the
// work-distribution schemes the paper surveys: instead of stealing, workers
// *push* surplus gray tasks to their peers through an object queue per
// ordered worker pair (A, B). Because each queue has a single writer and a
// single reader, it needs no heavy-weight synchronization primitives — only
// release/acquire index updates — which is the scheme's selling point.
//
// Termination uses an idle counter plus a designated detector (worker 0)
// that declares completion only after observing, in order: every worker
// idle, every queue empty, and every worker still idle — at which point no
// push can ever happen again.
type taskPush struct {
	// QueueCap is the capacity of each single-writer/single-reader queue.
	QueueCap int
	// LABWords is the local allocation buffer size in words.
	LABWords int
	// LocalKeep is how many gray tasks a worker keeps for itself before it
	// starts pushing surplus to its peers.
	LocalKeep int
}

func (*taskPush) Name() string { return "taskpush" }

func (*taskPush) Description() string {
	return "Wu/Li task-pushing (single-writer/single-reader queues per worker pair)"
}

// spscQueue is a bounded single-producer/single-consumer ring. The producer
// owns tail, the consumer owns head; the slot contents are ordered by the
// atomic index updates.
type spscQueue struct {
	items []object.Addr
	head  atomic.Int64 // consumer side
	tail  atomic.Int64 // producer side
}

func (q *spscQueue) push(a object.Addr, sc *SyncCounts) bool {
	sc.AtomicLoads++
	t := q.tail.Load()
	sc.AtomicLoads++
	if t-q.head.Load() >= int64(len(q.items)) {
		return false // full
	}
	q.items[t%int64(len(q.items))] = a
	sc.AtomicStores++
	q.tail.Store(t + 1)
	return true
}

func (q *spscQueue) pop(sc *SyncCounts) (object.Addr, bool) {
	sc.AtomicLoads += 2
	h := q.head.Load()
	if h >= q.tail.Load() {
		return 0, false
	}
	a := q.items[h%int64(len(q.items))]
	sc.AtomicStores++
	q.head.Store(h + 1)
	return a, true
}

func (q *spscQueue) empty() bool { return q.head.Load() >= q.tail.Load() }

func (g *taskPush) Collect(h *heap.Heap, workers int) (Result, error) {
	if workers < 1 {
		workers = 1
	}
	queueCap := g.QueueCap
	if queueCap < 4 {
		queueCap = defaultTaskQueueCap
	}
	localKeep := g.LocalKeep
	if localKeep < 1 {
		localKeep = 64
	}

	start := time.Now()
	c := newCycle(h)
	labWords := g.LABWords
	if labWords < 16 {
		labWords = defaultLABWords
	}
	if cap := int(c.limit-c.base) / (4 * workers); labWords > cap {
		labWords = cap
	}
	if labWords < 16 {
		labWords = 16
	}

	// queues[i][j]: worker i pushes, worker j pops.
	queues := make([][]*spscQueue, workers)
	for i := range queues {
		queues[i] = make([]*spscQueue, workers)
		for j := range queues[i] {
			if i != j {
				queues[i][j] = &spscQueue{items: make([]object.Addr, queueCap)}
			}
		}
	}

	var idle atomic.Int64
	var done atomic.Bool

	syncs := make([]SyncCounts, workers)
	errs := make([]error, workers)
	objs := make([]int64, workers)
	words := make([]int64, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &syncs[w]
			l := &lab{size: labWords}
			defer l.close(c)

			var local []object.Addr // private mark stack, no synchronization
			rr := (w + 1) % workers // round-robin push target

			distribute := func(fwd object.Addr) {
				if workers > 1 && len(local) >= localKeep {
					// Surplus: push to a peer's incoming queue.
					for k := 0; k < workers-1; k++ {
						target := rr
						rr = (rr + 1) % workers
						if rr == w {
							rr = (rr + 1) % workers
						}
						if queues[w][target].push(fwd, sc) {
							return
						}
					}
					// All queues full: keep it ourselves.
				}
				local = append(local, fwd)
			}

			resolve := func(p object.Addr) (object.Addr, error) {
				fwd, evac, err := claimEvacuate(c, p, false, func(size int) (object.Addr, error) {
					return l.alloc(c, size, sc)
				}, sc)
				if err != nil {
					return 0, err
				}
				if evac {
					objs[w]++
					distribute(fwd)
				}
				return fwd, nil
			}

			fail := func(err error) {
				c.aborted.Store(true)
				errs[w] = err
			}

			if err := processRoots(c, w, workers, resolve); err != nil {
				fail(err)
				return
			}

			pollIncoming := func() (object.Addr, bool) {
				for i := 0; i < workers; i++ {
					if i == w {
						continue
					}
					if a, ok := queues[i][w].pop(sc); ok {
						return a, true
					}
				}
				return 0, false
			}

			allQueuesEmpty := func() bool {
				for i := 0; i < workers; i++ {
					for j := 0; j < workers; j++ {
						if i != j && !queues[i][j].empty() {
							return false
						}
					}
				}
				return true
			}

			registered := false
			for {
				if c.aborted.Load() || done.Load() {
					return
				}
				var task object.Addr
				var ok bool
				if n := len(local); n > 0 {
					task, local = local[n-1], local[:n-1]
					ok = true
				} else {
					task, ok = pollIncoming()
				}
				if ok {
					if registered {
						registered = false
						idle.Add(-1)
					}
					n, err := scanObject(c, task, resolve)
					if err != nil {
						fail(err)
						return
					}
					words[w] += int64(n)
					continue
				}
				if !registered {
					registered = true
					idle.Add(1)
				}
				// Worker 0 is the termination detector: all idle → all
				// queues empty → still all idle ⇒ no push can ever occur
				// again (pushes only happen while active, activation only by
				// taking a task, and there are none).
				if w == 0 && idle.Load() == int64(workers) &&
					allQueuesEmpty() && idle.Load() == int64(workers) {
					done.Store(true)
					return
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
	if err := firstErr(errs); err != nil {
		return Result{}, err
	}

	var total SyncCounts
	var liveObjects, liveWords int64
	for w := 0; w < workers; w++ {
		total.add(syncs[w])
		liveObjects += objs[w]
		liveWords += words[w]
	}
	return c.finish(workers, start, liveObjects, liveWords, total), nil
}
