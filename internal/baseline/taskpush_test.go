package baseline

import (
	"testing"

	"hwgc/internal/gcalgo"
	"hwgc/internal/object"
	"hwgc/internal/workload"
)

func TestSPSCQueueBasics(t *testing.T) {
	q := &spscQueue{items: make([]object.Addr, 4)}
	var sc SyncCounts
	if _, ok := q.pop(&sc); ok {
		t.Fatal("pop from empty queue")
	}
	for i := 1; i <= 4; i++ {
		if !q.push(object.Addr(i), &sc) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if q.push(5, &sc) {
		t.Fatal("push above capacity succeeded")
	}
	for i := 1; i <= 4; i++ {
		a, ok := q.pop(&sc)
		if !ok || a != object.Addr(i) {
			t.Fatalf("pop %d: got %d ok=%v (FIFO order broken)", i, a, ok)
		}
	}
	if !q.empty() {
		t.Fatal("queue not empty after draining")
	}
	// Wrap-around.
	for round := 0; round < 3; round++ {
		for i := 0; i < 3; i++ {
			if !q.push(object.Addr(100+round*3+i), &sc) {
				t.Fatal("wrap push failed")
			}
		}
		for i := 0; i < 3; i++ {
			a, ok := q.pop(&sc)
			if !ok || a != object.Addr(100+round*3+i) {
				t.Fatalf("wrap pop wrong: %d", a)
			}
		}
	}
	if sc.AtomicStores == 0 || sc.AtomicLoads == 0 {
		t.Fatal("queue operations not counted")
	}
}

// TestTaskPushDistributes checks that with more than one worker and a small
// keep-threshold, gray tasks actually flow through the pair queues.
func TestTaskPushDistributes(t *testing.T) {
	c := &taskPush{QueueCap: 64, LABWords: 1024, LocalKeep: 1}
	spec, _ := workload.Get("javacc")
	plan := spec.Plan(1, 3)
	h, err := plan.BuildHeap(2.2)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := gcalgo.Snapshot(h)
	res, err := c.Collect(h, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyPreserved(before, h); err != nil {
		t.Fatal(err)
	}
	// SPSC traffic shows up as atomic loads/stores beyond the claim
	// protocol's (≥2 per push/pop pair).
	if res.Sync.AtomicStores < res.LiveObjects {
		t.Fatalf("suspiciously little queue traffic: %+v for %d objects", res.Sync, res.LiveObjects)
	}
}

func TestTaskPushSingleWorker(t *testing.T) {
	c := &taskPush{}
	spec, _ := workload.Get("jlisp")
	h, _ := spec.Plan(1, 4).BuildHeap(2.2)
	before, _ := gcalgo.Snapshot(h)
	if _, err := c.Collect(h, 1); err != nil {
		t.Fatal(err)
	}
	if err := VerifyPreserved(before, h); err != nil {
		t.Fatal(err)
	}
}
