package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strings"
)

// The admin API is the fleet's elastic-membership control plane:
//
//	POST   /v1/admin/backends      {"URL": "http://host:port"}  join a backend
//	DELETE /v1/admin/backends/{id}                              remove a backend
//	GET    /v1/admin/topology                                   current ring view
//	POST   /v1/admin/rebalance                                  synchronous migration pass
//
// Joins are health-gated (the candidate must answer a probe before taking
// traffic); joins and removals both kick an asynchronous migration pass
// that ships displaced jobs to their new owners.

// topologyBackend is one row of the admin topology report.
type topologyBackend struct {
	ID      string
	URL     string
	Breaker string
	Up      bool
	Removed bool    `json:",omitempty"` // migration source awaiting drain
	Share   float64 // fraction of the key space owned (0 once removed)
}

// topologyBody is the GET /v1/admin/topology response.
type topologyBody struct {
	Backends     []topologyBackend
	Replicas     int
	Vnodes       int
	KeysRemapped float64 // sampled remap fraction of the last membership change
	RegistryJobs int     // submissions remembered for dead-owner rescue
}

func (f *Fleet) topology() topologyBody {
	f.mu.RLock()
	shares := f.ring.Shares()
	body := topologyBody{
		Replicas:     f.opts.Replicas,
		Vnodes:       f.opts.Vnodes,
		KeysRemapped: f.emetrics.KeysRemappedFraction(),
	}
	for _, id := range f.ring.Members() {
		b := f.backends[id]
		body.Backends = append(body.Backends, topologyBackend{
			ID:      b.id,
			URL:     b.baseURL,
			Breaker: b.breaker.State().String(),
			Up:      b.healthy.Load(),
			Share:   shares[id],
		})
	}
	removedIDs := make([]string, 0, len(f.removed))
	for id := range f.removed {
		removedIDs = append(removedIDs, id)
	}
	sort.Strings(removedIDs)
	for _, id := range removedIDs {
		b := f.removed[id]
		body.Backends = append(body.Backends, topologyBackend{
			ID:      b.id,
			URL:     b.baseURL,
			Breaker: b.breaker.State().String(),
			Up:      b.healthy.Load(),
			Removed: true,
		})
	}
	f.mu.RUnlock()
	body.RegistryJobs = f.registry.Len()
	return body
}

func (f *Fleet) writeTopology(w http.ResponseWriter, code int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(f.topology())
}

// handleAdminTopology serves GET /v1/admin/topology.
func (f *Fleet) handleAdminTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "%s requires GET", r.URL.Path)
		return
	}
	f.writeTopology(w, http.StatusOK)
}

// addBackendBody is the POST /v1/admin/backends request.
type addBackendBody struct {
	URL string
}

// handleAdminBackends serves POST /v1/admin/backends: health-gated join.
func (f *Fleet) handleAdminBackends(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var body addBackendBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	if body.URL == "" {
		writeError(w, http.StatusBadRequest, "URL must be set")
		return
	}
	_, _, err := f.AddBackend(body.URL)
	switch {
	case err == nil:
		f.goRebalance()
		f.writeTopology(w, http.StatusCreated)
	case errors.Is(err, ErrDuplicate):
		writeError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, ErrAdmission):
		writeError(w, http.StatusBadGateway, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// handleAdminBackendByID serves DELETE /v1/admin/backends/{id}.
func (f *Fleet) handleAdminBackendByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/admin/backends/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
		return
	}
	if r.Method != http.MethodDelete {
		w.Header().Set("Allow", http.MethodDelete)
		writeError(w, http.StatusMethodNotAllowed, "%s requires DELETE", r.URL.Path)
		return
	}
	_, err := f.RemoveBackend(id)
	switch {
	case err == nil:
		f.goRebalance()
		f.writeTopology(w, http.StatusOK)
	case errors.Is(err, ErrUnknownBackend):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrLastBackend):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleAdminRebalance serves POST /v1/admin/rebalance: a synchronous
// migration pass whose report is the response body. The async passes that
// topology changes kick make this mostly an operator/testing convenience —
// a deterministic "rebalance now and tell me what moved".
func (f *Fleet) handleAdminRebalance(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	rep := f.Rebalance(r.Context())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}
