package cluster

import (
	"fmt"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Backend is one gcserved instance behind the fleet: its address, its
// circuit breaker, its bounded batch-concurrency semaphore and its
// per-backend counters.
type Backend struct {
	id      string // short stable name, used in ring + metrics labels
	baseURL string // scheme://host:port, no trailing slash
	breaker *Breaker
	sem     chan struct{} // bounds in-flight batch items per backend

	requests  atomic.Int64 // HTTP exchanges attempted (incl. hedges/retries)
	errors    atomic.Int64 // transport errors + 5xx responses
	routed    atomic.Int64 // times this backend was the key's primary owner
	hedges    atomic.Int64 // hedge requests launched against this backend
	healthy   atomic.Bool  // last health-probe outcome
	healthErr atomic.Value // string: last health-probe error, for /healthz

	// removed is set when the backend leaves the ring: in-flight exchanges
	// may still settle against it, but it takes no probes and no breaker or
	// metric attribution, and serves only as a migration source.
	removed atomic.Bool
	// wasOpen tracks the breaker's last observed open state so probeAll
	// fires the rebalance trigger once per open transition, not per probe.
	wasOpen atomic.Bool
}

// Removed reports whether the backend has been removed from the ring.
func (b *Backend) Removed() bool { return b.removed.Load() }

// ID returns the backend's stable name.
func (b *Backend) ID() string { return b.id }

// BaseURL returns the backend's base URL.
func (b *Backend) BaseURL() string { return b.baseURL }

// Breaker returns the backend's circuit breaker.
func (b *Backend) Breaker() *Breaker { return b.breaker }

// newBackend validates and normalizes a backend URL. The backend id is
// "b<i>:<host>" — stable for a fixed flag order, unique, and short enough
// for metric labels.
func newBackend(i int, raw string, threshold int, cooldown time.Duration, inflight int) (*Backend, error) {
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil {
		return nil, fmt.Errorf("cluster: backend %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("cluster: backend %q: need an http(s) URL", raw)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("cluster: backend %q: missing host", raw)
	}
	b := &Backend{
		id:      fmt.Sprintf("b%d:%s", i, u.Host),
		baseURL: u.Scheme + "://" + u.Host,
		breaker: NewBreaker(threshold, cooldown),
		sem:     make(chan struct{}, inflight),
	}
	b.healthy.Store(true) // optimistic until the first probe says otherwise
	b.healthErr.Store("")
	return b, nil
}
