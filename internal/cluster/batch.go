package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"hwgc"
)

// maxBatchBodyBytes matches the backend /v1/batch body bound.
const maxBatchBodyBytes = 16 << 20

// handleBatch serves POST /v1/batch on the fleet: scatter-gather. Every
// item is canonicalized locally, routed to its ring owner (so the item
// still hits the cache that already holds its result), executed via the
// per-item single-request endpoint under the full retry/failover policy,
// and gathered into the same BatchResponse encoding one gcserved produces
// — per-item partial failures, never a hung batch.
func (f *Fleet) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	req, err := hwgc.DecodeBatchRequest(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid batch: %v", err)
		return
	}
	resp := f.runBatch(r.Context(), req)
	code := http.StatusOK
	if resp.Failed > 0 {
		code = http.StatusMultiStatus
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = resp.Encode(w)
}

// runBatch scatters the items across the fleet and gathers per-item
// results in request order. Concurrency is bounded per backend (each
// item's route acquires its primary owner's semaphore before sending), so
// a large batch cannot monopolize any single backend's admission queue.
func (f *Fleet) runBatch(ctx context.Context, req *hwgc.BatchRequest) *hwgc.BatchResponse {
	resp := &hwgc.BatchResponse{Items: make([]hwgc.BatchItemResult, len(req.Items))}
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Items[i] = f.runBatchItem(ctx, i, &req.Items[i])
		}(i)
	}
	wg.Wait()
	resp.Tally()
	f.metrics.batchRequests.Add(1)
	f.metrics.batchItems.Add(int64(len(resp.Items)))
	f.metrics.batchFailed.Add(int64(resp.Failed))
	return resp
}

func (f *Fleet) runBatchItem(ctx context.Context, i int, it *hwgc.BatchItem) hwgc.BatchItemResult {
	path, key, body, err := it.Prep()
	if err != nil {
		return hwgc.BatchItemResult{Index: i, Status: http.StatusBadRequest, Error: err.Error()}
	}

	// Bounded per-backend concurrency: the semaphore of the item's primary
	// owner gates the item, whichever replica ends up serving it.
	owner := f.primaryFor(key)
	if owner == nil {
		return hwgc.BatchItemResult{Index: i, Key: key, Status: http.StatusServiceUnavailable,
			Error: "no backend for key"}
	}
	select {
	case owner.sem <- struct{}{}:
		defer func() { <-owner.sem }()
	case <-ctx.Done():
		return hwgc.BatchItemResult{Index: i, Key: key, Status: http.StatusGatewayTimeout,
			Error: fmt.Sprintf("batch deadline exceeded while waiting for backend slot: %v", ctx.Err())}
	}

	ictx, cancel := context.WithTimeout(ctx, f.opts.Timeout)
	defer cancel()
	res, err := f.do(ictx, http.MethodPost, path, key, body)
	switch {
	case err == nil && res.status == http.StatusOK:
		return hwgc.BatchItemResult{Index: i, Key: key, Status: http.StatusOK, Body: res.body}
	case err == nil || res.status != 0:
		// An authoritative non-200 (400, or a surfaced 429/5xx after
		// exhausting retries): report the backend's own status.
		return hwgc.BatchItemResult{Index: i, Key: key, Status: res.status,
			Error: itemError(res)}
	case errors.Is(err, ErrNoBackends):
		return hwgc.BatchItemResult{Index: i, Key: key, Status: http.StatusServiceUnavailable,
			Error: err.Error()}
	default:
		status := http.StatusBadGateway
		if ictx.Err() != nil {
			status = http.StatusGatewayTimeout
		}
		return hwgc.BatchItemResult{Index: i, Key: key, Status: status, Error: err.Error()}
	}
}

// itemError condenses a failed exchange into the per-item Error string.
func itemError(res sendResult) string {
	if res.err != nil {
		return res.err.Error()
	}
	return fmt.Sprintf("backend replied %d", res.status)
}

// primaryFor returns the live backend that owns key on the ring.
func (f *Fleet) primaryFor(key string) *Backend {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.backends[f.ring.Owner(key)]
}
