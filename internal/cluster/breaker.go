package cluster

import (
	"sync"
	"time"
)

// BreakerState is the three-state circuit-breaker state machine guarding
// one backend.
type BreakerState int32

const (
	// BreakerClosed: the backend is healthy; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend failed repeatedly; requests are refused
	// locally until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request is
	// admitted to decide between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a three-state circuit breaker: `threshold` consecutive
// failures open it, after `cooldown` it admits a single half-open probe,
// and the probe's outcome either closes it (automatic re-admission) or
// re-opens it for another cooldown. In the paper's terms it turns a
// persistently stalled resource into an explicit, counted rejection
// instead of an invisible convoy of waiting requests.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive failures while closed
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	openCount int64

	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
}

// NewBreaker creates a closed breaker that opens after `threshold`
// consecutive failures and cools down for `cooldown` before probing.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may be sent. Every true return must be
// matched by exactly one Record or Cancel call: in the half-open state the
// single probe slot is reserved by Allow and released by Record/Cancel.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // BreakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of a request admitted by Allow.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.failures = 0
		} else {
			b.open()
		}
	case BreakerClosed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	default: // BreakerOpen: a straggler from before the trip; nothing to do.
	}
}

// Cancel releases an Allow that was never sent (e.g. a hedge that lost the
// race before launching) without recording an outcome.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// open transitions to BreakerOpen. Caller holds b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.openCount++
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openCount
}
