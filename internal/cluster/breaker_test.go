package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after 2 failures, want closed (threshold 3)", b.State())
	}
	b.Allow()
	b.Record(false) // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after 3 failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(true) // streak broken
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state %s, want closed: failures are counted consecutively", b.State())
	}
}

func TestBreakerHalfOpenProbeAndReadmission(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s, want open", b.State())
	}

	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted before cooldown elapsed")
	}
	clk.advance(2 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe not admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %s, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after successful probe, want closed (re-admission)", b.State())
	}
	if !b.Allow() {
		t.Fatal("re-admitted breaker refused a request")
	}
	b.Record(true)
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after failed probe, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("admitted immediately after a failed probe; cooldown must restart")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed but probe not admitted")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %s, want closed", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe not admitted")
	}
	b.Cancel() // probe never sent (e.g. hedge race lost before launch)
	if !b.Allow() {
		t.Fatal("canceled probe slot not released")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %s, want closed", b.State())
	}
}
