package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hwgc"
	"hwgc/internal/jobs"
	"hwgc/internal/server"
)

// startJobServed boots one real gcserved with the durable async job tier
// mounted and frequent snapshot boundaries (so migration exports preempt
// quickly).
func startJobServed(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Options{
		Workers:          2,
		JobsDir:          t.TempDir(),
		JobRunners:       2,
		CheckpointCycles: 2000,
		Timeout:          30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// TestElasticChaosE2E is the acceptance chaos run from the issue: three
// real gcserved backends behind one gcfleet, a batch of async jobs in
// flight, then — mid-run — a fourth backend joins through the admin API and
// one original backend is killed. Every job must still finish (checkpoint
// migration for reachable sources, registry rescue for the dead one) with
// results byte-identical to a single-node reference. Zero abandoned jobs.
func TestElasticChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e boots real simulators")
	}

	var backends []*httptest.Server
	for i := 0; i < 3; i++ {
		_, ts := startJobServed(t)
		backends = append(backends, ts)
	}
	_, joiner := startJobServed(t) // running, but not yet a fleet member
	_, reference := startGCServed(t)

	f, err := New(Options{
		Backends:         []string{backends[0].URL, backends[1].URL, backends[2].URL},
		Replicas:         2,
		MaxAttempts:      4,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // the kill stays visible: no half-open flapping
		// Also the probe timeout: generous enough that a loaded-but-live
		// backend never trips its own breaker on a slow /healthz.
		HealthInterval: 500 * time.Millisecond,
		ExportWait:     10 * time.Second,
		Timeout:        30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start() // health loop: probes drive the victim's breaker open → auto rebalance
	defer f.Close()
	fleet := httptest.NewServer(f.Handler())
	defer fleet.Close()

	client := &http.Client{Timeout: time.Minute}
	post := func(url string, body []byte) (*http.Response, []byte) {
		t.Helper()
		res, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(res.Body); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}

	victim := f.Backends()[0]
	victimTS := backends[0]

	// Build the job mix: sweeps are long enough to still be in flight when
	// the chaos hits. At least four of them are owned by the victim, so the
	// kill is guaranteed to strand work that only rescue/migration can save.
	type chaosJob struct {
		id       string
		syncPath string
		syncBody []byte
		submit   []byte
	}
	var jobsList []chaosJob
	mkSweep := func(seed int64) chaosJob {
		req := hwgc.SweepRequest{Bench: "jlisp", Cores: []int{8, 4, 2, 1}, Seed: seed}
		canon, err := req.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return chaosJob{
			id:       hwgc.KeyBytes(canon),
			syncPath: "/v1/sweep",
			syncBody: canon,
			submit:   []byte(`{"Sweep":` + string(canon) + `}`),
		}
	}
	victimOwned := 0
	for seed := int64(1); victimOwned < 4 && seed < 10000; seed++ {
		j := mkSweep(seed)
		if f.primaryFor(j.id) == victim {
			jobsList = append(jobsList, j)
			victimOwned++
		}
	}
	if victimOwned < 4 {
		t.Fatal("could not find victim-owned sweep seeds")
	}
	for seed := int64(10001); len(jobsList) < 10; seed++ {
		jobsList = append(jobsList, mkSweep(seed))
	}

	for i, j := range jobsList {
		res, body := post(fleet.URL+"/v1/jobs", j.submit)
		if res.StatusCode != http.StatusAccepted && res.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d: %s", i, res.StatusCode, body)
		}
		var info jobs.Info
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if info.ID != j.id {
			t.Fatalf("submit %d: backend minted job %s, fleet routed by %s", i, info.ID, j.id)
		}
	}
	if got := f.registry.Len(); got != len(jobsList) {
		t.Fatalf("registry recorded %d submissions, want %d", got, len(jobsList))
	}

	// Let the runners get into the work, then unleash the chaos: a new
	// backend joins through the admin API, and the victim dies hard.
	time.Sleep(100 * time.Millisecond)
	joinBody, _ := json.Marshal(addBackendBody{URL: joiner.URL})
	jres, jbody := post(fleet.URL+"/v1/admin/backends", joinBody)
	if jres.StatusCode != http.StatusCreated {
		t.Fatalf("join: %d: %s", jres.StatusCode, jbody)
	}
	victimTS.CloseClientConnections()
	victimTS.Close()

	// Drive recovery deterministically: synchronous rebalance passes move
	// displaced jobs (checkpoint migration from live sources, registry
	// rescue for the dead victim's), while result polling proves no job was
	// abandoned and every result is byte-identical to the single-node
	// reference.
	var lastKick time.Time
	kickRebalance := func() {
		if time.Since(lastKick) < 300*time.Millisecond {
			return
		}
		lastKick = time.Now()
		res, err := client.Post(fleet.URL+"/v1/admin/rebalance", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
	}
	kickRebalance()
	for i, j := range jobsList {
		deadline := time.Now().Add(120 * time.Second)
		var status int
		var got []byte
		for {
			resp, err := client.Get(fleet.URL + "/v1/jobs/" + j.id + "/result")
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			status, got = resp.StatusCode, buf.Bytes()
			if status == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				for _, b := range f.Backends() {
					t.Logf("backend %s removed=%v breaker=%s", b.id, b.Removed(), b.breaker.State())
					resp, err := client.Get(b.baseURL + "/v1/jobs/" + j.id)
					if err != nil {
						t.Logf("  job view: %v", err)
						continue
					}
					var buf bytes.Buffer
					buf.ReadFrom(resp.Body)
					resp.Body.Close()
					t.Logf("  job view: %d %s", resp.StatusCode, buf.String())
				}
				t.Fatalf("job %d (%s) abandoned: last status %d: %s", i, j.id[:12], status, got)
			}
			// 202 running, 404/410 mid-migration, 5xx routing turbulence:
			// all transient while the fleet re-homes the job.
			kickRebalance()
			time.Sleep(50 * time.Millisecond)
		}
		sres, want := post(reference.URL+j.syncPath, j.syncBody)
		if sres.StatusCode != http.StatusOK {
			t.Fatalf("reference run %d: status %d", i, sres.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("job %d result is not byte-identical to the single-node reference", i)
		}
	}

	// The victim's stranded jobs really did take the elastic path.
	moved := f.emetrics.JobsMigrated() + f.emetrics.JobsResubmitted()
	if moved == 0 {
		t.Error("no job was migrated or rescued; the chaos never displaced work")
	}
	if f.emetrics.Rebalances() == 0 {
		t.Error("no rebalance pass ran")
	}

	// Metrics surface the whole story.
	mres, err := client.Get(fleet.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mres.Body)
	mres.Body.Close()
	text := mbuf.String()
	for _, want := range []string{
		"gcfleet_backends_added_total 1",
		"gcelastic_rebalances_total",
		fmt.Sprintf("gcfleet_breaker_state{backend=%q} 1", victim.id),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Finally the operator retires the dead member; the fleet is 3 live
	// backends again and the batch replays all-OK from live owners.
	dreq, _ := http.NewRequest(http.MethodDelete, fleet.URL+"/v1/admin/backends/"+victim.id, nil)
	dres, err := client.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dres.Body.Close()
	if dres.StatusCode != http.StatusOK {
		t.Fatalf("retiring dead victim: %d", dres.StatusCode)
	}
	live := 0
	for _, b := range f.Backends() {
		if !b.Removed() {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("%d live backends after retirement, want 3", live)
	}
}
