package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hwgc"
	"hwgc/internal/server"
)

// startGCServed boots one real in-process gcserved behind an httptest
// listener and returns both handles.
func startGCServed(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Options{Workers: 2, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// TestFleetEndToEnd is the acceptance test from the issue: three real
// in-process gcserved backends behind one gcfleet, a mixed collect/sweep
// batch driven through it, one backend killed mid-run, and then:
//
//   - every item eventually succeeds or is reported as a per-item failure
//     (no hung requests),
//   - responses are byte-identical to a single-node gcserved given the
//     same plans,
//   - /metrics shows the breaker opening and the routing redistribution.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test boots real simulators")
	}

	var backends []*httptest.Server
	for i := 0; i < 3; i++ {
		_, ts := startGCServed(t)
		backends = append(backends, ts)
	}
	// A standalone single-node gcserved as the byte-identity reference.
	_, reference := startGCServed(t)

	f, err := New(Options{
		Backends:         []string{backends[0].URL, backends[1].URL, backends[2].URL},
		MaxAttempts:      4,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // keep the kill visible in /metrics
		HealthInterval:   -1,        // deterministic: traffic drives the breaker
		Timeout:          30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fleet := httptest.NewServer(f.Handler())
	defer fleet.Close()

	client := &http.Client{Timeout: time.Minute}
	post := func(url string, body []byte) (*http.Response, []byte) {
		t.Helper()
		res, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(res.Body); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}

	// Single-request byte-identity: the fleet proxies the backend's reply
	// verbatim, and the deterministic simulator makes every node agree.
	collect := []byte(`{"Bench":"jlisp","Seed":11,"Config":{"Cores":2}}`)
	fres, fleetBody := post(fleet.URL+"/v1/collect", collect)
	rres, refBody := post(reference.URL+"/v1/collect", collect)
	if fres.StatusCode != http.StatusOK || rres.StatusCode != http.StatusOK {
		t.Fatalf("collect statuses: fleet %d, reference %d", fres.StatusCode, rres.StatusCode)
	}
	if !bytes.Equal(fleetBody, refBody) {
		t.Fatalf("fleet reply is not byte-identical to single-node gcserved:\nfleet: %s\nref:   %s",
			fleetBody, refBody)
	}
	if fres.Header.Get("X-Fleet-Backend") == "" {
		t.Error("fleet reply missing X-Fleet-Backend")
	}

	// Build a mixed collect/sweep batch.
	const items = 24
	var batch hwgc.BatchRequest
	for i := 0; i < items; i++ {
		if i%4 == 3 {
			batch.Items = append(batch.Items, hwgc.BatchItem{Sweep: &hwgc.SweepRequest{
				Bench: "db", Cores: []int{1, 2}, Seed: int64(i + 1),
			}})
		} else {
			batch.Items = append(batch.Items, hwgc.BatchItem{Collect: &hwgc.CollectRequest{
				Bench: "jlisp", Seed: int64(i + 1), Config: hwgc.Config{Cores: 2},
			}})
		}
	}
	batchBody, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}

	// Warm run with all three backends up: must match the single node
	// byte-for-byte (same BatchResponse encoding, same per-item bodies).
	bres, fleetBatch := post(fleet.URL+"/v1/batch", batchBody)
	if bres.StatusCode != http.StatusOK {
		t.Fatalf("warm batch status %d: %s", bres.StatusCode, fleetBatch)
	}
	rbres, refBatch := post(reference.URL+"/v1/batch", batchBody)
	if rbres.StatusCode != http.StatusOK {
		t.Fatalf("reference batch status %d", rbres.StatusCode)
	}
	if !bytes.Equal(fleetBatch, refBatch) {
		t.Fatal("fleet batch response is not byte-identical to single-node gcserved")
	}

	// Kill one backend mid-run: fire the batch concurrently with the kill.
	victim := backends[1]
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		victim.CloseClientConnections()
		victim.Close()
	}()
	// Drive several batches through the degraded fleet; each must complete
	// (the client timeout above would fail the test on any hung request).
	for round := 0; round < 3; round++ {
		kres, killBatch := post(fleet.URL+"/v1/batch", batchBody)
		if kres.StatusCode != http.StatusOK && kres.StatusCode != http.StatusMultiStatus {
			t.Fatalf("degraded batch round %d: status %d", round, kres.StatusCode)
		}
		br, err := hwgc.DecodeBatchResponse(bytes.NewReader(killBatch))
		if err != nil {
			t.Fatalf("degraded batch round %d undecodable: %v", round, err)
		}
		if len(br.Items) != items {
			t.Fatalf("degraded batch round %d returned %d items, want %d", round, len(br.Items), items)
		}
		for i, it := range br.Items {
			switch {
			case it.Status == http.StatusOK:
				if len(it.Body) == 0 {
					t.Fatalf("round %d item %d: 200 with empty body", round, i)
				}
			case it.Error == "":
				t.Fatalf("round %d item %d: failure status %d without an error report", round, i, it.Status)
			}
		}
	}
	wg.Wait()

	// With the victim's breaker open the fleet must again be fully
	// healthy from the caller's perspective: the ring routed its keys to
	// the surviving replicas, so the same batch now comes back all-OK and
	// still byte-identical to the single node.
	waitFor(t, 5*time.Second, func() bool {
		res, body := post(fleet.URL+"/v1/batch", batchBody)
		return res.StatusCode == http.StatusOK && bytes.Equal(body, refBatch)
	})

	// /metrics: breaker opened on the killed backend, and traffic
	// redistributed (failovers counted, surviving backends routed to).
	mres, err := client.Get(fleet.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mres.Body)
	mres.Body.Close()
	text := mbuf.String()

	var victimID string
	for _, b := range f.Backends() {
		if strings.HasSuffix(b.baseURL, victim.Listener.Addr().String()) {
			victimID = b.id
		}
	}
	if victimID == "" {
		t.Fatal("victim backend not found in fleet")
	}
	for _, want := range []string{
		fmt.Sprintf("gcfleet_breaker_state{backend=%q} 1", victimID),
		fmt.Sprintf("gcfleet_breaker_opens_total{backend=%q} 1", victimID),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if f.metrics.failovers.Load() == 0 {
		t.Error("no failovers counted after killing a backend")
	}
	survivors := 0
	for _, b := range f.Backends() {
		if b.id != victimID && f.metrics.RoutedCount(b.id) > 0 {
			survivors++
		}
	}
	if survivors != 2 {
		t.Errorf("only %d surviving backends took traffic, want 2", survivors)
	}
}
