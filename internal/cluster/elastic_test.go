package cluster

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hwgc/internal/elastic"
)

// adminReq drives one admin-API request through the fleet handler.
func adminReq(t *testing.T, f *Fleet, method, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == nil {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, req)
	return rec
}

func decodeTopology(t *testing.T, rec *httptest.ResponseRecorder) topologyBody {
	t.Helper()
	var body topologyBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("topology body undecodable: %v: %s", err, rec.Body.String())
	}
	return body
}

// TestSettleHedgeLoserRemovedBackend is the deterministic half of the
// removal-vs-hedge regression: a backend that left the ring while its
// hedged send was in flight must have the breaker slot settled without
// recording an outcome, and no error/failure attribution.
func TestSettleHedgeLoserRemovedBackend(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0)}
	// Threshold 1: a single wrongly-recorded failure would open the breaker,
	// making any attribution bug loud.
	f, _ := newTestFleet(t, Options{BreakerThreshold: 1}, fakes...)

	b := f.Backends()[0]
	if !b.breaker.Allow() { // the in-flight hedge's slot
		t.Fatal("breaker refused the hedge slot")
	}
	if _, err := f.RemoveBackend(b.id); err != nil {
		t.Fatalf("remove: %v", err)
	}
	// The hedge loses with a 5xx after the removal.
	f.settleHedgeLoser(sendResult{backend: b, status: http.StatusServiceUnavailable})

	if got := b.errors.Load(); got != 0 {
		t.Errorf("removed backend charged %d errors", got)
	}
	if got := f.metrics.backendFailures.Load(); got != 0 {
		t.Errorf("fleet charged %d backend failures to a removed member", got)
	}
	if st := b.breaker.State(); st != BreakerClosed {
		t.Errorf("removed backend's breaker = %s, want closed (slot cancelled, not recorded)", st)
	}
	if b.breaker.Opens() != 0 {
		t.Error("removed backend's breaker opened from a post-removal hedge result")
	}

	// And the probe loop no longer touches it: only the surviving member
	// is probed.
	f.probeAll()
	if got := f.metrics.healthProbes.Load(); got != 1 {
		t.Errorf("probeAll after removal ran %d probes, want 1", got)
	}
}

// TestRemoveBackendRacingHedgedSend is the end-to-end half: the key's
// primary is removed from the fleet while its hedged request is still in
// flight. The hedge to the surviving replica must win, and the removed
// member must absorb its late 5xx without any attribution.
func TestRemoveBackendRacingHedgedSend(t *testing.T) {
	primaryFake := newFakeBackend(t, 200*time.Millisecond)
	hedgeFake := newFakeBackend(t, 400*time.Millisecond)
	f, _ := newTestFleet(t, Options{
		Replicas:         2,
		BreakerThreshold: 1,
		HedgeQuantile:    0.5,
		HedgeMinDelay:    time.Millisecond, // cold histogram → hedge fires almost at once
	}, primaryFake, hedgeFake)

	primary := f.Backends()[0]
	seed := seedOwnedBy(t, f, primary)
	// The primary fails *slowly* — after the hedge has fired and after the
	// removal below — so its 503 arrives for a backend that already left the
	// ring. The hedge replica answers OK, slower still, so the 503 is the
	// race's first (retryable) result and takes the settleHedgeLoser path.
	primaryFake.mode.Store("slowfail")
	hedgeFake.mode.Store("slow")

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed)) }()

	time.Sleep(50 * time.Millisecond) // request in flight, primary still sleeping
	if _, err := f.RemoveBackend(primary.id); err != nil {
		t.Fatalf("remove mid-flight: %v", err)
	}

	rec := <-done
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request failed after removal: %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Fleet-Backend"); got != f.Backends()[0].id {
		t.Errorf("served by %s, want the surviving hedge replica", got)
	}
	if got := primary.errors.Load(); got != 0 {
		t.Errorf("removed backend charged %d errors for its late 503", got)
	}
	if got := f.metrics.backendFailures.Load(); got != 0 {
		t.Errorf("fleet charged %d failures to the removed member", got)
	}
	if st := primary.breaker.State(); st != BreakerClosed {
		t.Errorf("removed backend's breaker = %s, want closed", st)
	}
	if f.metrics.hedges.Load() == 0 {
		t.Error("no hedge launched; the race this test guards never happened")
	}
}

// TestAdminMembership walks the admin API through a join/leave cycle:
// health-gated admission, duplicate and dead-URL rejection, topology
// reporting, and last-backend protection.
func TestAdminMembership(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{Replicas: 2}, fakes...)

	// Baseline topology: two members, shares summing to ~1.
	rec := adminReq(t, f, http.MethodGet, "/v1/admin/topology", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("topology: %d", rec.Code)
	}
	top := decodeTopology(t, rec)
	if len(top.Backends) != 2 {
		t.Fatalf("topology has %d backends, want 2", len(top.Backends))
	}
	sum := 0.0
	for _, b := range top.Backends {
		if !b.Up && b.Breaker == "" {
			t.Errorf("backend %s row incomplete: %+v", b.ID, b)
		}
		sum += b.Share
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("shares sum to %v, want 1", sum)
	}

	// A dead candidate never joins: admission is health-gated.
	dead := newFakeBackend(t, 0)
	dead.mode.Store("fail")
	body, _ := json.Marshal(addBackendBody{URL: dead.ts.URL})
	if rec = adminReq(t, f, http.MethodPost, "/v1/admin/backends", body); rec.Code != http.StatusBadGateway {
		t.Fatalf("dead-backend join: %d, want 502: %s", rec.Code, rec.Body.String())
	}
	if got := len(f.Backends()); got != 2 {
		t.Fatalf("failed admission changed membership to %d backends", got)
	}

	// A live candidate joins and owns a share of the ring.
	joiner := newFakeBackend(t, 0)
	body, _ = json.Marshal(addBackendBody{URL: joiner.ts.URL})
	rec = adminReq(t, f, http.MethodPost, "/v1/admin/backends", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("join: %d: %s", rec.Code, rec.Body.String())
	}
	top = decodeTopology(t, rec)
	if len(top.Backends) != 3 {
		t.Fatalf("post-join topology has %d backends, want 3", len(top.Backends))
	}
	if top.KeysRemapped <= 0 || top.KeysRemapped > 0.8 {
		t.Errorf("KeysRemapped = %v, want a minimal-remap fraction", top.KeysRemapped)
	}
	if f.metrics.backendsAdded.Load() != 1 {
		t.Errorf("backendsAdded = %d, want 1", f.metrics.backendsAdded.Load())
	}

	// Joining the same URL again conflicts.
	if rec = adminReq(t, f, http.MethodPost, "/v1/admin/backends", body); rec.Code != http.StatusConflict {
		t.Fatalf("duplicate join: %d, want 409", rec.Code)
	}
	// Garbage body is a client error.
	if rec = adminReq(t, f, http.MethodPost, "/v1/admin/backends", []byte(`{`)); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad join body: %d, want 400", rec.Code)
	}

	// The joiner takes traffic for keys it now owns.
	var newcomer *Backend
	for _, b := range f.Backends() {
		if b.baseURL == joiner.ts.URL {
			newcomer = b
		}
	}
	if newcomer == nil {
		t.Fatal("joiner missing from fleet membership")
	}
	seed := seedOwnedBy(t, f, newcomer)
	prec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed))
	if prec.Code != http.StatusOK || prec.Header().Get("X-Fleet-Backend") != newcomer.id {
		t.Fatalf("joiner key served status %d by %q, want 200 by %s",
			prec.Code, prec.Header().Get("X-Fleet-Backend"), newcomer.id)
	}
	// The submission registry remembers fleet-routed jobs for rescue.
	submit := []byte(`{"Collect":` + string(collectBody(seed)) + `}`)
	jrec := fleetPost(t, f.Handler(), "/v1/jobs", submit)
	if jrec.Code >= http.StatusMultipleChoices {
		t.Fatalf("job submit: %d", jrec.Code)
	}
	if got := f.registry.Len(); got != 1 {
		t.Errorf("registry has %d jobs after a submit, want 1", got)
	}

	// Removal: unknown id 404s, a member leaves with 200, the last one is
	// protected.
	if rec = adminReq(t, f, http.MethodDelete, "/v1/admin/backends/nope", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown removal: %d, want 404", rec.Code)
	}
	victims := f.Backends()
	for _, v := range victims[:2] {
		if rec = adminReq(t, f, http.MethodDelete, "/v1/admin/backends/"+v.id, nil); rec.Code != http.StatusOK {
			t.Fatalf("remove %s: %d: %s", v.id, rec.Code, rec.Body.String())
		}
	}
	if got := len(f.Backends()); got != 1 {
		t.Fatalf("%d backends after two removals, want 1", got)
	}
	if f.metrics.backendsRemoved.Load() != 2 {
		t.Errorf("backendsRemoved = %d, want 2", f.metrics.backendsRemoved.Load())
	}
	last := f.Backends()[0]
	if rec = adminReq(t, f, http.MethodDelete, "/v1/admin/backends/"+last.id, nil); rec.Code != http.StatusConflict {
		t.Fatalf("last-backend removal: %d, want 409", rec.Code)
	}
}

// TestAdminRebalanceReport covers the synchronous rebalance endpoint: the
// pass runs inline and reports what it scanned, and a clean pass clears
// drained migration sources from the topology.
func TestAdminRebalanceReport(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{Replicas: 2}, fakes...)

	victim := f.Backends()[0]
	if _, err := f.RemoveBackend(victim.id); err != nil {
		t.Fatal(err)
	}
	rec := adminReq(t, f, http.MethodPost, "/v1/admin/rebalance", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("rebalance: %d: %s", rec.Code, rec.Body.String())
	}
	var rep elastic.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("report undecodable: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("clean pass reported %d failures: %+v", rep.Failed, rep)
	}
	// The drained source is gone from the topology.
	top := decodeTopology(t, adminReq(t, f, http.MethodGet, "/v1/admin/topology", nil))
	for _, b := range top.Backends {
		if b.Removed {
			t.Errorf("drained source %s still in topology after a clean pass", b.ID)
		}
	}
	if rec = adminReq(t, f, http.MethodGet, "/v1/admin/rebalance", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET rebalance: %d, want 405", rec.Code)
	}
}
