// Package cluster implements gcfleet, the sharded multi-backend serving
// tier in front of N gcserved instances. It exposes the exact same HTTP
// API as one gcserved and adds:
//
//   - cache-affine routing: a consistent-hash ring over the canonical
//     request content key (hwgc.KeyBytes), so identical requests always
//     land on the backend whose LRU cache already holds the result;
//   - health-checked failover: per-backend /healthz probing feeding a
//     three-state circuit breaker (closed/open/half-open) with automatic
//     re-admission;
//   - a retry policy that honors Retry-After on 429, applies capped
//     exponential backoff with jitter on 5xx/transport errors, fails over
//     to the next ring replica, and optionally hedges the first attempt
//     after a latency percentile to cut tail latency;
//   - scatter-gather batching (POST /v1/batch) with bounded per-backend
//     concurrency and per-item partial-failure reporting;
//   - async job routing (/v1/jobs*): submissions and by-id lookups hash to
//     the same ring owner as the equivalent synchronous request (the job ID
//     is the content key), including a streaming SSE pass-through for
//     /v1/jobs/{id}/events;
//   - parameter-space sweeps (/v1/sweeps*): the proxy plans a SweepSpace
//     with the same canonical expansion the backends use, routes every
//     point's job to its cache-owning backend by content key, and
//     aggregates the ranked frontier locally — byte-identical to what a
//     single backend would serve for the same space;
//   - fleet-level Prometheus metrics on /metrics.
//
// The design follows the paper's synchronization discipline at fleet
// scale: the common case (a healthy owner backend with a warm cache) is
// contention-free, every stall has an accounted cause (breaker opens,
// failovers, retries, hedges), and overload is an explicit bounded
// rejection, never an invisible convoy.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hwgc/internal/elastic"
)

// Options configures a Fleet. Zero values select the defaults.
type Options struct {
	// Backends are the gcserved base URLs (e.g. http://10.0.0.1:8080).
	Backends []string
	// Vnodes is the virtual-node count per backend on the hash ring
	// (default DefaultVnodes).
	Vnodes int
	// Replicas is the failover width: how many distinct backends, in ring
	// order, may serve one key (default 3; the ring caps it at the live
	// member count, which elastic membership changes at runtime).
	Replicas int
	// MaxAttempts bounds the total HTTP sends for one request, hedges
	// included (default 4).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the capped exponential backoff with
	// jitter applied between retries of 5xx/transport failures (defaults
	// 25ms and 1s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryAfterCap bounds how long the fleet honors a backend's
	// Retry-After hint before retrying anyway (default 5s).
	RetryAfterCap time.Duration
	// HedgeQuantile, when in (0,1), enables hedged requests: if the first
	// attempt has not answered within the observed latency quantile (e.g.
	// 0.95 = p95), a second copy is raced against the next replica.
	// Disabled when 0.
	HedgeQuantile float64
	// HedgeMinDelay floors the hedge delay so a cold latency histogram
	// cannot trigger hedge storms (default 20ms).
	HedgeMinDelay time.Duration
	// HealthInterval is the /healthz probe period (default 2s; negative
	// disables probing).
	HealthInterval time.Duration
	// BreakerThreshold consecutive failures open a backend's breaker
	// (default 3); BreakerCooldown is the open→half-open delay (default 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// BatchInflight bounds concurrent in-flight batch items per backend
	// (default 4).
	BatchInflight int
	// Timeout is the per-request (and per-batch-item) deadline (default 60s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests; default is a pooled client).
	Client *http.Client
	// RegistryLimit bounds the submission registry used to rescue jobs from
	// dead backends during a rebalance (default 4096 entries).
	RegistryLimit int
	// ExportWait bounds how long a migration export waits for a running job
	// to reach its next snapshot boundary (default 30s).
	ExportWait time.Duration
	// SweepPoll is the per-point result poll interval of the fleet sweep
	// engine (default 250ms; tests shrink it).
	SweepPoll time.Duration
}

func (o Options) withDefaults() Options {
	if o.Vnodes <= 0 {
		o.Vnodes = DefaultVnodes
	}
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 25 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = time.Second
	}
	if o.RetryAfterCap <= 0 {
		o.RetryAfterCap = 5 * time.Second
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = 20 * time.Millisecond
	}
	if o.HealthInterval == 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.BatchInflight <= 0 {
		o.BatchInflight = 4
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.RegistryLimit <= 0 {
		o.RegistryLimit = 4096
	}
	if o.ExportWait <= 0 {
		o.ExportWait = 30 * time.Second
	}
	if o.SweepPoll <= 0 {
		o.SweepPoll = 250 * time.Millisecond
	}
	return o
}

// Errors the routing layer reports when no backend could serve a request.
var (
	// ErrNoBackends: every replica's breaker refused admission.
	ErrNoBackends = errors.New("cluster: no admissible backend (all breakers open)")
	// ErrExhausted: the attempt budget ran out without a terminal reply.
	ErrExhausted = errors.New("cluster: attempts exhausted")
)

// Errors the membership layer reports on admin topology changes.
var (
	// ErrAdmission: a joining backend failed its health-gated admission probe.
	ErrAdmission = errors.New("cluster: admission probe failed")
	// ErrDuplicate: the backend URL is already a fleet member.
	ErrDuplicate = errors.New("cluster: backend already in the fleet")
	// ErrUnknownBackend: the id names no current ring member.
	ErrUnknownBackend = errors.New("cluster: unknown backend")
	// ErrLastBackend: refusing to remove the fleet's only backend.
	ErrLastBackend = errors.New("cluster: cannot remove the last backend")
)

// Fleet is the coordinator: a hash ring of backends, per-backend breakers
// and counters, fleet metrics, and the HTTP front end.
type Fleet struct {
	opts    Options
	client  *http.Client
	metrics *Metrics
	mux     *http.ServeMux

	mu       sync.RWMutex // guards ring, backends, removed and nextIdx
	ring     *Ring
	backends map[string]*Backend
	removed  map[string]*Backend // left the ring; retained as migration sources
	nextIdx  int                 // monotonic backend index so re-adds get fresh IDs

	registry *jobRegistry     // canonical submit bodies, for dead-owner rescue
	emetrics *elastic.Metrics // gcelastic_* counters, appended to /metrics
	migrator *elastic.Migrator
	sweeps   *fleetSweeps // proxy-side sweep planner/aggregator

	rebalanceMu sync.Mutex // serializes migration passes

	rngMu sync.Mutex
	rng   *rand.Rand

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup

	// sleep is the context-aware sleep used by backoff and Retry-After
	// waits; tests substitute it to make retry schedules instantaneous.
	sleep func(ctx context.Context, d time.Duration) error
}

// New validates opts and builds a Fleet. Call Start to begin health
// probing; the handler works without Start (breakers then trip only on
// live traffic).
func New(opts Options) (*Fleet, error) {
	opts = opts.withDefaults()
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one backend")
	}
	f := &Fleet{
		opts:     opts,
		metrics:  NewMetrics(),
		backends: make(map[string]*Backend, len(opts.Backends)),
		removed:  make(map[string]*Backend),
		nextIdx:  len(opts.Backends),
		registry: newJobRegistry(opts.RegistryLimit),
		emetrics: elastic.NewMetrics(),
		stop:     make(chan struct{}),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:    sleepCtx,
	}
	ids := make([]string, 0, len(opts.Backends))
	for i, raw := range opts.Backends {
		b, err := newBackend(i, raw, opts.BreakerThreshold, opts.BreakerCooldown, opts.BatchInflight)
		if err != nil {
			return nil, err
		}
		if _, dup := f.backends[b.id]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %q", b.baseURL)
		}
		f.backends[b.id] = b
		ids = append(ids, b.id)
	}
	ring, err := NewRing(ids, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	f.ring = ring
	f.client = opts.Client
	if f.client == nil {
		f.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	f.migrator = &elastic.Migrator{
		Client:     f.client,
		Metrics:    f.emetrics,
		Logf:       log.Printf,
		ExportWait: opts.ExportWait,
	}
	f.sweeps = newFleetSweeps(f)
	f.mux = http.NewServeMux()
	f.mux.HandleFunc("/v1/collect", f.handleCollect)
	f.mux.HandleFunc("/v1/sweep", f.handleSweep)
	f.mux.HandleFunc("/v1/batch", f.handleBatch)
	f.mux.HandleFunc("/v1/jobs", f.handleJobs)
	f.mux.HandleFunc("/v1/jobs/", f.handleJobByID)
	f.mux.HandleFunc("/v1/sweeps", f.handleSweeps)
	f.mux.HandleFunc("/v1/sweeps/", f.handleSweepByID)
	f.mux.HandleFunc("/v1/workloads", f.handleWorkloads)
	f.mux.HandleFunc("/v1/admin/backends", f.handleAdminBackends)
	f.mux.HandleFunc("/v1/admin/backends/", f.handleAdminBackendByID)
	f.mux.HandleFunc("/v1/admin/topology", f.handleAdminTopology)
	f.mux.HandleFunc("/v1/admin/rebalance", f.handleAdminRebalance)
	f.mux.HandleFunc("/healthz", f.handleHealthz)
	f.mux.HandleFunc("/metrics", f.handleMetrics)
	return f, nil
}

// Start launches the health-check loop. Idempotent.
func (f *Fleet) Start() {
	f.startOnce.Do(func() {
		if f.opts.HealthInterval < 0 {
			return
		}
		f.wg.Add(1)
		go f.healthLoop()
	})
}

// Close stops the health loop and the sweep point drivers and waits for
// both.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.sweeps.close()
	f.wg.Wait()
}

// Handler returns the fleet's HTTP handler.
func (f *Fleet) Handler() http.Handler { return f.mux }

// Metrics exposes the fleet counter set (for tests and embedding).
func (f *Fleet) Metrics() *Metrics { return f.metrics }

// Backends returns the backends in ring-member order.
func (f *Fleet) Backends() []*Backend {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Backend, 0, len(f.backends))
	for _, id := range f.ring.Members() {
		out = append(out, f.backends[id])
	}
	return out
}

// AddBackend joins a new gcserved to the fleet at runtime. Admission is
// health-gated: the candidate is probed first and enters the ring only
// after a successful probe, so a typo'd URL or a dead process never takes
// traffic. It returns the new backend and the fraction of sampled keys
// whose owner changed (~1/(N+1) when the Nth+1 member joins, by minimal
// remap). The caller is expected to kick a rebalance pass so jobs whose key
// now routes to the newcomer migrate there.
func (f *Fleet) AddBackend(raw string) (*Backend, float64, error) {
	f.mu.Lock()
	idx := f.nextIdx
	f.nextIdx++
	f.mu.Unlock()
	b, err := newBackend(idx, raw, f.opts.BreakerThreshold, f.opts.BreakerCooldown, f.opts.BatchInflight)
	if err != nil {
		return nil, 0, err
	}
	if ok, perr := f.probe(b); !ok {
		return nil, 0, fmt.Errorf("%w: %s: %v", ErrAdmission, b.baseURL, perr)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ex := range f.backends {
		if ex.baseURL == b.baseURL {
			return nil, 0, fmt.Errorf("%w: %s is %s", ErrDuplicate, b.baseURL, ex.id)
		}
	}
	ring, err := f.ring.With(b.id)
	if err != nil {
		return nil, 0, err
	}
	frac := remapFraction(f.ring, ring)
	f.ring = ring
	f.backends[b.id] = b
	f.metrics.backendsAdded.Add(1)
	f.emetrics.SetKeysRemappedFraction(frac)
	return b, frac, nil
}

// RemoveBackend removes a backend from the ring (operator membership
// change, as opposed to a breaker trip which keeps ring ownership stable).
// The remaining backends deterministically inherit only the removed
// member's keys. The backend object is retained, marked removed, as a
// checkpoint-migration source until a clean rebalance pass drains it; it
// takes no further probes, routing, or metric attribution. Returns the
// fraction of sampled keys whose owner changed.
func (f *Fleet) RemoveBackend(id string) (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.backends[id]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownBackend, id)
	}
	if len(f.backends) == 1 {
		return 0, ErrLastBackend
	}
	ring, err := f.ring.Remove(id)
	if err != nil {
		return 0, err
	}
	frac := remapFraction(f.ring, ring)
	f.ring = ring
	delete(f.backends, id)
	b.removed.Store(true)
	f.removed[id] = b
	f.metrics.backendsRemoved.Add(1)
	f.emetrics.SetKeysRemappedFraction(frac)
	return frac, nil
}

// replicasFor returns the key's failover order as live *Backend pointers.
func (f *Fleet) replicasFor(key string) []*Backend {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ids := f.ring.Lookup(key, f.opts.Replicas)
	out := make([]*Backend, 0, len(ids))
	for _, id := range ids {
		if b, ok := f.backends[id]; ok {
			out = append(out, b)
		}
	}
	return out
}

// sendResult is one HTTP exchange outcome.
type sendResult struct {
	backend *Backend
	status  int
	header  http.Header
	body    []byte
	err     error
	hedged  bool // a hedge was launched during this exchange
}

// send performs one exchange against b with the given HTTP method.
func (f *Fleet) send(ctx context.Context, b *Backend, method, path string, body []byte) sendResult {
	b.requests.Add(1)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.baseURL+path, rd)
	if err != nil {
		return sendResult{backend: b, err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return sendResult{backend: b, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBodyBytes))
	if err != nil {
		return sendResult{backend: b, err: err}
	}
	f.metrics.ObserveExchange(b.id, resp.StatusCode)
	return sendResult{backend: b, status: resp.StatusCode, header: resp.Header, body: data}
}

// maxProxyBodyBytes bounds a proxied response body (sweeps over many cores
// are the largest; 64 MiB is far above any real reply).
const maxProxyBodyBytes = 64 << 20

// terminal classifies an exchange outcome: true means return it to the
// caller as-is (2xx, 3xx and non-429 4xx — the backend answered
// authoritatively), false means retry/failover (transport error, 5xx, 429).
func terminal(r sendResult) bool {
	return r.err == nil && r.status < 500 && r.status != http.StatusTooManyRequests
}

// do routes one request for key across the ring replicas under the retry
// policy. It returns the terminal result, or the last observed result plus
// a routing error when every attempt failed. Retried methods must be
// idempotent on the backend — true for everything the fleet proxies:
// simulations are deterministic and content-addressed, job submission
// dedupes on the content key, and cancellation of an already-terminal job
// is an authoritative 409.
func (f *Fleet) do(ctx context.Context, method, path, key string, body []byte) (sendResult, error) {
	replicas := f.replicasFor(key)
	if len(replicas) == 0 {
		return sendResult{}, ErrNoBackends
	}
	replicas[0].routed.Add(1)
	f.metrics.Routed(replicas[0].id)

	var (
		last       sendResult
		haveLast   bool
		sends      = 0
		retryAfter time.Duration
	)
	for round := 0; sends < f.opts.MaxAttempts; round++ {
		admitted := false
		for i := 0; i < len(replicas) && sends < f.opts.MaxAttempts; i++ {
			b := replicas[i]
			if !b.breaker.Allow() {
				continue
			}
			admitted = true
			if sends > 0 {
				f.metrics.retries.Add(1)
			}
			if b != replicas[0] {
				// Any send that leaves the key's primary ring owner is a
				// failover — whether a prior send failed or the primary's
				// open breaker kept it from being tried at all.
				f.metrics.failovers.Add(1)
			}
			sends++
			start := time.Now()
			var res sendResult
			if sends == 1 && f.hedgeDelay() > 0 && len(replicas) > 1 {
				res = f.hedgedSend(ctx, replicas, i, method, path, body)
				if res.hedged {
					sends++ // a hedge spends one attempt from the budget
				}
			} else {
				res = f.send(ctx, b, method, path, body)
			}
			f.metrics.ObserveLatency(time.Since(start))
			last, haveLast = res, true
			switch {
			case terminal(res):
				res.backend.breaker.Record(true)
				return res, nil
			case res.status == http.StatusTooManyRequests:
				// Deliberate backpressure: the backend is alive, just
				// busy. Honor its Retry-After before the next round.
				res.backend.breaker.Record(true)
				if ra := parseRetryAfter(res.header, time.Second); ra > retryAfter {
					retryAfter = ra
				}
			default: // transport error or 5xx
				res.backend.breaker.Record(false)
				res.backend.errors.Add(1)
				f.metrics.backendFailures.Add(1)
				if err := f.sleep(ctx, f.backoff(sends)); err != nil {
					return last, err
				}
			}
			if ctx.Err() != nil {
				return last, ctx.Err()
			}
		}
		if !admitted {
			if haveLast {
				return last, ErrNoBackends
			}
			return sendResult{}, ErrNoBackends
		}
		if retryAfter > 0 && sends < f.opts.MaxAttempts {
			if retryAfter > f.opts.RetryAfterCap {
				retryAfter = f.opts.RetryAfterCap
			}
			if err := f.sleep(ctx, retryAfter); err != nil {
				return last, err
			}
			retryAfter = 0
		}
	}
	return last, ErrExhausted
}

// hedgedSend races the first attempt against one hedge launched after the
// hedge delay. The primary's breaker slot is already held by the caller;
// the hedge acquires (and releases) its own.
func (f *Fleet) hedgedSend(ctx context.Context, replicas []*Backend, primaryIdx int, method, path string, body []byte) sendResult {
	primary := replicas[primaryIdx]
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan sendResult, 2)
	go func() { results <- f.send(hctx, primary, method, path, body) }()

	delay := f.hedgeDelay()
	timer := time.NewTimer(delay)
	defer timer.Stop()

	launched := false
	var hedgeBackend *Backend
	var first sendResult
	select {
	case first = <-results:
		// Primary answered before the hedge fired.
		return first
	case <-timer.C:
		// Pick the next replica whose breaker admits a probe.
		for j := 1; j < len(replicas); j++ {
			c := replicas[(primaryIdx+j)%len(replicas)]
			if c == primary || !c.breaker.Allow() {
				continue
			}
			hedgeBackend = c
			break
		}
		if hedgeBackend == nil {
			first = <-results
			return first
		}
		launched = true
		hedgeBackend.hedges.Add(1)
		f.metrics.hedges.Add(1)
		go func() { results <- f.send(hctx, hedgeBackend, method, path, body) }()
	}

	// Two sends racing. The caller settles the breaker of whichever result
	// we return; we must settle the other one here, exactly once.
	first = <-results
	if terminal(first) {
		cancel() // the loser dies with context.Canceled; drain and discount it
		second := <-results
		f.settleHedgeLoser(second)
		if launched && first.backend == hedgeBackend {
			f.metrics.hedgeWins.Add(1)
		}
		first.hedged = launched
		return first
	}
	// First reply is retryable; settle its breaker and wait for the other.
	f.settleHedgeLoser(first)
	second := <-results
	if launched && terminal(second) && second.backend == hedgeBackend {
		f.metrics.hedgeWins.Add(1)
	}
	second.hedged = launched
	return second
}

// settleHedgeLoser settles the breaker slot of a hedge-race loser without
// penalizing it for being canceled mid-flight.
func (f *Fleet) settleHedgeLoser(loser sendResult) {
	b := loser.backend
	if b == nil {
		return
	}
	if b.removed.Load() {
		// The backend left the ring while this hedge was in flight: settle
		// the breaker slot without recording an outcome, and attribute no
		// errors or failure metrics to a member that no longer exists.
		b.breaker.Cancel()
		return
	}
	switch {
	case loser.err != nil && errors.Is(loser.err, context.Canceled):
		b.breaker.Cancel()
	case loser.err != nil || loser.status >= 500:
		b.breaker.Record(false)
		b.errors.Add(1)
		f.metrics.backendFailures.Add(1)
	default:
		// Terminal replies and 429 backpressure both prove liveness.
		b.breaker.Record(true)
	}
}

// hedgeDelay derives the hedge trigger from the observed latency quantile,
// floored at HedgeMinDelay. Returns 0 when hedging is disabled.
func (f *Fleet) hedgeDelay() time.Duration {
	if f.opts.HedgeQuantile <= 0 || f.opts.HedgeQuantile >= 1 {
		return 0
	}
	d := f.metrics.LatencyQuantile(f.opts.HedgeQuantile)
	if d < f.opts.HedgeMinDelay {
		d = f.opts.HedgeMinDelay
	}
	return d
}

// backoff returns the jittered capped exponential delay before retry n
// (n counts completed sends, so the first retry waits ~BaseBackoff).
func (f *Fleet) backoff(n int) time.Duration {
	d := f.opts.BaseBackoff << uint(n-1)
	if d > f.opts.MaxBackoff || d <= 0 {
		d = f.opts.MaxBackoff
	}
	f.rngMu.Lock()
	jitter := 0.5 + 0.5*f.rng.Float64() // [0.5, 1.0): full jitter, never zero
	f.rngMu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// parseRetryAfter reads a Retry-After header in delay-seconds form,
// falling back to def when absent or unparsable.
func parseRetryAfter(h http.Header, def time.Duration) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return def
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return def
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// healthLoop probes every backend's /healthz on the configured interval.
// A failed probe counts as a breaker failure (proactively tripping dead
// backends before user traffic does); a successful probe is the half-open
// re-admission path for a recovered backend.
func (f *Fleet) healthLoop() {
	defer f.wg.Done()
	tick := time.NewTicker(f.opts.HealthInterval)
	defer tick.Stop()
	for {
		f.probeAll()
		select {
		case <-f.stop:
			return
		case <-tick.C:
		}
	}
}

func (f *Fleet) probeAll() {
	for _, b := range f.Backends() {
		if b.removed.Load() {
			continue // left the ring: migration source only, never probed
		}
		// Detect a fresh breaker-open transition before the Allow gate (an
		// open breaker refuses Allow, which would hide the transition). A
		// member whose breaker just opened has jobs stuck behind it until it
		// recovers — kick one migration pass to move them to live owners.
		open := b.breaker.State() == BreakerOpen
		if open && !b.wasOpen.Swap(true) {
			f.goRebalance()
		}
		if !open {
			b.wasOpen.Store(false)
		}
		if !b.breaker.Allow() {
			continue // open and cooling down: skip until half-open
		}
		ok, err := f.probe(b)
		b.breaker.Record(ok)
		b.healthy.Store(ok)
		if err != nil {
			b.healthErr.Store(err.Error())
		} else {
			b.healthErr.Store("")
		}
		f.metrics.healthProbes.Add(1)
		if !ok {
			f.metrics.healthFailures.Add(1)
		}
	}
}

func (f *Fleet) probe(b *Backend) (bool, error) {
	timeout := f.opts.HealthInterval
	if timeout <= 0 || timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	res := f.send(ctx, b, http.MethodGet, "/healthz", nil)
	if res.err != nil {
		return false, res.err
	}
	if res.status != http.StatusOK {
		return false, fmt.Errorf("healthz status %d", res.status)
	}
	return true, nil
}
