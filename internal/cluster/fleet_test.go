package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hwgc"
)

// fakeBackend is a switchable stand-in for one gcserved: mode "ok" echoes
// a deterministic body derived from the request (so byte-identity across
// backends holds, like the real deterministic simulator), mode "fail"
// returns 503 everywhere, mode "slow" answers after a delay, and mode
// "busy" returns 429 with a Retry-After.
type fakeBackend struct {
	ts       *httptest.Server
	mode     atomic.Value // string
	requests atomic.Int64 // POST /v1/* requests served
	delay    time.Duration
}

func newFakeBackend(t *testing.T, delay time.Duration) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{delay: delay}
	fb.mode.Store("ok")
	fb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mode := fb.mode.Load().(string)
		if r.URL.Path == "/healthz" {
			if mode == "fail" {
				http.Error(w, "down", http.StatusServiceUnavailable)
				return
			}
			w.Write([]byte(`{"Status":"ok"}`))
			return
		}
		fb.requests.Add(1)
		switch mode {
		case "fail":
			http.Error(w, "boom", http.StatusServiceUnavailable)
			return
		case "busy":
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		case "slow":
			time.Sleep(fb.delay)
		case "slowfail":
			time.Sleep(fb.delay)
			http.Error(w, "late boom", http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Cache", "MISS")
		fmt.Fprintf(w, `{"Echo":%q,"Path":%q}`, hwgc.KeyBytes(body), r.URL.Path)
	}))
	t.Cleanup(fb.ts.Close)
	return fb
}

// newTestFleet builds a fleet over the given fakes with fast, deterministic
// settings: health probing disabled (tests drive breakers via traffic) and
// backoff/Retry-After sleeps recorded instead of slept.
func newTestFleet(t *testing.T, opts Options, fakes ...*fakeBackend) (*Fleet, *[]time.Duration) {
	t.Helper()
	for _, fb := range fakes {
		opts.Backends = append(opts.Backends, fb.ts.URL)
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = -1
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	var mu sync.Mutex
	slept := &[]time.Duration{}
	f.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	return f, slept
}

func collectBody(seed int64) []byte {
	req := hwgc.CollectRequest{Bench: "jlisp", Seed: seed, Config: hwgc.Config{Cores: 2}}
	b, err := req.CanonicalJSON()
	if err != nil {
		panic(err)
	}
	return b
}

func fleetPost(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// seedOwnedBy finds a collect-request seed whose content key is owned by
// the given backend, so tests can aim traffic at a specific ring member.
func seedOwnedBy(t *testing.T, f *Fleet, b *Backend) int64 {
	t.Helper()
	for seed := int64(1); seed < 10000; seed++ {
		req := hwgc.CollectRequest{Bench: "jlisp", Seed: seed, Config: hwgc.Config{Cores: 2}}
		key, err := req.Key()
		if err != nil {
			t.Fatal(err)
		}
		if f.primaryFor(key) == b {
			return seed
		}
	}
	t.Fatal("no seed found owned by backend")
	return 0
}

func TestFleetCacheAffineRouting(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{}, fakes...)

	// The same request, repeatedly: always the same backend.
	body := collectBody(7)
	served := map[string]bool{}
	var first []byte
	for i := 0; i < 10; i++ {
		rec := fleetPost(t, f.Handler(), "/v1/collect", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		served[rec.Header().Get("X-Fleet-Backend")] = true
		if first == nil {
			first = rec.Body.Bytes()
		} else if !bytes.Equal(first, rec.Body.Bytes()) {
			t.Fatal("replies for the same request differ")
		}
	}
	if len(served) != 1 {
		t.Fatalf("one request key was served by %d backends %v; want cache-affine routing to 1",
			len(served), served)
	}

	// Equivalent spellings (defaults spelled out vs omitted) share the key
	// and therefore the backend.
	spelled := []byte(`{"Bench":"jlisp","Scale":1,"Seed":7,"Config":{"Cores":2}}`)
	rec := fleetPost(t, f.Handler(), "/v1/collect", spelled)
	if got := rec.Header().Get("X-Fleet-Backend"); !served[got] {
		t.Errorf("equivalent request routed to %s, not the key's owner", got)
	}

	// Distinct requests spread across backends.
	owners := map[string]bool{}
	for seed := int64(1); seed <= 40; seed++ {
		rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed))
		owners[rec.Header().Get("X-Fleet-Backend")] = true
	}
	if len(owners) != 3 {
		t.Errorf("40 distinct keys hit only %d backends, want 3", len(owners))
	}
}

func TestFleetFailoverTripsBreakerAndReroutes(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{BreakerThreshold: 2, BreakerCooldown: time.Hour}, fakes...)

	victim := f.Backends()[0]
	var victimFake *fakeBackend
	for _, fb := range fakes {
		if strings.HasSuffix(victim.baseURL, fb.ts.Listener.Addr().String()) {
			victimFake = fb
		}
	}
	if victimFake == nil {
		t.Fatal("victim fake not found")
	}
	victimFake.mode.Store("fail")
	seed := seedOwnedBy(t, f, victim)

	// Every request still succeeds: the ring fails over to the next
	// replica while the victim accumulates breaker failures.
	for i := 0; i < 4; i++ {
		rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Fleet-Backend"); got == victim.id {
			t.Fatalf("request %d served by the failing backend", i)
		}
	}
	if victim.breaker.State() != BreakerOpen {
		t.Fatalf("victim breaker %s, want open", victim.breaker.State())
	}
	if f.metrics.failovers.Load() == 0 {
		t.Error("no failovers counted")
	}
	if f.metrics.backendFailures.Load() == 0 {
		t.Error("no backend failures counted")
	}

	// With the breaker open the victim is skipped entirely: no new
	// requests reach it.
	before := victimFake.requests.Load()
	for i := 0; i < 3; i++ {
		if rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed)); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	if got := victimFake.requests.Load(); got != before {
		t.Errorf("open breaker leaked %d requests to the victim", got-before)
	}

	// Metrics reflect the trip and the rerouting.
	mrec := httptest.NewRecorder()
	f.Handler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := mrec.Body.String()
	for _, want := range []string{
		fmt.Sprintf("gcfleet_breaker_state{backend=%q} 1", victim.id),
		fmt.Sprintf("gcfleet_breaker_opens_total{backend=%q} 1", victim.id),
		"gcfleet_failovers_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestFleetHalfOpenReadmission(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{BreakerThreshold: 1, BreakerCooldown: 30 * time.Millisecond}, fakes...)

	victim := f.Backends()[0]
	var victimFake *fakeBackend
	for _, fb := range fakes {
		if strings.HasSuffix(victim.baseURL, fb.ts.Listener.Addr().String()) {
			victimFake = fb
		}
	}
	victimFake.mode.Store("fail")
	seed := seedOwnedBy(t, f, victim)

	if rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed)); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if victim.breaker.State() != BreakerOpen {
		t.Fatalf("victim breaker %s, want open", victim.breaker.State())
	}

	// Backend recovers; after the cooldown the next request is the
	// half-open probe and re-admits it.
	victimFake.mode.Store("ok")
	time.Sleep(40 * time.Millisecond)
	rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Fleet-Backend"); got != victim.id {
		t.Fatalf("probe request served by %s, want recovered owner %s", got, victim.id)
	}
	if victim.breaker.State() != BreakerClosed {
		t.Fatalf("victim breaker %s after successful probe, want closed", victim.breaker.State())
	}
}

func TestFleetHealthProbeReadmission(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  20 * time.Millisecond,
		HealthInterval:   10 * time.Millisecond,
	}, fakes...)
	f.Start()

	victim := f.Backends()[0]
	var victimFake *fakeBackend
	for _, fb := range fakes {
		if strings.HasSuffix(victim.baseURL, fb.ts.Listener.Addr().String()) {
			victimFake = fb
		}
	}

	// The health loop notices the failure and proactively opens the
	// breaker with no user traffic at all.
	victimFake.mode.Store("fail")
	waitFor(t, time.Second, func() bool { return victim.breaker.State() == BreakerOpen })

	// And re-admits it after recovery, again with no user traffic.
	victimFake.mode.Store("ok")
	waitFor(t, time.Second, func() bool { return victim.breaker.State() == BreakerClosed })
	if !victim.healthy.Load() {
		t.Error("recovered backend not marked healthy")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

func TestFleetHonorsRetryAfter(t *testing.T) {
	fb := newFakeBackend(t, 0)
	f, slept := newTestFleet(t, Options{MaxAttempts: 3}, fb)

	// The lone backend is busy: the fleet should back off by the
	// advertised Retry-After (1s) between rounds rather than hammering.
	fb.mode.Store("busy")
	rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(1))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the backend's own 429 surfaced", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Errorf("Retry-After %q not propagated", rec.Header().Get("Retry-After"))
	}
	found := false
	for _, d := range *slept {
		if d == time.Second {
			found = true
		}
	}
	if !found {
		t.Errorf("no 1s Retry-After wait recorded; slept %v", *slept)
	}
	// 429s are liveness, not failure: the breaker must stay closed.
	if got := f.Backends()[0].breaker.State(); got != BreakerClosed {
		t.Errorf("breaker %s after 429s, want closed", got)
	}
}

func TestFleetBackoffOnServerErrors(t *testing.T) {
	fb := newFakeBackend(t, 0)
	f, slept := newTestFleet(t, Options{
		MaxAttempts:      3,
		BreakerThreshold: 10,
		BaseBackoff:      10 * time.Millisecond,
		MaxBackoff:       40 * time.Millisecond,
	}, fb)

	fb.mode.Store("fail")
	rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the backend's 503 surfaced after retries", rec.Code)
	}
	if len(*slept) < 2 {
		t.Fatalf("recorded %d backoff sleeps, want >= 2 (3 attempts)", len(*slept))
	}
	for i, d := range *slept {
		if d <= 0 || d > 40*time.Millisecond {
			t.Errorf("backoff %d = %s outside (0, MaxBackoff]", i, d)
		}
	}
	// Jittered exponential: the cap must hold even for later attempts.
	if f.metrics.retries.Load() != 2 {
		t.Errorf("retries = %d, want 2", f.metrics.retries.Load())
	}
}

func TestFleetHedgedRequests(t *testing.T) {
	slow := newFakeBackend(t, 250*time.Millisecond)
	fast := newFakeBackend(t, 0)
	f, _ := newTestFleet(t, Options{
		HedgeQuantile: 0.95,
		HedgeMinDelay: 10 * time.Millisecond,
	}, slow, fast)
	// Restore real sleeps: hedging uses timers, not f.sleep, but keep the
	// recorded-sleep hook harmless anyway.

	var slowBackend *Backend
	for _, b := range f.Backends() {
		if strings.HasSuffix(b.baseURL, slow.ts.Listener.Addr().String()) {
			slowBackend = b
		}
	}
	slow.mode.Store("slow")
	seed := seedOwnedBy(t, f, slowBackend)

	start := time.Now()
	rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed))
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get("X-Fleet-Backend"); got == slowBackend.id {
		t.Fatalf("hedge did not win: served by the slow owner %s", got)
	}
	if elapsed >= 250*time.Millisecond {
		t.Errorf("hedged request took %s; want well under the slow backend's 250ms", elapsed)
	}
	if f.metrics.hedges.Load() == 0 || f.metrics.hedgeWins.Load() == 0 {
		t.Errorf("hedges %d / wins %d, want both > 0",
			f.metrics.hedges.Load(), f.metrics.hedgeWins.Load())
	}
}

// TestFleetScatterGatherRace drives a 120-item mixed batch through the
// scatter-gather path (run under -race in CI): every item must be reported
// exactly once, in order, with either a success or an explicit failure.
func TestFleetScatterGatherRace(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{BatchInflight: 4}, fakes...)

	const items = 120
	var sb strings.Builder
	sb.WriteString(`{"Items":[`)
	for i := 0; i < items; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		if i%5 == 4 {
			fmt.Fprintf(&sb, `{"Sweep":{"Bench":"jlisp","Cores":[1,2],"Seed":%d,"Config":{}}}`, i+1)
		} else {
			fmt.Fprintf(&sb, `{"Collect":{"Bench":"jlisp","Seed":%d,"Config":{"Cores":2}}}`, i+1)
		}
	}
	sb.WriteString(`]}`)
	body := []byte(sb.String())

	// Two concurrent batches to stress the shared ring/breaker/metrics
	// paths as well.
	type out struct {
		code int
		resp *hwgc.BatchResponse
	}
	results := make(chan out, 2)
	for g := 0; g < 2; g++ {
		go func() {
			rec := fleetPost(t, f.Handler(), "/v1/batch", body)
			br, err := hwgc.DecodeBatchResponse(bytes.NewReader(rec.Body.Bytes()))
			if err != nil {
				t.Error(err)
				results <- out{rec.Code, nil}
				return
			}
			results <- out{rec.Code, br}
		}()
	}
	for g := 0; g < 2; g++ {
		o := <-results
		if o.resp == nil {
			t.Fatal("batch response undecodable")
		}
		if o.code != http.StatusOK {
			t.Fatalf("batch status %d: OK=%d Failed=%d", o.code, o.resp.OK, o.resp.Failed)
		}
		if len(o.resp.Items) != items || o.resp.OK != items {
			t.Fatalf("items=%d OK=%d Failed=%d, want all %d OK",
				len(o.resp.Items), o.resp.OK, o.resp.Failed, items)
		}
		for i, it := range o.resp.Items {
			if it.Index != i || it.Status != http.StatusOK || len(it.Body) == 0 {
				t.Fatalf("item %d: %+v", i, it)
			}
		}
	}
	if got := f.metrics.batchItems.Load(); got != 2*items {
		t.Errorf("batch items metric %d, want %d", got, 2*items)
	}
	// The ring spread the items across all three backends.
	for _, b := range f.Backends() {
		if b.requests.Load() == 0 {
			t.Errorf("backend %s served no batch items; routing distribution broken", b.id)
		}
	}
}

func TestFleetBatchPartialFailure(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{MaxAttempts: 2, BreakerThreshold: 100}, fakes...)
	body := []byte(`{"Items":[
		{"Collect":{"Bench":"jlisp","Config":{}}},
		{},
		{"Collect":{"Bench":"no-such-bench","Config":{}}}
	]}`)
	rec := fleetPost(t, f.Handler(), "/v1/batch", body)
	if rec.Code != http.StatusMultiStatus {
		t.Fatalf("status %d, want 207", rec.Code)
	}
	br, err := hwgc.DecodeBatchResponse(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if br.OK != 1 || br.Failed != 2 {
		t.Fatalf("OK=%d Failed=%d, want 1/2", br.OK, br.Failed)
	}
	if br.Items[1].Status != http.StatusBadRequest || br.Items[2].Status != http.StatusBadRequest {
		t.Fatalf("invalid items got statuses %d/%d, want 400/400", br.Items[1].Status, br.Items[2].Status)
	}
}

func TestFleetAllBackendsDown(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{BreakerThreshold: 1, BreakerCooldown: time.Hour, MaxAttempts: 4}, fakes...)
	for _, fb := range fakes {
		fb.mode.Store("fail")
	}
	// First request trips both breakers (failover tries each once).
	rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	// Second request finds every breaker open: immediate local 503, no
	// network traffic, no hang.
	before := fakes[0].requests.Load() + fakes[1].requests.Load()
	rec = fleetPost(t, f.Handler(), "/v1/collect", collectBody(1))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got := fakes[0].requests.Load() + fakes[1].requests.Load(); got != before {
		t.Errorf("open breakers still sent %d requests", got-before)
	}
	if f.metrics.exhausted.Load() == 0 {
		t.Error("exhausted requests not counted")
	}
}

func TestFleetHealthzEndpoint(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{BreakerThreshold: 1, BreakerCooldown: time.Hour}, fakes...)

	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"Status": "ok"`) {
		t.Fatalf("healthz %d: %s", rec.Code, rec.Body.String())
	}

	// Kill both backends and trip the breakers: the fleet reports degraded.
	for _, fb := range fakes {
		fb.mode.Store("fail")
	}
	fleetPost(t, f.Handler(), "/v1/collect", collectBody(1))
	rec = httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"Status": "degraded"`) {
		t.Fatalf("healthz after failure %d: %s", rec.Code, rec.Body.String())
	}
}

func TestFleetWorkloadsProxy(t *testing.T) {
	fb := newFakeBackend(t, 0)
	f, _ := newTestFleet(t, Options{}, fb)
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "/v1/workloads") {
		t.Errorf("workloads reply not proxied: %s", rec.Body.String())
	}
}

func TestFleetRejectsBadRequests(t *testing.T) {
	fb := newFakeBackend(t, 0)
	f, _ := newTestFleet(t, Options{}, fb)
	for name, tc := range map[string]struct {
		path string
		body string
	}{
		"bad json":    {"/v1/collect", "nope"},
		"bad bench":   {"/v1/collect", `{"Bench":"doom","Config":{}}`},
		"bad sweep":   {"/v1/sweep", `{"Cores":[1],"Config":{}}`},
		"empty batch": {"/v1/batch", `{"Items":[]}`},
	} {
		rec := fleetPost(t, f.Handler(), tc.path, []byte(tc.body))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (validated at the fleet, no backend hop)", name, rec.Code)
		}
	}
	if fb.requests.Load() != 0 {
		t.Errorf("invalid requests reached a backend %d times", fb.requests.Load())
	}
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/collect", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/collect: status %d, want 405", rec.Code)
	}
}

func TestFleetRemoveBackend(t *testing.T) {
	fakes := []*fakeBackend{newFakeBackend(t, 0), newFakeBackend(t, 0), newFakeBackend(t, 0)}
	f, _ := newTestFleet(t, Options{}, fakes...)
	victim := f.Backends()[1]
	frac, err := f.RemoveBackend(victim.id)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac > 0.6 {
		t.Errorf("remap fraction %v after removing 1 of 3, want ~1/3", frac)
	}
	if !victim.Removed() {
		t.Error("removed backend not marked removed")
	}
	if len(f.Backends()) != 2 {
		t.Fatalf("backends = %d after removal, want 2", len(f.Backends()))
	}
	for seed := int64(1); seed <= 20; seed++ {
		rec := fleetPost(t, f.Handler(), "/v1/collect", collectBody(seed))
		if rec.Code != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, rec.Code)
		}
		if got := rec.Header().Get("X-Fleet-Backend"); got == victim.id {
			t.Fatalf("removed backend still serving")
		}
	}
	if _, err := f.RemoveBackend("nope"); err == nil {
		t.Error("removing unknown backend accepted")
	}
}
