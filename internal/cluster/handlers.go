package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"hwgc"
)

// maxBodyBytes bounds single-request bodies, matching the backend limit.
const maxBodyBytes = 8 << 20

type errorBody struct {
	Error string
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
		return false
	}
	return true
}

// handleCollect and handleSweep proxy the single-request endpoints: the
// fleet canonicalizes locally (so equivalent spellings share one key and
// one owner), routes by content key, and forwards the canonical body. The
// backend reply is passed through verbatim — byte-identical to what the
// owner would serve directly.
func (f *Fleet) handleCollect(w http.ResponseWriter, r *http.Request) {
	f.proxyRequest(w, r, func(body []byte) (string, []byte, error) {
		var req hwgc.CollectRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", nil, err
		}
		canon, err := req.CanonicalJSON()
		if err != nil {
			return "", nil, err
		}
		return hwgc.KeyBytes(canon), canon, nil
	})
}

func (f *Fleet) handleSweep(w http.ResponseWriter, r *http.Request) {
	f.proxyRequest(w, r, func(body []byte) (string, []byte, error) {
		var req hwgc.SweepRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", nil, err
		}
		canon, err := req.CanonicalJSON()
		if err != nil {
			return "", nil, err
		}
		return hwgc.KeyBytes(canon), canon, nil
	})
}

// proxyRequest is the shared single-request proxy path.
func (f *Fleet) proxyRequest(w http.ResponseWriter, r *http.Request, canonicalize func([]byte) (string, []byte, error)) {
	if !requirePost(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	raw, err := readAll(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	key, canon, err := canonicalize(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), f.opts.Timeout)
	defer cancel()
	res, err := f.do(ctx, http.MethodPost, r.URL.Path, key, canon)
	f.finishProxy(w, res, err)
}

// finishProxy maps a routing outcome onto the client response.
func (f *Fleet) finishProxy(w http.ResponseWriter, res sendResult, err error) {
	switch {
	case err == nil:
		copyHeader(w, res.header, "Content-Type")
		copyHeader(w, res.header, "X-Cache")
		copyHeader(w, res.header, "X-Cache-Key")
		copyHeader(w, res.header, "Retry-After")
		if res.backend != nil {
			w.Header().Set("X-Fleet-Backend", res.backend.id)
		}
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
	case errors.Is(err, ErrNoBackends):
		f.metrics.exhausted.Add(1)
		writeError(w, http.StatusServiceUnavailable, "no healthy backend for this key (all breakers open)")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		f.metrics.exhausted.Add(1)
		writeError(w, http.StatusGatewayTimeout, "fleet deadline (%s) exceeded", f.opts.Timeout)
	case errors.Is(err, ErrExhausted) && res.status != 0:
		// Out of attempts but we do hold a last reply (a 429 or 5xx):
		// surface it so the client sees the backend's own signal.
		f.metrics.exhausted.Add(1)
		copyHeader(w, res.header, "Content-Type")
		copyHeader(w, res.header, "Retry-After")
		if res.backend != nil {
			w.Header().Set("X-Fleet-Backend", res.backend.id)
		}
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
	default:
		f.metrics.exhausted.Add(1)
		writeError(w, http.StatusBadGateway, "all backends failed: %v", err)
	}
}

func copyHeader(w http.ResponseWriter, from http.Header, name string) {
	if from == nil {
		return
	}
	if v := from.Get(name); v != "" {
		w.Header().Set(name, v)
	}
}

func readAll(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

// handleWorkloads forwards GET /v1/workloads to a healthy backend (the
// listing is identical on every backend).
func (f *Fleet) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "%s requires GET", r.URL.Path)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), f.opts.Timeout)
	defer cancel()
	res, err := f.do(ctx, http.MethodGet, "/v1/workloads", "workloads", nil)
	f.finishProxy(w, res, err)
}

// fleetHealth is the GET /healthz response: the coordinator is "ok" while
// at least one backend is admissible, "degraded" otherwise.
type fleetHealth struct {
	Status   string
	Backends []backendHealth
}

type backendHealth struct {
	ID      string
	URL     string
	Breaker string
	Up      bool
	Error   string `json:",omitempty"`
}

func (f *Fleet) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := fleetHealth{Status: "degraded"}
	for _, b := range f.Backends() {
		state := b.breaker.State()
		up := b.healthy.Load()
		if state != BreakerOpen {
			h.Status = "ok"
		}
		errStr, _ := b.healthErr.Load().(string)
		h.Backends = append(h.Backends, backendHealth{
			ID: b.id, URL: b.baseURL, Breaker: state.String(), Up: up, Error: errStr,
		})
	}
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}

func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = f.metrics.WritePrometheus(w, f.Backends())
	_ = f.emetrics.WritePrometheus(w)
	_ = f.sweeps.metrics.WritePrometheus(w)
}
