package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"hwgc"
)

// jobSubmit mirrors gcserved's POST /v1/jobs body: exactly one of Collect
// or Sweep, plus an optional priority class.
type jobSubmit struct {
	Collect *hwgc.CollectRequest `json:",omitempty"`
	Sweep   *hwgc.SweepRequest   `json:",omitempty"`
	Class   string               `json:",omitempty"`
}

// handleJobs proxies POST /v1/jobs. The fleet canonicalizes the inner
// request locally and routes by its content key — which is exactly the job
// ID the backend will mint — so a job always lands on the same backend that
// owns the equivalent synchronous request, and the job's result lands in
// the cache that sync traffic for this key already routes to. Submission is
// idempotent on the backend (dedup by content key), which is what makes the
// fleet's retry/failover policy safe for this POST.
func (f *Fleet) handleJobs(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	raw, err := readAll(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var sub jobSubmit
	if err := json.Unmarshal(raw, &sub); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	if (sub.Collect == nil) == (sub.Sweep == nil) {
		writeError(w, http.StatusBadRequest, "exactly one of Collect or Sweep must be set")
		return
	}
	var canon []byte
	if sub.Collect != nil {
		if _, err = sub.Collect.Key(); err == nil { // canonicalizes in place
			canon, err = sub.Collect.CanonicalJSON()
		}
	} else {
		if _, err = sub.Sweep.Key(); err == nil { // canonicalizes in place
			canon, err = sub.Sweep.CanonicalJSON()
		}
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	key := hwgc.KeyBytes(canon)

	// Rebuild the body around the canonical inner request so every
	// equivalent spelling forwards identical bytes (the backend then mints
	// the identical job ID). Class validation is left to the backend — its
	// 400 is authoritative and passes through.
	fwd := struct {
		Collect json.RawMessage `json:",omitempty"`
		Sweep   json.RawMessage `json:",omitempty"`
		Class   string          `json:",omitempty"`
	}{Class: sub.Class}
	if sub.Collect != nil {
		fwd.Collect = canon
	} else {
		fwd.Sweep = canon
	}
	body, err := json.Marshal(fwd)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding request: %v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), f.opts.Timeout)
	defer cancel()
	res, err := f.do(ctx, http.MethodPost, "/v1/jobs", key, body)
	if err == nil {
		copyHeader(w, res.header, "Location")
		if res.status < http.StatusMultipleChoices {
			// Remember the accepted submission so a rebalance pass can
			// resubmit it from scratch if its owner dies before the job can
			// be checkpoint-exported (dead-owner rescue).
			f.registry.Record(key, body)
		}
	}
	f.finishProxy(w, res, err)
}

// handleJobByID proxies /v1/jobs/{id}, /v1/jobs/{id}/result and
// /v1/jobs/{id}/events. The job ID is itself the content key the job was
// submitted under, so hashing it routes every by-id request to the same
// backend that accepted the submission (with the usual replica failover —
// a restarted owner replays its WAL and still knows the job).
func (f *Fleet) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, subPath, _ := strings.Cut(rest, "/")
	if id == "" || strings.Contains(subPath, "/") {
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
		return
	}
	switch subPath {
	case "":
		if r.Method != http.MethodGet && r.Method != http.MethodDelete {
			w.Header().Set("Allow", "GET, DELETE")
			writeError(w, http.StatusMethodNotAllowed, "%s requires GET or DELETE", r.URL.Path)
			return
		}
		f.proxyJobPath(w, r, id, r.Method)
	case "result":
		if !requireGetFleet(w, r) {
			return
		}
		f.proxyJobPath(w, r, id, http.MethodGet)
	case "events":
		if !requireGetFleet(w, r) {
			return
		}
		f.streamJobEvents(w, r, id)
	default:
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
	}
}

func requireGetFleet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "%s requires GET", r.URL.Path)
		return false
	}
	return true
}

// proxyJobPath forwards a bodyless by-id request under the standard
// retry/failover policy. DELETE is safe to retry: cancelling an
// already-terminal job is an authoritative 409, not a duplicate effect.
func (f *Fleet) proxyJobPath(w http.ResponseWriter, r *http.Request, id, method string) {
	ctx, cancel := context.WithTimeout(r.Context(), f.opts.Timeout)
	defer cancel()
	res, err := f.do(ctx, method, r.URL.Path, id, nil)
	f.finishProxy(w, res, err)
}

// streamJobEvents proxies the SSE endpoint. The buffered do() path cannot
// carry an unbounded live stream, so this is a single-attempt-per-replica
// pass-through: pick the first admissible replica that answers, then copy
// bytes as they arrive with a flush per chunk. No retries once streaming
// has started — a broken stream surfaces to the client, which reconnects
// (the backend replays the full event history on every subscribe, so a
// reconnect misses nothing).
func (f *Fleet) streamJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	replicas := f.replicasFor(id)
	for _, b := range replicas {
		if !b.breaker.Allow() {
			continue
		}
		b.requests.Add(1)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.baseURL+r.URL.Path, nil)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "building request: %v", err)
			return
		}
		resp, err := f.client.Do(req)
		if err != nil {
			b.breaker.Record(false)
			b.errors.Add(1)
			f.metrics.backendFailures.Add(1)
			continue
		}
		f.metrics.ObserveExchange(b.id, resp.StatusCode)
		if resp.StatusCode >= http.StatusInternalServerError {
			resp.Body.Close()
			b.breaker.Record(false)
			b.errors.Add(1)
			f.metrics.backendFailures.Add(1)
			continue
		}
		b.breaker.Record(true)
		defer resp.Body.Close()
		copyHeader(w, resp.Header, "Content-Type")
		copyHeader(w, resp.Header, "Cache-Control")
		w.Header().Set("X-Fleet-Backend", b.id)
		if resp.StatusCode != http.StatusOK {
			// Authoritative non-stream reply (404, 405): buffered is fine.
			body, _ := io.ReadAll(io.LimitReader(resp.Body, maxProxyBodyBytes))
			w.WriteHeader(resp.StatusCode)
			_, _ = w.Write(body)
			return
		}
		w.WriteHeader(http.StatusOK)
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				fl.Flush()
			}
			if rerr != nil {
				return
			}
		}
	}
	f.metrics.exhausted.Add(1)
	writeError(w, http.StatusServiceUnavailable, "no admissible backend to stream job events")
}
