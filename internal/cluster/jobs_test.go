package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hwgc/internal/server"
)

// startJobsBackend boots one real gcserved with the async job tier enabled.
func startJobsBackend(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Options{
		Workers:    2,
		Timeout:    30 * time.Second,
		JobsDir:    t.TempDir(),
		JobRunners: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// jobInfoBody is the subset of the backend's job Info the tests decode.
type jobInfoBody struct {
	ID    string
	State string
	Class string
}

// TestFleetJobsEndToEnd drives the async job lifecycle through the fleet:
// submit routes by the content key (= the job ID the backend mints), dedup
// works across spellings, the result is byte-identical to the synchronous
// path, the job's result warms the owner's cache for later sync traffic,
// and the SSE stream proxies through to a terminal event.
func TestFleetJobsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test boots real simulators")
	}

	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := startJobsBackend(t)
		urls = append(urls, ts.URL)
	}
	f, err := New(Options{
		Backends:       urls,
		HealthInterval: -1,
		Timeout:        30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fleet := httptest.NewServer(f.Handler())
	defer fleet.Close()

	client := &http.Client{Timeout: time.Minute}
	request := func(method, url string, body []byte) (*http.Response, []byte) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			t.Fatal(err)
		}
		res, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return res, data
	}

	// Submit: 202, Location header, and the serving backend is the ring
	// owner of the job's content key.
	submit := []byte(`{"Collect":{"Bench":"jlisp","Seed":11,"Config":{"Cores":2}}}`)
	res, body := request(http.MethodPost, fleet.URL+"/v1/jobs", submit)
	if res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", res.StatusCode, body)
	}
	var info jobInfoBody
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" {
		t.Fatalf("submit returned no job ID: %s", body)
	}
	if loc := res.Header.Get("Location"); loc != "/v1/jobs/"+info.ID {
		t.Errorf("Location = %q, want %q", loc, "/v1/jobs/"+info.ID)
	}
	owner := f.primaryFor(info.ID)
	if owner == nil {
		t.Fatal("no ring owner for job id")
	}
	if got := res.Header.Get("X-Fleet-Backend"); got != owner.id {
		t.Errorf("submit served by %q, want ring owner %q", got, owner.id)
	}

	// Dedup: a differently-spelled but equivalent submission lands on the
	// same backend and returns 200 with the same job.
	respelled := []byte(`{"Collect":{"Seed":11,"Config":{"Cores":2},"Bench":"jlisp"}}`)
	res, body = request(http.MethodPost, fleet.URL+"/v1/jobs", respelled)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("dedup submit status %d: %s", res.StatusCode, body)
	}
	var dup jobInfoBody
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != info.ID {
		t.Errorf("dedup minted a different job: %q vs %q", dup.ID, info.ID)
	}
	if got := res.Header.Get("X-Fleet-Backend"); got != owner.id {
		t.Errorf("dedup served by %q, want %q", got, owner.id)
	}

	// Poll the result through the fleet until done.
	var result []byte
	waitFor(t, 10*time.Second, func() bool {
		r, b := request(http.MethodGet, fleet.URL+"/v1/jobs/"+info.ID+"/result", nil)
		if r.StatusCode == http.StatusOK {
			result = b
			return true
		}
		return false
	})
	if len(result) == 0 {
		t.Fatal("empty job result")
	}

	// Status through the fleet: terminal done.
	res, body = request(http.MethodGet, fleet.URL+"/v1/jobs/"+info.ID, nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status fetch: %d: %s", res.StatusCode, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != "done" {
		t.Fatalf("job state %q, want done", info.State)
	}

	// The sync path for the same request must route to the same owner and
	// hit the cache the job's result already warmed — byte-identically.
	res, syncBody := request(http.MethodPost, fleet.URL+"/v1/collect",
		[]byte(`{"Bench":"jlisp","Seed":11,"Config":{"Cores":2}}`))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("sync collect status %d: %s", res.StatusCode, syncBody)
	}
	if !bytes.Equal(syncBody, result) {
		t.Error("sync result is not byte-identical to the async job result")
	}
	if got := res.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("sync collect after job completion: X-Cache = %q, want HIT", got)
	}
	if got := res.Header.Get("X-Fleet-Backend"); got != owner.id {
		t.Errorf("sync collect served by %q, want job owner %q", got, owner.id)
	}

	// SSE through the proxy: the stream replays history and closes at the
	// terminal event.
	res, events := request(http.MethodGet, fleet.URL+"/v1/jobs/"+info.ID+"/events", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("events status %d: %s", res.StatusCode, events)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("events Content-Type = %q", ct)
	}
	text := string(events)
	if !strings.Contains(text, "event: queued") || !strings.Contains(text, "event: done") {
		t.Errorf("event stream missing lifecycle events:\n%s", text)
	}

	// Cancel-after-done races resolve authoritatively: DELETE on a terminal
	// job proxies the backend's 409.
	res, body = request(http.MethodDelete, fleet.URL+"/v1/jobs/"+info.ID, nil)
	if res.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE on done job: status %d, want 409: %s", res.StatusCode, body)
	}
}

// TestFleetJobsValidation covers the fleet-local and proxied error paths.
func TestFleetJobsValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test boots real simulators")
	}
	_, ts := startJobsBackend(t)
	f, err := New(Options{Backends: []string{ts.URL}, HealthInterval: -1, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fleet := httptest.NewServer(f.Handler())
	defer fleet.Close()

	client := &http.Client{Timeout: time.Minute}
	status := func(method, path string, body []byte) int {
		t.Helper()
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, fleet.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		res, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res.StatusCode
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   []byte
		want   int
	}{
		{"submit requires POST", http.MethodGet, "/v1/jobs", nil, http.StatusMethodNotAllowed},
		{"neither kind", http.MethodPost, "/v1/jobs", []byte(`{}`), http.StatusBadRequest},
		{"both kinds", http.MethodPost, "/v1/jobs",
			[]byte(`{"Collect":{"Bench":"jlisp"},"Sweep":{"Bench":"db","Cores":[1]}}`), http.StatusBadRequest},
		{"not json", http.MethodPost, "/v1/jobs", []byte(`nope`), http.StatusBadRequest},
		{"unknown class proxies backend 400", http.MethodPost, "/v1/jobs",
			[]byte(`{"Collect":{"Bench":"jlisp","Config":{"Cores":2}},"Class":"nope"}`), http.StatusBadRequest},
		{"unknown job", http.MethodGet, "/v1/jobs/feedbeef", nil, http.StatusNotFound},
		{"unknown job result", http.MethodGet, "/v1/jobs/feedbeef/result", nil, http.StatusNotFound},
		{"unknown job events", http.MethodGet, "/v1/jobs/feedbeef/events", nil, http.StatusNotFound},
		{"unknown job cancel", http.MethodDelete, "/v1/jobs/feedbeef", nil, http.StatusNotFound},
		{"bad subresource", http.MethodGet, "/v1/jobs/feedbeef/nope", nil, http.StatusNotFound},
		{"deep path", http.MethodGet, "/v1/jobs/a/b/c", nil, http.StatusNotFound},
		{"id requires GET or DELETE", http.MethodPost, "/v1/jobs/feedbeef", nil, http.StatusMethodNotAllowed},
		{"events require GET", http.MethodDelete, "/v1/jobs/feedbeef/events", nil, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		if got := status(tc.method, tc.path, tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}
