package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/stats"
)

// Metrics is the fleet-level counter set, exposed on /metrics in
// Prometheus text exposition format. It mirrors the backend tier's stall
// accounting one level up: every request the fleet could not serve from
// the key's healthy owner is attributed to a cause — breaker trips,
// failovers, retries, hedges, or exhaustion.
type Metrics struct {
	start time.Time

	retries         atomic.Int64 // sends after the first for one request
	failovers       atomic.Int64 // sends that left the key's primary owner
	hedges          atomic.Int64 // hedge requests launched
	hedgeWins       atomic.Int64 // hedges that beat the primary
	backendFailures atomic.Int64 // transport errors + 5xx across the fleet
	exhausted       atomic.Int64 // requests that ran out of attempts/backends
	healthProbes    atomic.Int64
	healthFailures  atomic.Int64
	batchRequests   atomic.Int64
	batchItems      atomic.Int64
	batchFailed     atomic.Int64
	backendsAdded   atomic.Int64 // runtime joins via the admin API
	backendsRemoved atomic.Int64 // runtime removals via the admin API

	mu        sync.Mutex
	exchanges map[string]map[int]int64 // backend id -> status code -> count
	routes    map[string]int64         // backend id -> times chosen as primary owner
	lat       stats.Hist               // merged request latency across backends
}

// NewMetrics returns an empty fleet counter set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		exchanges: make(map[string]map[int]int64),
		routes:    make(map[string]int64),
	}
}

// ObserveExchange records one completed HTTP exchange with a backend.
func (m *Metrics) ObserveExchange(backend string, code int) {
	m.mu.Lock()
	byCode := m.exchanges[backend]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.exchanges[backend] = byCode
	}
	byCode[code]++
	m.mu.Unlock()
}

// Routed records that a backend was chosen as a key's primary owner — the
// routing distribution of the hash ring.
func (m *Metrics) Routed(backend string) {
	m.mu.Lock()
	m.routes[backend]++
	m.mu.Unlock()
}

// RoutedCount returns how many times a backend was the primary owner.
func (m *Metrics) RoutedCount(backend string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.routes[backend]
}

// ObserveLatency records one end-to-end exchange latency (hedged exchanges
// count once, as seen by the caller).
func (m *Metrics) ObserveLatency(d time.Duration) {
	m.mu.Lock()
	m.lat.Observe(d)
	m.mu.Unlock()
}

// LatencyQuantile returns the upper-bound q-quantile of observed exchange
// latency (used to derive the hedge delay).
func (m *Metrics) LatencyQuantile(q float64) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lat.QuantileDuration(q)
}

// WritePrometheus writes every fleet counter in Prometheus text format.
// Map-keyed series are emitted in sorted order so the output is
// deterministic.
func (m *Metrics) WritePrometheus(w io.Writer, backends []*Backend) error {
	m.mu.Lock()
	exchangeLines := make([]string, 0, len(m.exchanges)*4)
	ids := make([]string, 0, len(m.exchanges))
	for id := range m.exchanges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		codes := make([]int, 0, len(m.exchanges[id]))
		for c := range m.exchanges[id] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			exchangeLines = append(exchangeLines,
				fmt.Sprintf("gcfleet_requests_total{backend=%q,code=\"%d\"} %d", id, c, m.exchanges[id][c]))
		}
	}
	routeIDs := make([]string, 0, len(m.routes))
	for id := range m.routes {
		routeIDs = append(routeIDs, id)
	}
	sort.Strings(routeIDs)
	routeLines := make([]string, 0, len(routeIDs))
	for _, id := range routeIDs {
		routeLines = append(routeLines, fmt.Sprintf("gcfleet_routed_total{backend=%q} %d", id, m.routes[id]))
	}
	lat := m.lat
	m.mu.Unlock()

	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
		b = append(b, '\n')
	}
	add("# HELP gcfleet_requests_total HTTP exchanges with backends, by backend and status code.")
	add("# TYPE gcfleet_requests_total counter")
	for _, l := range exchangeLines {
		add("%s", l)
	}
	add("# HELP gcfleet_routed_total Requests whose primary ring owner was this backend (routing distribution).")
	add("# TYPE gcfleet_routed_total counter")
	for _, l := range routeLines {
		add("%s", l)
	}
	add("# HELP gcfleet_backend_up Last health-probe outcome per backend (1 up, 0 down).")
	add("# TYPE gcfleet_backend_up gauge")
	add("# HELP gcfleet_breaker_state Circuit-breaker state per backend (0 closed, 1 open, 2 half-open).")
	add("# TYPE gcfleet_breaker_state gauge")
	add("# HELP gcfleet_breaker_opens_total Times each backend's breaker opened.")
	add("# TYPE gcfleet_breaker_opens_total counter")
	add("# HELP gcfleet_backend_errors_total Transport errors and 5xx replies per backend.")
	add("# TYPE gcfleet_backend_errors_total counter")
	add("# HELP gcfleet_hedged_to_total Hedge requests launched against each backend.")
	add("# TYPE gcfleet_hedged_to_total counter")
	for _, bk := range backends {
		up := 0
		if bk.healthy.Load() {
			up = 1
		}
		add("gcfleet_backend_up{backend=%q} %d", bk.id, up)
		add("gcfleet_breaker_state{backend=%q} %d", bk.id, bk.breaker.State())
		add("gcfleet_breaker_opens_total{backend=%q} %d", bk.id, bk.breaker.Opens())
		add("gcfleet_backend_errors_total{backend=%q} %d", bk.id, bk.errors.Load())
		add("gcfleet_hedged_to_total{backend=%q} %d", bk.id, bk.hedges.Load())
	}
	add("# HELP gcfleet_backends Backends currently in the ring.")
	add("# TYPE gcfleet_backends gauge")
	add("gcfleet_backends %d", len(backends))
	add("# HELP gcfleet_backends_added_total Backends joined at runtime via the admin API.")
	add("# TYPE gcfleet_backends_added_total counter")
	add("gcfleet_backends_added_total %d", m.backendsAdded.Load())
	add("# HELP gcfleet_backends_removed_total Backends removed at runtime via the admin API.")
	add("# TYPE gcfleet_backends_removed_total counter")
	add("gcfleet_backends_removed_total %d", m.backendsRemoved.Load())
	add("# HELP gcfleet_retries_total Sends after the first for one request (retry policy).")
	add("# TYPE gcfleet_retries_total counter")
	add("gcfleet_retries_total %d", m.retries.Load())
	add("# HELP gcfleet_failovers_total Sends that left the key's primary ring owner.")
	add("# TYPE gcfleet_failovers_total counter")
	add("gcfleet_failovers_total %d", m.failovers.Load())
	add("# HELP gcfleet_hedges_total Hedge requests launched after the latency-percentile delay.")
	add("# TYPE gcfleet_hedges_total counter")
	add("gcfleet_hedges_total %d", m.hedges.Load())
	add("# HELP gcfleet_hedge_wins_total Hedges that answered before the primary attempt.")
	add("# TYPE gcfleet_hedge_wins_total counter")
	add("gcfleet_hedge_wins_total %d", m.hedgeWins.Load())
	add("# HELP gcfleet_backend_failures_total Transport errors and 5xx replies across the fleet.")
	add("# TYPE gcfleet_backend_failures_total counter")
	add("gcfleet_backend_failures_total %d", m.backendFailures.Load())
	add("# HELP gcfleet_exhausted_total Requests that ran out of attempts or admissible backends.")
	add("# TYPE gcfleet_exhausted_total counter")
	add("gcfleet_exhausted_total %d", m.exhausted.Load())
	add("# HELP gcfleet_health_probes_total Health probes sent.")
	add("# TYPE gcfleet_health_probes_total counter")
	add("gcfleet_health_probes_total %d", m.healthProbes.Load())
	add("# HELP gcfleet_health_failures_total Health probes that failed.")
	add("# TYPE gcfleet_health_failures_total counter")
	add("gcfleet_health_failures_total %d", m.healthFailures.Load())
	add("# HELP gcfleet_batch_requests_total /v1/batch requests served.")
	add("# TYPE gcfleet_batch_requests_total counter")
	add("gcfleet_batch_requests_total %d", m.batchRequests.Load())
	add("# HELP gcfleet_batch_items_total Batch items scattered across the fleet.")
	add("# TYPE gcfleet_batch_items_total counter")
	add("gcfleet_batch_items_total %d", m.batchItems.Load())
	add("# HELP gcfleet_batch_item_failures_total Batch items that did not complete with status 200.")
	add("# TYPE gcfleet_batch_item_failures_total counter")
	add("gcfleet_batch_item_failures_total %d", m.batchFailed.Load())
	add("# HELP gcfleet_request_seconds Backend exchange latency as seen by the fleet (upper-bound quantiles).")
	add("# TYPE gcfleet_request_seconds summary")
	add("gcfleet_request_seconds{quantile=\"0.5\"} %g", lat.Quantile(0.50))
	add("gcfleet_request_seconds{quantile=\"0.95\"} %g", lat.Quantile(0.95))
	add("gcfleet_request_seconds{quantile=\"0.99\"} %g", lat.Quantile(0.99))
	add("gcfleet_request_seconds_sum %g", lat.Sum().Seconds())
	add("gcfleet_request_seconds_count %d", lat.Count())
	add("# HELP gcfleet_uptime_seconds Seconds since the fleet coordinator started.")
	add("# TYPE gcfleet_uptime_seconds gauge")
	add("gcfleet_uptime_seconds %g", time.Since(m.start).Seconds())
	_, err := w.Write(b)
	return err
}
