package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"hwgc/internal/elastic"
)

// remapSampleKeys is the deterministic key sample used to measure how much
// of the key space a topology change remapped.
const remapSampleKeys = 1024

// remapFraction measures the fraction of a deterministic key sample whose
// primary owner differs between two rings. Minimal remap makes this ~1/N
// when one of N members changes; a naive mod-N scheme would score ~1.
func remapFraction(old, cur *Ring) float64 {
	if old == nil || cur == nil {
		return 0
	}
	moved := 0
	for i := 0; i < remapSampleKeys; i++ {
		k := fmt.Sprintf("sample-%d", i)
		if old.Owner(k) != cur.Owner(k) {
			moved++
		}
	}
	return float64(moved) / remapSampleKeys
}

// buildPlan snapshots the fleet for one migration pass: every live and
// removed backend with its admissibility, an immutable ring capture for
// owner lookups, and a copy of the submission registry. The pass then runs
// entirely against the snapshot — a concurrent membership change simply
// triggers its own later pass.
func (f *Fleet) buildPlan() elastic.Plan {
	f.mu.RLock()
	ring := f.ring
	backs := make([]elastic.BackendInfo, 0, len(f.backends)+len(f.removed))
	for _, id := range ring.Members() {
		b := f.backends[id]
		backs = append(backs, elastic.BackendInfo{
			ID:         b.id,
			URL:        b.baseURL,
			Admissible: b.breaker.State() != BreakerOpen,
		})
	}
	for _, b := range f.removed {
		backs = append(backs, elastic.BackendInfo{
			ID:         b.id,
			URL:        b.baseURL,
			Admissible: b.breaker.State() != BreakerOpen,
			Removed:    true,
		})
	}
	f.mu.RUnlock()
	sort.Slice(backs, func(i, j int) bool { return backs[i].ID < backs[j].ID })
	replicas := f.opts.Replicas
	return elastic.Plan{
		Backends: backs,
		Replicas: func(key string) []string { return ring.Lookup(key, replicas) },
		Registry: f.registry.Snapshot(),
	}
}

// Rebalance runs one synchronous migration pass over the current topology
// and returns its report. Passes are serialized; a pass that fails partway
// is safe to re-run (exports are non-destructive and imports idempotent).
// After a clean pass the drained removed backends are forgotten; a pass
// with failures retains them as migration sources for the next attempt.
func (f *Fleet) Rebalance(ctx context.Context) elastic.Report {
	f.rebalanceMu.Lock()
	defer f.rebalanceMu.Unlock()
	rep := f.migrator.Rebalance(ctx, f.buildPlan())
	if rep.Failed == 0 {
		f.mu.Lock()
		f.removed = make(map[string]*Backend)
		f.mu.Unlock()
	}
	return rep
}

// goRebalance kicks an asynchronous migration pass. Topology changes and
// breaker-open transitions use it; POST /v1/admin/rebalance runs a
// synchronous pass instead so callers (and tests) get the report back.
func (f *Fleet) goRebalance() {
	select {
	case <-f.stop:
		return
	default:
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		timeout := 2 * time.Minute
		if f.opts.Timeout > timeout {
			timeout = f.opts.Timeout
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		f.Rebalance(ctx)
	}()
}
