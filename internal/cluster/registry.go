package cluster

import "sync"

// jobRegistry remembers the canonical POST /v1/jobs body of every job the
// fleet has routed, keyed by job ID (the request's content key). It is the
// migration driver's rescue path: when a backend dies before its jobs can
// be checkpoint-exported, the registry lets the driver resubmit them to the
// new key owner from scratch — determinism makes the re-run's result
// byte-identical, so a dead backend costs time, never answers.
//
// The registry is bounded FIFO: beyond the limit the oldest entries are
// evicted. An evicted job can no longer be rescued from a dead backend, but
// it remains migratable the normal way (checkpoint export from a live one).
type jobRegistry struct {
	mu    sync.Mutex
	limit int
	ids   []string // insertion order, for eviction
	body  map[string][]byte
}

func newJobRegistry(limit int) *jobRegistry {
	if limit <= 0 {
		limit = 4096
	}
	return &jobRegistry{limit: limit, body: make(map[string][]byte)}
}

// Record remembers one routed submission. Re-recording an existing ID
// refreshes nothing: the body is content-addressed, so it cannot change.
func (r *jobRegistry) Record(id string, body []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.body[id]; ok {
		return
	}
	for len(r.ids) >= r.limit {
		delete(r.body, r.ids[0])
		r.ids = r.ids[1:]
	}
	r.ids = append(r.ids, id)
	r.body[id] = append([]byte(nil), body...)
}

// Snapshot returns a copy of the registry for one rebalance pass.
func (r *jobRegistry) Snapshot() map[string][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte, len(r.body))
	for id, b := range r.body {
		out[id] = b
	}
	return out
}

// Len returns the number of remembered submissions.
func (r *jobRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.body)
}
