package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes, keyed on the
// canonical request content key (hwgc.KeyBytes — the hex SHA-256 the
// backends also use as their result-cache key). Identical requests
// therefore always route to the same backend and land in the LRU cache it
// already warmed: the fleet analogue of the paper's "keep the common case
// local" discipline — repeat work never touches a shared resource.
//
// The ring is immutable after construction; membership changes build a new
// ring (Remove/With), which makes rebalancing deterministic: every vnode
// position is a pure function of the member name, so removing one member
// reassigns only the keys that member owned, and re-adding it restores the
// exact previous ownership.
type Ring struct {
	vnodes  int
	hashes  []uint64 // sorted vnode positions
	owners  []string // owners[i] owns hashes[i]
	members []string // sorted member names
}

// DefaultVnodes is the virtual-node count per member when NewRing is given
// a non-positive one. 128 vnodes keeps the expected load imbalance across a
// handful of backends within a few percent.
const DefaultVnodes = 128

// NewRing builds a ring over the given member names. Names must be
// non-empty and unique.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	sorted := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty ring member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", m)
		}
		seen[m] = true
		sorted = append(sorted, m)
	}
	sort.Strings(sorted)

	r := &Ring{
		vnodes:  vnodes,
		hashes:  make([]uint64, 0, len(sorted)*vnodes),
		owners:  make([]string, 0, len(sorted)*vnodes),
		members: sorted,
	}
	type point struct {
		hash  uint64
		owner string
	}
	points := make([]point, 0, len(sorted)*vnodes)
	for _, m := range sorted {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{hashPoint(fmt.Sprintf("%s#%d", m, v)), m})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].owner < points[j].owner // total order even on hash ties
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.hash)
		r.owners = append(r.owners, p.owner)
	}
	return r, nil
}

// hashPoint maps a string to a ring position. SHA-256 keeps vnode positions
// well spread and, more importantly, stable across processes and releases —
// rebalancing must be a pure function of the member set.
func hashPoint(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the sorted member names.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Remove returns a new ring without the given member. Removing the last
// member or an unknown member is an error.
func (r *Ring) Remove(member string) (*Ring, error) {
	rest := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	if len(rest) == len(r.members) {
		return nil, fmt.Errorf("cluster: ring has no member %q", member)
	}
	return NewRing(rest, r.vnodes)
}

// With returns a new ring with the given member added.
func (r *Ring) With(member string) (*Ring, error) {
	return NewRing(append(r.Members(), member), r.vnodes)
}

// Owner returns the member that owns key: the owner of the first vnode at
// or clockwise after the key's position.
func (r *Ring) Owner(key string) string {
	return r.owners[r.start(key)]
}

// Lookup returns up to n distinct members in ring order starting at the
// key's owner — the failover/replica order for the key. n <= 0 means all
// members.
func (r *Ring) Lookup(key string, n int) []string {
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.start(key); i < len(r.owners) && len(out) < n; i++ {
		owner := r.owners[(start+i)%len(r.owners)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// Shares returns each member's fraction of the ring's key space (the sum of
// its vnode arc lengths over 2^64). The admin topology endpoint reports it
// so an operator can see the post-change ownership balance.
func (r *Ring) Shares() map[string]float64 {
	arcs := make(map[string]uint64, len(r.members))
	n := len(r.hashes)
	for i, h := range r.hashes {
		// Vnode i owns the arc (hashes[i-1], hashes[i]]; uint64 wrap-around
		// subtraction handles the first vnode's arc across zero.
		arcs[r.owners[i]] += h - r.hashes[(i-1+n)%n]
	}
	out := make(map[string]float64, len(arcs))
	for m, a := range arcs {
		out[m] = float64(a) / (1 << 63) / 2
	}
	return out
}

// start returns the index of the first vnode at or clockwise after key.
func (r *Ring) start(key string) int {
	h := hashPoint(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around
	}
	return i
}
