package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty member name accepted")
	}
	r, err := NewRing([]string{"a"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Remove("a"); err == nil {
		t.Error("removing the last member accepted")
	}
	if _, err := r.Remove("nope"); err == nil {
		t.Error("removing an unknown member accepted")
	}
}

func TestRingDeterminism(t *testing.T) {
	r1, err := NewRing([]string{"c", "a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"a", "b", "c"}, 64) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs across identically-membered rings", k)
		}
		if !reflect.DeepEqual(r1.Lookup(k, 3), r2.Lookup(k, 3)) {
			t.Fatalf("replica order of %q differs across identically-membered rings", k)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	for _, m := range r.Members() {
		frac := float64(counts[m]) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys; want a roughly even split: %v",
				m, 100*frac, counts)
		}
	}
}

func TestRingLookupDistinctAndOrdered(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		got := r.Lookup(k, 3)
		if len(got) != 3 {
			t.Fatalf("Lookup(%q, 3) returned %d members", k, len(got))
		}
		if got[0] != r.Owner(k) {
			t.Fatalf("Lookup(%q)[0] = %s != Owner %s", k, got[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("Lookup(%q) repeated member %s", k, m)
			}
			seen[m] = true
		}
	}
	if got := r.Lookup("k", 0); len(got) != 4 {
		t.Errorf("Lookup(k, 0) = %d members, want all 4", len(got))
	}
	if got := r.Lookup("k", 99); len(got) != 4 {
		t.Errorf("Lookup(k, 99) = %d members, want all 4", len(got))
	}
}

// TestRingMinimalRemap is the deterministic-rebalancing property behind
// "a killed backend's keys redistribute deterministically": removing one
// member reassigns only the keys it owned, every other key keeps its
// owner, and re-adding the member restores the exact previous ownership.
func TestRingMinimalRemap(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	smaller, err := r.Remove("b")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		after := smaller.Owner(k)
		if before[k] == "b" {
			moved++
			if after == "b" {
				t.Fatalf("key %q still owned by removed member", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved from %s to %s although its owner was not removed",
				k, before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; distribution test is vacuous")
	}

	restored, err := smaller.With("b")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if restored.Owner(k) != before[k] {
			t.Fatalf("re-adding the member did not restore ownership of %q", k)
		}
	}
}
