package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 8); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewRing([]string{""}, 8); err == nil {
		t.Error("empty member name accepted")
	}
	r, err := NewRing([]string{"a"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Remove("a"); err == nil {
		t.Error("removing the last member accepted")
	}
	if _, err := r.Remove("nope"); err == nil {
		t.Error("removing an unknown member accepted")
	}
}

func TestRingDeterminism(t *testing.T) {
	r1, err := NewRing([]string{"c", "a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"a", "b", "c"}, 64) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("owner of %q differs across identically-membered rings", k)
		}
		if !reflect.DeepEqual(r1.Lookup(k, 3), r2.Lookup(k, 3)) {
			t.Fatalf("replica order of %q differs across identically-membered rings", k)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for _, k := range testKeys(n) {
		counts[r.Owner(k)]++
	}
	for _, m := range r.Members() {
		frac := float64(counts[m]) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("member %s owns %.1f%% of keys; want a roughly even split: %v",
				m, 100*frac, counts)
		}
	}
}

func TestRingLookupDistinctAndOrdered(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(100) {
		got := r.Lookup(k, 3)
		if len(got) != 3 {
			t.Fatalf("Lookup(%q, 3) returned %d members", k, len(got))
		}
		if got[0] != r.Owner(k) {
			t.Fatalf("Lookup(%q)[0] = %s != Owner %s", k, got[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("Lookup(%q) repeated member %s", k, m)
			}
			seen[m] = true
		}
	}
	if got := r.Lookup("k", 0); len(got) != 4 {
		t.Errorf("Lookup(k, 0) = %d members, want all 4", len(got))
	}
	if got := r.Lookup("k", 99); len(got) != 4 {
		t.Errorf("Lookup(k, 99) = %d members, want all 4", len(got))
	}
}

// TestRingMinimalRemap is the deterministic-rebalancing property behind
// "a killed backend's keys redistribute deterministically": removing one
// member reassigns only the keys it owned, every other key keeps its
// owner, and re-adding the member restores the exact previous ownership.
func TestRingMinimalRemap(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(2000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	smaller, err := r.Remove("b")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		after := smaller.Owner(k)
		if before[k] == "b" {
			moved++
			if after == "b" {
				t.Fatalf("key %q still owned by removed member", k)
			}
			continue
		}
		if after != before[k] {
			t.Fatalf("key %q moved from %s to %s although its owner was not removed",
				k, before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys; distribution test is vacuous")
	}

	restored, err := smaller.With("b")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if restored.Owner(k) != before[k] {
			t.Fatalf("re-adding the member did not restore ownership of %q", k)
		}
	}
}

// TestRingJoinRemapFraction is the join-side minimal-remap bound: adding
// one member to N takes over only ~1/(N+1) of the keys — every remapped key
// moves TO the newcomer, and the measured fraction stays near the ideal
// share rather than the ~100% a naive mod-N scheme would reshuffle.
func TestRingJoinRemapFraction(t *testing.T) {
	keys := testKeys(4000)
	for _, n := range []int{2, 3, 5, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("m%d", i)
		}
		r, err := NewRing(members, DefaultVnodes)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := r.With("joiner")
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			if got := grown.Owner(k); got != r.Owner(k) {
				if got != "joiner" {
					t.Fatalf("n=%d: key %q moved %s -> %s, not to the joiner", n, k, r.Owner(k), got)
				}
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1 / float64(n+1)
		// ε covers vnode placement variance at 128 vnodes/member plus key
		// sampling noise: the join must stay within 2x of its ideal share
		// and far below a full reshuffle.
		if frac > 2*ideal || frac < ideal/3 {
			t.Errorf("n=%d: join remapped %.3f of keys, want ~%.3f (minimal remap)", n, frac, ideal)
		}
		// remapFraction (the admin metric) must agree with the direct count.
		if mf := remapFraction(r, grown); mf > 2*ideal || mf < ideal/3 {
			t.Errorf("n=%d: remapFraction = %.3f, want ~%.3f", n, mf, ideal)
		}
	}
}

// TestRingShares checks the key-space accounting the topology endpoint
// reports: shares sum to 1 and track each member's sampled key ownership.
func TestRingShares(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, DefaultVnodes)
	if err != nil {
		t.Fatal(err)
	}
	shares := r.Shares()
	sum := 0.0
	for _, m := range r.Members() {
		s := shares[m]
		if s <= 0 || s >= 1 {
			t.Errorf("share[%s] = %v, want in (0,1)", m, s)
		}
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
	// Shares approximate the measured key distribution.
	counts := map[string]int{}
	keys := testKeys(4000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, m := range r.Members() {
		measured := float64(counts[m]) / float64(len(keys))
		if d := measured - shares[m]; d > 0.05 || d < -0.05 {
			t.Errorf("member %s: arc share %.3f vs measured %.3f", m, shares[m], measured)
		}
	}
}
