package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"hwgc"
	"hwgc/internal/sweep"
)

// sweepPointInflight bounds how many points of one sweep the proxy drives
// concurrently. The fleet fans points out across backends by content key, so
// the real parallelism is the backends' runner pools; this only caps the
// proxy's outstanding submissions and result polls.
const sweepPointInflight = 8

// maxSweepResubmits bounds how many times one point's job is resubmitted
// after an owner stopped knowing it — a backend that died before its WAL
// record landed, a migration window, or a direct client's cancellation.
// Submission is idempotent (the job ID is the content key), so a resubmit
// can never duplicate work that still exists anywhere.
const maxSweepResubmits = 16

// fleetSweeps is the proxy-side sweep engine: it expands a SweepSpace
// locally (the same canonical planner the backends use, so the sweep ID and
// every point key are identical fleet-wide), routes each point's job to the
// backend that owns its content key, polls results with failover, and
// aggregates the frontier at the proxy. State reuses the execution-agnostic
// sweep.Tracker, which makes the aggregated frontier byte-identical to what
// a single gcserved would serve for the same space: both rank the same
// deterministic outcomes through the same pure function.
type fleetSweeps struct {
	f       *Fleet
	metrics *sweep.Metrics

	mu      sync.Mutex
	sweeps  map[string]*sweep.Tracker
	cancels map[string]context.CancelFunc
	wg      sync.WaitGroup
}

func newFleetSweeps(f *Fleet) *fleetSweeps {
	return &fleetSweeps{
		f:       f,
		metrics: sweep.NewMetrics(),
		sweeps:  make(map[string]*sweep.Tracker),
		cancels: make(map[string]context.CancelFunc),
	}
}

// close cancels every point driver and waits for them to exit.
func (fs *fleetSweeps) close() {
	fs.mu.Lock()
	for _, cancel := range fs.cancels {
		cancel()
	}
	fs.mu.Unlock()
	fs.wg.Wait()
}

// submit plans the space and starts driving its points. Idempotent on the
// canonical space: a second submission of the same design returns the
// existing sweep with accepted=false and spawns nothing.
func (fs *fleetSweeps) submit(space *hwgc.SweepSpace, class string) (sweep.Info, bool, error) {
	canon, err := space.CanonicalJSON()
	if err != nil {
		return sweep.Info{}, false, err
	}
	id := hwgc.KeyBytes(canon)
	points, err := space.Points()
	if err != nil {
		return sweep.Info{}, false, err
	}

	fs.mu.Lock()
	defer fs.mu.Unlock()
	if t, ok := fs.sweeps[id]; ok {
		fs.metrics.NoteSweepDeduped()
		return t.Info(), false, nil
	}
	t := sweep.NewTracker(id, space, class, points, fs.metrics, nil)
	fs.sweeps[id] = t
	ctx, cancel := context.WithCancel(context.Background())
	fs.cancels[id] = cancel
	fs.wg.Add(1)
	go fs.run(ctx, t)
	return t.Info(), true, nil
}

// run drives every point of one sweep under the inflight bound.
func (fs *fleetSweeps) run(ctx context.Context, t *sweep.Tracker) {
	defer fs.wg.Done()
	sem := make(chan struct{}, sweepPointInflight)
	var pwg sync.WaitGroup
	for i := range t.Points {
		select {
		case <-ctx.Done():
			pwg.Wait()
			return
		case <-fs.f.stop:
			pwg.Wait()
			return
		case sem <- struct{}{}:
		}
		pwg.Add(1)
		go func(index int) {
			defer pwg.Done()
			defer func() { <-sem }()
			fs.drivePoint(ctx, t, index)
		}(i)
	}
	pwg.Wait()
}

// submitPoint sends one point's job to its ring owner. Returns whether the
// submission was freshly accepted (202) as opposed to deduped onto an
// existing job (200).
func (fs *fleetSweeps) submitPoint(ctx context.Context, t *sweep.Tracker, p hwgc.SweepPoint) (accepted bool, fatal string, err error) {
	fwd := struct {
		Collect json.RawMessage
		Class   string `json:",omitempty"`
	}{Collect: p.Canonical, Class: t.Class}
	body, err := json.Marshal(fwd)
	if err != nil {
		return false, fmt.Sprintf("encoding point: %v", err), nil
	}
	res, err := fs.f.do(ctx, http.MethodPost, "/v1/jobs", p.Key, body)
	if err != nil {
		return false, "", err
	}
	switch {
	case res.status == http.StatusAccepted, res.status == http.StatusOK:
		// Remember the canonical submission so the elastic rebalance pass
		// can rescue this point from a dead owner, exactly like a directly
		// submitted job.
		fs.f.registry.Record(p.Key, body)
		return res.status == http.StatusAccepted, "", nil
	case res.status >= 400 && res.status < 500:
		return false, fmt.Sprintf("point rejected: status %d: %s", res.status, res.body), nil
	default:
		return false, "", fmt.Errorf("point submit status %d", res.status)
	}
}

// drivePoint runs one point to a terminal tracker transition: submit the
// job to its content-key owner, then poll its result with ring failover,
// resubmitting (bounded) when the current owner no longer knows the job.
func (fs *fleetSweeps) drivePoint(ctx context.Context, t *sweep.Tracker, index int) {
	p := t.Points[index]
	resubmits := 0
	accepted, fatal, err := fs.submitPoint(ctx, t, p)
	for err != nil {
		// Transport-level turbulence (all breakers open, fleet restart
		// window): back off on the poll interval and try again until the
		// sweep is cancelled.
		if sleepErr := fs.f.sleep(ctx, fs.f.opts.SweepPoll); sleepErr != nil {
			fs.cancelPoint(t, index)
			return
		}
		accepted, fatal, err = fs.submitPoint(ctx, t, p)
	}
	if fatal != "" {
		fs.failPoint(t, index, fatal)
		return
	}
	deduped := !accepted

	for {
		if err := fs.f.sleep(ctx, fs.f.opts.SweepPoll); err != nil {
			fs.cancelPoint(t, index)
			return
		}
		res, err := fs.f.do(ctx, http.MethodGet, "/v1/jobs/"+p.Key+"/result", p.Key, nil)
		switch {
		case err == nil && res.status == http.StatusOK:
			var resp hwgc.CollectResponse
			if jerr := json.Unmarshal(res.body, &resp); jerr != nil {
				fs.failPoint(t, index, fmt.Sprintf("decoding point result: %v", jerr))
				return
			}
			fs.completePoint(t, index, sweep.PointOutcome{
				Index: index, Key: p.Key, Req: p.Req, Result: resp.Result,
			}, deduped)
			return
		case err == nil && res.status == http.StatusAccepted:
			// Still running on its owner.
		case err == nil && (res.status == http.StatusNotFound || res.status == http.StatusGone):
			// The ring owner does not (or no longer) know the job: it died
			// before the WAL record landed, the job migrated mid-poll, or a
			// direct client cancelled it. Idempotent resubmission re-homes
			// the point on the current owner.
			if resubmits >= maxSweepResubmits {
				fs.failPoint(t, index, fmt.Sprintf("point lost after %d resubmits: status %d", resubmits, res.status))
				return
			}
			resubmits++
			if acc, fatal2, serr := fs.submitPoint(ctx, t, p); serr == nil {
				if fatal2 != "" {
					fs.failPoint(t, index, fatal2)
					return
				}
				if acc {
					deduped = false
					fs.noteJobSubmitted(t)
				}
			}
		case err == nil && res.status == http.StatusBadGateway:
			// The owner answered authoritatively: the job itself failed.
			fs.failPoint(t, index, fmt.Sprintf("point failed: %s", res.body))
			return
		case ctx.Err() != nil:
			fs.cancelPoint(t, index)
			return
			// Everything else — 5xx routing turbulence, ErrNoBackends while
			// breakers cool down, attempt exhaustion — is transient during
			// topology changes; the next poll retries.
		}
	}
}

// Tracker transitions run under the sweep-table lock (the Tracker itself is
// lock-free by contract).
func (fs *fleetSweeps) completePoint(t *sweep.Tracker, index int, o sweep.PointOutcome, deduped bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t.CompletePoint(index, o, deduped)
}

func (fs *fleetSweeps) failPoint(t *sweep.Tracker, index int, msg string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t.FailPoint(index, msg)
}

func (fs *fleetSweeps) cancelPoint(t *sweep.Tracker, index int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t.CancelPoint(index)
}

func (fs *fleetSweeps) noteJobSubmitted(t *sweep.Tracker) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t.NoteJobSubmitted()
}

// get returns a sweep's progress snapshot.
func (fs *fleetSweeps) get(id string) (sweep.Info, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	t, ok := fs.sweeps[id]
	if !ok {
		return sweep.Info{}, false
	}
	return t.Info(), true
}

// cancel stops a running sweep: every pending point transitions to
// cancelled immediately (so the terminal state is deterministic), the point
// drivers are torn down, and the points' backend jobs are cancelled
// best-effort — skipping any job another live sweep still depends on.
func (fs *fleetSweeps) cancel(id string) (sweep.Info, bool, error) {
	fs.mu.Lock()
	t, ok := fs.sweeps[id]
	if !ok {
		fs.mu.Unlock()
		return sweep.Info{}, false, sweep.ErrNotFound
	}
	if t.Terminal() {
		info := t.Info()
		fs.mu.Unlock()
		return info, false, sweep.ErrTerminal
	}
	t.MarkCancelRequested()
	pending := t.PendingKeys()
	shared := make(map[string]bool)
	for oid, other := range fs.sweeps {
		if oid == id || other.Terminal() {
			continue
		}
		for _, k := range other.PendingKeys() {
			shared[k] = true
		}
	}
	if cancel, ok := fs.cancels[id]; ok {
		cancel()
		delete(fs.cancels, id)
	}
	for i := range t.Points {
		t.CancelPoint(i)
	}
	info := t.Info()
	fs.mu.Unlock()

	fs.wg.Add(1)
	go func() {
		defer fs.wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), fs.f.opts.Timeout)
		defer cancel()
		for _, k := range pending {
			if shared[k] {
				continue
			}
			_, _ = fs.f.do(ctx, http.MethodDelete, "/v1/jobs/"+k, k, nil)
		}
	}()
	return info, true, nil
}

// handleSweeps serves POST /v1/sweeps at the fleet: plan locally, fan the
// points out to their cache-owning backends, aggregate here.
func (f *Fleet) handleSweeps(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	raw, err := readAll(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: %v", err)
		return
	}
	var body struct {
		Space *hwgc.SweepSpace
		Class string `json:",omitempty"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	if body.Space == nil {
		writeError(w, http.StatusBadRequest, "Space must be set")
		return
	}
	if err := body.Space.Canonicalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid sweep space: %v", err)
		return
	}
	info, accepted, err := f.sweeps.submit(body.Space, body.Class)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "submitting sweep: %v", err)
		return
	}
	code := http.StatusOK
	if accepted {
		code = http.StatusAccepted
	}
	w.Header().Set("Location", "/v1/sweeps/"+info.ID)
	writeSweepInfoFleet(w, code, info)
}

// handleSweepByID routes /v1/sweeps/{id} and /v1/sweeps/{id}/events at the
// fleet. Sweeps are aggregated at the proxy, so these serve local state —
// no backend round trip.
func (f *Fleet) handleSweepByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/sweeps/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || strings.Contains(sub, "/") {
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			info, ok := f.sweeps.get(id)
			if !ok {
				writeError(w, http.StatusNotFound, "no such sweep %q", id)
				return
			}
			writeSweepInfoFleet(w, http.StatusOK, info)
		case http.MethodDelete:
			info, ok, err := f.sweeps.cancel(id)
			switch {
			case err == sweep.ErrNotFound:
				writeError(w, http.StatusNotFound, "no such sweep %q", id)
			case err == sweep.ErrTerminal:
				writeError(w, http.StatusConflict, "sweep %s is already %s", id, info.State)
			case !ok:
				writeError(w, http.StatusInternalServerError, "cancelling sweep: %v", err)
			default:
				writeSweepInfoFleet(w, http.StatusOK, info)
			}
		default:
			w.Header().Set("Allow", "GET, DELETE")
			writeError(w, http.StatusMethodNotAllowed, "%s requires GET or DELETE", r.URL.Path)
		}
	case "events":
		if !requireGetFleet(w, r) {
			return
		}
		f.serveSweepEventsFleet(w, r, id)
	default:
		writeError(w, http.StatusNotFound, "no such resource %s", r.URL.Path)
	}
}

func writeSweepInfoFleet(w http.ResponseWriter, code int, info sweep.Info) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

// fleetLastEventID mirrors the backend's SSE resume contract: the
// Last-Event-ID header a reconnecting EventSource sends, with
// ?last_event_id= as a curl-friendly fallback.
func fleetLastEventID(r *http.Request) int64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	if v == "" {
		return 0
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// serveSweepEventsFleet streams the aggregated sweep's events as SSE from
// the proxy's own tracker — same wire format and Last-Event-ID resume
// semantics as one gcserved.
func (f *Fleet) serveSweepEventsFleet(w http.ResponseWriter, r *http.Request, id string) {
	f.sweeps.mu.Lock()
	t, ok := f.sweeps.sweeps[id]
	f.sweeps.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such sweep %q", id)
		return
	}
	fl, flok := w.(http.Flusher)
	if !flok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	history, live := t.Events.Subscribe()
	defer t.Events.Unsubscribe(live)
	resumeFrom := fleetLastEventID(r)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	write := func(ev sweep.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return true
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return true
		}
		fl.Flush()
		return ev.Type == sweep.StateDone || ev.Type == sweep.StateCancelled
	}
	for _, ev := range history {
		if ev.Seq <= resumeFrom {
			continue
		}
		if write(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok || write(ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-f.stop:
			return
		}
	}
}
