package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hwgc/internal/sweep"
)

// postSweepFleet submits a sweep body and decodes the Info reply.
func postSweepFleet(t *testing.T, client *http.Client, url, body string) (*http.Response, sweep.Info) {
	t.Helper()
	res, err := client.Post(url+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	var info sweep.Info
	if res.StatusCode == http.StatusOK || res.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(buf.Bytes(), &info); err != nil {
			t.Fatalf("decoding sweep info: %v: %s", err, buf.Bytes())
		}
	}
	return res, info
}

// awaitSweepInfo polls GET {url}/v1/sweeps/{id} until the sweep leaves
// running, invoking tick (when non-nil) between polls.
func awaitSweepInfo(t *testing.T, client *http.Client, url, id string, deadline time.Duration, tick func()) sweep.Info {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		res, err := client.Get(url + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK {
			t.Fatalf("sweep status: %d %s", res.StatusCode, buf.Bytes())
		}
		var info sweep.Info
		if err := json.Unmarshal(buf.Bytes(), &info); err != nil {
			t.Fatalf("decoding sweep info: %v: %s", err, buf.Bytes())
		}
		if info.State != sweep.StateRunning {
			return info
		}
		if time.Now().After(end) {
			t.Fatalf("sweep %s still running: %s", id, buf.Bytes())
		}
		if tick != nil {
			tick()
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// frontierBytes re-marshals a frontier compactly for exact comparison.
func frontierBytes(t *testing.T, fr []sweep.FrontierEntry) []byte {
	t.Helper()
	b, err := json.Marshal(fr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetSweepEndToEnd drives a sweep through the fleet against three
// real backends: the proxy plans the space, routes points by content key,
// aggregates the frontier, serves the SSE stream with Last-Event-ID resume,
// and dedupes an identical resubmission onto the same sweep.
func TestFleetSweepEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e test boots real simulators")
	}

	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := startJobsBackend(t)
		urls = append(urls, ts.URL)
	}
	f, err := New(Options{
		Backends:       urls,
		HealthInterval: -1,
		SweepPoll:      10 * time.Millisecond,
		Timeout:        30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fleet := httptest.NewServer(f.Handler())
	defer fleet.Close()
	client := &http.Client{Timeout: time.Minute}

	const body = `{"Space":{"Benches":["jlisp"],"Seeds":[31],"Base":{},"Axes":[{"Field":"Cores","Values":[1,2,4]}]}}`
	res, info := postSweepFleet(t, client, fleet.URL, body)
	if res.StatusCode != http.StatusAccepted || info.Points != 3 {
		t.Fatalf("submit: status %d info %+v", res.StatusCode, info)
	}
	if loc := res.Header.Get("Location"); loc != "/v1/sweeps/"+info.ID {
		t.Fatalf("Location = %q", loc)
	}

	// An identical space dedupes onto the running sweep: 200, same ID.
	res2, info2 := postSweepFleet(t, client, fleet.URL, body)
	if res2.StatusCode != http.StatusOK || info2.ID != info.ID {
		t.Fatalf("resubmit: status %d id %s, want 200 + %s", res2.StatusCode, info2.ID, info.ID)
	}

	done := awaitSweepInfo(t, client, fleet.URL, info.ID, 60*time.Second, nil)
	if done.State != sweep.StateDone || done.Completed != 3 || done.Failed != 0 {
		t.Fatalf("final info = %+v", done)
	}
	if len(done.Frontier) != 3 || done.Frontier[0].Rank != 1 {
		t.Fatalf("frontier = %+v", done.Frontier)
	}

	// The fleet's sweep ID and frontier match a single backend running the
	// same space directly (same canonical planner, same pure ranking).
	sres, sinfo := postSweepFleet(t, client, urls[0], body)
	if sres.StatusCode != http.StatusOK && sres.StatusCode != http.StatusAccepted {
		t.Fatalf("backend sweep: status %d", sres.StatusCode)
	}
	if sinfo.ID != info.ID {
		t.Fatalf("backend sweep ID %s, fleet %s", sinfo.ID, info.ID)
	}
	sdone := awaitSweepInfo(t, client, urls[0], info.ID, 60*time.Second, nil)
	if !bytes.Equal(frontierBytes(t, done.Frontier), frontierBytes(t, sdone.Frontier)) {
		t.Fatal("fleet frontier differs from single-backend frontier")
	}

	// SSE: read two events, drop the connection, resume via Last-Event-ID.
	sseReq, _ := http.NewRequest(http.MethodGet, fleet.URL+"/v1/sweeps/"+info.ID+"/events", nil)
	sseRes, err := client.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	type frame struct {
		id    int64
		event string
	}
	readFrames := func(res *http.Response, max int) []frame {
		t.Helper()
		if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("Content-Type = %q", ct)
		}
		var frames []frame
		var cur frame
		sc := bufio.NewScanner(res.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				fmt.Sscanf(line, "id: %d", &cur.id)
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case line == "":
				frames = append(frames, cur)
				cur = frame{}
				if max > 0 && len(frames) >= max {
					return frames
				}
			}
		}
		return frames
	}
	head := readFrames(sseRes, 2)
	sseRes.Body.Close()
	if len(head) != 2 || head[0].event != "planned" {
		t.Fatalf("head frames = %+v", head)
	}
	resumeReq, _ := http.NewRequest(http.MethodGet, fleet.URL+"/v1/sweeps/"+info.ID+"/events", nil)
	resumeReq.Header.Set("Last-Event-ID", fmt.Sprint(head[1].id))
	resumeRes, err := client.Do(resumeReq)
	if err != nil {
		t.Fatal(err)
	}
	tail := readFrames(resumeRes, 0)
	resumeRes.Body.Close()
	if len(tail) == 0 {
		t.Fatal("no frames after resume")
	}
	seen := head[1].id
	for _, fr := range tail {
		if fr.id != seen+1 {
			t.Fatalf("resume gap or duplicate: %d after %d", fr.id, seen)
		}
		seen = fr.id
	}
	if tail[len(tail)-1].event != sweep.StateDone {
		t.Fatalf("stream ended on %q", tail[len(tail)-1].event)
	}

	// Cancelling a finished sweep is an authoritative conflict.
	dreq, _ := http.NewRequest(http.MethodDelete, fleet.URL+"/v1/sweeps/"+info.ID, nil)
	dres, err := client.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dres.Body.Close()
	if dres.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done sweep: status %d, want 409", dres.StatusCode)
	}

	// The proxy aggregator's gcsweep_* series ride the fleet scrape.
	mres, err := client.Get(fleet.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mres.Body)
	mres.Body.Close()
	for _, want := range []string{
		"gcsweep_sweeps_submitted_total 1",
		"gcsweep_sweeps_deduped_total 1",
		"gcsweep_points_planned_total 3",
		"gcsweep_points_completed_total 3",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("fleet metrics missing %q", want)
		}
	}
}

// TestSweepChaosE2E is the acceptance chaos run from the issue: a 64-point
// sweep fanned out over a three-backend fleet, with one backend killed hard
// and a fourth joined mid-sweep. The sweep must complete with zero lost or
// duplicated points, and the aggregated frontier must be byte-identical to
// a single gcserved running the identical space.
func TestSweepChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e boots real simulators")
	}

	var backends []*httptest.Server
	for i := 0; i < 3; i++ {
		_, ts := startJobServed(t)
		backends = append(backends, ts)
	}
	_, joiner := startJobServed(t) // running, but not yet a fleet member
	_, reference := startJobServed(t)

	f, err := New(Options{
		Backends:         []string{backends[0].URL, backends[1].URL, backends[2].URL},
		Replicas:         2,
		MaxAttempts:      4,
		BaseBackoff:      5 * time.Millisecond,
		MaxBackoff:       50 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // the kill stays visible: no half-open flapping
		HealthInterval:   200 * time.Millisecond,
		SweepPoll:        20 * time.Millisecond,
		ExportWait:       10 * time.Second,
		Timeout:          30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start() // probes trip the victim's breaker → automatic rebalance
	defer f.Close()
	fleet := httptest.NewServer(f.Handler())
	defer fleet.Close()
	client := &http.Client{Timeout: time.Minute}

	// 16 seeds x 4 core counts = 64 points.
	const body = `{"Space":{"Benches":["jlisp"],"Seeds":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16],"Base":{},"Axes":[{"Field":"Cores","Values":[1,2,4,8]}]}}`
	res, info := postSweepFleet(t, client, fleet.URL, body)
	if res.StatusCode != http.StatusAccepted || info.Points != 64 {
		t.Fatalf("submit: status %d info %+v", res.StatusCode, info)
	}

	// Let the fan-out get into the work, then unleash the chaos: a fourth
	// backend joins through the admin API and one original member dies hard.
	time.Sleep(150 * time.Millisecond)
	joinBody, _ := json.Marshal(addBackendBody{URL: joiner.URL})
	jres, err := client.Post(fleet.URL+"/v1/admin/backends", "application/json", bytes.NewReader(joinBody))
	if err != nil {
		t.Fatal(err)
	}
	var jbuf bytes.Buffer
	jbuf.ReadFrom(jres.Body)
	jres.Body.Close()
	if jres.StatusCode != http.StatusCreated {
		t.Fatalf("join: %d: %s", jres.StatusCode, jbuf.Bytes())
	}
	backends[0].CloseClientConnections()
	backends[0].Close()

	// Synchronous rebalance kicks accelerate recovery (checkpoint migration
	// from live sources, registry rescue for the dead victim's jobs) while
	// the fleet's own 404-driven resubmission re-homes orphaned points.
	var lastKick time.Time
	kick := func() {
		if time.Since(lastKick) < 300*time.Millisecond {
			return
		}
		lastKick = time.Now()
		res, err := client.Post(fleet.URL+"/v1/admin/rebalance", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
	}
	done := awaitSweepInfo(t, client, fleet.URL, info.ID, 180*time.Second, kick)

	// Zero lost points (all 64 completed), zero failures or cancellations,
	// and the tracker's single-transition-per-point contract means zero
	// duplicated completions.
	if done.State != sweep.StateDone || done.Completed != 64 || done.Failed != 0 || done.Cancelled != 0 {
		t.Fatalf("final info = %+v", done)
	}
	mres, err := client.Get(fleet.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mres.Body)
	mres.Body.Close()
	for _, want := range []string{
		"gcsweep_points_planned_total 64",
		"gcsweep_points_completed_total 64",
		"gcsweep_points_failed_total 0",
		"gcsweep_sweeps_completed_total 1",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("fleet metrics missing %q", want)
		}
	}

	// The same space on an untouched single node must produce the same sweep
	// ID and a byte-identical frontier: the planner is canonical and the
	// ranking is a pure function of deterministic outcomes.
	rres, rinfo := postSweepFleet(t, client, reference.URL, body)
	if rres.StatusCode != http.StatusAccepted {
		t.Fatalf("reference sweep: status %d", rres.StatusCode)
	}
	if rinfo.ID != info.ID {
		t.Fatalf("reference sweep ID %s, fleet %s", rinfo.ID, info.ID)
	}
	rdone := awaitSweepInfo(t, client, reference.URL, info.ID, 180*time.Second, nil)
	if rdone.State != sweep.StateDone || rdone.Completed != 64 {
		t.Fatalf("reference final info = %+v", rdone)
	}
	if !bytes.Equal(frontierBytes(t, done.Frontier), frontierBytes(t, rdone.Frontier)) {
		t.Fatalf("fleet frontier is not byte-identical to the single-node reference:\nfleet: %s\nref:   %s",
			frontierBytes(t, done.Frontier), frontierBytes(t, rdone.Frontier))
	}
}
