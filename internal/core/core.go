// Package core ties the paper's primary contribution together: it builds
// benchmark heaps, runs the simulated multi-core GC coprocessor
// (internal/machine) over them, verifies every collection against the
// reference oracle (internal/gcalgo), and exposes the sweep helpers the
// experiment harness and the public API are built on.
package core

import (
	"fmt"

	"hwgc/internal/gcalgo"
	"hwgc/internal/heap"
	"hwgc/internal/machine"
	"hwgc/internal/workload"
)

// Config re-exports the coprocessor configuration.
type Config = machine.Config

// Stats re-exports the per-collection statistics.
type Stats = machine.Stats

// DefaultSeed is the seed used by the experiment harness, chosen once so
// every table and figure is reproducible bit for bit.
const DefaultSeed int64 = 42

// DefaultHeadroom follows the paper's rule of thumb of dimensioning the heap
// at twice the minimal size.
const DefaultHeadroom = 2.0

// RunResult describes one verified collection of one benchmark heap.
type RunResult struct {
	Benchmark string
	Stats     Stats
	// PlanObjects/PlanWords: total allocated (live + garbage).
	PlanObjects int
	PlanWords   int
	// LiveObjects/LiveWords: reachable from the roots, i.e. surviving.
	LiveObjects int
	LiveWords   int
}

// BuildBench constructs a fresh heap for the named benchmark.
func BuildBench(bench string, scale int, seed int64) (*heap.Heap, *workload.Plan, error) {
	spec, err := workload.Get(bench)
	if err != nil {
		return nil, nil, err
	}
	if scale < 1 {
		scale = 1
	}
	plan := spec.Plan(scale, seed)
	h, err := plan.BuildHeap(DefaultHeadroom)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building %s: %w", bench, err)
	}
	return h, plan, nil
}

// CollectOnce runs a single simulated collection cycle over h and, when
// verify is set, checks the result against the reference oracle.
func CollectOnce(h *heap.Heap, cfg Config, verify bool) (Stats, error) {
	// With the built-in concurrent mutator the heap graph changes during the
	// collection, so the stop-the-world oracle cannot predict the outcome;
	// verification falls back to the structural integrity check.
	concurrent := cfg.WithDefaults().MutatorOps > 0
	var before *gcalgo.Graph
	if verify && !concurrent {
		var err error
		before, err = gcalgo.Snapshot(h)
		if err != nil {
			return Stats{}, fmt.Errorf("core: pre-GC snapshot: %w", err)
		}
	}
	m, err := machine.New(h, cfg)
	if err != nil {
		return Stats{}, err
	}
	st, err := m.Collect()
	if err != nil {
		return Stats{}, err
	}
	if verify {
		if concurrent {
			if err := h.CheckIntegrity(); err != nil {
				return Stats{}, fmt.Errorf("core: concurrent collection verification failed: %w", err)
			}
		} else if err := gcalgo.VerifyCollection(before, h); err != nil {
			return Stats{}, fmt.Errorf("core: collection verification failed: %w", err)
		}
	}
	return st, nil
}

// RunBenchmark builds the named benchmark at the given scale/seed and runs
// one verified collection with cfg.
func RunBenchmark(bench string, scale int, seed int64, cfg Config, verify bool) (RunResult, error) {
	h, plan, err := BuildBench(bench, scale, seed)
	if err != nil {
		return RunResult{}, err
	}
	st, err := CollectOnce(h, cfg, verify)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: %s: %w", bench, err)
	}
	liveObj, liveWords := plan.LiveStats()
	return RunResult{
		Benchmark:   bench,
		Stats:       st,
		PlanObjects: len(plan.Objs),
		PlanWords:   plan.Words(),
		LiveObjects: liveObj,
		LiveWords:   liveWords,
	}, nil
}

// RunPlan builds a heap from a custom (user-supplied) plan and runs one
// collection with cfg, optionally verified. name labels the result.
func RunPlan(name string, plan *workload.Plan, cfg Config, verify bool) (RunResult, error) {
	if err := plan.Validate(); err != nil {
		return RunResult{}, err
	}
	h, err := plan.BuildHeap(DefaultHeadroom)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: building plan: %w", err)
	}
	st, err := CollectOnce(h, cfg, verify)
	if err != nil {
		return RunResult{}, fmt.Errorf("core: %s: %w", name, err)
	}
	liveObj, liveWords := plan.LiveStats()
	return RunResult{
		Benchmark:   name,
		Stats:       st,
		PlanObjects: len(plan.Objs),
		PlanWords:   plan.Words(),
		LiveObjects: liveObj,
		LiveWords:   liveWords,
	}, nil
}

// SweepCores runs the benchmark once per core count (on identically built
// fresh heaps) and returns the results in order. This is the measurement
// underlying the paper's Figures 5 and 6 and Table I.
func SweepCores(bench string, coreCounts []int, scale int, seed int64, cfg Config, verify bool) ([]RunResult, error) {
	out := make([]RunResult, 0, len(coreCounts))
	for _, n := range coreCounts {
		c := cfg
		c.Cores = n
		r, err := RunBenchmark(bench, scale, seed, c, verify)
		if err != nil {
			return nil, fmt.Errorf("core: sweep %s at %d cores: %w", bench, n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// PaperCoreCounts are the coprocessor sizes measured in the paper.
var PaperCoreCounts = []int{1, 2, 4, 8, 16}
