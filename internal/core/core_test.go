package core

import (
	"testing"

	"hwgc/internal/workload"
)

func TestBuildBench(t *testing.T) {
	h, plan, err := BuildBench("jlisp", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if h.UsedWords() != plan.Words() {
		t.Fatalf("heap holds %d words, plan says %d", h.UsedWords(), plan.Words())
	}
	if _, _, err := BuildBench("nope", 1, 7); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// Scale below 1 is clamped.
	if _, _, err := BuildBench("jlisp", 0, 7); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchmarkVerified(t *testing.T) {
	r, err := RunBenchmark("jlisp", 1, 7, Config{Cores: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Benchmark != "jlisp" || r.Stats.Cycles <= 0 {
		t.Fatalf("result incomplete: %+v", r)
	}
	if r.LiveObjects <= 0 || r.LiveObjects >= r.PlanObjects {
		t.Fatalf("live/plan accounting wrong: %+v", r)
	}
	if int64(r.LiveObjects) != r.Stats.LiveObjects {
		t.Fatalf("plan live %d vs machine live %d", r.LiveObjects, r.Stats.LiveObjects)
	}
}

func TestSweepCores(t *testing.T) {
	res, err := SweepCores("jlisp", []int{1, 2, 4}, 1, 7, Config{}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	// Fresh identical heaps: live sets identical across the sweep.
	for _, r := range res[1:] {
		if r.LiveObjects != res[0].LiveObjects {
			t.Fatalf("sweep not on identical heaps: %d vs %d", r.LiveObjects, res[0].LiveObjects)
		}
	}
	// More cores never slower for a parallel-friendly benchmark.
	if res[2].Stats.Cycles >= res[0].Stats.Cycles {
		t.Fatalf("4 cores (%d cycles) not faster than 1 (%d)", res[2].Stats.Cycles, res[0].Stats.Cycles)
	}
}

func TestCollectOnceDetectsForeignCorruption(t *testing.T) {
	// CollectOnce with verify must pass on a clean heap.
	h, _, err := BuildBench("jlisp", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CollectOnce(h, Config{Cores: 2}, true); err != nil {
		t.Fatal(err)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	if _, err := SweepCores("unknown-bench", []int{1}, 1, 7, Config{}, false); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := SweepCores("jlisp", []int{-3}, 1, 7, Config{}, false); err == nil {
		t.Fatal("invalid core count accepted")
	}
}

func TestPaperCoreCounts(t *testing.T) {
	if len(PaperCoreCounts) != 5 || PaperCoreCounts[0] != 1 || PaperCoreCounts[4] != 16 {
		t.Fatalf("paper core counts wrong: %v", PaperCoreCounts)
	}
	for _, n := range PaperCoreCounts {
		if _, err := workload.Get("jlisp"); err != nil {
			t.Fatal(err)
		}
		_ = n
	}
}
