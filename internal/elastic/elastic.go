// Package elastic implements live job migration for a dynamic gcfleet:
// when the backend set changes — a backend joins, is removed, or its
// circuit breaker opens — the jobs whose content key now routes elsewhere
// are shipped to their new owner as S21 checkpoint envelopes and resumed
// there byte-identically.
//
// The driver applies the paper's synchronization discipline at fleet
// granularity. The uncontended path is free: a topology change moves only
// the minimal-remap fraction of keys (~1/N for one of N backends), and a
// job whose owner did not change is never touched. Contention is bounded: a
// migrating job loses at most the work since its last snapshot boundary —
// which is zero, because the snapshot restore contract makes the resumed
// run bit-identical. And every transfer is accounted for (jobs migrated,
// bytes shipped, latency, verification outcomes).
//
// Zero-loss ordering: a job is released on its source only after its
// envelope has been imported on the destination and the import receipt
// verified. A failure at any step leaves the job runnable somewhere, and
// because imports are idempotent by content key, replaying a migration (or
// racing two) cannot duplicate work. When a source is dead — its
// checkpoints unreachable — the fleet's submission registry resubmits the
// job to the new owner from scratch; determinism makes the re-run's result
// byte-identical, so only time is lost.
package elastic

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"hwgc/internal/jobs"
)

// BackendInfo describes one backend as the migration driver sees it.
type BackendInfo struct {
	ID  string
	URL string // base URL, no trailing slash
	// Admissible means the backend is reachable for requests right now
	// (breaker not open). Inadmissible backends are never destinations this
	// pass; they are still tried as sources — their API may answer even with
	// the breaker open — and fall back to registry rescue if it does not.
	Admissible bool
	// Removed means the backend has left the ring: it no longer owns any
	// keys, so it can only be a migration source, never a destination.
	Removed bool
}

// Plan is one rebalance pass's view of the fleet, built by the cluster tier
// from an immutable snapshot of the ring and breaker states.
type Plan struct {
	Backends []BackendInfo
	// Replicas returns the candidate owners of a content key in ring order
	// (the fleet's replicasFor over the post-change ring).
	Replicas func(key string) []string
	// Registry maps known job IDs to their canonical POST /v1/jobs bodies.
	// It is the rescue path: when no live backend holds a job, it is
	// resubmitted to its owner from scratch.
	Registry map[string][]byte
}

// Report summarizes one rebalance pass.
type Report struct {
	Scanned     int // active jobs enumerated across live backends
	Moved       int // jobs migrated by checkpoint transfer
	Resubmitted int // jobs rescued from the registry (source dead)
	Verified    int // import receipts that matched the exported position
	Failed      int // migrations or rescues that failed this pass
}

// Migrator ships checkpoints between backends over their gcserved APIs.
type Migrator struct {
	// Client issues the HTTP requests (default http.DefaultClient).
	Client *http.Client
	// Metrics receives the gcelastic_* counters (optional).
	Metrics *Metrics
	// Logf, when set, receives progress and failure lines.
	Logf func(format string, args ...any)
	// ExportWait bounds how long one export waits for a running job to
	// reach its next snapshot boundary (default 30s).
	ExportWait time.Duration
}

func (m *Migrator) client() *http.Client {
	if m.Client != nil {
		return m.Client
	}
	return http.DefaultClient
}

func (m *Migrator) logf(format string, args ...any) {
	if m.Logf != nil {
		m.Logf(format, args...)
	}
}

func (m *Migrator) metric(f func(*Metrics)) {
	if m.Metrics != nil {
		f(m.Metrics)
	}
}

// errSkip marks a job that needs no action this pass (it finished or moved
// between the listing and the export); not a failure.
var errSkip = fmt.Errorf("elastic: nothing to migrate")

// Rebalance runs one migration pass over the plan: every active job on a
// live backend whose content key routes to a different live owner is
// checkpoint-migrated there, and registry jobs that no live backend holds
// are resubmitted to their owner. Rebalance is idempotent — a second pass
// over the same topology finds nothing to move — and safe to re-run after
// partial failure.
func (m *Migrator) Rebalance(ctx context.Context, p Plan) Report {
	var rep Report
	m.metric(func(mm *Metrics) { mm.rebalances.Add(1) })
	dests := make(map[string]BackendInfo)
	for _, b := range p.Backends {
		if b.Admissible && !b.Removed {
			dests[b.ID] = b
		}
	}
	seen := make(map[string]bool)
	// Every backend is a potential source, including inadmissible ones: a
	// member whose breaker opened is exactly the source whose jobs must move,
	// and listing it either works (its API still answers) or fails fast and
	// degrades to the registry rescue below.
	for _, src := range p.Backends {
		infos, err := m.listActive(ctx, src)
		if err != nil {
			// Count the failure so the cluster tier retains this source for
			// the next pass instead of forgetting a possibly-undrained one.
			rep.Failed++
			m.metric(func(mm *Metrics) { mm.migrationsFailed.Add(1) })
			m.logf("elastic: listing jobs on %s: %v", src.ID, err)
			continue
		}
		for _, info := range infos {
			seen[info.ID] = true
			rep.Scanned++
			ownerID := m.ownerFor(p, dests, info.ID)
			if ownerID == "" || ownerID == src.ID {
				continue
			}
			err := m.migrate(ctx, src, dests[ownerID], info.ID, &rep)
			switch {
			case err == nil:
				m.logf("elastic: migrated job %s: %s -> %s", shortID(info.ID), src.ID, ownerID)
			case err == errSkip:
			default:
				rep.Failed++
				m.metric(func(mm *Metrics) { mm.migrationsFailed.Add(1) })
				m.logf("elastic: migrating job %s from %s to %s: %v", shortID(info.ID), src.ID, ownerID, err)
			}
		}
	}
	// Rescue pass: registry jobs no live backend holds (their owner died
	// before exporting) restart from scratch on the new owner.
	ids := make([]string, 0, len(p.Registry))
	for id := range p.Registry {
		if !seen[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		ownerID := m.ownerFor(p, dests, id)
		if ownerID == "" {
			continue
		}
		dst := dests[ownerID]
		if m.jobKnown(ctx, dst, id) {
			continue // already done or adopted there
		}
		if err := m.resubmit(ctx, dst, p.Registry[id]); err != nil {
			rep.Failed++
			m.metric(func(mm *Metrics) { mm.migrationsFailed.Add(1) })
			m.logf("elastic: resubmitting job %s to %s: %v", shortID(id), ownerID, err)
			continue
		}
		rep.Resubmitted++
		m.metric(func(mm *Metrics) { mm.jobsResubmitted.Add(1) })
		m.logf("elastic: resubmitted job %s to %s (source dead)", shortID(id), ownerID)
	}
	return rep
}

// ownerFor returns the first replica of key that is a live destination.
func (m *Migrator) ownerFor(p Plan, dests map[string]BackendInfo, key string) string {
	for _, id := range p.Replicas(key) {
		if _, ok := dests[id]; ok {
			return id
		}
	}
	return ""
}

// migrate ships one job from src to dst with the zero-loss ordering:
// export (non-destructive) -> import -> verify receipt -> release source.
func (m *Migrator) migrate(ctx context.Context, src, dst BackendInfo, id string, rep *Report) error {
	start := time.Now()
	raw, env, err := m.export(ctx, src, id)
	if err != nil {
		return err
	}
	receipt, err := m.importTo(ctx, dst, id, raw)
	if err != nil {
		return err
	}
	if receipt.Info.ID != id {
		return fmt.Errorf("import receipt names job %s", receipt.Info.ID)
	}
	if receipt.Accepted && receipt.Info.Point != env.Point {
		return fmt.Errorf("import adopted point %d, exported %d", receipt.Info.Point, env.Point)
	}
	rep.Verified++
	m.metric(func(mm *Metrics) { mm.migrationsVerified.Add(1) })
	// The import is verified: releasing the source cannot lose the job any
	// more. A failed release just leaves it running in both places until
	// the next pass — harmless, since results are deterministic and imports
	// dedupe.
	if err := m.release(ctx, src, id); err != nil {
		m.logf("elastic: releasing job %s on %s after verified import: %v", shortID(id), src.ID, err)
	}
	rep.Moved++
	m.metric(func(mm *Metrics) {
		mm.jobsMigrated.Add(1)
		mm.migrationBytes.Add(int64(len(raw)))
		mm.ObserveMigration(time.Since(start))
	})
	return nil
}

// jobListBody mirrors gcserved's GET /v1/jobs response.
type jobListBody struct {
	Jobs []jobs.Info
}

// importReceipt mirrors gcserved's PUT /v1/jobs/{id}/checkpoint response.
type importReceipt struct {
	Info     jobs.Info
	Accepted bool
	Point    int
	Cycle    int64
	SnapCRC  uint32
}

func (m *Migrator) listActive(ctx context.Context, b BackendInfo) ([]jobs.Info, error) {
	var body jobListBody
	if err := m.getJSON(ctx, b.URL+"/v1/jobs?active=true", &body); err != nil {
		return nil, err
	}
	return body.Jobs, nil
}

// export fetches a job's envelope, returning both the raw bytes (forwarded
// verbatim to the destination, so the CRC protects the whole hop) and the
// decoded form (for receipt verification).
func (m *Migrator) export(ctx context.Context, b BackendInfo, id string) ([]byte, *jobs.ExportedJob, error) {
	wait := m.ExportWait
	if wait <= 0 {
		wait = 30 * time.Second
	}
	u := b.URL + "/v1/jobs/" + url.PathEscape(id) + "/checkpoint?wait=" + url.QueryEscape(wait.String())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := m.client().Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict, http.StatusNotFound:
		// Finished, already migrated, or compacted away since the listing.
		return nil, nil, errSkip
	default:
		return nil, nil, fmt.Errorf("export: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
	}
	var env jobs.ExportedJob
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, nil, fmt.Errorf("export: decoding envelope: %w", err)
	}
	return raw, &env, nil
}

func (m *Migrator) importTo(ctx context.Context, b BackendInfo, id string, raw []byte) (*importReceipt, error) {
	u := b.URL + "/v1/jobs/" + url.PathEscape(id) + "/checkpoint"
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, u, strings.NewReader(string(raw)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("import: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var receipt importReceipt
	if err := json.Unmarshal(data, &receipt); err != nil {
		return nil, fmt.Errorf("import: decoding receipt: %w", err)
	}
	return &receipt, nil
}

func (m *Migrator) release(ctx context.Context, b BackendInfo, id string) error {
	u := b.URL + "/v1/jobs/" + url.PathEscape(id) + "/checkpoint"
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, u, nil)
	if err != nil {
		return err
	}
	resp, err := m.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK, http.StatusNotFound:
		return nil
	case http.StatusConflict:
		return nil // already terminal: nothing left to release
	default:
		return fmt.Errorf("release: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
}

// jobKnown reports whether b already knows the job (any state).
func (m *Migrator) jobKnown(ctx context.Context, b BackendInfo, id string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return false
	}
	resp, err := m.client().Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// resubmit POSTs a canonical submit body to b's /v1/jobs.
func (m *Migrator) resubmit(ctx context.Context, b BackendInfo, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.URL+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("resubmit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return nil
}

// getJSON GETs u and decodes the 200 response into v.
func (m *Migrator) getJSON(ctx context.Context, u string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := m.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return json.Unmarshal(data, v)
}

// shortID abbreviates a job ID for log lines.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
