package elastic

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"hwgc/internal/jobs"
)

// scriptedBackend is a fake gcserved that answers the five migration
// endpoints from a script and records every call in order.
type scriptedBackend struct {
	ts *httptest.Server

	mu    sync.Mutex
	calls []string // "METHOD path"

	list         []jobs.Info // GET /v1/jobs?active=true
	exportStatus int         // GET /v1/jobs/{id}/checkpoint (0 → 200 + envelope)
	envelope     *jobs.ExportedJob
	importStatus int // PUT status (0 → 201 + receipt)
	receipt      *importReceipt
	known        bool // GET /v1/jobs/{id} answers 200
	submitStatus int  // POST /v1/jobs (0 → 202)
}

func newScriptedBackend(t *testing.T) *scriptedBackend {
	t.Helper()
	sb := &scriptedBackend{}
	sb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sb.mu.Lock()
		sb.calls = append(sb.calls, r.Method+" "+r.URL.Path)
		sb.mu.Unlock()
		switch {
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs":
			_ = json.NewEncoder(w).Encode(jobListBody{Jobs: sb.list})
		case strings.HasSuffix(r.URL.Path, "/checkpoint"):
			switch r.Method {
			case http.MethodGet:
				if sb.exportStatus != 0 {
					http.Error(w, "scripted export failure", sb.exportStatus)
					return
				}
				_ = json.NewEncoder(w).Encode(sb.envelope)
			case http.MethodPut:
				if sb.importStatus != 0 {
					http.Error(w, "scripted import failure", sb.importStatus)
					return
				}
				w.WriteHeader(http.StatusCreated)
				_ = json.NewEncoder(w).Encode(sb.receipt)
			case http.MethodDelete:
				fmt.Fprint(w, `{}`)
			}
		case r.Method == http.MethodGet: // GET /v1/jobs/{id}
			if sb.known {
				fmt.Fprint(w, `{}`)
				return
			}
			http.Error(w, "no such job", http.StatusNotFound)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			if sb.submitStatus != 0 {
				http.Error(w, "scripted submit failure", sb.submitStatus)
				return
			}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{}`)
		default:
			http.Error(w, "unscripted", http.StatusTeapot)
		}
	}))
	t.Cleanup(sb.ts.Close)
	return sb
}

func (sb *scriptedBackend) callLog() []string {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return append([]string(nil), sb.calls...)
}

func (sb *scriptedBackend) info(id string) BackendInfo {
	return BackendInfo{ID: id, URL: sb.ts.URL, Admissible: true}
}

const testJobID = "cafe0000cafe0000cafe0000cafe0000cafe0000cafe0000cafe0000cafe0000"

func planFor(src, dst BackendInfo, ownerOrder ...string) Plan {
	return Plan{
		Backends: []BackendInfo{src, dst},
		Replicas: func(string) []string { return ownerOrder },
	}
}

// TestRebalanceZeroLossOrdering drives one clean migration and checks the
// ordering contract: the source is released only after the destination's
// import receipt verified, and the pass accounts every step.
func TestRebalanceZeroLossOrdering(t *testing.T) {
	src := newScriptedBackend(t)
	dst := newScriptedBackend(t)
	src.list = []jobs.Info{{ID: testJobID, State: jobs.StateCheckpointed, Point: 1}}
	src.envelope = &jobs.ExportedJob{V: 1, ID: testJobID, State: jobs.StateCheckpointed, Point: 1}
	dst.receipt = &importReceipt{Info: jobs.Info{ID: testJobID, Point: 1}, Accepted: true, Point: 1}

	met := NewMetrics()
	m := &Migrator{Metrics: met, Logf: t.Logf}
	rep := m.Rebalance(context.Background(), planFor(src.info("src"), dst.info("dst"), "dst", "src"))

	want := Report{Scanned: 1, Moved: 1, Verified: 1}
	if rep != want {
		t.Fatalf("report = %+v, want %+v", rep, want)
	}
	// The destination imported before the source released.
	ckpt := "/v1/jobs/" + testJobID + "/checkpoint"
	srcLog, dstLog := src.callLog(), dst.callLog()
	if len(srcLog) < 3 || srcLog[len(srcLog)-1] != "DELETE "+ckpt {
		t.Fatalf("source call log %v: release must be the last source call", srcLog)
	}
	var dstCkpt []string
	for _, c := range dstLog {
		if strings.Contains(c, "/checkpoint") {
			dstCkpt = append(dstCkpt, c)
		}
	}
	if len(dstCkpt) != 1 || dstCkpt[0] != "PUT "+ckpt {
		t.Fatalf("destination checkpoint calls %v, want exactly one import", dstCkpt)
	}
	if met.JobsMigrated() != 1 || met.MigrationsVerified() != 1 || met.MigrationBytes() == 0 {
		t.Errorf("metrics migrated=%d verified=%d bytes=%d",
			met.JobsMigrated(), met.MigrationsVerified(), met.MigrationBytes())
	}

	// A job whose key still routes to its source is never touched.
	src.mu.Lock()
	src.calls = nil
	src.mu.Unlock()
	rep = m.Rebalance(context.Background(), planFor(src.info("src"), dst.info("dst"), "src", "dst"))
	if rep.Moved != 0 || rep.Failed != 0 {
		t.Fatalf("stable-owner pass moved %d failed %d", rep.Moved, rep.Failed)
	}
	for _, c := range src.callLog() {
		if strings.HasPrefix(c, "GET "+ckpt) || strings.HasPrefix(c, "DELETE ") {
			t.Fatalf("stable-owner pass touched the job: %v", src.callLog())
		}
	}
}

// TestRebalanceVerifyGate: a receipt that does not match the exported
// position fails the migration and the source is NOT released.
func TestRebalanceVerifyGate(t *testing.T) {
	src := newScriptedBackend(t)
	dst := newScriptedBackend(t)
	src.list = []jobs.Info{{ID: testJobID, State: jobs.StateCheckpointed, Point: 2}}
	src.envelope = &jobs.ExportedJob{V: 1, ID: testJobID, State: jobs.StateCheckpointed, Point: 2}
	dst.receipt = &importReceipt{Info: jobs.Info{ID: testJobID, Point: 0}, Accepted: true, Point: 0}

	m := &Migrator{Logf: t.Logf}
	rep := m.Rebalance(context.Background(), planFor(src.info("src"), dst.info("dst"), "dst"))
	if rep.Failed != 1 || rep.Moved != 0 || rep.Verified != 0 {
		t.Fatalf("report = %+v, want 1 failure, nothing moved", rep)
	}
	for _, c := range src.callLog() {
		if strings.HasPrefix(c, "DELETE ") {
			t.Fatal("source released despite unverified import")
		}
	}
}

// TestRebalanceSkipsFinishedJob: a 409 export (the job finished or moved
// between listing and export) is a skip, not a failure — which is also what
// makes a second pass over the same topology idempotent.
func TestRebalanceSkipsFinishedJob(t *testing.T) {
	src := newScriptedBackend(t)
	dst := newScriptedBackend(t)
	src.list = []jobs.Info{{ID: testJobID, State: jobs.StateRunning}}
	src.exportStatus = http.StatusConflict

	m := &Migrator{Logf: t.Logf}
	rep := m.Rebalance(context.Background(), planFor(src.info("src"), dst.info("dst"), "dst"))
	if rep.Failed != 0 || rep.Moved != 0 || rep.Scanned != 1 {
		t.Fatalf("report = %+v, want a clean skip", rep)
	}
	for _, c := range dst.callLog() {
		if strings.Contains(c, "/checkpoint") {
			t.Fatalf("destination saw an import for a skipped job: %v", dst.callLog())
		}
	}
}

// TestRebalanceRegistryRescue: a registry job no backend holds (its owner
// died before exporting) is resubmitted from its canonical body; one a
// backend already knows is left alone.
func TestRebalanceRegistryRescue(t *testing.T) {
	dst := newScriptedBackend(t)
	deadID := strings.Repeat("ab", 32)
	knownID := strings.Repeat("cd", 32)
	body := []byte(`{"Collect":{"Bench":"jlisp","Config":{"Cores":2}}}`)

	met := NewMetrics()
	m := &Migrator{Metrics: met, Logf: t.Logf}
	p := Plan{
		Backends: []BackendInfo{dst.info("dst")},
		Replicas: func(string) []string { return []string{"dst"} },
		Registry: map[string][]byte{deadID: body, knownID: body},
	}
	// First rescue: dst knows neither job → both resubmitted.
	rep := m.Rebalance(context.Background(), p)
	if rep.Resubmitted != 2 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want 2 rescues", rep)
	}
	// Second pass with the jobs adopted: nothing to do.
	dst.known = true
	rep = m.Rebalance(context.Background(), p)
	if rep.Resubmitted != 0 || rep.Failed != 0 {
		t.Fatalf("second pass report = %+v, want no rescues", rep)
	}
	if met.JobsResubmitted() != 2 {
		t.Errorf("jobsResubmitted = %d, want 2", met.JobsResubmitted())
	}
}

// TestRebalanceDeadSourceCounted: an unreachable source counts as a failure
// (so the cluster tier retains it for the next pass) without aborting the
// rest of the pass.
func TestRebalanceDeadSourceCounted(t *testing.T) {
	dead := newScriptedBackend(t)
	deadInfo := dead.info("dead")
	dead.ts.Close() // connection refused from here on
	live := newScriptedBackend(t)
	live.list = []jobs.Info{{ID: testJobID, State: jobs.StateQueued}}

	m := &Migrator{Logf: t.Logf}
	p := Plan{
		Backends: []BackendInfo{deadInfo, live.info("live")},
		Replicas: func(string) []string { return []string{"live"} },
	}
	rep := m.Rebalance(context.Background(), p)
	if rep.Failed != 1 {
		t.Fatalf("failed = %d, want the dead source counted once", rep.Failed)
	}
	if rep.Scanned != 1 {
		t.Fatalf("scanned = %d: the live source must still be enumerated", rep.Scanned)
	}
}

// TestRebalanceAvoidsInadmissibleDestination: a breaker-open backend is
// still listed as a source, but its keys route to the next admissible
// replica rather than to it.
func TestRebalanceAvoidsInadmissibleDestination(t *testing.T) {
	tripped := newScriptedBackend(t)
	trippedInfo := tripped.info("tripped")
	trippedInfo.Admissible = false
	tripped.list = []jobs.Info{{ID: testJobID, State: jobs.StateCheckpointed, Point: 0}}
	tripped.envelope = &jobs.ExportedJob{V: 1, ID: testJobID, State: jobs.StateCheckpointed, Point: 0}
	healthy := newScriptedBackend(t)
	healthy.receipt = &importReceipt{Info: jobs.Info{ID: testJobID, Point: 0}, Accepted: true}

	m := &Migrator{Logf: t.Logf}
	p := Plan{
		Backends: []BackendInfo{trippedInfo, healthy.info("healthy")},
		// Ring order puts the tripped member first; the driver must fall
		// through to the admissible replica.
		Replicas: func(string) []string { return []string{"tripped", "healthy"} },
	}
	rep := m.Rebalance(context.Background(), p)
	if rep.Moved != 1 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want the job moved off the tripped member", rep)
	}
	for _, c := range healthy.callLog() {
		if strings.HasPrefix(c, "PUT ") {
			return
		}
	}
	t.Fatal("healthy backend never received the import")
}
