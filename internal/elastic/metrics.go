package elastic

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/stats"
)

// Metrics is the migration driver's counter set, written as gcelastic_*
// series in gcfleet's /metrics scrape. The accounting mirrors the repo's
// stall discipline: every job displaced by a topology change is
// attributable to a migration (checkpoint shipped), a rescue (resubmitted
// from the registry) or a failure awaiting the next pass.
type Metrics struct {
	rebalances         atomic.Int64 // rebalance passes run
	jobsMigrated       atomic.Int64 // jobs moved by checkpoint transfer
	jobsResubmitted    atomic.Int64 // jobs rescued via registry resubmission
	migrationsVerified atomic.Int64 // import receipts matching the export
	migrationsFailed   atomic.Int64 // migrations or rescues that failed a pass
	migrationBytes     atomic.Int64 // envelope bytes shipped

	// keysRemapped holds the float64 bits of the most recent topology
	// change's remapped-key fraction (measured over a deterministic sample).
	keysRemapped atomic.Uint64

	mu      sync.Mutex
	latency stats.Hist // per-job migration latency (export to release)
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// ObserveMigration records one job migration's end-to-end latency.
func (m *Metrics) ObserveMigration(d time.Duration) {
	m.mu.Lock()
	m.latency.Observe(d)
	m.mu.Unlock()
}

// SetKeysRemappedFraction records the fraction of sampled keys whose owner
// changed in the most recent topology change.
func (m *Metrics) SetKeysRemappedFraction(f float64) {
	m.keysRemapped.Store(math.Float64bits(f))
}

// KeysRemappedFraction returns the last recorded remap fraction.
func (m *Metrics) KeysRemappedFraction() float64 {
	return math.Float64frombits(m.keysRemapped.Load())
}

// Rebalances returns the rebalance-pass count.
func (m *Metrics) Rebalances() int64 { return m.rebalances.Load() }

// JobsMigrated returns the checkpoint-transfer count.
func (m *Metrics) JobsMigrated() int64 { return m.jobsMigrated.Load() }

// JobsResubmitted returns the registry-rescue count.
func (m *Metrics) JobsResubmitted() int64 { return m.jobsResubmitted.Load() }

// MigrationsVerified returns the verified-receipt count.
func (m *Metrics) MigrationsVerified() int64 { return m.migrationsVerified.Load() }

// MigrationsFailed returns the failed migration/rescue count.
func (m *Metrics) MigrationsFailed() int64 { return m.migrationsFailed.Load() }

// MigrationBytes returns the total envelope bytes shipped.
func (m *Metrics) MigrationBytes() int64 { return m.migrationBytes.Load() }

// WritePrometheus appends every gcelastic_* series to w.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	latency := m.latency
	m.mu.Unlock()

	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
		b = append(b, '\n')
	}
	add("# HELP gcelastic_rebalances_total Migration passes run after topology changes.")
	add("# TYPE gcelastic_rebalances_total counter")
	add("gcelastic_rebalances_total %d", m.rebalances.Load())
	add("# HELP gcelastic_jobs_migrated_total Jobs moved between backends by checkpoint transfer.")
	add("# TYPE gcelastic_jobs_migrated_total counter")
	add("gcelastic_jobs_migrated_total %d", m.jobsMigrated.Load())
	add("# HELP gcelastic_jobs_resubmitted_total Jobs rescued by registry resubmission after their owner died.")
	add("# TYPE gcelastic_jobs_resubmitted_total counter")
	add("gcelastic_jobs_resubmitted_total %d", m.jobsResubmitted.Load())
	add("# HELP gcelastic_migrations_verified_total Import receipts that matched the exported position.")
	add("# TYPE gcelastic_migrations_verified_total counter")
	add("gcelastic_migrations_verified_total %d", m.migrationsVerified.Load())
	add("# HELP gcelastic_migrations_failed_total Migrations or rescues that failed a pass.")
	add("# TYPE gcelastic_migrations_failed_total counter")
	add("gcelastic_migrations_failed_total %d", m.migrationsFailed.Load())
	add("# HELP gcelastic_migration_bytes_total Checkpoint envelope bytes shipped between backends.")
	add("# TYPE gcelastic_migration_bytes_total counter")
	add("gcelastic_migration_bytes_total %d", m.migrationBytes.Load())
	add("# HELP gcelastic_keys_remapped_fraction Fraction of sampled keys whose owner changed in the last topology change.")
	add("# TYPE gcelastic_keys_remapped_fraction gauge")
	add("gcelastic_keys_remapped_fraction %g", m.KeysRemappedFraction())
	add("# HELP gcelastic_migration_seconds Per-job migration latency, export to release (upper-bound quantile estimates).")
	add("# TYPE gcelastic_migration_seconds summary")
	add("gcelastic_migration_seconds{quantile=\"0.5\"} %g", latency.Quantile(0.50))
	add("gcelastic_migration_seconds{quantile=\"0.99\"} %g", latency.Quantile(0.99))
	add("gcelastic_migration_seconds_sum %g", latency.Sum().Seconds())
	add("gcelastic_migration_seconds_count %d", latency.Count())
	_, err := w.Write(b)
	return err
}
