// Package experiments defines the paper's evaluation artifacts — Figure 5,
// Table I, Table II, and Figure 6 — plus the ablations suggested by the
// paper's discussion (header-FIFO capacity, the unlocked mark-read
// optimization, memory bandwidth). Each experiment runs the simulator over
// the synthetic benchmark suite and returns structured results; the
// cmd/experiments tool renders them next to the paper's published values.
package experiments

import (
	"fmt"

	"hwgc/internal/core"
	"hwgc/internal/gcconc"
	"hwgc/internal/gcnuma"
	"hwgc/internal/machine"
	"hwgc/internal/mutator"
	"hwgc/internal/stats"
	"hwgc/internal/workload"
)

// Options configure an experiment run.
type Options struct {
	Scale  int   // workload scale factor (default 1)
	Seed   int64 // workload seed (default core.DefaultSeed)
	Verify bool  // verify every collection against the oracle
	Base   core.Config
}

func (o Options) norm() Options {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = core.DefaultSeed
	}
	return o
}

// ScalingRow is one benchmark's line of Figure 5 / Figure 6.
type ScalingRow struct {
	Bench   string
	Cores   []int
	Cycles  []int64
	Speedup []float64
}

// Scaling measures GC-cycle speedup over the 1-core configuration for every
// benchmark and the given core counts (Figure 5; with ExtraMemLatency=20 in
// the base config it is Figure 6).
func Scaling(benches []string, coreCounts []int, o Options) ([]ScalingRow, error) {
	o = o.norm()
	rows := make([]ScalingRow, 0, len(benches))
	for _, b := range benches {
		res, err := core.SweepCores(b, coreCounts, o.Scale, o.Seed, o.Base, o.Verify)
		if err != nil {
			return nil, err
		}
		row := ScalingRow{Bench: b, Cores: coreCounts}
		base := res[0].Stats.Cycles
		for _, r := range res {
			row.Cycles = append(row.Cycles, r.Stats.Cycles)
			row.Speedup = append(row.Speedup, stats.Speedup(base, r.Stats.Cycles))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EmptyRow is one benchmark's line of Table I.
type EmptyRow struct {
	Bench    string
	Cores    []int
	Fraction []float64 // of total clock cycles with an empty work list
}

// EmptyWorklist measures the fraction of clock cycles during which the work
// list is empty (Table I).
func EmptyWorklist(benches []string, coreCounts []int, o Options) ([]EmptyRow, error) {
	o = o.norm()
	rows := make([]EmptyRow, 0, len(benches))
	for _, b := range benches {
		res, err := core.SweepCores(b, coreCounts, o.Scale, o.Seed, o.Base, o.Verify)
		if err != nil {
			return nil, err
		}
		row := EmptyRow{Bench: b, Cores: coreCounts}
		for _, r := range res {
			row.Fraction = append(row.Fraction, r.Stats.EmptyWorklistFraction())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// StallRow is one benchmark's line of Table II: the mean per-core stall
// cycles per collection cycle at a fixed core count.
type StallRow struct {
	Bench string
	Total int64
	Mean  machine.CoreStats
}

// StallBreakdown measures the clock-cycle distribution of Table II.
func StallBreakdown(benches []string, cores int, o Options) ([]StallRow, error) {
	o = o.norm()
	cfg := o.Base
	cfg.Cores = cores
	rows := make([]StallRow, 0, len(benches))
	for _, b := range benches {
		r, err := core.RunBenchmark(b, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		rows = append(rows, StallRow{Bench: b, Total: r.Stats.Cycles, Mean: r.Stats.Mean()})
	}
	return rows, nil
}

// FIFOPoint is one measurement of the header-FIFO capacity ablation.
type FIFOPoint struct {
	Capacity      int
	Cycles        int64
	ScanLockStall int64 // mean per core
	FIFODrops     int64
	FIFOMaxDepth  int
}

// FIFOSweep runs one benchmark at a fixed core count across header-FIFO
// capacities (ablation A1: the paper attributes cup's scan-lock stalls to
// FIFO overflow prolonging the scan critical section).
func FIFOSweep(bench string, capacities []int, cores int, o Options) ([]FIFOPoint, error) {
	o = o.norm()
	out := make([]FIFOPoint, 0, len(capacities))
	for _, capn := range capacities {
		cfg := o.Base
		cfg.Cores = cores
		if capn <= 0 {
			cfg.DisableFIFO = true
			cfg.FIFOCapacity = 1
		} else {
			cfg.FIFOCapacity = capn
		}
		r, err := core.RunBenchmark(bench, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		out = append(out, FIFOPoint{
			Capacity:      capn,
			Cycles:        r.Stats.Cycles,
			ScanLockStall: r.Stats.Mean().ScanLockStall,
			FIFODrops:     r.Stats.FIFODrops,
			FIFOMaxDepth:  r.Stats.FIFOMaxDepth,
		})
	}
	return out, nil
}

// MarkOptRow compares a benchmark with and without the unlocked mark-read
// optimization proposed in the paper's Section VI-B (ablation A2).
type MarkOptRow struct {
	Bench                 string
	CyclesOff, CyclesOn   int64
	HdrLockOff, HdrLockOn int64 // mean per-core header-lock stalls
}

// MarkOpt measures the effect of OptUnlockedMarkRead.
func MarkOpt(benches []string, cores int, o Options) ([]MarkOptRow, error) {
	o = o.norm()
	rows := make([]MarkOptRow, 0, len(benches))
	for _, b := range benches {
		cfg := o.Base
		cfg.Cores = cores
		off, err := core.RunBenchmark(b, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		cfg.OptUnlockedMarkRead = true
		on, err := core.RunBenchmark(b, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MarkOptRow{
			Bench:      b,
			CyclesOff:  off.Stats.Cycles,
			CyclesOn:   on.Stats.Cycles,
			HdrLockOff: off.Stats.Mean().HeaderLockStall,
			HdrLockOn:  on.Stats.Mean().HeaderLockStall,
		})
	}
	return rows, nil
}

// BandwidthPoint is one measurement of the memory-bandwidth ablation.
type BandwidthPoint struct {
	Bandwidth int
	Speedup16 float64 // 16-core speedup over 1 core at this bandwidth
}

// BandwidthSweep measures the 16-core speedup as a function of memory
// bandwidth (ablation A3: the paper names memory bandwidth as the second
// scalability limiter).
func BandwidthSweep(bench string, bandwidths []int, o Options) ([]BandwidthPoint, error) {
	o = o.norm()
	out := make([]BandwidthPoint, 0, len(bandwidths))
	for _, bw := range bandwidths {
		cfg := o.Base
		cfg.MemBandwidth = bw
		res, err := core.SweepCores(bench, []int{1, 16}, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		out = append(out, BandwidthPoint{
			Bandwidth: bw,
			Speedup16: stats.Speedup(res[0].Stats.Cycles, res[1].Stats.Cycles),
		})
	}
	return out, nil
}

// Benches returns the benchmark list in the paper's table order.
func Benches() []string {
	return []string{"compress", "cup", "db", "javac", "javacc", "jflex", "jlisp", "search"}
}

// Fig5Config returns the base configuration of Figure 5 (prototype memory).
func Fig5Config() core.Config { return core.Config{} }

// Fig6Config returns the base configuration of Figure 6: an artificial 20
// clock cycles added to each memory access.
func Fig6Config() core.Config { return core.Config{ExtraMemLatency: 20} }

// FormatScaling renders scaling rows as a table.
func FormatScaling(title string, rows []ScalingRow) *stats.Table {
	if len(rows) == 0 {
		return stats.NewTable(title)
	}
	hdr := []string{"Application"}
	for _, c := range rows[0].Cores {
		hdr = append(hdr, fmt.Sprintf("%d cores", c))
	}
	t := stats.NewTable(title, hdr...)
	for _, r := range rows {
		cells := []string{r.Bench}
		for _, s := range r.Speedup {
			cells = append(cells, fmt.Sprintf("%.2f", s))
		}
		t.Add(cells...)
	}
	return t
}

// StridePoint is one measurement of the sub-object granularity extension.
type StridePoint struct {
	StrideWords int // 0 = object granularity
	Cores       []int
	Speedup     []float64
}

// StrideSweep measures the Section VII extension "distribute work at a finer
// granularity than object-level granularity" on the blob workload, whose
// object-level parallelism is bounded by its object count.
func StrideSweep(bench string, strides []int, coreCounts []int, o Options) ([]StridePoint, error) {
	o = o.norm()
	out := make([]StridePoint, 0, len(strides))
	for _, sw := range strides {
		cfg := o.Base
		cfg.StrideWords = sw
		res, err := core.SweepCores(bench, coreCounts, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		pt := StridePoint{StrideWords: sw, Cores: coreCounts}
		base := res[0].Stats.Cycles
		for _, r := range res {
			pt.Speedup = append(pt.Speedup, stats.Speedup(base, r.Stats.Cycles))
		}
		out = append(out, pt)
	}
	return out, nil
}

// HeaderCacheRow compares a benchmark with and without the Section VII
// header cache extension.
type HeaderCacheRow struct {
	Bench                   string
	CyclesOff, CyclesOn     int64
	HitRate                 float64 // cache hits / (hits+misses)
	HdrLoadsOff, HdrLoadsOn int64   // header loads reaching memory
}

// HeaderCache measures the effect of an on-chip header cache of the given
// size at a fixed core count.
func HeaderCache(benches []string, lines, cores int, o Options) ([]HeaderCacheRow, error) {
	o = o.norm()
	rows := make([]HeaderCacheRow, 0, len(benches))
	for _, b := range benches {
		cfg := o.Base
		cfg.Cores = cores
		off, err := core.RunBenchmark(b, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		cfg.HeaderCacheLines = lines
		on, err := core.RunBenchmark(b, o.Scale, o.Seed, cfg, o.Verify)
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		if t := on.Stats.HeaderCacheHits + on.Stats.HeaderCacheMisses; t > 0 {
			hitRate = float64(on.Stats.HeaderCacheHits) / float64(t)
		}
		rows = append(rows, HeaderCacheRow{
			Bench:       b,
			CyclesOff:   off.Stats.Cycles,
			CyclesOn:    on.Stats.Cycles,
			HitRate:     hitRate,
			HdrLoadsOff: off.Stats.Mem.Accepted[0],
			HdrLoadsOn:  on.Stats.Mem.Accepted[0],
		})
	}
	return rows, nil
}

// HeapSizePoint is one measurement of the heap-size sweep.
type HeapSizePoint struct {
	Headroom  float64 // semispace size relative to the live set
	Cycles16  int64
	Speedup16 float64
}

// HeapSizeSweep checks the paper's Section VI-B remark that "the heap size
// had little to no influence on the measurement results regarding
// synchronization overhead and scalability" (which justified dimensioning
// the heap at twice the minimal size): a copying collector's cost is
// proportional to the live set, not the heap.
func HeapSizeSweep(bench string, headrooms []float64, o Options) ([]HeapSizePoint, error) {
	o = o.norm()
	spec, err := workload.Get(bench)
	if err != nil {
		return nil, err
	}
	out := make([]HeapSizePoint, 0, len(headrooms))
	for _, hr := range headrooms {
		var cycles [2]int64
		for i, cores := range []int{1, 16} {
			cfg := o.Base
			cfg.Cores = cores
			plan := spec.Plan(o.Scale, o.Seed)
			h, err := plan.BuildHeap(hr)
			if err != nil {
				return nil, err
			}
			st, err := core.CollectOnce(h, cfg, o.Verify)
			if err != nil {
				return nil, err
			}
			cycles[i] = st.Cycles
		}
		out = append(out, HeapSizePoint{
			Headroom:  hr,
			Cycles16:  cycles[1],
			Speedup16: stats.Speedup(cycles[0], cycles[1]),
		})
	}
	return out, nil
}

// PausePoint summarizes the GC pauses of a multi-collection mutator run at
// one coprocessor size.
type PausePoint struct {
	Cores       int
	Collections int
	MeanPause   int64 // clock cycles
	MaxPause    int64
	TotalGC     int64
}

// Pauses runs an identical randomized allocate/mutate/drop workload (the
// mutator churn driver) against coprocessors of different sizes and reports
// the pause-time statistics. This is the paper's motivation viewed from the
// application: the collector runs stop-the-world, so cutting the GC cycle
// by N× cuts every pause by N×.
func Pauses(coreCounts []int, semiWords, ops int, o Options) ([]PausePoint, error) {
	o = o.norm()
	out := make([]PausePoint, 0, len(coreCounts))
	for _, n := range coreCounts {
		cfg := o.Base
		cfg.Cores = n
		mu, err := mutator.New(semiWords, cfg)
		if err != nil {
			return nil, err
		}
		mu.Verify = o.Verify
		if _, err := mu.RunChurn(mutator.ChurnConfig{Ops: ops, RootSlots: 64, MaxPi: 4, MaxDelta: 12, Seed: o.Seed}); err != nil {
			return nil, err
		}
		pt := PausePoint{Cores: n, Collections: len(mu.Collections())}
		for _, st := range mu.Collections() {
			pt.TotalGC += st.Cycles
			if st.Cycles > pt.MaxPause {
				pt.MaxPause = st.Cycles
			}
		}
		if pt.Collections > 0 {
			pt.MeanPause = pt.TotalGC / int64(pt.Collections)
		}
		out = append(out, pt)
	}
	return out, nil
}

// ScaleRobustness re-runs the core-scaling measurement at growing workload
// sizes and reports the 16-core speedup for each, checking that the
// conclusions do not depend on the (arbitrary) workload dimensioning.
func ScaleRobustness(bench string, scales []int, o Options) ([]BandwidthPoint, error) {
	o = o.norm()
	out := make([]BandwidthPoint, 0, len(scales))
	for _, sc := range scales {
		oo := o
		oo.Scale = sc
		res, err := core.SweepCores(bench, []int{1, 16}, oo.Scale, oo.Seed, oo.Base, oo.Verify)
		if err != nil {
			return nil, err
		}
		out = append(out, BandwidthPoint{
			Bandwidth: sc, // reused field: the swept parameter
			Speedup16: stats.Speedup(res[0].Stats.Cycles, res[1].Stats.Cycles),
		})
	}
	return out, nil
}

// ConcurrentRow compares a stop-the-world collection with a concurrent one
// on the same heap.
type ConcurrentRow struct {
	Bench        string
	STWPause     int64 // cycles of the stop-the-world collection
	ConcCycles   int64 // cycles of the concurrent collection
	MutOps       int64 // mutator operations completed during it
	MutAllocs    int64
	MaxOpLatency int64 // worst single mutator operation — the pause analogue
	BarrierPct   float64
}

// Concurrent runs the Section V-B extension: the same collection once
// stop-the-world and once with a churning mutator on the coprocessor's
// mutator port, reporting the worst mutator stall against the STW pause.
func Concurrent(benches []string, cores, period int, o Options) ([]ConcurrentRow, error) {
	o = o.norm()
	rows := make([]ConcurrentRow, 0, len(benches))
	for _, b := range benches {
		spec, err := workload.Get(b)
		if err != nil {
			return nil, err
		}
		cfg := o.Base
		cfg.Cores = cores

		h1, err := spec.Plan(o.Scale, o.Seed).BuildHeap(3.0)
		if err != nil {
			return nil, err
		}
		m1, err := machine.New(h1, cfg)
		if err != nil {
			return nil, err
		}
		stw, err := m1.Collect()
		if err != nil {
			return nil, err
		}

		h2, err := spec.Plan(o.Scale, o.Seed).BuildHeap(3.0)
		if err != nil {
			return nil, err
		}
		m2, err := machine.New(h2, cfg)
		if err != nil {
			return nil, err
		}
		driver := machine.NewConcurrentChurn(h2, o.Seed*31, 1<<40, 500)
		st, ms, err := m2.CollectConcurrent(driver, period)
		if err != nil {
			return nil, err
		}
		barrierPct := 0.0
		if ms.StallCycles > 0 {
			barrierPct = 100 * float64(ms.BarrierStalls) / float64(ms.StallCycles)
		}
		rows = append(rows, ConcurrentRow{
			Bench:        b,
			STWPause:     stw.Cycles,
			ConcCycles:   st.Cycles,
			MutOps:       ms.Ops,
			MutAllocs:    ms.Allocs,
			MaxOpLatency: ms.MaxOpLatency,
			BarrierPct:   barrierPct,
		})
	}
	return rows, nil
}

// SeedStats summarizes a benchmark's 16-core speedup across several
// workload seeds.
type SeedStats struct {
	Bench          string
	Min, Mean, Max float64
}

// SeedRobustness re-measures the 16-core speedup of each benchmark under
// several workload-generation seeds, checking that the reproduction's
// conclusions are properties of the graph *shapes*, not of one particular
// random instance.
func SeedRobustness(benches []string, seeds []int64, o Options) ([]SeedStats, error) {
	o = o.norm()
	out := make([]SeedStats, 0, len(benches))
	for _, b := range benches {
		st := SeedStats{Bench: b, Min: 1e18, Max: -1}
		for _, seed := range seeds {
			res, err := core.SweepCores(b, []int{1, 16}, o.Scale, seed, o.Base, o.Verify)
			if err != nil {
				return nil, err
			}
			s := stats.Speedup(res[0].Stats.Cycles, res[1].Stats.Cycles)
			st.Mean += s
			if s < st.Min {
				st.Min = s
			}
			if s > st.Max {
				st.Max = s
			}
		}
		st.Mean /= float64(len(seeds))
		out = append(out, st)
	}
	return out, nil
}

// BarrierRow is one (benchmark, barrier mode) line of the write-barrier
// comparison: the gcconc scenario family's cycle-accurate answer to "what
// does each barrier discipline cost, and how much garbage does it float".
type BarrierRow struct {
	Bench              string
	Mode               string // "none", "satb", "incupdate"
	STWPause           int64  // cycles of the stop-the-world baseline
	Cycles             int64  // cycles of the concurrent collection
	MutOps             int64  // mutator operations completed during it
	BarrierInvocations int64
	BarrierCycles      int64
	FloatingWords      int64 // garbage retained only because the barrier shaded it
	MarkTermCycles     int64 // tail between the last marking work and scan termination
	MaxOpLatency       int64 // worst single mutator operation — the pause analogue
}

// Barriers runs the concurrent-collection scenario family (extension E4):
// each benchmark collected once stop-the-world and once per write-barrier
// mode with the built-in churn mutator on the coprocessor's mutator port,
// comparing barrier cost, floating garbage and mark termination across the
// disciplines.
func Barriers(benches []string, cores int, o Options) ([]BarrierRow, error) {
	o = o.norm()
	var rows []BarrierRow
	for _, b := range benches {
		base := o.Base
		base.Cores = cores
		cmp, err := gcconc.Compare(b, o.Scale, o.Seed, base, o.Verify)
		if err != nil {
			return nil, err
		}
		for _, r := range cmp.Rows {
			ms := r.Stats.Mutator
			rows = append(rows, BarrierRow{
				Bench:              b,
				Mode:               gcconc.Label(r.Scenario.Config.BarrierMode),
				STWPause:           cmp.STW.Cycles,
				Cycles:             r.Stats.Cycles,
				MutOps:             ms.Ops,
				BarrierInvocations: ms.BarrierInvocations,
				BarrierCycles:      ms.BarrierCycles,
				FloatingWords:      ms.FloatingWords,
				MarkTermCycles:     ms.MarkTermCycles,
				MaxOpLatency:       ms.MaxOpLatency,
			})
		}
	}
	return rows, nil
}

// NUMARow is one (benchmark, core count, placement mode) line of the
// locality comparison: the gcnuma scenario family's answer to "how much of
// the collector's DRAM traffic crosses a domain boundary, and what does
// locality-aware tospace placement buy back".
type NUMARow struct {
	Bench           string
	Cores           int
	Mode            string // "flat", "naive", "local"
	Cycles          int64
	FlatCycles      int64   // uniform-memory baseline at the same core count
	LocalAccesses   int64   // DRAM acceptances served by the requester's domain
	RemoteAccesses  int64   // DRAM acceptances that crossed a domain boundary
	RemoteFraction  float64 // RemoteAccesses / (Local + Remote)
	DomainConflicts int64   // acceptances deferred by an exhausted domain budget
}

// Slowdown is the cycle cost of the NUMA penalties relative to the flat
// baseline at the same core count (1.0 for the baseline itself).
func (r NUMARow) Slowdown() float64 {
	if r.FlatCycles == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.FlatCycles)
}

// NUMA runs the locality scenario family (extension E5): each benchmark
// collected at each core count on the flat machine and on a NUMA machine
// under naive and locality-aware tospace placement, comparing remote-access
// fractions and cycle counts. Rows are grouped by benchmark, then core
// count, then gcnuma.Modes() order.
func NUMA(benches []string, coreCounts []int, o Options) ([]NUMARow, error) {
	o = o.norm()
	var rows []NUMARow
	for _, b := range benches {
		for _, cores := range coreCounts {
			base := o.Base
			base.Cores = cores
			cmp, err := gcnuma.Compare(b, o.Scale, o.Seed, base, o.Verify)
			if err != nil {
				return nil, err
			}
			flat := cmp.Flat().Stats.Cycles
			for _, r := range cmp.Rows {
				rows = append(rows, NUMARow{
					Bench:           b,
					Cores:           cores,
					Mode:            gcnuma.Label(r.Scenario.Mode),
					Cycles:          r.Stats.Cycles,
					FlatCycles:      flat,
					LocalAccesses:   r.Stats.Mem.LocalAccesses,
					RemoteAccesses:  r.Stats.Mem.RemoteAccesses,
					RemoteFraction:  r.RemoteFraction(),
					DomainConflicts: r.Stats.Mem.DomainConflicts,
				})
			}
		}
	}
	return rows, nil
}
