package experiments

import (
	"strings"
	"testing"
)

// The experiment tests use a reduced benchmark subset so the whole suite
// stays fast; the full sweeps run via cmd/experiments and the root-level
// benchmarks.

func TestScalingShape(t *testing.T) {
	rows, err := Scaling([]string{"jlisp", "search"}, []int{1, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0].Speedup) != 2 {
		t.Fatalf("row shape wrong: %+v", rows)
	}
	if rows[0].Speedup[0] != 1.0 {
		t.Fatalf("1-core speedup not 1.0: %f", rows[0].Speedup[0])
	}
	// jlisp scales; search does not.
	if rows[0].Speedup[1] < 3 {
		t.Errorf("jlisp 4-core speedup %f, want ≥3", rows[0].Speedup[1])
	}
	if rows[1].Speedup[1] > 2 {
		t.Errorf("search 4-core speedup %f, want ≤2", rows[1].Speedup[1])
	}
}

func TestEmptyWorklistShape(t *testing.T) {
	rows, err := EmptyWorklist([]string{"search"}, []int{1, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := rows[0].Fraction
	if f[0] > 0.01 {
		t.Errorf("search at 1 core reports %.2f%% empty; the paper's metric is ~0 at 1 core", 100*f[0])
	}
	if f[1] < 0.9 {
		t.Errorf("search at 4 cores reports %.2f%% empty; want ≥90%%", 100*f[1])
	}
}

func TestStallBreakdownShape(t *testing.T) {
	rows, err := StallBreakdown([]string{"javac", "cup"}, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var javac, cup StallRow
	for _, r := range rows {
		switch r.Bench {
		case "javac":
			javac = r
		case "cup":
			cup = r
		}
	}
	// The paper's two signatures: javac is the header-lock benchmark, cup
	// the scan-lock benchmark.
	if javac.Mean.HeaderLockStall <= cup.Mean.HeaderLockStall {
		t.Errorf("javac header-lock stalls (%d) not above cup (%d)",
			javac.Mean.HeaderLockStall, cup.Mean.HeaderLockStall)
	}
	if cup.Mean.ScanLockStall <= javac.Mean.ScanLockStall {
		t.Errorf("cup scan-lock stalls (%d) not above javac (%d)",
			cup.Mean.ScanLockStall, javac.Mean.ScanLockStall)
	}
}

func TestFIFOSweepMonotone(t *testing.T) {
	pts, err := FIFOSweep("cup", []int{0, 32768, 131072}, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Cycles <= pts[2].Cycles {
		t.Errorf("disabling the FIFO (%d cycles) not slower than a large FIFO (%d)",
			pts[0].Cycles, pts[2].Cycles)
	}
	if pts[2].FIFODrops != 0 {
		t.Errorf("large FIFO still dropped %d entries", pts[2].FIFODrops)
	}
	if pts[1].FIFODrops == 0 {
		t.Errorf("32k FIFO did not overflow on cup; the workload must exceed it")
	}
}

func TestMarkOptRemovesHeaderLockStalls(t *testing.T) {
	rows, err := MarkOpt([]string{"javac"}, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.HdrLockOn*10 > r.HdrLockOff {
		t.Errorf("optimization left %d of %d header-lock stalls", r.HdrLockOn, r.HdrLockOff)
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	pts, err := BandwidthSweep("db", []int{2, 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Speedup16 <= pts[0].Speedup16 {
		t.Errorf("more bandwidth did not improve 16-core speedup: %.2f -> %.2f",
			pts[0].Speedup16, pts[1].Speedup16)
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	for _, b := range Benches() {
		if _, ok := PaperTable1[b]; !ok {
			t.Errorf("PaperTable1 missing %s", b)
		}
		p, ok := PaperTable2[b]
		if !ok {
			t.Errorf("PaperTable2 missing %s", b)
			continue
		}
		if p.Total <= 0 {
			t.Errorf("PaperTable2 %s has no total", b)
		}
	}
	if PaperMaxSpeedup8 != 7.4 || PaperMaxSpeedup16 != 12.1 {
		t.Error("headline speedups do not match the abstract")
	}
}

func TestFormatScaling(t *testing.T) {
	rows := []ScalingRow{{Bench: "x", Cores: []int{1, 2}, Speedup: []float64{1, 1.9}}}
	out := FormatScaling("T", rows).String()
	if !strings.Contains(out, "1.90") || !strings.Contains(out, "2 cores") {
		t.Fatalf("format wrong:\n%s", out)
	}
	if FormatScaling("T", nil) == nil {
		t.Fatal("empty rows not handled")
	}
}

func TestOptionsNorm(t *testing.T) {
	o := Options{}.norm()
	if o.Scale != 1 || o.Seed == 0 {
		t.Fatalf("norm wrong: %+v", o)
	}
}

func TestStrideSweepLiftsBlobBound(t *testing.T) {
	pts, err := StrideSweep("blob", []int{0, 64}, []int{1, 16}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Speedup[1] <= pts[0].Speedup[1] {
		t.Errorf("strides (%.2f) did not beat object granularity (%.2f) on blob",
			pts[1].Speedup[1], pts[0].Speedup[1])
	}
}

func TestHeaderCacheHelpsJavac(t *testing.T) {
	rows, err := HeaderCache([]string{"javac"}, 4096, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.HitRate <= 0.2 {
		t.Errorf("javac header cache hit rate %.2f; hub traffic should hit", r.HitRate)
	}
	if r.CyclesOn >= r.CyclesOff {
		t.Errorf("header cache did not shorten javac: %d vs %d", r.CyclesOn, r.CyclesOff)
	}
	if r.HdrLoadsOn >= r.HdrLoadsOff {
		t.Errorf("header loads to memory not reduced: %d vs %d", r.HdrLoadsOn, r.HdrLoadsOff)
	}
}

func TestHeapSizeSweepInvariant(t *testing.T) {
	pts, err := HeapSizeSweep("jlisp", []float64{1.2, 4.0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Cycles16 != pts[1].Cycles16 {
		t.Errorf("heap size changed the collection cost: %d vs %d cycles (copying cost must track the live set)",
			pts[0].Cycles16, pts[1].Cycles16)
	}
}

func TestPausesShrinkWithCores(t *testing.T) {
	pts, err := Pauses([]int{1, 8}, 16*1024, 20000, Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Collections == 0 || pts[0].Collections != pts[1].Collections {
		t.Fatalf("churn not identical across rows: %+v", pts)
	}
	if pts[1].MeanPause >= pts[0].MeanPause || pts[1].MaxPause >= pts[0].MaxPause {
		t.Errorf("8 cores did not shrink pauses: %+v", pts)
	}
}

func TestScaleRobustness(t *testing.T) {
	pts, err := ScaleRobustness("jlisp", []int{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Speedup16 < 8 {
			t.Errorf("scale %d: 16-core speedup %.2f collapsed", p.Bandwidth, p.Speedup16)
		}
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	var b strings.Builder
	if err := WriteReport(&b, Options{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 5", "Figure 6", "Table I", "Table II",
		"header FIFO", "stride", "header cache", "concurrent",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

// TestGoldenResults pins the headline deterministic measurements exactly.
// The simulator and the workloads are fully deterministic, so any change to
// these numbers is a deliberate model or workload change — update the
// goldens (and EXPERIMENTS.md) together with it.
func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is slow")
	}
	rows, err := Scaling([]string{"db", "compress"}, []int{1, 16}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goldens := map[string][2]int64{
		// benchmark -> {cycles at 1 core, cycles at 16 cores}
		"db":       {304101, 24759},
		"compress": {345101, 121053},
	}
	for _, r := range rows {
		want := goldens[r.Bench]
		if r.Cycles[0] != want[0] || r.Cycles[1] != want[1] {
			t.Errorf("%s: cycles = {%d, %d}, golden {%d, %d} — deterministic result changed",
				r.Bench, r.Cycles[0], r.Cycles[1], want[0], want[1])
		}
	}
}

func TestSeedRobustness(t *testing.T) {
	rows, err := SeedRobustness([]string{"jlisp"}, []int64{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Min > r.Mean || r.Mean > r.Max {
		t.Fatalf("ordering wrong: %+v", r)
	}
	if r.Min < 8 {
		t.Errorf("jlisp speedup collapsed under some seed: %+v", r)
	}
	if r.Max-r.Min > 3 {
		t.Errorf("speedup unstable across seeds: %+v", r)
	}
}
