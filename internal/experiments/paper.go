package experiments

// Published values from the paper, used by the experiment harness to print
// measured results side by side with the original measurements and by the
// test suite to assert that the reproduction preserves the paper's
// qualitative shape.

// PaperCoreCounts are the coprocessor sizes of Tables I/II and Figures 5/6.
var PaperCoreCounts = []int{1, 2, 4, 8, 16}

// PaperTable1 is the paper's Table I: fraction (in percent) of clock cycles
// during which the work list is empty, per benchmark, for 1/2/4/8/16 cores.
var PaperTable1 = map[string][5]float64{
	"compress": {0.01, 0.15, 98.58, 99.43, 99.72},
	"cup":      {0.00, 0.01, 0.02, 0.04, 0.10},
	"db":       {0.00, 0.01, 0.02, 0.03, 0.06},
	"javac":    {0.00, 0.01, 0.01, 0.03, 0.08},
	"javacc":   {0.15, 0.57, 1.35, 3.06, 5.34},
	"jflex":    {0.02, 0.05, 0.13, 5.48, 35.35},
	"jlisp":    {0.10, 0.27, 0.61, 1.34, 2.59},
	"search":   {0.06, 73.74, 98.75, 99.53, 99.76},
}

// PaperStall is one row of the paper's Table II (16 cores): total clock
// cycles per collection cycle, and the mean per-core stall cycles by cause.
type PaperStall struct {
	Total                                        int64
	ScanLock, FreeLock, HeaderLock               int64
	BodyLoad, BodyStore, HeaderLoad, HeaderStore int64
}

// PaperTable2 is the paper's Table II (the paper lists the last row as
// "searchA", an apparent typo for search).
var PaperTable2 = map[string]PaperStall{
	"compress": {4735060, 113, 4, 38, 75023, 14626, 2821, 0},
	"cup":      {3251965, 341040, 2940, 7917, 493847, 4074, 1254764, 337},
	"db":       {1089535, 20633, 893, 1195, 232208, 6174, 360913, 0},
	"javac":    {2141803, 19067, 1019, 629596, 235314, 4442, 560618, 0},
	"javacc":   {542825, 18289, 340, 837, 101272, 2900, 153939, 0},
	"jflex":    {411784, 1517, 96, 208, 55538, 3809, 44618, 0},
	"jlisp":    {37247, 724, 30, 161, 5468, 243, 10527, 0},
	"search":   {5916511, 113, 4, 41, 64849, 15542, 2953, 0},
}

// Headline speedups from the paper's abstract and Figure 5: an 8-core
// coprocessor decreases GC cycle duration by up to 7.4×, a 16-core one by up
// to 12.1×, while compress and search show no significant speedup.
const (
	PaperMaxSpeedup8  = 7.4
	PaperMaxSpeedup16 = 12.1
)

// NonScalingBenches are the benchmarks the paper singles out as lacking
// object-level parallelism.
var NonScalingBenches = []string{"compress", "search"}
