package experiments

import (
	"fmt"
	"io"
)

// WriteReport runs the complete evaluation — every table and figure of the
// paper plus the ablations and extensions — and writes a self-contained
// markdown report with measured values next to the paper's published
// numbers. `go run ./cmd/experiments -markdown all` regenerates the data
// behind EXPERIMENTS.md.
func WriteReport(w io.Writer, o Options) error {
	o = o.norm()
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	if err := p("# Measured evaluation report\n\nSeed %d, scale %d, deterministic.\n\n", o.Seed, o.Scale); err != nil {
		return err
	}

	// Figure 5.
	rows, err := Scaling(Benches(), PaperCoreCounts, o)
	if err != nil {
		return err
	}
	if err := p("## Figure 5 — speedup vs. cores\n\n| Application | 1 | 2 | 4 | 8 | 16 |\n|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	var max8, max16 float64
	for _, r := range rows {
		if err := p("| %s | %.2f | %.2f | %.2f | %.2f | %.2f |\n",
			r.Bench, r.Speedup[0], r.Speedup[1], r.Speedup[2], r.Speedup[3], r.Speedup[4]); err != nil {
			return err
		}
		if r.Speedup[3] > max8 {
			max8 = r.Speedup[3]
		}
		if r.Speedup[4] > max16 {
			max16 = r.Speedup[4]
		}
	}
	if err := p("\nMax %.2f at 8 cores / %.2f at 16 (paper: %.1f / %.1f).\n\n",
		max8, max16, PaperMaxSpeedup8, PaperMaxSpeedup16); err != nil {
		return err
	}

	// Figure 6.
	o6 := o
	o6.Base = Fig6Config()
	rows6, err := Scaling(Benches(), PaperCoreCounts, o6)
	if err != nil {
		return err
	}
	if err := p("## Figure 6 — +20 cycles memory latency\n\n| Application | 16 cores (Fig. 6) | 16 cores (Fig. 5) |\n|---|---|---|\n"); err != nil {
		return err
	}
	for i, r := range rows6 {
		if err := p("| %s | %.2f | %.2f |\n", r.Bench, r.Speedup[4], rows[i].Speedup[4]); err != nil {
			return err
		}
	}
	if err := p("\n"); err != nil {
		return err
	}

	// Table I.
	emp, err := EmptyWorklist(Benches(), PaperCoreCounts, o)
	if err != nil {
		return err
	}
	if err := p("## Table I — empty work-list cycles (measured %% | paper %%)\n\n| Application | 1 | 2 | 4 | 8 | 16 |\n|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range emp {
		paper := PaperTable1[r.Bench]
		if err := p("| %s |", r.Bench); err != nil {
			return err
		}
		for i, f := range r.Fraction {
			if err := p(" %.2f \\| %.2f |", 100*f, paper[i]); err != nil {
				return err
			}
		}
		if err := p("\n"); err != nil {
			return err
		}
	}
	if err := p("\n"); err != nil {
		return err
	}

	// Table II.
	st, err := StallBreakdown(Benches(), 16, o)
	if err != nil {
		return err
	}
	if err := p("## Table II — stall breakdown at 16 cores (mean per core, %% of total; paper %% in brackets)\n\n" +
		"| Application | Total | Scan-lock | Free-lock | Header-lock | Body load | Header load |\n|---|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range st {
		pp := PaperTable2[r.Bench]
		pct := func(v int64) float64 { return 100 * float64(v) / float64(r.Total) }
		ppct := func(v int64) float64 { return 100 * float64(v) / float64(pp.Total) }
		if err := p("| %s | %d | %.2f [%.2f] | %.2f [%.2f] | %.2f [%.2f] | %.2f [%.2f] | %.2f [%.2f] |\n",
			r.Bench, r.Total,
			pct(r.Mean.ScanLockStall), ppct(pp.ScanLock),
			pct(r.Mean.FreeLockStall), ppct(pp.FreeLock),
			pct(r.Mean.HeaderLockStall), ppct(pp.HeaderLock),
			pct(r.Mean.BodyLoadStall), ppct(pp.BodyLoad),
			pct(r.Mean.HeaderLoadStall), ppct(pp.HeaderLoad)); err != nil {
			return err
		}
	}
	if err := p("\n"); err != nil {
		return err
	}

	// Ablation A1.
	fifo, err := FIFOSweep("cup", []int{0, 16384, 32768, 65536}, 16, o)
	if err != nil {
		return err
	}
	if err := p("## A1 — header FIFO capacity (cup, 16 cores)\n\n| Capacity | Cycles | Scan-lock stall/core | Drops |\n|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, f := range fifo {
		cap := fmt.Sprint(f.Capacity)
		if f.Capacity == 0 {
			cap = "disabled"
		}
		if err := p("| %s | %d | %d | %d |\n", cap, f.Cycles, f.ScanLockStall, f.FIFODrops); err != nil {
			return err
		}
	}
	if err := p("\n"); err != nil {
		return err
	}

	// Extensions.
	stride, err := StrideSweep("blob", []int{0, 64}, []int{1, 16}, o)
	if err != nil {
		return err
	}
	if err := p("## E1 — stride work distribution (blob)\n\n16-core speedup: objects %.2f → 64-word strides %.2f.\n\n",
		stride[0].Speedup[1], stride[1].Speedup[1]); err != nil {
		return err
	}

	hc, err := HeaderCache([]string{"javac", "db"}, 4096, 16, o)
	if err != nil {
		return err
	}
	if err := p("## E2 — header cache (4096 lines, 16 cores)\n\n| Application | Gain | Hit rate |\n|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range hc {
		if err := p("| %s | %.2fx | %.1f%% |\n", r.Bench, float64(r.CyclesOff)/float64(r.CyclesOn), 100*r.HitRate); err != nil {
			return err
		}
	}
	if err := p("\n"); err != nil {
		return err
	}

	conc, err := Concurrent([]string{"jlisp", "javac"}, 8, 2, o)
	if err != nil {
		return err
	}
	if err := p("## E3 — concurrent collection (8 cores)\n\n| Application | STW pause | Worst concurrent mutator op |\n|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range conc {
		if err := p("| %s | %d | %d |\n", r.Bench, r.STWPause, r.MaxOpLatency); err != nil {
			return err
		}
	}
	if err := p("\n"); err != nil {
		return err
	}

	bar, err := Barriers([]string{"jlisp", "javac"}, 8, o)
	if err != nil {
		return err
	}
	if err := p("## E4 — write-barrier comparison (8 cores)\n\n| Application | Barrier | GC cycles | Barrier cycles | Floating words | Mark term. |\n|---|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, r := range bar {
		if err := p("| %s | %s | %d | %d | %d | %d |\n", r.Bench, r.Mode, r.Cycles, r.BarrierCycles, r.FloatingWords, r.MarkTermCycles); err != nil {
			return err
		}
	}
	return p("\nGenerated by `go run ./cmd/experiments -markdown all`.\n")
}
