// Package gcalgo provides an untimed reference implementation of Cheney's
// sequential copying collector (paper Section II) and a verification oracle.
//
// The reference collector is the specification against which every other
// collector in this repository — the simulated multi-core coprocessor and
// the software baseline collectors — is checked: a collection is correct
// when the logical object graph reachable from the roots is preserved
// (same shapes, same data, same wiring), all surviving objects lie compacted
// at the bottom of the new space, and no GC bookkeeping bits remain.
package gcalgo

import (
	"fmt"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

// Collect runs Cheney's sequential algorithm on h: it flips the semispaces,
// evacuates all objects reachable from the root set into the new space, and
// updates the roots. It returns the number of live objects and words.
func Collect(h *heap.Heap) (liveObjects, liveWords int, err error) {
	to := h.OtherSpace()
	base := h.Base(to)
	limit := h.Limit(to)
	mem := h.Mem()

	scan := base
	free := base

	// evacuate copies the full object at p into tospace (the reference
	// implementation copies eagerly rather than via backlinks; the result
	// is identical) and returns the forwarding pointer.
	evacuate := func(p object.Addr) (object.Addr, error) {
		hdr := mem[p]
		if object.Marked(hdr) {
			return object.Link(hdr), nil
		}
		size := object.Addr(object.SizeWords(hdr))
		if free+size > limit {
			return 0, fmt.Errorf("gcalgo: tospace overflow at free=%d size=%d", free, size)
		}
		dst := free
		free += size
		mem[dst] = object.BlackHeader(hdr)
		mem[dst+1] = 0
		copy(mem[dst+object.HeaderWords:dst+size], mem[p+object.HeaderWords:p+size])
		mem[p] = object.WithMark(hdr, dst)
		liveObjects++
		return dst, nil
	}

	roots := h.Roots()
	for i, r := range roots {
		if r == object.NilPtr {
			continue
		}
		fwd, e := evacuate(r)
		if e != nil {
			return 0, 0, e
		}
		h.SetRoot(i, fwd)
	}

	for scan < free {
		hdr := mem[scan]
		pi := object.Pi(hdr)
		for i := 0; i < pi; i++ {
			slot := object.PtrSlot(scan, i)
			p := object.Addr(mem[slot])
			if p == object.NilPtr {
				continue
			}
			fwd, e := evacuate(p)
			if e != nil {
				return 0, 0, e
			}
			mem[slot] = object.Word(fwd)
		}
		scan += object.Addr(object.SizeWords(hdr))
	}

	h.FinishCycle(free)
	return liveObjects, int(free - base), nil
}

// Node is one object of a logical heap graph. Pointer slots hold node
// indices (-1 for nil).
type Node struct {
	Pi    int
	Delta int
	Ptrs  []int
	Data  []object.Word
}

// Graph is the logical object graph reachable from a heap's roots, in a
// canonical form: nodes are numbered in deterministic breadth-first
// discovery order starting from the roots. Two heaps hold the same logical
// graph exactly when their Graphs are deep-equal, regardless of where the
// collector placed the objects.
type Graph struct {
	Roots []int // node indices, -1 for nil roots
	Nodes []Node
}

// Snapshot extracts the canonical logical graph of h's current space. It
// validates that every traversed pointer refers to an object base within the
// current space.
func Snapshot(h *heap.Heap) (*Graph, error) {
	// Valid object bases in the current space.
	bases := make(map[object.Addr]bool)
	h.Objects(h.CurSpace(), h.AllocPtr(), func(b object.Addr, _ object.Word) bool {
		bases[b] = true
		return true
	})

	g := &Graph{}
	index := make(map[object.Addr]int)
	var queue []object.Addr

	visit := func(p object.Addr, what string) (int, error) {
		if p == object.NilPtr {
			return -1, nil
		}
		if !bases[p] {
			return 0, fmt.Errorf("gcalgo: %s refers to %d, not a live object base", what, p)
		}
		if i, ok := index[p]; ok {
			return i, nil
		}
		i := len(index)
		index[p] = i
		queue = append(queue, p)
		return i, nil
	}

	for ri, r := range h.Roots() {
		i, err := visit(r, fmt.Sprintf("root %d", ri))
		if err != nil {
			return nil, err
		}
		g.Roots = append(g.Roots, i)
	}

	for qi := 0; qi < len(queue); qi++ {
		b := queue[qi]
		hd := h.Header(b)
		if hd.Mark || hd.Gray {
			return nil, fmt.Errorf("gcalgo: live object at %d still has GC bits set", b)
		}
		n := Node{Pi: hd.Pi, Delta: hd.Delta}
		for i := 0; i < hd.Pi; i++ {
			ci, err := visit(h.Ptr(b, i), fmt.Sprintf("pointer %d of object %d", i, b))
			if err != nil {
				return nil, err
			}
			n.Ptrs = append(n.Ptrs, ci)
		}
		for i := 0; i < hd.Delta; i++ {
			n.Data = append(n.Data, h.Data(b, i))
		}
		g.Nodes = append(g.Nodes, n)
	}
	return g, nil
}

// LiveWords returns the total heap words occupied by the graph's objects.
func (g *Graph) LiveWords() int {
	w := 0
	for _, n := range g.Nodes {
		w += object.Size(n.Pi, n.Delta)
	}
	return w
}

// Equal reports the first difference between two canonical graphs, or nil if
// they are identical.
func (g *Graph) Equal(o *Graph) error {
	if len(g.Roots) != len(o.Roots) {
		return fmt.Errorf("gcalgo: root count differs: %d vs %d", len(g.Roots), len(o.Roots))
	}
	for i := range g.Roots {
		if g.Roots[i] != o.Roots[i] {
			return fmt.Errorf("gcalgo: root %d differs: node %d vs %d", i, g.Roots[i], o.Roots[i])
		}
	}
	if len(g.Nodes) != len(o.Nodes) {
		return fmt.Errorf("gcalgo: node count differs: %d vs %d", len(g.Nodes), len(o.Nodes))
	}
	for i := range g.Nodes {
		a, b := &g.Nodes[i], &o.Nodes[i]
		if a.Pi != b.Pi || a.Delta != b.Delta {
			return fmt.Errorf("gcalgo: node %d shape differs: (π=%d,δ=%d) vs (π=%d,δ=%d)", i, a.Pi, a.Delta, b.Pi, b.Delta)
		}
		for j := range a.Ptrs {
			if a.Ptrs[j] != b.Ptrs[j] {
				return fmt.Errorf("gcalgo: node %d pointer %d differs: %d vs %d", i, j, a.Ptrs[j], b.Ptrs[j])
			}
		}
		for j := range a.Data {
			if a.Data[j] != b.Data[j] {
				return fmt.Errorf("gcalgo: node %d data %d differs: %#x vs %#x", i, j, a.Data[j], b.Data[j])
			}
		}
	}
	return nil
}

// VerifyCollection checks that h (after some collector ran on it) holds
// exactly the logical graph captured in before, that the heap's structural
// invariants hold, and that the space is perfectly compacted (allocation
// pointer equals base plus live words). It is the shared oracle for all
// collectors in this repository.
func VerifyCollection(before *Graph, h *heap.Heap) error {
	if err := h.CheckIntegrity(); err != nil {
		return err
	}
	after, err := Snapshot(h)
	if err != nil {
		return err
	}
	if err := before.Equal(after); err != nil {
		return err
	}
	want := h.Base(h.CurSpace()) + object.Addr(before.LiveWords())
	if h.AllocPtr() != want {
		return fmt.Errorf("gcalgo: imperfect compaction: alloc pointer %d, want %d (live words %d)",
			h.AllocPtr(), want, before.LiveWords())
	}
	return nil
}
