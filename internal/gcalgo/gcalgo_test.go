package gcalgo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

// buildDiamondWithCycle builds: root -> a -> {b, c}; b -> d; c -> d; d -> a
// (a cycle through the whole diamond), plus garbage.
func buildDiamondWithCycle(t *testing.T) (*heap.Heap, object.Addr) {
	t.Helper()
	h := heap.New(256)
	alloc := func(pi, delta int) object.Addr {
		a, err := h.Alloc(pi, delta)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := alloc(2, 1)
	garbage := alloc(0, 10)
	b := alloc(1, 1)
	c := alloc(1, 1)
	d := alloc(1, 2)
	_ = garbage
	h.SetPtr(a, 0, b)
	h.SetPtr(a, 1, c)
	h.SetPtr(b, 0, d)
	h.SetPtr(c, 0, d)
	h.SetPtr(d, 0, a) // cycle
	h.SetData(a, 0, 0xA)
	h.SetData(b, 0, 0xB)
	h.SetData(c, 0, 0xC)
	h.SetData(d, 0, 0xD0)
	h.SetData(d, 1, 0xD1)
	h.AddRoot(a)
	h.AddRoot(object.NilPtr)
	h.AddRoot(d) // shared root
	return h, a
}

func TestReferenceCollectorDiamond(t *testing.T) {
	h, _ := buildDiamondWithCycle(t)
	before, err := Snapshot(h)
	if err != nil {
		t.Fatal(err)
	}
	liveObj, liveWords, err := Collect(h)
	if err != nil {
		t.Fatal(err)
	}
	if liveObj != 4 {
		t.Fatalf("live objects = %d, want 4 (garbage must not survive)", liveObj)
	}
	wantWords := (2 + 2 + 1) + (2 + 1 + 1) + (2 + 1 + 1) + (2 + 1 + 2)
	if liveWords != wantWords {
		t.Fatalf("live words = %d, want %d", liveWords, wantWords)
	}
	if err := VerifyCollection(before, h); err != nil {
		t.Fatal(err)
	}
	// Compaction: alloc pointer at base + live words.
	if h.UsedWords() != wantWords {
		t.Fatalf("used words after GC = %d, want %d", h.UsedWords(), wantWords)
	}
	// The cycle must still close: root -> a, d -> a.
	a := h.Root(0)
	d := h.Root(2)
	if h.Ptr(d, 0) != a {
		t.Fatalf("cycle broken: d points to %d, a is at %d", h.Ptr(d, 0), a)
	}
}

func TestReferenceCollectorSelfLoopAndEmptyRoots(t *testing.T) {
	h := heap.New(64)
	a, _ := h.Alloc(1, 0)
	h.SetPtr(a, 0, a) // self loop
	h.AddRoot(a)
	before, _ := Snapshot(h)
	if _, _, err := Collect(h); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCollection(before, h); err != nil {
		t.Fatal(err)
	}
	if h.Ptr(h.Root(0), 0) != h.Root(0) {
		t.Fatal("self loop broken")
	}

	// All-nil roots: everything is garbage.
	h2 := heap.New(64)
	_, _ = h2.Alloc(0, 5)
	h2.AddRoot(object.NilPtr)
	if n, w, err := Collect(h2); err != nil || n != 0 || w != 0 {
		t.Fatalf("empty collection: n=%d w=%d err=%v", n, w, err)
	}
}

func TestSnapshotIsCanonical(t *testing.T) {
	// Two heaps holding isomorphic graphs with different allocation orders
	// must produce identical snapshots.
	build := func(order []int) *heap.Heap {
		h := heap.New(128)
		addrs := make([]object.Addr, 3)
		for _, i := range order {
			var err error
			addrs[i], err = h.Alloc(1, 1)
			if err != nil {
				t.Fatal(err)
			}
			h.SetData(addrs[i], 0, object.Word(100+i))
		}
		h.SetPtr(addrs[0], 0, addrs[1])
		h.SetPtr(addrs[1], 0, addrs[2])
		h.AddRoot(addrs[0])
		return h
	}
	g1, err := Snapshot(build([]int{0, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Snapshot(build([]int{2, 0, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.Equal(g2); err != nil {
		t.Fatalf("isomorphic graphs not equal: %v", err)
	}
}

func TestSnapshotRejectsWildPointer(t *testing.T) {
	h := heap.New(64)
	a, _ := h.Alloc(1, 0)
	h.AddRoot(a)
	h.Mem()[object.PtrSlot(a, 0)] = object.Word(a + 1) // interior pointer
	if _, err := Snapshot(h); err == nil {
		t.Fatal("wild pointer not detected")
	}
}

func TestVerifyDetectsDataCorruption(t *testing.T) {
	h, _ := buildDiamondWithCycle(t)
	before, _ := Snapshot(h)
	if _, _, err := Collect(h); err != nil {
		t.Fatal(err)
	}
	// Corrupt one data word of the root object.
	h.SetData(h.Root(0), 0, 0xBAD)
	if err := VerifyCollection(before, h); err == nil {
		t.Fatal("data corruption not detected")
	}
}

func TestVerifyDetectsLostObject(t *testing.T) {
	h, _ := buildDiamondWithCycle(t)
	before, _ := Snapshot(h)
	if _, _, err := Collect(h); err != nil {
		t.Fatal(err)
	}
	// Sever an edge: the graph shape changed.
	h.SetPtr(h.Root(0), 1, object.NilPtr)
	if err := VerifyCollection(before, h); err == nil {
		t.Fatal("severed edge not detected")
	}
}

func TestVerifyDetectsImperfectCompaction(t *testing.T) {
	h, _ := buildDiamondWithCycle(t)
	before, _ := Snapshot(h)
	if _, _, err := Collect(h); err != nil {
		t.Fatal(err)
	}
	// Allocate an extra (unreachable but space-consuming) object: the
	// compaction equality must now fail.
	if _, err := h.Alloc(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCollection(before, h); err == nil {
		t.Fatal("imperfect compaction not detected")
	}
}

func TestCollectOverflowDetected(t *testing.T) {
	// Live data barely fits in fromspace... tospace is the same size, so a
	// true overflow needs live > semispace, which Alloc prevents. Instead,
	// corrupt a header to inflate an object's size beyond tospace.
	h := heap.New(32)
	a, _ := h.Alloc(0, 4)
	h.AddRoot(a)
	h.Mem()[a] = object.Header{Pi: 0, Delta: object.MaxDelta}.Encode()
	if _, _, err := Collect(h); err == nil {
		t.Fatal("tospace overflow not detected")
	}
}

// TestCollectEquivalenceQuick: for random graphs, collecting preserves the
// canonical snapshot (testing/quick property).
func TestCollectEquivalenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := heap.New(4096)
		n := 1 + rng.Intn(40)
		addrs := make([]object.Addr, 0, n)
		for i := 0; i < n; i++ {
			a, err := h.Alloc(rng.Intn(4), rng.Intn(6))
			if err != nil {
				return false
			}
			hd := h.Header(a)
			for j := 0; j < hd.Delta; j++ {
				h.SetData(a, j, rng.Uint64())
			}
			addrs = append(addrs, a)
		}
		for _, a := range addrs {
			hd := h.Header(a)
			for s := 0; s < hd.Pi; s++ {
				if rng.Intn(4) != 0 {
					h.SetPtr(a, s, addrs[rng.Intn(len(addrs))])
				}
			}
		}
		for r := 0; r < 1+rng.Intn(3); r++ {
			h.AddRoot(addrs[rng.Intn(len(addrs))])
		}
		before, err := Snapshot(h)
		if err != nil {
			t.Logf("snapshot: %v", err)
			return false
		}
		if _, _, err := Collect(h); err != nil {
			t.Logf("collect: %v", err)
			return false
		}
		if err := VerifyCollection(before, h); err != nil {
			t.Logf("verify: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
