// Package gcconc defines the concurrent-collection scenario family: a
// benchmark heap collected by the simulated coprocessor while the built-in
// churn mutator runs on the mutator port, with pointer stores going through
// a configurable write barrier (Config.BarrierMode). The family multiplies
// one workload across the barrier disciplines — no barrier, Yuasa-style
// snapshot-at-the-beginning deletion, Dijkstra-style incremental update —
// and pairs each run with the stop-the-world baseline, so the barrier's
// cycle cost, its floating garbage and the mark-termination tail can be
// compared on identical heaps.
//
// Scenarios are plain machine configurations, so the whole serving stack —
// gcserved's content-keyed cache, the jobs tier, sweeps, replay — runs them
// with no plumbing beyond what Config already carries; this package adds the
// canonical expansion and comparison logic on top.
package gcconc

import (
	"fmt"

	"hwgc/internal/core"
	"hwgc/internal/machine"
)

// DefaultMutatorOps is the operation budget a scenario gives the built-in
// mutator when its base config leaves MutatorOps unset: effectively
// unbounded, so the mutator churns for the whole collection.
const DefaultMutatorOps = 1 << 40

// Modes lists every barrier mode, in canonical report order.
func Modes() []machine.BarrierMode {
	return []machine.BarrierMode{machine.BarrierNone, machine.BarrierSATB, machine.BarrierIncUpdate}
}

// Label names a barrier mode for tables: "none", "satb", "incupdate".
func Label(m machine.BarrierMode) string {
	if m == machine.BarrierNone {
		return "none"
	}
	return string(m)
}

// Scenario is one concurrent-collection scenario: a benchmark heap collected
// while the built-in churn mutator runs under Config.BarrierMode. The
// embedded Config carries the barrier mode and the mutator parameters, so a
// Scenario maps one-to-one onto a canonical CollectRequest.
type Scenario struct {
	Bench  string
	Scale  int
	Seed   int64
	Config core.Config
}

// New builds the scenario for one benchmark and barrier mode on top of a
// base configuration. The mutator is switched on (MutatorOps defaults to
// DefaultMutatorOps when the base leaves it unset); every other mutator
// parameter keeps the library default unless the base overrides it.
func New(bench string, scale int, seed int64, base core.Config, mode machine.BarrierMode) Scenario {
	cfg := base
	cfg.BarrierMode = mode
	if cfg.MutatorOps <= 0 {
		cfg.MutatorOps = DefaultMutatorOps
	}
	return Scenario{Bench: bench, Scale: scale, Seed: seed, Config: cfg}
}

// Result pairs a scenario with the statistics of one verified run.
// Stats.Mutator carries the mutator's side: barrier invocations and cycles,
// shaded and floating objects, mark-termination cycles.
type Result struct {
	Scenario Scenario
	Stats    core.Stats
}

// Run executes the scenario once on a freshly built heap. With verify set
// the post-collection heap is checked structurally (the stop-the-world
// oracle cannot predict a mutated graph). Deterministic: the same scenario
// always yields bit-identical Stats.
func Run(s Scenario, verify bool) (Result, error) {
	r, err := core.RunBenchmark(s.Bench, s.Scale, s.Seed, s.Config, verify)
	if err != nil {
		return Result{}, fmt.Errorf("gcconc: %s/%s: %w", s.Bench, Label(s.Config.BarrierMode), err)
	}
	if r.Stats.Mutator == nil {
		return Result{}, fmt.Errorf("gcconc: %s/%s: run reported no mutator statistics", s.Bench, Label(s.Config.BarrierMode))
	}
	return Result{Scenario: s, Stats: r.Stats}, nil
}

// Comparison aggregates the family over one benchmark: the stop-the-world
// baseline (same heap, no mutator) plus one Result per barrier mode, in
// Modes() order.
type Comparison struct {
	Bench string
	STW   core.Stats
	Rows  []Result
}

// Compare runs the full scenario family over one benchmark: a stop-the-world
// baseline and one concurrent run per barrier mode, each on an identically
// built fresh heap.
func Compare(bench string, scale int, seed int64, base core.Config, verify bool) (Comparison, error) {
	stwCfg := base
	stwCfg.BarrierMode = machine.BarrierNone
	stwCfg.MutatorOps = 0
	stw, err := core.RunBenchmark(bench, scale, seed, stwCfg, verify)
	if err != nil {
		return Comparison{}, fmt.Errorf("gcconc: %s/stw: %w", bench, err)
	}
	cmp := Comparison{Bench: bench, STW: stw.Stats}
	for _, mode := range Modes() {
		r, err := Run(New(bench, scale, seed, base, mode), verify)
		if err != nil {
			return Comparison{}, err
		}
		cmp.Rows = append(cmp.Rows, r)
	}
	return cmp, nil
}
