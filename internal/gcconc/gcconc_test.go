package gcconc

import (
	"testing"

	"hwgc/internal/core"
	"hwgc/internal/machine"
)

func TestRunDeterministic(t *testing.T) {
	for _, mode := range Modes() {
		s := New("jlisp", 1, 42, core.Config{Cores: 4}, mode)
		a, err := Run(s, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(s, true)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := a.Stats.DiffFields(&b.Stats); diffs != nil {
			t.Fatalf("%s: repeated run differs: %v", Label(mode), diffs)
		}
	}
}

func TestBarrierCounters(t *testing.T) {
	cmp, err := Compare("jlisp", 1, 42, core.Config{Cores: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != len(Modes()) {
		t.Fatalf("Compare returned %d rows, want %d", len(cmp.Rows), len(Modes()))
	}
	if cmp.STW.Mutator != nil {
		t.Fatal("stop-the-world baseline reported mutator statistics")
	}
	for i, r := range cmp.Rows {
		mode := Modes()[i]
		if r.Scenario.Config.BarrierMode != mode {
			t.Fatalf("row %d carries mode %q, want %q", i, r.Scenario.Config.BarrierMode, mode)
		}
		ms := r.Stats.Mutator
		if ms == nil {
			t.Fatalf("%s: no mutator statistics", Label(mode))
		}
		if ms.Ops == 0 || ms.PtrStores == 0 {
			t.Fatalf("%s: mutator made no progress: %+v", Label(mode), ms)
		}
		switch mode {
		case machine.BarrierNone:
			if ms.BarrierInvocations != 0 || ms.BarrierCycles != 0 || ms.ShadedObjects != 0 {
				t.Fatalf("none: barrier fired: %+v", ms)
			}
		default:
			if ms.BarrierInvocations == 0 || ms.BarrierCycles == 0 {
				t.Fatalf("%s: barrier never fired: %+v", Label(mode), ms)
			}
			if ms.BarrierCycles < ms.BarrierInvocations {
				t.Fatalf("%s: fewer barrier cycles than invocations: %+v", Label(mode), ms)
			}
		}
		if ms.FloatingWords < 0 || ms.FloatingObjects > ms.ShadedObjects {
			t.Fatalf("%s: implausible floating garbage: %+v", Label(mode), ms)
		}
		if ms.MarkTermCycles < 0 || ms.MarkTermCycles > r.Stats.Cycles {
			t.Fatalf("%s: mark-termination cycles out of range: %+v", Label(mode), ms)
		}
	}
}

func TestNewDefaultsMutatorOps(t *testing.T) {
	s := New("db", 1, 1, core.Config{Cores: 2}, machine.BarrierSATB)
	if s.Config.MutatorOps != DefaultMutatorOps {
		t.Fatalf("MutatorOps = %d, want %d", s.Config.MutatorOps, DefaultMutatorOps)
	}
	s = New("db", 1, 1, core.Config{Cores: 2, MutatorOps: 7}, machine.BarrierSATB)
	if s.Config.MutatorOps != 7 {
		t.Fatalf("MutatorOps = %d, want base override 7", s.Config.MutatorOps)
	}
}
