// Package gcnuma defines the locality scenario family: a benchmark heap
// collected by the simulated coprocessor on a NUMA machine — the address
// space interleaved over memory domains, each GC core affine to one domain,
// cross-domain accesses paying a remote latency penalty (internal/mem's
// domain model). The family compares tospace placement policies on identical
// heaps: a flat (uniform-memory) baseline, naive interleaved placement where
// the tospace is striped across all domains, and locality-aware placement
// where each core's evacuation window is served by its own domain. The
// headline metric is the remote-access fraction — how much of the
// collector's DRAM traffic crosses a domain boundary — alongside the cycle
// count.
//
// Scenarios are plain machine configurations, so the whole serving stack —
// gcserved's content-keyed cache, the jobs tier, sweeps, replay — runs them
// with no plumbing beyond what Config already carries; this package adds the
// canonical expansion and comparison logic on top.
package gcnuma

import (
	"fmt"

	"hwgc/internal/core"
	"hwgc/internal/machine"
)

// DefaultDomains is the domain count a scenario uses when its base config
// leaves NUMADomains unset: four domains, a typical socket count for the
// multi-core hosts the paper's FPGA prototype stands in for.
const DefaultDomains = 4

// Mode is one tospace-placement policy of the locality family.
type Mode string

const (
	// ModeFlat is the uniform-memory baseline: the NUMA model is off and
	// every access costs the same, as in the paper's original calibration.
	ModeFlat Mode = "flat"
	// ModeNaive enables the NUMA model with interleaved (placement-blind)
	// tospace: evacuation targets are striped across all domains, so a
	// copied word lands in a remote domain with probability (D-1)/D.
	ModeNaive Mode = "naive"
	// ModeLocal enables the NUMA model with locality-aware placement: the
	// tospace window is served by the evacuating core's own domain, so
	// copies are always local and only fromspace reads can be remote.
	ModeLocal Mode = "local"
)

// Modes lists every placement mode, in canonical report order.
func Modes() []Mode {
	return []Mode{ModeFlat, ModeNaive, ModeLocal}
}

// Label names a mode for tables; it is the mode itself.
func Label(m Mode) string { return string(m) }

// Scenario is one locality scenario: a benchmark heap collected under one
// placement mode. The embedded Config carries the domain count, penalty and
// placement, so a Scenario maps one-to-one onto a canonical CollectRequest.
type Scenario struct {
	Bench  string
	Scale  int
	Seed   int64
	Mode   Mode
	Config core.Config
}

// New builds the scenario for one benchmark and placement mode on top of a
// base configuration. For the NUMA modes the domain count defaults to
// DefaultDomains when the base leaves it unset; penalty and interleave keep
// the library defaults unless the base overrides them. ModeFlat strips every
// NUMA knob from the base so the baseline is the uniform-memory machine.
func New(bench string, scale int, seed int64, base core.Config, mode Mode) Scenario {
	cfg := base
	switch mode {
	case ModeFlat:
		cfg.NUMADomains = 0
		cfg.NUMAPlacement = machine.PlacementNaive
	case ModeLocal:
		cfg.NUMAPlacement = machine.PlacementLocal
	default:
		cfg.NUMAPlacement = machine.PlacementNaive
	}
	if mode != ModeFlat && cfg.NUMADomains <= 0 {
		cfg.NUMADomains = DefaultDomains
	}
	return Scenario{Bench: bench, Scale: scale, Seed: seed, Mode: mode, Config: cfg}
}

// Result pairs a scenario with the statistics of one verified run.
// Stats.Mem carries the locality side: local and remote DRAM acceptances,
// domain-budget conflicts, and the cache counters when the cache model is
// also enabled.
type Result struct {
	Scenario Scenario
	Stats    core.Stats
}

// RemoteFraction returns the share of domain-classified DRAM acceptances
// that crossed a domain boundary, in [0, 1]; zero when the NUMA model was
// off (no access is classified).
func (r Result) RemoteFraction() float64 {
	return RemoteFraction(r.Stats)
}

// RemoteFraction is the remote share of st's classified DRAM traffic.
func RemoteFraction(st core.Stats) float64 {
	total := st.Mem.LocalAccesses + st.Mem.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(st.Mem.RemoteAccesses) / float64(total)
}

// Run executes the scenario once on a freshly built heap, verifying the
// result against the sequential oracle. Deterministic: the same scenario
// always yields bit-identical Stats.
func Run(s Scenario, verify bool) (Result, error) {
	r, err := core.RunBenchmark(s.Bench, s.Scale, s.Seed, s.Config, verify)
	if err != nil {
		return Result{}, fmt.Errorf("gcnuma: %s/%s: %w", s.Bench, Label(s.Mode), err)
	}
	if s.Mode != ModeFlat && r.Stats.Mem.LocalAccesses+r.Stats.Mem.RemoteAccesses == 0 {
		return Result{}, fmt.Errorf("gcnuma: %s/%s: run classified no accesses", s.Bench, Label(s.Mode))
	}
	return Result{Scenario: s, Stats: r.Stats}, nil
}

// Comparison aggregates the family over one benchmark at one core count:
// one Result per placement mode, in Modes() order (the first row is the
// flat uniform-memory baseline).
type Comparison struct {
	Bench string
	Cores int
	Rows  []Result
}

// Flat returns the uniform-memory baseline row.
func (c Comparison) Flat() Result { return c.Rows[0] }

// Compare runs the full scenario family over one benchmark: the flat
// baseline plus one NUMA run per placement policy, each on an identically
// built fresh heap.
func Compare(bench string, scale int, seed int64, base core.Config, verify bool) (Comparison, error) {
	cmp := Comparison{Bench: bench, Cores: base.Cores}
	for _, mode := range Modes() {
		r, err := Run(New(bench, scale, seed, base, mode), verify)
		if err != nil {
			return Comparison{}, err
		}
		cmp.Rows = append(cmp.Rows, r)
	}
	return cmp, nil
}
