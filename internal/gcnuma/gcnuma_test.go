package gcnuma

import (
	"testing"

	"hwgc/internal/core"
	"hwgc/internal/machine"
)

func TestRunDeterministic(t *testing.T) {
	for _, mode := range Modes() {
		s := New("jlisp", 1, 42, core.Config{Cores: 4}, mode)
		a, err := Run(s, true)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(s, true)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := a.Stats.DiffFields(&b.Stats); diffs != nil {
			t.Fatalf("%s: repeated run differs: %v", Label(mode), diffs)
		}
	}
}

func TestLocalityCounters(t *testing.T) {
	cmp, err := Compare("jlisp", 1, 42, core.Config{Cores: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != len(Modes()) {
		t.Fatalf("Compare returned %d rows, want %d", len(cmp.Rows), len(Modes()))
	}
	flat := cmp.Flat()
	if flat.Scenario.Mode != ModeFlat {
		t.Fatalf("first row is %q, want flat baseline", flat.Scenario.Mode)
	}
	if flat.Stats.Mem.LocalAccesses != 0 || flat.Stats.Mem.RemoteAccesses != 0 {
		t.Fatalf("flat baseline classified accesses: %+v", flat.Stats.Mem)
	}
	if flat.RemoteFraction() != 0 {
		t.Fatal("flat baseline has a nonzero remote fraction")
	}
	var naive, local Result
	for _, r := range cmp.Rows {
		switch r.Scenario.Mode {
		case ModeNaive:
			naive = r
		case ModeLocal:
			local = r
		}
		if r.Scenario.Mode == ModeFlat {
			continue
		}
		if r.Scenario.Config.NUMADomains != DefaultDomains {
			t.Fatalf("%s: domains = %d, want default %d",
				Label(r.Scenario.Mode), r.Scenario.Config.NUMADomains, DefaultDomains)
		}
		if f := r.RemoteFraction(); f <= 0 || f >= 1 {
			t.Fatalf("%s: remote fraction %f out of (0, 1)", Label(r.Scenario.Mode), f)
		}
		// NUMA penalties can only slow the collection down.
		if r.Stats.Cycles < flat.Stats.Cycles {
			t.Fatalf("%s: NUMA run faster than the flat baseline (%d < %d)",
				Label(r.Scenario.Mode), r.Stats.Cycles, flat.Stats.Cycles)
		}
	}
	// Locality-aware placement must cut the remote share, and with it the
	// cycle count must not regress past the naive policy.
	if local.RemoteFraction() >= naive.RemoteFraction() {
		t.Fatalf("local placement did not reduce the remote fraction: %f >= %f",
			local.RemoteFraction(), naive.RemoteFraction())
	}
	if local.Stats.Cycles > naive.Stats.Cycles {
		t.Fatalf("local placement slower than naive: %d > %d",
			local.Stats.Cycles, naive.Stats.Cycles)
	}
}

func TestNewModeMapping(t *testing.T) {
	base := core.Config{Cores: 2, NUMADomains: 8, NUMARemotePenalty: 3}
	s := New("db", 1, 1, base, ModeLocal)
	if s.Config.NUMADomains != 8 || s.Config.NUMAPlacement != machine.PlacementLocal {
		t.Fatalf("local scenario config: %+v", s.Config)
	}
	s = New("db", 1, 1, base, ModeNaive)
	if s.Config.NUMADomains != 8 || s.Config.NUMAPlacement != machine.PlacementNaive {
		t.Fatalf("naive scenario config: %+v", s.Config)
	}
	s = New("db", 1, 1, base, ModeFlat)
	if s.Config.NUMADomains != 0 || s.Config.NUMAPlacement != machine.PlacementNaive {
		t.Fatalf("flat scenario did not strip the NUMA knobs: %+v", s.Config)
	}
}
