package heap

import (
	"fmt"
	"io"

	"hwgc/internal/object"
)

// SpaceStats summarizes the contents of the current semispace.
type SpaceStats struct {
	Objects      int // objects allocated (including unreachable ones)
	Words        int // words used
	PointerSlots int
	DataWords    int
	LargestObj   int // words
	Roots        int // non-nil root slots
}

// Stats walks the current space and summarizes it.
func (h *Heap) Stats() SpaceStats {
	var s SpaceStats
	h.Objects(h.cur, h.alloc, func(base object.Addr, hdr object.Word) bool {
		s.Objects++
		size := object.SizeWords(hdr)
		s.Words += size
		s.PointerSlots += object.Pi(hdr)
		s.DataWords += object.Delta(hdr)
		if size > s.LargestObj {
			s.LargestObj = size
		}
		return true
	})
	for _, r := range h.roots {
		if r != object.NilPtr {
			s.Roots++
		}
	}
	return s
}

// Dump writes a human-readable listing of the current space — every object
// with its address, shape, GC bits, pointer slots and data words — plus the
// root set. Intended for debugging small heaps and for golden tests; the
// output is deterministic.
func (h *Heap) Dump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "heap: space %d, %d/%d words used, %d roots\n",
		h.cur, h.UsedWords(), h.semi, len(h.roots)); err != nil {
		return err
	}
	for i, r := range h.roots {
		if _, err := fmt.Fprintf(w, "root[%d] = %d\n", i, r); err != nil {
			return err
		}
	}
	var derr error
	h.Objects(h.cur, h.alloc, func(base object.Addr, hdr object.Word) bool {
		hd := object.Decode(hdr)
		flags := ""
		if hd.Mark {
			flags += " MARK"
		}
		if hd.Gray {
			flags += " GRAY"
		}
		if _, derr = fmt.Fprintf(w, "obj @%d π=%d δ=%d%s\n", base, hd.Pi, hd.Delta, flags); derr != nil {
			return false
		}
		for i := 0; i < hd.Pi; i++ {
			if _, derr = fmt.Fprintf(w, "  ptr[%d] = %d\n", i, h.Ptr(base, i)); derr != nil {
				return false
			}
		}
		for i := 0; i < hd.Delta; i++ {
			if _, derr = fmt.Fprintf(w, "  data[%d] = %#x\n", i, h.Data(base, i)); derr != nil {
				return false
			}
		}
		return true
	})
	return derr
}
