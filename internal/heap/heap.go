// Package heap implements the semispace heap of Cheney-style copying
// collectors (paper Section II).
//
// The heap is divided into two equally sized semispaces. The mutator bump-
// allocates objects in the current space; when the space fills up, a
// collection cycle flips the roles of the spaces and copies all objects
// reachable from the root set into the other space, compacting them at its
// bottom. The root set models the main processor's registers and stacks.
//
// The heap operates on the same word array that the simulated memory model
// schedules accesses to; the mutator and the verification oracle access it
// directly (untimed), while the coprocessor goes through internal/mem.
package heap

import (
	"errors"
	"fmt"

	"hwgc/internal/object"
)

// ErrSpaceFull is returned by Alloc when the current semispace cannot hold
// the requested object; the caller is expected to trigger a GC cycle.
var ErrSpaceFull = errors.New("heap: semispace full")

// Heap is a two-semispace object heap over a flat word array. Word 0 of the
// array is reserved so that address 0 can serve as the nil pointer.
type Heap struct {
	mem      []object.Word
	semi     int // words per semispace
	cur      int // index (0/1) of the space the mutator allocates in
	alloc    object.Addr
	roots    []object.Addr
	allocCnt int64
}

// New creates a heap with two semispaces of semiWords words each.
func New(semiWords int) *Heap {
	if semiWords < object.HeaderWords+1 {
		panic("heap: semispace too small")
	}
	h := &Heap{
		mem:  make([]object.Word, 1+2*semiWords),
		semi: semiWords,
	}
	h.alloc = h.Base(0)
	return h
}

// Mem exposes the backing word array (shared with the memory model).
func (h *Heap) Mem() []object.Word { return h.mem }

// SemiWords returns the size of one semispace in words.
func (h *Heap) SemiWords() int { return h.semi }

// Base returns the base address of semispace s (0 or 1).
func (h *Heap) Base(s int) object.Addr {
	if s == 0 {
		return 1
	}
	return 1 + object.Addr(h.semi)
}

// Limit returns the first address past semispace s.
func (h *Heap) Limit(s int) object.Addr { return h.Base(s) + object.Addr(h.semi) }

// CurSpace returns the index of the space the mutator allocates in.
func (h *Heap) CurSpace() int { return h.cur }

// OtherSpace returns the index of the space a collection would copy into.
func (h *Heap) OtherSpace() int { return 1 - h.cur }

// AllocPtr returns the current bump-allocation pointer.
func (h *Heap) AllocPtr() object.Addr { return h.alloc }

// UsedWords returns the number of words allocated in the current space.
func (h *Heap) UsedWords() int { return int(h.alloc - h.Base(h.cur)) }

// FreeWords returns the words remaining in the current space.
func (h *Heap) FreeWords() int { return h.semi - h.UsedWords() }

// AllocCount returns the total number of objects allocated since creation.
func (h *Heap) AllocCount() int64 { return h.allocCnt }

// InSpace reports whether a is a valid object address inside space s.
func (h *Heap) InSpace(a object.Addr, s int) bool {
	return a >= h.Base(s) && a < h.Limit(s)
}

// Alloc allocates an object with pi pointer slots (initialized to nil) and
// delta data words (initialized to zero) in the current space and writes its
// header. It returns ErrSpaceFull when the object does not fit.
func (h *Heap) Alloc(pi, delta int) (object.Addr, error) {
	if pi < 0 || pi > object.MaxPi || delta < 0 || delta > object.MaxDelta {
		return object.NilPtr, fmt.Errorf("heap: invalid object shape π=%d δ=%d", pi, delta)
	}
	size := object.Size(pi, delta)
	if int(h.alloc)+size > int(h.Limit(h.cur)) {
		return object.NilPtr, ErrSpaceFull
	}
	base := h.alloc
	h.alloc += object.Addr(size)
	h.mem[base] = object.Header{Pi: pi, Delta: delta}.Encode()
	h.mem[base+1] = 0
	for i := 0; i < pi+delta; i++ {
		h.mem[base+object.HeaderWords+object.Addr(i)] = 0
	}
	h.allocCnt++
	return base, nil
}

// HeaderWord returns header word 0 of the object at base.
func (h *Heap) HeaderWord(base object.Addr) object.Word { return h.mem[base] }

// Header returns the decoded header of the object at base.
func (h *Heap) Header(base object.Addr) object.Header { return object.Decode(h.mem[base]) }

// SetPtr stores a reference into pointer slot i of the object at base.
func (h *Heap) SetPtr(base object.Addr, i int, target object.Addr) {
	hd := object.Decode(h.mem[base])
	if i < 0 || i >= hd.Pi {
		panic(fmt.Sprintf("heap: pointer slot %d out of range (π=%d)", i, hd.Pi))
	}
	h.mem[object.PtrSlot(base, i)] = object.Word(target)
}

// Ptr loads pointer slot i of the object at base.
func (h *Heap) Ptr(base object.Addr, i int) object.Addr {
	return object.Addr(h.mem[object.PtrSlot(base, i)])
}

// SetData stores a data word into data slot i of the object at base.
func (h *Heap) SetData(base object.Addr, i int, w object.Word) {
	hd := object.Decode(h.mem[base])
	if i < 0 || i >= hd.Delta {
		panic(fmt.Sprintf("heap: data slot %d out of range (δ=%d)", i, hd.Delta))
	}
	h.mem[object.DataSlot(base, hd.Pi, i)] = w
}

// Data loads data word i of the object at base.
func (h *Heap) Data(base object.Addr, i int) object.Word {
	hd := object.Decode(h.mem[base])
	return h.mem[object.DataSlot(base, hd.Pi, i)]
}

// Roots returns the root set (aliased, not copied).
func (h *Heap) Roots() []object.Addr { return h.roots }

// NumRoots returns the number of root slots.
func (h *Heap) NumRoots() int { return len(h.roots) }

// AddRoot appends a root slot referring to target and returns its index.
func (h *Heap) AddRoot(target object.Addr) int {
	h.roots = append(h.roots, target)
	return len(h.roots) - 1
}

// Root returns the value of root slot i.
func (h *Heap) Root(i int) object.Addr { return h.roots[i] }

// SetRoot overwrites root slot i.
func (h *Heap) SetRoot(i int, target object.Addr) { h.roots[i] = target }

// ClearRoots empties the root set.
func (h *Heap) ClearRoots() { h.roots = h.roots[:0] }

// FinishCycle completes a collection cycle: the space the collector copied
// into becomes the current space and the allocation pointer is set to the
// collector's final free pointer. The collector has already rewritten the
// root slots to point into the new space.
func (h *Heap) FinishCycle(finalFree object.Addr) {
	to := h.OtherSpace()
	if finalFree < h.Base(to) || finalFree > h.Limit(to) {
		panic(fmt.Sprintf("heap: final free pointer %d outside tospace", finalFree))
	}
	h.cur = to
	h.alloc = finalFree
}

// Objects iterates over the contiguously allocated objects of space s, from
// its base up to limit, invoking fn with each object's base address and
// header word. Iteration stops early if fn returns false or a header is
// implausible (size 2 with no body is allowed; a zero header terminates).
func (h *Heap) Objects(s int, limit object.Addr, fn func(base object.Addr, hdr object.Word) bool) {
	a := h.Base(s)
	for a < limit {
		w := h.mem[a]
		if !fn(a, w) {
			return
		}
		a += object.Addr(object.SizeWords(w))
	}
}

// Clone returns a deep copy of the heap (memory, roots, space state). The
// verification oracle collects on a clone and compares outcomes.
func (h *Heap) Clone() *Heap {
	c := &Heap{
		mem:      append([]object.Word(nil), h.mem...),
		semi:     h.semi,
		cur:      h.cur,
		alloc:    h.alloc,
		roots:    append([]object.Addr(nil), h.roots...),
		allocCnt: h.allocCnt,
	}
	return c
}

// CheckIntegrity validates the structural invariants of the current space:
// objects tile it exactly from base to the allocation pointer, headers are
// clean (no mark/gray bits, header word 1 zero), and every pointer slot and
// root refers to nil or to an object base inside the current space.
func (h *Heap) CheckIntegrity() error {
	base := h.Base(h.cur)
	bases := make(map[object.Addr]bool)
	a := base
	for a < h.alloc {
		w := h.mem[a]
		hd := object.Decode(w)
		if hd.Mark || hd.Gray {
			return fmt.Errorf("heap: object at %d has GC bits set (%+v)", a, hd)
		}
		// Header word 1 is reserved; the mutator zeroes it at allocation but
		// collectors are not required to rewrite it, so it is not checked.
		bases[a] = true
		next := a + object.Addr(object.SizeWords(w))
		if next > h.alloc {
			return fmt.Errorf("heap: object at %d (size %d) overruns alloc pointer %d", a, object.SizeWords(w), h.alloc)
		}
		a = next
	}
	if a != h.alloc {
		return fmt.Errorf("heap: objects end at %d, alloc pointer at %d", a, h.alloc)
	}
	check := func(what string, p object.Addr) error {
		if p == object.NilPtr {
			return nil
		}
		if !bases[p] {
			return fmt.Errorf("heap: %s refers to %d, not an object base in the current space", what, p)
		}
		return nil
	}
	for i, r := range h.roots {
		if err := check(fmt.Sprintf("root %d", i), r); err != nil {
			return err
		}
	}
	for b := range bases {
		hd := object.Decode(h.mem[b])
		for i := 0; i < hd.Pi; i++ {
			if err := check(fmt.Sprintf("pointer %d of object %d", i, b), h.Ptr(b, i)); err != nil {
				return err
			}
		}
	}
	return nil
}
