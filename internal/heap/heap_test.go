package heap

import (
	"errors"
	"strings"
	"testing"

	"hwgc/internal/object"
)

func TestNewHeapLayout(t *testing.T) {
	h := New(100)
	if h.Base(0) != 1 || h.Limit(0) != 101 || h.Base(1) != 101 || h.Limit(1) != 201 {
		t.Fatalf("space layout wrong: %d..%d / %d..%d", h.Base(0), h.Limit(0), h.Base(1), h.Limit(1))
	}
	if h.CurSpace() != 0 || h.OtherSpace() != 1 {
		t.Fatalf("initial spaces wrong")
	}
	if h.AllocPtr() != 1 || h.UsedWords() != 0 || h.FreeWords() != 100 {
		t.Fatalf("initial allocation state wrong")
	}
	if len(h.Mem()) != 201 {
		t.Fatalf("memory size = %d, want 201", len(h.Mem()))
	}
}

func TestAllocInitializesObject(t *testing.T) {
	h := New(100)
	a, err := h.Alloc(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	hd := h.Header(a)
	if hd.Pi != 2 || hd.Delta != 3 || hd.Mark || hd.Gray {
		t.Fatalf("header after alloc: %+v", hd)
	}
	for i := 0; i < 2; i++ {
		if h.Ptr(a, i) != object.NilPtr {
			t.Fatalf("pointer slot %d not nil", i)
		}
	}
	for i := 0; i < 3; i++ {
		if h.Data(a, i) != 0 {
			t.Fatalf("data slot %d not zero", i)
		}
	}
	if h.AllocCount() != 1 {
		t.Fatalf("alloc count = %d", h.AllocCount())
	}
}

func TestAllocUntilFull(t *testing.T) {
	h := New(50)
	n := 0
	for {
		_, err := h.Alloc(1, 2) // 5 words each
		if err != nil {
			if !errors.Is(err, ErrSpaceFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("allocated %d objects in 50 words, want 10", n)
	}
	if h.FreeWords() != 0 {
		t.Fatalf("free words = %d", h.FreeWords())
	}
}

func TestAllocRejectsInvalidShape(t *testing.T) {
	h := New(100)
	if _, err := h.Alloc(object.MaxPi+1, 0); err == nil {
		t.Error("oversized pi accepted")
	}
	if _, err := h.Alloc(0, object.MaxDelta+1); err == nil {
		t.Error("oversized delta accepted")
	}
	if _, err := h.Alloc(-1, 0); err == nil {
		t.Error("negative pi accepted")
	}
}

func TestPtrDataAccessorsBoundsPanic(t *testing.T) {
	h := New(100)
	a, _ := h.Alloc(1, 1)
	for _, fn := range []func(){
		func() { h.SetPtr(a, 1, object.NilPtr) },
		func() { h.SetData(a, 1, 0) },
		func() { h.SetPtr(a, -1, object.NilPtr) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range accessor did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRoots(t *testing.T) {
	h := New(100)
	a, _ := h.Alloc(0, 1)
	i := h.AddRoot(a)
	j := h.AddRoot(object.NilPtr)
	if h.NumRoots() != 2 || h.Root(i) != a || h.Root(j) != object.NilPtr {
		t.Fatalf("root bookkeeping wrong")
	}
	h.SetRoot(j, a)
	if h.Root(j) != a {
		t.Fatalf("SetRoot did not stick")
	}
	h.ClearRoots()
	if h.NumRoots() != 0 {
		t.Fatalf("ClearRoots left %d roots", h.NumRoots())
	}
}

func TestFinishCycleFlipsSpaces(t *testing.T) {
	h := New(100)
	_, _ = h.Alloc(0, 5)
	free := h.Base(1) + 7
	h.FinishCycle(free)
	if h.CurSpace() != 1 || h.AllocPtr() != free {
		t.Fatalf("flip wrong: space %d alloc %d", h.CurSpace(), h.AllocPtr())
	}
	// And back.
	h.FinishCycle(h.Base(0))
	if h.CurSpace() != 0 || h.UsedWords() != 0 {
		t.Fatalf("second flip wrong")
	}
}

func TestFinishCyclePanicsOutsideTospace(t *testing.T) {
	h := New(100)
	defer func() {
		if recover() == nil {
			t.Error("FinishCycle with bad pointer did not panic")
		}
	}()
	h.FinishCycle(h.Limit(1) + 1)
}

func TestObjectsIteration(t *testing.T) {
	h := New(100)
	var want []object.Addr
	for i := 0; i < 5; i++ {
		a, _ := h.Alloc(i%3, i)
		want = append(want, a)
	}
	var got []object.Addr
	h.Objects(0, h.AllocPtr(), func(b object.Addr, _ object.Word) bool {
		got = append(got, b)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d objects, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("object %d at %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	h.Objects(0, h.AllocPtr(), func(object.Addr, object.Word) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop iterated %d", n)
	}
}

func TestCheckIntegrityDetectsCorruption(t *testing.T) {
	build := func() *Heap {
		h := New(100)
		a, _ := h.Alloc(1, 1)
		b, _ := h.Alloc(0, 2)
		h.SetPtr(a, 0, b)
		h.AddRoot(a)
		return h
	}

	if err := build().CheckIntegrity(); err != nil {
		t.Fatalf("clean heap flagged: %v", err)
	}

	h := build()
	h.Mem()[h.Root(0)] = object.Header{Pi: 1, Delta: 1, Mark: true}.Encode()
	if err := h.CheckIntegrity(); err == nil {
		t.Error("mark bit not detected")
	}

	h = build()
	h.Mem()[object.PtrSlot(h.Root(0), 0)] = object.Word(h.Root(0) + 1) // interior pointer
	if err := h.CheckIntegrity(); err == nil {
		t.Error("interior pointer not detected")
	}

	h = build()
	h.SetRoot(0, h.Limit(0)) // root outside space
	if err := h.CheckIntegrity(); err == nil {
		t.Error("wild root not detected")
	}

	h = build()
	h.Mem()[h.Root(0)] = object.Header{Pi: 0, Delta: object.MaxDelta}.Encode() // overruns alloc
	if err := h.CheckIntegrity(); err == nil {
		t.Error("size overrun not detected")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	h := New(100)
	a, _ := h.Alloc(0, 1)
	h.AddRoot(a)
	h.SetData(a, 0, 11)
	c := h.Clone()
	h.SetData(a, 0, 22)
	h.SetRoot(0, object.NilPtr)
	if c.Data(a, 0) != 11 || c.Root(0) != a {
		t.Fatalf("clone shares state with original")
	}
	if c.AllocPtr() != h.AllocPtr() || c.SemiWords() != h.SemiWords() {
		t.Fatalf("clone metadata differs")
	}
}

func TestInSpace(t *testing.T) {
	h := New(100)
	if !h.InSpace(1, 0) || h.InSpace(101, 0) || !h.InSpace(101, 1) || h.InSpace(0, 0) {
		t.Fatalf("InSpace boundaries wrong")
	}
}

func TestStatsAndDump(t *testing.T) {
	h := New(128)
	a, _ := h.Alloc(2, 3)
	b, _ := h.Alloc(0, 10)
	h.SetPtr(a, 0, b)
	h.SetData(a, 0, 0xBEEF)
	h.AddRoot(a)
	h.AddRoot(object.NilPtr)

	s := h.Stats()
	if s.Objects != 2 || s.Words != 7+12 || s.PointerSlots != 2 || s.DataWords != 13 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.LargestObj != 12 || s.Roots != 1 {
		t.Fatalf("stats wrong: %+v", s)
	}

	var sb strings.Builder
	if err := h.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"2 roots", "root[0] = 1", "π=2 δ=3", "0xbeef", "ptr[0] ="} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
