package heap

import (
	"fmt"

	"hwgc/internal/object"
)

// State is the complete serializable state of a Heap: the raw word array
// (both semispaces plus the reserved nil word), the space roles, the bump
// pointer, and the root set. It is a plain-data mirror of Heap used by the
// snapshot subsystem; a State round-trips through FromState to a heap that
// behaves identically.
type State struct {
	Semi     int
	Cur      int
	Alloc    object.Addr
	AllocCnt int64
	Roots    []object.Addr
	Mem      []object.Word
}

// CaptureState returns a deep copy of the heap's state.
func (h *Heap) CaptureState() *State {
	return &State{
		Semi:     h.semi,
		Cur:      h.cur,
		Alloc:    h.alloc,
		AllocCnt: h.allocCnt,
		Roots:    append([]object.Addr(nil), h.roots...),
		Mem:      append([]object.Word(nil), h.mem...),
	}
}

// FromState reconstructs a heap from a captured state, validating the
// structural invariants (sizes, space index, pointer bounds) so a corrupt
// or adversarial snapshot cannot produce a heap that panics on first use.
func FromState(s *State) (*Heap, error) {
	if s == nil {
		return nil, fmt.Errorf("heap: nil state")
	}
	if s.Semi < object.HeaderWords+1 {
		return nil, fmt.Errorf("heap: state semispace %d too small", s.Semi)
	}
	if len(s.Mem) != 1+2*s.Semi {
		return nil, fmt.Errorf("heap: state memory has %d words, want %d", len(s.Mem), 1+2*s.Semi)
	}
	if s.Cur != 0 && s.Cur != 1 {
		return nil, fmt.Errorf("heap: state current space %d out of range", s.Cur)
	}
	h := &Heap{
		mem:      append([]object.Word(nil), s.Mem...),
		semi:     s.Semi,
		cur:      s.Cur,
		alloc:    s.Alloc,
		allocCnt: s.AllocCnt,
		roots:    append([]object.Addr(nil), s.Roots...),
	}
	if s.Alloc < h.Base(s.Cur) || s.Alloc > h.Limit(s.Cur) {
		return nil, fmt.Errorf("heap: state alloc pointer %d outside space %d", s.Alloc, s.Cur)
	}
	for i, r := range h.roots {
		if int(r) >= len(h.mem) {
			return nil, fmt.Errorf("heap: state root %d (%d) outside memory", i, r)
		}
	}
	return h, nil
}
