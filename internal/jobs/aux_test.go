package jobs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func drainClose(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// Aux records must survive a restart (same WAL), keep their order and
// payloads, and filter by tag.
func TestJobsAuxRecordsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendAux("", "x", nil); err == nil {
		t.Fatal("AppendAux accepted an empty tag")
	}
	if err := m.AppendAux("sweep", "s1", []byte(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendAux("other", "o1", []byte("misc")); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendAux("sweep", "s2", []byte(`{"n":2}`)); err != nil {
		t.Fatal(err)
	}
	drainClose(t, m)

	m2, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(t, m2)
	sweeps := m2.AuxRecords("sweep")
	if len(sweeps) != 2 || sweeps[0].ID != "s1" || sweeps[1].ID != "s2" {
		t.Fatalf("sweep aux records after restart: %+v", sweeps)
	}
	if string(sweeps[1].Payload) != `{"n":2}` {
		t.Fatalf("payload = %q", sweeps[1].Payload)
	}
	if all := m2.AuxRecords(""); len(all) != 3 || all[1].Tag != "other" {
		t.Fatalf("all aux records after restart: %+v", all)
	}
	if err := m2.AppendAux("sweep", "s3", nil); err != nil {
		t.Fatal(err)
	}
	if got := len(m2.AuxRecords("sweep")); got != 3 {
		t.Fatalf("sweep aux records = %d, want 3", got)
	}
}

// Compaction (the startup Rewrite) must retain only the newest maxAuxRetain
// aux records.
func TestJobsAuxCompactionRetention(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := maxAuxRetain + 50
	for i := 0; i < total; i++ {
		if err := m.AppendAux("t", fmt.Sprintf("id-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	drainClose(t, m)

	m2, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainClose(t, m2)
	recs := m2.AuxRecords("t")
	if len(recs) != maxAuxRetain {
		t.Fatalf("retained %d aux records, want %d", len(recs), maxAuxRetain)
	}
	if recs[0].ID != "id-50" || recs[len(recs)-1].ID != fmt.Sprintf("id-%d", total-1) {
		t.Fatalf("retention kept wrong window: first %s last %s", recs[0].ID, recs[len(recs)-1].ID)
	}
}
