package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"testing"
	"time"

	"hwgc"
)

// benchEnvelope is checkpointedEnvelope for benchmarks: a genuine mid-run
// S21 envelope cut 200 cycles into the collection.
func benchEnvelope(b *testing.B, cores int, seed int64) *ExportedJob {
	b.Helper()
	req := hwgc.CollectRequest{Bench: "search", Seed: seed, Config: hwgc.Config{Cores: cores}}
	canonical, err := req.CanonicalJSON()
	if err != nil {
		b.Fatal(err)
	}
	rc, err := hwgc.StartCollectRequest(req)
	if err != nil {
		b.Fatal(err)
	}
	if done, err := rc.StepCycles(200); err != nil || done {
		b.Fatalf("step: done=%v err=%v (need a mid-run position)", done, err)
	}
	snap, err := rc.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	return &ExportedJob{
		V:        1,
		ID:       hwgc.KeyBytes(canonical),
		Kind:     KindCollect,
		Request:  canonical,
		State:    StateCheckpointed,
		Cycle:    rc.Cycle(),
		Snapshot: snap,
		SnapCRC:  crc32.ChecksumIEEE(snap),
	}
}

// BenchmarkJobScheduler measures the pure scheduling cost of the stride
// scheduler — enqueue, fair-share pick, and service charge for a mixed
// interactive/batch backlog — without running any simulation work.
//
// Besides ns/op it reports two deterministic metrics that the benchdiff
// gate pins exactly:
//
//   - sched-picks: picks completed per op (the drained backlog size);
//   - sched-order-hash: an FNV-32a hash of the class-name pick sequence.
//     The scheduling discipline is deterministic (stride + aging with
//     deterministic tie-breaks), so any change to the pick order — an
//     altered weight rule, aging constant, or tie-break — shifts this hash
//     and trips the gate even when ns/op stays flat.
func BenchmarkJobScheduler(b *testing.B) {
	const perClass = 256
	classes := []ClassConfig{
		{Name: "interactive", Weight: 8},
		{Name: "batch", Weight: 1},
	}

	var orderHash uint32
	var picks int
	for i := 0; i < b.N; i++ {
		s, err := NewScheduler(classes, 0)
		if err != nil {
			b.Fatal(err)
		}
		// A full backlog of both classes before the first pick, so every
		// pick exercises the contended cross-class decision.
		for n := 0; n < perClass; n++ {
			for _, c := range classes {
				j := &job{ID: fmt.Sprintf("%s-%d", c.Name, n), Class: c.Name, State: StateQueued}
				if err := s.Enqueue(j); err != nil {
					b.Fatal(err)
				}
			}
		}
		h := fnv.New32a()
		picks = 0
		for s.Backlog() > 0 {
			j := s.Next()
			if j == nil {
				b.Fatal("scheduler closed with backlog remaining")
			}
			_, _ = h.Write([]byte(j.Class))
			s.Charge(j.Class)
			picks++
		}
		s.Close()
		orderHash = h.Sum32()
	}
	b.ReportMetric(float64(picks), "sched-picks")
	b.ReportMetric(float64(orderHash), "sched-order-hash")
}

// BenchmarkMigration measures the full checkpoint-migration ingest path on
// the receiving side: decode the wire envelope, validate it, adopt it into a
// fresh manager, resume from the shipped S21 snapshot, and run to completion.
// The envelope itself is built once outside the timed region, the way a
// rebalance pass ships the same exported bytes to one destination.
//
// Besides ns/op it reports three deterministic metrics that the benchdiff
// gate pins exactly:
//
//   - env-bytes: size of the JSON wire envelope. Any snapshot-codec or
//     envelope-schema change shifts this.
//   - snap-crc: CRC-32 of the shipped snapshot. Catches silent changes to
//     the S21 encoding or to the simulator state at the capture boundary.
//   - snap-cycle: the simulated cycle at which the checkpoint was cut; a
//     drifted boundary means preemption semantics changed.
func BenchmarkMigration(b *testing.B) {
	env := benchEnvelope(b, 4, 21)
	wire, err := json.Marshal(env)
	if err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var shipped ExportedJob
		if err := json.Unmarshal(wire, &shipped); err != nil {
			b.Fatal(err)
		}
		if err := shipped.Validate(); err != nil {
			b.Fatal(err)
		}
		m, err := Open(Options{Dir: b.TempDir(), Runners: 1, CheckpointCycles: 1 << 40})
		if err != nil {
			b.Fatal(err)
		}
		if _, accepted, err := m.Import(&shipped); err != nil || !accepted {
			b.Fatalf("import: accepted=%v err=%v", accepted, err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			info, err := m.Get(shipped.ID)
			if err != nil {
				b.Fatal(err)
			}
			if info.State == StateDone {
				break
			}
			if info.State.Terminal() || time.Now().After(deadline) {
				b.Fatalf("imported job state %s", info.State)
			}
			time.Sleep(time.Millisecond)
		}
		if _, _, err := m.Result(shipped.ID); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := m.Drain(ctx); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(wire)), "env-bytes")
	b.ReportMetric(float64(env.SnapCRC), "snap-crc")
	b.ReportMetric(float64(env.Cycle), "snap-cycle")
}
