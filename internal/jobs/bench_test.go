package jobs

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// BenchmarkJobScheduler measures the pure scheduling cost of the stride
// scheduler — enqueue, fair-share pick, and service charge for a mixed
// interactive/batch backlog — without running any simulation work.
//
// Besides ns/op it reports two deterministic metrics that the benchdiff
// gate pins exactly:
//
//   - sched-picks: picks completed per op (the drained backlog size);
//   - sched-order-hash: an FNV-32a hash of the class-name pick sequence.
//     The scheduling discipline is deterministic (stride + aging with
//     deterministic tie-breaks), so any change to the pick order — an
//     altered weight rule, aging constant, or tie-break — shifts this hash
//     and trips the gate even when ns/op stays flat.
func BenchmarkJobScheduler(b *testing.B) {
	const perClass = 256
	classes := []ClassConfig{
		{Name: "interactive", Weight: 8},
		{Name: "batch", Weight: 1},
	}

	var orderHash uint32
	var picks int
	for i := 0; i < b.N; i++ {
		s, err := NewScheduler(classes, 0)
		if err != nil {
			b.Fatal(err)
		}
		// A full backlog of both classes before the first pick, so every
		// pick exercises the contended cross-class decision.
		for n := 0; n < perClass; n++ {
			for _, c := range classes {
				j := &job{ID: fmt.Sprintf("%s-%d", c.Name, n), Class: c.Name, State: StateQueued}
				if err := s.Enqueue(j); err != nil {
					b.Fatal(err)
				}
			}
		}
		h := fnv.New32a()
		picks = 0
		for s.Backlog() > 0 {
			j := s.Next()
			if j == nil {
				b.Fatal("scheduler closed with backlog remaining")
			}
			_, _ = h.Write([]byte(j.Class))
			s.Charge(j.Class)
			picks++
		}
		s.Close()
		orderHash = h.Sum32()
	}
	b.ReportMetric(float64(picks), "sched-picks")
	b.ReportMetric(float64(orderHash), "sched-order-hash")
}
