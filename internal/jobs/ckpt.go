package jobs

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// A job's checkpoint file holds one suspended collection point: which sweep
// point it is, the clock cycle reached, and the machine snapshot produced by
// RequestCollection.Snapshot. The framing follows the WAL's convention:
//
//	file = magic "HWGCJCK1" | u32 point | u64 cycle | u32 snapLen | snap | u32 crc32(IEEE, snap)
//
// Files are written to a temp name, fsynced and renamed, so a crash leaves
// either the previous checkpoint or the new one — never a torn file. An
// unreadable or stale file is swept (with a metric) and the point restarts
// from scratch; determinism means only time is lost, never correctness.
const (
	ckptMagic  = "HWGCJCK1"
	ckptSuffix = ".ckpt"
)

// checkpoint is one decoded job checkpoint.
type checkpoint struct {
	Point int
	Cycle int64
	Snap  []byte
}

// ckptPath returns the checkpoint file path for a job ID (IDs are hex
// SHA-256, so they are always filename-safe).
func (m *Manager) ckptPath(id string) string {
	return filepath.Join(m.opts.Dir, id+ckptSuffix)
}

// writeCheckpoint atomically persists ck at path.
func writeCheckpoint(path string, ck checkpoint) error {
	buf := make([]byte, 0, len(ckptMagic)+16+len(ck.Snap)+4)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ck.Point))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ck.Cycle))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ck.Snap)))
	buf = append(buf, ck.Snap...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(ck.Snap))
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readCheckpoint loads and validates one checkpoint file.
func readCheckpoint(path string) (checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return checkpoint{}, err
	}
	hdr := len(ckptMagic) + 16
	if len(data) < hdr || string(data[:len(ckptMagic)]) != ckptMagic {
		return checkpoint{}, fmt.Errorf("jobs: %s: bad checkpoint header", path)
	}
	off := len(ckptMagic)
	ck := checkpoint{
		Point: int(binary.LittleEndian.Uint32(data[off:])),
		Cycle: int64(binary.LittleEndian.Uint64(data[off+4:])),
	}
	n := int(binary.LittleEndian.Uint32(data[off+12:]))
	body := data[hdr:]
	if n < 0 || len(body) != n+4 {
		return checkpoint{}, fmt.Errorf("jobs: %s: truncated checkpoint", path)
	}
	ck.Snap = body[:n]
	if crc32.ChecksumIEEE(ck.Snap) != binary.LittleEndian.Uint32(body[n:]) {
		return checkpoint{}, fmt.Errorf("jobs: %s: checkpoint checksum mismatch", path)
	}
	return ck, nil
}
