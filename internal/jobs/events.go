package jobs

import (
	"sync"
	"time"
)

// eventLog is one job's lifecycle event history plus its live subscribers.
// The history is bounded: sweep jobs emit one event per point transition
// and preemption, so the cap comfortably covers MaxSweepPoints plus
// pathological preemption storms; older events are dropped from replay (a
// subscriber still sees the job's current state because the newest events
// are kept).
type eventLog struct {
	mu    sync.Mutex
	seq   int64
	ring  []Event // newest maxEvents, in order
	subs  map[chan Event]struct{}
	done  bool // terminal event emitted: new subscribers get a closed stream
	clock func() time.Time
}

// maxEvents bounds the replay history per job.
const maxEvents = 256

// subBuffer is each subscriber's channel capacity. A subscriber that stops
// draining (a stalled SSE client) loses events rather than blocking the
// runner: delivery is best-effort, the authoritative record is the WAL.
const subBuffer = 32

func newEventLog(clock func() time.Time) *eventLog {
	if clock == nil {
		clock = time.Now
	}
	return &eventLog{subs: make(map[chan Event]struct{}), clock: clock}
}

// emit records one lifecycle event and fans it out to subscribers. Terminal
// events close every subscriber channel after delivery.
func (l *eventLog) emit(state State, point int, cycle int64, errMsg string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev := Event{Seq: l.seq, Time: l.clock(), State: state, Point: point, Cycle: cycle, Error: errMsg}
	l.ring = append(l.ring, ev)
	if len(l.ring) > maxEvents {
		l.ring = l.ring[len(l.ring)-maxEvents:]
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, the WAL is the record
		}
	}
	if state.Terminal() {
		l.done = true
		for ch := range l.subs {
			close(ch)
			delete(l.subs, ch)
		}
	}
}

// subscribe returns the replayable history and a live channel (nil when the
// job is already terminal — the history then already ends in the terminal
// event). Call unsubscribe when done.
func (l *eventLog) subscribe() ([]Event, chan Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	history := append([]Event(nil), l.ring...)
	if l.done {
		return history, nil
	}
	ch := make(chan Event, subBuffer)
	l.subs[ch] = struct{}{}
	return history, ch
}

// unsubscribe detaches ch. Safe to call after a terminal event already
// closed it.
func (l *eventLog) unsubscribe(ch chan Event) {
	if ch == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.subs[ch]; ok {
		delete(l.subs, ch)
		close(ch)
	}
}
