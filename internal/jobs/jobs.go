// Package jobs implements gcjobs, the durable asynchronous job subsystem
// behind gcserved's /v1/jobs endpoints. It turns the synchronous serving
// tier into one that can accept work it cannot finish immediately: a
// write-ahead log (append-only, CRC-framed like internal/snapshot) persists
// every submission and state transition, a scheduler shares the runner pool
// across priority classes with weighted fair queuing and anti-starvation
// aging, and long-running collections are preempted at checkpoint
// boundaries — reusing the snapshot machinery of hwgc.Collection — when
// higher-priority work is waiting, so a 16-core sweep no longer blocks a
// one-shot collect.
//
// The design carries the paper's synchronization discipline to the job
// level: the uncontended path is free (a lone job runs checkpoint to
// checkpoint without ever being interrupted), contention is bounded (a
// preempted job loses at most the work since its last checkpoint, which is
// zero — the snapshot restore contract makes resumed results bit-identical),
// and every stall is accounted for (per-class queue depth, preemption,
// resume and WAL fsync metrics).
//
// Job lifecycle:
//
//	queued -> running -> done | failed | cancelled | migrated
//	            ^  |
//	            |  v           (preemption / drain / crash, always at a
//	         checkpointed       checkpoint boundary)
//
// Submissions are idempotent: the job ID is the content address of the
// canonical request (hwgc.KeyBytes), so resubmitting a request — or
// replaying a submission from the WAL after a crash — dedupes onto the
// same job and the same result.
package jobs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// State is a job's position in its lifecycle.
type State string

// The job states, in lifecycle order. Checkpointed means "preempted at a
// checkpoint boundary and waiting to be rescheduled"; it is a queue state,
// not a terminal one. Migrated means "handed off to another backend via a
// checkpoint export" — terminal locally, but the job lives on elsewhere.
const (
	StateQueued       State = "queued"
	StateRunning      State = "running"
	StateCheckpointed State = "checkpointed"
	StateDone         State = "done"
	StateFailed       State = "failed"
	StateCancelled    State = "cancelled"
	StateMigrated     State = "migrated"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateMigrated
}

// Job kinds.
const (
	KindCollect = "collect"
	KindSweep   = "sweep"
)

// ClassConfig names one priority class and its fair-share weight. A class
// with weight w receives w shares of runner time while backlogged, and its
// jobs preempt running jobs of strictly lower-weight classes at their next
// checkpoint boundary.
type ClassConfig struct {
	Name   string
	Weight int
}

// DefaultClasses is the class set used when none is configured: interactive
// work outweighs (and preempts) batch work 8:1. The first class is the
// default for submissions that do not name one.
const DefaultClasses = "interactive:8,batch:1"

// ParseClasses parses a "name:weight,name:weight" class specification.
// Names must be unique, non-empty and metric-label safe; weights positive.
func ParseClasses(spec string) ([]ClassConfig, error) {
	if spec == "" {
		spec = DefaultClasses
	}
	var out []ClassConfig
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("jobs: class %q: want name:weight", part)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("jobs: class %q: empty name", part)
		}
		for _, r := range name {
			if !(r == '-' || r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				return nil, fmt.Errorf("jobs: class name %q: only letters, digits, - and _ allowed", name)
			}
		}
		if seen[name] {
			return nil, fmt.Errorf("jobs: duplicate class %q", name)
		}
		seen[name] = true
		w, err := strconv.Atoi(strings.TrimSpace(weightStr))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("jobs: class %q: weight must be a positive integer", part)
		}
		out = append(out, ClassConfig{Name: name, Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("jobs: class spec %q names no classes", spec)
	}
	return out, nil
}

// Info is the externally visible snapshot of one job, served as JSON by
// GET /v1/jobs/{id} and embedded in submit responses and SSE events.
type Info struct {
	ID    string
	Kind  string // "collect" or "sweep"
	Class string
	State State
	// Point/Points report sweep progress (completed points / total points);
	// for collect jobs Points is 1.
	Point  int
	Points int
	// Cycle is the clock cycle of the newest checkpoint within the current
	// point (0 before the first checkpoint).
	Cycle int64
	// Preemptions counts how many times this job was preempted at a
	// checkpoint boundary.
	Preemptions int64
	Error       string    `json:",omitempty"`
	Submitted   time.Time `json:",omitempty"`
	Started     time.Time `json:",omitempty"` // first dispatch
	Finished    time.Time `json:",omitempty"` // terminal transition
}

// Event is one job lifecycle notification, streamed over SSE by
// GET /v1/jobs/{id}/events.
type Event struct {
	Seq   int64
	Time  time.Time
	State State
	Point int
	Cycle int64
	Error string `json:",omitempty"`
}
