package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hwgc"
)

// Sentinel errors returned by the Manager's lookup and transition methods.
var (
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotDone reports a result request for a job that has not finished.
	ErrNotDone = errors.New("jobs: job not finished")
	// ErrTerminal reports a cancel of an already-finished job.
	ErrTerminal = errors.New("jobs: job already in a terminal state")
	// ErrDraining reports a submission to a draining manager.
	ErrDraining = errors.New("jobs: manager is draining")
)

// Internal control-flow sentinels for the runner loop.
var (
	errPreempted = errors.New("jobs: preempted at checkpoint boundary")
	errCancelled = errors.New("jobs: cancelled")
)

// Options configures a Manager.
type Options struct {
	// Dir is the durable jobs directory: the WAL and per-job checkpoint
	// files live here. Required.
	Dir string
	// Classes is the priority class set; empty selects DefaultClasses.
	Classes []ClassConfig
	// Runners is the number of concurrent job runners (default 2).
	Runners int
	// CheckpointCycles is the slice length: how many simulated cycles a job
	// runs between checkpoint boundaries (default 200000).
	CheckpointCycles int64
	// RetainTerminal bounds how many terminal jobs (and their result
	// bodies) survive WAL compaction at startup (default 1024).
	RetainTerminal int
	// Aging is the scheduler's anti-starvation bonus per losing pick;
	// non-positive selects the default.
	Aging float64
	// OnResult, when set, is called (outside manager locks) with every
	// completed job's ID and encoded result body — gcserved uses it to
	// populate the synchronous result cache.
	OnResult func(id string, body []byte)
	// CheckpointHook, when set, is called after every checkpoint save with
	// no locks held; tests use it to make preemption and crashes
	// deterministic.
	CheckpointHook func(id string)
	// Clock overrides time.Now for Info timestamps (tests).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Runners <= 0 {
		o.Runners = 2
	}
	if o.CheckpointCycles <= 0 {
		o.CheckpointCycles = 200_000
	}
	if o.RetainTerminal <= 0 {
		o.RetainTerminal = 1024
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// job is the Manager's runtime record of one submission. Fields below the
// request block are guarded by Manager.mu except the two atomic flags, which
// the runner polls at checkpoint boundaries without taking the lock.
type job struct {
	ID    string
	Kind  string // KindCollect or KindSweep
	Class string
	Req   json.RawMessage // canonical request JSON (the bytes the ID hashes)

	State       State
	Point       int // completed sweep points (0 for an unstarted job)
	Points      int // total points (1 for collect)
	Cycle       int64
	Preemptions int64
	ErrMsg      string
	ResultBody  []byte
	Results     []hwgc.RunResult // completed sweep point results, in order
	Submitted   time.Time
	Started     time.Time
	Finished    time.Time
	HasCkpt     bool // a checkpoint file exists for the current point

	preempt    atomic.Bool  // yield at the next checkpoint boundary
	cancel     atomic.Bool  // cancel at the next checkpoint boundary
	migrateOut atomic.Bool  // a cancel is a migration handoff, not a user cancel
	exporting  atomic.Int32 // exporters waiting for a checkpoint-boundary park
	parked     bool         // held out of sched for an exporter (guarded by m.mu)
	events     *eventLog
}

// Manager owns the job table, the WAL, the scheduler and the runner pool.
type Manager struct {
	opts    Options
	sched   *Scheduler
	metrics *Metrics

	mu       sync.Mutex
	wal      *WAL
	jobs     map[string]*job
	order    []string    // job IDs in submission order (compaction retention)
	aux      []AuxRecord // auxiliary subsystem records, in append order
	running  map[string]*job
	closed   bool
	draining chan struct{}
	wg       sync.WaitGroup
}

// AuxRecord is one auxiliary record riding the jobs WAL: a durable,
// replayable note owned by a subsystem layered on the job tier (the sweep
// coordinator persists sweep submissions and cancellations this way, so a
// crash mid-sweep recovers without a second log to fsync or keep
// crash-consistent with this one).
type AuxRecord struct {
	Tag     string
	ID      string
	Payload []byte
	At      time.Time
}

// maxAuxRetain bounds how many auxiliary records survive WAL compaction at
// startup; the newest win, mirroring RetainTerminal for jobs.
const maxAuxRetain = 4096

// runCtx carries per-dispatch bookkeeping through the runner's call chain.
type runCtx struct {
	dispatched time.Time
	fresh      bool // no prior progress at dispatch
	observed   bool // time-to-first-checkpoint already recorded
}

// Open replays the WAL in opts.Dir, sweeps the checkpoint directory, adopts
// resumable work, compacts the log, and starts the runner pool. Jobs that
// were queued or checkpointed when the previous process died are re-admitted
// exactly where they left off.
func Open(opts Options) (*Manager, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("jobs: Options.Dir is required")
	}
	if len(opts.Classes) == 0 {
		cs, err := ParseClasses(DefaultClasses)
		if err != nil {
			return nil, err
		}
		opts.Classes = cs
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	sched, err := NewScheduler(opts.Classes, opts.Aging)
	if err != nil {
		return nil, err
	}
	metrics := NewMetrics()
	wal, recs, err := OpenWAL(opts.Dir, metrics)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		opts:     opts,
		sched:    sched,
		metrics:  metrics,
		wal:      wal,
		jobs:     make(map[string]*job),
		running:  make(map[string]*job),
		draining: make(chan struct{}),
	}
	if err := m.recover(recs); err != nil {
		wal.Close()
		return nil, err
	}
	for i := 0; i < opts.Runners; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m, nil
}

// countPoints returns how many collection points a canonical request runs.
func countPoints(kind string, req json.RawMessage) (int, error) {
	switch kind {
	case KindCollect:
		return 1, nil
	case KindSweep:
		var sr hwgc.SweepRequest
		if err := json.Unmarshal(req, &sr); err != nil {
			return 0, err
		}
		if len(sr.Cores) == 0 || len(sr.Cores) > hwgc.MaxSweepPoints {
			return 0, fmt.Errorf("jobs: sweep request has %d points", len(sr.Cores))
		}
		return len(sr.Cores), nil
	default:
		return 0, fmt.Errorf("jobs: unknown kind %q", kind)
	}
}

// recover rebuilds the job table from replayed WAL records, reconciles it
// with the on-disk checkpoints, compacts the log and re-admits unfinished
// work.
func (m *Manager) recover(recs []walRecord) error {
	for i := range recs {
		rec := &recs[i]
		switch rec.Type {
		case recSubmit:
			if rec.ID == "" || rec.Kind == "" {
				return fmt.Errorf("jobs: WAL submit record missing id or kind")
			}
			if _, dup := m.jobs[rec.ID]; dup {
				return fmt.Errorf("jobs: WAL resubmits job %s", rec.ID)
			}
			class := rec.Class
			if !m.sched.Class(class) {
				// The class set changed across the restart; fall back to
				// the default class rather than stranding the job.
				class = m.opts.Classes[0].Name
			}
			points, err := countPoints(rec.Kind, rec.Request)
			if err != nil {
				return fmt.Errorf("jobs: WAL job %s: %w", rec.ID, err)
			}
			j := &job{
				ID: rec.ID, Kind: rec.Kind, Class: class, Req: rec.Request,
				State: StateQueued, Points: points, Submitted: rec.At,
				events: newEventLog(m.opts.Clock),
			}
			m.jobs[rec.ID] = j
			m.order = append(m.order, rec.ID)
		case recState:
			j := m.jobs[rec.ID]
			if j == nil {
				return fmt.Errorf("jobs: WAL transition for unknown job %s", rec.ID)
			}
			switch rec.State {
			case StateRunning:
				j.State = StateRunning
				if j.Started.IsZero() {
					j.Started = rec.At
				}
			case StateCheckpointed:
				j.State = StateCheckpointed
				j.Cycle = rec.Cycle
			case StateQueued: // revival of a failed, cancelled or migrated job
				j.State = StateQueued
				j.ErrMsg = ""
				j.Finished = time.Time{}
			case StateFailed, StateCancelled, StateMigrated:
				j.State = rec.State
				j.ErrMsg = rec.Error
				j.Finished = rec.At
			default:
				return fmt.Errorf("jobs: WAL job %s: bad state %q", rec.ID, rec.State)
			}
		case recPoint:
			j := m.jobs[rec.ID]
			if j == nil {
				return fmt.Errorf("jobs: WAL point for unknown job %s", rec.ID)
			}
			if rec.Point != len(j.Results) {
				return fmt.Errorf("jobs: WAL job %s: point %d out of order (have %d)", rec.ID, rec.Point, len(j.Results))
			}
			var res hwgc.RunResult
			if err := json.Unmarshal(rec.Result, &res); err != nil {
				return fmt.Errorf("jobs: WAL job %s point %d: %w", rec.ID, rec.Point, err)
			}
			j.Results = append(j.Results, res)
			j.Point = len(j.Results)
		case recResult:
			j := m.jobs[rec.ID]
			if j == nil {
				return fmt.Errorf("jobs: WAL result for unknown job %s", rec.ID)
			}
			j.State = StateDone
			j.ResultBody = rec.Body
			j.Finished = rec.At
		case recAux:
			if rec.Kind == "" {
				return fmt.Errorf("jobs: WAL aux record missing tag")
			}
			m.aux = append(m.aux, AuxRecord{Tag: rec.Kind, ID: rec.ID, Payload: rec.Body, At: rec.At})
		default:
			return fmt.Errorf("jobs: unknown WAL record type %d", rec.Type)
		}
	}
	// A job that was running when the process died restarts from its newest
	// checkpoint (adopted below) or, failing that, from scratch — results
	// are deterministic either way, so no duplicate execution is visible.
	for _, j := range m.jobs {
		if j.State == StateRunning {
			j.State = StateQueued
		}
	}
	if err := m.sweepCheckpoints(); err != nil {
		return err
	}
	if err := m.compact(len(recs) > 0); err != nil {
		return err
	}
	// Re-admit unfinished work: queued jobs first (FIFO by submission),
	// then checkpointed jobs in reverse order so front-insertion restores
	// their original relative order ahead of the queued ones.
	for _, id := range m.order {
		if j := m.jobs[id]; j.State == StateQueued {
			if err := m.sched.Enqueue(j); err != nil {
				return err
			}
		}
	}
	for i := len(m.order) - 1; i >= 0; i-- {
		if j := m.jobs[m.order[i]]; j.State == StateCheckpointed {
			if err := m.sched.Enqueue(j); err != nil {
				return err
			}
		}
	}
	for _, id := range m.order {
		j := m.jobs[id]
		j.events.emit(j.State, j.Point, j.Cycle, j.ErrMsg)
	}
	return nil
}

// sweepCheckpoints reconciles the checkpoint directory with the job table:
// files for unknown or terminal jobs, unreadable files, stale files (from an
// already-completed sweep point) and leftover temp files are reclaimed;
// valid files promote their job to the checkpointed state for resume.
func (m *Manager) sweepCheckpoints() error {
	entries, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, ".ckpt-") || strings.HasPrefix(name, ".wal-") {
			// Temp file orphaned by a crash mid-rename.
			os.Remove(filepath.Join(m.opts.Dir, name))
			m.metrics.ckptReclaims.Add(1)
			continue
		}
		if !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		path := filepath.Join(m.opts.Dir, name)
		id := strings.TrimSuffix(name, ckptSuffix)
		j := m.jobs[id]
		if j == nil || j.State.Terminal() {
			os.Remove(path)
			m.metrics.ckptReclaims.Add(1)
			continue
		}
		ck, err := readCheckpoint(path)
		if err != nil || ck.Point != j.Point {
			os.Remove(path)
			m.metrics.ckptReclaims.Add(1)
			continue
		}
		j.State = StateCheckpointed
		j.Cycle = ck.Cycle
		j.HasCkpt = true
	}
	return nil
}

// compact drops the oldest terminal jobs beyond the retention bound and,
// when rewrite is set (the replayed log was non-empty), rewrites the WAL to
// exactly the surviving table — bounding log growth across restarts.
func (m *Manager) compact(rewrite bool) error {
	var terminal []string
	for _, id := range m.order {
		if m.jobs[id].State.Terminal() {
			terminal = append(terminal, id)
		}
	}
	if drop := len(terminal) - m.opts.RetainTerminal; drop > 0 {
		for _, id := range terminal[:drop] {
			delete(m.jobs, id)
		}
		keep := m.order[:0]
		for _, id := range m.order {
			if _, ok := m.jobs[id]; ok {
				keep = append(keep, id)
			}
		}
		m.order = keep
	}
	if !rewrite {
		return nil
	}
	var recs []walRecord
	for _, id := range m.order {
		j := m.jobs[id]
		recs = append(recs, walRecord{Type: recSubmit, ID: j.ID, Kind: j.Kind, Class: j.Class, Request: j.Req, At: j.Submitted})
		if j.State != StateDone {
			// Completed sweep points still matter for resume (and for
			// reviving failed/cancelled sweeps); a done job only needs its
			// result.
			for i, res := range j.Results {
				b, err := json.Marshal(res)
				if err != nil {
					return err
				}
				recs = append(recs, walRecord{Type: recPoint, ID: j.ID, Point: i, Result: b})
			}
		}
		switch j.State {
		case StateQueued: // implied by recSubmit
		case StateCheckpointed:
			recs = append(recs, walRecord{Type: recState, ID: j.ID, State: StateCheckpointed, Point: j.Point, Cycle: j.Cycle, At: j.Started})
		case StateFailed, StateCancelled, StateMigrated:
			recs = append(recs, walRecord{Type: recState, ID: j.ID, State: j.State, Error: j.ErrMsg, At: j.Finished})
		case StateDone:
			recs = append(recs, walRecord{Type: recResult, ID: j.ID, State: StateDone, Body: j.ResultBody, At: j.Finished})
		}
	}
	if drop := len(m.aux) - maxAuxRetain; drop > 0 {
		m.aux = append([]AuxRecord(nil), m.aux[drop:]...)
	}
	for _, a := range m.aux {
		recs = append(recs, walRecord{Type: recAux, ID: a.ID, Kind: a.Tag, Body: a.Payload, At: a.At})
	}
	return m.wal.Rewrite(recs)
}

// Submit registers a job for the canonical request bytes and returns its
// Info. The job ID is the content address of the request (hwgc.KeyBytes), so
// resubmitting the same request dedupes onto the existing job (accepted is
// false and the live Info is returned). Failed and cancelled jobs are
// revived by resubmission, keeping any completed sweep points.
func (m *Manager) Submit(kind, class string, canonical []byte) (Info, bool, error) {
	switch kind {
	case KindCollect, KindSweep:
	default:
		return Info{}, false, fmt.Errorf("jobs: unknown kind %q", kind)
	}
	if class == "" {
		class = m.opts.Classes[0].Name
	}
	if !m.sched.Class(class) {
		return Info{}, false, fmt.Errorf("jobs: unknown class %q", class)
	}
	id := hwgc.KeyBytes(canonical)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Info{}, false, ErrDraining
	}
	j, ok := m.jobs[id]
	switch {
	case ok && (j.State == StateFailed || j.State == StateCancelled || j.State == StateMigrated):
		// Revive (for migrated jobs: the work moved away but a client asked
		// this backend again, so it runs here afresh — determinism makes the
		// duplicate execution harmless). The class sticks to the original
		// submission.
		now := m.opts.Clock()
		if err := m.wal.Append(walRecord{Type: recState, ID: id, State: StateQueued, At: now}); err != nil {
			m.mu.Unlock()
			return Info{}, false, err
		}
		j.State = StateQueued
		j.ErrMsg = ""
		j.Finished = time.Time{}
		j.cancel.Store(false)
		j.migrateOut.Store(false)
		j.events = newEventLog(m.opts.Clock)
		if err := m.sched.Enqueue(j); err != nil {
			m.mu.Unlock()
			return Info{}, false, err
		}
		m.metrics.submitted.Add(1)
		j.events.emit(StateQueued, j.Point, 0, "")
	case ok:
		m.metrics.deduped.Add(1)
		info := m.infoLocked(j)
		m.mu.Unlock()
		return info, false, nil
	default:
		now := m.opts.Clock()
		points, err := countPoints(kind, canonical)
		if err != nil {
			m.mu.Unlock()
			return Info{}, false, err
		}
		j = &job{
			ID: id, Kind: kind, Class: class, Req: append([]byte(nil), canonical...),
			State: StateQueued, Points: points, Submitted: now,
			events: newEventLog(m.opts.Clock),
		}
		if err := m.wal.Append(walRecord{Type: recSubmit, ID: id, Kind: kind, Class: class, Request: j.Req, At: now}); err != nil {
			m.mu.Unlock()
			return Info{}, false, err
		}
		m.jobs[id] = j
		m.order = append(m.order, id)
		if err := m.sched.Enqueue(j); err != nil {
			m.mu.Unlock()
			return Info{}, false, err
		}
		m.metrics.submitted.Add(1)
		j.events.emit(StateQueued, 0, 0, "")
	}
	info := m.infoLocked(j)
	m.mu.Unlock()
	m.maybePreempt(class)
	return info, true, nil
}

// maybePreempt flags the weakest running job for a checkpoint-boundary yield
// when work of strictly higher weight is waiting and no runner is idle. The
// strict inequality means equal-priority jobs never thrash each other.
func (m *Manager) maybePreempt(class string) {
	w := m.sched.Weight(class)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.running) < m.opts.Runners || m.sched.Backlog() == 0 {
		return
	}
	var victim *job
	vw := w
	for _, j := range m.running {
		if j.preempt.Load() {
			continue
		}
		if jw := m.sched.Weight(j.Class); jw < vw {
			victim, vw = j, jw
		}
	}
	if victim != nil {
		victim.preempt.Store(true)
	}
}

func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		j := m.sched.Next()
		if j == nil {
			return
		}
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	if j.cancel.Load() {
		m.finishLocked(j, cancelOutcome(j), nil, "")
		m.mu.Unlock()
		return
	}
	j.preempt.Store(false)
	now := m.opts.Clock()
	rcx := &runCtx{dispatched: now, fresh: j.Point == 0 && !j.HasCkpt}
	j.State = StateRunning
	if j.Started.IsZero() {
		j.Started = now
	}
	if rcx.fresh {
		m.metrics.freshStarts.Add(1)
	} else {
		m.metrics.resumes.Add(1)
	}
	_ = m.wal.Append(walRecord{Type: recState, ID: j.ID, State: StateRunning, Point: j.Point, At: now})
	m.running[j.ID] = j
	m.metrics.running.Add(1)
	j.events.emit(StateRunning, j.Point, j.Cycle, "")
	m.mu.Unlock()

	body, err := m.execute(j, rcx)

	m.mu.Lock()
	delete(m.running, j.ID)
	m.metrics.running.Add(-1)
	var notify func()
	switch {
	case err == nil:
		m.finishLocked(j, StateDone, body, "")
		if cb := m.opts.OnResult; cb != nil {
			id := j.ID
			notify = func() { cb(id, body) }
		}
	case errors.Is(err, errCancelled):
		m.finishLocked(j, cancelOutcome(j), nil, "")
	case errors.Is(err, errPreempted):
		j.State = StateCheckpointed
		j.Preemptions++
		m.metrics.preemptions.Add(1)
		_ = m.wal.Append(walRecord{Type: recState, ID: j.ID, State: StateCheckpointed, Point: j.Point, Cycle: j.Cycle, At: m.opts.Clock()})
		j.events.emit(StateCheckpointed, j.Point, j.Cycle, "")
		if j.exporting.Load() > 0 {
			// An Export is waiting for exactly this park: hand the job over
			// instead of racing it back into the scheduler, where an idle
			// runner would re-dispatch it before the exporter could grab it.
			// The exporter re-admits the job once its envelope is captured.
			j.parked = true
		} else {
			// Enqueue fails only once the scheduler is closed (drain); the
			// WAL record above re-admits the job on the next Open.
			_ = m.sched.Enqueue(j)
		}
	default:
		m.finishLocked(j, StateFailed, nil, err.Error())
	}
	m.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// cancelOutcome maps a cancelled job to its terminal state: a cancel raised
// by Release is a migration handoff, not a user cancellation.
func cancelOutcome(j *job) State {
	if j.migrateOut.Load() {
		return StateMigrated
	}
	return StateCancelled
}

// finishLocked moves j to a terminal state, persists the transition, removes
// its checkpoint file and emits the terminal event. Callers hold m.mu. WAL
// append errors are tolerated here: the in-memory state still serves, and
// determinism makes re-execution after a restart safe.
func (m *Manager) finishLocked(j *job, state State, body []byte, errMsg string) {
	now := m.opts.Clock()
	j.State = state
	j.ErrMsg = errMsg
	j.ResultBody = body
	j.Finished = now
	if state == StateDone {
		_ = m.wal.Append(walRecord{Type: recResult, ID: j.ID, State: StateDone, Body: body, At: now})
		m.metrics.completed.Add(1)
	} else {
		_ = m.wal.Append(walRecord{Type: recState, ID: j.ID, State: state, Error: errMsg, At: now})
		switch state {
		case StateFailed:
			m.metrics.failed.Add(1)
		case StateMigrated:
			m.metrics.migrated.Add(1)
		default:
			m.metrics.cancelled.Add(1)
		}
	}
	if j.HasCkpt {
		j.HasCkpt = false
		os.Remove(m.ckptPath(j.ID))
	}
	j.events.emit(state, j.Point, j.Cycle, errMsg)
}

func (m *Manager) execute(j *job, rcx *runCtx) ([]byte, error) {
	if j.Kind == KindCollect {
		return m.executeCollect(j, rcx)
	}
	return m.executeSweep(j, rcx)
}

func (m *Manager) executeCollect(j *job, rcx *runCtx) ([]byte, error) {
	var req hwgc.CollectRequest
	if err := json.Unmarshal(j.Req, &req); err != nil {
		return nil, err
	}
	rc, err := m.startOrResume(j, req, 0)
	if err != nil {
		return nil, err
	}
	if err := m.stepPoint(j, rc, 0, rcx); err != nil {
		return nil, err
	}
	resp, err := rc.Response()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := resp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (m *Manager) executeSweep(j *job, rcx *runCtx) ([]byte, error) {
	var sr hwgc.SweepRequest
	if err := json.Unmarshal(j.Req, &sr); err != nil {
		return nil, err
	}
	m.mu.Lock()
	start := j.Point
	results := append([]hwgc.RunResult(nil), j.Results...)
	m.mu.Unlock()
	for point := start; point < len(sr.Cores); point++ {
		if point > start {
			// Between-points boundary: a natural checkpoint with no
			// snapshot needed — resume restarts at this point index.
			if j.cancel.Load() {
				return nil, errCancelled
			}
			if m.drainingNow() || j.preempt.Load() {
				return nil, errPreempted
			}
		}
		creq := hwgc.CollectRequest{Bench: sr.Bench, Scale: sr.Scale, Seed: sr.Seed, Config: sr.Config, Verify: sr.Verify}
		creq.Config.Cores = sr.Cores[point]
		rc, err := m.startOrResume(j, creq, point)
		if err != nil {
			return nil, err
		}
		if err := m.stepPoint(j, rc, point, rcx); err != nil {
			return nil, err
		}
		resp, err := rc.Response()
		if err != nil {
			return nil, err
		}
		resJSON, err := json.Marshal(resp.Result)
		if err != nil {
			return nil, err
		}
		results = append(results, resp.Result)
		m.mu.Lock()
		j.Results = append(j.Results, resp.Result)
		j.Point = len(j.Results)
		j.Cycle = 0
		removeCkpt := j.HasCkpt
		j.HasCkpt = false
		_ = m.wal.Append(walRecord{Type: recPoint, ID: j.ID, Point: point, Result: resJSON, At: m.opts.Clock()})
		if point < len(sr.Cores)-1 {
			j.events.emit(StateRunning, j.Point, 0, "")
		}
		m.mu.Unlock()
		if removeCkpt {
			os.Remove(m.ckptPath(j.ID))
		}
	}
	resp := hwgc.SweepResponse{Key: j.ID, Bench: sr.Bench, Cores: sr.Cores, Scale: sr.Scale, Seed: sr.Seed, Results: results}
	var buf bytes.Buffer
	if err := resp.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// startOrResume resumes the given point from the job's on-disk checkpoint
// when one is valid for it, reclaiming the file otherwise, and falls back to
// a fresh start.
func (m *Manager) startOrResume(j *job, req hwgc.CollectRequest, point int) (*hwgc.RequestCollection, error) {
	m.mu.Lock()
	has := j.HasCkpt
	m.mu.Unlock()
	if has {
		path := m.ckptPath(j.ID)
		ck, err := readCheckpoint(path)
		if err == nil && ck.Point == point {
			if rc, err := hwgc.ResumeCollectRequest(req, ck.Snap); err == nil {
				return rc, nil
			}
		}
		// Unreadable, stale or mismatched: reclaim and restart the point
		// from scratch — deterministic, so only time is lost.
		os.Remove(path)
		m.metrics.ckptReclaims.Add(1)
		m.mu.Lock()
		j.HasCkpt = false
		j.Cycle = 0
		m.mu.Unlock()
	}
	return hwgc.StartCollectRequest(req)
}

// stepPoint drives one collection point checkpoint to checkpoint until it
// completes (nil), fails, or must yield (errCancelled / errPreempted). Every
// executed slice is charged to the job's class for fair-share accounting.
func (m *Manager) stepPoint(j *job, rc *hwgc.RequestCollection, point int, rcx *runCtx) error {
	for {
		done, err := rc.StepCycles(m.opts.CheckpointCycles)
		if err != nil {
			return err
		}
		m.sched.Charge(j.Class)
		if done {
			return nil
		}
		snap, err := rc.Snapshot()
		if err != nil {
			return err
		}
		cyc := rc.Cycle()
		if err := writeCheckpoint(m.ckptPath(j.ID), checkpoint{Point: point, Cycle: cyc, Snap: snap}); err != nil {
			return err
		}
		m.mu.Lock()
		j.HasCkpt = true
		j.Cycle = cyc
		m.mu.Unlock()
		m.metrics.checkpoints.Add(1)
		if rcx.fresh && !rcx.observed {
			rcx.observed = true
			m.metrics.ObserveFirstCheckpoint(m.opts.Clock().Sub(rcx.dispatched))
		}
		if hook := m.opts.CheckpointHook; hook != nil {
			hook(j.ID)
		}
		if j.cancel.Load() {
			return errCancelled
		}
		if m.drainingNow() || j.preempt.Load() {
			return errPreempted
		}
	}
}

func (m *Manager) drainingNow() bool {
	select {
	case <-m.draining:
		return true
	default:
		return false
	}
}

func (m *Manager) infoLocked(j *job) Info {
	return Info{
		ID: j.ID, Kind: j.Kind, Class: j.Class, State: j.State,
		Point: j.Point, Points: j.Points, Cycle: j.Cycle,
		Preemptions: j.Preemptions, Error: j.ErrMsg,
		Submitted: j.Submitted, Started: j.Started, Finished: j.Finished,
	}
}

// Get returns one job's Info.
func (m *Manager) Get(id string) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Info{}, ErrNotFound
	}
	return m.infoLocked(j), nil
}

// Result returns a completed job's encoded response body. For jobs in any
// other state it returns the Info and ErrNotDone (callers map states to
// status codes).
func (m *Manager) Result(id string) ([]byte, Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, Info{}, ErrNotFound
	}
	info := m.infoLocked(j)
	if j.State == StateDone {
		return j.ResultBody, info, nil
	}
	return nil, info, ErrNotDone
}

// Cancel cancels a job: queued and checkpointed jobs are removed from the
// scheduler and cancelled immediately; running jobs are flagged and yield at
// their next checkpoint boundary (the returned Info then still says
// running). Terminal jobs return ErrTerminal with their final Info.
func (m *Manager) Cancel(id string) (Info, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Info{}, ErrNotFound
	}
	if j.State.Terminal() {
		info := m.infoLocked(j)
		m.mu.Unlock()
		return info, ErrTerminal
	}
	j.cancel.Store(true)
	if (j.State == StateQueued || j.State == StateCheckpointed) && m.sched.Remove(j) {
		m.finishLocked(j, StateCancelled, nil, "")
	}
	info := m.infoLocked(j)
	m.mu.Unlock()
	return info, nil
}

// Subscribe returns a job's replayable event history plus a live channel
// (nil when the job is already terminal). The returned stop function
// detaches the subscription; it is safe to call after the channel closed.
func (m *Manager) Subscribe(id string) ([]Event, <-chan Event, func(), error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, nil, nil, ErrNotFound
	}
	ev := j.events
	m.mu.Unlock()
	history, ch := ev.subscribe()
	return history, ch, func() { ev.unsubscribe(ch) }, nil
}

// AppendAux durably appends one auxiliary record to the jobs WAL. The
// record is fsynced before AppendAux returns, rides compaction (newest
// maxAuxRetain retained) and is replayed in order by the next Open.
func (m *Manager) AppendAux(tag, id string, payload []byte) error {
	if tag == "" {
		return fmt.Errorf("jobs: aux record needs a tag")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrDraining
	}
	a := AuxRecord{Tag: tag, ID: id, Payload: append([]byte(nil), payload...), At: m.opts.Clock()}
	if err := m.wal.Append(walRecord{Type: recAux, ID: a.ID, Kind: a.Tag, Body: a.Payload, At: a.At}); err != nil {
		return err
	}
	m.aux = append(m.aux, a)
	return nil
}

// AuxRecords returns the auxiliary records carrying tag (every record when
// tag is empty), in append order.
func (m *Manager) AuxRecords(tag string) []AuxRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []AuxRecord
	for _, a := range m.aux {
		if tag == "" || a.Tag == tag {
			out = append(out, a)
		}
	}
	return out
}

// Depths returns the queued-job count per class.
func (m *Manager) Depths() map[string]int { return m.sched.Depths() }

// Backlog returns the total queued-job count.
func (m *Manager) Backlog() int { return m.sched.Backlog() }

// Metrics returns the manager's counter set.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// WriteMetrics writes every gcjobs_* Prometheus series to w.
func (m *Manager) WriteMetrics(w io.Writer) error {
	return m.metrics.WritePrometheus(w, m.sched.Depths())
}

// DefaultClass returns the class submissions get when they name none.
func (m *Manager) DefaultClass() string { return m.opts.Classes[0].Name }

// HasClass reports whether name is a configured class.
func (m *Manager) HasClass(name string) bool { return m.sched.Class(name) }

// Drain stops accepting submissions, lets every runner yield at its next
// checkpoint boundary, and closes the WAL. Queued-but-unstarted jobs stay
// queued in the WAL and are re-admitted on the next Open; running jobs are
// checkpointed and resume on restart with byte-identical results. If ctx
// expires first the WAL is left open (the process is exiting anyway; the
// next Open recovers exactly as from a crash).
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	first := !m.closed
	m.closed = true
	m.mu.Unlock()
	if first {
		close(m.draining)
	}
	m.sched.Close()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.wal.Close()
}
