package jobs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hwgc"
)

func collectCanonical(t *testing.T, cores int, seed int64) []byte {
	t.Helper()
	req := hwgc.CollectRequest{Bench: "search", Seed: seed, Config: hwgc.Config{Cores: cores}}
	b, err := req.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// collectBody returns the byte-exact response of an uninterrupted
// synchronous run of the same request.
func collectBody(t *testing.T, cores int, seed int64) []byte {
	t.Helper()
	resp, err := hwgc.NewCollectResponse(hwgc.CollectRequest{Bench: "search", Seed: seed, Config: hwgc.Config{Cores: cores}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := resp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sweepCanonical(t *testing.T, cores []int) []byte {
	t.Helper()
	req := hwgc.SweepRequest{Bench: "search", Cores: cores}
	b, err := req.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sweepBody(t *testing.T, cores []int) []byte {
	t.Helper()
	resp, err := hwgc.NewSweepResponse(hwgc.SweepRequest{Bench: "search", Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := resp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func drainManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitState polls until the job reaches want, failing fast on an unexpected
// terminal state.
func waitState(t *testing.T, m *Manager, id string, want State) Info {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == want {
			return info
		}
		if info.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, info.State, info.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for job %s to reach %s (state %s)", id, want, info.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestJobsCollectLifecycle(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Runners: 1, CheckpointCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	canonical := collectCanonical(t, 4, 0)
	var gotResult atomic.Bool
	m.opts.OnResult = func(id string, body []byte) { gotResult.Store(true) }

	info, accepted, err := m.Submit(KindCollect, "", canonical)
	if err != nil || !accepted {
		t.Fatalf("submit: accepted=%v err=%v", accepted, err)
	}
	if info.ID != hwgc.KeyBytes(canonical) || info.Class != "interactive" || info.Points != 1 {
		t.Fatalf("submit info = %+v", info)
	}
	done := waitState(t, m, info.ID, StateDone)
	if done.Submitted.IsZero() || done.Started.IsZero() || done.Finished.IsZero() {
		t.Fatalf("missing timestamps: %+v", done)
	}
	body, _, err := m.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := collectBody(t, 4, 0); !bytes.Equal(body, want) {
		t.Fatalf("job result differs from uninterrupted run:\n%s\nvs\n%s", body, want)
	}
	if !gotResult.Load() {
		t.Fatal("OnResult not called")
	}
	// Resubmission dedupes onto the finished job.
	again, accepted, err := m.Submit(KindCollect, "batch", canonical)
	if err != nil || accepted {
		t.Fatalf("resubmit: accepted=%v err=%v", accepted, err)
	}
	if again.State != StateDone {
		t.Fatalf("deduped info state = %s", again.State)
	}
	if m.Metrics().Preemptions() != 0 {
		t.Fatal("lone job was preempted")
	}
	// A completed job leaves no checkpoint file behind.
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+ckptSuffix)); len(files) != 0 {
		t.Fatalf("leftover checkpoints: %v", files)
	}
	drainManager(t, m)
}

func TestJobsSweepByteIdentical(t *testing.T) {
	cores := []int{2, 4}
	m, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 700})
	if err != nil {
		t.Fatal(err)
	}
	defer drainManager(t, m)
	info, _, err := m.Submit(KindSweep, "batch", sweepCanonical(t, cores))
	if err != nil {
		t.Fatal(err)
	}
	if info.Points != 2 {
		t.Fatalf("sweep points = %d", info.Points)
	}
	waitState(t, m, info.ID, StateDone)
	body, _, err := m.Result(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := sweepBody(t, cores); !bytes.Equal(body, want) {
		t.Fatalf("sweep job result differs from synchronous sweep")
	}
}

// TestJobsPreemption is the scheduling acceptance test: while a batch job
// runs on the only runner, a higher-priority interactive job arrives; the
// batch job must yield at its next checkpoint boundary, the interactive job
// must finish first, and the batch job's final result must be byte-identical
// to an unpreempted run.
func TestJobsPreemption(t *testing.T) {
	// The coarse slice keeps snapshot count low so the test stays fast
	// under -race; preemption needs only one checkpoint boundary.
	m, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 2500})
	if err != nil {
		t.Fatal(err)
	}
	defer drainManager(t, m)

	longCanonical := collectCanonical(t, 4, 0)  // batch
	shortCanonical := collectCanonical(t, 4, 7) // interactive, distinct seed
	var once sync.Once
	m.opts.CheckpointHook = func(id string) {
		// At the long job's first checkpoint, the interactive job arrives.
		once.Do(func() {
			if _, _, err := m.Submit(KindCollect, "interactive", shortCanonical); err != nil {
				t.Errorf("interactive submit: %v", err)
			}
		})
	}
	longInfo, _, err := m.Submit(KindCollect, "batch", longCanonical)
	if err != nil {
		t.Fatal(err)
	}
	longDone := waitState(t, m, longInfo.ID, StateDone)
	shortDone := waitState(t, m, hwgc.KeyBytes(shortCanonical), StateDone)

	if longDone.Preemptions < 1 {
		t.Fatalf("batch job preemptions = %d, want >= 1", longDone.Preemptions)
	}
	if m.Metrics().Preemptions() < 1 {
		t.Fatal("preemption metric not bumped")
	}
	if !shortDone.Finished.Before(longDone.Finished) {
		t.Fatalf("interactive job (%v) did not finish before the preempted batch job (%v)",
			shortDone.Finished, longDone.Finished)
	}
	body, _, err := m.Result(longInfo.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := collectBody(t, 4, 0); !bytes.Equal(body, want) {
		t.Fatal("preempted job's result differs from unpreempted run")
	}
}

// TestJobsCrashRestart is the durability acceptance test: the first manager
// is wedged (its runner blocks inside the checkpoint hook, the in-process
// equivalent of SIGKILL — no clean transitions are written), a second
// manager opens the same directory, replays the WAL, adopts the checkpoint
// and finishes the job with a byte-identical result and no duplicate
// execution.
func TestJobsCrashRestart(t *testing.T) {
	dir := t.TempDir()
	canonical := sweepCanonical(t, []int{8, 1})
	id := hwgc.KeyBytes(canonical)

	checkpointed := make(chan struct{})
	release := make(chan struct{})
	var wedge, wedged atomic.Bool
	m1, err := Open(Options{Dir: dir, Runners: 1, CheckpointCycles: 500, CheckpointHook: func(string) {
		if wedge.Load() && wedged.CompareAndSwap(false, true) {
			close(checkpointed)
			<-release
		} else if wedged.Load() {
			<-release
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(release)
		drainManager(t, m1)
	}()
	if _, _, err := m1.Submit(KindSweep, "batch", canonical); err != nil {
		t.Fatal(err)
	}
	// Let point 0 (cores 8) finish so the WAL holds a recPoint record, then
	// wedge at the next checkpoint inside point 1.
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, err := m1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Point >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("point 0 never completed (state %s)", info.State)
		}
		time.Sleep(time.Millisecond)
	}
	wedge.Store(true)
	select {
	case <-checkpointed:
	case <-time.After(60 * time.Second):
		t.Fatal("never checkpointed inside point 1")
	}

	// "Process 2": same directory. The WAL must replay, the orphaned
	// checkpoint must be adopted, and the job must resume — not restart.
	m2, err := Open(Options{Dir: dir, Runners: 1, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Metrics().WALReplayedRecords() == 0 {
		t.Fatal("second manager replayed no WAL records")
	}
	info, err := m2.Get(id)
	if err != nil {
		t.Fatalf("job lost across restart: %v", err)
	}
	if info.Point != 1 {
		t.Fatalf("completed points lost across restart: %d", info.Point)
	}
	waitState(t, m2, id, StateDone)
	if m2.Metrics().Resumes() == 0 {
		t.Fatal("job restarted from scratch instead of resuming")
	}
	body, _, err := m2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if want := sweepBody(t, []int{8, 1}); !bytes.Equal(body, want) {
		t.Fatal("post-crash result differs from uninterrupted run")
	}
	// No duplicate execution: resubmitting returns the finished job.
	if _, accepted, err := m2.Submit(KindSweep, "batch", canonical); err != nil || accepted {
		t.Fatalf("resubmit after recovery: accepted=%v err=%v", accepted, err)
	}
	drainManager(t, m2)

	// Third open: the completed job must survive (served from the WAL).
	m3, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	body3, _, err := m3.Result(id)
	if err != nil || !bytes.Equal(body3, body) {
		t.Fatalf("result not durable across a clean restart: err=%v", err)
	}
	drainManager(t, m3)
}

// TestJobsCancelQueued covers client abandonment of a queued job: the job
// is cancelled immediately and the WAL stays replayable.
func TestJobsCancelQueued(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	var hold atomic.Bool
	hold.Store(true)
	m, err := Open(Options{Dir: dir, Runners: 1, CheckpointCycles: 500, CheckpointHook: func(string) {
		if hold.Load() {
			<-release
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the only runner, then queue a second job behind it.
	if _, _, err := m.Submit(KindCollect, "batch", collectCanonical(t, 4, 0)); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, hwgc.KeyBytes(collectCanonical(t, 4, 0)), StateRunning)
	queued := collectCanonical(t, 4, 9)
	qid := hwgc.KeyBytes(queued)
	if _, _, err := m.Submit(KindCollect, "batch", queued); err != nil {
		t.Fatal(err)
	}
	info, err := m.Cancel(qid)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCancelled {
		t.Fatalf("queued job state after cancel = %s", info.State)
	}
	if m.Depths()["batch"] != 0 {
		t.Fatalf("cancelled job still queued: %v", m.Depths())
	}
	hold.Store(false)
	close(release)
	waitState(t, m, hwgc.KeyBytes(collectCanonical(t, 4, 0)), StateDone)
	drainManager(t, m)

	// The WAL must replay: one done job, one cancelled job.
	m2, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatalf("WAL not replayable after cancel: %v", err)
	}
	defer drainManager(t, m2)
	if info, err := m2.Get(qid); err != nil || info.State != StateCancelled {
		t.Fatalf("cancelled state not durable: %+v err=%v", info, err)
	}
	// Revival: resubmitting a cancelled job runs it.
	if _, accepted, err := m2.Submit(KindCollect, "batch", queued); err != nil || !accepted {
		t.Fatalf("revival: accepted=%v err=%v", accepted, err)
	}
	waitState(t, m2, qid, StateDone)
	body, _, err := m2.Result(qid)
	if err != nil || !bytes.Equal(body, collectBody(t, 4, 9)) {
		t.Fatalf("revived job result wrong: err=%v", err)
	}
}

// TestJobsCancelMidCheckpoint covers abandonment of a running job: the
// cancel lands while the job sits at a checkpoint boundary, takes effect
// there, removes the checkpoint file and leaves the WAL replayable.
func TestJobsCancelMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	atBoundary := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	m, err := Open(Options{Dir: dir, Runners: 1, CheckpointCycles: 500, CheckpointHook: func(string) {
		once.Do(func() {
			close(atBoundary)
			<-release
		})
	}})
	if err != nil {
		t.Fatal(err)
	}
	canonical := collectCanonical(t, 4, 0)
	id := hwgc.KeyBytes(canonical)
	if _, _, err := m.Submit(KindCollect, "batch", canonical); err != nil {
		t.Fatal(err)
	}
	<-atBoundary
	info, err := m.Cancel(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateRunning {
		t.Fatalf("mid-run cancel state = %s, want still running until the boundary", info.State)
	}
	close(release)
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, _ := m.Get(id)
		if info.State == StateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never cancelled (state %s)", info.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+ckptSuffix)); len(files) != 0 {
		t.Fatalf("cancelled job left checkpoints: %v", files)
	}
	drainManager(t, m)
	m2, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatalf("WAL not replayable after mid-checkpoint cancel: %v", err)
	}
	defer drainManager(t, m2)
	if info, err := m2.Get(id); err != nil || info.State != StateCancelled {
		t.Fatalf("cancellation not durable: %+v err=%v", info, err)
	}
}

// TestJobsDeleteRacesCompletion covers DELETE arriving after the job
// finished: the cancel is refused, the result survives, the WAL replays.
func TestJobsDeleteRacesCompletion(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Options{Dir: dir, Runners: 1, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	canonical := collectCanonical(t, 4, 0)
	id := hwgc.KeyBytes(canonical)
	if _, _, err := m.Submit(KindCollect, "", canonical); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, id, StateDone)
	info, err := m.Cancel(id)
	if err != ErrTerminal {
		t.Fatalf("cancel of done job: err=%v, want ErrTerminal", err)
	}
	if info.State != StateDone {
		t.Fatalf("cancel of done job flipped state to %s", info.State)
	}
	if _, _, err := m.Result(id); err != nil {
		t.Fatalf("result lost after rejected cancel: %v", err)
	}
	drainManager(t, m)
	m2, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatalf("WAL not replayable: %v", err)
	}
	defer drainManager(t, m2)
	if body, _, err := m2.Result(id); err != nil || len(body) == 0 {
		t.Fatalf("result not durable: %v", err)
	}
}

// TestJobsCheckpointSweep checks the startup garbage collection of the
// checkpoint directory: unreadable files and files for unknown jobs are
// reclaimed, with the metric counting them.
func TestJobsCheckpointSweep(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef"+ckptSuffix), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeCheckpoint(filepath.Join(dir, strings.Repeat("ab", 32)+ckptSuffix), checkpoint{Point: 0, Snap: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".ckpt-orphan"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Dir: dir, Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer drainManager(t, m)
	if got := m.Metrics().CheckpointFilesReclaimed(); got != 3 {
		t.Fatalf("reclaimed = %d, want 3", got)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+ckptSuffix))
	if len(files) != 0 {
		t.Fatalf("unswept checkpoints: %v", files)
	}
}

func TestJobsEventsStream(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer drainManager(t, m)
	canonical := collectCanonical(t, 4, 0)
	id := hwgc.KeyBytes(canonical)
	if _, _, err := m.Submit(KindCollect, "", canonical); err != nil {
		t.Fatal(err)
	}
	history, ch, stop, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	states := map[State]bool{}
	for _, ev := range history {
		states[ev.State] = true
	}
	if ch != nil {
		for ev := range ch {
			states[ev.State] = true
		}
	}
	if !states[StateDone] {
		t.Fatalf("event stream never reported done: %v", states)
	}
	// A subscription after completion replays history ending in the
	// terminal event, with a nil live channel.
	history2, ch2, stop2, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if ch2 != nil {
		t.Fatal("live channel returned for a terminal job")
	}
	if len(history2) == 0 || history2[len(history2)-1].State != StateDone {
		t.Fatalf("terminal replay = %+v", history2)
	}
}

func TestJobsMetricsOutput(t *testing.T) {
	m, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer drainManager(t, m)
	canonical := collectCanonical(t, 4, 0)
	if _, _, err := m.Submit(KindCollect, "", canonical); err != nil {
		t.Fatal(err)
	}
	waitState(t, m, hwgc.KeyBytes(canonical), StateDone)
	var buf bytes.Buffer
	if err := m.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`gcjobs_queue_depth{class="interactive"} 0`,
		`gcjobs_queue_depth{class="batch"} 0`,
		"gcjobs_submitted_total 1",
		"gcjobs_completed_total 1",
		"gcjobs_preemptions_total 0",
		"gcjobs_resumes_total 0",
		"gcjobs_wal_replays_total 1",
		"gcjobs_wal_fsync_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
