package jobs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hwgc/internal/stats"
)

// Metrics is the job subsystem's counter set, written in Prometheus text
// exposition format as part of gcserved's /metrics scrape. Following the
// paper's stall-accounting discipline, every reason a job is not running is
// attributable: queued behind its class (per-class depth), preempted for
// higher-priority work, waiting out a WAL fsync, or recovering after a
// crash (replays, resumes, reclaimed checkpoint files).
type Metrics struct {
	submitted atomic.Int64 // jobs accepted with a new ID
	deduped   atomic.Int64 // submissions coalesced onto an existing job
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64
	running   atomic.Int64 // gauge

	preemptions  atomic.Int64 // checkpoint-boundary yields to higher-priority work
	resumes      atomic.Int64 // dispatches that continued from a checkpoint
	freshStarts  atomic.Int64 // dispatches that started from cycle 0, point 0
	checkpoints  atomic.Int64 // snapshots persisted
	ckptReclaims atomic.Int64 // checkpoint files swept (terminal, unknown or unreadable)

	migrated        atomic.Int64 // jobs released after a verified handoff elsewhere
	exports         atomic.Int64 // checkpoint envelopes served
	imports         atomic.Int64 // foreign envelopes adopted as local jobs
	importsDeduped  atomic.Int64 // imports coalesced onto an existing job by content key
	importsRejected atomic.Int64 // envelopes rejected by validation

	walRecords         atomic.Int64
	walReplayedRecords atomic.Int64
	walReplays         atomic.Int64
	walTruncatedBytes  atomic.Int64
	walCompactions     atomic.Int64

	mu        sync.Mutex
	fsync     stats.Hist // WAL fsync latency
	firstCkpt stats.Hist // dispatch-to-first-checkpoint latency
}

// NewMetrics returns an empty counter set.
func NewMetrics() *Metrics { return &Metrics{} }

// ObserveFsync records one WAL fsync duration.
func (m *Metrics) ObserveFsync(d time.Duration) {
	m.mu.Lock()
	m.fsync.Observe(d)
	m.mu.Unlock()
}

// ObserveFirstCheckpoint records the latency from a fresh dispatch to the
// job's first persisted checkpoint — the window during which a crash or
// preemption still loses work, i.e. the subsystem's exposure time.
func (m *Metrics) ObserveFirstCheckpoint(d time.Duration) {
	m.mu.Lock()
	m.firstCkpt.Observe(d)
	m.mu.Unlock()
}

// Preemptions returns the preemption count (for tests and health checks).
func (m *Metrics) Preemptions() int64 { return m.preemptions.Load() }

// Resumes returns the checkpoint-resume count.
func (m *Metrics) Resumes() int64 { return m.resumes.Load() }

// FreshStarts returns the from-scratch dispatch count.
func (m *Metrics) FreshStarts() int64 { return m.freshStarts.Load() }

// WALReplayedRecords returns the number of records rebuilt from disk.
func (m *Metrics) WALReplayedRecords() int64 { return m.walReplayedRecords.Load() }

// CheckpointFilesReclaimed returns the swept checkpoint-file count.
func (m *Metrics) CheckpointFilesReclaimed() int64 { return m.ckptReclaims.Load() }

// Migrated returns how many jobs finished locally as migrated-away.
func (m *Metrics) Migrated() int64 { return m.migrated.Load() }

// Exports returns the served checkpoint-envelope count.
func (m *Metrics) Exports() int64 { return m.exports.Load() }

// Imports returns the adopted foreign-envelope count.
func (m *Metrics) Imports() int64 { return m.imports.Load() }

// ImportsDeduped returns imports coalesced onto an existing job.
func (m *Metrics) ImportsDeduped() int64 { return m.importsDeduped.Load() }

// ImportsRejected returns envelopes rejected by validation.
func (m *Metrics) ImportsRejected() int64 { return m.importsRejected.Load() }

// WritePrometheus appends every gcjobs_* series to w. depths is the live
// per-class queue depth (sampled at scrape time); it is written in sorted
// class order so output is deterministic.
func (m *Metrics) WritePrometheus(w io.Writer, depths map[string]int) error {
	m.mu.Lock()
	fsync := m.fsync
	firstCkpt := m.firstCkpt
	m.mu.Unlock()

	var b []byte
	add := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
		b = append(b, '\n')
	}
	add("# HELP gcjobs_queue_depth Queued jobs per priority class.")
	add("# TYPE gcjobs_queue_depth gauge")
	classes := make([]string, 0, len(depths))
	for name := range depths {
		classes = append(classes, name)
	}
	sort.Strings(classes)
	for _, name := range classes {
		add("gcjobs_queue_depth{class=%q} %d", name, depths[name])
	}
	add("# HELP gcjobs_running Jobs currently executing on the runner pool.")
	add("# TYPE gcjobs_running gauge")
	add("gcjobs_running %d", m.running.Load())
	add("# HELP gcjobs_submitted_total Jobs accepted with a new ID.")
	add("# TYPE gcjobs_submitted_total counter")
	add("gcjobs_submitted_total %d", m.submitted.Load())
	add("# HELP gcjobs_deduped_total Submissions coalesced onto an existing job by content key.")
	add("# TYPE gcjobs_deduped_total counter")
	add("gcjobs_deduped_total %d", m.deduped.Load())
	add("# HELP gcjobs_completed_total Jobs that reached the done state.")
	add("# TYPE gcjobs_completed_total counter")
	add("gcjobs_completed_total %d", m.completed.Load())
	add("# HELP gcjobs_failed_total Jobs that reached the failed state.")
	add("# TYPE gcjobs_failed_total counter")
	add("gcjobs_failed_total %d", m.failed.Load())
	add("# HELP gcjobs_cancelled_total Jobs cancelled by DELETE.")
	add("# TYPE gcjobs_cancelled_total counter")
	add("gcjobs_cancelled_total %d", m.cancelled.Load())
	add("# HELP gcjobs_migrated_total Jobs released locally after a verified handoff to another backend.")
	add("# TYPE gcjobs_migrated_total counter")
	add("gcjobs_migrated_total %d", m.migrated.Load())
	add("# HELP gcjobs_checkpoint_exports_total Checkpoint envelopes served for migration.")
	add("# TYPE gcjobs_checkpoint_exports_total counter")
	add("gcjobs_checkpoint_exports_total %d", m.exports.Load())
	add("# HELP gcjobs_checkpoint_imports_total Foreign checkpoint envelopes adopted as local jobs.")
	add("# TYPE gcjobs_checkpoint_imports_total counter")
	add("gcjobs_checkpoint_imports_total %d", m.imports.Load())
	add("# HELP gcjobs_checkpoint_imports_deduped_total Imports coalesced onto an existing job by content key.")
	add("# TYPE gcjobs_checkpoint_imports_deduped_total counter")
	add("gcjobs_checkpoint_imports_deduped_total %d", m.importsDeduped.Load())
	add("# HELP gcjobs_checkpoint_imports_rejected_total Checkpoint envelopes rejected by validation.")
	add("# TYPE gcjobs_checkpoint_imports_rejected_total counter")
	add("gcjobs_checkpoint_imports_rejected_total %d", m.importsRejected.Load())
	add("# HELP gcjobs_preemptions_total Checkpoint-boundary yields to higher-priority work or drain.")
	add("# TYPE gcjobs_preemptions_total counter")
	add("gcjobs_preemptions_total %d", m.preemptions.Load())
	add("# HELP gcjobs_resumes_total Dispatches that continued a job from its checkpoint.")
	add("# TYPE gcjobs_resumes_total counter")
	add("gcjobs_resumes_total %d", m.resumes.Load())
	add("# HELP gcjobs_fresh_starts_total Dispatches that started a job from scratch.")
	add("# TYPE gcjobs_fresh_starts_total counter")
	add("gcjobs_fresh_starts_total %d", m.freshStarts.Load())
	add("# HELP gcjobs_checkpoints_saved_total Job snapshots persisted to the jobs directory.")
	add("# TYPE gcjobs_checkpoints_saved_total counter")
	add("gcjobs_checkpoints_saved_total %d", m.checkpoints.Load())
	add("# HELP gcjobs_checkpoint_files_reclaimed_total Checkpoint files swept for terminal, unknown or unreadable jobs.")
	add("# TYPE gcjobs_checkpoint_files_reclaimed_total counter")
	add("gcjobs_checkpoint_files_reclaimed_total %d", m.ckptReclaims.Load())
	add("# HELP gcjobs_wal_records_total Records appended to the write-ahead log.")
	add("# TYPE gcjobs_wal_records_total counter")
	add("gcjobs_wal_records_total %d", m.walRecords.Load())
	add("# HELP gcjobs_wal_replays_total WAL replays performed at startup.")
	add("# TYPE gcjobs_wal_replays_total counter")
	add("gcjobs_wal_replays_total %d", m.walReplays.Load())
	add("# HELP gcjobs_wal_replayed_records_total Records rebuilt from the WAL at startup.")
	add("# TYPE gcjobs_wal_replayed_records_total counter")
	add("gcjobs_wal_replayed_records_total %d", m.walReplayedRecords.Load())
	add("# HELP gcjobs_wal_truncated_bytes_total Torn-tail bytes truncated from the WAL on replay.")
	add("# TYPE gcjobs_wal_truncated_bytes_total counter")
	add("gcjobs_wal_truncated_bytes_total %d", m.walTruncatedBytes.Load())
	add("# HELP gcjobs_wal_compactions_total WAL compaction rewrites.")
	add("# TYPE gcjobs_wal_compactions_total counter")
	add("gcjobs_wal_compactions_total %d", m.walCompactions.Load())
	add("# HELP gcjobs_wal_fsync_seconds WAL fsync latency (upper-bound quantile estimates).")
	add("# TYPE gcjobs_wal_fsync_seconds summary")
	add("gcjobs_wal_fsync_seconds{quantile=\"0.5\"} %g", fsync.Quantile(0.50))
	add("gcjobs_wal_fsync_seconds{quantile=\"0.99\"} %g", fsync.Quantile(0.99))
	add("gcjobs_wal_fsync_seconds_sum %g", fsync.Sum().Seconds())
	add("gcjobs_wal_fsync_seconds_count %d", fsync.Count())
	add("# HELP gcjobs_time_to_first_checkpoint_seconds Latency from fresh dispatch to first persisted checkpoint.")
	add("# TYPE gcjobs_time_to_first_checkpoint_seconds summary")
	add("gcjobs_time_to_first_checkpoint_seconds{quantile=\"0.5\"} %g", firstCkpt.Quantile(0.50))
	add("gcjobs_time_to_first_checkpoint_seconds{quantile=\"0.99\"} %g", firstCkpt.Quantile(0.99))
	add("gcjobs_time_to_first_checkpoint_seconds_sum %g", firstCkpt.Sum().Seconds())
	add("gcjobs_time_to_first_checkpoint_seconds_count %d", firstCkpt.Count())
	_, err := w.Write(b)
	return err
}
