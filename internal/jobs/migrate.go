package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"hwgc"
	"hwgc/internal/snapshot"
)

// ExportedJob is the portable envelope of one job: everything another
// gcserved needs to continue the job exactly where this one stopped. It is
// the wire format of GET/PUT /v1/jobs/{id}/checkpoint and the unit the
// elastic migration driver ships between backends.
//
// Portability rests on the same two invariants the WAL relies on: the ID is
// the content address of the canonical request (so an import dedupes onto
// any prior submission of the same work), and the snapshot restore contract
// makes a resumed run bit-identical to an uninterrupted one (so a migrated
// job's result matches an unmigrated run byte for byte).
type ExportedJob struct {
	// V is the envelope version; importers reject versions they don't know.
	V    int
	ID   string
	Kind string // KindCollect or KindSweep
	// Class is advisory: the importer maps unknown classes to its default
	// rather than rejecting, since class sets may differ across backends.
	Class   string          `json:",omitempty"`
	Request json.RawMessage // canonical request JSON (the bytes ID hashes)

	// State is the exported position: StateQueued (restart the current
	// point from scratch), StateCheckpointed (resume the current point from
	// Snapshot at Cycle), or StateDone (ResultBody is final).
	State State
	Point int   // completed sweep points (0 for collect)
	Cycle int64 // snapshot cycle within the current point (checkpointed only)

	// Results are the completed sweep points, in order; len == Point.
	Results []hwgc.RunResult `json:",omitempty"`
	// ResultBody is the final encoded response (done only).
	ResultBody []byte `json:",omitempty"`
	// Snapshot is the S21 machine snapshot of the current point
	// (checkpointed only), integrity-checked by SnapCRC.
	Snapshot []byte `json:",omitempty"`
	SnapCRC  uint32 `json:",omitempty"`
}

// exportVersion is the current envelope version.
const exportVersion = 1

// Validate checks the envelope's integrity and internal consistency: the
// version, the content address, the point bounds, the snapshot checksum and
// the snapshot's structural decodability. A truncated or tampered envelope
// fails here with a clean error instead of corrupting the importing job
// table.
func (e *ExportedJob) Validate() error {
	if e.V != exportVersion {
		return fmt.Errorf("jobs: unsupported export version %d (want %d)", e.V, exportVersion)
	}
	points, err := countPoints(e.Kind, e.Request)
	if err != nil {
		return err
	}
	if got := hwgc.KeyBytes(e.Request); got != e.ID {
		return fmt.Errorf("jobs: export ID %s does not match request content key %s", e.ID, got)
	}
	if e.Point < 0 || e.Point > points {
		return fmt.Errorf("jobs: export point %d out of range (job has %d points)", e.Point, points)
	}
	if len(e.Results) != e.Point {
		return fmt.Errorf("jobs: export carries %d point results for point %d", len(e.Results), e.Point)
	}
	switch e.State {
	case StateQueued:
		if len(e.Snapshot) != 0 {
			return fmt.Errorf("jobs: queued export must not carry a snapshot")
		}
		if e.Point >= points {
			return fmt.Errorf("jobs: queued export at point %d of %d", e.Point, points)
		}
	case StateCheckpointed:
		if len(e.Snapshot) == 0 {
			return fmt.Errorf("jobs: checkpointed export missing its snapshot")
		}
		if e.Point >= points {
			return fmt.Errorf("jobs: checkpointed export at point %d of %d", e.Point, points)
		}
		if crc32.ChecksumIEEE(e.Snapshot) != e.SnapCRC {
			return fmt.Errorf("jobs: export snapshot checksum mismatch (corrupt or truncated)")
		}
		if _, err := snapshot.Decode(e.Snapshot); err != nil {
			return fmt.Errorf("jobs: export snapshot undecodable: %w", err)
		}
	case StateDone:
		if len(e.ResultBody) == 0 {
			return fmt.Errorf("jobs: done export missing its result body")
		}
		if len(e.Snapshot) != 0 {
			return fmt.Errorf("jobs: done export must not carry a snapshot")
		}
	default:
		return fmt.Errorf("jobs: state %q is not exportable", e.State)
	}
	return nil
}

// Export captures a job's current position as a portable envelope without
// losing the job's place locally: queued and checkpointed jobs are held out
// of the scheduler only long enough to read their checkpoint file and are
// re-admitted unchanged, done jobs export their result, and running jobs are
// preempted at their next snapshot boundary first (bounded by one checkpoint
// interval), with ctx bounding the wait. Export never mutates the job — the
// source stays runnable until Release, so a failed migration loses nothing.
func (m *Manager) Export(ctx context.Context, id string) (*ExportedJob, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	// Register as an exporter: when the runner parks this job at a boundary
	// it hands the job to us instead of re-enqueueing it (which an idle
	// runner would otherwise win back before we could).
	j.exporting.Add(1)
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		if j.exporting.Add(-1) == 0 && j.parked {
			// Last exporter out re-admits a still-parked job (we bailed on
			// ctx before taking it). Enqueue fails only once the scheduler
			// is closed; the WAL then re-admits the job on the next Open.
			j.parked = false
			_ = m.sched.Enqueue(j)
		}
		m.mu.Unlock()
	}()
	for {
		m.mu.Lock()
		switch {
		case j.State == StateDone:
			env := m.envelopeLocked(j)
			env.State = StateDone
			env.ResultBody = append([]byte(nil), j.ResultBody...)
			m.mu.Unlock()
			m.metrics.exports.Add(1)
			return env, nil
		case j.State.Terminal(): // failed, cancelled, migrated
			state := j.State
			m.mu.Unlock()
			return nil, fmt.Errorf("%w (%s)", ErrTerminal, state)
		case (j.State == StateQueued || j.State == StateCheckpointed) && (m.sched.Remove(j) || j.parked):
			// Held out of the scheduler — either we removed it or the runner
			// parked it for us: no runner can dispatch the job (and overwrite
			// or remove its checkpoint) while we read it.
			j.parked = false
			env := m.envelopeLocked(j)
			env.State = StateQueued
			hasCkpt, point := j.HasCkpt, j.Point
			m.mu.Unlock()
			if hasCkpt {
				if ck, err := readCheckpoint(m.ckptPath(id)); err == nil && ck.Point == point {
					env.State = StateCheckpointed
					env.Cycle = ck.Cycle
					env.Snapshot = ck.Snap
					env.SnapCRC = crc32.ChecksumIEEE(ck.Snap)
				}
				// Unreadable or stale: export as queued at the current point —
				// determinism means the importer re-runs the point and loses
				// only time, never correctness.
			}
			m.mu.Lock()
			// Enqueue fails only once the scheduler is closed (drain); the
			// WAL still re-admits the job on the next Open.
			_ = m.sched.Enqueue(j)
			m.mu.Unlock()
			m.metrics.exports.Add(1)
			return env, nil
		default:
			// Running (or mid-dispatch, which Remove just missed): ask for a
			// checkpoint-boundary yield and wait for the next lifecycle
			// event. runJob clears the preempt flag as it dispatches, so the
			// flag is re-set on every wakeup — the StateRunning event is
			// emitted after the clear, which makes the re-set stick.
			j.preempt.Store(true)
			ev := j.events
			_, ch := ev.subscribe() // under m.mu: no missed-transition window
			m.mu.Unlock()
			if ch == nil {
				continue // already terminal; the loop top classifies it
			}
			select {
			case <-ch:
			case <-ctx.Done():
				ev.unsubscribe(ch)
				return nil, ctx.Err()
			}
			ev.unsubscribe(ch)
		}
	}
}

// envelopeLocked builds the state-independent part of j's envelope. Callers
// hold m.mu and fill in State plus the state-specific payload.
func (m *Manager) envelopeLocked(j *job) *ExportedJob {
	return &ExportedJob{
		V:       exportVersion,
		ID:      j.ID,
		Kind:    j.Kind,
		Class:   j.Class,
		Request: append(json.RawMessage(nil), j.Req...),
		Point:   j.Point,
		Results: append([]hwgc.RunResult(nil), j.Results...),
	}
}

// Import adopts a foreign envelope as a local job: the submission, completed
// points and (for done jobs) the result are written to the WAL, the shipped
// snapshot becomes a local checkpoint file, and the job is enqueued to
// resume exactly where the exporter stopped. Import is idempotent by content
// key: if any job with the envelope's ID already exists — in any state — the
// existing job's Info is returned with accepted=false and nothing changes,
// so replaying a migration (or racing two of them) cannot duplicate work.
func (m *Manager) Import(env *ExportedJob) (Info, bool, error) {
	if err := env.Validate(); err != nil {
		m.metrics.importsRejected.Add(1)
		return Info{}, false, err
	}
	class := env.Class
	if class == "" || !m.sched.Class(class) {
		// Class sets may differ across backends; adopt into the default
		// class rather than stranding the migration.
		class = m.opts.Classes[0].Name
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Info{}, false, ErrDraining
	}
	if j, ok := m.jobs[env.ID]; ok {
		m.metrics.importsDeduped.Add(1)
		info := m.infoLocked(j)
		m.mu.Unlock()
		return info, false, nil
	}
	now := m.opts.Clock()
	points, err := countPoints(env.Kind, env.Request)
	if err != nil { // unreachable after Validate, but keep the invariant local
		m.mu.Unlock()
		return Info{}, false, err
	}
	j := &job{
		ID: env.ID, Kind: env.Kind, Class: class,
		Req:   append(json.RawMessage(nil), env.Request...),
		State: StateQueued, Points: points, Submitted: now,
		events: newEventLog(m.opts.Clock),
	}
	if err := m.wal.Append(walRecord{Type: recSubmit, ID: j.ID, Kind: j.Kind, Class: j.Class, Request: j.Req, At: now}); err != nil {
		m.mu.Unlock()
		return Info{}, false, err
	}
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	for i, res := range env.Results {
		b, err := json.Marshal(res)
		if err != nil {
			m.mu.Unlock()
			return Info{}, false, err
		}
		// WAL append errors below are tolerated like runJob's: the in-memory
		// job still runs, and determinism makes post-crash re-execution safe.
		_ = m.wal.Append(walRecord{Type: recPoint, ID: j.ID, Point: i, Result: b, At: now})
		j.Results = append(j.Results, res)
		j.Point = len(j.Results)
	}
	var notify func()
	switch env.State {
	case StateDone:
		j.State = StateDone
		j.ResultBody = append([]byte(nil), env.ResultBody...)
		j.Finished = now
		_ = m.wal.Append(walRecord{Type: recResult, ID: j.ID, State: StateDone, Body: j.ResultBody, At: now})
		m.metrics.completed.Add(1)
		if cb := m.opts.OnResult; cb != nil {
			id, body := j.ID, j.ResultBody
			notify = func() { cb(id, body) }
		}
	case StateCheckpointed:
		if err := writeCheckpoint(m.ckptPath(j.ID), checkpoint{Point: env.Point, Cycle: env.Cycle, Snap: env.Snapshot}); err == nil {
			j.State = StateCheckpointed
			j.Cycle = env.Cycle
			j.HasCkpt = true
			m.metrics.checkpoints.Add(1)
			_ = m.wal.Append(walRecord{Type: recState, ID: j.ID, State: StateCheckpointed, Point: j.Point, Cycle: j.Cycle, At: now})
		}
		// On write failure the job stays queued at env.Point: the current
		// point restarts from scratch, losing time but not correctness.
	case StateQueued:
		// Nothing beyond the submission and points.
	}
	if !j.State.Terminal() {
		if err := m.sched.Enqueue(j); err != nil {
			m.mu.Unlock()
			return Info{}, false, err
		}
	}
	m.metrics.imports.Add(1)
	j.events.emit(j.State, j.Point, j.Cycle, "")
	info := m.infoLocked(j)
	m.mu.Unlock()
	if notify != nil {
		notify()
	}
	return info, true, nil
}

// Release finishes a job locally as migrated, after its envelope has been
// verifiably imported elsewhere: queued and checkpointed jobs leave the
// scheduler and finish immediately; running jobs are flagged and finish as
// migrated at their next checkpoint boundary (the returned Info then still
// says running). Releasing an already-migrated job is idempotent; other
// terminal states return ErrTerminal with their final Info.
func (m *Manager) Release(id string) (Info, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Info{}, ErrNotFound
	}
	if j.State == StateMigrated {
		return m.infoLocked(j), nil
	}
	if j.State.Terminal() {
		return m.infoLocked(j), ErrTerminal
	}
	j.migrateOut.Store(true)
	j.cancel.Store(true)
	if (j.State == StateQueued || j.State == StateCheckpointed) && m.sched.Remove(j) {
		m.finishLocked(j, StateMigrated, nil, "")
	}
	return m.infoLocked(j), nil
}

// List returns every known job's Info in submission order; with activeOnly
// set, terminal jobs are skipped. The migration driver uses the active list
// to find jobs whose content key moved after a topology change.
func (m *Manager) List(activeOnly bool) []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.order))
	for _, id := range m.order {
		j := m.jobs[id]
		if activeOnly && j.State.Terminal() {
			continue
		}
		out = append(out, m.infoLocked(j))
	}
	return out
}
