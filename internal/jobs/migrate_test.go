package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"hash/crc32"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hwgc"
)

// checkpointedEnvelope builds a genuine mid-run envelope without a manager:
// it starts the collection the canonical request describes, advances it
// partway, and wraps the resulting S21 snapshot the way Export would.
func checkpointedEnvelope(t *testing.T, cores int, seed int64) *ExportedJob {
	t.Helper()
	canonical := collectCanonical(t, cores, seed)
	req := hwgc.CollectRequest{Bench: "search", Seed: seed, Config: hwgc.Config{Cores: cores}}
	rc, err := hwgc.StartCollectRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := rc.StepCycles(200); err != nil || done {
		t.Fatalf("step: done=%v err=%v (need a mid-run position)", done, err)
	}
	snap, err := rc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return &ExportedJob{
		V:        1,
		ID:       hwgc.KeyBytes(canonical),
		Kind:     KindCollect,
		Request:  canonical,
		State:    StateCheckpointed,
		Point:    0,
		Cycle:    rc.Cycle(),
		Snapshot: snap,
		SnapCRC:  crc32.ChecksumIEEE(snap),
	}
}

// TestImportForeignCheckpoint covers adopting a checkpoint no local
// submission ever created: the imported job resumes from the shipped
// snapshot and finishes byte-identical to an uninterrupted local run.
func TestImportForeignCheckpoint(t *testing.T) {
	env := checkpointedEnvelope(t, 4, 11)
	m, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	info, accepted, err := m.Import(env)
	if err != nil || !accepted {
		t.Fatalf("import: accepted=%v err=%v", accepted, err)
	}
	if info.ID != env.ID || info.State != StateCheckpointed || info.Cycle != env.Cycle {
		t.Fatalf("imported info = %+v, want checkpointed at cycle %d", info, env.Cycle)
	}
	waitState(t, m, env.ID, StateDone)
	if m.Metrics().Resumes() == 0 {
		t.Fatal("imported job restarted from scratch instead of resuming its snapshot")
	}
	body, _, err := m.Result(env.ID)
	if err != nil {
		t.Fatal(err)
	}
	if want := collectBody(t, 4, 11); !bytes.Equal(body, want) {
		t.Fatal("foreign-checkpoint result differs from uninterrupted run")
	}
	if m.Metrics().Imports() != 1 {
		t.Fatalf("imports = %d, want 1", m.Metrics().Imports())
	}
	drainManager(t, m)
}

// TestImportRejectsCorrupt covers the integrity gate: corrupt, truncated and
// inconsistent envelopes are rejected with a clean error and leave the job
// table untouched.
func TestImportRejectsCorrupt(t *testing.T) {
	base := checkpointedEnvelope(t, 4, 12)
	m, err := Open(Options{Dir: t.TempDir(), Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(e *ExportedJob){
		"flipped snapshot byte": func(e *ExportedJob) {
			e.Snapshot = append([]byte(nil), e.Snapshot...)
			e.Snapshot[len(e.Snapshot)/2] ^= 0x40
		},
		"truncated snapshot": func(e *ExportedJob) {
			e.Snapshot = append([]byte(nil), e.Snapshot[:len(e.Snapshot)/2]...)
			e.SnapCRC = crc32.ChecksumIEEE(e.Snapshot) // CRC "repaired": decode must still fail
		},
		"unknown version":    func(e *ExportedJob) { e.V = 99 },
		"forged ID":          func(e *ExportedJob) { e.ID = strings.Repeat("ab", 32) },
		"point out of range": func(e *ExportedJob) { e.Point = 7 },
		"missing snapshot":   func(e *ExportedJob) { e.Snapshot, e.SnapCRC = nil, 0 },
	}
	want := int64(0)
	for name, mutate := range cases {
		env := *base
		mutate(&env)
		if _, accepted, err := m.Import(&env); err == nil || accepted {
			t.Errorf("%s: import accepted=%v err=%v, want clean rejection", name, accepted, err)
		}
		want++
		if got := m.Metrics().ImportsRejected(); got != want {
			t.Errorf("%s: importsRejected = %d, want %d", name, got, want)
		}
	}
	if got := len(m.List(false)); got != 0 {
		t.Fatalf("rejected imports left %d jobs in the table", got)
	}
	drainManager(t, m)
}

// TestImportIdempotent covers dedup by content key: replaying an import (or
// racing a duplicate migration) adopts nothing twice.
func TestImportIdempotent(t *testing.T) {
	env := checkpointedEnvelope(t, 4, 13)
	m, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, accepted, err := m.Import(env); err != nil || !accepted {
		t.Fatalf("first import: accepted=%v err=%v", accepted, err)
	}
	info, accepted, err := m.Import(env)
	if err != nil || accepted {
		t.Fatalf("second import: accepted=%v err=%v, want dedup onto the existing job", accepted, err)
	}
	if info.ID != env.ID {
		t.Fatalf("dedup returned job %s", info.ID)
	}
	if m.Metrics().ImportsDeduped() != 1 || m.Metrics().Imports() != 1 {
		t.Fatalf("imports=%d deduped=%d, want 1/1", m.Metrics().Imports(), m.Metrics().ImportsDeduped())
	}
	waitState(t, m, env.ID, StateDone)
	// Importing over the finished job is equally inert.
	if _, accepted, err := m.Import(env); err != nil || accepted {
		t.Fatalf("import over done job: accepted=%v err=%v", accepted, err)
	}
	drainManager(t, m)
}

// TestMigrationSnapshotEquivalence is the gcreplay-diff-backed equivalence
// contract: a checkpoint shipped through the migration wire format resumes
// into a machine whose snapshot diffs empty against the original, and the
// resumed run finishes byte-identical to an uninterrupted one.
func TestMigrationSnapshotEquivalence(t *testing.T) {
	env := checkpointedEnvelope(t, 4, 14)

	// The wire hop the migrator performs: envelope → JSON → envelope.
	wire, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var shipped ExportedJob
	if err := json.Unmarshal(wire, &shipped); err != nil {
		t.Fatal(err)
	}
	if err := shipped.Validate(); err != nil {
		t.Fatalf("shipped envelope fails validation: %v", err)
	}

	// Resume on the "destination" and re-snapshot at the same cycle: the
	// same structural diff gcreplay uses must come back empty.
	req := hwgc.CollectRequest{Bench: "search", Seed: 14, Config: hwgc.Config{Cores: 4}}
	rc, err := hwgc.ResumeCollectRequest(req, shipped.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Cycle() != env.Cycle {
		t.Fatalf("resumed at cycle %d, exported at %d", rc.Cycle(), env.Cycle)
	}
	resnap, err := rc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	diff, err := hwgc.DiffSnapshots(env.Snapshot, resnap)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("resumed machine diverges from exported snapshot:\n%s", strings.Join(diff, "\n"))
	}

	// And the resumed run's final response is byte-identical to the
	// uninterrupted run of the same request.
	resp, err := rc.Response()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := resp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), collectBody(t, 4, 14)) {
		t.Fatal("resumed response differs from uninterrupted run")
	}
}

// TestExportMigrateRelease is the full in-process migration path: a running
// sweep is preempted at a snapshot boundary, exported, imported into a
// second manager, resumed there byte-identically, and released as migrated
// at the source.
func TestExportMigrateRelease(t *testing.T) {
	canonical := sweepCanonical(t, []int{8, 1})
	id := hwgc.KeyBytes(canonical)

	// The hook gates checkpoint boundaries: while gated, the runner parks in
	// the hook until the test steps it through, so the test controls exactly
	// when the runner can observe Export's preempt request.
	var gated atomic.Bool
	entered := make(chan struct{}, 1)
	step := make(chan struct{})
	m1, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 500, CheckpointHook: func(string) {
		if !gated.Load() {
			return
		}
		select {
		case entered <- struct{}{}:
		default:
		}
		<-step
	}})
	if err != nil {
		t.Fatal(err)
	}
	released := false
	releaseRunner := func() {
		if !released {
			released = true
			gated.Store(false)
			close(step)
		}
	}
	defer func() {
		releaseRunner()
		drainManager(t, m1)
	}()

	if _, _, err := m1.Submit(KindSweep, "batch", canonical); err != nil {
		t.Fatal(err)
	}
	// Let point 0 complete so the envelope carries a point result, then gate
	// the runner at a checkpoint inside point 1.
	deadline := time.Now().Add(60 * time.Second)
	for {
		info, err := m1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.Point >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("point 0 never completed (state %s)", info.State)
		}
		time.Sleep(time.Millisecond)
	}
	gated.Store(true)
	select {
	case <-entered:
	case <-time.After(60 * time.Second):
		t.Fatal("runner never reached a gated checkpoint in point 1")
	}
	m1.mu.Lock()
	j := m1.jobs[id]
	m1.mu.Unlock()

	// Export while the job runs: it must preempt at the held boundary.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type exportResult struct {
		env *ExportedJob
		err error
	}
	exported := make(chan exportResult, 1)
	go func() {
		env, err := m1.Export(ctx, id)
		exported <- exportResult{env, err}
	}()
	// Step gated boundaries through one at a time, but only once Export's
	// preempt request is visible — so the very next boundary check parks the
	// job and Export captures it.
	var res exportResult
stepLoop:
	for {
		select {
		case res = <-exported:
			break stepLoop
		default:
		}
		if j.preempt.Load() {
			select {
			case step <- struct{}{}:
			case res = <-exported:
				break stepLoop
			}
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
	if res.err != nil {
		t.Fatalf("export: %v", res.err)
	}
	env := res.env
	if env.State != StateCheckpointed || env.Point != 1 || len(env.Snapshot) == 0 || len(env.Results) != 1 {
		t.Fatalf("export envelope: state=%s point=%d snapshot=%dB results=%d, want a point-1 checkpoint",
			env.State, env.Point, len(env.Snapshot), len(env.Results))
	}
	if err := env.Validate(); err != nil {
		t.Fatalf("exported envelope fails its own validation: %v", err)
	}
	if m1.Metrics().Exports() != 1 {
		t.Fatalf("exports = %d, want 1", m1.Metrics().Exports())
	}

	// Import on the destination and run it to completion there.
	m2, err := Open(Options{Dir: t.TempDir(), Runners: 1, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	info, accepted, err := m2.Import(env)
	if err != nil || !accepted {
		t.Fatalf("import: accepted=%v err=%v", accepted, err)
	}
	if info.Point != 1 || info.State != StateCheckpointed {
		t.Fatalf("imported at point %d state %s, want checkpointed at point 1", info.Point, info.State)
	}
	waitState(t, m2, id, StateDone)
	if m2.Metrics().Resumes() == 0 {
		t.Fatal("migrated job restarted instead of resuming the shipped snapshot")
	}
	body, _, err := m2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if want := sweepBody(t, []int{8, 1}); !bytes.Equal(body, want) {
		t.Fatal("migrated result differs from uninterrupted run")
	}

	// Release the source: the job finishes as migrated, never cancelled.
	if _, err := m1.Release(id); err != nil {
		t.Fatalf("release: %v", err)
	}
	releaseRunner()
	deadline = time.Now().Add(60 * time.Second)
	for {
		info, err := m1.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == StateMigrated {
			break
		}
		if info.State.Terminal() {
			t.Fatalf("released job finished as %s, want migrated", info.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("released job never reached migrated (state %s)", info.State)
		}
		time.Sleep(time.Millisecond)
	}
	if m1.Metrics().Migrated() != 1 {
		t.Fatalf("migrated = %d, want 1", m1.Metrics().Migrated())
	}
	// A released job is terminal: re-export refuses, release is idempotent.
	if _, err := m1.Export(ctx, id); !errors.Is(err, ErrTerminal) {
		t.Fatalf("export after release: %v, want ErrTerminal", err)
	}
	if _, err := m1.Release(id); err != nil {
		t.Fatalf("second release not idempotent: %v", err)
	}
	// The active listing hides it; the full listing keeps it.
	if got := len(m1.List(true)); got != 0 {
		t.Fatalf("active list has %d jobs after release", got)
	}
	if got := len(m1.List(false)); got != 1 {
		t.Fatalf("full list has %d jobs, want 1", got)
	}
	drainManager(t, m2)
}
