package jobs

import (
	"fmt"
	"sync"
)

// Scheduler shares the runner pool across priority classes with stride
// (weighted-fair) scheduling plus anti-starvation aging, and decides which
// running job must yield when higher-priority work arrives.
//
// Each class accumulates a virtual "pass" value: executing one slice (one
// checkpoint interval, the scheduler's service quantum) advances the
// class's pass by 1/weight, and the backlogged class with the smallest
// effective pass runs next — so over time each backlogged class receives
// runner slices in proportion to its weight, exactly the paper's
// amortization argument at job granularity (a small fixed synchronization
// cost per slice buys interleaving of many short units with long ones).
// Aging subtracts a small bonus per consecutive losing pick from a
// backlogged class's pass, so even a weight-1 class under a persistent
// heavy load is dragged to the front in bounded time.
//
// Preemption: when a job arrives in class H and every runner is busy, the
// running job from the lowest-weight class L with weight(L) < weight(H) is
// flagged; it yields at its next checkpoint boundary. The strict inequality
// makes preemption a one-way street (interactive preempts batch, never the
// reverse, and equal classes never thrash), and because a preempted job
// loses no work — its state is checkpointed — the cost of a wrong guess is
// one fsync, not a redo.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	classes map[string]*schedClass
	order   []string // class names, configuration order (deterministic ties)
	closed  bool

	// aging is the pass bonus a backlogged class earns per losing pick.
	aging float64
	// vtime is the global virtual time: the pass of the most recently
	// picked class. A class waking from idle is clamped up to it.
	vtime float64
}

// schedClass is one priority class's queue and fair-share accounting.
type schedClass struct {
	name   string
	weight int
	queue  []*job // FIFO; preempted jobs re-enter at the front
	pass   float64
	age    int // consecutive picks lost while backlogged
}

// defaultAging is the pass bonus per losing pick: small enough that weights
// dominate steady-state shares, large enough that a weight-1 class facing a
// weight-8 flood is picked within tens of slices rather than hundreds.
const defaultAging = 1.0 / 64

// NewScheduler builds a scheduler over the given classes.
func NewScheduler(classes []ClassConfig, aging float64) (*Scheduler, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("jobs: scheduler needs at least one class")
	}
	if aging <= 0 {
		aging = defaultAging
	}
	s := &Scheduler{classes: make(map[string]*schedClass, len(classes)), aging: aging}
	s.cond = sync.NewCond(&s.mu)
	for _, c := range classes {
		if c.Weight < 1 {
			return nil, fmt.Errorf("jobs: class %q: weight %d < 1", c.Name, c.Weight)
		}
		if _, dup := s.classes[c.Name]; dup {
			return nil, fmt.Errorf("jobs: duplicate class %q", c.Name)
		}
		s.classes[c.Name] = &schedClass{name: c.Name, weight: c.Weight}
		s.order = append(s.order, c.Name)
	}
	return s, nil
}

// Class reports whether name is a configured class.
func (s *Scheduler) Class(name string) bool {
	_, ok := s.classes[name]
	return ok
}

// Weight returns the weight of a configured class (0 if unknown).
func (s *Scheduler) Weight(name string) int {
	if c, ok := s.classes[name]; ok {
		return c.weight
	}
	return 0
}

// Enqueue adds j to its class queue. Preempted (checkpointed) jobs go to
// the front so intra-class order stays FIFO by submission; fresh jobs go to
// the back. A class waking from idle has its pass clamped up to the global
// virtual time so it cannot bank credit while idle and then starve everyone
// else (the standard stride-scheduling re-admission rule); a class whose
// only job is merely cycling through the runner sits at the virtual-time
// frontier already, so the clamp is a no-op for it and its earned advantage
// survives.
func (s *Scheduler) Enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobs: scheduler closed")
	}
	c, ok := s.classes[j.Class]
	if !ok {
		return fmt.Errorf("jobs: unknown class %q", j.Class)
	}
	if len(c.queue) == 0 && c.pass < s.vtime {
		c.pass = s.vtime
	}
	if j.State == StateCheckpointed {
		c.queue = append([]*job{j}, c.queue...)
	} else {
		c.queue = append(c.queue, j)
	}
	s.cond.Signal()
	return nil
}

// Next blocks until a job is available (returning the fair-share pick) or
// the scheduler is closed (returning nil).
func (s *Scheduler) Next() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.pick(); j != nil {
			return j
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// pick dequeues from the backlogged class with the smallest effective pass
// (pass minus the aging bonus), breaking ties toward the higher weight and
// then configuration order. Callers hold s.mu.
func (s *Scheduler) pick() *job {
	var best *schedClass
	for _, name := range s.order {
		c := s.classes[name]
		if len(c.queue) == 0 {
			continue
		}
		if best == nil {
			best = c
			continue
		}
		ce, be := c.pass-s.aging*float64(c.age), best.pass-s.aging*float64(best.age)
		if ce < be || (ce == be && c.weight > best.weight) {
			best = c
		}
	}
	if best == nil {
		return nil
	}
	j := best.queue[0]
	best.queue = best.queue[1:]
	best.age = 0
	s.vtime = best.pass
	for _, name := range s.order {
		c := s.classes[name]
		if c != best && len(c.queue) > 0 {
			c.age++
		}
	}
	return j
}

// Charge advances class's pass by one service quantum (one executed slice).
func (s *Scheduler) Charge(class string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.classes[class]; ok {
		c.pass += 1.0 / float64(c.weight)
	}
}

// Remove deletes j from its class queue (cancellation of a queued job). It
// reports whether the job was found and removed.
func (s *Scheduler) Remove(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.classes[j.Class]
	if !ok {
		return false
	}
	for i, q := range c.queue {
		if q == j {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Depths returns the queued-job count per class (for metrics and /healthz).
func (s *Scheduler) Depths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.classes))
	for name, c := range s.classes {
		out[name] = len(c.queue)
	}
	return out
}

// Backlog returns the total queued-job count.
func (s *Scheduler) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.classes {
		n += len(c.queue)
	}
	return n
}

// Close wakes every blocked Next with nil. Queued jobs stay queued (they
// are durable in the WAL; a restart re-enqueues them).
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}
