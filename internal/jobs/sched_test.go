package jobs

import (
	"testing"
)

func testSched(t *testing.T, spec string) *Scheduler {
	t.Helper()
	classes, err := ParseClasses(spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(classes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// drainPicks simulates the runner loop: repeatedly pick the next job and
// charge its class, re-enqueueing the job so both classes stay backlogged,
// and count picks per class.
func drainPicks(t *testing.T, s *Scheduler, rounds int) map[string]int {
	t.Helper()
	counts := map[string]int{}
	for i := 0; i < rounds; i++ {
		j := s.Next()
		if j == nil {
			t.Fatal("scheduler closed unexpectedly")
		}
		counts[j.Class]++
		s.Charge(j.Class)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	return counts
}

func TestSchedulerWeightedShares(t *testing.T) {
	s := testSched(t, "fast:8,slow:1")
	fast := &job{ID: "f", Class: "fast", State: StateQueued}
	slow := &job{ID: "s", Class: "slow", State: StateQueued}
	if err := s.Enqueue(fast); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(slow); err != nil {
		t.Fatal(err)
	}
	counts := drainPicks(t, s, 900)
	ratio := float64(counts["fast"]) / float64(counts["slow"])
	// Aging softens the 8:1 ideal; anything clearly weight-proportional is
	// fine, equal-share round-robin is not.
	if ratio < 3 {
		t.Fatalf("fast:slow pick ratio = %d:%d (%.2f), want weight-proportional", counts["fast"], counts["slow"], ratio)
	}
	if counts["slow"] == 0 {
		t.Fatal("weight-1 class starved")
	}
}

func TestSchedulerAgingPreventsStarvation(t *testing.T) {
	// With aggressive aging, the weight-1 class must be picked within a
	// bounded number of slices even against a weight-64 flood.
	classes, _ := ParseClasses("heavy:64,light:1")
	s, err := NewScheduler(classes, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(&job{ID: "h", Class: "heavy"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(&job{ID: "l", Class: "light"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		j := s.Next()
		if j.Class == "light" {
			return // picked within the bound
		}
		s.Charge(j.Class)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("light class not picked within 64 slices despite aging")
}

func TestSchedulerCheckpointedRequeuesAtFront(t *testing.T) {
	s := testSched(t, "batch:1")
	a := &job{ID: "a", Class: "batch", State: StateQueued}
	b := &job{ID: "b", Class: "batch", State: StateQueued}
	pre := &job{ID: "pre", Class: "batch", State: StateCheckpointed}
	for _, j := range []*job{a, b} {
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Enqueue(pre); err != nil {
		t.Fatal(err)
	}
	if got := s.Next(); got != pre {
		t.Fatalf("first pick = %s, want the checkpointed job", got.ID)
	}
	if got := s.Next(); got != a {
		t.Fatalf("second pick = %s, want a", got.ID)
	}
}

func TestSchedulerIdleClassCannotBankCredit(t *testing.T) {
	s := testSched(t, "a:1,b:1")
	ja := &job{ID: "ja", Class: "a"}
	if err := s.Enqueue(ja); err != nil {
		t.Fatal(err)
	}
	// Class a runs alone for many slices while b idles.
	for i := 0; i < 100; i++ {
		j := s.Next()
		s.Charge(j.Class)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	// When b wakes, its pass is clamped to a's: it must not monopolize the
	// runner for 100 slices to "catch up".
	jb := &job{ID: "jb", Class: "b"}
	if err := s.Enqueue(jb); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 20; i++ {
		j := s.Next()
		counts[j.Class]++
		s.Charge(j.Class)
		if err := s.Enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	if counts["b"] > 14 {
		t.Fatalf("re-admitted class monopolized the runner: %v", counts)
	}
	if counts["a"] == 0 {
		t.Fatalf("established class starved by re-admission: %v", counts)
	}
}

func TestSchedulerRemoveAndDepths(t *testing.T) {
	s := testSched(t, "interactive:8,batch:1")
	j := &job{ID: "x", Class: "batch"}
	if err := s.Enqueue(j); err != nil {
		t.Fatal(err)
	}
	d := s.Depths()
	if d["batch"] != 1 || d["interactive"] != 0 {
		t.Fatalf("depths = %v", d)
	}
	if !s.Remove(j) {
		t.Fatal("Remove did not find the queued job")
	}
	if s.Remove(j) {
		t.Fatal("Remove found an already-removed job")
	}
	if s.Backlog() != 0 {
		t.Fatalf("backlog = %d after remove", s.Backlog())
	}
}

func TestSchedulerCloseUnblocksNext(t *testing.T) {
	s := testSched(t, "batch:1")
	done := make(chan *job, 1)
	go func() { done <- s.Next() }()
	s.Close()
	if j := <-done; j != nil {
		t.Fatalf("Next returned %v after Close, want nil", j)
	}
	if err := s.Enqueue(&job{ID: "x", Class: "batch"}); err == nil {
		t.Fatal("Enqueue accepted a job after Close")
	}
}
