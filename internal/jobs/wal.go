package jobs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"
)

// The write-ahead log persists job submissions and state transitions so a
// crashed or restarted process can rebuild the job table exactly. The
// framing mirrors internal/snapshot's section format:
//
//	file   = magic "HWGCJWL1" | record*
//	record = u8 type | u32 payloadLen | payload | u32 crc32(IEEE, payload)
//
// Payloads are canonical JSON (small, debuggable; the only large payloads
// are final result bodies, which are bounded by the serving tier's own
// response sizes). Appends are fsynced before Submit/transition returns, so
// an acknowledged job survives a crash. A torn final record — the only kind
// of corruption a crash mid-append can produce, since records are written
// with a single Write call — is truncated away on replay; corruption
// earlier in the file is reported, not silently skipped.
const (
	walMagic = "HWGCJWL1"
	walName  = "jobs.wal"
)

// Record types.
const (
	recSubmit uint8 = 1 + iota // a new job: id, kind, class, canonical request
	recState                   // a state transition: id, state, point, cycle, error
	recPoint                   // a completed sweep point: id, point index, RunResult JSON
	recResult                  // a final result body: id, encoded response bytes
	recAux                     // an auxiliary subsystem record: kind holds the tag, body the payload
)

// walRecord is the decoded form of one WAL record. Unused fields stay zero
// for a given type.
type walRecord struct {
	Type    uint8           `json:"-"`
	ID      string          `json:",omitempty"`
	Kind    string          `json:",omitempty"`
	Class   string          `json:",omitempty"`
	Request json.RawMessage `json:",omitempty"` // canonical request (recSubmit)
	State   State           `json:",omitempty"`
	Point   int             `json:",omitempty"`
	Cycle   int64           `json:",omitempty"`
	Error   string          `json:",omitempty"`
	Result  json.RawMessage `json:",omitempty"` // RunResult (recPoint)
	Body    []byte          `json:",omitempty"` // response body (recResult)
	At      time.Time       `json:",omitempty"` // transition time, for Info fidelity across restarts
}

// maxWALRecordBytes bounds one record's payload: the largest legitimate
// payload is a sweep response body (MaxSweepPoints results), far under this.
// A length prefix beyond the bound is corruption, not data.
const maxWALRecordBytes = 256 << 20

// WAL is the append-only job log. Appends are serialized by the Manager's
// lock; the WAL itself only guards the file handle.
type WAL struct {
	f       *os.File
	path    string
	metrics *Metrics
}

// OpenWAL opens (creating if absent) the WAL in dir, replays every intact
// record, truncates a torn tail, and returns the log opened for append.
func OpenWAL(dir string, m *Metrics) (*WAL, []walRecord, error) {
	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, metrics: m}
	recs, err := w.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, recs, nil
}

// replay reads the whole file, validates framing, and positions the handle
// at the end of the last intact record (truncating a torn tail).
func (w *WAL) replay() ([]walRecord, error) {
	data, err := io.ReadAll(w.f)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		// Fresh log: write the magic now so every non-empty WAL starts
		// identically.
		if _, err := w.f.Write([]byte(walMagic)); err != nil {
			return nil, err
		}
		w.metrics.walReplays.Add(1)
		return nil, w.f.Sync()
	}
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, fmt.Errorf("jobs: %s: bad WAL magic", w.path)
	}
	var recs []walRecord
	off := len(walMagic)
	good := off
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 5 {
			break // torn header
		}
		typ := rest[0]
		n := int(binary.LittleEndian.Uint32(rest[1:5]))
		if n > maxWALRecordBytes {
			return nil, fmt.Errorf("jobs: %s: record at %d claims %d bytes", w.path, off, n)
		}
		if len(rest) < 5+n+4 {
			break // torn payload or checksum
		}
		payload := rest[5 : 5+n]
		sum := binary.LittleEndian.Uint32(rest[5+n:])
		if crc32.ChecksumIEEE(payload) != sum {
			if off+5+n+4 == len(data) {
				break // torn final record: checksum half-written
			}
			return nil, fmt.Errorf("jobs: %s: checksum mismatch at %d", w.path, off)
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("jobs: %s: record at %d: %w", w.path, off, err)
		}
		rec.Type = typ
		recs = append(recs, rec)
		off += 5 + n + 4
		good = off
	}
	if good < len(data) {
		w.metrics.walTruncatedBytes.Add(int64(len(data) - good))
		if err := w.f.Truncate(int64(good)); err != nil {
			return nil, err
		}
	}
	if _, err := w.f.Seek(int64(good), io.SeekStart); err != nil {
		return nil, err
	}
	w.metrics.walReplayedRecords.Add(int64(len(recs)))
	w.metrics.walReplays.Add(1)
	return recs, nil
}

// frame serializes one record into its on-disk framing.
func frame(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 5+len(payload)+4)
	buf = append(buf, rec.Type)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload)), nil
}

// Append frames, writes and fsyncs one record. The record is durable when
// Append returns nil.
func (w *WAL) Append(rec walRecord) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.metrics.ObserveFsync(time.Since(start))
	w.metrics.walRecords.Add(1)
	return nil
}

// Rewrite atomically replaces the log with exactly recs (compaction): a
// temp file is written, fsynced once and renamed over the log, and the
// handle swapped. On any error the original log remains untouched.
func (w *WAL) Rewrite(recs []walRecord) error {
	tmp, err := os.CreateTemp(filepath.Dir(w.path), ".wal-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	buf := []byte(walMagic)
	for _, rec := range recs {
		fr, err := frame(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		buf = append(buf, fr...)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		tmp.Close()
		return err
	}
	old := w.f
	w.f = tmp
	old.Close()
	w.metrics.walCompactions.Add(1)
	return nil
}

// Close closes the file handle. The Manager serializes Close against
// Appends.
func (w *WAL) Close() error { return w.f.Close() }
