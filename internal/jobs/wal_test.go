package jobs

import (
	"os"
	"path/filepath"
	"testing"
)

func openTestWAL(t *testing.T, dir string) (*WAL, []walRecord, *Metrics) {
	t.Helper()
	m := NewMetrics()
	w, recs, err := OpenWAL(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	return w, recs, m
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, _ := openTestWAL(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	want := []walRecord{
		{Type: recSubmit, ID: "a", Kind: KindCollect, Class: "batch", Request: []byte(`{"Bench":"search"}`)},
		{Type: recState, ID: "a", State: StateRunning},
		{Type: recPoint, ID: "a", Point: 0, Result: []byte(`{"PlanWords":7}`)},
		{Type: recResult, ID: "a", State: StateDone, Body: []byte("result-bytes")},
	}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, m2 := openTestWAL(t, dir)
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.Type != want[i].Type || rec.ID != want[i].ID || rec.State != want[i].State {
			t.Fatalf("record %d = %+v, want %+v", i, rec, want[i])
		}
	}
	if string(got[3].Body) != "result-bytes" {
		t.Fatalf("result body = %q", got[3].Body)
	}
	if m2.WALReplayedRecords() != int64(len(want)) {
		t.Fatalf("replayed-records metric = %d", m2.WALReplayedRecords())
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openTestWAL(t, dir)
	if err := w.Append(walRecord{Type: recSubmit, ID: "a", Kind: KindCollect}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord{Type: recState, ID: "a", State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Tear the final record: chop off its last 3 bytes (mid-checksum).
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs, m := openTestWAL(t, dir)
	if len(recs) != 1 || recs[0].ID != "a" || recs[0].Type != recSubmit {
		t.Fatalf("replay after torn tail = %+v, want just the submit", recs)
	}
	if m.walTruncatedBytes.Load() == 0 {
		t.Fatal("truncated-bytes metric not bumped")
	}
	// The log must be appendable and replayable again after truncation.
	if err := w2.Append(walRecord{Type: recState, ID: "a", State: StateFailed, Error: "x"}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3, recs3, _ := openTestWAL(t, dir)
	defer w3.Close()
	if len(recs3) != 2 || recs3[1].State != StateFailed {
		t.Fatalf("replay after re-append = %+v", recs3)
	}
}

func TestWALMidFileCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	w, _, _ := openTestWAL(t, dir)
	if err := w.Append(walRecord{Type: recSubmit, ID: "a", Kind: KindCollect}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord{Type: recState, ID: "a", State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Flip a payload byte inside the FIRST record: this is silent data
	// damage, not a torn append, and must fail the open loudly.
	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+6] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(dir, NewMetrics()); err == nil {
		t.Fatal("mid-file corruption not rejected")
	}
}

func TestWALRewriteCompacts(t *testing.T) {
	dir := t.TempDir()
	w, _, m := openTestWAL(t, dir)
	for i := 0; i < 10; i++ {
		if err := w.Append(walRecord{Type: recState, ID: "a", State: StateRunning}); err != nil {
			t.Fatal(err)
		}
	}
	big, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	keep := []walRecord{{Type: recSubmit, ID: "a", Kind: KindCollect, Class: "batch"}}
	if err := w.Rewrite(keep); err != nil {
		t.Fatal(err)
	}
	small, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if small.Size() >= big.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d", big.Size(), small.Size())
	}
	if m.walCompactions.Load() != 1 {
		t.Fatalf("compactions metric = %d", m.walCompactions.Load())
	}
	// The compacted log must serve appends and replay.
	if err := w.Append(walRecord{Type: recState, ID: "a", State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, recs, _ := openTestWAL(t, dir)
	defer w2.Close()
	if len(recs) != 2 || recs[0].Type != recSubmit || recs[1].Type != recState {
		t.Fatalf("replay after compaction = %+v", recs)
	}
}
