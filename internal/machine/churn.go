package machine

import (
	"hwgc/internal/heap"
	"hwgc/internal/object"
)

// churnState is the built-in config-driven churn mutator: the same kind of
// randomized pointer-chasing / field-writing / allocating workload as
// NewConcurrentChurn, but with pointer *stores* in the mix (so the write
// barrier has something to do) and with all of its state in plain fields —
// an explicit splitmix64 PRNG instead of a captured *rand.Rand — so a
// machine snapshot can carry it and a restore resumes the operation stream
// bit-identically.
type churnState struct {
	h         *heap.Heap
	rng       uint64
	maxOps    int64
	maxAllocs int64
	allocs    int64
}

func newChurnState(h *heap.Heap, cfg Config) *churnState {
	return &churnState{
		h:         h,
		rng:       uint64(cfg.MutatorSeed),
		maxOps:    cfg.MutatorOps,
		maxAllocs: cfg.MutatorAllocs,
	}
}

// next is splitmix64: a tiny, statistically solid generator whose entire
// state is one uint64 — exactly what the snapshot codec wants.
func (c *churnState) next() uint64 {
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (c *churnState) intn(n int) int { return int(c.next() % uint64(n)) }

// shape reads an object's static shape through the heap — untimed
// meta-knowledge, like a compiler knowing its types (see NewConcurrentChurn).
func (c *churnState) shape(a object.Addr) (pi, delta int) {
	hd := c.h.Header(a)
	return hd.Pi, hd.Delta
}

// pick returns a register holding an object whose shape satisfies pred.
func (c *churnState) pick(regs []object.Addr, pred func(pi, delta int) bool) (int, bool) {
	start := c.intn(len(regs))
	for k := 0; k < len(regs); k++ {
		r := (start + k) % len(regs)
		if regs[r] == object.NilPtr {
			continue
		}
		if pi, delta := c.shape(regs[r]); pred(pi, delta) {
			return r, true
		}
	}
	return 0, false
}

// drive is the MutDriver. Pointer stores — including nil stores, which
// delete edges and manufacture floating-garbage candidates — make up a
// sizeable share of the mix so the barrier-mode comparison has signal.
func (c *churnState) drive(seq int64, regs []object.Addr, _ object.Word) (MutOp, bool) {
	if seq >= c.maxOps {
		return MutOp{}, false
	}
	for try := 0; try < 16; try++ {
		switch c.intn(10) {
		case 0, 1: // load a root
			return MutOp{
				Kind:    MutLoadRoot,
				Reg:     c.intn(len(regs)),
				RootIdx: c.intn(c.h.NumRoots()),
			}, true
		case 2, 3: // follow a pointer
			r, ok := c.pick(regs, func(pi, _ int) bool { return pi > 0 })
			if !ok {
				continue
			}
			pi, _ := c.shape(regs[r])
			return MutOp{Kind: MutLoadPtr, Reg: r, Reg2: c.intn(len(regs)), Slot: c.intn(pi)}, true
		case 4, 5: // overwrite a pointer field (the write-barrier trigger)
			r, ok := c.pick(regs, func(pi, _ int) bool { return pi > 0 })
			if !ok {
				continue
			}
			pi, _ := c.shape(regs[r])
			return MutOp{Kind: MutStorePtr, Reg: r, Reg2: c.intn(len(regs)), Slot: c.intn(pi)}, true
		case 6: // read a data word
			r, ok := c.pick(regs, func(_, delta int) bool { return delta > 0 })
			if !ok {
				continue
			}
			_, delta := c.shape(regs[r])
			return MutOp{Kind: MutLoadData, Reg: r, Slot: c.intn(delta)}, true
		case 7: // overwrite a data word
			r, ok := c.pick(regs, func(_, delta int) bool { return delta > 0 })
			if !ok {
				continue
			}
			_, delta := c.shape(regs[r])
			return MutOp{Kind: MutStoreData, Reg: r, Slot: c.intn(delta), Data: object.Word(c.next())}, true
		case 8: // publish a register into a root slot
			r, ok := c.pick(regs, func(_, _ int) bool { return true })
			if !ok {
				continue
			}
			return MutOp{Kind: MutStoreRoot, Reg: r, RootIdx: c.intn(c.h.NumRoots())}, true
		default: // allocate a small object and keep it in a register
			if c.allocs >= c.maxAllocs {
				return MutOp{Kind: MutNop}, true
			}
			c.allocs++
			return MutOp{Kind: MutAlloc, Reg: c.intn(len(regs)), Pi: c.intn(3), Delta: c.intn(5)}, true
		}
	}
	return MutOp{Kind: MutNop}, true
}
