package machine

import (
	"math/rand"

	"hwgc/internal/heap"
	"hwgc/internal/object"
)

// NewConcurrentChurn returns a deterministic MutDriver that performs a
// randomized pointer-chasing / field-writing / allocating workload over the
// heap's root set — a generic stand-in for an application running while the
// coprocessor collects.
//
// The driver inspects object *shapes* (π, δ) through the heap directly,
// which is legitimate meta-knowledge — a real program knows the static
// types of the objects it manipulates — while every actual field access it
// performs goes through the timed mutator port. Shape reads are safe at any
// point of the collection: the mutator only ever holds tospace references,
// and both gray and black tospace headers carry the correct π and δ.
func NewConcurrentChurn(h *heap.Heap, seed int64, maxOps, maxAllocs int64) MutDriver {
	rng := rand.New(rand.NewSource(seed))
	var allocs int64

	shape := func(a object.Addr) (pi, delta int) {
		hd := h.Header(a)
		return hd.Pi, hd.Delta
	}
	pick := func(regs []object.Addr, pred func(pi, delta int) bool) (int, bool) {
		start := rng.Intn(len(regs))
		for k := 0; k < len(regs); k++ {
			r := (start + k) % len(regs)
			if regs[r] == object.NilPtr {
				continue
			}
			if pi, delta := shape(regs[r]); pred(pi, delta) {
				return r, true
			}
		}
		return 0, false
	}

	return func(seq int64, regs []object.Addr, _ object.Word) (MutOp, bool) {
		if seq >= maxOps {
			return MutOp{}, false
		}
		for try := 0; try < 16; try++ {
			switch rng.Intn(8) {
			case 0, 1: // load a root
				return MutOp{
					Kind:    MutLoadRoot,
					Reg:     rng.Intn(len(regs)),
					RootIdx: rng.Intn(h.NumRoots()),
				}, true
			case 2, 3: // follow a pointer
				r, ok := pick(regs, func(pi, _ int) bool { return pi > 0 })
				if !ok {
					continue
				}
				pi, _ := shape(regs[r])
				return MutOp{Kind: MutLoadPtr, Reg: r, Reg2: rng.Intn(len(regs)), Slot: rng.Intn(pi)}, true
			case 4: // read a data word
				r, ok := pick(regs, func(_, delta int) bool { return delta > 0 })
				if !ok {
					continue
				}
				_, delta := shape(regs[r])
				return MutOp{Kind: MutLoadData, Reg: r, Slot: rng.Intn(delta)}, true
			case 5: // overwrite a data word
				r, ok := pick(regs, func(_, delta int) bool { return delta > 0 })
				if !ok {
					continue
				}
				_, delta := shape(regs[r])
				return MutOp{Kind: MutStoreData, Reg: r, Slot: rng.Intn(delta), Data: rng.Uint64()}, true
			case 6: // allocate a small object and keep it in a register
				if allocs >= maxAllocs {
					continue
				}
				allocs++
				return MutOp{Kind: MutAlloc, Reg: rng.Intn(len(regs)), Pi: rng.Intn(3), Delta: rng.Intn(5)}, true
			default:
				return MutOp{Kind: MutNop}, true
			}
		}
		return MutOp{Kind: MutNop}, true
	}
}
