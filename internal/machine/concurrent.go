package machine

import (
	"fmt"

	"hwgc/internal/mem"
	"hwgc/internal/object"
)

// Concurrent collection — the paper's stated next step (Section V-B: "as a
// next step, we intend to allow the multi-core coprocessor to run
// concurrently to the main processor"), built from the pieces this paper
// already provides. The design follows from three observations:
//
//  1. The scanning cores rewrite every pointer slot of an object before
//     blackening it, so a *black* tospace object contains only tospace
//     pointers. A mutator that (a) starts the cycle with forwarded roots
//     and (b) never reads a field of a non-black object can therefore never
//     acquire a fromspace reference — Baker's invariant holds with a
//     *wait-until-black* access barrier instead of a forwarding read
//     barrier (this is what the authors' prior hardware-read-barrier work
//     provides in silicon).
//
//  2. Objects the mutator allocates during the cycle have no fromspace
//     original and hold only tospace pointers, so they are *black at
//     birth*: the frame is published with a plain (non-gray) header and the
//     scanning cores simply step over it when the scan pointer reaches it.
//
//  3. Allocation contends for the free pointer exactly like evacuation, so
//     the mutator port participates in the synchronization block's free
//     lock like a seventeenth core.
//
// The mutator is modelled as one more cycle-stepped port (registers for the
// object references it holds, one operation in flight, the same four memory
// ports as a GC core) driven by a deterministic MutDriver. Its observable
// cost — the longest time any single operation stalls — is the concurrent
// analogue of the stop-the-world pause.

// MutKind enumerates the mutator operations.
type MutKind int

const (
	// MutNop idles for one period.
	MutNop MutKind = iota
	// MutLoadRoot loads a root slot into a register: regs[Reg] = roots[RootIdx].
	MutLoadRoot
	// MutStoreRoot stores a register into a root slot: roots[RootIdx] = regs[Reg].
	MutStoreRoot
	// MutLoadPtr loads a pointer field: regs[Reg2] = regs[Reg].ptr[Slot].
	MutLoadPtr
	// MutStorePtr stores a pointer field: regs[Reg].ptr[Slot] = regs[Reg2].
	MutStorePtr
	// MutLoadData loads a data word into the data register: data = regs[Reg].data[Slot].
	MutLoadData
	// MutStoreData stores Data into a data word: regs[Reg].data[Slot] = Data.
	MutStoreData
	// MutAlloc allocates a zero-initialized object: regs[Reg] = new(π=Pi, δ=Delta).
	MutAlloc
)

// MutOp is one mutator operation.
type MutOp struct {
	Kind    MutKind
	Reg     int // target object register
	Reg2    int // second register (value for MutStorePtr, result for MutLoadPtr)
	Slot    int
	RootIdx int
	Pi      int
	Delta   int
	Data    object.Word
}

// MutDriver produces the mutator's operation stream. It is called once per
// completed operation with the operation sequence number, a read-only view
// of the register file, and the last MutLoadData result; returning ok=false
// stops the mutator. The driver is the "program" of the main processor:
// like a compiler, it may know the static shapes of the objects it
// manipulates, but every heap access it wants timed must go through the
// returned operations.
type MutDriver func(seq int64, regs []object.Addr, lastData object.Word) (MutOp, bool)

// MutatorRegisters is the size of the mutator port's register file.
const MutatorRegisters = 16

// MutatorStats reports the concurrent mutator's progress and costs.
type MutatorStats struct {
	Ops           int64 // operations completed
	Allocs        int64 // objects allocated concurrently
	StallCycles   int64 // cycles an operation was waiting beyond its own work
	MaxOpLatency  int64 // the longest single operation, in cycles — the "pause" analogue
	BarrierStalls int64 // cycles stalled waiting for a gray object to blacken
	AllocLock     int64 // cycles stalled on the free lock
	FramesSkipped int64 // black-at-birth frames the scanning cores stepped over

	// Write-barrier counters (zero under BarrierNone). The new fields carry
	// omitempty-compatible zero values, so stop-the-world responses encoded
	// before they existed still decode into an identical struct.
	PtrStores          int64 // pointer stores executed (the barrier's trigger)
	BarrierInvocations int64 // write-barrier activations (SATB/inc-update)
	BarrierCycles      int64 // cycles spent inside the write barrier's micro-states
	ShadedObjects      int64 // objects shaded (retained) by the write barrier
	FloatingObjects    int64 // shaded objects unreachable at collection end
	FloatingWords      int64 // their words — garbage the barrier floated into tospace
	MarkTermCycles     int64 // cycles between the last marking work and termination
}

type mutState int

const (
	muWait mutState = iota // inter-operation period
	muFetch
	muHdrIssue // access barrier: load the target's header
	muHdrWait
	muBarrier // target gray: re-poll until black
	muBodyIssue
	muBodyWait
	muBodyStore
	muAllocLock
	muAllocHdr
	muAllocInit
	muDone
	// Write-barrier micro-states (appended so snapshot state codes of older
	// versions stay stable).
	muOldIssue   // SATB: load the pointer slot's old value
	muOldWait    // SATB: waiting for the old value
	muShadeIssue // shade a target: header load of the retained object
	muShadeWait  // waiting for the shade's header load
)

// mutCore is the mutator port.
type mutCore struct {
	m      *Machine
	id     int // memory port / free-lock identity (== cfg.Cores)
	driver MutDriver
	period int

	regs     []object.Addr
	lastData object.Word

	st       mutState
	op       MutOp
	seq      int64
	waitLeft int
	opStart  int64

	allocBase object.Addr
	initIdx   int

	// Write-barrier state: the object currently being shaded, and the set of
	// objects the barrier has retained this cycle (ordered for snapshots;
	// the map is a derived index).
	shadeTarget object.Addr
	shaded      []object.Addr
	shadedSet   map[object.Addr]bool

	// churn is non-nil for the built-in config-driven mutator; its PRNG
	// state is part of the machine snapshot.
	churn *churnState

	stats MutatorStats
}

func newMutCore(m *Machine, driver MutDriver, period int) *mutCore {
	if period < 1 {
		period = 1
	}
	return &mutCore{
		m:      m,
		id:     m.cfg.Cores,
		driver: driver,
		period: period,
		regs:   make([]object.Addr, MutatorRegisters),
		st:     muWait,
	}
}

// idle reports whether the mutator has no operation in flight.
func (u *mutCore) idle() bool { return u.st == muWait || u.st == muDone }

// fail aborts the collection with a mutator-side error.
func (u *mutCore) fail(format string, args ...any) {
	u.m.failf("machine: concurrent mutator: "+format, args...)
	u.st = muDone
}

// step advances the mutator port by one clock cycle. draining suppresses
// fetching new operations (the collection is finishing).
func (u *mutCore) step(draining bool) {
	switch u.st {
	case muOldIssue, muOldWait, muShadeIssue, muShadeWait:
		u.stats.BarrierCycles++
	}
	switch u.st {
	case muDone:
		return

	case muWait:
		if draining {
			return
		}
		u.waitLeft--
		if u.waitLeft <= 0 {
			u.fetch()
		}

	case muFetch:
		u.fetch()

	case muHdrIssue:
		u.issueBarrierHdr()

	case muHdrWait:
		if !u.m.mem.LoadReady(u.id, mem.HeaderLoad) {
			u.stats.StallCycles++
			return
		}
		hdr := u.m.mem.TakeLoad(u.id, mem.HeaderLoad)
		if object.GrayBit(hdr) {
			// Under copy by a scanning core: wait until black. Re-polling
			// costs a fresh header load each time, as it would on the bus.
			u.stats.BarrierStalls++
			u.stats.StallCycles++
			u.st = muBarrier
			return
		}
		u.execute()

	case muBarrier:
		u.stats.BarrierStalls++
		u.stats.StallCycles++
		u.issueBarrierHdr()

	case muBodyIssue:
		u.issueBodyLoad()

	case muBodyWait:
		if !u.m.mem.LoadReady(u.id, mem.BodyLoad) {
			u.stats.StallCycles++
			return
		}
		w := u.m.mem.TakeLoad(u.id, mem.BodyLoad)
		if u.op.Kind == MutLoadPtr {
			u.regs[u.op.Reg2] = object.Addr(w)
		} else {
			u.lastData = w
		}
		u.complete()

	case muBodyStore:
		u.issueBodyStore()

	case muOldIssue:
		u.issueOldLoad()

	case muOldWait:
		if !u.m.mem.LoadReady(u.id, mem.BodyLoad) {
			u.stats.StallCycles++
			return
		}
		old := object.Addr(u.m.mem.TakeLoad(u.id, mem.BodyLoad))
		if old == object.NilPtr {
			u.issueBodyStore()
			return
		}
		u.shade(old)

	case muShadeIssue:
		u.shade(u.shadeTarget)

	case muShadeWait:
		if !u.m.mem.LoadReady(u.id, mem.HeaderLoad) {
			u.stats.StallCycles++
			return
		}
		u.m.mem.TakeLoad(u.id, mem.HeaderLoad)
		u.issueBodyStore()

	case muAllocLock:
		u.tryAllocLock()

	case muAllocHdr:
		u.issueAllocHdr()

	case muAllocInit:
		u.allocInit()
	}
}

// fetch asks the driver for the next operation and starts it.
func (u *mutCore) fetch() {
	op, ok := u.driver(u.seq, u.regs, u.lastData)
	if !ok {
		u.st = muDone
		return
	}
	u.op = op
	u.seq++
	u.opStart = u.m.cycle
	switch op.Kind {
	case MutNop:
		u.complete()
	case MutLoadRoot:
		if err := u.checkReg(op.Reg); err != nil || !u.checkRoot(op.RootIdx) {
			return
		}
		u.regs[op.Reg] = u.m.heap.Root(op.RootIdx)
		u.complete()
	case MutStoreRoot:
		if err := u.checkReg(op.Reg); err != nil || !u.checkRoot(op.RootIdx) {
			return
		}
		u.m.heap.SetRoot(op.RootIdx, u.regs[op.Reg])
		u.complete()
	case MutLoadPtr, MutStorePtr, MutLoadData, MutStoreData:
		if err := u.checkReg(op.Reg); err != nil {
			return
		}
		if op.Kind == MutLoadPtr || op.Kind == MutStorePtr {
			if err := u.checkReg(op.Reg2); err != nil {
				return
			}
		}
		if u.regs[op.Reg] == object.NilPtr {
			u.fail("op %d dereferences nil register %d", u.seq-1, op.Reg)
			return
		}
		u.issueBarrierHdr()
	case MutAlloc:
		if err := u.checkReg(op.Reg); err != nil {
			return
		}
		if op.Pi < 0 || op.Pi > object.MaxPi || op.Delta < 0 || op.Delta > object.MaxDelta {
			u.fail("op %d allocates invalid shape π=%d δ=%d", u.seq-1, op.Pi, op.Delta)
			return
		}
		u.tryAllocLock()
	default:
		u.fail("op %d has unknown kind %d", u.seq-1, op.Kind)
	}
}

func (u *mutCore) checkReg(r int) error {
	if r < 0 || r >= len(u.regs) {
		u.fail("register %d out of range", r)
		return fmt.Errorf("bad register")
	}
	return nil
}

func (u *mutCore) checkRoot(i int) bool {
	if i < 0 || i >= u.m.heap.NumRoots() {
		u.fail("root %d out of range", i)
		return false
	}
	return true
}

// issueBarrierHdr starts (or re-polls) the access barrier's header load.
func (u *mutCore) issueBarrierHdr() {
	if !u.m.mem.IssueLoad(u.id, mem.HeaderLoad, u.regs[u.op.Reg]) {
		u.stats.StallCycles++
		u.st = muHdrIssue
		return
	}
	u.st = muHdrWait
}

// execute runs the field access once the barrier has admitted it. Slot
// bounds are validated against the (now stable) header implied shape via
// the heap, which is exact because the object is black.
func (u *mutCore) execute() {
	base := u.regs[u.op.Reg]
	hd := u.m.heap.Header(base)
	switch u.op.Kind {
	case MutLoadPtr, MutStorePtr:
		if u.op.Slot < 0 || u.op.Slot >= hd.Pi {
			u.fail("op %d: pointer slot %d out of range (π=%d)", u.seq-1, u.op.Slot, hd.Pi)
			return
		}
	case MutLoadData, MutStoreData:
		if u.op.Slot < 0 || u.op.Slot >= hd.Delta {
			u.fail("op %d: data slot %d out of range (δ=%d)", u.seq-1, u.op.Slot, hd.Delta)
			return
		}
	}
	switch u.op.Kind {
	case MutLoadPtr, MutLoadData:
		u.issueBodyLoad()
	case MutStorePtr:
		u.startBarrier()
	case MutStoreData:
		u.issueBodyStore()
	}
}

// startBarrier runs the configured write barrier in front of a pointer
// store, then performs the store itself.
func (u *mutCore) startBarrier() {
	switch u.m.cfg.BarrierMode {
	case BarrierSATB:
		// Deletion barrier: the old value of the slot must be read before it
		// is overwritten — one timed body load, plus a shade of the old
		// target when it is non-nil.
		u.stats.BarrierInvocations++
		u.issueOldLoad()
	case BarrierIncUpdate:
		// Insertion barrier: the new target is shaded. Nil stores are free.
		u.stats.BarrierInvocations++
		if tgt := u.regs[u.op.Reg2]; tgt != object.NilPtr {
			u.shade(tgt)
			return
		}
		u.issueBodyStore()
	default:
		u.issueBodyStore()
	}
}

// issueOldLoad starts the SATB barrier's load of the slot's current value.
func (u *mutCore) issueOldLoad() {
	if !u.m.mem.IssueLoad(u.id, mem.BodyLoad, u.bodyAddr()) {
		u.stats.StallCycles++
		u.st = muOldIssue
		return
	}
	u.st = muOldWait
}

// shade retains target for the current marking cycle: one header load
// models the mark/retain touch (the object is already in tospace — the
// mutator can only hold tospace references — so no copy is required, and
// the FIFO's strict publish order must not be disturbed). The shaded set
// feeds the floating-garbage accounting at the end of the collection.
func (u *mutCore) shade(target object.Addr) {
	u.shadeTarget = target
	if !u.m.mem.IssueLoad(u.id, mem.HeaderLoad, target) {
		u.stats.StallCycles++
		u.st = muShadeIssue
		return
	}
	if !u.shadedSet[target] {
		if u.shadedSet == nil {
			u.shadedSet = make(map[object.Addr]bool)
		}
		u.shadedSet[target] = true
		u.shaded = append(u.shaded, target)
		u.stats.ShadedObjects++
	}
	u.st = muShadeWait
}

func (u *mutCore) bodyAddr() object.Addr {
	base := u.regs[u.op.Reg]
	if u.op.Kind == MutLoadPtr || u.op.Kind == MutStorePtr {
		return object.PtrSlot(base, u.op.Slot)
	}
	hd := u.m.heap.Header(base)
	return object.DataSlot(base, hd.Pi, u.op.Slot)
}

func (u *mutCore) issueBodyLoad() {
	if !u.m.mem.IssueLoad(u.id, mem.BodyLoad, u.bodyAddr()) {
		u.stats.StallCycles++
		u.st = muBodyIssue
		return
	}
	u.st = muBodyWait
}

func (u *mutCore) issueBodyStore() {
	var w object.Word
	if u.op.Kind == MutStorePtr {
		w = object.Word(u.regs[u.op.Reg2])
	} else {
		w = u.op.Data
	}
	if !u.m.mem.IssueStore(u.id, mem.BodyStore, u.bodyAddr(), w) {
		u.stats.StallCycles++
		u.st = muBodyStore
		return
	}
	if u.op.Kind == MutStorePtr {
		u.stats.PtrStores++
	}
	u.complete()
}

// tryAllocLock contends for the free pointer like an evacuating core.
func (u *mutCore) tryAllocLock() {
	sb := u.m.sb
	if !sb.TryAcquireFree(u.id) {
		u.stats.AllocLock++
		u.stats.StallCycles++
		u.st = muAllocLock
		return
	}
	u.allocBase = sb.Free()
	size := object.Addr(object.Size(u.op.Pi, u.op.Delta))
	if u.allocBase+size > u.m.toLimit {
		sb.ReleaseFree(u.id)
		u.fail("allocation outpaced the collector: free %d + %d exceeds tospace limit %d",
			u.allocBase, size, u.m.toLimit)
		return
	}
	u.issueAllocHdr()
}

// issueAllocHdr publishes the black-at-birth header and the free increment,
// then releases the lock (one cycle held in the uncontended case, like the
// evacuation path).
func (u *mutCore) issueAllocHdr() {
	hdr := object.Header{Pi: u.op.Pi, Delta: u.op.Delta}.Encode()
	if !u.m.mem.IssueStore(u.id, mem.HeaderStore, u.allocBase, hdr) {
		u.stats.StallCycles++
		u.st = muAllocHdr
		return
	}
	u.m.hc.Update(u.allocBase, hdr)
	if u.m.fifo.Push(u.allocBase, hdr) {
		u.m.fifoDrops++
	}
	sb := u.m.sb
	sb.SetFree(u.id, u.allocBase+object.Addr(object.Size(u.op.Pi, u.op.Delta)))
	sb.ReleaseFree(u.id)
	u.initIdx = 0
	u.st = muAllocInit
	u.allocInit()
}

// allocInit zero-initializes the new object's frame, one store per cycle:
// index 0 covers header word 1, indices 1..π+δ cover the body, so the frame
// is fully defined before the mutator uses it.
func (u *mutCore) allocInit() {
	body := u.op.Pi + u.op.Delta
	if u.initIdx <= body {
		if !u.m.mem.IssueStore(u.id, mem.BodyStore, u.allocBase+1+object.Addr(u.initIdx), 0) {
			u.stats.StallCycles++
			return // retry this index next cycle
		}
		u.initIdx++
		if u.initIdx <= body {
			return // one word per cycle
		}
	}
	u.regs[u.op.Reg] = u.allocBase
	u.stats.Allocs++
	u.complete()
}

// complete finishes the current operation and returns to the inter-op wait.
func (u *mutCore) complete() {
	u.stats.Ops++
	if lat := u.m.cycle - u.opStart; lat > u.stats.MaxOpLatency {
		u.stats.MaxOpLatency = lat
	}
	u.waitLeft = u.period
	u.st = muWait
}

// CollectConcurrent runs one collection cycle with the mutator executing
// concurrently through the machine's mutator port: driver supplies the
// operation stream, period is the number of idle cycles between operations
// (the mutator's "speed" relative to the 25 MHz core clock). The roots are
// processed stop-the-world at the start, exactly as in Collect; from the
// moment the scan loop starts, the mutator runs under the wait-until-black
// access barrier. The returned MutatorStats describe the mutator's side.
func (m *Machine) CollectConcurrent(driver MutDriver, period int) (Stats, MutatorStats, error) {
	if driver == nil {
		return Stats{}, MutatorStats{}, fmt.Errorf("machine: nil mutator driver")
	}
	m.mut = newMutCore(m, driver, period)
	defer func() { m.mut = nil }()
	st, err := m.Collect()
	if err != nil {
		return Stats{}, MutatorStats{}, err
	}
	ms := m.mut.stats
	if st.Mutator != nil {
		ms = *st.Mutator // includes the end-of-cycle floating-garbage walk
	}
	return st, ms, nil
}
