package machine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hwgc/internal/gcalgo"
	"hwgc/internal/object"
	"hwgc/internal/workload"
)

// shadowModel mirrors, in plain Go, every mutation the concurrent driver
// performs, so the heap after a concurrent collection can be checked
// against an independently maintained ground truth.
type shadowModel struct {
	nodes []shadowNode
	roots []int
	regs  [MutatorRegisters]int // -1 = nil
}

type shadowNode struct {
	pi, delta int
	ptrs      []int
	data      []object.Word
}

func newShadow(plan *workload.Plan) *shadowModel {
	s := &shadowModel{}
	for i := range plan.Objs {
		o := &plan.Objs[i]
		s.nodes = append(s.nodes, shadowNode{
			pi:    o.Pi,
			delta: o.Delta,
			ptrs:  append([]int(nil), o.Ptrs...),
			data:  append([]object.Word(nil), o.Data...),
		})
	}
	s.roots = append(s.roots, plan.Roots...)
	for i := range s.regs {
		s.regs[i] = -1
	}
	return s
}

// expectedGraph builds the canonical logical graph of the shadow, in the
// same BFS order gcalgo.Snapshot uses, so the two are directly comparable.
func (s *shadowModel) expectedGraph() *gcalgo.Graph {
	g := &gcalgo.Graph{}
	index := map[int]int{}
	var queue []int
	visit := func(id int) int {
		if id < 0 {
			return -1
		}
		if i, ok := index[id]; ok {
			return i
		}
		i := len(index)
		index[id] = i
		queue = append(queue, id)
		return i
	}
	for _, r := range s.roots {
		g.Roots = append(g.Roots, visit(r))
	}
	for qi := 0; qi < len(queue); qi++ {
		n := &s.nodes[queue[qi]]
		node := gcalgo.Node{Pi: n.pi, Delta: n.delta}
		for _, c := range n.ptrs {
			node.Ptrs = append(node.Ptrs, visit(c))
		}
		node.Data = append(node.Data, n.data...)
		g.Nodes = append(g.Nodes, node)
	}
	return g
}

// shadowDriver generates random valid mutator operations, applying each to
// the shadow when it is issued. It also cross-checks every MutLoadData
// result delivered by the machine against the shadow.
type shadowDriver struct {
	s        *shadowModel
	rng      *rand.Rand
	maxOps   int64
	maxAlloc int64
	allocs   int64

	expectData  object.Word
	checkData   bool
	dataFailure bool

	lastRoot int
	lastReg  int
}

func (d *shadowDriver) next(seq int64, regs []object.Addr, lastData object.Word) (MutOp, bool) {
	if d.checkData {
		d.checkData = false
		if lastData != d.expectData {
			d.dataFailure = true
			return MutOp{}, false
		}
	}
	if seq >= d.maxOps {
		return MutOp{}, false
	}
	s := d.s
	for try := 0; try < 32; try++ {
		switch d.rng.Intn(8) {
		case 0: // load a root
			return MutOp{Kind: MutLoadRoot, Reg: d.loadRootInto(), RootIdx: d.lastRoot}, true
		case 1: // store a register into a root (possibly nil)
			r := d.rng.Intn(MutatorRegisters)
			ri := d.rng.Intn(len(s.roots))
			s.roots[ri] = s.regs[r]
			return MutOp{Kind: MutStoreRoot, Reg: r, RootIdx: ri}, true
		case 2: // follow a pointer
			r, ok := d.pickReg(func(n *shadowNode) bool { return n.pi > 0 })
			if !ok {
				continue
			}
			slot := d.rng.Intn(s.nodes[s.regs[r]].pi)
			r2 := d.rng.Intn(MutatorRegisters)
			s.regs[r2] = s.nodes[s.regs[r]].ptrs[slot]
			return MutOp{Kind: MutLoadPtr, Reg: r, Reg2: r2, Slot: slot}, true
		case 3: // rewire a pointer
			r, ok := d.pickReg(func(n *shadowNode) bool { return n.pi > 0 })
			if !ok {
				continue
			}
			slot := d.rng.Intn(s.nodes[s.regs[r]].pi)
			r2 := d.rng.Intn(MutatorRegisters)
			s.nodes[s.regs[r]].ptrs[slot] = s.regs[r2]
			return MutOp{Kind: MutStorePtr, Reg: r, Reg2: r2, Slot: slot}, true
		case 4: // write a data word
			r, ok := d.pickReg(func(n *shadowNode) bool { return n.delta > 0 })
			if !ok {
				continue
			}
			slot := d.rng.Intn(s.nodes[s.regs[r]].delta)
			w := object.Word(d.rng.Uint64())
			s.nodes[s.regs[r]].data[slot] = w
			return MutOp{Kind: MutStoreData, Reg: r, Slot: slot, Data: w}, true
		case 5: // read a data word (verified on the next call)
			r, ok := d.pickReg(func(n *shadowNode) bool { return n.delta > 0 })
			if !ok {
				continue
			}
			slot := d.rng.Intn(s.nodes[s.regs[r]].delta)
			d.expectData = s.nodes[s.regs[r]].data[slot]
			d.checkData = true
			return MutOp{Kind: MutLoadData, Reg: r, Slot: slot}, true
		case 6: // allocate
			if d.allocs >= d.maxAlloc {
				continue
			}
			d.allocs++
			pi := d.rng.Intn(3)
			delta := d.rng.Intn(4)
			r := d.rng.Intn(MutatorRegisters)
			s.nodes = append(s.nodes, shadowNode{
				pi: pi, delta: delta,
				ptrs: nilPtrs(pi), data: make([]object.Word, delta),
			})
			s.regs[r] = len(s.nodes) - 1
			return MutOp{Kind: MutAlloc, Reg: r, Pi: pi, Delta: delta}, true
		default:
			return MutOp{Kind: MutNop}, true
		}
	}
	return MutOp{Kind: MutNop}, true
}

func nilPtrs(pi int) []int {
	p := make([]int, pi)
	for i := range p {
		p[i] = -1
	}
	return p
}

// lastRoot remembers the root index chosen by loadRootInto.
func (d *shadowDriver) loadRootInto() int {
	d.lastRoot = d.rng.Intn(len(d.s.roots))
	d.lastReg = d.rng.Intn(MutatorRegisters)
	d.s.regs[d.lastReg] = d.s.roots[d.lastRoot]
	return d.lastReg
}

// pickReg returns a register holding a non-nil node satisfying pred.
func (d *shadowDriver) pickReg(pred func(*shadowNode) bool) (int, bool) {
	start := d.rng.Intn(MutatorRegisters)
	for k := 0; k < MutatorRegisters; k++ {
		r := (start + k) % MutatorRegisters
		if id := d.s.regs[r]; id >= 0 && pred(&d.s.nodes[id]) {
			return r, true
		}
	}
	return 0, false
}

// TestConcurrentCollectShadow is the concurrent-mode oracle test: run a
// randomized mutator concurrently with the collection and verify the final
// heap against the shadow model (graph shape, wiring and data), for several
// benchmarks, core counts and mutator speeds.
func TestConcurrentCollectShadow(t *testing.T) {
	for _, tc := range []struct {
		bench  string
		cores  int
		period int
		seed   int64
	}{
		{"jlisp", 4, 1, 1},
		{"jlisp", 1, 1, 2},
		{"jlisp", 16, 4, 3},
		{"javac", 8, 2, 4},
		{"jflex", 16, 1, 5},
		{"search", 2, 1, 6},
	} {
		tc := tc
		t.Run(tc.bench, func(t *testing.T) {
			spec, err := workload.Get(tc.bench)
			if err != nil {
				t.Fatal(err)
			}
			plan := spec.Plan(1, tc.seed)
			h, err := plan.BuildHeap(3.0) // headroom for concurrent allocation
			if err != nil {
				t.Fatal(err)
			}
			shadow := newShadow(plan)
			driver := &shadowDriver{
				s:        shadow,
				rng:      rand.New(rand.NewSource(tc.seed * 977)),
				maxOps:   4000,
				maxAlloc: 300,
			}
			m, err := New(h, Config{Cores: tc.cores})
			if err != nil {
				t.Fatal(err)
			}
			st, ms, err := m.CollectConcurrent(driver.next, tc.period)
			if err != nil {
				t.Fatal(err)
			}
			if driver.dataFailure {
				t.Fatal("mutator read a data word that does not match the shadow")
			}
			if ms.Ops == 0 {
				t.Fatal("mutator never ran")
			}
			if err := h.CheckIntegrity(); err != nil {
				t.Fatal(err)
			}
			got, err := gcalgo.Snapshot(h)
			if err != nil {
				t.Fatal(err)
			}
			if err := shadow.expectedGraph().Equal(got); err != nil {
				t.Fatalf("heap diverged from shadow after %d mutator ops (%d allocs, %d GC cycles): %v",
					ms.Ops, ms.Allocs, st.Cycles, err)
			}
			if ms.Allocs > 0 && ms.FramesSkipped == 0 {
				t.Errorf("mutator allocated %d frames but the scanners skipped none", ms.Allocs)
			}
		})
	}
}

// TestConcurrentMutatorStallsBounded compares the stop-the-world pause with
// the concurrent mutator's worst single-operation latency — the property
// the authors' real-time line of work is after ("GC pauses never exceed a
// couple of hundred clock cycles").
func TestConcurrentMutatorStallsBounded(t *testing.T) {
	spec, _ := workload.Get("javac")
	plan := spec.Plan(1, 9)

	// Stop-the-world: the whole collection is the pause.
	h1, err := plan.BuildHeap(3.0)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := New(h1, Config{Cores: 8})
	stw, err := m1.Collect()
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent: the worst mutator operation latency is the pause.
	h2, err := plan.BuildHeap(3.0)
	if err != nil {
		t.Fatal(err)
	}
	shadow := newShadow(plan)
	driver := &shadowDriver{s: shadow, rng: rand.New(rand.NewSource(7)), maxOps: 1 << 40, maxAlloc: 200}
	m2, _ := New(h2, Config{Cores: 8})
	_, ms, err := m2.CollectConcurrent(driver.next, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MaxOpLatency <= 0 {
		t.Fatal("no latency recorded")
	}
	if ms.MaxOpLatency*10 > stw.Cycles {
		t.Errorf("worst concurrent mutator operation (%d cycles) is not far below the STW pause (%d cycles)",
			ms.MaxOpLatency, stw.Cycles)
	}
	t.Logf("STW pause %d cycles; worst concurrent op %d cycles; barrier stalls %d",
		stw.Cycles, ms.MaxOpLatency, ms.BarrierStalls)
}

// TestConcurrentAllocationOverflowDetected: a mutator that allocates faster
// than the collector frees must produce a clean error, not corruption.
func TestConcurrentAllocationOverflowDetected(t *testing.T) {
	spec, _ := workload.Get("jlisp")
	plan := spec.Plan(1, 3)
	h, err := plan.BuildHeap(1.1) // almost no headroom
	if err != nil {
		t.Fatal(err)
	}
	driver := func(seq int64, regs []object.Addr, _ object.Word) (MutOp, bool) {
		return MutOp{Kind: MutAlloc, Reg: 0, Pi: 0, Delta: 200}, true
	}
	m, _ := New(h, Config{Cores: 2})
	if _, _, err := m.CollectConcurrent(driver, 1); err == nil {
		t.Fatal("allocation storm not detected")
	}
}

// TestConcurrentDriverErrorsSurface: invalid driver operations abort the
// collection with descriptive errors.
func TestConcurrentDriverErrors(t *testing.T) {
	cases := []MutOp{
		{Kind: MutLoadPtr, Reg: 0, Reg2: 1, Slot: 0}, // nil dereference
		{Kind: MutLoadRoot, Reg: -1, RootIdx: 0},     // bad register
		{Kind: MutLoadRoot, Reg: 0, RootIdx: 999},    // bad root
		{Kind: MutAlloc, Reg: 0, Pi: -1},             // bad shape
		{Kind: MutKind(99)},                          // unknown op
	}
	for i, bad := range cases {
		spec, _ := workload.Get("jlisp")
		h, err := spec.Plan(1, 3).BuildHeap(2.0)
		if err != nil {
			t.Fatal(err)
		}
		driver := func(seq int64, regs []object.Addr, _ object.Word) (MutOp, bool) {
			return bad, true
		}
		m, _ := New(h, Config{Cores: 2})
		if _, _, err := m.CollectConcurrent(driver, 1); err == nil {
			t.Errorf("case %d: invalid op %+v not rejected", i, bad)
		}
	}
	// Nil driver.
	spec, _ := workload.Get("jlisp")
	h, _ := spec.Plan(1, 3).BuildHeap(2.0)
	m, _ := New(h, Config{Cores: 2})
	if _, _, err := m.CollectConcurrent(nil, 1); err == nil {
		t.Error("nil driver accepted")
	}
}

// TestConcurrentChurnDriver runs the production churn driver (the one the
// experiment harness uses) and verifies heap integrity afterwards.
func TestConcurrentChurnDriver(t *testing.T) {
	for _, bench := range []string{"jlisp", "javac"} {
		spec, _ := workload.Get(bench)
		h, err := spec.Plan(1, 11).BuildHeap(3.0)
		if err != nil {
			t.Fatal(err)
		}
		driver := NewConcurrentChurn(h, 11, 1<<40, 150)
		m, _ := New(h, Config{Cores: 8})
		st, ms, err := m.CollectConcurrent(driver, 1)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if ms.Ops == 0 || ms.Allocs == 0 {
			t.Fatalf("%s: driver did nothing: %+v", bench, ms)
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if _, err := gcalgo.Snapshot(h); err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if st.LiveObjects == 0 {
			t.Fatalf("%s: nothing survived", bench)
		}
	}
}

// TestConcurrentDeterminism: same driver seed, same everything.
func TestConcurrentDeterminism(t *testing.T) {
	run := func() (Stats, MutatorStats) {
		spec, _ := workload.Get("jlisp")
		h, err := spec.Plan(1, 13).BuildHeap(3.0)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := New(h, Config{Cores: 4})
		st, ms, err := m.CollectConcurrent(NewConcurrentChurn(h, 13, 2000, 100), 2)
		if err != nil {
			t.Fatal(err)
		}
		return st, ms
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1.Cycles != s2.Cycles || m1 != m2 {
		t.Fatalf("concurrent mode not deterministic: %d/%+v vs %d/%+v", s1.Cycles, m1, s2.Cycles, m2)
	}
}

// TestConcurrentShadowQuick drives random graphs through concurrent
// collections at random core counts and mutator speeds, verifying against
// the shadow model every time.
func TestConcurrentShadowQuick(t *testing.T) {
	f := func(seed int64, coresRaw, periodRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		plan := &workload.Plan{}
		n := 2 + rng.Intn(80)
		entry := plan.RandomGraph(rng, n, 3, 4)
		plan.AddRoot(entry)
		plan.AddRoot(rng.Intn(n))
		plan.FillData(rng)
		h, err := plan.BuildHeap(3.5)
		if err != nil {
			return false
		}
		shadow := newShadow(plan)
		driver := &shadowDriver{
			s:        shadow,
			rng:      rand.New(rand.NewSource(seed * 131)),
			maxOps:   600,
			maxAlloc: 40,
		}
		m, err := New(h, Config{Cores: 1 + int(coresRaw)%16})
		if err != nil {
			return false
		}
		_, _, err = m.CollectConcurrent(driver.next, 1+int(periodRaw)%4)
		if err != nil {
			t.Logf("collect (seed %d): %v", seed, err)
			return false
		}
		if driver.dataFailure {
			t.Logf("data mismatch (seed %d)", seed)
			return false
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Logf("integrity (seed %d): %v", seed, err)
			return false
		}
		got, err := gcalgo.Snapshot(h)
		if err != nil {
			t.Logf("snapshot (seed %d): %v", seed, err)
			return false
		}
		if err := shadow.expectedGraph().Equal(got); err != nil {
			t.Logf("shadow divergence (seed %d): %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
