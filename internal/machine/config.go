// Package machine implements the multi-core garbage collection coprocessor
// of the paper (Sections IV and V) as a deterministic, cycle-stepped
// simulator.
//
// The machine consists of N microprogrammed cores, a synchronization block
// (internal/syncblock), a memory access scheduler (internal/mem) and an
// on-chip header FIFO. Each simulated clock cycle the machine steps every
// core once, in ascending core order (which realizes the SB's static
// prioritization scheme), and then ticks the memory system. Each core is an
// explicit state machine executing the fine-grained parallel variant of
// Cheney's algorithm from Section IV; every cycle in which a core cannot
// make progress is attributed to one of the stall causes reported in the
// paper's Table II.
package machine

import (
	"fmt"

	"hwgc/internal/mem"
)

// Defaults for zero-valued Config fields. Latency and bandwidth defaults
// mirror the prototype: the DDR-SDRAM runs at at least four times the 25 MHz
// core clock, and the access latency is "in the range of a few clock
// cycles".
const (
	DefaultCores          = 1
	DefaultFIFOCapacity   = 32 * 1024 // the prototype's header FIFO holds up to 32k entries
	DefaultStartupCycles  = 64        // stop main processor, flush its caches, read registers
	DefaultShutdownCycles = 32        // drain store buffers, restart main processor
	MaxCores              = 64
	MaxNUMADomains        = 64

	// DefaultMutatorPeriod is the inter-operation idle period of the built-in
	// churn mutator when MutatorOps is set but MutatorPeriod is not.
	DefaultMutatorPeriod = 4
)

// BarrierMode selects the write barrier the concurrent mutator's pointer
// stores go through. The wait-until-black *access* barrier (the paper's
// hardware read barrier analogue) is always active in concurrent mode;
// BarrierMode adds the *write* barrier of a concurrent-marking collector on
// top, with cycle-accurate costs through the memory scheduler.
type BarrierMode string

const (
	// BarrierNone performs the pointer store directly (the default; the
	// wait-until-black access barrier alone keeps the heap consistent).
	BarrierNone BarrierMode = ""
	// BarrierSATB is the Yuasa-style snapshot-at-the-beginning deletion
	// barrier: before a pointer slot is overwritten its old value is loaded
	// and, if non-nil, the old target is shaded (a header touch), so no
	// object reachable at the start of marking is lost.
	BarrierSATB BarrierMode = "satb"
	// BarrierIncUpdate is the Dijkstra-style incremental-update insertion
	// barrier: the *new* target of every pointer store is shaded.
	BarrierIncUpdate BarrierMode = "incupdate"
)

// barrierModeValid reports whether b names a known write barrier.
func barrierModeValid(b BarrierMode) bool {
	switch b {
	case BarrierNone, BarrierSATB, BarrierIncUpdate:
		return true
	}
	return false
}

// NUMAPlacement selects how the collector places the tospace relative to
// the NUMA domains. It only takes effect when NUMADomains is positive.
type NUMAPlacement string

const (
	// PlacementNaive leaves the tospace interleaved over the domains like
	// the rest of the address space (the default; "naive" normalizes to "").
	PlacementNaive NUMAPlacement = ""
	// PlacementLocal models locality-aware placement: every core evacuates
	// into a region of its own domain, so tospace traffic never pays the
	// remote penalty.
	PlacementLocal NUMAPlacement = "local"
)

// numaPlacementValid reports whether p names a known placement policy.
func numaPlacementValid(p NUMAPlacement) bool {
	return p == PlacementNaive || p == PlacementLocal
}

// Config parameterizes a coprocessor instance.
type Config struct {
	// Cores is the number of GC cores (the prototype supports up to 16; we
	// allow up to MaxCores for extension experiments). Default 1 — which,
	// because synchronization is free when uncontended, performs like the
	// original sequential implementation of Cheney's algorithm (Section
	// VI-B).
	Cores int

	// MemLatency is the base memory access latency in cycles (default 3).
	MemLatency int
	// ExtraMemLatency is added to every access; the paper's Figure 6 adds
	// an artificial 20 cycles.
	ExtraMemLatency int
	// MemBandwidth is the number of memory requests accepted per core clock
	// cycle (default 6).
	MemBandwidth int
	// MemStoreQueueDepth is the write-behind depth of each store port
	// (default 2).
	MemStoreQueueDepth int
	// MemBanks, when positive, enables the DRAM bank model: requests to a
	// busy bank are deferred even when bandwidth is available. Zero keeps
	// the calibrated bandwidth/latency model.
	MemBanks int
	// MemBankBusy is the per-bank busy time per request (default 2).
	MemBankBusy int

	// FIFOCapacity is the number of entries in the on-chip header FIFO
	// (default 32768, the prototype's maximum). A capacity of 0 selects the
	// default; use 1 to effectively disable the FIFO in ablations
	// (DisableFIFO turns it off entirely).
	FIFOCapacity int
	// DisableFIFO turns the header FIFO off; every gray tospace header is
	// then read from memory inside the scan critical section.
	DisableFIFO bool

	// OptUnlockedMarkRead enables the optimization proposed in Section VI-B
	// for javac: read the mark bit with an unlocked header load first and
	// attempt a locking read only if the mark bit is cleared.
	OptUnlockedMarkRead bool

	// HeaderCacheLines enables the on-chip header cache proposed in the
	// paper's conclusions (Section VII) with the given number of lines
	// (rounded up to a power of two). Zero disables the cache.
	HeaderCacheLines int

	// StrideWords enables sub-object work distribution, the other Section
	// VII proposal: the scan critical section dispatches at most this many
	// body words of the object at scan instead of the whole object, so
	// several cores can share one large object. Zero keeps the paper's
	// object-level granularity.
	StrideWords int

	// StartupCycles and ShutdownCycles model Core 1's coordination with the
	// main processor (Section V-E): stopping it and flushing its caches at
	// the start, draining the GC store buffers and restarting it at the
	// end. Negative values mean zero.
	StartupCycles  int64
	ShutdownCycles int64

	// MaxCycles aborts the simulation with an error if a collection cycle
	// exceeds this many clock cycles (a livelock guard for tests). Zero
	// selects a generous bound derived from the heap size.
	MaxCycles int64

	// BarrierMode selects the concurrent mutator's write barrier ("",
	// "satb" or "incupdate"; "none" normalizes to ""). It only takes effect
	// when a mutator is attached — via MutatorOps or CollectConcurrent.
	//
	// The new fields carry `omitempty` so the canonical JSON encoding of
	// every pre-existing configuration — and with it every content-derived
	// cache key — is unchanged.
	BarrierMode BarrierMode `json:",omitempty"`

	// MutatorOps, when positive, attaches the built-in deterministic churn
	// mutator to the collection: Collect then runs concurrently with a
	// synthetic application issuing at most MutatorOps operations. This is
	// the config-driven form of CollectConcurrent, reachable from the
	// canonical request codec so the whole serving stack (cache, jobs,
	// sweeps, replay, snapshots) can run concurrent scenarios.
	MutatorOps int64 `json:",omitempty"`
	// MutatorAllocs caps the churn mutator's concurrent allocations
	// (default 500 when MutatorOps is set).
	MutatorAllocs int64 `json:",omitempty"`
	// MutatorSeed seeds the churn mutator's operation stream (default 1).
	MutatorSeed int64 `json:",omitempty"`
	// MutatorPeriod is the idle period between mutator operations, i.e. the
	// mutator's speed relative to the GC clock (default 4).
	MutatorPeriod int `json:",omitempty"`

	// NUMADomains, when positive, enables the NUMA memory model: the address
	// space is interleaved over this many domains at NUMAInterleave-word
	// granularity, each core is affine to domain (core % NUMADomains), and a
	// cross-domain access pays NUMARemotePenalty extra cycles. Like the
	// mutator knobs, all memory-hierarchy fields carry omitempty and are
	// zeroed when their model is disabled, so pre-existing flat
	// configurations canonicalize — and cache — identically.
	NUMADomains int `json:",omitempty"`
	// NUMARemotePenalty is the extra latency of a cross-domain access
	// (default 8).
	NUMARemotePenalty int `json:",omitempty"`
	// NUMAInterleave is the domain interleaving granularity in words
	// (default 64).
	NUMAInterleave int `json:",omitempty"`
	// NUMABandwidth, when positive, caps the requests each domain accepts
	// per cycle on top of the global MemBandwidth. Zero leaves domains
	// uncapped.
	NUMABandwidth int `json:",omitempty"`
	// NUMAPlacement selects naive ("", interleaved) or locality-aware
	// ("local") tospace placement; "naive" normalizes to "".
	NUMAPlacement NUMAPlacement `json:",omitempty"`

	// L1Sets, when positive, enables the private-L1/shared-L2 cache model in
	// front of the memory scheduler: L1Sets×L1Ways lines per core, an
	// L2Sets×L2Ways shared L2 (default 4×L1Sets sets), MSHRs miss-status
	// registers (default 8) and CacheLineWords words per line (default 4). A
	// hit completes in 1–2 cycles without consuming memory bandwidth; a miss
	// allocates an MSHR and goes to DRAM; MSHR exhaustion stalls the issuing
	// port. The model is tag-only and changes timing, never values.
	L1Sets int `json:",omitempty"`
	// L1Ways is the L1 associativity (default 2).
	L1Ways int `json:",omitempty"`
	// L2Sets is the number of L2 sets (default 4×L1Sets).
	L2Sets int `json:",omitempty"`
	// L2Ways is the L2 associativity (default 4).
	L2Ways int `json:",omitempty"`
	// MSHRs is the number of outstanding cache misses (default 8).
	MSHRs int `json:",omitempty"`
	// CacheLineWords is the cache line size in words (default 4).
	CacheLineWords int `json:",omitempty"`
}

// WithDefaults returns c with zero values replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.Cores == 0 {
		c.Cores = DefaultCores
	}
	if c.FIFOCapacity == 0 {
		c.FIFOCapacity = DefaultFIFOCapacity
	}
	if c.StartupCycles == 0 {
		c.StartupCycles = DefaultStartupCycles
	}
	if c.StartupCycles < 0 {
		c.StartupCycles = 0
	}
	if c.ShutdownCycles == 0 {
		c.ShutdownCycles = DefaultShutdownCycles
	}
	if c.ShutdownCycles < 0 {
		c.ShutdownCycles = 0
	}
	if c.BarrierMode == "none" {
		c.BarrierMode = BarrierNone
	}
	if c.MutatorOps > 0 {
		if c.MutatorAllocs == 0 {
			c.MutatorAllocs = 500
		}
		if c.MutatorSeed == 0 {
			c.MutatorSeed = 1
		}
		if c.MutatorPeriod == 0 {
			c.MutatorPeriod = DefaultMutatorPeriod
		}
	} else {
		// Without a built-in mutator the sub-parameters are inert; zero them
		// so configurations differing only in dead knobs canonicalize (and
		// cache) identically. BarrierMode is kept: external CollectConcurrent
		// drivers use it without setting MutatorOps.
		c.MutatorOps = 0
		c.MutatorAllocs = 0
		c.MutatorSeed = 0
		c.MutatorPeriod = 0
	}
	if c.NUMAPlacement == "naive" {
		c.NUMAPlacement = PlacementNaive
	}
	if c.NUMADomains > 0 {
		if c.NUMARemotePenalty == 0 {
			c.NUMARemotePenalty = mem.DefaultRemotePenalty
		}
		if c.NUMAInterleave == 0 {
			c.NUMAInterleave = mem.DefaultDomainInterleave
		}
	} else {
		// Dead knobs of a disabled model are zeroed, like the mutator's.
		c.NUMADomains = 0
		c.NUMARemotePenalty = 0
		c.NUMAInterleave = 0
		c.NUMABandwidth = 0
		c.NUMAPlacement = PlacementNaive
	}
	if c.L1Sets > 0 {
		if c.L1Ways == 0 {
			c.L1Ways = mem.DefaultL1Ways
		}
		if c.L2Sets == 0 {
			c.L2Sets = 4 * c.L1Sets
		}
		if c.L2Ways == 0 {
			c.L2Ways = mem.DefaultL2Ways
		}
		if c.MSHRs == 0 {
			c.MSHRs = mem.DefaultMSHRs
		}
		if c.CacheLineWords == 0 {
			c.CacheLineWords = mem.DefaultLineWords
		}
	} else {
		c.L1Sets = 0
		c.L1Ways = 0
		c.L2Sets = 0
		c.L2Ways = 0
		c.MSHRs = 0
		c.CacheLineWords = 0
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores < 1 || c.Cores > MaxCores {
		return fmt.Errorf("machine: Cores must be in [1,%d], got %d", MaxCores, c.Cores)
	}
	if c.MemLatency < 0 || c.ExtraMemLatency < 0 || c.MemBandwidth < 0 {
		return fmt.Errorf("machine: negative memory parameter")
	}
	if c.FIFOCapacity < 0 {
		return fmt.Errorf("machine: negative FIFO capacity")
	}
	if c.HeaderCacheLines < 0 {
		return fmt.Errorf("machine: negative header cache size")
	}
	if c.StrideWords < 0 {
		return fmt.Errorf("machine: negative stride size")
	}
	if !barrierModeValid(c.BarrierMode) {
		return fmt.Errorf("machine: unknown barrier mode %q (have \"\", %q, %q)",
			c.BarrierMode, BarrierSATB, BarrierIncUpdate)
	}
	if c.MutatorOps < 0 || c.MutatorAllocs < 0 || c.MutatorPeriod < 0 {
		return fmt.Errorf("machine: negative mutator parameter")
	}
	if c.NUMADomains < 0 || c.NUMARemotePenalty < 0 || c.NUMAInterleave < 0 || c.NUMABandwidth < 0 {
		return fmt.Errorf("machine: negative NUMA parameter")
	}
	if c.NUMADomains > MaxNUMADomains {
		return fmt.Errorf("machine: NUMADomains must be at most %d, got %d", MaxNUMADomains, c.NUMADomains)
	}
	if !numaPlacementValid(c.NUMAPlacement) {
		return fmt.Errorf("machine: unknown NUMA placement %q (have \"\" or \"naive\", %q)",
			c.NUMAPlacement, PlacementLocal)
	}
	if c.L1Sets < 0 || c.L1Ways < 0 || c.L2Sets < 0 || c.L2Ways < 0 || c.MSHRs < 0 || c.CacheLineWords < 0 {
		return fmt.Errorf("machine: negative cache parameter")
	}
	return nil
}
