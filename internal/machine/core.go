package machine

import (
	"hwgc/internal/mem"
	"hwgc/internal/object"
)

// coreState enumerates the micro-states of a GC core. Each state corresponds
// to a group of micro-instructions of the prototype's 180-word microprogram;
// a core executes (at most) one state action per clock cycle, but cheap
// register operations and uncontended lock micro-operations are folded into
// the same cycle as the operation they accompany, matching the paper's
// statement that synchronization operations incur no clock-cycle penalty in
// the uncontended case.
type coreState int

const (
	sIdle           coreState = iota // waiting for work / for the init barrier
	sStartup                         // Core 1 only: stop main processor, flush caches
	sRoots                           // Core 1 only: evacuate root-referenced objects
	sGrabScan                        // acquire scan lock, pop gray header / detect termination
	sScanHdrIssue                    // FIFO miss: issue header load at scan (holding scan lock)
	sScanHdrWait                     // FIFO miss: wait for header load (holding scan lock)
	sPtrLoad                         // issue body load of the next pointer slot
	sPtrLoadWait                     // wait for the pointer slot value
	sChildPeekIssue                  // optimization: unlocked header load of the child
	sChildPeekWait                   //
	sChildLock                       // acquire header lock of the child
	sChildHdrIssue                   // issue locked header load of the child
	sChildHdrWait                    // wait for the child's header
	sFreeAcquire                     // child unmarked: acquire free lock
	sEvacGrayStore                   // store gray header into the new tospace frame
	sEvacFwdStore                    // store mark + forwarding pointer into the child
	sPtrStore                        // store the updated pointer into the tospace copy
	sDataLoad                        // issue body load of the next data word
	sDataWait                        // wait for the data word (issues the next load when possible)
	sDataStore                       // retry a blocked data body store
	sBlacken                         // store the final header of the tospace copy
	sDone                            // terminated; waiting for the final barrier
)

// Barrier identifiers.
const (
	barrierInit = iota // released when Core 1 has initialized scan/free and evacuated the roots
	barrierDone        // released when every core has detected termination
)

// core is one microprogrammed GC core. All fields are driven exclusively by
// the machine's single-threaded cycle loop.
type core struct {
	id int
	m  *Machine
	st coreState

	// Registers describing the object currently being scanned.
	objTo    object.Addr // tospace frame base
	backlink object.Addr // fromspace original base
	attrs    object.Word // gray header word (attribute source for blackening)
	pi       int
	delta    int
	bodyPos  int         // current body word index (pointer area first, then data)
	bodyEnd  int         // end of this work unit (whole body, or one stride)
	dataWord object.Word // data word held across a blocked body store

	// Registers for the child currently being resolved.
	childPtr object.Addr // fromspace address of the child
	childHdr object.Word // child's fromspace header
	newPtr   object.Addr // resolved tospace address to install
	evacAddr object.Addr // tospace frame allocated for the child
	grayHdr  object.Word // gray header to install in the new frame

	// Root processing (Core 1 only).
	rootIdx     int
	inRoots     bool
	startupLeft int64

	// First machine cycle at which a load-wait step can make progress; the
	// cycle loop skips the core's step while m.cycle < sleepUntil (the
	// skipped cycles' stall counts were added up front, see stallOnLoad).
	sleepUntil int64

	stats CoreStats
}

// step advances the core by one clock cycle.
func (c *core) step() {
	switch c.st {
	case sIdle:
		// Cores other than Core 1 wait at the synchronizing
		// micro-instruction until Core 1 has initialized scan and free and
		// evacuated the roots (Section V-C, barrier synchronization).
		if c.m.sb.Barrier(barrierInit, c.id) {
			c.st = sGrabScan
		}

	case sStartup:
		c.startupLeft--
		if c.startupLeft <= 0 {
			c.inRoots = true
			c.rootIdx = 0
			c.st = sRoots
		}

	case sRoots:
		c.stepRoots()

	case sGrabScan:
		c.grabScan()

	case sScanHdrIssue:
		c.issueScanHdr()

	case sScanHdrWait:
		hdr, doneAt, ok := c.m.mem.PollLoad(c.id, mem.HeaderLoad)
		if !ok {
			c.stallOnLoad(doneAt, &c.stats.HeaderLoadStall)
			return
		}
		c.m.hc.Update(c.m.sb.Scan(), hdr)
		c.beginObject(hdr)

	case sPtrLoad:
		c.issuePtrLoad()

	case sPtrLoadWait:
		w, doneAt, ok := c.m.mem.PollLoad(c.id, mem.BodyLoad)
		if !ok {
			c.stallOnLoad(doneAt, &c.stats.BodyLoadStall)
			return
		}
		c.childPtr = object.Addr(w)
		c.stats.PointersSeen++
		c.beginChild()

	case sChildPeekIssue:
		c.issueChildPeek()

	case sChildPeekWait:
		hdr, doneAt, ok := c.m.mem.PollLoad(c.id, mem.HeaderLoad)
		if !ok {
			c.stallOnLoad(doneAt, &c.stats.HeaderLoadStall)
			return
		}
		// Note: unlike the locked header read, the peek result must NOT be
		// installed in the header cache. The peek races the child's
		// evacuation by another core: its memory load can return the old
		// (unmarked) header after the evacuator has already updated the
		// cache with the forwarding header, and installing the stale value
		// would let a later locked read hit it and evacuate the object a
		// second time. Under the header lock no such writer can exist.
		c.consumePeekHdr(hdr)

	case sChildLock:
		c.tryLockChild()

	case sChildHdrIssue:
		c.issueChildHdr()

	case sChildHdrWait:
		hdr, doneAt, ok := c.m.mem.PollLoad(c.id, mem.HeaderLoad)
		if !ok {
			c.stallOnLoad(doneAt, &c.stats.HeaderLoadStall)
			return
		}
		c.m.hc.Update(c.childPtr, hdr)
		c.consumeChildHdr(hdr)

	case sFreeAcquire:
		c.tryFree()

	case sEvacGrayStore:
		c.issueEvacGrayStore()

	case sEvacFwdStore:
		c.issueEvacFwdStore()

	case sPtrStore:
		c.issuePtrStore()

	case sDataLoad:
		c.issueDataLoad()

	case sDataWait:
		w, doneAt, ok := c.m.mem.PollLoad(c.id, mem.BodyLoad)
		if !ok {
			c.stallOnLoad(doneAt, &c.stats.BodyLoadStall)
			return
		}
		c.dataWord = w
		c.storeDataWord()

	case sDataStore:
		c.storeDataWord()

	case sBlacken:
		blk := object.BlackHeader(c.attrs)
		if !c.m.mem.IssueStore(c.id, mem.HeaderStore, c.objTo, blk) {
			c.stats.HeaderStoreStall++
			return
		}
		c.m.hc.Update(c.objTo, blk)
		c.stats.ObjectsScanned++
		if c.m.mut != nil {
			c.m.lastWork = c.m.cycle
		}
		c.st = sGrabScan

	case sDone:
		// Poll the final barrier so the machine can observe completion.
		c.m.sb.Barrier(barrierDone, c.id)
	}
}

// stallOnLoad accounts one stalled cycle waiting on a load port; doneAt is
// the load's completion cycle as reported by PollLoad (0 while it awaits
// acceptance). Once the load has been accepted its completion cycle is
// fixed, so the core's remaining stall cycles are known: they are added to
// the counter up front and the core sleeps — the cycle loop skips its step —
// until the cycle the data becomes visible. The accounting is arithmetic
// identical to stepping through every waiting cycle; like the event-driven
// fast-forward it is disabled under a Probe, a concurrent mutator, or
// NoFastForward (m.microSleep).
func (c *core) stallOnLoad(doneAt int64, counter *int64) {
	*counter++
	if doneAt > 0 && c.m.microSleep {
		// The memory clock has not ticked for this machine cycle yet, so the
		// load completes during the tick of machine cycle c.m.cycle+d-1 and
		// the step of cycle c.m.cycle+d consumes it; the d waiting cycles are
		// c.m.cycle .. c.m.cycle+d-1, of which one is counted above.
		if d := doneAt - c.m.mem.Cycle(); d > 1 {
			*counter += d - 1
			c.sleepUntil = c.m.cycle + d
		}
	}
}

// stepRoots processes one root slot per cycle. Core 1 accesses the main
// processor's registers directly (Section V-E), so reading and rewriting a
// root slot costs a cycle but no memory traffic; evacuating the referenced
// object uses the regular child-resolution path.
func (c *core) stepRoots() {
	roots := c.m.heap.Roots()
	if c.rootIdx >= len(roots) {
		// Root evacuation finished: release the other cores into the scan
		// loop. Core 1 itself proceeds once the barrier reports complete,
		// which is immediate because all other cores arrived while waiting.
		c.inRoots = false
		if c.m.sb.Barrier(barrierInit, c.id) {
			c.st = sGrabScan
		} else {
			c.st = sIdle
		}
		return
	}
	c.childPtr = roots[c.rootIdx]
	if c.childPtr == object.NilPtr {
		c.rootIdx++
		return
	}
	c.stats.PointersSeen++
	c.beginChild()
}

// grabScan executes the scan-lock critical section of the main scanning
// loop. In the uncontended FIFO-hit case the whole sequence — acquire the
// lock, read the gray header, advance scan, release the lock — completes in
// a single cycle, matching the hardware where lock micro-operations execute
// in parallel with other micro-operations.
func (c *core) grabScan() {
	sb := c.m.sb
	// The scan and free registers can be read by all cores simultaneously;
	// only modifying them requires the lock. A core that observes an empty
	// work list therefore idles without contending for the scan lock — it
	// clears its busy bit and atomically checks the termination condition
	// (Section IV): scan == free and no core currently scanning an object.
	if sb.Scan() == sb.Free() {
		c.m.emptyObserved = true
		sb.SetBusy(c.id, false)
		if sb.AllIdle() {
			c.st = sDone
			c.m.doneCount++
			sb.Barrier(barrierDone, c.id)
		}
		return
	}
	if !sb.TryAcquireScan(c.id) {
		c.stats.ScanLockStall++
		return
	}
	scan, free := sb.Scan(), sb.Free()
	if scan == free {
		// Another core consumed the last gray object between our unlocked
		// check and the acquisition.
		c.m.emptyObserved = true
		sb.ReleaseScan(c.id)
		sb.SetBusy(c.id, false)
		if sb.AllIdle() {
			c.st = sDone
			c.m.doneCount++
			sb.Barrier(barrierDone, c.id)
		}
		return
	}
	sb.SetBusy(c.id, true)
	if c.m.scanFrameValid {
		// Stride mode: the current frame's header is already held in the
		// coprocessor's scan-state registers; dispatch its next stride
		// without any header access.
		c.dispatchStride(c.m.scanFrameHdr)
		return
	}
	if !c.m.cfg.DisableFIFO {
		if hdr, ok := c.m.fifo.PopIf(scan); ok {
			c.stats.FIFOHits++
			c.beginObject(hdr)
			return
		}
		c.stats.FIFOMisses++
	}
	// FIFO miss: the gray header must be loaded from memory while the scan
	// lock is held — scan cannot be advanced before the object's size is
	// known. These loads prolong the critical section; with an overflowing
	// FIFO they dominate (the paper's cup benchmark).
	c.issueScanHdr()
}

func (c *core) issueScanHdr() {
	if hdr, ok := c.m.hc.Lookup(c.m.sb.Scan()); ok {
		c.beginObject(hdr)
		return
	}
	if !c.m.mem.IssueLoad(c.id, mem.HeaderLoad, c.m.sb.Scan()) {
		c.stats.HeaderLoadStall++
		c.st = sScanHdrIssue
		return
	}
	c.st = sScanHdrWait
}

// beginObject consumes a gray tospace header. In whole-object mode it
// advances scan past the object, releases the scan lock and starts
// processing the body; in stride mode (Section VII extension) it latches the
// header into the coprocessor's scan-state registers and dispatches the
// first stride.
func (c *core) beginObject(hdr object.Word) {
	if !object.GrayBit(hdr) {
		// A black-at-birth frame allocated by the concurrent mutator: it
		// holds only tospace pointers and needs no copying — step over it.
		sb := c.m.sb
		scan := sb.Scan()
		sb.SetScan(c.id, scan+object.Addr(object.SizeWords(hdr)))
		sb.ReleaseScan(c.id)
		if c.m.mut != nil {
			c.m.mut.stats.FramesSkipped++
			c.m.lastWork = c.m.cycle
		}
		c.st = sGrabScan
		return
	}
	if c.m.cfg.StrideWords > 0 {
		c.m.scanFrameValid = true
		c.m.scanFrameHdr = hdr
		c.m.scanOff = 0
		c.dispatchStride(hdr)
		return
	}
	sb := c.m.sb
	scan := sb.Scan()
	c.loadFrameRegs(scan, hdr)
	c.bodyPos = 0
	c.bodyEnd = c.pi + c.delta
	sb.SetScan(c.id, scan+object.Addr(object.SizeWords(hdr)))
	sb.ReleaseScan(c.id)
	c.advanceBody()
}

// loadFrameRegs fills the per-core object registers from a gray header.
func (c *core) loadFrameRegs(objTo object.Addr, hdr object.Word) {
	c.objTo = objTo
	c.attrs = hdr
	c.backlink = object.Link(hdr)
	c.pi = object.Pi(hdr)
	c.delta = object.Delta(hdr)
}

// dispatchStride hands the calling core the next stride of the frame at
// scan: up to StrideWords body words. The final stride advances the scan
// pointer past the frame. The core holds the scan lock on entry and stalls
// (holding it) when the stride completion table is full.
func (c *core) dispatchStride(hdr object.Word) {
	sb := c.m.sb
	scan := sb.Scan()
	body := object.BodyWords(hdr)
	start := c.m.scanOff
	end := start + c.m.cfg.StrideWords
	if end > body {
		end = body
	}
	final := end == body
	if !c.m.strides.Dispatch(scan, hdr, final) {
		// Completion table full: stall in place holding the scan lock, as
		// the hardware CAM would. Other cores drain it independently.
		c.stats.StrideTableStall++
		return
	}
	c.stats.Strides++
	c.loadFrameRegs(scan, hdr)
	c.bodyPos = start
	c.bodyEnd = end
	if final {
		sb.SetScan(c.id, scan+object.Addr(object.SizeWords(hdr)))
		c.m.scanFrameValid = false
		c.m.scanOff = 0
	} else {
		c.m.scanOff = end
	}
	sb.ReleaseScan(c.id)
	c.advanceBody()
}

// advanceBody continues the current work unit at bodyPos: pointer slots
// first, then data words, then completion.
func (c *core) advanceBody() {
	switch {
	case c.bodyPos >= c.bodyEnd:
		c.finishWorkUnit()
	case c.bodyPos < c.pi:
		c.issuePtrLoad()
	default:
		c.issueDataLoad()
	}
}

// finishWorkUnit ends a work unit: in whole-object mode the object is
// blackened; in stride mode only the last outstanding stride blackens.
func (c *core) finishWorkUnit() {
	if c.m.cfg.StrideWords <= 0 {
		c.st = sBlacken
		return
	}
	if c.m.strides.Complete(c.objTo) {
		c.st = sBlacken
		return
	}
	c.st = sGrabScan
}

func (c *core) issuePtrLoad() {
	if !c.m.mem.IssueLoad(c.id, mem.BodyLoad, object.PtrSlot(c.backlink, c.bodyPos)) {
		c.stats.BodyLoadStall++
		c.st = sPtrLoad
		return
	}
	c.st = sPtrLoadWait
}

// beginChild starts resolving childPtr to its tospace address.
func (c *core) beginChild() {
	if c.childPtr == object.NilPtr {
		c.newPtr = object.NilPtr
		c.finishPtr()
		return
	}
	if c.m.cfg.OptUnlockedMarkRead {
		c.issueChildPeek()
		return
	}
	c.tryLockChild()
}

func (c *core) issueChildPeek() {
	if hdr, ok := c.m.hc.Lookup(c.childPtr); ok {
		c.consumePeekHdr(hdr)
		return
	}
	if !c.m.mem.IssueLoad(c.id, mem.HeaderLoad, c.childPtr) {
		c.stats.HeaderLoadStall++
		c.st = sChildPeekIssue
		return
	}
	c.st = sChildPeekWait
}

// consumePeekHdr acts on an unlocked header read of the child (the Section
// VI-B optimization): marked children resolve without touching the header
// lock; unmarked children fall back to the locking read.
func (c *core) consumePeekHdr(hdr object.Word) {
	if object.Marked(hdr) {
		// Fast path: the mark bit is already set, so the forwarding pointer
		// is stable and no header lock is needed.
		c.newPtr = object.Link(hdr)
		c.finishPtr()
		return
	}
	c.tryLockChild()
}

func (c *core) tryLockChild() {
	if !c.m.sb.TryLockHeader(c.id, c.childPtr) {
		c.stats.HeaderLockStall++
		c.st = sChildLock
		return
	}
	c.issueChildHdr()
}

func (c *core) issueChildHdr() {
	if hdr, ok := c.m.hc.Lookup(c.childPtr); ok {
		c.consumeChildHdr(hdr)
		return
	}
	if !c.m.mem.IssueLoad(c.id, mem.HeaderLoad, c.childPtr) {
		c.stats.HeaderLoadStall++
		c.st = sChildHdrIssue
		return
	}
	c.st = sChildHdrWait
}

// consumeChildHdr acts on the locked header read of the child: marked
// children resolve to their forwarding pointer; unmarked children are
// evacuated.
func (c *core) consumeChildHdr(hdr object.Word) {
	if object.Marked(hdr) {
		// Already evacuated (possibly by another core while we waited for
		// the header lock): follow the forwarding pointer.
		c.newPtr = object.Link(hdr)
		c.m.sb.UnlockHeader(c.id)
		c.finishPtr()
		return
	}
	c.childHdr = hdr
	c.tryFree()
}

// tryFree evacuates the (unmarked, header-locked) child: acquire the free
// lock, allocate the tospace frame, and publish it.
//
// The paper's pseudo-code installs the forwarding pointer, then the tospace
// backlink, then increments free, all under the free lock. With a single
// header-store port the two header stores take two cycles, so we reorder
// them to keep the free lock held for a single cycle (matching the
// prototype's negligible free-lock stall counts): the gray tospace header is
// stored first, together with the free increment and release; the forwarding
// store into the child follows while only the header lock is still held.
// This is semantically equivalent — the child's header is protected by the
// header lock until the forwarding pointer is on its way, and the memory
// access scheduler's comparator array delays any header load from either
// address until the corresponding store has committed.
func (c *core) tryFree() {
	sb := c.m.sb
	if !sb.TryAcquireFree(c.id) {
		c.stats.FreeLockStall++
		c.st = sFreeAcquire
		return
	}
	c.evacAddr = sb.Free()
	c.grayHdr = object.GrayHeader(c.childHdr, c.childPtr)
	c.issueEvacGrayStore()
}

func (c *core) issueEvacGrayStore() {
	size := object.Addr(object.SizeWords(c.childHdr))
	if c.evacAddr+size > c.m.toLimit {
		c.m.failf("machine: tospace overflow evacuating object %d (size %d) at free %d, limit %d",
			c.childPtr, size, c.evacAddr, c.m.toLimit)
		return
	}
	if !c.m.mem.IssueStore(c.id, mem.HeaderStore, c.evacAddr, c.grayHdr) {
		c.stats.HeaderStoreStall++
		c.st = sEvacGrayStore
		return
	}
	c.m.hc.Update(c.evacAddr, c.grayHdr)
	sb := c.m.sb
	if c.m.fifo.Push(c.evacAddr, c.grayHdr) {
		c.m.fifoDrops++
	}
	sb.SetFree(c.id, c.evacAddr+size)
	sb.ReleaseFree(c.id)
	c.st = sEvacFwdStore
}

func (c *core) issueEvacFwdStore() {
	fwdHdr := object.WithMark(c.childHdr, c.evacAddr)
	if !c.m.mem.IssueStore(c.id, mem.HeaderStore, c.childPtr, fwdHdr) {
		c.stats.HeaderStoreStall++
		c.st = sEvacFwdStore
		return
	}
	c.m.hc.Update(c.childPtr, fwdHdr)
	c.m.sb.UnlockHeader(c.id)
	c.newPtr = c.evacAddr
	c.stats.ObjectsEvacuated++
	c.finishPtr()
}

// finishPtr installs the resolved pointer: into the root slot when Core 1 is
// evacuating roots, or into the tospace copy's pointer area otherwise.
func (c *core) finishPtr() {
	if c.inRoots {
		c.m.heap.SetRoot(c.rootIdx, c.newPtr)
		c.rootIdx++
		c.st = sRoots
		return
	}
	c.issuePtrStore()
}

func (c *core) issuePtrStore() {
	if !c.m.mem.IssueStore(c.id, mem.BodyStore, object.PtrSlot(c.objTo, c.bodyPos), object.Word(c.newPtr)) {
		c.stats.BodyStoreStall++
		c.st = sPtrStore
		return
	}
	c.stats.WordsCopied++
	c.bodyPos++
	c.advanceBody()
}

func (c *core) issueDataLoad() {
	if !c.m.mem.IssueLoad(c.id, mem.BodyLoad, object.DataSlot(c.backlink, c.pi, c.bodyPos-c.pi)) {
		c.stats.BodyLoadStall++
		c.st = sDataLoad
		return
	}
	c.st = sDataWait
}

// storeDataWord forwards the held data word to the tospace copy and, when
// possible, issues the next data load in the same cycle (the load buffer was
// freed by the take that preceded this call).
func (c *core) storeDataWord() {
	if !c.m.mem.IssueStore(c.id, mem.BodyStore, object.DataSlot(c.objTo, c.pi, c.bodyPos-c.pi), c.dataWord) {
		c.stats.BodyStoreStall++
		c.st = sDataStore
		return
	}
	c.stats.WordsCopied++
	c.bodyPos++
	if c.bodyPos < c.bodyEnd {
		c.issueDataLoad()
		return
	}
	c.finishWorkUnit()
}
