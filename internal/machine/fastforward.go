package machine

import (
	"math"

	"hwgc/internal/mem"
)

// Event-driven fast-forward.
//
// The cycle loop normally steps every core and ticks the memory scheduler
// once per simulated clock cycle. During memory-latency windows — and the
// long empty-work-list phases of the paper's Table I — whole stretches of
// cycles are "dead": every core's step does nothing but increment a stall
// counter, and the memory tick does nothing but advance the clock. The
// fast-forward detects such a configuration, computes the next cycle at
// which any state transition can occur (a load completing, a startup counter
// expiring, the store pipeline draining), and advances the machine to just
// before that cycle in one jump, accumulating the per-cause counters
// arithmetically.
//
// The invariant is strict bit-identity: a fast-forwarded collection produces
// exactly the Stats (total cycles, per-cause stall cycles, empty-work-list
// cycles, FIFO, memory and synchronization counters) and exactly the final
// heap image of the per-cycle stepped run. To guarantee it, a cycle is only
// classified as dead under conservative conditions:
//
//   - the memory scheduler is Quiescent: no request is awaiting acceptance,
//     so skipped ticks perform no arbitration and touch no memory counter
//     (cores stalled on a full store queue therefore disable fast-forward
//     implicitly — their queued store is unaccepted);
//   - every core is in a state whose step provably has no effect beyond its
//     stall counter: waiting for an accepted load, spinning on a lock held
//     by another core, observing an empty work list (with its busy bit
//     already cleared and termination not yet reached), idling at an
//     incomplete barrier, counting down startup, or done;
//   - the per-cycle Probe hook is nil (internal/trace samples signals every
//     cycle) and no concurrent mutator is attached (it executes an operation
//     stream on its own port every cycle).
//
// Anything else — a core that could acquire a lock, take a ready load, or
// make any other transition — vetoes the jump for that cycle; the loop then
// steps normally, which is always correct.

// ffStall classifies what a dead core accumulates per skipped cycle.
type ffStall uint8

const (
	ffNone       ffStall = iota // idle / done / startup: no counter
	ffHeaderLoad                // waiting on an accepted header load
	ffBodyLoad                  // waiting on an accepted body load
	ffScanLock                  // spinning on the held scan lock
	ffHeaderLock                // spinning on a held header lock
	ffFreeLock                  // spinning on the held free lock
	ffEmpty                     // observing an empty work list
)

// ffInfinity marks a dead core with no wake-up event of its own (it can only
// be released by another core's progress).
const ffInfinity = int64(math.MaxInt64)

// deadCore reports whether core c's next steps are provably dead, and if so
// which counter it accumulates per skipped cycle and after how many further
// cycles (relative to now) its step first makes progress. A wakeIn of
// ffInfinity means the core only wakes through another core's transition.
func (m *Machine) deadCore(c *core) (kind ffStall, wakeIn int64, dead bool) {
	switch c.st {
	case sDone:
		// Re-registers its (already recorded) barrier arrival; no effect.
		return ffNone, ffInfinity, true

	case sIdle:
		// Blocked at the init barrier; dead while Core 1 has not arrived.
		if m.sb.BarrierComplete(barrierInit) {
			return 0, 0, false
		}
		return ffNone, ffInfinity, true

	case sStartup:
		// Pure countdown; the step that decrements startupLeft to zero
		// transitions to root processing.
		return ffNone, c.startupLeft, true

	case sGrabScan:
		sb := m.sb
		if sb.ScanOwner() == c.id {
			// Holding the scan lock (stride-table stall): its retry has side
			// effects we do not model arithmetically — step normally.
			return 0, 0, false
		}
		if sb.Scan() == sb.Free() {
			// Empty work list. The spin is only idempotent once the core has
			// cleared its own busy bit, and it transitions to sDone as soon
			// as every busy bit is clear.
			if sb.Busy(c.id) || sb.AllIdle() {
				return 0, 0, false
			}
			return ffEmpty, ffInfinity, true
		}
		if sb.ScanOwner() < 0 {
			return 0, 0, false // lock free: the core acquires it next step
		}
		return ffScanLock, ffInfinity, true

	case sScanHdrWait, sChildPeekWait, sChildHdrWait:
		if c.sleepUntil > m.cycle {
			// Sleeping: the stall cycles through sleepUntil-1 were already
			// added when the core went to sleep (core.stallOnLoad), so the
			// jump must not add them again.
			return ffNone, c.sleepUntil - m.cycle, true
		}
		if doneAt, ok := m.mem.LoadPending(c.id, mem.HeaderLoad); ok {
			// Completion at doneAt (memory clock) is observed by the step
			// one cycle later.
			return ffHeaderLoad, doneAt - m.mem.Cycle() + 1, true
		}
		return 0, 0, false

	case sPtrLoadWait, sDataWait:
		if c.sleepUntil > m.cycle {
			return ffNone, c.sleepUntil - m.cycle, true
		}
		if doneAt, ok := m.mem.LoadPending(c.id, mem.BodyLoad); ok {
			return ffBodyLoad, doneAt - m.mem.Cycle() + 1, true
		}
		return 0, 0, false

	case sChildLock:
		if m.sb.HeaderLockConflict(c.id, c.childPtr) {
			return ffHeaderLock, ffInfinity, true
		}
		return 0, 0, false

	case sFreeAcquire:
		if o := m.sb.FreeOwner(); o >= 0 && o != c.id {
			return ffFreeLock, ffInfinity, true
		}
		return 0, 0, false
	}

	// Root processing, issue retries and store stalls step normally: they
	// either make progress every cycle or depend on arbitration that the
	// quiescence check already vetoes.
	return 0, 0, false
}

// fastForward attempts one event-driven jump at the end of the current
// cycle. It is a no-op unless the whole machine is dead; then it advances
// the clock to one cycle before the next wake-up event, accumulating every
// skipped cycle's counters exactly as the stepped loop would have.
func (m *Machine) fastForward(maxCycles, scanEnd int64, emptyCycles *int64) {
	if !m.mem.Quiescent() {
		return
	}
	wakeIn := ffInfinity
	for i, c := range m.cores {
		kind, w, dead := m.deadCore(c)
		if !dead {
			return
		}
		m.ffKinds[i] = kind
		if w < wakeIn {
			wakeIn = w
		}
	}
	if scanEnd >= 0 {
		// Every core has terminated; the loop exits on the cycle the store
		// pipeline drains, so that cycle must run normally.
		if d := m.mem.LastInflightDoneAt(); d > 0 {
			if w := d - m.mem.Cycle(); w < wakeIn {
				wakeIn = w
			}
		}
	}
	if wakeIn == ffInfinity {
		// No event at all: a genuine livelock. Step normally into the
		// MaxCycles guard rather than jumping blindly.
		return
	}
	jump := wakeIn - 1 // resume one full cycle before the event fires
	if m.cycle+jump > maxCycles {
		jump = maxCycles - m.cycle // preserve the livelock abort cycle
	}
	if jump <= 0 {
		return
	}

	m.cycle += jump
	m.mem.FastForwardBy(jump)
	var scanConf, freeConf, hdrConf int64
	sawEmpty := false
	for i, c := range m.cores {
		switch m.ffKinds[i] {
		case ffHeaderLoad:
			c.stats.HeaderLoadStall += jump
		case ffBodyLoad:
			c.stats.BodyLoadStall += jump
		case ffScanLock:
			c.stats.ScanLockStall += jump
			scanConf += jump
		case ffHeaderLock:
			c.stats.HeaderLockStall += jump
			hdrConf += jump
		case ffFreeLock:
			c.stats.FreeLockStall += jump
			freeConf += jump
		case ffEmpty:
			sawEmpty = true
		}
		if c.st == sStartup {
			c.startupLeft -= jump
		}
	}
	if scanConf != 0 || freeConf != 0 || hdrConf != 0 {
		m.sb.AddConflictStalls(scanConf, freeConf, hdrConf)
	}
	if sawEmpty && scanEnd < 0 {
		*emptyCycles += jump
	}
	m.ffJumps++
	m.ffSkipped += jump
}

// FastForwardStats reports how many event-driven jumps the last (or current)
// collection performed and how many dead cycles they skipped. Both are zero
// when fast-forwarding was disabled or never applicable.
func (m *Machine) FastForwardStats() (jumps, skippedCycles int64) {
	return m.ffJumps, m.ffSkipped
}
