package machine

import "hwgc/internal/object"

// headerFIFO is the on-chip header FIFO of Section V-D.
//
// In the parallel Cheney algorithm, the scan pointer can only be advanced
// after the size of the object at scan is known, i.e. after its gray
// tospace header has been read — so these header reads sit inside the scan
// critical section and can become a bottleneck. Because gray tospace headers
// are read in exactly the same order as they are written, the coprocessor
// buffers them in a FIFO: as long as the number of gray objects does not
// exceed its capacity, no memory accesses are required to read them.
//
// On overflow an entry is simply not buffered (it is still stored to memory
// by the evacuating core). Entries are tagged with their tospace frame
// address: a pop only hits when the head entry's address matches the scan
// pointer, so dropped entries naturally turn into FIFO misses that fall back
// to a memory header load.
type headerFIFO struct {
	cap      int
	entries  []fifoEntry
	head     int
	disabled bool

	hits     int64
	misses   int64
	drops    int64
	maxDepth int
}

type fifoEntry struct {
	addr object.Addr
	hdr  object.Word
}

func newHeaderFIFO(capacity int, disabled bool) *headerFIFO {
	return &headerFIFO{cap: capacity, disabled: disabled}
}

// Reset empties the FIFO and its statistics for a new collection cycle.
func (f *headerFIFO) Reset() {
	f.entries = f.entries[:0]
	f.head = 0
	f.hits, f.misses, f.drops, f.maxDepth = 0, 0, 0, 0
}

// Len returns the number of buffered entries.
func (f *headerFIFO) Len() int { return len(f.entries) - f.head }

// Push buffers the gray header written to the tospace frame at addr. It
// reports whether the entry was dropped because the FIFO was full or
// disabled.
func (f *headerFIFO) Push(addr object.Addr, hdr object.Word) (dropped bool) {
	if f.disabled || f.Len() >= f.cap {
		f.drops++
		return true
	}
	f.entries = append(f.entries, fifoEntry{addr, hdr})
	if d := f.Len(); d > f.maxDepth {
		f.maxDepth = d
	}
	return false
}

// PopIf pops and returns the head entry when its tag matches addr (a FIFO
// hit). Otherwise it reports a miss and the caller must load the header from
// memory.
func (f *headerFIFO) PopIf(addr object.Addr) (object.Word, bool) {
	if f.Len() > 0 && f.entries[f.head].addr == addr {
		hdr := f.entries[f.head].hdr
		f.head++
		if f.head == len(f.entries) { // reclaim storage when drained
			f.entries = f.entries[:0]
			f.head = 0
		} else if f.head >= 1024 && f.head*2 >= len(f.entries) {
			// Compact once the consumed prefix dominates, bounding the
			// backing array to O(occupancy) rather than O(total pushes).
			n := copy(f.entries, f.entries[f.head:])
			f.entries = f.entries[:n]
			f.head = 0
		}
		f.hits++
		return hdr, true
	}
	f.misses++
	return 0, false
}
