package machine

import "testing"

func TestFIFOOrderAndHits(t *testing.T) {
	f := newHeaderFIFO(4, false)
	for i := 1; i <= 3; i++ {
		if f.Push(uint32(i*10), uint64(i)) {
			t.Fatalf("push %d dropped below capacity", i)
		}
	}
	if f.Len() != 3 || f.maxDepth != 3 {
		t.Fatalf("len=%d maxDepth=%d", f.Len(), f.maxDepth)
	}
	for i := 1; i <= 3; i++ {
		hdr, ok := f.PopIf(uint32(i * 10))
		if !ok || hdr != uint64(i) {
			t.Fatalf("pop %d: ok=%v hdr=%d", i, ok, hdr)
		}
	}
	if f.hits != 3 || f.Len() != 0 {
		t.Fatalf("hits=%d len=%d", f.hits, f.Len())
	}
}

func TestFIFOMismatchIsMiss(t *testing.T) {
	f := newHeaderFIFO(4, false)
	f.Push(10, 1)
	if _, ok := f.PopIf(20); ok {
		t.Fatal("mismatched pop hit")
	}
	if f.misses != 1 || f.Len() != 1 {
		t.Fatalf("miss not recorded; len=%d", f.Len())
	}
	// The head entry stays for its real consumer.
	if hdr, ok := f.PopIf(10); !ok || hdr != 1 {
		t.Fatal("entry lost after miss")
	}
}

func TestFIFODropOnFull(t *testing.T) {
	f := newHeaderFIFO(2, false)
	f.Push(10, 1)
	f.Push(20, 2)
	if !f.Push(30, 3) {
		t.Fatal("push above capacity not dropped")
	}
	if f.drops != 1 {
		t.Fatalf("drops=%d", f.drops)
	}
	// Consumption order: 10 hit, 20 hit, 30 miss (dropped).
	if _, ok := f.PopIf(10); !ok {
		t.Fatal("10 lost")
	}
	if _, ok := f.PopIf(20); !ok {
		t.Fatal("20 lost")
	}
	if _, ok := f.PopIf(30); ok {
		t.Fatal("dropped entry resurfaced")
	}
}

func TestFIFODisabled(t *testing.T) {
	f := newHeaderFIFO(8, true)
	if !f.Push(10, 1) {
		t.Fatal("disabled FIFO accepted a push")
	}
	if _, ok := f.PopIf(10); ok {
		t.Fatal("disabled FIFO produced a hit")
	}
}

func TestFIFOReset(t *testing.T) {
	f := newHeaderFIFO(4, false)
	f.Push(10, 1)
	f.PopIf(99)
	f.Reset()
	if f.Len() != 0 || f.hits != 0 || f.misses != 0 || f.drops != 0 || f.maxDepth != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestFIFOStorageReclaim(t *testing.T) {
	f := newHeaderFIFO(1024, false)
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			f.Push(uint32(1000*round+i), 1)
		}
		for i := 0; i < 100; i++ {
			if _, ok := f.PopIf(uint32(1000*round + i)); !ok {
				t.Fatal("lost entry")
			}
		}
		if len(f.entries) != 0 || f.head != 0 {
			t.Fatalf("storage not reclaimed after drain: len=%d head=%d", len(f.entries), f.head)
		}
	}
}
