package machine

import "hwgc/internal/object"

// headerCache is an on-chip cache for object headers — the first of the two
// improvements the paper's conclusions propose for making better use of the
// available memory bandwidth ("header caches in conjunction with an
// optimized header FIFO", Section VII).
//
// Header loads dominate the coprocessor's memory traffic (Table II), and a
// large share of them re-read the same fromspace headers: every reference to
// an already-evacuated object loads its header again just to pick up the
// forwarding pointer — for hub-heavy graphs like javac, thousands of loads
// hit a handful of addresses.
//
// The cache is direct-mapped over header (object base) addresses and shared
// by all cores, like the header FIFO. Coherence is trivial by construction:
// the locking protocol guarantees a single writer per header, and every
// header store is visible to the cache when it is issued, so stores update
// the cache in place (write-through, allocate-on-write). A cached header is
// by definition newer than or equal to what memory holds — a pending store
// that would delay the load in the comparator array has already updated the
// cache — so hits are always consistent.
type headerCache struct {
	lines []headerCacheLine
	mask  uint32

	hits   int64
	misses int64
}

type headerCacheLine struct {
	valid bool
	addr  object.Addr
	data  object.Word
}

// newHeaderCache creates a cache with the given number of lines (rounded up
// to a power of two). Zero lines disables the cache.
func newHeaderCache(lines int) *headerCache {
	if lines <= 0 {
		return &headerCache{}
	}
	n := 1
	for n < lines {
		n <<= 1
	}
	return &headerCache{lines: make([]headerCacheLine, n), mask: uint32(n - 1)}
}

// Enabled reports whether the cache has any lines.
func (c *headerCache) Enabled() bool { return len(c.lines) > 0 }

// Reset invalidates the cache for a new collection cycle (the semispaces
// flip, so all entries are stale).
func (c *headerCache) Reset() {
	for i := range c.lines {
		c.lines[i] = headerCacheLine{}
	}
	c.hits, c.misses = 0, 0
}

// Lookup returns the cached header for addr, if present.
func (c *headerCache) Lookup(addr object.Addr) (object.Word, bool) {
	if !c.Enabled() {
		return 0, false
	}
	l := &c.lines[addr&c.mask]
	if l.valid && l.addr == addr {
		c.hits++
		return l.data, true
	}
	c.misses++
	return 0, false
}

// Update installs the header value for addr (on a header store, or when a
// header load completes from memory).
func (c *headerCache) Update(addr object.Addr, data object.Word) {
	if !c.Enabled() {
		return
	}
	c.lines[addr&c.mask] = headerCacheLine{valid: true, addr: addr, data: data}
}
