package machine

import (
	"fmt"

	"hwgc/internal/heap"
	"hwgc/internal/mem"
	"hwgc/internal/object"
	"hwgc/internal/syncblock"
)

// Machine is one instance of the multi-core GC coprocessor attached to a
// heap. A Machine is reusable: each call to Collect runs one complete
// garbage collection cycle (the coprocessor stops the main processor for the
// whole cycle, Section V-B).
type Machine struct {
	cfg  Config
	heap *heap.Heap
	mem  *mem.Memory
	sb   *syncblock.SB
	fifo *headerFIFO
	hc   *headerCache

	// Scan-state registers for stride mode (guarded by the scan lock).
	strides        *strideTable
	scanFrameValid bool
	scanFrameHdr   object.Word
	scanOff        int

	// Concurrent-mode mutator port (nil in stop-the-world mode).
	mut        *mutCore
	mutStarted bool
	// mutBuiltin marks a mutator constructed from Config.MutatorOps (the
	// snapshot-able churn driver) rather than supplied to CollectConcurrent.
	mutBuiltin bool
	// lastWork is the cycle of the most recent marking progress (an object
	// blackened or a black-at-birth frame stepped over); scanEnd − lastWork
	// is the mark-termination latency reported in concurrent mode.
	lastWork int64

	cores         []*core
	coreBuf       []core // backing storage for cores, reused across Collects
	doneCount     int    // cores in sDone (they never leave it)
	cycle         int64
	fifoDrops     int64
	toLimit       object.Addr
	emptyObserved bool // some core sought work this cycle and found scan == free
	err           error

	// Cycle-loop state, held on the Machine (rather than as locals of
	// Collect) so a collection can be suspended between cycles, captured by
	// Snapshot and resumed bit-identically (see snapshot.go).
	phase       collectPhase
	maxCycles   int64 // livelock bound, fixed by BeginCollect
	scanStart   int64 // first cycle after root evacuation, -1 until known
	scanEnd     int64 // cycle every core detected termination, -1 until known
	emptyCycles int64 // accumulated empty-work-list cycles

	// Event-driven fast-forward state (see fastforward.go).
	ffKinds   []ffStall // per-core scratch, reused every dead cycle
	ffJumps   int64
	ffSkipped int64
	// microSleep allows individual cores waiting on an accepted load to
	// pre-account their stall cycles and skip their steps until the data
	// arrives (core.stallOnLoad). Gated exactly like fastForward, and
	// computed once per Collect.
	microSleep bool

	// Probe, when non-nil, is invoked after every simulated clock cycle;
	// the monitoring framework (internal/trace) uses it to sample signals.
	// Probe is the original single-slot hook, kept working for existing
	// callers; new code should prefer AddProbe, which multiplexes any number
	// of observers. When both are set, Probe fires before the AddProbe list.
	Probe func(cycle int64, m *Machine)

	// probes holds the observers registered via AddProbe, invoked in
	// registration order after every cycle (after the legacy Probe).
	probes []func(cycle int64, m *Machine)

	// NoFastForward forces per-cycle stepping even when no Probe is
	// attached. The determinism suite uses it to check that fast-forwarded
	// collections are bit-identical to stepped ones. It deliberately lives
	// on the Machine rather than in Config: Stats embeds the Config, which
	// must not differ between the two modes.
	NoFastForward bool
}

// New creates a coprocessor over h.
func New(h *heap.Heap, cfg Config) (*Machine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:  cfg,
		heap: h,
		mem:  mem.New(h.Mem(), memConfig(cfg)),
		sb:   syncblock.New(cfg.Cores),
		fifo: newHeaderFIFO(cfg.FIFOCapacity, cfg.DisableFIFO),
		hc:   newHeaderCache(cfg.HeaderCacheLines),
	}
	if cfg.StrideWords > 0 {
		m.strides = newStrideTable(cfg.Cores)
	}
	return m, nil
}

// memConfig maps the machine configuration onto the memory model's. It is
// the single source of truth for both New and RestoreMachine.
func memConfig(cfg Config) mem.Config {
	return mem.Config{
		Latency:          cfg.MemLatency,
		ExtraLatency:     cfg.ExtraMemLatency,
		Bandwidth:        cfg.MemBandwidth,
		StoreQueueDepth:  cfg.MemStoreQueueDepth,
		Banks:            cfg.MemBanks,
		BankBusy:         cfg.MemBankBusy,
		Domains:          cfg.NUMADomains,
		RemotePenalty:    cfg.NUMARemotePenalty,
		DomainInterleave: cfg.NUMAInterleave,
		DomainBandwidth:  cfg.NUMABandwidth,
		L1Sets:           cfg.L1Sets,
		L1Ways:           cfg.L1Ways,
		L2Sets:           cfg.L2Sets,
		L2Ways:           cfg.L2Ways,
		MSHRs:            cfg.MSHRs,
		LineWords:        cfg.CacheLineWords,
	}
}

// Config returns the machine's effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// SB exposes the synchronization block (tests and tracing).
func (m *Machine) SB() *syncblock.SB { return m.sb }

// Mem exposes the memory scheduler (tests and tracing).
func (m *Machine) Mem() *mem.Memory { return m.mem }

// FIFODepth returns the current header FIFO occupancy (tracing).
func (m *Machine) FIFODepth() int { return m.fifo.Len() }

// Cycle returns the current clock cycle of the running collection.
func (m *Machine) Cycle() int64 { return m.cycle }

// CoreState returns a short description of core i's state (tracing).
func (m *Machine) CoreState(i int) string { return coreStateName(m.cores[i].st) }

// fail records a fatal simulation error; the cycle loop aborts on the next
// iteration.
func (m *Machine) failf(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf(format, args...)
	}
}

// collectPhase tracks where a Machine is in the Begin/Step/Finish life
// cycle of one collection.
type collectPhase int

const (
	phaseIdle    collectPhase = iota // no collection in progress
	phaseRunning                     // between BeginCollect and termination
	phaseDone                        // terminated, awaiting FinishCollect
)

// AddProbe registers an additional per-cycle observer, invoked after every
// simulated clock cycle in registration order (after the legacy Probe
// field, if set). Like Probe, any registered observer forces full per-cycle
// stepping — fast-forward and micro-sleep are disabled so every cycle is
// observable. Probes registered mid-collection take effect from the next
// cycle; they are not captured by Snapshot.
func (m *Machine) AddProbe(p func(cycle int64, m *Machine)) {
	if p == nil {
		return
	}
	m.probes = append(m.probes, p)
	m.microSleep = false
}

// ClearProbes removes every observer registered with AddProbe (the legacy
// Probe field is untouched).
func (m *Machine) ClearProbes() { m.probes = nil }

// probing reports whether any per-cycle observer is attached.
func (m *Machine) probing() bool { return m.Probe != nil || len(m.probes) > 0 }

// fireProbes invokes the legacy Probe and then the AddProbe observers.
func (m *Machine) fireProbes() {
	if m.Probe != nil {
		m.Probe(m.cycle, m)
	}
	for _, p := range m.probes {
		p(m.cycle, m)
	}
}

// Collect runs one complete garbage collection cycle and returns its
// statistics. On success the heap has been flipped: the surviving objects
// sit compacted at the bottom of the new current space and the roots point
// at them.
//
// Collect is BeginCollect + StepCycle-until-done + FinishCollect; callers
// that need to suspend a collection (checkpointing, replay) drive those
// phases directly.
func (m *Machine) Collect() (Stats, error) {
	m.BeginCollect()
	for {
		done, err := m.StepCycle()
		if err != nil {
			return Stats{}, err
		}
		if done {
			break
		}
	}
	return m.FinishCollect()
}

// BeginCollect resets the machine and starts a new collection cycle. Any
// previous collection state (including a failed one) is discarded. After
// BeginCollect the machine is mid-collection: drive it with StepCycle /
// StepCycles and call FinishCollect once a step reports done.
func (m *Machine) BeginCollect() {
	h := m.heap
	to := h.OtherSpace()
	base := h.Base(to)
	limit := h.Limit(to)

	m.sb.Reset(base, base)
	if m.cfg.MutatorOps > 0 && (m.mut == nil || m.mutBuiltin) {
		// Config-driven concurrent mode: attach the built-in churn mutator.
		// An external CollectConcurrent driver, when present, wins.
		ch := newChurnState(m.heap, m.cfg)
		m.mut = newMutCore(m, ch.drive, m.cfg.MutatorPeriod)
		m.mut.churn = ch
		m.mutBuiltin = true
	}
	ports := m.cfg.Cores
	if m.mut != nil {
		ports++ // the concurrent mutator uses its own set of memory ports
	}
	m.mem.AttachCores(ports)
	if m.cfg.NUMADomains > 0 && m.cfg.NUMAPlacement == PlacementLocal {
		// Locality-aware placement: the tospace is allocated out of
		// per-domain regions, so evacuation and scan traffic to it is local
		// to every core.
		m.mem.SetLocalWindow(base, limit)
	} else {
		m.mem.SetLocalWindow(0, 0)
	}
	m.mutStarted = false
	m.fifo.Reset()
	m.hc.Reset()
	if m.strides != nil {
		m.strides.Reset()
	}
	m.scanFrameValid = false
	m.scanFrameHdr = 0
	m.scanOff = 0
	m.toLimit = limit
	m.fifoDrops = 0
	m.cycle = 0
	m.err = nil

	if len(m.coreBuf) != m.cfg.Cores {
		m.coreBuf = make([]core, m.cfg.Cores)
		m.cores = make([]*core, m.cfg.Cores)
		m.ffKinds = make([]ffStall, m.cfg.Cores)
	}
	for i := range m.coreBuf {
		c := &m.coreBuf[i]
		*c = core{id: i, m: m, st: sIdle}
		if i == 0 {
			if m.cfg.StartupCycles > 0 {
				c.st = sStartup
				c.startupLeft = m.cfg.StartupCycles
			} else {
				c.st = sRoots
				c.inRoots = true
			}
		}
		m.cores[i] = c
	}
	m.doneCount = 0
	m.ffJumps = 0
	m.ffSkipped = 0
	m.microSleep = !m.probing() && !m.NoFastForward && m.mut == nil && m.cfg.L1Sets == 0

	m.maxCycles = m.cfg.MaxCycles
	if m.maxCycles <= 0 {
		// Generous livelock guard: even fully serialized, a collection
		// processes at most one word per a few dozen cycles.
		m.maxCycles = 1_000_000 + 200*int64(h.SemiWords())
	}
	m.scanStart = -1
	m.scanEnd = -1
	m.emptyCycles = 0
	m.lastWork = 0
	m.phase = phaseRunning
}

// StepCycle advances the collection by one simulated clock cycle (or, with
// fast-forward enabled, by one provably-dead stretch of cycles). It reports
// done once the collection has terminated; the caller then obtains the
// statistics from FinishCollect. Between StepCycle calls the machine state
// is self-contained, which is the boundary Snapshot captures.
func (m *Machine) StepCycle() (done bool, err error) {
	switch m.phase {
	case phaseIdle:
		return false, fmt.Errorf("machine: StepCycle without BeginCollect")
	case phaseDone:
		return true, nil
	}
	if m.err != nil {
		return false, m.err
	}

	m.cycle++
	if m.cycle > m.maxCycles {
		m.failf("machine: collection exceeded %d cycles (livelock?)", m.maxCycles)
		return false, m.err
	}
	m.emptyObserved = false
	// The mutator port steps before the GC cores so that any frame it
	// publishes this cycle is visible to the termination check, and it
	// only starts once Core 1 has forwarded the roots (the brief
	// stop-the-world window at the start of the cycle).
	if m.mut != nil && m.mutStarted {
		m.mut.step(m.scanEnd >= 0)
		if m.err != nil {
			return false, m.err
		}
	}
	cores := m.coreBuf
	for i := range cores {
		if c := &cores[i]; c.sleepUntil <= m.cycle {
			c.step()
		}
		// else load-waiting: stalls pre-added by stallOnLoad.
	}
	if m.err != nil {
		return false, m.err
	}
	if m.scanStart < 0 && !m.cores[0].inRoots && m.cores[0].st != sStartup && m.cores[0].st != sRoots {
		m.scanStart = m.cycle
		m.mutStarted = true
	}
	if m.scanEnd < 0 && m.emptyObserved {
		m.emptyCycles++
	}
	m.mem.Tick()

	if m.scanEnd < 0 && m.allDone() {
		m.scanEnd = m.cycle
	}
	if m.scanEnd >= 0 && m.mem.Drained() && (m.mut == nil || m.mut.idle()) {
		m.phase = phaseDone
		return true, nil
	}
	if m.probing() {
		// Monitoring samples signals on every cycle, so tracing forces
		// full per-cycle stepping (no fast-forward).
		m.fireProbes()
	} else if !m.NoFastForward && m.mut == nil && m.cfg.L1Sets == 0 {
		// The cache model structurally disables fast-forward (like the
		// mutator): a stalled port's wake-up depends on MSHR occupancy and
		// tag state, which a jump cannot reproduce exactly.
		m.fastForward(m.maxCycles, m.scanEnd, &m.emptyCycles)
	}
	return false, nil
}

// StepCycles advances the collection until at least n more clock cycles
// have elapsed (fast-forward jumps may overshoot), the collection
// terminates, or an error occurs.
func (m *Machine) StepCycles(n int64) (done bool, err error) {
	target := m.cycle + n
	for m.cycle < target {
		done, err = m.StepCycle()
		if done || err != nil {
			return done, err
		}
	}
	return false, nil
}

// FinishCollect completes a terminated collection: it validates the final
// free pointer, flips the heap, and returns the collection statistics.
func (m *Machine) FinishCollect() (Stats, error) {
	if m.phase != phaseDone {
		if m.err != nil {
			return Stats{}, m.err
		}
		return Stats{}, fmt.Errorf("machine: FinishCollect before the collection terminated")
	}
	h := m.heap
	to := h.OtherSpace()
	base := h.Base(to)
	limit := h.Limit(to)

	finalFree := m.sb.Free()
	if finalFree > limit {
		return Stats{}, fmt.Errorf("machine: free pointer %d overran tospace limit %d", finalFree, limit)
	}

	st := Stats{
		Cycles:              m.cycle + m.cfg.ShutdownCycles,
		EmptyWorklistCycles: m.emptyCycles,
		PerCore:             make([]CoreStats, m.cfg.Cores),
		FIFODrops:           m.fifoDrops,
		FIFOMaxDepth:        m.fifo.maxDepth,
		HeaderCacheHits:     m.hc.hits,
		HeaderCacheMisses:   m.hc.misses,
		FinalFree:           finalFree,
		LiveWords:           int64(finalFree - base),
		Mem:                 m.mem.Stats(),
		Sync:                m.sb.Stats(),
		Config:              m.cfg,
	}
	if m.scanStart >= 0 && m.scanEnd >= m.scanStart {
		st.ScanCycles = m.scanEnd - m.scanStart
	}
	for i, c := range m.cores {
		st.PerCore[i] = c.stats
		st.LiveObjects += c.stats.ObjectsScanned
	}

	if m.mut != nil {
		ms := m.mut.stats
		if m.scanEnd >= 0 {
			last := m.lastWork
			if last < m.scanStart {
				last = m.scanStart
			}
			ms.MarkTermCycles = m.scanEnd - last
		}
		m.countFloating(&ms, base, finalFree)
		m.mut.stats = ms
		st.Mutator = &ms
	}

	h.FinishCycle(finalFree)
	m.phase = phaseIdle
	return st, nil
}

// countFloating attributes floating garbage to the write barrier: shaded
// objects that end the cycle unreachable from both the roots and the
// mutator's registers survived only because the barrier retained them. The
// walk is untimed bookkeeping over the (not yet flipped) tospace image.
func (m *Machine) countFloating(ms *MutatorStats, base, finalFree object.Addr) {
	if len(m.mut.shaded) == 0 {
		return
	}
	h := m.heap
	reach := make(map[object.Addr]bool)
	var stack []object.Addr
	push := func(a object.Addr) {
		if a != object.NilPtr && a >= base && a < finalFree && !reach[a] {
			reach[a] = true
			stack = append(stack, a)
		}
	}
	for i := 0; i < h.NumRoots(); i++ {
		push(h.Root(i))
	}
	for _, r := range m.mut.regs {
		push(r)
	}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		hd := h.Header(a)
		for i := 0; i < hd.Pi; i++ {
			push(h.Ptr(a, i))
		}
	}
	for _, s := range m.mut.shaded {
		if s >= base && s < finalFree && !reach[s] {
			hd := h.Header(s)
			ms.FloatingObjects++
			ms.FloatingWords += int64(object.Size(hd.Pi, hd.Delta))
		}
	}
}

// Resume drives a restored (or suspended) collection to completion and
// returns its statistics, exactly as the tail of Collect would have.
func (m *Machine) Resume() (Stats, error) {
	for {
		done, err := m.StepCycle()
		if err != nil {
			return Stats{}, err
		}
		if done {
			break
		}
	}
	return m.FinishCollect()
}

// allDone reports whether every core has detected termination.
func (m *Machine) allDone() bool {
	return m.doneCount == m.cfg.Cores
}

// coreStateName maps micro-states to short names for traces.
func coreStateName(s coreState) string {
	switch s {
	case sIdle:
		return "idle"
	case sStartup:
		return "startup"
	case sRoots:
		return "roots"
	case sGrabScan:
		return "grab-scan"
	case sScanHdrIssue, sScanHdrWait:
		return "scan-hdr"
	case sPtrLoad, sPtrLoadWait:
		return "ptr-load"
	case sChildPeekIssue, sChildPeekWait:
		return "peek"
	case sChildLock:
		return "hdr-lock"
	case sChildHdrIssue, sChildHdrWait:
		return "child-hdr"
	case sFreeAcquire:
		return "free-lock"
	case sEvacGrayStore, sEvacFwdStore:
		return "evacuate"
	case sPtrStore:
		return "ptr-store"
	case sDataLoad, sDataWait, sDataStore:
		return "copy-data"
	case sBlacken:
		return "blacken"
	case sDone:
		return "done"
	default:
		return "?"
	}
}
