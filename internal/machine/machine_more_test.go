package machine

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hwgc/internal/gcalgo"
	"hwgc/internal/heap"
	"hwgc/internal/object"
	"hwgc/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	h := heap.New(64)
	for _, cfg := range []Config{
		{Cores: -1},
		{Cores: MaxCores + 1},
		{Cores: 1, MemLatency: -1},
		{Cores: 1, FIFOCapacity: -1},
	} {
		if _, err := New(h, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := New(h, Config{}); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Cores != 1 || c.FIFOCapacity != DefaultFIFOCapacity ||
		c.StartupCycles != DefaultStartupCycles || c.ShutdownCycles != DefaultShutdownCycles {
		t.Fatalf("defaults wrong: %+v", c)
	}
	c = Config{StartupCycles: -1, ShutdownCycles: -1}.WithDefaults()
	if c.StartupCycles != 0 || c.ShutdownCycles != 0 {
		t.Fatalf("negative overrides wrong: %+v", c)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		spec, _ := workload.Get("jlisp")
		h, err := spec.Plan(1, 99).BuildHeap(2.0)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(h, Config{Cores: 8})
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Collect()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("simulation not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestEmptyRootSetTerminatesImmediately(t *testing.T) {
	h := heap.New(128)
	_, _ = h.Alloc(0, 5) // garbage only
	h.AddRoot(object.NilPtr)
	m, _ := New(h, Config{Cores: 4})
	st, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveObjects != 0 || st.LiveWords != 0 {
		t.Fatalf("collected something from an empty root set: %+v", st)
	}
	if h.UsedWords() != 0 {
		t.Fatalf("tospace not empty: %d words", h.UsedWords())
	}
}

func TestDuplicateAndSharedRoots(t *testing.T) {
	h := heap.New(128)
	a, _ := h.Alloc(1, 1)
	b, _ := h.Alloc(0, 1)
	h.SetPtr(a, 0, b)
	h.AddRoot(a)
	h.AddRoot(a) // duplicate
	h.AddRoot(b) // shared with a's child
	before, _ := gcalgo.Snapshot(h)
	m, _ := New(h, Config{Cores: 4})
	st, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveObjects != 2 {
		t.Fatalf("live objects = %d, want 2", st.LiveObjects)
	}
	if err := gcalgo.VerifyCollection(before, h); err != nil {
		t.Fatal(err)
	}
	if h.Root(0) != h.Root(1) {
		t.Fatal("duplicate roots forwarded differently")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	spec, _ := workload.Get("jlisp")
	h, _ := spec.Plan(1, 1).BuildHeap(2.0)
	m, _ := New(h, Config{Cores: 2, MaxCycles: 10})
	if _, err := m.Collect(); err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("livelock guard did not fire: %v", err)
	}
}

func TestTospaceOverflowFails(t *testing.T) {
	// Corrupt a live header to a huge size: evacuation must detect that the
	// free pointer would overrun tospace.
	h := heap.New(64)
	a, _ := h.Alloc(1, 1)
	b, _ := h.Alloc(0, 1)
	h.SetPtr(a, 0, b)
	h.AddRoot(a)
	h.Mem()[b] = object.Header{Pi: 0, Delta: object.MaxDelta}.Encode()
	m, _ := New(h, Config{Cores: 2})
	if _, err := m.Collect(); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflow undetected: %v", err)
	}
}

func TestOptionMatrixAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("option matrix is slow")
	}
	opts := []Config{
		{Cores: 16, OptUnlockedMarkRead: true},
		{Cores: 16, HeaderCacheLines: 256},
		{Cores: 16, HeaderCacheLines: 1, OptUnlockedMarkRead: true},
		{Cores: 16, DisableFIFO: true},
		{Cores: 16, FIFOCapacity: 8},
		{Cores: 16, ExtraMemLatency: 20},
		{Cores: 16, MemBandwidth: 1},
		{Cores: 16, MemStoreQueueDepth: 1},
		{Cores: 3},  // odd core counts
		{Cores: 64}, // beyond the prototype
		{Cores: 16, StartupCycles: -1, ShutdownCycles: -1},
	}
	for _, name := range workload.Names() {
		for i, cfg := range opts {
			spec, _ := workload.Get(name)
			h, err := spec.Plan(1, 42).BuildHeap(2.0)
			if err != nil {
				t.Fatal(err)
			}
			before, err := gcalgo.Snapshot(h)
			if err != nil {
				t.Fatal(err)
			}
			m, err := New(h, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Collect(); err != nil {
				t.Fatalf("%s opts[%d]: %v", name, i, err)
			}
			if err := gcalgo.VerifyCollection(before, h); err != nil {
				t.Fatalf("%s opts[%d]: %v", name, i, err)
			}
		}
	}
}

// TestMachineEquivalenceQuick is the central property test: for random
// object graphs (with cycles, self-loops, sharing and garbage), a simulated
// parallel collection at a random core count is indistinguishable from the
// reference collector.
func TestMachineEquivalenceQuick(t *testing.T) {
	f := func(seed int64, coresRaw uint8, markOpt, smallFIFO bool) bool {
		rng := rand.New(rand.NewSource(seed))
		plan := &workload.Plan{}
		n := 2 + rng.Intn(120)
		entry := plan.RandomGraph(rng, n, 4, 5)
		plan.AddRoot(entry)
		if rng.Intn(2) == 0 {
			plan.AddRoot(rng.Intn(n))
		}
		plan.AddRoot(-1)
		plan.FillData(rng)

		h, err := plan.BuildHeap(2.0)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		before, err := gcalgo.Snapshot(h)
		if err != nil {
			t.Logf("snapshot: %v", err)
			return false
		}
		cfg := Config{
			Cores:               1 + int(coresRaw)%16,
			OptUnlockedMarkRead: markOpt,
		}
		if smallFIFO {
			cfg.FIFOCapacity = 2
			cfg.HeaderCacheLines = 32 // exercise the cache together with FIFO misses
		}
		m, err := New(h, cfg)
		if err != nil {
			t.Logf("new: %v", err)
			return false
		}
		st, err := m.Collect()
		if err != nil {
			t.Logf("collect: %v", err)
			return false
		}
		if err := gcalgo.VerifyCollection(before, h); err != nil {
			t.Logf("verify (seed %d cores %d): %v", seed, cfg.Cores, err)
			return false
		}
		sum := st.Sum()
		if sum.ObjectsScanned != sum.ObjectsEvacuated || st.LiveObjects != sum.ObjectsScanned {
			t.Logf("work accounting inconsistent: %+v", sum)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedCollections runs many consecutive GC cycles over the same
// heap, alternating semispaces, verifying each one.
func TestRepeatedCollections(t *testing.T) {
	spec, _ := workload.Get("jlisp")
	h, err := spec.Plan(1, 5).BuildHeap(2.5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(h, Config{Cores: 8})
	if err != nil {
		t.Fatal(err)
	}
	var prevLive int64 = -1
	for i := 0; i < 6; i++ {
		before, err := gcalgo.Snapshot(h)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		st, err := m.Collect()
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := gcalgo.VerifyCollection(before, h); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if prevLive >= 0 && st.LiveObjects != prevLive {
			t.Fatalf("cycle %d: live objects changed %d -> %d with no mutation", i, prevLive, st.LiveObjects)
		}
		prevLive = st.LiveObjects
	}
}

// TestStatsInvariants checks the bookkeeping identities that must hold for
// any collection.
func TestStatsInvariants(t *testing.T) {
	st := collectAndVerify(t, "db", Config{Cores: 16})
	sum := st.Sum()
	// Every live object contributes its copied body words plus the two
	// header words of its tospace frame.
	if st.LiveWords != sum.WordsCopied+int64(object.HeaderWords)*st.LiveObjects {
		t.Errorf("live words %d != body words %d + headers of %d objects",
			st.LiveWords, sum.WordsCopied, st.LiveObjects)
	}
	if sum.FIFOHits+sum.FIFOMisses != sum.ObjectsScanned {
		t.Errorf("FIFO hit+miss %d != objects scanned %d", sum.FIFOHits+sum.FIFOMisses, sum.ObjectsScanned)
	}
	if st.Cycles <= st.ScanCycles {
		t.Errorf("total cycles %d not greater than scan cycles %d", st.Cycles, st.ScanCycles)
	}
	if st.EmptyWorklistCycles > st.Cycles {
		t.Errorf("empty cycles exceed total")
	}
	if st.Mem.Accepted[0]+st.Mem.Accepted[1]+st.Mem.Accepted[2]+st.Mem.Accepted[3] != st.Mem.TotalRequests {
		t.Errorf("memory requests lost: %+v", st.Mem)
	}
}

// TestSingleCoreMatchesSequentialWork checks the paper's claim that the
// 1-core configuration performs like the sequential implementation: its
// stall profile must show zero lock contention.
func TestSingleCoreMatchesSequentialWork(t *testing.T) {
	st := collectAndVerify(t, "javac", Config{Cores: 1})
	sum := st.Sum()
	if sum.ScanLockStall != 0 || sum.FreeLockStall != 0 || sum.HeaderLockStall != 0 {
		t.Errorf("single core suffered lock contention: %+v", sum)
	}
	if st.Sync.ScanConflicts != 0 || st.Sync.FreeConflicts != 0 || st.Sync.HeaderConflicts != 0 {
		t.Errorf("single core recorded conflicts: %+v", st.Sync)
	}
}

// TestHeaderCacheReducesLoads checks the Section VII extension: with hub
// traffic (javac), a header cache absorbs the repeated forwarding-pointer
// loads and shortens the collection.
func TestHeaderCacheReducesLoads(t *testing.T) {
	without := collectAndVerify(t, "javac", Config{Cores: 16})
	with := collectAndVerify(t, "javac", Config{Cores: 16, HeaderCacheLines: 4096})
	if with.HeaderCacheHits == 0 {
		t.Fatal("cache never hit")
	}
	if with.Cycles >= without.Cycles {
		t.Errorf("header cache did not help javac: %d vs %d cycles", with.Cycles, without.Cycles)
	}
	memWith := with.Mem.Accepted[0] // header loads reaching memory
	memWithout := without.Mem.Accepted[0]
	if memWith >= memWithout {
		t.Errorf("header loads to memory not reduced: %d vs %d", memWith, memWithout)
	}
}

// TestHeaderCacheConsistency: a tiny, eviction-heavy cache must never break
// correctness (the cache is write-through and always at least as new as
// memory).
func TestHeaderCacheConsistency(t *testing.T) {
	for _, lines := range []int{1, 2, 8} {
		collectAndVerify(t, "javac", Config{Cores: 16, HeaderCacheLines: lines})
		collectAndVerify(t, "cup", Config{Cores: 8, HeaderCacheLines: lines})
	}
}

// TestStrideEquivalence verifies the Section VII stride extension against
// the oracle on every benchmark, with stride sizes from pathological to
// cache-line-like.
func TestStrideEquivalence(t *testing.T) {
	for _, stride := range []int{1, 3, 16, 64} {
		for _, bench := range []string{"blob", "jlisp", "javac", "cup"} {
			cfg := Config{Cores: 16, StrideWords: stride}
			collectAndVerify(t, bench, cfg)
		}
	}
}

// TestStrideQuick: random graphs under stride mode.
func TestStrideQuick(t *testing.T) {
	f := func(seed int64, coresRaw, strideRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		plan := &workload.Plan{}
		n := 2 + rng.Intn(80)
		entry := plan.RandomGraph(rng, n, 4, 9)
		plan.AddRoot(entry)
		plan.FillData(rng)
		h, err := plan.BuildHeap(2.0)
		if err != nil {
			return false
		}
		before, err := gcalgo.Snapshot(h)
		if err != nil {
			return false
		}
		cfg := Config{Cores: 1 + int(coresRaw)%16, StrideWords: 1 + int(strideRaw)%12}
		m, err := New(h, cfg)
		if err != nil {
			return false
		}
		if _, err := m.Collect(); err != nil {
			t.Logf("collect: %v", err)
			return false
		}
		if err := gcalgo.VerifyCollection(before, h); err != nil {
			t.Logf("verify (seed %d, %+v): %v", seed, cfg, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestStrideRestoresBlobScaling asserts the extension's purpose: blob does
// not scale at object granularity but does with strides.
func TestStrideRestoresBlobScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("blob sweep is slow")
	}
	cycles := func(cores, stride int) int64 {
		st := collectAndVerify(t, "blob", Config{Cores: cores, StrideWords: stride})
		return st.Cycles
	}
	base := cycles(1, 0)
	objGrain := float64(base) / float64(cycles(16, 0))
	strideGrain := float64(cycles(1, 64)) / float64(cycles(16, 64))
	// At object granularity the speedup is bounded by the object count
	// (six blobs plus the directory); strides lift the bound.
	if objGrain > 6.8 {
		t.Errorf("blob scales %.2fx at object granularity; should be capped near its object count", objGrain)
	}
	if strideGrain < 1.5*objGrain {
		t.Errorf("strides scale %.2fx vs object-level %.2fx; want a clear win", strideGrain, objGrain)
	}
}

// TestBankModelCorrect verifies collections under the DRAM bank model and
// that conflicts slow the collection down (more contention, same result).
func TestBankModelCorrect(t *testing.T) {
	free := collectAndVerify(t, "db", Config{Cores: 16})
	banked := collectAndVerify(t, "db", Config{Cores: 16, MemBanks: 4, MemBankBusy: 4})
	if banked.Mem.BankConflicts == 0 {
		t.Fatal("no bank conflicts recorded at 16 cores over 4 banks")
	}
	if banked.Cycles <= free.Cycles {
		t.Errorf("bank conflicts did not cost anything: %d vs %d cycles", banked.Cycles, free.Cycles)
	}
}
