package machine

import (
	"testing"

	"hwgc/internal/gcalgo"
	"hwgc/internal/workload"
)

// collectAndVerify runs one simulated collection on a fresh heap built from
// the named benchmark and checks it against the reference oracle.
func collectAndVerify(t *testing.T, bench string, cfg Config) Stats {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	plan := spec.Plan(1, 42)
	h, err := plan.BuildHeap(2.0)
	if err != nil {
		t.Fatalf("building heap: %v", err)
	}
	before, err := gcalgo.Snapshot(h)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	m, err := New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Collect()
	if err != nil {
		t.Fatalf("collect(%s, %d cores): %v", bench, cfg.Cores, err)
	}
	if err := gcalgo.VerifyCollection(before, h); err != nil {
		t.Fatalf("verify(%s, %d cores): %v", bench, cfg.Cores, err)
	}
	liveObj, liveWords := plan.LiveStats()
	if st.LiveObjects != int64(liveObj) {
		t.Errorf("%s: live objects = %d, plan says %d", bench, st.LiveObjects, liveObj)
	}
	if st.LiveWords != int64(liveWords) {
		t.Errorf("%s: live words = %d, plan says %d", bench, st.LiveWords, liveWords)
	}
	return st
}

func TestCollectAllBenchmarksAllCores(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark × core matrix is slow")
	}
	for _, name := range workload.Names() {
		for _, cores := range []int{1, 2, 4, 8, 16} {
			name, cores := name, cores
			t.Run(name+"/"+itoa(cores), func(t *testing.T) {
				collectAndVerify(t, name, Config{Cores: cores})
			})
		}
	}
}

func TestCollectSmoke(t *testing.T) {
	st := collectAndVerify(t, "jlisp", Config{Cores: 4})
	if st.Cycles <= 0 {
		t.Fatalf("no cycles recorded")
	}
	sum := st.Sum()
	if sum.ObjectsScanned != sum.ObjectsEvacuated {
		t.Errorf("scanned %d != evacuated %d", sum.ObjectsScanned, sum.ObjectsEvacuated)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
