package machine

import (
	"fmt"

	"hwgc/internal/heap"
	"hwgc/internal/mem"
	"hwgc/internal/object"
	"hwgc/internal/syncblock"
)

// State is the complete state of a Machine suspended between two clock
// cycles of a collection: the heap image, the synchronization block, the
// memory scheduler with its in-flight transactions, every core's register
// file and micro-state, the header FIFO and cache, the stride table, and
// the cycle-loop bookkeeping. A Machine restored from a State steps exactly
// as the original would have — Stats and final heap image are bit-identical
// to the uninterrupted run.
//
// State is plain data (no cross-references into a live machine); the
// snapshot package serializes it.
type State struct {
	Config Config
	Heap   *heap.State
	Mem    *mem.State
	Sync   *syncblock.State

	Cycle       int64
	MaxCycles   int64
	ScanStart   int64
	ScanEnd     int64
	EmptyCycles int64
	FIFODrops   int64
	FFJumps     int64
	FFSkipped   int64

	ScanFrameValid bool
	ScanFrameHdr   object.Word
	ScanOff        int
	MutStarted     bool
	NoFastForward  bool

	Cores       []CoreState
	FIFO        FIFOState
	HeaderCache HeaderCacheState
	Strides     []StrideEntryState

	// Mut is the built-in concurrent mutator's port; nil in stop-the-world
	// mode. Only the config-driven churn mutator is capturable — an external
	// CollectConcurrent driver's program state lives outside the machine.
	Mut *MutState
}

// MutState is the register file, micro-state, write-barrier state and churn
// PRNG of the built-in concurrent mutator.
type MutState struct {
	Regs     []object.Addr
	LastData object.Word
	St       int
	Op       MutOp
	Seq      int64
	WaitLeft int
	OpStart  int64

	AllocBase object.Addr
	InitIdx   int

	ShadeTarget object.Addr
	Shaded      []object.Addr

	Stats MutatorStats

	ChurnRng    uint64
	ChurnAllocs int64
	LastWork    int64
}

// CoreState is the register file and micro-state of one GC core.
type CoreState struct {
	St          int
	ObjTo       object.Addr
	Backlink    object.Addr
	Attrs       object.Word
	Pi          int
	Delta       int
	BodyPos     int
	BodyEnd     int
	DataWord    object.Word
	ChildPtr    object.Addr
	ChildHdr    object.Word
	NewPtr      object.Addr
	EvacAddr    object.Addr
	GrayHdr     object.Word
	RootIdx     int
	InRoots     bool
	StartupLeft int64
	SleepUntil  int64
	Stats       CoreStats
}

// FIFOState is the header FIFO's live entries (head first) and counters.
type FIFOState struct {
	Entries  []FIFOEntryState
	Hits     int64
	Misses   int64
	Drops    int64
	MaxDepth int
}

// FIFOEntryState is one buffered gray header.
type FIFOEntryState struct {
	Addr object.Addr
	Hdr  object.Word
}

// HeaderCacheState is the header cache's lines and counters. Lines is empty
// when the cache is disabled.
type HeaderCacheState struct {
	Lines  []HeaderCacheLineState
	Hits   int64
	Misses int64
}

// HeaderCacheLineState is one direct-mapped cache line.
type HeaderCacheLineState struct {
	Valid bool
	Addr  object.Addr
	Data  object.Word
}

// StrideEntryState is one stride-table CAM entry.
type StrideEntryState struct {
	Used        bool
	ObjTo       object.Addr
	Attrs       object.Word
	Outstanding int
	Final       bool
}

// Heap exposes the heap the machine collects (snapshot and tests).
func (m *Machine) Heap() *heap.Heap { return m.heap }

// Snapshot captures the machine's complete state between two clock cycles
// of a running collection. It fails when no collection is in progress (the
// machine state is then not self-contained), when the collection has
// already failed, or in concurrent-mutator mode (the mutator's untimed
// program state lives outside the machine).
func (m *Machine) Snapshot() (*State, error) {
	if m.phase != phaseRunning {
		return nil, fmt.Errorf("machine: Snapshot outside a running collection")
	}
	if m.err != nil {
		return nil, fmt.Errorf("machine: Snapshot of a failed collection: %w", m.err)
	}
	if m.mut != nil && !m.mutBuiltin {
		return nil, fmt.Errorf("machine: Snapshot unsupported with an external mutator driver")
	}
	st := &State{
		Config: m.cfg,
		Heap:   m.heap.CaptureState(),
		Mem:    m.mem.CaptureState(),
		Sync:   m.sb.CaptureState(),

		Cycle:       m.cycle,
		MaxCycles:   m.maxCycles,
		ScanStart:   m.scanStart,
		ScanEnd:     m.scanEnd,
		EmptyCycles: m.emptyCycles,
		FIFODrops:   m.fifoDrops,
		FFJumps:     m.ffJumps,
		FFSkipped:   m.ffSkipped,

		ScanFrameValid: m.scanFrameValid,
		ScanFrameHdr:   m.scanFrameHdr,
		ScanOff:        m.scanOff,
		MutStarted:     m.mutStarted,
		NoFastForward:  m.NoFastForward,

		Cores: make([]CoreState, len(m.coreBuf)),
	}
	for i := range m.coreBuf {
		c := &m.coreBuf[i]
		st.Cores[i] = CoreState{
			St:          int(c.st),
			ObjTo:       c.objTo,
			Backlink:    c.backlink,
			Attrs:       c.attrs,
			Pi:          c.pi,
			Delta:       c.delta,
			BodyPos:     c.bodyPos,
			BodyEnd:     c.bodyEnd,
			DataWord:    c.dataWord,
			ChildPtr:    c.childPtr,
			ChildHdr:    c.childHdr,
			NewPtr:      c.newPtr,
			EvacAddr:    c.evacAddr,
			GrayHdr:     c.grayHdr,
			RootIdx:     c.rootIdx,
			InRoots:     c.inRoots,
			StartupLeft: c.startupLeft,
			SleepUntil:  c.sleepUntil,
			Stats:       c.stats,
		}
	}
	f := m.fifo
	st.FIFO = FIFOState{Hits: f.hits, Misses: f.misses, Drops: f.drops, MaxDepth: f.maxDepth}
	for _, e := range f.entries[f.head:] {
		st.FIFO.Entries = append(st.FIFO.Entries, FIFOEntryState{Addr: e.addr, Hdr: e.hdr})
	}
	st.HeaderCache = HeaderCacheState{Hits: m.hc.hits, Misses: m.hc.misses}
	for _, l := range m.hc.lines {
		st.HeaderCache.Lines = append(st.HeaderCache.Lines, HeaderCacheLineState{
			Valid: l.valid, Addr: l.addr, Data: l.data,
		})
	}
	if m.strides != nil {
		for _, e := range m.strides.entries {
			st.Strides = append(st.Strides, StrideEntryState{
				Used: e.used, ObjTo: e.objTo, Attrs: e.attrs,
				Outstanding: e.outstanding, Final: e.final,
			})
		}
	}
	if u := m.mut; u != nil {
		ms := &MutState{
			Regs:        append([]object.Addr(nil), u.regs...),
			LastData:    u.lastData,
			St:          int(u.st),
			Op:          u.op,
			Seq:         u.seq,
			WaitLeft:    u.waitLeft,
			OpStart:     u.opStart,
			AllocBase:   u.allocBase,
			InitIdx:     u.initIdx,
			ShadeTarget: u.shadeTarget,
			Shaded:      append([]object.Addr(nil), u.shaded...),
			Stats:       u.stats,
			ChurnRng:    u.churn.rng,
			ChurnAllocs: u.churn.allocs,
			LastWork:    m.lastWork,
		}
		st.Mut = ms
	}
	return st, nil
}

// RestoreMachine reconstructs a machine mid-collection from a captured
// state. The state's Config is the capturing machine's *effective* config
// and is used verbatim (WithDefaults is not re-applied — it is not
// idempotent for explicit zero values). The restored machine is driven to
// completion with Resume, or stepped and re-snapshotted like any other.
func RestoreMachine(st *State) (*Machine, error) {
	if st == nil {
		return nil, fmt.Errorf("machine: nil state")
	}
	cfg := st.Config
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("machine: snapshot config: %w", err)
	}
	if len(st.Cores) != cfg.Cores {
		return nil, fmt.Errorf("machine: snapshot has %d cores, config says %d", len(st.Cores), cfg.Cores)
	}
	h, err := heap.FromState(st.Heap)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:  cfg,
		heap: h,
		mem:  mem.New(h.Mem(), memConfig(cfg)),
		sb:   syncblock.New(cfg.Cores),
		fifo: newHeaderFIFO(cfg.FIFOCapacity, cfg.DisableFIFO),
		hc:   newHeaderCache(cfg.HeaderCacheLines),
	}
	if cfg.StrideWords > 0 {
		m.strides = newStrideTable(cfg.Cores)
	}
	ports := cfg.Cores
	if st.Mut != nil {
		ports++ // the restored mutator keeps its own memory ports
	}
	m.mem.AttachCores(ports)
	if cfg.NUMADomains > 0 && cfg.NUMAPlacement == PlacementLocal {
		// Re-derive the locality-aware tospace window exactly as
		// BeginCollect does; it is config + heap state, not snapshot state.
		m.mem.SetLocalWindow(h.Base(h.OtherSpace()), h.Limit(h.OtherSpace()))
	}
	if err := m.mem.RestoreState(st.Mem); err != nil {
		return nil, err
	}
	if st.Sync == nil {
		return nil, fmt.Errorf("machine: snapshot missing sync state")
	}
	if err := m.sb.RestoreState(st.Sync); err != nil {
		return nil, err
	}

	m.coreBuf = make([]core, cfg.Cores)
	m.cores = make([]*core, cfg.Cores)
	m.ffKinds = make([]ffStall, cfg.Cores)
	m.doneCount = 0
	for i := range st.Cores {
		s := &st.Cores[i]
		if s.St < int(sIdle) || s.St > int(sDone) {
			return nil, fmt.Errorf("machine: snapshot core %d in unknown state %d", i, s.St)
		}
		if s.InRoots && (s.RootIdx < 0 || s.RootIdx > h.NumRoots()) {
			return nil, fmt.Errorf("machine: snapshot core %d root index %d out of range", i, s.RootIdx)
		}
		c := &m.coreBuf[i]
		*c = core{
			id:          i,
			m:           m,
			st:          coreState(s.St),
			objTo:       s.ObjTo,
			backlink:    s.Backlink,
			attrs:       s.Attrs,
			pi:          s.Pi,
			delta:       s.Delta,
			bodyPos:     s.BodyPos,
			bodyEnd:     s.BodyEnd,
			dataWord:    s.DataWord,
			childPtr:    s.ChildPtr,
			childHdr:    s.ChildHdr,
			newPtr:      s.NewPtr,
			evacAddr:    s.EvacAddr,
			grayHdr:     s.GrayHdr,
			rootIdx:     s.RootIdx,
			inRoots:     s.InRoots,
			startupLeft: s.StartupLeft,
			sleepUntil:  s.SleepUntil,
			stats:       s.Stats,
		}
		if c.st == sDone {
			m.doneCount++
		}
		m.cores[i] = c
	}

	m.fifo.Reset()
	for _, e := range st.FIFO.Entries {
		m.fifo.entries = append(m.fifo.entries, fifoEntry{addr: e.Addr, hdr: e.Hdr})
	}
	if !m.fifo.disabled && m.fifo.Len() > m.fifo.cap {
		return nil, fmt.Errorf("machine: snapshot FIFO holds %d entries, capacity %d", m.fifo.Len(), m.fifo.cap)
	}
	m.fifo.hits = st.FIFO.Hits
	m.fifo.misses = st.FIFO.Misses
	m.fifo.drops = st.FIFO.Drops
	m.fifo.maxDepth = st.FIFO.MaxDepth

	if len(st.HeaderCache.Lines) != len(m.hc.lines) {
		return nil, fmt.Errorf("machine: snapshot header cache has %d lines, config builds %d",
			len(st.HeaderCache.Lines), len(m.hc.lines))
	}
	for i, l := range st.HeaderCache.Lines {
		m.hc.lines[i] = headerCacheLine{valid: l.Valid, addr: l.Addr, data: l.Data}
	}
	m.hc.hits = st.HeaderCache.Hits
	m.hc.misses = st.HeaderCache.Misses

	if m.strides != nil {
		if len(st.Strides) != len(m.strides.entries) {
			return nil, fmt.Errorf("machine: snapshot stride table has %d entries, config builds %d",
				len(st.Strides), len(m.strides.entries))
		}
		for i, e := range st.Strides {
			m.strides.entries[i] = strideEntry{
				used: e.Used, objTo: e.ObjTo, attrs: e.Attrs,
				outstanding: e.Outstanding, final: e.Final,
			}
		}
	} else if len(st.Strides) > 0 {
		return nil, fmt.Errorf("machine: snapshot has stride state but strides are disabled")
	}

	if s := st.Mut; s != nil {
		if cfg.MutatorOps <= 0 {
			return nil, fmt.Errorf("machine: snapshot has mutator state but the config enables no built-in mutator")
		}
		if len(s.Regs) != MutatorRegisters {
			return nil, fmt.Errorf("machine: snapshot mutator has %d registers, want %d", len(s.Regs), MutatorRegisters)
		}
		if s.St < int(muWait) || s.St > int(muShadeWait) {
			return nil, fmt.Errorf("machine: snapshot mutator in unknown state %d", s.St)
		}
		ch := newChurnState(h, cfg)
		ch.rng = s.ChurnRng
		ch.allocs = s.ChurnAllocs
		u := newMutCore(m, ch.drive, cfg.MutatorPeriod)
		u.churn = ch
		copy(u.regs, s.Regs)
		u.lastData = s.LastData
		u.st = mutState(s.St)
		u.op = s.Op
		u.seq = s.Seq
		u.waitLeft = s.WaitLeft
		u.opStart = s.OpStart
		u.allocBase = s.AllocBase
		u.initIdx = s.InitIdx
		u.shadeTarget = s.ShadeTarget
		u.shaded = append([]object.Addr(nil), s.Shaded...)
		for _, a := range u.shaded {
			if u.shadedSet == nil {
				u.shadedSet = make(map[object.Addr]bool, len(u.shaded))
			}
			u.shadedSet[a] = true
		}
		u.stats = s.Stats
		m.mut = u
		m.mutBuiltin = true
		m.lastWork = s.LastWork
	} else if cfg.MutatorOps > 0 {
		return nil, fmt.Errorf("machine: config enables the built-in mutator but the snapshot has no mutator state")
	}

	m.scanFrameValid = st.ScanFrameValid
	m.scanFrameHdr = st.ScanFrameHdr
	m.scanOff = st.ScanOff
	m.mutStarted = st.MutStarted
	m.cycle = st.Cycle
	m.fifoDrops = st.FIFODrops
	m.toLimit = h.Limit(h.OtherSpace())
	m.maxCycles = st.MaxCycles
	if m.maxCycles <= 0 {
		return nil, fmt.Errorf("machine: snapshot livelock bound %d not positive", m.maxCycles)
	}
	m.scanStart = st.ScanStart
	m.scanEnd = st.ScanEnd
	m.emptyCycles = st.EmptyCycles
	m.ffJumps = st.FFJumps
	m.ffSkipped = st.FFSkipped
	m.NoFastForward = st.NoFastForward
	m.microSleep = !m.NoFastForward && m.mut == nil && cfg.L1Sets == 0 // no probe on a fresh restore
	m.phase = phaseRunning
	return m, nil
}
