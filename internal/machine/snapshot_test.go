package machine

import (
	"fmt"
	"reflect"
	"testing"

	"hwgc/internal/heap"
	"hwgc/internal/object"
	"hwgc/internal/workload"
)

// buildBench builds a fresh heap from the named workload.
func buildBench(t *testing.T, bench string, scale int) *heap.Heap {
	t.Helper()
	spec, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	h, err := spec.Plan(scale, 42).BuildHeap(2.0)
	if err != nil {
		t.Fatalf("building heap: %v", err)
	}
	return h
}

// referenceRun collects an identical heap uninterrupted and returns the
// stats plus the final heap image.
func referenceRun(t *testing.T, bench string, cfg Config) (Stats, *heap.Heap) {
	t.Helper()
	h := buildBench(t, bench, 1)
	m, err := New(h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Collect()
	if err != nil {
		t.Fatalf("reference collect: %v", err)
	}
	return st, h
}

// assertSameOutcome checks bit-identity of stats and heap image.
func assertSameOutcome(t *testing.T, label string, want Stats, wantHeap *heap.Heap, got Stats, gotHeap *heap.Heap) {
	t.Helper()
	if diffs := want.DiffFields(&got); len(diffs) > 0 {
		t.Errorf("%s: stats differ: %v", label, diffs)
	}
	if !reflect.DeepEqual(wantHeap.Mem(), gotHeap.Mem()) {
		t.Errorf("%s: heap images differ", label)
	}
	if !reflect.DeepEqual(wantHeap.Roots(), gotHeap.Roots()) {
		t.Errorf("%s: root sets differ", label)
	}
	if wantHeap.AllocPtr() != gotHeap.AllocPtr() {
		t.Errorf("%s: alloc pointers differ: %d vs %d", label, wantHeap.AllocPtr(), gotHeap.AllocPtr())
	}
}

// TestSnapshotRoundTrip suspends a collection at a checkpoint cycle,
// snapshots, restores into a fresh machine, and requires both the restored
// machine and the suspended original to finish bit-identically to an
// uninterrupted run.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Cores: 4}
	want, wantHeap := referenceRun(t, "jlisp", cfg)

	for _, checkpoint := range []int64{1, 7, 100, 1000} {
		t.Run(fmt.Sprintf("cycle%d", checkpoint), func(t *testing.T) {
			h := buildBench(t, "jlisp", 1)
			m, err := New(h, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.BeginCollect()
			done, err := m.StepCycles(checkpoint)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				t.Fatalf("collection finished before checkpoint cycle %d", checkpoint)
			}
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}

			r, err := RestoreMachine(snap)
			if err != nil {
				t.Fatal(err)
			}
			gotR, err := r.Resume()
			if err != nil {
				t.Fatalf("restored resume: %v", err)
			}
			assertSameOutcome(t, "restored", want, wantHeap, gotR, r.Heap())

			gotO, err := m.Resume()
			if err != nil {
				t.Fatalf("original resume: %v", err)
			}
			assertSameOutcome(t, "suspended original", want, wantHeap, gotO, h)
		})
	}
}

// TestSnapshotStateRoundTrip checks that restore reproduces the captured
// state exactly: snapshotting the restored machine yields an identical
// State.
func TestSnapshotStateRoundTrip(t *testing.T) {
	h := buildBench(t, "search", 1)
	m, err := New(h, Config{Cores: 8, HeaderCacheLines: 64, StrideWords: 16})
	if err != nil {
		t.Fatal(err)
	}
	m.BeginCollect()
	if _, err := m.StepCycles(500); err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreMachine(snap)
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, snap2) {
		t.Fatal("snapshot of restored machine differs from the original snapshot")
	}
}

// TestSnapshotAdversarialCycles hunts for checkpoints at the hairiest
// machine states — a core blocked mid-barrier, a held scan/free/header
// lock, pending split-transaction stores — and requires restore to be
// bit-identical from each of them.
func TestSnapshotAdversarialCycles(t *testing.T) {
	cfg := Config{Cores: 8, MemStoreQueueDepth: 1, MemBandwidth: 1}
	bench := "javac"
	want, wantHeap := referenceRun(t, bench, cfg)

	preds := map[string]func(m *Machine) bool{
		"mid-barrier": func(m *Machine) bool {
			arrived := 0
			for _, c := range m.cores {
				if c.st == sIdle {
					arrived++
				}
			}
			return arrived > 0 && arrived < len(m.cores)
		},
		"held-lock": func(m *Machine) bool {
			if m.sb.ScanOwner() >= 0 || m.sb.FreeOwner() >= 0 {
				return true
			}
			for i := 0; i < cfg.Cores; i++ {
				if m.sb.HeaderLockOf(i) != object.NilPtr {
					return true
				}
			}
			return false
		},
		"pending-inflight": func(m *Machine) bool {
			return !m.mem.Drained() && m.mem.LastInflightDoneAt() > m.cycle
		},
	}

	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			h := buildBench(t, bench, 1)
			m, err := New(h, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.NoFastForward = true // step every cycle so the predicate sees all states
			m.BeginCollect()
			var snap *State
			for {
				done, err := m.StepCycle()
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
				if snap == nil && m.cycle > 50 && pred(m) {
					if snap, err = m.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if snap == nil {
				t.Fatalf("predicate %q never matched", name)
			}
			r, err := RestoreMachine(snap)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Resume()
			if err != nil {
				t.Fatalf("resume from %s checkpoint (cycle %d): %v", name, snap.Cycle, err)
			}
			// The reference ran fast-forwarded; the checkpointed run was
			// stepped — stats must still match bit-for-bit (PR 3 invariant)
			// except for the fast-forward bookkeeping itself, which Stats
			// does not include.
			assertSameOutcome(t, name, want, wantHeap, got, r.Heap())
		})
	}
}

// TestSnapshotPhaseErrors checks the Snapshot/Restore guard rails.
func TestSnapshotPhaseErrors(t *testing.T) {
	h := buildBench(t, "jlisp", 1)
	m, err := New(h, Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("Snapshot before BeginCollect should fail")
	}
	if _, err := m.StepCycle(); err == nil {
		t.Fatal("StepCycle before BeginCollect should fail")
	}
	if _, err := m.FinishCollect(); err == nil {
		t.Fatal("FinishCollect before BeginCollect should fail")
	}
	if _, err := m.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("Snapshot after a completed collection should fail")
	}
	if _, err := RestoreMachine(nil); err == nil {
		t.Fatal("RestoreMachine(nil) should fail")
	}
}

// TestAddProbeMultiplexes checks that multiple AddProbe observers and the
// legacy Probe field all fire, in order, every cycle.
func TestAddProbeMultiplexes(t *testing.T) {
	h := buildBench(t, "jlisp", 1)
	m, err := New(h, Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var legacy, a, b int64
	m.Probe = func(cycle int64, _ *Machine) {
		legacy++
		if len(order) < 3 {
			order = append(order, "legacy")
		}
	}
	m.AddProbe(func(cycle int64, _ *Machine) {
		a++
		if len(order) < 3 {
			order = append(order, "a")
		}
	})
	m.AddProbe(func(cycle int64, _ *Machine) { b++ })
	st, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if legacy == 0 || legacy != a || a != b {
		t.Fatalf("probe counts diverge: legacy=%d a=%d b=%d", legacy, a, b)
	}
	// Probes fire after every cycle except the final one.
	if want := st.Cycles - m.cfg.ShutdownCycles - 1; legacy != want {
		t.Fatalf("probes fired %d times, want %d", legacy, want)
	}
	if len(order) != 3 || order[0] != "legacy" || order[1] != "a" || order[2] != "legacy" {
		t.Fatalf("probe order = %v, want legacy,a,legacy", order)
	}
	m.ClearProbes()
	if len(m.probes) != 0 {
		t.Fatal("ClearProbes left observers behind")
	}
}
