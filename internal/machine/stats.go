package machine

import (
	"fmt"
	"reflect"

	"hwgc/internal/mem"
	"hwgc/internal/object"
	"hwgc/internal/syncblock"
)

// CoreStats holds the per-core performance counters corresponding to the
// stall causes of the paper's Table II, plus work counters.
type CoreStats struct {
	// Stall cycles by cause (Table II columns).
	ScanLockStall    int64
	FreeLockStall    int64
	HeaderLockStall  int64
	BodyLoadStall    int64
	BodyStoreStall   int64
	HeaderLoadStall  int64
	HeaderStoreStall int64

	// Work counters.
	ObjectsScanned   int64 // objects this core blackened
	ObjectsEvacuated int64 // objects this core copied out of fromspace
	Strides          int64 // work units dispatched to this core (stride mode)
	StrideTableStall int64 // cycles stalled on a full stride completion table
	PointersSeen     int64 // pointer slots processed (including nil)
	WordsCopied      int64 // body words copied
	FIFOHits         int64
	FIFOMisses       int64
}

// StallTotal returns the sum of all stall cycles.
func (c CoreStats) StallTotal() int64 {
	return c.ScanLockStall + c.FreeLockStall + c.HeaderLockStall +
		c.BodyLoadStall + c.BodyStoreStall + c.HeaderLoadStall + c.HeaderStoreStall
}

// Stats describes one simulated collection cycle.
type Stats struct {
	// Cycles is the duration of the collection cycle in clock cycles,
	// including the startup and shutdown coordination with the main
	// processor. This is the quantity the paper's speedups are computed
	// from.
	Cycles int64
	// ScanCycles is the duration of the parallel scan phase only (after
	// root evacuation, before drain).
	ScanCycles int64
	// EmptyWorklistCycles counts the cycles during which a core seeking
	// work found scan == free, i.e. no gray objects were available for
	// processing (the paper's Table I metric). Cycles where every core is
	// busy scanning are not counted even if the work list is momentarily
	// drained, since no core experiences the emptiness.
	EmptyWorklistCycles int64

	// Per-core counters; index 0 is Core 1 of the paper.
	PerCore []CoreStats

	// FIFO behaviour.
	FIFODrops    int64
	FIFOMaxDepth int

	// Header cache behaviour (Section VII extension; zero when disabled).
	HeaderCacheHits   int64
	HeaderCacheMisses int64

	// Collection outcome.
	LiveObjects int64
	LiveWords   int64
	FinalFree   object.Addr

	// Subsystem counters.
	Mem  mem.Stats
	Sync syncblock.Stats

	// Mutator describes the concurrent mutator's side of the collection;
	// nil in stop-the-world mode. Pointer-with-omitempty keeps the JSON
	// encoding of every stop-the-world Stats unchanged, so old serialized
	// responses decode bit-identically.
	Mutator *MutatorStats `json:",omitempty"`

	Config Config
}

// Sum aggregates the per-core counters.
func (s *Stats) Sum() CoreStats {
	var t CoreStats
	for _, c := range s.PerCore {
		t.ScanLockStall += c.ScanLockStall
		t.FreeLockStall += c.FreeLockStall
		t.HeaderLockStall += c.HeaderLockStall
		t.BodyLoadStall += c.BodyLoadStall
		t.BodyStoreStall += c.BodyStoreStall
		t.HeaderLoadStall += c.HeaderLoadStall
		t.HeaderStoreStall += c.HeaderStoreStall
		t.ObjectsScanned += c.ObjectsScanned
		t.ObjectsEvacuated += c.ObjectsEvacuated
		t.Strides += c.Strides
		t.StrideTableStall += c.StrideTableStall
		t.PointersSeen += c.PointersSeen
		t.WordsCopied += c.WordsCopied
		t.FIFOHits += c.FIFOHits
		t.FIFOMisses += c.FIFOMisses
	}
	return t
}

// Mean returns the per-core mean of the aggregated counters, matching the
// paper's Table II, which lists the mean number of stall cycles per core.
func (s *Stats) Mean() CoreStats {
	t := s.Sum()
	n := int64(len(s.PerCore))
	if n == 0 {
		return t
	}
	t.ScanLockStall /= n
	t.FreeLockStall /= n
	t.HeaderLockStall /= n
	t.BodyLoadStall /= n
	t.BodyStoreStall /= n
	t.HeaderLoadStall /= n
	t.HeaderStoreStall /= n
	return t
}

// DiffFields compares s against o field by field and returns a description
// of every top-level field that differs (per-core differences name the core
// index), or nil when the two are identical. The determinism suite uses it
// to pinpoint which counter a fast-forwarded collection got wrong instead of
// reporting an opaque struct mismatch.
func (s *Stats) DiffFields(o *Stats) []string {
	var diffs []string
	sv := reflect.ValueOf(*s)
	ov := reflect.ValueOf(*o)
	t := sv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		a, b := sv.Field(i).Interface(), ov.Field(i).Interface()
		if reflect.DeepEqual(a, b) {
			continue
		}
		if f.Name == "Mutator" {
			// Compare through the pointers so a nil-vs-zero difference is
			// still reported but equal contents behind distinct pointers are
			// not.
			ma, mb := s.Mutator, o.Mutator
			switch {
			case ma == nil || mb == nil:
				diffs = append(diffs, fmt.Sprintf("Mutator: %+v vs %+v", ma, mb))
			case *ma != *mb:
				diffs = append(diffs, fmt.Sprintf("Mutator: %+v vs %+v", *ma, *mb))
			}
			continue
		}
		if f.Name == "PerCore" {
			pa, pb := s.PerCore, o.PerCore
			if len(pa) != len(pb) {
				diffs = append(diffs, fmt.Sprintf("PerCore: %d vs %d cores", len(pa), len(pb)))
				continue
			}
			for c := range pa {
				if pa[c] != pb[c] {
					diffs = append(diffs, fmt.Sprintf("PerCore[%d]: %+v vs %+v", c, pa[c], pb[c]))
				}
			}
			continue
		}
		diffs = append(diffs, fmt.Sprintf("%s: %+v vs %+v", f.Name, a, b))
	}
	return diffs
}

// EmptyWorklistFraction returns the Table I metric: the fraction of clock
// cycles (relative to the total collection cycle, as in the paper) during
// which the work list was empty.
func (s *Stats) EmptyWorklistFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.EmptyWorklistCycles) / float64(s.Cycles)
}
