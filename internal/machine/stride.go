package machine

import "hwgc/internal/object"

// strideTable is the on-chip bookkeeping for sub-object (stride) work
// distribution — the second improvement proposed in the paper's conclusions
// (Section VII): "distribute work at a finer granularity than object-level
// granularity, e.g. at the granularity of cache lines".
//
// With strides enabled, the unit of work popped under the scan lock is a
// bounded range of body words of the object at scan rather than the whole
// object. Scanning a large object is thereby shared by several cores, which
// restores scalability on workloads whose object-level parallelism is
// limited by a few big objects (the compress pattern).
//
// The table tracks, per object frame with outstanding strides, how many
// strides are still being processed and whether the final stride has been
// dispatched; the core that completes the last stride blackens the object.
// At most one stride per core is in process, so the number of live entries
// is bounded by the core count; the table is dimensioned at twice that and
// dispatching stalls (holding the scan lock) when it is full, exactly as a
// full hardware CAM would.
type strideTable struct {
	entries []strideEntry
}

type strideEntry struct {
	used        bool
	objTo       object.Addr
	attrs       object.Word
	outstanding int
	final       bool
}

func newStrideTable(cores int) *strideTable {
	return &strideTable{entries: make([]strideEntry, 2*cores)}
}

// Reset clears the table for a new collection cycle.
func (t *strideTable) Reset() {
	for i := range t.entries {
		t.entries[i] = strideEntry{}
	}
}

// Live returns the number of occupied entries (tracing and tests).
func (t *strideTable) Live() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].used {
			n++
		}
	}
	return n
}

// Dispatch registers one stride of the object frame at objTo. final marks
// the object's last stride. It reports false when the table is full and the
// dispatching core must stall.
func (t *strideTable) Dispatch(objTo object.Addr, attrs object.Word, final bool) bool {
	free := -1
	for i := range t.entries {
		e := &t.entries[i]
		if e.used && e.objTo == objTo {
			e.outstanding++
			if final {
				e.final = true
			}
			return true
		}
		if !e.used && free < 0 {
			free = i
		}
	}
	if free < 0 {
		return false
	}
	t.entries[free] = strideEntry{used: true, objTo: objTo, attrs: attrs, outstanding: 1, final: final}
	return true
}

// Complete retires one stride of the frame at objTo and reports whether it
// was the object's last outstanding stride (the caller then blackens the
// object).
func (t *strideTable) Complete(objTo object.Addr) bool {
	for i := range t.entries {
		e := &t.entries[i]
		if e.used && e.objTo == objTo {
			e.outstanding--
			if e.final && e.outstanding == 0 {
				*e = strideEntry{}
				return true
			}
			if e.outstanding < 0 {
				panic("machine: stride completion underflow")
			}
			return false
		}
	}
	panic("machine: stride completion for unknown frame")
}
