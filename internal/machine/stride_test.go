package machine

import "testing"

func TestStrideTableDispatchComplete(t *testing.T) {
	st := newStrideTable(2) // 4 entries
	if !st.Dispatch(100, 7, false) || !st.Dispatch(100, 7, false) {
		t.Fatal("dispatch failed")
	}
	if st.Live() != 1 {
		t.Fatalf("live = %d", st.Live())
	}
	if st.Complete(100) {
		t.Fatal("completion before final dispatch reported last")
	}
	if !st.Dispatch(100, 7, true) {
		t.Fatal("final dispatch failed")
	}
	if st.Complete(100) {
		t.Fatal("one stride still outstanding")
	}
	if !st.Complete(100) {
		t.Fatal("last completion not reported")
	}
	if st.Live() != 0 {
		t.Fatal("entry not freed")
	}
}

func TestStrideTableFull(t *testing.T) {
	st := newStrideTable(1) // 2 entries
	if !st.Dispatch(1, 0, false) || !st.Dispatch(2, 0, false) {
		t.Fatal("fills failed")
	}
	if st.Dispatch(3, 0, false) {
		t.Fatal("overfull dispatch accepted")
	}
	// Existing frames still accept more strides.
	if !st.Dispatch(1, 0, true) {
		t.Fatal("existing frame refused")
	}
	st.Complete(1)
	if st.Complete(1) != true {
		t.Fatal("frame 1 should drain")
	}
	if !st.Dispatch(3, 0, true) {
		t.Fatal("freed slot not reusable")
	}
}

func TestStrideTablePanicsOnUnknownFrame(t *testing.T) {
	st := newStrideTable(1)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown completion did not panic")
		}
	}()
	st.Complete(42)
}

func TestStrideTableReset(t *testing.T) {
	st := newStrideTable(1)
	st.Dispatch(1, 0, false)
	st.Reset()
	if st.Live() != 0 {
		t.Fatal("reset incomplete")
	}
}

// TestStrideSingleCore: strides must also be correct (if pointless) on one
// core, including zero-body objects.
func TestStrideSingleCore(t *testing.T) {
	collectAndVerify(t, "jlisp", Config{Cores: 1, StrideWords: 2})
	collectAndVerify(t, "blob", Config{Cores: 1, StrideWords: 64})
}

// TestStrideCountsConsistent: the dispatched stride count must cover every
// body word exactly once.
func TestStrideCountsConsistent(t *testing.T) {
	st := collectAndVerify(t, "blob", Config{Cores: 16, StrideWords: 64})
	sum := st.Sum()
	if sum.Strides < sum.ObjectsScanned {
		t.Fatalf("fewer strides (%d) than objects (%d)", sum.Strides, sum.ObjectsScanned)
	}
	// Body words copied must equal live body words regardless of striding.
	if st.LiveWords != sum.WordsCopied+2*st.LiveObjects {
		t.Fatalf("stride mode lost words: live %d, copied %d, objects %d",
			st.LiveWords, sum.WordsCopied, st.LiveObjects)
	}
}
