package machine

import (
	"fmt"
	"strings"
	"testing"

	"hwgc/internal/heap"
	"hwgc/internal/workload"
)

// probeRecorder samples machine-internal signals every cycle through the
// Probe hook, like the prototype's 32-signal tracer.
type probeRecorder struct {
	scanOwnerCycles   int64 // cycles the scan lock was held by someone
	freeOwnerCycles   int64
	maxFreeHoldStreak int64
	curFreeStreak     int64
	states            []string // compact per-cycle core state lines
	keepStates        bool
}

func (p *probeRecorder) attach(m *Machine) {
	m.Probe = func(cycle int64, m *Machine) {
		sb := m.SB()
		if sb.ScanOwner() >= 0 {
			p.scanOwnerCycles++
		}
		if sb.FreeOwner() >= 0 {
			p.freeOwnerCycles++
			p.curFreeStreak++
			if p.curFreeStreak > p.maxFreeHoldStreak {
				p.maxFreeHoldStreak = p.curFreeStreak
			}
		} else {
			p.curFreeStreak = 0
		}
		if p.keepStates {
			var b strings.Builder
			fmt.Fprintf(&b, "%d:", cycle)
			for i := 0; i < sb.Cores(); i++ {
				b.WriteByte(' ')
				b.WriteString(m.CoreState(i))
			}
			fmt.Fprintf(&b, " scan=%d free=%d", sb.Scan(), sb.Free())
			p.states = append(p.states, b.String())
		}
	}
}

// TestFreeLockHeldOneCycle pins the evacuation path's timing: the free lock
// is acquired and released within a single cycle in the uncontended case
// (the reordering documented in core.go that keeps the paper's free-lock
// stalls negligible).
func TestFreeLockHeldOneCycle(t *testing.T) {
	spec, _ := workload.Get("jlisp")
	h, err := spec.Plan(1, 3).BuildHeap(2.0)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(h, Config{Cores: 1})
	rec := &probeRecorder{}
	rec.attach(m)
	if _, err := m.Collect(); err != nil {
		t.Fatal(err)
	}
	// With a single core there is no contention, so the free lock must
	// never be observed held across a cycle boundary. The probe runs after
	// each full cycle; a lock acquired and released within one core step is
	// invisible to it.
	if rec.freeOwnerCycles != 0 {
		t.Errorf("free lock observed held across %d cycle boundaries (max streak %d); "+
			"evacuation must hold it within one step", rec.freeOwnerCycles, rec.maxFreeHoldStreak)
	}
}

// TestScanLockHeldAcrossFIFOMiss pins the cup mechanism: with the FIFO
// disabled, the scan lock is held across the gray-header memory load, which
// is precisely what makes FIFO overflow expensive.
func TestScanLockHeldAcrossFIFOMiss(t *testing.T) {
	spec, _ := workload.Get("jlisp")

	run := func(disableFIFO bool) int64 {
		h, err := spec.Plan(1, 3).BuildHeap(2.0)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := New(h, Config{Cores: 1, DisableFIFO: disableFIFO})
		rec := &probeRecorder{}
		rec.attach(m)
		if _, err := m.Collect(); err != nil {
			t.Fatal(err)
		}
		return rec.scanOwnerCycles
	}

	withFIFO := run(false)
	withoutFIFO := run(true)
	if withFIFO != 0 {
		t.Errorf("with FIFO hits, the scan critical section must complete within one step; observed %d held cycles", withFIFO)
	}
	if withoutFIFO == 0 {
		t.Error("without the FIFO, the scan lock must be held across header loads; observed none")
	}
}

// TestGoldenTinyCollection pins the cycle-exact behavior of a minimal
// collection: a single object, a single core, default memory parameters.
// If this test fails after a model change, the change altered simulated
// timing — update the golden values deliberately.
func TestGoldenTinyCollection(t *testing.T) {
	h := heap.New(64)
	a, _ := h.Alloc(0, 2) // one object: π=0, δ=2, size 4
	h.SetData(a, 0, 7)
	h.AddRoot(a)
	m, _ := New(h, Config{Cores: 1, StartupCycles: -1, ShutdownCycles: -1})
	st, err := m.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// The exact count documents the model: root evacuation (header load,
	// free-lock cycle, two header stores), one scan-loop iteration (FIFO
	// hit, two data words through 1-deep buffers at latency 3), blacken,
	// termination detection and the final buffer drain.
	const goldenCycles = 20
	if st.Cycles != goldenCycles {
		t.Errorf("tiny collection took %d cycles, golden value %d — timing model changed",
			st.Cycles, goldenCycles)
	}
	if st.LiveObjects != 1 || st.LiveWords != 4 {
		t.Errorf("outcome wrong: %+v", st)
	}
	sum := st.Sum()
	if sum.FIFOHits != 1 || sum.FIFOMisses != 0 {
		t.Errorf("FIFO behaviour changed: %+v", sum)
	}
}

// TestStateTraceShape smoke-checks the per-cycle state tracer used above.
func TestStateTraceShape(t *testing.T) {
	spec, _ := workload.Get("jlisp")
	h, _ := spec.Plan(1, 3).BuildHeap(2.0)
	m, _ := New(h, Config{Cores: 2})
	rec := &probeRecorder{keepStates: true}
	rec.attach(m)
	if _, err := m.Collect(); err != nil {
		t.Fatal(err)
	}
	if len(rec.states) == 0 {
		t.Fatal("no states recorded")
	}
	joined := strings.Join(rec.states, "\n")
	for _, want := range []string{"roots", "grab-scan", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("state trace never showed %q", want)
		}
	}
}
