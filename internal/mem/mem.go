// Package mem models the coprocessor's memory interface and memory access
// scheduler (paper Section V-D).
//
// Each core owns four single-entry buffers for asynchronous memory accesses,
// one per port: header load, header store, body load, and body store. A core
// may initiate a transfer at any time and only stalls when it
//
//   - tries to write to a store buffer while the previous store has not yet
//     been accepted by the memory controller, or
//   - tries to read from a load buffer while the corresponding load has not
//     completed.
//
// Transfers are handled asynchronously with a split-transaction scheme: the
// controller accepts up to Bandwidth requests per core clock cycle (the
// prototype's DDR-SDRAM runs at at least four times the core clock), and a
// request completes Latency cycles after acceptance.
//
// Ordering is enforced only where the algorithm requires it: a header load
// is delayed while a header store to the same location is pending (the
// prototype's comparator array). Body accesses need no ordering because each
// body word is written and read exactly once per collection cycle; the
// scheduler only guarantees that all buffers are flushed at the end of a GC
// cycle (Drained).
package mem

import (
	"fmt"

	"hwgc/internal/object"
)

// Port identifies one of the four per-core memory ports.
type Port int

// The four ports of paper Section V-D.
const (
	HeaderLoad Port = iota
	HeaderStore
	BodyLoad
	BodyStore
	numPorts
)

// String returns the conventional name of the port.
func (p Port) String() string {
	switch p {
	case HeaderLoad:
		return "header-load"
	case HeaderStore:
		return "header-store"
	case BodyLoad:
		return "body-load"
	case BodyStore:
		return "body-store"
	default:
		return fmt.Sprintf("port(%d)", int(p))
	}
}

// IsLoad reports whether the port is a load port.
func (p Port) IsLoad() bool { return p == HeaderLoad || p == BodyLoad }

// IsHeader reports whether the port carries header traffic.
func (p Port) IsHeader() bool { return p == HeaderLoad || p == HeaderStore }

// Config parameterizes the memory model.
type Config struct {
	// Latency is the number of cycles between acceptance of a request and
	// its completion. The prototype's latency is "in the range of a few
	// clock cycles"; the default is 3.
	Latency int
	// ExtraLatency is added to Latency; it models the paper's Figure 6
	// experiment, which adds an artificial 20 cycles to each access.
	ExtraLatency int
	// Bandwidth is the number of requests the controller accepts per core
	// clock cycle. The prototype's DDR-SDRAM runs at at least four times the
	// 25 MHz core clock and transfers two words per memory clock, so several
	// words arrive per core cycle; the default is 6, which calibrates the
	// simulator's 16-core scaling to the paper's measured ×12.1.
	Bandwidth int
	// StoreQueueDepth is the number of stores a store port can hold before
	// the core stalls on issue. Loads always allow a single outstanding
	// request per port (the core needs the data before it can continue),
	// but stores are write-behind: the prototype's cores only stall on a
	// store "while the previous store is not complete", where completion
	// means hand-off to the split-transaction controller. Default 2.
	StoreQueueDepth int

	// Banks, when positive, enables a DRAM bank model: the address space is
	// interleaved over Banks banks at BankInterleave-word granularity, and
	// after accepting a request a bank is busy for BankBusy cycles. Requests
	// to a busy bank are skipped by the arbiter (and counted as bank
	// conflicts) even when global bandwidth is available. Zero disables the
	// model, leaving the pure bandwidth/latency scheduler of the paper's
	// calibration.
	Banks          int
	BankBusy       int
	BankInterleave int
}

// Defaults for zero-valued Config fields.
const (
	DefaultLatency         = 3
	DefaultBandwidth       = 6
	DefaultStoreQueueDepth = 2
	DefaultBankBusy        = 2
	DefaultBankInterleave  = 8
)

func (c Config) withDefaults() Config {
	if c.Latency <= 0 {
		c.Latency = DefaultLatency
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = DefaultBandwidth
	}
	if c.ExtraLatency < 0 {
		c.ExtraLatency = 0
	}
	if c.StoreQueueDepth <= 0 {
		c.StoreQueueDepth = DefaultStoreQueueDepth
	}
	if c.Banks > 0 {
		if c.BankBusy <= 0 {
			c.BankBusy = DefaultBankBusy
		}
		if c.BankInterleave <= 0 {
			c.BankInterleave = DefaultBankInterleave
		}
	}
	return c
}

// buffer is one single-entry per-core per-port buffer.
type buffer struct {
	valid    bool // request present (issued by the core)
	accepted bool // accepted by the controller (loads only; stores free on acceptance)
	ready    bool // load data available
	addr     object.Addr
	data     object.Word
	doneAt   int64
}

// inflightStore is a store that has been accepted but not yet committed; it
// is tracked so the comparator array can delay same-address header loads.
type inflightStore struct {
	addr   object.Addr
	data   object.Word
	header bool
	doneAt int64
}

// Stats holds the memory system's performance counters.
type Stats struct {
	Accepted      [int(numPorts)]int64 // requests accepted, per port
	BusyCycles    int64                // cycles with at least one acceptance
	SaturatedCyc  int64                // cycles where Bandwidth requests were accepted
	OrderDelays   int64                // header loads delayed by the comparator array
	BankConflicts int64                // acceptances deferred by a busy DRAM bank
	PeakPending   int                  // maximum simultaneously pending requests
	RejectedByBW  int64                // request-cycles denied purely by bandwidth
	TotalRequests int64
}

// Memory is the simulated memory plus its access scheduler. It is not safe
// for concurrent use; the cycle-stepped machine drives it from one
// goroutine. The software baseline collectors bypass the timing model
// entirely and operate on the backing slice directly.
type Memory struct {
	data       []object.Word
	lat        int64
	bw         int
	sqDepth    int
	banks      int
	bankBusy   int64
	interleave int
	busyUntil  []int64
	cycle      int64
	bufs       [][numPorts]buffer // load ports only
	storeQ     [][2][]storeReq    // store ports: [0]=HeaderStore, [1]=BodyStore
	inflight   []inflightStore
	rr         int   // round-robin arbitration pointer
	seq        int64 // store issue sequence numbers
	stats      Stats
}

// storeReq is a store waiting in a core's store-port queue for acceptance.
// seq is a global issue sequence number used by the comparator array to keep
// same-address header stores in issue order.
type storeReq struct {
	addr object.Addr
	data object.Word
	seq  int64
}

// storeIdx maps a store port to its queue index.
func storeIdx(p Port) int {
	if p == HeaderStore {
		return 0
	}
	return 1
}

// New creates a memory model over the given backing store. The slice is
// shared: untimed writers (the mutator, the workload generators) and the
// timed scheduler see the same words.
func New(data []object.Word, cfg Config) *Memory {
	cfg = cfg.withDefaults()
	m := &Memory{
		data:       data,
		lat:        int64(cfg.Latency + cfg.ExtraLatency),
		bw:         cfg.Bandwidth,
		sqDepth:    cfg.StoreQueueDepth,
		banks:      cfg.Banks,
		bankBusy:   int64(cfg.BankBusy),
		interleave: cfg.BankInterleave,
	}
	if m.banks > 0 {
		m.busyUntil = make([]int64, m.banks)
	}
	return m
}

// bankOf maps an address to its DRAM bank.
func (m *Memory) bankOf(a object.Addr) int {
	return int(a) / m.interleave % m.banks
}

// bankReady reports whether the bank holding a can accept a request now,
// and marks it busy when claim is set.
func (m *Memory) bankReady(a object.Addr, claim bool) bool {
	if m.banks <= 0 {
		return true
	}
	b := m.bankOf(a)
	if m.busyUntil[b] > m.cycle {
		m.stats.BankConflicts++
		return false
	}
	if claim {
		m.busyUntil[b] = m.cycle + m.bankBusy
	}
	return true
}

// AttachCores sizes the per-core buffer array for n cores and clears all
// buffers. It must be called before the first Tick of a collection cycle.
func (m *Memory) AttachCores(n int) {
	m.bufs = make([][numPorts]buffer, n)
	m.storeQ = make([][2][]storeReq, n)
	m.inflight = m.inflight[:0]
	m.rr = 0
}

// Size returns the number of words of backing store.
func (m *Memory) Size() int { return len(m.data) }

// Data exposes the backing store for untimed access.
func (m *Memory) Data() []object.Word { return m.data }

// Read performs an untimed read (mutator / verification side).
func (m *Memory) Read(a object.Addr) object.Word { return m.data[a] }

// Write performs an untimed write (mutator / verification side).
func (m *Memory) Write(a object.Addr, w object.Word) { m.data[a] = w }

// Stats returns a copy of the performance counters.
func (m *Memory) Stats() Stats { return m.stats }

// Cycle returns the current scheduler cycle.
func (m *Memory) Cycle() int64 { return m.cycle }

// IssueLoad initiates a load on the given core/port. It reports false if the
// port's buffer is busy (the core must stall and retry next cycle).
func (m *Memory) IssueLoad(core int, port Port, addr object.Addr) bool {
	if !port.IsLoad() {
		panic("mem: IssueLoad on store port " + port.String())
	}
	b := &m.bufs[core][port]
	if b.valid {
		return false
	}
	*b = buffer{valid: true, addr: addr}
	m.stats.TotalRequests++
	return true
}

// LoadReady reports whether the load previously issued on core/port has
// completed and its data may be taken.
func (m *Memory) LoadReady(core int, port Port) bool {
	b := &m.bufs[core][port]
	return b.valid && b.ready
}

// TakeLoad consumes a completed load and frees the buffer.
func (m *Memory) TakeLoad(core int, port Port) object.Word {
	b := &m.bufs[core][port]
	if !b.valid || !b.ready {
		panic("mem: TakeLoad before completion on " + port.String())
	}
	w := b.data
	*b = buffer{}
	return w
}

// IssueStore initiates a store on the given core/port. It reports false if
// the port's write-behind queue is full (the core must stall and retry next
// cycle).
func (m *Memory) IssueStore(core int, port Port, addr object.Addr, w object.Word) bool {
	if port.IsLoad() {
		panic("mem: IssueStore on load port " + port.String())
	}
	q := &m.storeQ[core][storeIdx(port)]
	if len(*q) >= m.sqDepth {
		return false
	}
	m.seq++
	*q = append(*q, storeReq{addr, w, m.seq})
	m.stats.TotalRequests++
	return true
}

// StoreBufferFree reports whether a new store can be issued on core/port
// without stalling.
func (m *Memory) StoreBufferFree(core int, port Port) bool {
	return len(m.storeQ[core][storeIdx(port)]) < m.sqDepth
}

// headerStoreOrderedBefore reports whether a header store to addr with a
// smaller issue sequence number is still waiting in some core's queue. The
// comparator array delays a later header store to the same address until the
// earlier one has been accepted, so that same-address header stores commit
// in issue order. The algorithm has a single writer for every header except
// the tospace gray/blacken pair: with a header-FIFO hit, the scanning core
// can issue the blackening store while the evacuating core's gray-header
// store is still buffered, and without this rule the gray header could
// commit last.
func (m *Memory) headerStoreOrderedBefore(addr object.Addr, seq int64) bool {
	for i := range m.storeQ {
		for _, s := range m.storeQ[i][0] {
			if s.addr == addr && s.seq < seq {
				return true
			}
		}
	}
	return false
}

// headerStorePending reports whether a header store to addr is pending,
// either waiting in a store buffer or accepted but not yet committed. While
// it is, the comparator array delays header loads from the same address.
func (m *Memory) headerStorePending(addr object.Addr) bool {
	for i := range m.storeQ {
		for _, s := range m.storeQ[i][0] {
			if s.addr == addr {
				return true
			}
		}
	}
	for i := range m.inflight {
		s := &m.inflight[i]
		if s.header && s.addr == addr {
			return true
		}
	}
	return false
}

// Tick advances the memory system by one core clock cycle: commit due
// stores, complete due loads, then accept up to Bandwidth new requests.
func (m *Memory) Tick() {
	m.cycle++

	// Commit stores whose latency has elapsed.
	kept := m.inflight[:0]
	for _, s := range m.inflight {
		if s.doneAt <= m.cycle {
			m.data[s.addr] = s.data
		} else {
			kept = append(kept, s)
		}
	}
	m.inflight = kept

	// Complete accepted loads.
	pending := len(m.inflight)
	for i := range m.bufs {
		pending += len(m.storeQ[i][0]) + len(m.storeQ[i][1])
		for _, p := range [2]Port{HeaderLoad, BodyLoad} {
			b := &m.bufs[i][p]
			if !b.valid {
				continue
			}
			pending++
			if b.accepted && !b.ready && b.doneAt <= m.cycle {
				b.data = m.data[b.addr]
				b.ready = true
			}
		}
	}
	if pending > m.stats.PeakPending {
		m.stats.PeakPending = pending
	}

	// Accept new requests, round-robin over cores for fairness, ports in
	// fixed order within a core.
	n := len(m.bufs)
	if n == 0 {
		return
	}
	budget := m.bw
	anyAccepted := false
	for k := 0; k < n && budget > 0; k++ {
		ci := (m.rr + k) % n
		for p := Port(0); p < numPorts && budget > 0; p++ {
			if p.IsLoad() {
				b := &m.bufs[ci][p]
				if !b.valid || b.accepted || b.ready {
					continue
				}
				if p == HeaderLoad && m.headerStorePending(b.addr) {
					m.stats.OrderDelays++
					continue
				}
				if !m.bankReady(b.addr, true) {
					continue
				}
				b.accepted = true
				b.doneAt = m.cycle + m.lat
			} else {
				q := &m.storeQ[ci][storeIdx(p)]
				if len(*q) == 0 {
					continue
				}
				s := (*q)[0]
				if p == HeaderStore && m.headerStoreOrderedBefore(s.addr, s.seq) {
					m.stats.OrderDelays++
					continue
				}
				if !m.bankReady(s.addr, true) {
					continue
				}
				*q = (*q)[1:]
				m.inflight = append(m.inflight, inflightStore{
					addr:   s.addr,
					data:   s.data,
					header: p.IsHeader(),
					doneAt: m.cycle + m.lat,
				})
			}
			m.stats.Accepted[p]++
			budget--
			anyAccepted = true
		}
	}
	m.rr = (m.rr + 1) % n
	if anyAccepted {
		m.stats.BusyCycles++
	}
	if budget == 0 {
		m.stats.SaturatedCyc++
		if m.anyWaiting() {
			m.stats.RejectedByBW++
		}
	}
}

// anyWaiting reports whether some issued request is still unaccepted.
func (m *Memory) anyWaiting() bool {
	for i := range m.bufs {
		if len(m.storeQ[i][0]) > 0 || len(m.storeQ[i][1]) > 0 {
			return true
		}
		for _, p := range [2]Port{HeaderLoad, BodyLoad} {
			b := &m.bufs[i][p]
			if b.valid && !b.accepted && !b.ready {
				return true
			}
		}
	}
	return false
}

// Drained reports whether every buffer and store queue is empty and every
// accepted store has committed. The coprocessor flushes all buffers at the
// end of a collection cycle before the main processor is restarted.
func (m *Memory) Drained() bool {
	if len(m.inflight) > 0 {
		return false
	}
	for i := range m.bufs {
		if len(m.storeQ[i][0]) > 0 || len(m.storeQ[i][1]) > 0 {
			return false
		}
		for p := range m.bufs[i] {
			if m.bufs[i][p].valid {
				return false
			}
		}
	}
	return true
}
