// Package mem models the coprocessor's memory interface and memory access
// scheduler (paper Section V-D).
//
// Each core owns four single-entry buffers for asynchronous memory accesses,
// one per port: header load, header store, body load, and body store. A core
// may initiate a transfer at any time and only stalls when it
//
//   - tries to write to a store buffer while the previous store has not yet
//     been accepted by the memory controller, or
//   - tries to read from a load buffer while the corresponding load has not
//     completed.
//
// Transfers are handled asynchronously with a split-transaction scheme: the
// controller accepts up to Bandwidth requests per core clock cycle (the
// prototype's DDR-SDRAM runs at at least four times the core clock), and a
// request completes Latency cycles after acceptance.
//
// Ordering is enforced only where the algorithm requires it: a header load
// is delayed while a header store to the same location is pending (the
// prototype's comparator array). Body accesses need no ordering because each
// body word is written and read exactly once per collection cycle; the
// scheduler only guarantees that all buffers are flushed at the end of a GC
// cycle (Drained).
//
// The scheduler also supports event-driven fast-forwarding by the machine's
// cycle loop: Quiescent, LoadPending and LastInflightDoneAt expose when the
// next state transition can occur, and FastForwardBy advances the clock over
// a window of dead cycles in one jump. While Quiescent, a Tick performs no
// acceptance and changes no statistic, so skipping such ticks (and applying
// the due commits and completions at the jump target) is observationally
// identical to stepping them.
package mem

import (
	"fmt"
	"math/bits"

	"hwgc/internal/object"
)

// Port identifies one of the four per-core memory ports.
type Port int

// The four ports of paper Section V-D.
const (
	HeaderLoad Port = iota
	HeaderStore
	BodyLoad
	BodyStore
	numPorts
)

// String returns the conventional name of the port.
func (p Port) String() string {
	switch p {
	case HeaderLoad:
		return "header-load"
	case HeaderStore:
		return "header-store"
	case BodyLoad:
		return "body-load"
	case BodyStore:
		return "body-store"
	default:
		return fmt.Sprintf("port(%d)", int(p))
	}
}

// IsLoad reports whether the port is a load port.
func (p Port) IsLoad() bool { return p == HeaderLoad || p == BodyLoad }

// IsHeader reports whether the port carries header traffic.
func (p Port) IsHeader() bool { return p == HeaderLoad || p == HeaderStore }

// loadPorts enumerates the two load ports for scan loops.
var loadPorts = [2]Port{HeaderLoad, BodyLoad}

// Config parameterizes the memory model.
type Config struct {
	// Latency is the number of cycles between acceptance of a request and
	// its completion. The prototype's latency is "in the range of a few
	// clock cycles"; the default is 3.
	Latency int
	// ExtraLatency is added to Latency; it models the paper's Figure 6
	// experiment, which adds an artificial 20 cycles to each access.
	ExtraLatency int
	// Bandwidth is the number of requests the controller accepts per core
	// clock cycle. The prototype's DDR-SDRAM runs at at least four times the
	// 25 MHz core clock and transfers two words per memory clock, so several
	// words arrive per core cycle; the default is 6, which calibrates the
	// simulator's 16-core scaling to the paper's measured ×12.1.
	Bandwidth int
	// StoreQueueDepth is the number of stores a store port can hold before
	// the core stalls on issue. Loads always allow a single outstanding
	// request per port (the core needs the data before it can continue),
	// but stores are write-behind: the prototype's cores only stall on a
	// store "while the previous store is not complete", where completion
	// means hand-off to the split-transaction controller. Default 2.
	StoreQueueDepth int

	// Banks, when positive, enables a DRAM bank model: the address space is
	// interleaved over Banks banks at BankInterleave-word granularity, and
	// after accepting a request a bank is busy for BankBusy cycles. Requests
	// to a busy bank are skipped by the arbiter (and counted as bank
	// conflicts) even when global bandwidth is available. Zero disables the
	// model, leaving the pure bandwidth/latency scheduler of the paper's
	// calibration.
	Banks          int
	BankBusy       int
	BankInterleave int

	// Domains, when positive, enables a NUMA model: the address space is
	// interleaved over Domains memory domains at DomainInterleave-word
	// granularity, each core is affine to one domain (round-robin by core
	// index unless Affinity overrides it), and an access whose address lives
	// in another domain pays RemotePenalty extra cycles of latency.
	// DomainBandwidth, when positive, additionally caps the number of
	// requests each domain accepts per cycle (on top of the global
	// Bandwidth). SetLocalWindow can mark an address range — the
	// locality-aware tospace — as local to every core. Zero disables the
	// model.
	Domains          int
	RemotePenalty    int
	DomainInterleave int
	DomainBandwidth  int
	// Affinity optionally maps core index to domain; cores beyond its
	// length (and all cores when nil) use core % Domains.
	Affinity []int

	// L1Sets, when positive, enables a two-level cache model in front of the
	// scheduler: a private per-core L1 (L1Sets sets × L1Ways ways) and a
	// shared L2 (L2Sets × L2Ways), both with LineWords words per line. The
	// model is tag-only — data always comes from the backing store at
	// completion time — so it changes timing, never values. A load that hits
	// completes after a short fixed latency (HitLatencyL1/HitLatencyL2)
	// without consuming controller bandwidth; a miss allocates one of MSHRs
	// miss-status registers and falls through to the NUMA/bank/bandwidth
	// path, filling both levels on completion. When every MSHR is in use the
	// issuing port stalls. Stores are write-through no-allocate and bypass
	// the tags entirely. Zero disables the model.
	L1Sets    int
	L1Ways    int
	L2Sets    int
	L2Ways    int
	MSHRs     int
	LineWords int
}

// Defaults for zero-valued Config fields.
const (
	DefaultLatency          = 3
	DefaultBandwidth        = 6
	DefaultStoreQueueDepth  = 2
	DefaultBankBusy         = 2
	DefaultBankInterleave   = 8
	DefaultRemotePenalty    = 8
	DefaultDomainInterleave = 64
	DefaultL1Ways           = 2
	DefaultL2Ways           = 4
	DefaultMSHRs            = 8
	DefaultLineWords        = 4
)

// Cache hit latencies in core cycles. An L1 hit completes on the next
// cycle; an L2 hit one cycle later. Both undercut even the minimum DRAM
// latency, which is the point of the model.
const (
	HitLatencyL1 = 1
	HitLatencyL2 = 2
)

func (c Config) withDefaults() Config {
	if c.Latency <= 0 {
		c.Latency = DefaultLatency
	}
	if c.Bandwidth <= 0 {
		c.Bandwidth = DefaultBandwidth
	}
	if c.ExtraLatency < 0 {
		c.ExtraLatency = 0
	}
	if c.StoreQueueDepth <= 0 {
		c.StoreQueueDepth = DefaultStoreQueueDepth
	}
	if c.Banks > 0 {
		if c.BankBusy <= 0 {
			c.BankBusy = DefaultBankBusy
		}
		if c.BankInterleave <= 0 {
			c.BankInterleave = DefaultBankInterleave
		}
	}
	if c.Domains > 0 {
		if c.RemotePenalty <= 0 {
			c.RemotePenalty = DefaultRemotePenalty
		}
		if c.DomainInterleave <= 0 {
			c.DomainInterleave = DefaultDomainInterleave
		}
	}
	if c.L1Sets > 0 {
		if c.L1Ways <= 0 {
			c.L1Ways = DefaultL1Ways
		}
		if c.L2Sets <= 0 {
			c.L2Sets = 4 * c.L1Sets
		}
		if c.L2Ways <= 0 {
			c.L2Ways = DefaultL2Ways
		}
		if c.MSHRs <= 0 {
			c.MSHRs = DefaultMSHRs
		}
		if c.LineWords <= 0 {
			c.LineWords = DefaultLineWords
		}
	}
	return c
}

// Completion classes: every accepted load belongs to one latency class, and
// each class has its own completion ring so acceptance order within a class
// is also completion order. The flat model uses only classDRAM; the NUMA
// model adds classRemote; the cache model adds the two hit classes.
const (
	classDRAM   = 0 // flat or NUMA-local DRAM access
	classRemote = 1 // NUMA remote DRAM access (lat + RemotePenalty)
	classL1     = 2 // L1 hit
	classL2     = 3 // L2 hit
	numClasses  = 4
)

// buffer is one single-entry per-core per-port buffer.
type buffer struct {
	valid    bool // request present (issued by the core)
	accepted bool // accepted by the controller (loads only; stores free on acceptance)
	ready    bool // load data available
	class    uint8
	addr     object.Addr
	data     object.Word
	doneAt   int64
}

// inflightStore is a store that has been accepted but not yet committed; it
// is tracked so the comparator array can delay same-address header loads.
// Because every store is accepted with the same latency, the inflight list
// is ordered by doneAt and commits strip a prefix.
type inflightStore struct {
	addr   object.Addr
	data   object.Word
	header bool
	doneAt int64
}

// Stats holds the memory system's performance counters. The
// memory-hierarchy counters carry omitempty so the encoded statistics of a
// flat-configuration run are byte-identical to builds that predate the
// NUMA/cache models.
type Stats struct {
	Accepted      [int(numPorts)]int64 // requests accepted, per port
	BusyCycles    int64                // cycles with at least one acceptance
	SaturatedCyc  int64                // cycles where Bandwidth requests were accepted
	OrderDelays   int64                // header loads delayed by the comparator array
	BankConflicts int64                // acceptances deferred by a busy DRAM bank
	PeakPending   int                  // maximum simultaneously pending requests
	RejectedByBW  int64                // request-cycles denied purely by bandwidth
	TotalRequests int64

	LocalAccesses   int64 `json:",omitempty"` // DRAM acceptances served by the requester's domain
	RemoteAccesses  int64 `json:",omitempty"` // DRAM acceptances paying the remote penalty
	DomainConflicts int64 `json:",omitempty"` // acceptances deferred by an exhausted domain budget
	L1Hits          int64 `json:",omitempty"`
	L1Misses        int64 `json:",omitempty"`
	L2Hits          int64 `json:",omitempty"`
	L2Misses        int64 `json:",omitempty"`
	MSHRFullStalls  int64 `json:",omitempty"` // load issues rejected because every MSHR was busy
}

// storeReq is a store waiting in a core's store-port queue for acceptance.
// seq is a global issue sequence number used by the comparator array to keep
// same-address header stores in issue order.
type storeReq struct {
	addr object.Addr
	data object.Word
	seq  int64
}

// storeRing is a fixed-capacity FIFO of write-behind stores for one store
// port. A ring avoids the per-accept slice reslicing and re-append growth of
// a plain slice queue — the queue is bounded by StoreQueueDepth, so the
// backing array is allocated once per core and reused for the whole run.
type storeRing struct {
	buf  []storeReq
	head int
	n    int
}

func (r *storeRing) push(s storeReq) {
	p := r.head + r.n
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	r.buf[p] = s
	r.n++
}

func (r *storeRing) front() *storeReq { return &r.buf[r.head] }

func (r *storeRing) pop() {
	r.head++
	if r.head >= len(r.buf) {
		r.head = 0
	}
	r.n--
}

// at returns the i-th queued store in FIFO order.
func (r *storeRing) at(i int) *storeReq {
	p := r.head + i
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	return &r.buf[p]
}

// Per-address pending-header-store counters (Memory.hdrCnt): the comparator
// array of the store scheduler needs, per address, how many header stores
// are waiting in a write-behind queue (low 16 bits) and how many have been
// accepted but not yet committed (high 16 bits). A flat array indexed by
// word address makes every probe a single load; both halves drain back to
// zero as the stores commit, and the addresses touched by an aborted
// collection are re-zeroed from a dirty list (hdrDirty), so the array never
// needs a full clear.
const (
	hdrCntQueuedOne   = 1       // one queued header store
	hdrCntInflightOne = 1 << 16 // one accepted, uncommitted header store
	hdrCntQueuedMask  = 1<<16 - 1
)

// intRing is a fixed-capacity FIFO of small integers (the load-completion
// queue; capacity 2 entries per core bounds it).
type intRing struct {
	buf  []int64
	head int
	n    int
}

func (r *intRing) push(v int64) {
	p := r.head + r.n
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	r.buf[p] = v
	r.n++
}

func (r *intRing) front() int64 { return r.buf[r.head] }

func (r *intRing) pop() {
	r.head++
	if r.head >= len(r.buf) {
		r.head = 0
	}
	r.n--
}

// Memory is the simulated memory plus its access scheduler. It is not safe
// for concurrent use; the cycle-stepped machine drives it from one
// goroutine. The software baseline collectors bypass the timing model
// entirely and operate on the backing slice directly.
type Memory struct {
	data         []object.Word
	lat          int64
	bw           int
	sqDepth      int
	banks        int
	bankBusy     int64
	interleave   int
	busyUntil    []int64
	cycle        int64
	bufs         [][numPorts]buffer // load ports only
	storeQ       [][2]storeRing     // store ports: [0]=HeaderStore, [1]=BodyStore
	inflight     []inflightStore    // accepted stores, ordered by doneAt
	inflightHead int                // first uncommitted entry of inflight
	rr           int                // round-robin arbitration pointer
	seq          int64              // store issue sequence numbers
	stats        Stats

	// Derived occupancy counters, maintained incrementally so the per-cycle
	// Tick can skip whole phases (and the machine's fast-forward can test
	// quiescence) without scanning every buffer.
	unaccepted    int     // issued requests not yet accepted (loads + queued stores)
	storeQueued   int     // stores waiting in some core's write-behind queue
	validLoads    int     // occupied load buffers (accepted or not, taken or not)
	acceptedLoads int     // accepted loads whose data is not yet ready
	hdrCnt        []int32 // pending header stores per address, len(data)

	// waiting has one bit per port (1<<port) for every core with a request
	// awaiting acceptance, so arbitration skips idle cores with one load.
	waiting []uint8

	// waitMask packs one bit per core with waiting[core] != 0, so the
	// arbitration loop jumps between waiting cores instead of scanning all
	// of them.
	waitMask []uint64

	// completions queues accepted classDRAM loads in acceptance order.
	// Latency is uniform within a class, so this is also completion order:
	// completeDue pops due entries instead of scanning every core's buffers.
	// An entry encodes doneAt<<16 | core<<1 | portIdx (0 = HeaderLoad,
	// 1 = BodyLoad), so the not-yet-due check never touches a buffer.
	completions intRing

	// Memory hierarchy (NUMA domains and/or the L1/L2 cache model). hier is
	// set when either model is enabled; the flat path never touches any of
	// this state.
	hier      bool
	domains   int
	penalty   int64
	domIlv    int
	domBW     int
	affinity  []int
	domBudget []int       // per-domain per-cycle acceptance budget (domBW > 0)
	winBase   object.Addr // SetLocalWindow range, local to every core
	winLimit  object.Addr // exclusive; 0 means no window

	l1Sets, l1Ways int
	l2Sets, l2Ways int
	mshrs          int
	lineWords      int
	l1             [][]cacheLine // per core, l1Sets*l1Ways lines
	l2             []cacheLine   // shared, l2Sets*l2Ways lines
	lruTick        int64
	mshrInUse      int
	stCnt          []int32 // pending stores per address (cache model only)

	// extraComp holds the completion rings of the non-DRAM-local classes,
	// indexed by class-1. Allocated only when hier is set.
	extraComp [numClasses - 1]intRing
}

// cacheLine is one tag-only line of the L1 or L2 model.
type cacheLine struct {
	valid bool
	tag   int64
	last  int64 // lruTick at last touch
}

// storeIdx maps a store port to its queue index.
func storeIdx(p Port) int {
	if p == HeaderStore {
		return 0
	}
	return 1
}

// New creates a memory model over the given backing store. The slice is
// shared: untimed writers (the mutator, the workload generators) and the
// timed scheduler see the same words.
func New(data []object.Word, cfg Config) *Memory {
	cfg = cfg.withDefaults()
	m := &Memory{
		data:       data,
		lat:        int64(cfg.Latency + cfg.ExtraLatency),
		bw:         cfg.Bandwidth,
		sqDepth:    cfg.StoreQueueDepth,
		banks:      cfg.Banks,
		bankBusy:   int64(cfg.BankBusy),
		interleave: cfg.BankInterleave,
		domains:    cfg.Domains,
		penalty:    int64(cfg.RemotePenalty),
		domIlv:     cfg.DomainInterleave,
		domBW:      cfg.DomainBandwidth,
		affinity:   cfg.Affinity,
		l1Sets:     cfg.L1Sets,
		l1Ways:     cfg.L1Ways,
		l2Sets:     cfg.L2Sets,
		l2Ways:     cfg.L2Ways,
		mshrs:      cfg.MSHRs,
		lineWords:  cfg.LineWords,
	}
	m.hier = m.domains > 0 || m.l1Sets > 0
	if m.banks > 0 {
		m.busyUntil = make([]int64, m.banks)
	}
	if m.domains > 0 && m.domBW > 0 {
		m.domBudget = make([]int, m.domains)
	}
	if m.l1Sets > 0 {
		m.l2 = make([]cacheLine, m.l2Sets*m.l2Ways)
		m.stCnt = make([]int32, len(data))
	}
	m.hdrCnt = make([]int32, len(data))
	return m
}

// domainOf maps an address to its NUMA domain.
func (m *Memory) domainOf(a object.Addr) int {
	return int(a) / m.domIlv % m.domains
}

// coreDomain returns the domain core ci is affine to.
func (m *Memory) coreDomain(ci int) int {
	if ci < len(m.affinity) {
		return m.affinity[ci]
	}
	return ci % m.domains
}

// effDomain returns the domain core ci's access to addr is served by. An
// address inside the local window — the locality-aware tospace — lives in
// the accessing core's own domain by construction (each core evacuates into
// a region of its domain), so both the latency penalty and the per-domain
// budget use the core's domain for it.
func (m *Memory) effDomain(ci int, addr object.Addr) int {
	if addr >= m.winBase && addr < m.winLimit {
		return m.coreDomain(ci)
	}
	return m.domainOf(addr)
}

// remote reports whether core ci's access to addr crosses domains.
func (m *Memory) remote(ci int, addr object.Addr) bool {
	return m.effDomain(ci, addr) != m.coreDomain(ci)
}

// SetLocalWindow marks [base, limit) as local to every core, modeling
// locality-aware placement of the tospace: each core bump-allocates in a
// region of its own domain, so its copy and scan traffic to the window
// stays local. Call with (0, 0) to clear. No-op unless the NUMA model is
// enabled.
func (m *Memory) SetLocalWindow(base, limit object.Addr) {
	m.winBase, m.winLimit = base, limit
}

// bankOf maps an address to its DRAM bank.
func (m *Memory) bankOf(a object.Addr) int {
	return int(a) / m.interleave % m.banks
}

// bankReady reports whether the bank holding a can accept a request now,
// and marks it busy when claim is set.
func (m *Memory) bankReady(a object.Addr, claim bool) bool {
	if m.banks <= 0 {
		return true
	}
	b := m.bankOf(a)
	if m.busyUntil[b] > m.cycle {
		m.stats.BankConflicts++
		return false
	}
	if claim {
		m.busyUntil[b] = m.cycle + m.bankBusy
	}
	return true
}

// AttachCores sizes the per-core buffer array for n cores and clears all
// buffers. It must be called before the first Tick of a collection cycle.
// Buffer and queue storage is reused across collection cycles of a reused
// machine, so a steady-state mutator run does not allocate here.
func (m *Memory) AttachCores(n int) {
	// In a completed collection every pending header store drained, taking
	// its hdrCnt entry back to zero. After an aborted one, the non-zero
	// entries correspond exactly to the still-queued and the accepted but
	// uncommitted header stores, so re-zero those before discarding the
	// queues.
	if m.storeQueued > 0 {
		for i := range m.storeQ {
			q := &m.storeQ[i][0] // storeIdx(HeaderStore) == 0
			for j := 0; j < q.n; j++ {
				m.hdrCnt[q.at(j).addr] = 0
			}
			if m.stCnt != nil {
				for j := range m.storeQ[i] {
					q := &m.storeQ[i][j]
					for k := 0; k < q.n; k++ {
						m.stCnt[q.at(k).addr] = 0
					}
				}
			}
		}
	}
	for _, s := range m.inflight[m.inflightHead:] {
		if s.header {
			m.hdrCnt[s.addr] = 0
		}
		if m.stCnt != nil {
			m.stCnt[s.addr] = 0
		}
	}

	if cap(m.bufs) >= n {
		m.bufs = m.bufs[:n]
		for i := range m.bufs {
			m.bufs[i] = [numPorts]buffer{}
		}
	} else {
		m.bufs = make([][numPorts]buffer, n)
	}
	if cap(m.storeQ) >= n {
		m.storeQ = m.storeQ[:n]
	} else {
		m.storeQ = make([][2]storeRing, n)
	}
	for i := range m.storeQ {
		for j := range m.storeQ[i] {
			r := &m.storeQ[i][j]
			if len(r.buf) != m.sqDepth {
				r.buf = make([]storeReq, m.sqDepth)
			}
			r.head, r.n = 0, 0
		}
	}
	if len(m.waiting) != n {
		m.waiting = make([]uint8, n)
		m.waitMask = make([]uint64, (n+63)/64)
		m.completions.buf = make([]int64, 2*n)
		if m.hier {
			for i := range m.extraComp {
				m.extraComp[i].buf = make([]int64, 2*n)
			}
		}
	} else {
		clear(m.waiting)
		clear(m.waitMask)
	}
	m.completions.head, m.completions.n = 0, 0
	if m.hier {
		for i := range m.extraComp {
			m.extraComp[i].head, m.extraComp[i].n = 0, 0
		}
	}
	if m.l1Sets > 0 {
		// Caches start cold each collection cycle: the main processor owned
		// the hierarchy in between, so no GC-visible line survives.
		if len(m.l1) != n {
			m.l1 = make([][]cacheLine, n)
			for i := range m.l1 {
				m.l1[i] = make([]cacheLine, m.l1Sets*m.l1Ways)
			}
		} else {
			for i := range m.l1 {
				clear(m.l1[i])
			}
		}
		clear(m.l2)
		m.lruTick = 0
		m.mshrInUse = 0
	}
	m.inflight = m.inflight[:0]
	m.inflightHead = 0
	m.rr = 0
	m.unaccepted = 0
	m.storeQueued = 0
	m.validLoads = 0
	m.acceptedLoads = 0
}

// Size returns the number of words of backing store.
func (m *Memory) Size() int { return len(m.data) }

// Data exposes the backing store for untimed access.
func (m *Memory) Data() []object.Word { return m.data }

// Read performs an untimed read (mutator / verification side).
func (m *Memory) Read(a object.Addr) object.Word { return m.data[a] }

// Write performs an untimed write (mutator / verification side).
func (m *Memory) Write(a object.Addr, w object.Word) { m.data[a] = w }

// Stats returns a copy of the performance counters.
func (m *Memory) Stats() Stats { return m.stats }

// Cycle returns the current scheduler cycle.
func (m *Memory) Cycle() int64 { return m.cycle }

// probe looks line up in a set-associative tag array, touching its LRU
// stamp on a hit.
func (m *Memory) probe(lines []cacheLine, sets, ways int, line int64) bool {
	way := lines[int(line%int64(sets))*ways:]
	tag := line / int64(sets)
	for i := 0; i < ways; i++ {
		if way[i].valid && way[i].tag == tag {
			m.lruTick++
			way[i].last = m.lruTick
			return true
		}
	}
	return false
}

// fill installs line into a set-associative tag array, evicting the
// least-recently-used way (lowest index on ties, for determinism).
func (m *Memory) fill(lines []cacheLine, sets, ways int, line int64) {
	way := lines[int(line%int64(sets))*ways:]
	tag := line / int64(sets)
	victim := 0
	for i := 0; i < ways; i++ {
		if way[i].valid && way[i].tag == tag {
			victim = i
			break
		}
		if !way[i].valid {
			if way[victim].valid {
				victim = i
			}
			continue
		}
		if way[victim].valid && way[i].last < way[victim].last {
			victim = i
		}
	}
	m.lruTick++
	way[victim] = cacheLine{valid: true, tag: tag, last: m.lruTick}
}

// cacheLookup probes L1 then L2 for core's access to addr, returning the
// hit class. An L2 hit also fills the core's L1 (tag-only, immediate). On a
// full miss no counter changes — the caller counts the miss only once the
// load actually issues, so a port re-probing every cycle while the MSHRs
// are exhausted does not inflate the miss counts.
func (m *Memory) cacheLookup(core int, addr object.Addr) (cls uint8, hit bool) {
	line := int64(addr) / int64(m.lineWords)
	if m.probe(m.l1[core], m.l1Sets, m.l1Ways, line) {
		m.stats.L1Hits++
		return classL1, true
	}
	if m.probe(m.l2, m.l2Sets, m.l2Ways, line) {
		m.stats.L1Misses++
		m.stats.L2Hits++
		m.fill(m.l1[core], m.l1Sets, m.l1Ways, line)
		return classL2, true
	}
	return 0, false
}

// cacheFill installs addr's line in both levels after a miss completes.
func (m *Memory) cacheFill(core int, addr object.Addr) {
	line := int64(addr) / int64(m.lineWords)
	m.fill(m.l2, m.l2Sets, m.l2Ways, line)
	m.fill(m.l1[core], m.l1Sets, m.l1Ways, line)
}

// ring returns the completion ring of a latency class.
func (m *Memory) ring(cls uint8) *intRing {
	if cls == classDRAM {
		return &m.completions
	}
	return &m.extraComp[cls-1]
}

// IssueLoad initiates a load on the given core/port. It reports false if the
// port's buffer is busy, or — under the cache model — if the load misses
// while every MSHR is in use (the core must stall and retry next cycle).
func (m *Memory) IssueLoad(core int, port Port, addr object.Addr) bool {
	if !port.IsLoad() {
		panic("mem: IssueLoad on store port " + port.String())
	}
	b := &m.bufs[core][port]
	if b.valid {
		return false
	}
	if m.l1Sets > 0 {
		// A pending store to the same address forces the load to memory so
		// it observes the committed value's timing (and, for headers, the
		// comparator array); the tags are not consulted.
		bypass := m.stCnt[addr] != 0
		if !bypass {
			if cls, hit := m.cacheLookup(core, addr); hit {
				lat := int64(HitLatencyL1)
				if cls == classL2 {
					lat = HitLatencyL2
				}
				*b = buffer{valid: true, accepted: true, class: cls, addr: addr, doneAt: m.cycle + lat}
				m.validLoads++
				m.acceptedLoads++
				m.ring(cls).push(b.doneAt<<16 | int64(core)<<1 | int64(port>>1))
				m.stats.TotalRequests++
				return true
			}
		}
		if m.mshrInUse >= m.mshrs {
			m.stats.MSHRFullStalls++
			return false
		}
		if !bypass {
			m.stats.L1Misses++
			m.stats.L2Misses++
		}
		m.mshrInUse++
	}
	*b = buffer{valid: true, addr: addr}
	m.unaccepted++
	m.validLoads++
	m.waiting[core] |= 1 << port
	m.waitMask[core>>6] |= 1 << (core & 63)
	m.stats.TotalRequests++
	return true
}

// LoadReady reports whether the load previously issued on core/port has
// completed and its data may be taken.
func (m *Memory) LoadReady(core int, port Port) bool {
	b := &m.bufs[core][port]
	return b.valid && b.ready
}

// LoadPending returns the completion cycle of the accepted, not yet
// completed load in core/port's buffer. It reports false when the buffer is
// empty, still awaiting acceptance, or already completed. The machine's
// fast-forward uses this as the core's next possible wake-up event.
func (m *Memory) LoadPending(core int, port Port) (doneAt int64, ok bool) {
	b := &m.bufs[core][port]
	if b.valid && b.accepted && !b.ready {
		return b.doneAt, true
	}
	return 0, false
}

// PollLoad combines LoadReady, TakeLoad and LoadPending in a single buffer
// access for the machine's per-cycle wait states: when the load has
// completed it is consumed (ok true); otherwise ok is false and doneAt is
// its completion cycle if it has been accepted, 0 while it still awaits
// acceptance.
func (m *Memory) PollLoad(core int, port Port) (w object.Word, doneAt int64, ok bool) {
	b := &m.bufs[core][port]
	if b.valid && b.ready {
		w = b.data
		*b = buffer{}
		m.validLoads--
		return w, 0, true
	}
	if b.accepted {
		return 0, b.doneAt, false
	}
	return 0, 0, false
}

// TakeLoad consumes a completed load and frees the buffer.
func (m *Memory) TakeLoad(core int, port Port) object.Word {
	b := &m.bufs[core][port]
	if !b.valid || !b.ready {
		panic("mem: TakeLoad before completion on " + port.String())
	}
	w := b.data
	*b = buffer{}
	m.validLoads--
	return w
}

// IssueStore initiates a store on the given core/port. It reports false if
// the port's write-behind queue is full (the core must stall and retry next
// cycle).
func (m *Memory) IssueStore(core int, port Port, addr object.Addr, w object.Word) bool {
	if port.IsLoad() {
		panic("mem: IssueStore on load port " + port.String())
	}
	q := &m.storeQ[core][storeIdx(port)]
	if q.n >= m.sqDepth {
		return false
	}
	m.seq++
	q.push(storeReq{addr, w, m.seq})
	m.unaccepted++
	m.storeQueued++
	m.waiting[core] |= 1 << port
	m.waitMask[core>>6] |= 1 << (core & 63)
	if port == HeaderStore {
		m.hdrCnt[addr] += hdrCntQueuedOne
	}
	if m.stCnt != nil {
		m.stCnt[addr]++
	}
	m.stats.TotalRequests++
	return true
}

// StoreBufferFree reports whether a new store can be issued on core/port
// without stalling.
func (m *Memory) StoreBufferFree(core int, port Port) bool {
	return m.storeQ[core][storeIdx(port)].n < m.sqDepth
}

// headerStoreOrderedBefore reports whether a header store to addr with a
// smaller issue sequence number is still waiting in some core's queue. The
// comparator array delays a later header store to the same address until the
// earlier one has been accepted, so that same-address header stores commit
// in issue order. The algorithm has a single writer for every header except
// the tospace gray/blacken pair: with a header-FIFO hit, the scanning core
// can issue the blackening store while the evacuating core's gray-header
// store is still buffered, and without this rule the gray header could
// commit last.
func (m *Memory) headerStoreOrderedBefore(addr object.Addr, seq int64) bool {
	if m.hdrCnt[addr]&hdrCntQueuedMask < 2 {
		return false // the probe itself is the only queued header store to addr
	}
	for i, w := range m.waiting {
		if w&(1<<HeaderStore) == 0 {
			continue // waiting bit mirrors a non-empty header queue
		}
		q := &m.storeQ[i][0]
		for j := 0; j < q.n; j++ {
			if s := q.at(j); s.addr == addr && s.seq < seq {
				return true
			}
		}
	}
	return false
}

// headerStorePending reports whether a header store to addr is pending,
// either waiting in a store buffer or accepted but not yet committed. While
// it is, the comparator array delays header loads from the same address.
func (m *Memory) headerStorePending(addr object.Addr) bool {
	return m.hdrCnt[addr] != 0
}

// commitDue commits the prefix of in-flight stores whose latency has
// elapsed. The list is ordered by completion cycle; committed entries are
// skipped via a head index, and the consumed prefix is compacted away only
// once it dominates the backing array (amortized O(1) per commit).
func (m *Memory) commitDue() {
	h := m.inflightHead
	if h == len(m.inflight) || m.inflight[h].doneAt > m.cycle {
		return
	}
	for h < len(m.inflight) && m.inflight[h].doneAt <= m.cycle {
		s := &m.inflight[h]
		m.data[s.addr] = s.data
		if s.header {
			m.hdrCnt[s.addr] -= hdrCntInflightOne
		}
		if m.stCnt != nil {
			m.stCnt[s.addr]--
		}
		h++
	}
	if h == len(m.inflight) {
		m.inflight = m.inflight[:0]
		h = 0
	} else if h >= 1024 && 2*h >= len(m.inflight) {
		n := copy(m.inflight, m.inflight[h:])
		m.inflight = m.inflight[:n]
		h = 0
	}
	m.inflightHead = h
}

// completeDue marks accepted loads whose latency has elapsed as ready,
// capturing the loaded word after all due stores have committed. Accepted
// loads complete in acceptance order within each latency class (the latency
// is uniform per class), so the due prefix of each class's completion queue
// identifies them without scanning buffers. Completions of different
// classes falling on the same cycle are interchangeable: every capture
// happens after the cycle's commits, so drain order cannot change data.
func (m *Memory) completeDue() {
	m.drainRing(&m.completions)
	if m.hier {
		for i := range m.extraComp {
			m.drainRing(&m.extraComp[i])
		}
	}
}

func (m *Memory) drainRing(r *intRing) {
	for r.n > 0 {
		e := r.front()
		if e>>16 > m.cycle {
			return
		}
		ci := int(e >> 1 & 0x7fff)
		b := &m.bufs[ci][Port(e&1)<<1] // portIdx 0 -> HeaderLoad(0), 1 -> BodyLoad(2)
		b.data = m.data[b.addr]
		b.ready = true
		m.acceptedLoads--
		if m.l1Sets > 0 && b.class < classL1 {
			// A completed miss releases its MSHR and fills both levels.
			m.mshrInUse--
			m.cacheFill(ci, b.addr)
		}
		r.pop()
	}
}

// Tick advances the memory system by one core clock cycle: commit due
// stores, complete due loads, then accept up to Bandwidth new requests.
func (m *Memory) Tick() {
	m.cycle++

	m.commitDue()
	m.completeDue()

	pending := len(m.inflight) - m.inflightHead + m.storeQueued + m.validLoads
	if pending > m.stats.PeakPending {
		m.stats.PeakPending = pending
	}

	// Accept new requests, round-robin over cores for fairness, ports in
	// fixed order within a core.
	n := len(m.bufs)
	if n == 0 {
		return
	}
	if m.unaccepted > 0 {
		m.accept(n)
	}
	m.rr++
	if m.rr >= n {
		m.rr = 0
	}
}

// accept runs the arbitration loop for one cycle, admitting up to Bandwidth
// waiting requests.
func (m *Memory) accept(n int) {
	budget := m.bw
	anyAccepted := false
	if m.domBudget != nil {
		for i := range m.domBudget {
			m.domBudget[i] = m.domBW
		}
	}
	// Visit waiting cores in round-robin order starting at rr — the ranges
	// [rr, n) then [0, rr) — jumping between set bits of waitMask rather
	// than scanning every core.
	for pass := 0; pass < 2 && budget > 0 && m.unaccepted > 0; pass++ {
		lo, hi := m.rr, n
		if pass == 1 {
			lo, hi = 0, m.rr
		}
		for wi := lo >> 6; wi<<6 < hi && budget > 0 && m.unaccepted > 0; wi++ {
			word := m.waitMask[wi]
			if base := wi << 6; base < lo {
				word &= ^uint64(0) << (lo - base)
			}
			if rem := hi - wi<<6; rem < 64 {
				word &= 1<<rem - 1
			}
			for word != 0 && budget > 0 && m.unaccepted > 0 {
				ci := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if m.acceptCore(ci, &budget) {
					anyAccepted = true
				}
			}
		}
	}
	if anyAccepted {
		m.stats.BusyCycles++
	}
	if budget == 0 {
		m.stats.SaturatedCyc++
		if m.unaccepted > 0 {
			m.stats.RejectedByBW++
		}
	}
}

// acceptCore tries to accept core ci's waiting requests, ports in fixed
// order, decrementing *budget per acceptance. It reports whether anything was
// accepted.
func (m *Memory) acceptCore(ci int, budget *int) bool {
	accepted := false
	// Jump between waiting ports; ascending bit order is the fixed port
	// priority. The local copy also skips requests whose bit is cleared
	// mid-loop (each port is attempted at most once per cycle either way).
	for w := m.waiting[ci]; w != 0 && *budget > 0; w &= w - 1 {
		p := Port(bits.TrailingZeros8(w))
		if p.IsLoad() {
			b := &m.bufs[ci][p]
			if p == HeaderLoad && m.headerStorePending(b.addr) {
				m.stats.OrderDelays++
				continue
			}
			if !m.bankReady(b.addr, false) {
				continue
			}
			if !m.domainReady(ci, b.addr, false) {
				continue
			}
			m.bankReady(b.addr, true)
			m.domainReady(ci, b.addr, true)
			b.accepted = true
			b.doneAt = m.cycle + m.accessLatency(ci, b.addr, &b.class)
			m.unaccepted--
			m.acceptedLoads++
			m.clearWaiting(ci, p)
			m.ring(b.class).push(b.doneAt<<16 | int64(ci)<<1 | int64(p>>1)) // HeaderLoad=0, BodyLoad=1
		} else {
			q := &m.storeQ[ci][storeIdx(p)]
			s := q.front()
			if p == HeaderStore && m.headerStoreOrderedBefore(s.addr, s.seq) {
				m.stats.OrderDelays++
				continue
			}
			if !m.bankReady(s.addr, false) {
				continue
			}
			if !m.domainReady(ci, s.addr, false) {
				continue
			}
			m.bankReady(s.addr, true)
			m.domainReady(ci, s.addr, true)
			var cls uint8
			st := inflightStore{
				addr:   s.addr,
				data:   s.data,
				header: p.IsHeader(),
				doneAt: m.cycle + m.accessLatency(ci, s.addr, &cls),
			}
			if m.hier {
				m.insertInflight(st)
			} else {
				m.inflight = append(m.inflight, st)
			}
			if p == HeaderStore {
				// The queued store becomes an accepted, uncommitted one.
				m.hdrCnt[s.addr] += hdrCntInflightOne - hdrCntQueuedOne
			}
			q.pop()
			if q.n == 0 {
				m.clearWaiting(ci, p)
			}
			m.unaccepted--
			m.storeQueued--
		}
		m.stats.Accepted[p]++
		*budget--
		accepted = true
	}
	return accepted
}

// accessLatency returns the DRAM latency of core ci's access to addr and
// records its completion class, counting the NUMA local/remote split.
func (m *Memory) accessLatency(ci int, addr object.Addr, cls *uint8) int64 {
	if m.domains <= 0 {
		*cls = classDRAM
		return m.lat
	}
	if m.remote(ci, addr) {
		m.stats.RemoteAccesses++
		*cls = classRemote
		return m.lat + m.penalty
	}
	m.stats.LocalAccesses++
	*cls = classDRAM
	return m.lat
}

// domainReady reports whether the domain serving core ci's access to addr
// has per-cycle acceptance budget left, consuming one unit when claim is
// set.
func (m *Memory) domainReady(ci int, addr object.Addr, claim bool) bool {
	if m.domBudget == nil {
		return true
	}
	d := m.effDomain(ci, addr)
	if d >= len(m.domBudget) {
		// Out-of-range affinity override: treat as uncapped.
		return true
	}
	if m.domBudget[d] <= 0 {
		if !claim {
			m.stats.DomainConflicts++
		}
		return false
	}
	if claim {
		m.domBudget[d]--
	}
	return true
}

// insertInflight places an accepted store into the inflight list keeping it
// ordered by completion cycle (commitDue strips a due prefix). Insertion is
// stable — equal completion cycles commit in acceptance order — and a later
// same-address header store is clamped to commit no earlier than an
// in-flight one, preserving the comparator array's issue-order guarantee
// when domain penalties give the two stores different latencies.
func (m *Memory) insertInflight(st inflightStore) {
	if st.header && m.hdrCnt[st.addr]>>16 > 0 {
		for i := m.inflightHead; i < len(m.inflight); i++ {
			if f := &m.inflight[i]; f.header && f.addr == st.addr && f.doneAt > st.doneAt {
				st.doneAt = f.doneAt
			}
		}
	}
	i := len(m.inflight)
	m.inflight = append(m.inflight, st)
	for i > m.inflightHead && m.inflight[i-1].doneAt > st.doneAt {
		m.inflight[i] = m.inflight[i-1]
		i--
	}
	m.inflight[i] = st
}

// clearWaiting clears core ci's waiting bit for port p, dropping the core
// from waitMask when nothing else is waiting on it.
func (m *Memory) clearWaiting(ci int, p Port) {
	if m.waiting[ci] &= ^(uint8(1) << p); m.waiting[ci] == 0 {
		m.waitMask[ci>>6] &^= 1 << (ci & 63)
	}
}

// Quiescent reports whether no issued request is still awaiting acceptance
// by the controller. While quiescent, a Tick accepts nothing and changes no
// statistic — the precondition for fast-forwarding over it.
func (m *Memory) Quiescent() bool { return m.unaccepted == 0 }

// LastInflightDoneAt returns the commit cycle of the last in-flight store —
// the cycle at which the scheduler drains, provided nothing new is issued —
// or 0 when no store is in flight.
func (m *Memory) LastInflightDoneAt() int64 {
	if m.inflightHead == len(m.inflight) {
		return 0
	}
	return m.inflight[len(m.inflight)-1].doneAt
}

// FastForwardBy advances the scheduler delta cycles in one jump, applying
// exactly the cumulative effect the skipped Ticks would have had: the clock
// and the round-robin arbitration pointer advance, due stores commit (in
// order, before any load capture), and due loads complete. The caller must
// ensure the scheduler is Quiescent — with nothing awaiting acceptance, the
// skipped ticks perform no arbitration and touch no counter, so the
// statistics of a fast-forwarded run are bit-identical to the stepped run.
func (m *Memory) FastForwardBy(delta int64) {
	if delta <= 0 {
		return
	}
	m.cycle += delta
	if n := len(m.bufs); n > 0 {
		m.rr = int((int64(m.rr) + delta) % int64(n))
	}
	m.commitDue()
	m.completeDue()
}

// Drained reports whether every buffer and store queue is empty and every
// accepted store has committed. The coprocessor flushes all buffers at the
// end of a collection cycle before the main processor is restarted.
func (m *Memory) Drained() bool {
	return m.inflightHead == len(m.inflight) && m.storeQueued == 0 && m.validLoads == 0
}
