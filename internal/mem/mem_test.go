package mem

import (
	"math/rand"
	"testing"

	"hwgc/internal/object"
)

func newMem(words int, cfg Config, cores int) *Memory {
	m := New(make([]object.Word, words), cfg)
	m.AttachCores(cores)
	return m
}

func TestLoadLatency(t *testing.T) {
	m := newMem(64, Config{Latency: 3, Bandwidth: 4}, 1)
	m.Write(10, 777)
	if !m.IssueLoad(0, BodyLoad, 10) {
		t.Fatal("issue failed on empty buffer")
	}
	// Tick 1: accepted. Completion at accept+3.
	ticks := 0
	for !m.LoadReady(0, BodyLoad) {
		m.Tick()
		ticks++
		if ticks > 10 {
			t.Fatal("load never completed")
		}
	}
	if ticks != 4 { // 1 acceptance tick + 3 latency
		t.Errorf("load took %d ticks, want 4", ticks)
	}
	if got := m.TakeLoad(0, BodyLoad); got != 777 {
		t.Errorf("loaded %d, want 777", got)
	}
	if m.LoadReady(0, BodyLoad) {
		t.Error("buffer not freed by TakeLoad")
	}
}

func TestLoadBufferSingleOutstanding(t *testing.T) {
	m := newMem(64, Config{}, 1)
	if !m.IssueLoad(0, HeaderLoad, 1) {
		t.Fatal("first issue failed")
	}
	if m.IssueLoad(0, HeaderLoad, 2) {
		t.Fatal("second issue on busy load buffer succeeded")
	}
	// The other load port is independent.
	if !m.IssueLoad(0, BodyLoad, 3) {
		t.Fatal("independent port refused")
	}
}

func TestStoreCommitsAfterLatency(t *testing.T) {
	m := newMem(64, Config{Latency: 2}, 1)
	if !m.IssueStore(0, BodyStore, 5, 99) {
		t.Fatal("issue failed")
	}
	m.Tick() // accepted
	if m.Read(5) == 99 {
		t.Fatal("store committed instantly")
	}
	m.Tick()
	m.Tick() // latency elapsed
	if m.Read(5) != 99 {
		t.Fatalf("store not committed: %d", m.Read(5))
	}
	if !m.Drained() {
		t.Fatal("memory not drained after commit")
	}
}

func TestStoreQueueDepth(t *testing.T) {
	m := newMem(64, Config{StoreQueueDepth: 2, Bandwidth: 1}, 1)
	if !m.IssueStore(0, HeaderStore, 1, 1) || !m.IssueStore(0, HeaderStore, 2, 2) {
		t.Fatal("queue should hold two stores")
	}
	if m.IssueStore(0, HeaderStore, 3, 3) {
		t.Fatal("third store accepted past queue depth")
	}
	if m.StoreBufferFree(0, HeaderStore) {
		t.Fatal("full queue reported free")
	}
	m.Tick() // one acceptance drains one slot
	if !m.IssueStore(0, HeaderStore, 3, 3) {
		t.Fatal("slot not freed after acceptance")
	}
}

func TestHeaderLoadOrderedAfterPendingStore(t *testing.T) {
	m := newMem(64, Config{Latency: 4}, 2)
	// Core 0 stores a header to address 7; core 1 loads it concurrently.
	m.Write(7, 1) // stale value
	if !m.IssueStore(0, HeaderStore, 7, 2) {
		t.Fatal("store issue failed")
	}
	if !m.IssueLoad(1, HeaderLoad, 7) {
		t.Fatal("load issue failed")
	}
	for i := 0; i < 32 && !m.LoadReady(1, HeaderLoad); i++ {
		m.Tick()
	}
	if !m.LoadReady(1, HeaderLoad) {
		t.Fatal("load never completed")
	}
	if got := m.TakeLoad(1, HeaderLoad); got != 2 {
		t.Fatalf("header load returned stale value %d, want 2", got)
	}
	if m.Stats().OrderDelays == 0 {
		t.Fatal("comparator array never delayed the load")
	}
}

func TestBodyLoadsAreNotOrdered(t *testing.T) {
	m := newMem(64, Config{Latency: 8}, 2)
	m.Write(9, 1)
	if !m.IssueStore(0, BodyStore, 9, 2) {
		t.Fatal("store issue failed")
	}
	if !m.IssueLoad(1, BodyLoad, 9) {
		t.Fatal("load issue failed")
	}
	for i := 0; i < 32 && !m.LoadReady(1, BodyLoad); i++ {
		m.Tick()
	}
	// Body accesses need no ordering (each body word is written and read
	// exactly once per GC cycle by the algorithm, never concurrently); the
	// scheduler is free to return either value, and the comparator must not
	// have intervened.
	m.TakeLoad(1, BodyLoad)
	if m.Stats().OrderDelays != 0 {
		t.Fatal("comparator array delayed a body load")
	}
}

func TestBandwidthLimitsAcceptance(t *testing.T) {
	m := newMem(64, Config{Latency: 1, Bandwidth: 2}, 4)
	for c := 0; c < 4; c++ {
		if !m.IssueLoad(c, BodyLoad, object.Addr(c+1)) {
			t.Fatal("issue failed")
		}
	}
	m.Tick() // accepts only 2
	st := m.Stats()
	if st.Accepted[BodyLoad] != 2 {
		t.Fatalf("accepted %d in one cycle with bandwidth 2", st.Accepted[BodyLoad])
	}
	if st.SaturatedCyc != 1 || st.RejectedByBW != 1 {
		t.Fatalf("saturation not recorded: %+v", st)
	}
	m.Tick()
	if m.Stats().Accepted[BodyLoad] != 4 {
		t.Fatalf("remaining loads not accepted next cycle")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// With bandwidth 1 and two cores issuing every cycle, acceptance must
	// alternate rather than starving core 1.
	m := newMem(64, Config{Latency: 1, Bandwidth: 1}, 2)
	accepted := [2]int{}
	for cycle := 0; cycle < 20; cycle++ {
		for c := 0; c < 2; c++ {
			m.IssueLoad(c, BodyLoad, 1)
		}
		m.Tick()
		for c := 0; c < 2; c++ {
			if m.LoadReady(c, BodyLoad) {
				m.TakeLoad(c, BodyLoad)
				accepted[c]++
			}
		}
	}
	if accepted[0] == 0 || accepted[1] == 0 {
		t.Fatalf("starvation under round robin: %v", accepted)
	}
	diff := accepted[0] - accepted[1]
	if diff < -2 || diff > 2 {
		t.Fatalf("unfair acceptance: %v", accepted)
	}
}

func TestDrainedTracksAllTraffic(t *testing.T) {
	m := newMem(64, Config{Latency: 5}, 2)
	if !m.Drained() {
		t.Fatal("fresh memory not drained")
	}
	m.IssueStore(1, BodyStore, 3, 3)
	if m.Drained() {
		t.Fatal("drained with queued store")
	}
	m.IssueLoad(0, HeaderLoad, 4)
	for i := 0; i < 16; i++ {
		m.Tick()
	}
	if m.Drained() {
		t.Fatal("drained with unconsumed load")
	}
	m.TakeLoad(0, HeaderLoad)
	if !m.Drained() {
		t.Fatal("not drained after all traffic settled")
	}
}

func TestExtraLatencyAddsUp(t *testing.T) {
	base := measureLoadTicks(t, Config{Latency: 3})
	slow := measureLoadTicks(t, Config{Latency: 3, ExtraLatency: 20})
	if slow-base != 20 {
		t.Fatalf("extra latency added %d ticks, want 20", slow-base)
	}
}

func measureLoadTicks(t *testing.T, cfg Config) int {
	t.Helper()
	m := newMem(16, cfg, 1)
	m.IssueLoad(0, BodyLoad, 1)
	ticks := 0
	for !m.LoadReady(0, BodyLoad) {
		m.Tick()
		ticks++
		if ticks > 100 {
			t.Fatal("load never completed")
		}
	}
	return ticks
}

func TestMisusePanics(t *testing.T) {
	m := newMem(16, Config{}, 1)
	for _, fn := range []func(){
		func() { m.IssueLoad(0, BodyStore, 1) },
		func() { m.IssueStore(0, BodyLoad, 1, 1) },
		func() { m.TakeLoad(0, BodyLoad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("misuse did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestHeaderOrderingProperty drives random header store/load pairs to the
// same small address range from many cores and checks that a header load
// never observes a value older than the last store issued before it to the
// same address (single-writer discipline, as the locking protocol
// guarantees).
func TestHeaderOrderingProperty(t *testing.T) {
	const cores = 4
	rng := rand.New(rand.NewSource(5))
	m := newMem(32, Config{Latency: 3, Bandwidth: 2}, cores)

	latest := make(map[object.Addr]object.Word) // last value stored per addr
	type pendingLoad struct {
		addr object.Addr
		want object.Word
	}
	pend := make([]*pendingLoad, cores)
	var next object.Word = 1

	for cycle := 0; cycle < 5000; cycle++ {
		for c := 0; c < cores; c++ {
			if pend[c] != nil {
				if m.LoadReady(c, HeaderLoad) {
					got := m.TakeLoad(c, HeaderLoad)
					if got < pend[c].want {
						t.Fatalf("cycle %d: core %d read %d from %d, expected at least %d",
							cycle, c, got, pend[c].addr, pend[c].want)
					}
					pend[c] = nil
				}
				continue
			}
			addr := object.Addr(1 + rng.Intn(4))
			if c == int(addr)%cores && rng.Intn(2) == 0 {
				// Single writer per address: core (addr mod cores).
				if m.IssueStore(c, HeaderStore, addr, next) {
					latest[addr] = next
					next++
				}
			} else if rng.Intn(2) == 0 {
				if m.IssueLoad(c, HeaderLoad, addr) {
					pend[c] = &pendingLoad{addr: addr, want: latest[addr]}
				}
			}
		}
		m.Tick()
	}
}

func TestBankModelDefersConflicts(t *testing.T) {
	// Two loads to the same bank in the same cycle: only one accepted.
	m := newMem(256, Config{Latency: 1, Bandwidth: 8, Banks: 4, BankBusy: 3, BankInterleave: 8}, 2)
	m.IssueLoad(0, BodyLoad, 16) // bank (16/8)%4 = 2
	m.IssueLoad(1, BodyLoad, 48) // bank (48/8)%4 = 2: same bank
	m.Tick()
	st := m.Stats()
	if st.Accepted[BodyLoad] != 1 {
		t.Fatalf("accepted %d requests to one busy bank", st.Accepted[BodyLoad])
	}
	if st.BankConflicts == 0 {
		t.Fatal("bank conflict not recorded")
	}
	// Different bank is unaffected.
	m.IssueLoad(0, HeaderLoad, 24) // bank 3... wait core 0's BodyLoad accepted; use header port
	m.Tick()
	if m.Stats().Accepted[HeaderLoad] != 1 {
		t.Fatal("independent bank refused")
	}
	// After BankBusy elapses the deferred load gets in.
	for i := 0; i < 8; i++ {
		m.Tick()
	}
	if m.Stats().Accepted[BodyLoad] != 2 {
		t.Fatalf("deferred load never accepted: %+v", m.Stats())
	}
}

func TestBankModelOffByDefault(t *testing.T) {
	m := newMem(64, Config{}, 2)
	m.IssueLoad(0, BodyLoad, 16)
	m.IssueLoad(1, BodyLoad, 16)
	m.Tick()
	if m.Stats().BankConflicts != 0 {
		t.Fatal("bank conflicts recorded with the model disabled")
	}
	if m.Stats().Accepted[BodyLoad] != 2 {
		t.Fatal("both loads should be accepted without banks")
	}
}
