package mem

import (
	"math/rand"
	"reflect"
	"testing"

	"hwgc/internal/object"
)

func newMem(words int, cfg Config, cores int) *Memory {
	m := New(make([]object.Word, words), cfg)
	m.AttachCores(cores)
	return m
}

func TestLoadLatency(t *testing.T) {
	m := newMem(64, Config{Latency: 3, Bandwidth: 4}, 1)
	m.Write(10, 777)
	if !m.IssueLoad(0, BodyLoad, 10) {
		t.Fatal("issue failed on empty buffer")
	}
	// Tick 1: accepted. Completion at accept+3.
	ticks := 0
	for !m.LoadReady(0, BodyLoad) {
		m.Tick()
		ticks++
		if ticks > 10 {
			t.Fatal("load never completed")
		}
	}
	if ticks != 4 { // 1 acceptance tick + 3 latency
		t.Errorf("load took %d ticks, want 4", ticks)
	}
	if got := m.TakeLoad(0, BodyLoad); got != 777 {
		t.Errorf("loaded %d, want 777", got)
	}
	if m.LoadReady(0, BodyLoad) {
		t.Error("buffer not freed by TakeLoad")
	}
}

func TestLoadBufferSingleOutstanding(t *testing.T) {
	m := newMem(64, Config{}, 1)
	if !m.IssueLoad(0, HeaderLoad, 1) {
		t.Fatal("first issue failed")
	}
	if m.IssueLoad(0, HeaderLoad, 2) {
		t.Fatal("second issue on busy load buffer succeeded")
	}
	// The other load port is independent.
	if !m.IssueLoad(0, BodyLoad, 3) {
		t.Fatal("independent port refused")
	}
}

func TestStoreCommitsAfterLatency(t *testing.T) {
	m := newMem(64, Config{Latency: 2}, 1)
	if !m.IssueStore(0, BodyStore, 5, 99) {
		t.Fatal("issue failed")
	}
	m.Tick() // accepted
	if m.Read(5) == 99 {
		t.Fatal("store committed instantly")
	}
	m.Tick()
	m.Tick() // latency elapsed
	if m.Read(5) != 99 {
		t.Fatalf("store not committed: %d", m.Read(5))
	}
	if !m.Drained() {
		t.Fatal("memory not drained after commit")
	}
}

func TestStoreQueueDepth(t *testing.T) {
	m := newMem(64, Config{StoreQueueDepth: 2, Bandwidth: 1}, 1)
	if !m.IssueStore(0, HeaderStore, 1, 1) || !m.IssueStore(0, HeaderStore, 2, 2) {
		t.Fatal("queue should hold two stores")
	}
	if m.IssueStore(0, HeaderStore, 3, 3) {
		t.Fatal("third store accepted past queue depth")
	}
	if m.StoreBufferFree(0, HeaderStore) {
		t.Fatal("full queue reported free")
	}
	m.Tick() // one acceptance drains one slot
	if !m.IssueStore(0, HeaderStore, 3, 3) {
		t.Fatal("slot not freed after acceptance")
	}
}

func TestHeaderLoadOrderedAfterPendingStore(t *testing.T) {
	m := newMem(64, Config{Latency: 4}, 2)
	// Core 0 stores a header to address 7; core 1 loads it concurrently.
	m.Write(7, 1) // stale value
	if !m.IssueStore(0, HeaderStore, 7, 2) {
		t.Fatal("store issue failed")
	}
	if !m.IssueLoad(1, HeaderLoad, 7) {
		t.Fatal("load issue failed")
	}
	for i := 0; i < 32 && !m.LoadReady(1, HeaderLoad); i++ {
		m.Tick()
	}
	if !m.LoadReady(1, HeaderLoad) {
		t.Fatal("load never completed")
	}
	if got := m.TakeLoad(1, HeaderLoad); got != 2 {
		t.Fatalf("header load returned stale value %d, want 2", got)
	}
	if m.Stats().OrderDelays == 0 {
		t.Fatal("comparator array never delayed the load")
	}
}

func TestBodyLoadsAreNotOrdered(t *testing.T) {
	m := newMem(64, Config{Latency: 8}, 2)
	m.Write(9, 1)
	if !m.IssueStore(0, BodyStore, 9, 2) {
		t.Fatal("store issue failed")
	}
	if !m.IssueLoad(1, BodyLoad, 9) {
		t.Fatal("load issue failed")
	}
	for i := 0; i < 32 && !m.LoadReady(1, BodyLoad); i++ {
		m.Tick()
	}
	// Body accesses need no ordering (each body word is written and read
	// exactly once per GC cycle by the algorithm, never concurrently); the
	// scheduler is free to return either value, and the comparator must not
	// have intervened.
	m.TakeLoad(1, BodyLoad)
	if m.Stats().OrderDelays != 0 {
		t.Fatal("comparator array delayed a body load")
	}
}

func TestBandwidthLimitsAcceptance(t *testing.T) {
	m := newMem(64, Config{Latency: 1, Bandwidth: 2}, 4)
	for c := 0; c < 4; c++ {
		if !m.IssueLoad(c, BodyLoad, object.Addr(c+1)) {
			t.Fatal("issue failed")
		}
	}
	m.Tick() // accepts only 2
	st := m.Stats()
	if st.Accepted[BodyLoad] != 2 {
		t.Fatalf("accepted %d in one cycle with bandwidth 2", st.Accepted[BodyLoad])
	}
	if st.SaturatedCyc != 1 || st.RejectedByBW != 1 {
		t.Fatalf("saturation not recorded: %+v", st)
	}
	m.Tick()
	if m.Stats().Accepted[BodyLoad] != 4 {
		t.Fatalf("remaining loads not accepted next cycle")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// With bandwidth 1 and two cores issuing every cycle, acceptance must
	// alternate rather than starving core 1.
	m := newMem(64, Config{Latency: 1, Bandwidth: 1}, 2)
	accepted := [2]int{}
	for cycle := 0; cycle < 20; cycle++ {
		for c := 0; c < 2; c++ {
			m.IssueLoad(c, BodyLoad, 1)
		}
		m.Tick()
		for c := 0; c < 2; c++ {
			if m.LoadReady(c, BodyLoad) {
				m.TakeLoad(c, BodyLoad)
				accepted[c]++
			}
		}
	}
	if accepted[0] == 0 || accepted[1] == 0 {
		t.Fatalf("starvation under round robin: %v", accepted)
	}
	diff := accepted[0] - accepted[1]
	if diff < -2 || diff > 2 {
		t.Fatalf("unfair acceptance: %v", accepted)
	}
}

func TestDrainedTracksAllTraffic(t *testing.T) {
	m := newMem(64, Config{Latency: 5}, 2)
	if !m.Drained() {
		t.Fatal("fresh memory not drained")
	}
	m.IssueStore(1, BodyStore, 3, 3)
	if m.Drained() {
		t.Fatal("drained with queued store")
	}
	m.IssueLoad(0, HeaderLoad, 4)
	for i := 0; i < 16; i++ {
		m.Tick()
	}
	if m.Drained() {
		t.Fatal("drained with unconsumed load")
	}
	m.TakeLoad(0, HeaderLoad)
	if !m.Drained() {
		t.Fatal("not drained after all traffic settled")
	}
}

func TestExtraLatencyAddsUp(t *testing.T) {
	base := measureLoadTicks(t, Config{Latency: 3})
	slow := measureLoadTicks(t, Config{Latency: 3, ExtraLatency: 20})
	if slow-base != 20 {
		t.Fatalf("extra latency added %d ticks, want 20", slow-base)
	}
}

func measureLoadTicks(t *testing.T, cfg Config) int {
	t.Helper()
	m := newMem(16, cfg, 1)
	m.IssueLoad(0, BodyLoad, 1)
	ticks := 0
	for !m.LoadReady(0, BodyLoad) {
		m.Tick()
		ticks++
		if ticks > 100 {
			t.Fatal("load never completed")
		}
	}
	return ticks
}

func TestMisusePanics(t *testing.T) {
	m := newMem(16, Config{}, 1)
	for _, fn := range []func(){
		func() { m.IssueLoad(0, BodyStore, 1) },
		func() { m.IssueStore(0, BodyLoad, 1, 1) },
		func() { m.TakeLoad(0, BodyLoad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("misuse did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestHeaderOrderingProperty drives random header store/load pairs to the
// same small address range from many cores and checks that a header load
// never observes a value older than the last store issued before it to the
// same address (single-writer discipline, as the locking protocol
// guarantees).
func TestHeaderOrderingProperty(t *testing.T) {
	const cores = 4
	rng := rand.New(rand.NewSource(5))
	m := newMem(32, Config{Latency: 3, Bandwidth: 2}, cores)

	latest := make(map[object.Addr]object.Word) // last value stored per addr
	type pendingLoad struct {
		addr object.Addr
		want object.Word
	}
	pend := make([]*pendingLoad, cores)
	var next object.Word = 1

	for cycle := 0; cycle < 5000; cycle++ {
		for c := 0; c < cores; c++ {
			if pend[c] != nil {
				if m.LoadReady(c, HeaderLoad) {
					got := m.TakeLoad(c, HeaderLoad)
					if got < pend[c].want {
						t.Fatalf("cycle %d: core %d read %d from %d, expected at least %d",
							cycle, c, got, pend[c].addr, pend[c].want)
					}
					pend[c] = nil
				}
				continue
			}
			addr := object.Addr(1 + rng.Intn(4))
			if c == int(addr)%cores && rng.Intn(2) == 0 {
				// Single writer per address: core (addr mod cores).
				if m.IssueStore(c, HeaderStore, addr, next) {
					latest[addr] = next
					next++
				}
			} else if rng.Intn(2) == 0 {
				if m.IssueLoad(c, HeaderLoad, addr) {
					pend[c] = &pendingLoad{addr: addr, want: latest[addr]}
				}
			}
		}
		m.Tick()
	}
}

func TestBankModelDefersConflicts(t *testing.T) {
	// Two loads to the same bank in the same cycle: only one accepted.
	m := newMem(256, Config{Latency: 1, Bandwidth: 8, Banks: 4, BankBusy: 3, BankInterleave: 8}, 2)
	m.IssueLoad(0, BodyLoad, 16) // bank (16/8)%4 = 2
	m.IssueLoad(1, BodyLoad, 48) // bank (48/8)%4 = 2: same bank
	m.Tick()
	st := m.Stats()
	if st.Accepted[BodyLoad] != 1 {
		t.Fatalf("accepted %d requests to one busy bank", st.Accepted[BodyLoad])
	}
	if st.BankConflicts == 0 {
		t.Fatal("bank conflict not recorded")
	}
	// Different bank is unaffected.
	m.IssueLoad(0, HeaderLoad, 24) // bank 3... wait core 0's BodyLoad accepted; use header port
	m.Tick()
	if m.Stats().Accepted[HeaderLoad] != 1 {
		t.Fatal("independent bank refused")
	}
	// After BankBusy elapses the deferred load gets in.
	for i := 0; i < 8; i++ {
		m.Tick()
	}
	if m.Stats().Accepted[BodyLoad] != 2 {
		t.Fatalf("deferred load never accepted: %+v", m.Stats())
	}
}

func TestBankModelOffByDefault(t *testing.T) {
	m := newMem(64, Config{}, 2)
	m.IssueLoad(0, BodyLoad, 16)
	m.IssueLoad(1, BodyLoad, 16)
	m.Tick()
	if m.Stats().BankConflicts != 0 {
		t.Fatal("bank conflicts recorded with the model disabled")
	}
	if m.Stats().Accepted[BodyLoad] != 2 {
		t.Fatal("both loads should be accepted without banks")
	}
}

// waitReady ticks until the load completes, returning the tick count.
func waitReady(t *testing.T, m *Memory, core int, port Port) int {
	t.Helper()
	ticks := 0
	for !m.LoadReady(core, port) {
		m.Tick()
		if ticks++; ticks > 64 {
			t.Fatal("load never completed")
		}
	}
	return ticks
}

func TestNUMARemotePenalty(t *testing.T) {
	// Two domains interleaved at 8 words: [0,8) is domain 0, [8,16) domain 1.
	cfg := Config{Latency: 3, Bandwidth: 8, Domains: 2, RemotePenalty: 5, DomainInterleave: 8}
	m := newMem(64, cfg, 2)

	// Core 0 is affine to domain 0: a domain-0 address is local.
	m.IssueLoad(0, BodyLoad, 4)
	if got := waitReady(t, m, 0, BodyLoad); got != 4 { // 1 acceptance + 3 latency
		t.Errorf("local load took %d ticks, want 4", got)
	}
	m.TakeLoad(0, BodyLoad)

	// A domain-1 address pays the remote penalty.
	m.IssueLoad(0, BodyLoad, 12)
	if got := waitReady(t, m, 0, BodyLoad); got != 9 { // 1 + 3 + 5
		t.Errorf("remote load took %d ticks, want 9", got)
	}
	m.TakeLoad(0, BodyLoad)

	// Core 1 is affine to domain 1: the same address is local for it.
	m.IssueLoad(1, BodyLoad, 12)
	if got := waitReady(t, m, 1, BodyLoad); got != 4 {
		t.Errorf("core-1 local load took %d ticks, want 4", got)
	}
	m.TakeLoad(1, BodyLoad)

	st := m.Stats()
	if st.LocalAccesses != 2 || st.RemoteAccesses != 1 {
		t.Fatalf("local/remote = %d/%d, want 2/1", st.LocalAccesses, st.RemoteAccesses)
	}
}

func TestNUMAAffinityOverride(t *testing.T) {
	cfg := Config{Latency: 2, Domains: 2, RemotePenalty: 10, DomainInterleave: 8,
		Affinity: []int{1, 0}}
	m := newMem(64, cfg, 2)
	// Core 0 is rebound to domain 1, so a domain-1 address is local.
	m.IssueLoad(0, BodyLoad, 8)
	if got := waitReady(t, m, 0, BodyLoad); got != 3 {
		t.Errorf("rebound core's load took %d ticks, want 3", got)
	}
	if st := m.Stats(); st.LocalAccesses != 1 || st.RemoteAccesses != 0 {
		t.Fatalf("local/remote = %d/%d, want 1/0", st.LocalAccesses, st.RemoteAccesses)
	}
}

func TestNUMALocalWindow(t *testing.T) {
	cfg := Config{Latency: 2, Domains: 4, RemotePenalty: 10, DomainInterleave: 4}
	m := newMem(64, cfg, 1)
	// Address 20 is in domain (20/4)%4 = 1: remote for core 0.
	m.IssueLoad(0, BodyLoad, 20)
	if got := waitReady(t, m, 0, BodyLoad); got != 13 {
		t.Errorf("remote load took %d ticks, want 13", got)
	}
	m.TakeLoad(0, BodyLoad)
	// Marking [16, 32) as the locality-aware window makes it local to every
	// core regardless of the interleaving.
	m.SetLocalWindow(16, 32)
	m.IssueLoad(0, BodyLoad, 20)
	if got := waitReady(t, m, 0, BodyLoad); got != 3 {
		t.Errorf("windowed load took %d ticks, want 3", got)
	}
	if st := m.Stats(); st.LocalAccesses != 1 || st.RemoteAccesses != 1 {
		t.Fatalf("local/remote = %d/%d, want 1/1", st.LocalAccesses, st.RemoteAccesses)
	}
}

func TestNUMADomainBandwidth(t *testing.T) {
	// Global bandwidth 8, but each domain accepts one request per cycle.
	cfg := Config{Latency: 1, Bandwidth: 8, Domains: 2, RemotePenalty: 1,
		DomainInterleave: 8, DomainBandwidth: 1}
	m := newMem(64, cfg, 4)
	// Three loads into domain 0, one into domain 1.
	m.IssueLoad(0, BodyLoad, 0)
	m.IssueLoad(1, BodyLoad, 4)
	m.IssueLoad(2, BodyLoad, 6)
	m.IssueLoad(3, BodyLoad, 8)
	m.Tick()
	st := m.Stats()
	if st.Accepted[BodyLoad] != 2 { // one per domain
		t.Fatalf("accepted %d with per-domain budget 1, want 2", st.Accepted[BodyLoad])
	}
	if st.DomainConflicts == 0 {
		t.Fatal("domain conflict not recorded")
	}
	m.Tick()
	m.Tick()
	if st := m.Stats(); st.Accepted[BodyLoad] != 4 {
		t.Fatalf("deferred loads never accepted: %+v", st)
	}
}

func TestCacheHitPath(t *testing.T) {
	cfg := Config{Latency: 6, Bandwidth: 8, L1Sets: 4, L1Ways: 2, L2Sets: 16,
		L2Ways: 4, MSHRs: 4, LineWords: 4}
	m := newMem(256, cfg, 2)
	m.Write(17, 42)

	// Cold: a miss pays the full DRAM latency and fills both levels.
	m.IssueLoad(0, BodyLoad, 17)
	if got := waitReady(t, m, 0, BodyLoad); got != 7 { // 1 + 6
		t.Errorf("cold miss took %d ticks, want 7", got)
	}
	if got := m.TakeLoad(0, BodyLoad); got != 42 {
		t.Errorf("miss returned %d, want 42", got)
	}

	// Warm, same line (addresses 16..19 share line 4): L1 hit, one cycle,
	// no controller acceptance.
	accepted := m.Stats().Accepted[BodyLoad]
	m.IssueLoad(0, BodyLoad, 19)
	if got := waitReady(t, m, 0, BodyLoad); got != HitLatencyL1 {
		t.Errorf("L1 hit took %d ticks, want %d", got, HitLatencyL1)
	}
	m.TakeLoad(0, BodyLoad)
	if got := m.Stats().Accepted[BodyLoad]; got != accepted {
		t.Error("an L1 hit consumed controller bandwidth")
	}

	// The other core's private L1 is cold, but the shared L2 hits (and
	// fills that core's L1).
	m.IssueLoad(1, BodyLoad, 17)
	if got := waitReady(t, m, 1, BodyLoad); got != HitLatencyL2 {
		t.Errorf("L2 hit took %d ticks, want %d", got, HitLatencyL2)
	}
	m.TakeLoad(1, BodyLoad)
	m.IssueLoad(1, BodyLoad, 16)
	if got := waitReady(t, m, 1, BodyLoad); got != HitLatencyL1 {
		t.Errorf("post-fill L1 hit took %d ticks, want %d", got, HitLatencyL1)
	}
	m.TakeLoad(1, BodyLoad)

	st := m.Stats()
	if st.L1Hits != 2 || st.L2Hits != 1 || st.L1Misses != 2 || st.L2Misses != 1 {
		t.Fatalf("hit/miss counters = %+v", st)
	}
}

func TestCacheMSHRExhaustionStalls(t *testing.T) {
	cfg := Config{Latency: 8, L1Sets: 4, MSHRs: 1}
	m := newMem(256, cfg, 2)
	if !m.IssueLoad(0, BodyLoad, 0) {
		t.Fatal("first miss refused")
	}
	if m.IssueLoad(1, BodyLoad, 64) {
		t.Fatal("second miss accepted with a single MSHR")
	}
	if m.Stats().MSHRFullStalls == 0 {
		t.Fatal("MSHR-full stall not recorded")
	}
	waitReady(t, m, 0, BodyLoad)
	m.TakeLoad(0, BodyLoad)
	// Completion freed the MSHR.
	if !m.IssueLoad(1, BodyLoad, 64) {
		t.Fatal("MSHR not freed by completion")
	}
}

func TestCachePendingStoreBypassesTags(t *testing.T) {
	cfg := Config{Latency: 5, L1Sets: 4, MSHRs: 4, LineWords: 4}
	m := newMem(256, cfg, 2)
	m.Write(8, 1)
	// Warm the line so a naive lookup would hit.
	m.IssueLoad(0, BodyLoad, 8)
	waitReady(t, m, 0, BodyLoad)
	m.TakeLoad(0, BodyLoad)
	// With a store to the same address still pending, the load must go to
	// memory (the tag array holds no data), not report a stale hit.
	m.IssueStore(0, HeaderStore, 8, 2)
	m.IssueLoad(1, HeaderLoad, 8)
	waitReady(t, m, 1, HeaderLoad)
	if got := m.TakeLoad(1, HeaderLoad); got != 2 {
		t.Fatalf("load under a pending same-address store returned %d, want 2", got)
	}
}

func TestHierarchyStateRoundTrip(t *testing.T) {
	cfg := Config{Latency: 4, Bandwidth: 2, Domains: 2, RemotePenalty: 6,
		DomainInterleave: 8, DomainBandwidth: 1, L1Sets: 4, L1Ways: 2,
		MSHRs: 2, LineWords: 4}
	m := newMem(256, cfg, 4)
	// Put the scheduler mid-flight: warm lines, pending loads and stores.
	m.IssueLoad(0, BodyLoad, 3)
	m.IssueLoad(1, BodyLoad, 40)
	m.IssueStore(2, HeaderStore, 9, 7)
	m.IssueStore(2, BodyStore, 60, 8)
	m.Tick()
	m.Tick()
	m.IssueLoad(3, HeaderLoad, 9)
	m.Tick()

	st := m.CaptureState()
	m2 := New(make([]object.Word, 256), cfg)
	m2.AttachCores(4)
	if err := m2.RestoreState(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if st2 := m2.CaptureState(); !reflect.DeepEqual(st, st2) {
		t.Fatalf("state changed across restore:\n%+v\n%+v", st, st2)
	}
	// The restored scheduler must evolve identically.
	for i := 0; i < 32; i++ {
		m.Tick()
		m2.Tick()
	}
	if !reflect.DeepEqual(m.CaptureState(), m2.CaptureState()) {
		t.Fatal("restored scheduler diverged from the original")
	}
}

func TestHierarchyStateRejectsMismatch(t *testing.T) {
	flat := newMem(64, Config{}, 1)
	hier := newMem(64, Config{Domains: 2, L1Sets: 4}, 1)
	st := hier.CaptureState()
	st.L1Comp = []int64{1 << 16}
	if err := flat.RestoreState(st); err == nil {
		t.Fatal("flat scheduler accepted hierarchy completions")
	}
	st2 := flat.CaptureState()
	st2.L1 = [][]CacheLineState{{{Valid: true, Tag: 1}}}
	if err := flat.RestoreState(st2); err == nil {
		t.Fatal("flat scheduler accepted cache tags")
	}
	st3 := hier.CaptureState()
	st3.Cores[0].HeaderLoad = LoadBuffer{Valid: true, Accepted: true, Class: 9}
	if err := hier.RestoreState(st3); err == nil {
		t.Fatal("out-of-range completion class accepted")
	}
}
