package mem

import (
	"fmt"

	"hwgc/internal/object"
)

// The snapshot state of the memory scheduler captures only the primary
// state — the clock, arbitration pointer, per-core buffers and queues, the
// in-flight split transactions, and the load-completion order. The derived
// occupancy counters (unaccepted, storeQueued, validLoads, acceptedLoads),
// the per-address header-store counters and the waiting bitmaps are all
// recomputed from it on restore, so a snapshot cannot encode an
// inconsistent scheduler.

// LoadBuffer is the serializable form of one single-entry load buffer.
// Class is the completion class of an accepted load (0 when the memory
// hierarchy is disabled, where classDRAM is the only class).
type LoadBuffer struct {
	Valid    bool
	Accepted bool
	Ready    bool
	Class    uint8
	Addr     object.Addr
	Data     object.Word
	DoneAt   int64
}

// StoreReq is one store waiting in a write-behind queue.
type StoreReq struct {
	Addr object.Addr
	Data object.Word
	Seq  int64
}

// InflightStore is one accepted, not yet committed store.
type InflightStore struct {
	Addr   object.Addr
	Data   object.Word
	Header bool
	DoneAt int64
}

// CoreIOState is the per-core slice of the scheduler state: the two load
// buffers and the two write-behind store queues (in FIFO order).
type CoreIOState struct {
	HeaderLoad   LoadBuffer
	BodyLoad     LoadBuffer
	HeaderStores []StoreReq
	BodyStores   []StoreReq
}

// CacheLineState is one tag-only line of the L1/L2 model.
type CacheLineState struct {
	Valid bool
	Tag   int64
	Last  int64
}

// State is the complete serializable state of the memory scheduler
// mid-collection. Completions holds the classDRAM load-completion queue
// front to back; each entry encodes doneAt<<16 | core<<1 | portIdx exactly
// as the live queue does. RemoteComp, L1Comp and L2Comp are the completion
// queues of the other latency classes (NUMA-remote, L1 hit, L2 hit), empty
// unless the memory hierarchy is enabled. The MSHR occupancy is derived
// state — every valid, not-ready load of a DRAM class holds one — and is
// recomputed on restore.
type State struct {
	Cycle       int64
	RR          int
	Seq         int64
	Stats       Stats
	BusyUntil   []int64
	Cores       []CoreIOState
	Inflight    []InflightStore
	Completions []int64

	RemoteComp []int64
	L1Comp     []int64
	L2Comp     []int64
	LRUTick    int64
	L1         [][]CacheLineState
	L2         []CacheLineState
}

// at returns the i-th queued entry in FIFO order.
func (r *intRing) at(i int) int64 {
	p := r.head + i
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	return r.buf[p]
}

func captureBuffer(b *buffer) LoadBuffer {
	return LoadBuffer{
		Valid:    b.valid,
		Accepted: b.accepted,
		Ready:    b.ready,
		Class:    b.class,
		Addr:     b.addr,
		Data:     b.data,
		DoneAt:   b.doneAt,
	}
}

func captureLines(lines []cacheLine) []CacheLineState {
	out := make([]CacheLineState, len(lines))
	for i, l := range lines {
		out[i] = CacheLineState{Valid: l.valid, Tag: l.tag, Last: l.last}
	}
	return out
}

func captureRing(r *intRing) []int64 {
	var out []int64
	for i := 0; i < r.n; i++ {
		out = append(out, r.at(i))
	}
	return out
}

func captureQueue(q *storeRing) []StoreReq {
	if q.n == 0 {
		return nil
	}
	out := make([]StoreReq, q.n)
	for i := range out {
		s := q.at(i)
		out[i] = StoreReq{Addr: s.addr, Data: s.data, Seq: s.seq}
	}
	return out
}

// CaptureState returns a deep copy of the scheduler's state. The backing
// word array is owned by the heap and captured there, not here.
func (m *Memory) CaptureState() *State {
	st := &State{
		Cycle:     m.cycle,
		RR:        m.rr,
		Seq:       m.seq,
		Stats:     m.stats,
		BusyUntil: append([]int64(nil), m.busyUntil...),
		Cores:     make([]CoreIOState, len(m.bufs)),
	}
	for i := range m.bufs {
		st.Cores[i] = CoreIOState{
			HeaderLoad:   captureBuffer(&m.bufs[i][HeaderLoad]),
			BodyLoad:     captureBuffer(&m.bufs[i][BodyLoad]),
			HeaderStores: captureQueue(&m.storeQ[i][storeIdx(HeaderStore)]),
			BodyStores:   captureQueue(&m.storeQ[i][storeIdx(BodyStore)]),
		}
	}
	for _, s := range m.inflight[m.inflightHead:] {
		st.Inflight = append(st.Inflight, InflightStore{
			Addr: s.addr, Data: s.data, Header: s.header, DoneAt: s.doneAt,
		})
	}
	st.Completions = captureRing(&m.completions)
	if m.hier {
		st.RemoteComp = captureRing(&m.extraComp[classRemote-1])
		st.L1Comp = captureRing(&m.extraComp[classL1-1])
		st.L2Comp = captureRing(&m.extraComp[classL2-1])
	}
	if m.l1Sets > 0 {
		st.LRUTick = m.lruTick
		st.L1 = make([][]CacheLineState, len(m.l1))
		for i := range m.l1 {
			st.L1[i] = captureLines(m.l1[i])
		}
		st.L2 = captureLines(m.l2)
	}
	return st
}

// RestoreState overwrites the scheduler's state from a captured state and
// rebuilds every derived counter. AttachCores must have been called for the
// same core count first (it has zeroed hdrCnt and sized the buffers).
func (m *Memory) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("mem: nil state")
	}
	n := len(m.bufs)
	if len(st.Cores) != n {
		return fmt.Errorf("mem: state for %d cores, scheduler has %d", len(st.Cores), n)
	}
	if len(st.BusyUntil) != len(m.busyUntil) {
		return fmt.Errorf("mem: state has %d bank timers, scheduler has %d", len(st.BusyUntil), len(m.busyUntil))
	}
	size := object.Addr(len(m.data))
	checkAddr := func(what string, a object.Addr) error {
		if a >= size {
			return fmt.Errorf("mem: state %s address %d outside memory (%d words)", what, a, size)
		}
		return nil
	}
	for i, c := range st.Cores {
		if len(c.HeaderStores) > m.sqDepth || len(c.BodyStores) > m.sqDepth {
			return fmt.Errorf("mem: state core %d store queue exceeds depth %d", i, m.sqDepth)
		}
		for _, b := range []LoadBuffer{c.HeaderLoad, c.BodyLoad} {
			if b.Valid {
				if err := checkAddr("load", b.Addr); err != nil {
					return err
				}
			}
		}
		for _, s := range append(append([]StoreReq(nil), c.HeaderStores...), c.BodyStores...) {
			if err := checkAddr("store", s.Addr); err != nil {
				return err
			}
		}
	}
	var lastDone int64
	for _, s := range st.Inflight {
		if err := checkAddr("inflight store", s.Addr); err != nil {
			return err
		}
		if s.DoneAt < lastDone {
			return fmt.Errorf("mem: state inflight stores not ordered by completion cycle")
		}
		lastDone = s.DoneAt
	}
	checkComp := func(what string, comp []int64, ring *intRing) error {
		if ring == nil {
			if len(comp) > 0 {
				return fmt.Errorf("mem: state has %s load completions but the model is disabled", what)
			}
			return nil
		}
		if len(comp) > len(ring.buf) {
			return fmt.Errorf("mem: state has %d %s load completions, capacity is %d",
				len(comp), what, len(ring.buf))
		}
		var last int64
		for _, e := range comp {
			if ci := int(e >> 1 & 0x7fff); ci >= n {
				return fmt.Errorf("mem: state %s load completion for core %d, have %d", what, ci, n)
			}
			if e>>16 < last {
				return fmt.Errorf("mem: state %s load completions not ordered by completion cycle", what)
			}
			last = e >> 16
		}
		return nil
	}
	ringOrNil := func(cls uint8, on bool) *intRing {
		if !on {
			return nil
		}
		return m.ring(cls)
	}
	if err := checkComp("dram", st.Completions, &m.completions); err != nil {
		return err
	}
	if err := checkComp("remote", st.RemoteComp, ringOrNil(classRemote, m.domains > 0)); err != nil {
		return err
	}
	if err := checkComp("l1-hit", st.L1Comp, ringOrNil(classL1, m.l1Sets > 0)); err != nil {
		return err
	}
	if err := checkComp("l2-hit", st.L2Comp, ringOrNil(classL2, m.l1Sets > 0)); err != nil {
		return err
	}
	for i, c := range st.Cores {
		for _, b := range []LoadBuffer{c.HeaderLoad, c.BodyLoad} {
			if !b.Valid {
				continue
			}
			switch {
			case b.Class >= numClasses:
				return fmt.Errorf("mem: state core %d load has completion class %d", i, b.Class)
			case b.Class == classRemote && m.domains <= 0,
				(b.Class == classL1 || b.Class == classL2) && m.l1Sets <= 0:
				return fmt.Errorf("mem: state core %d load class %d but the model is disabled", i, b.Class)
			}
		}
	}
	if m.l1Sets > 0 {
		if len(st.L1) != n {
			return fmt.Errorf("mem: state has %d L1 caches, scheduler has %d cores", len(st.L1), n)
		}
		for i := range st.L1 {
			if len(st.L1[i]) != m.l1Sets*m.l1Ways {
				return fmt.Errorf("mem: state core %d L1 has %d lines, want %d",
					i, len(st.L1[i]), m.l1Sets*m.l1Ways)
			}
		}
		if len(st.L2) != m.l2Sets*m.l2Ways {
			return fmt.Errorf("mem: state L2 has %d lines, want %d", len(st.L2), m.l2Sets*m.l2Ways)
		}
	} else if len(st.L1) > 0 || len(st.L2) > 0 {
		return fmt.Errorf("mem: state carries cache tags but the cache model is disabled")
	}

	m.cycle = st.Cycle
	m.rr = st.RR
	if n > 0 {
		m.rr %= n
		if m.rr < 0 {
			m.rr += n
		}
	}
	m.seq = st.Seq
	m.stats = st.Stats
	copy(m.busyUntil, st.BusyUntil)

	restoreBuffer := func(b *buffer, s LoadBuffer) {
		*b = buffer{
			valid:    s.Valid,
			accepted: s.Accepted,
			ready:    s.Ready,
			class:    s.Class,
			addr:     s.Addr,
			data:     s.Data,
			doneAt:   s.DoneAt,
		}
		if s.Valid {
			m.validLoads++
			if !s.Accepted {
				m.unaccepted++
			} else if !s.Ready {
				m.acceptedLoads++
			}
			if m.l1Sets > 0 && !s.Ready && s.Class < classL1 {
				m.mshrInUse++
			}
		}
	}
	restoreQueue := func(q *storeRing, reqs []StoreReq, header bool) {
		q.head, q.n = 0, 0
		for _, s := range reqs {
			q.push(storeReq{addr: s.Addr, data: s.Data, seq: s.Seq})
			m.unaccepted++
			m.storeQueued++
			if header {
				m.hdrCnt[s.Addr] += hdrCntQueuedOne
			}
			if m.stCnt != nil {
				m.stCnt[s.Addr]++
			}
		}
	}

	m.unaccepted, m.storeQueued, m.validLoads, m.acceptedLoads = 0, 0, 0, 0
	m.mshrInUse = 0
	clear(m.waiting)
	clear(m.waitMask)
	for i, c := range st.Cores {
		restoreBuffer(&m.bufs[i][HeaderLoad], c.HeaderLoad)
		restoreBuffer(&m.bufs[i][BodyLoad], c.BodyLoad)
		restoreQueue(&m.storeQ[i][storeIdx(HeaderStore)], c.HeaderStores, true)
		restoreQueue(&m.storeQ[i][storeIdx(BodyStore)], c.BodyStores, false)
		var w uint8
		for _, p := range loadPorts {
			if b := &m.bufs[i][p]; b.valid && !b.accepted {
				w |= 1 << p
			}
		}
		if len(c.HeaderStores) > 0 {
			w |= 1 << HeaderStore
		}
		if len(c.BodyStores) > 0 {
			w |= 1 << BodyStore
		}
		if m.waiting[i] = w; w != 0 {
			m.waitMask[i>>6] |= 1 << (i & 63)
		}
	}
	m.inflight = m.inflight[:0]
	m.inflightHead = 0
	for _, s := range st.Inflight {
		m.inflight = append(m.inflight, inflightStore{
			addr: s.Addr, data: s.Data, header: s.Header, doneAt: s.DoneAt,
		})
		if s.Header {
			m.hdrCnt[s.Addr] += hdrCntInflightOne
		}
		if m.stCnt != nil {
			m.stCnt[s.Addr]++
		}
	}
	restoreRing := func(r *intRing, comp []int64) {
		r.head, r.n = 0, 0
		for _, e := range comp {
			r.push(e)
		}
	}
	restoreRing(&m.completions, st.Completions)
	total := m.completions.n
	if m.hier {
		restoreRing(&m.extraComp[classRemote-1], st.RemoteComp)
		restoreRing(&m.extraComp[classL1-1], st.L1Comp)
		restoreRing(&m.extraComp[classL2-1], st.L2Comp)
		for i := range m.extraComp {
			total += m.extraComp[i].n
		}
	}
	if total != m.acceptedLoads {
		return fmt.Errorf("mem: state has %d load completions for %d accepted loads",
			total, m.acceptedLoads)
	}
	if m.l1Sets > 0 {
		m.lruTick = st.LRUTick
		for i := range m.l1 {
			for j, l := range st.L1[i] {
				m.l1[i][j] = cacheLine{valid: l.Valid, tag: l.Tag, last: l.Last}
			}
		}
		for j, l := range st.L2 {
			m.l2[j] = cacheLine{valid: l.Valid, tag: l.Tag, last: l.Last}
		}
	}
	return nil
}
