package mem

import (
	"fmt"

	"hwgc/internal/object"
)

// The snapshot state of the memory scheduler captures only the primary
// state — the clock, arbitration pointer, per-core buffers and queues, the
// in-flight split transactions, and the load-completion order. The derived
// occupancy counters (unaccepted, storeQueued, validLoads, acceptedLoads),
// the per-address header-store counters and the waiting bitmaps are all
// recomputed from it on restore, so a snapshot cannot encode an
// inconsistent scheduler.

// LoadBuffer is the serializable form of one single-entry load buffer.
type LoadBuffer struct {
	Valid    bool
	Accepted bool
	Ready    bool
	Addr     object.Addr
	Data     object.Word
	DoneAt   int64
}

// StoreReq is one store waiting in a write-behind queue.
type StoreReq struct {
	Addr object.Addr
	Data object.Word
	Seq  int64
}

// InflightStore is one accepted, not yet committed store.
type InflightStore struct {
	Addr   object.Addr
	Data   object.Word
	Header bool
	DoneAt int64
}

// CoreIOState is the per-core slice of the scheduler state: the two load
// buffers and the two write-behind store queues (in FIFO order).
type CoreIOState struct {
	HeaderLoad   LoadBuffer
	BodyLoad     LoadBuffer
	HeaderStores []StoreReq
	BodyStores   []StoreReq
}

// State is the complete serializable state of the memory scheduler
// mid-collection. Completions holds the load-completion queue front to
// back; each entry encodes doneAt<<16 | core<<1 | portIdx exactly as the
// live queue does.
type State struct {
	Cycle       int64
	RR          int
	Seq         int64
	Stats       Stats
	BusyUntil   []int64
	Cores       []CoreIOState
	Inflight    []InflightStore
	Completions []int64
}

// at returns the i-th queued entry in FIFO order.
func (r *intRing) at(i int) int64 {
	p := r.head + i
	if p >= len(r.buf) {
		p -= len(r.buf)
	}
	return r.buf[p]
}

func captureBuffer(b *buffer) LoadBuffer {
	return LoadBuffer{
		Valid:    b.valid,
		Accepted: b.accepted,
		Ready:    b.ready,
		Addr:     b.addr,
		Data:     b.data,
		DoneAt:   b.doneAt,
	}
}

func captureQueue(q *storeRing) []StoreReq {
	if q.n == 0 {
		return nil
	}
	out := make([]StoreReq, q.n)
	for i := range out {
		s := q.at(i)
		out[i] = StoreReq{Addr: s.addr, Data: s.data, Seq: s.seq}
	}
	return out
}

// CaptureState returns a deep copy of the scheduler's state. The backing
// word array is owned by the heap and captured there, not here.
func (m *Memory) CaptureState() *State {
	st := &State{
		Cycle:     m.cycle,
		RR:        m.rr,
		Seq:       m.seq,
		Stats:     m.stats,
		BusyUntil: append([]int64(nil), m.busyUntil...),
		Cores:     make([]CoreIOState, len(m.bufs)),
	}
	for i := range m.bufs {
		st.Cores[i] = CoreIOState{
			HeaderLoad:   captureBuffer(&m.bufs[i][HeaderLoad]),
			BodyLoad:     captureBuffer(&m.bufs[i][BodyLoad]),
			HeaderStores: captureQueue(&m.storeQ[i][storeIdx(HeaderStore)]),
			BodyStores:   captureQueue(&m.storeQ[i][storeIdx(BodyStore)]),
		}
	}
	for _, s := range m.inflight[m.inflightHead:] {
		st.Inflight = append(st.Inflight, InflightStore{
			Addr: s.addr, Data: s.data, Header: s.header, DoneAt: s.doneAt,
		})
	}
	for i := 0; i < m.completions.n; i++ {
		st.Completions = append(st.Completions, m.completions.at(i))
	}
	return st
}

// RestoreState overwrites the scheduler's state from a captured state and
// rebuilds every derived counter. AttachCores must have been called for the
// same core count first (it has zeroed hdrCnt and sized the buffers).
func (m *Memory) RestoreState(st *State) error {
	if st == nil {
		return fmt.Errorf("mem: nil state")
	}
	n := len(m.bufs)
	if len(st.Cores) != n {
		return fmt.Errorf("mem: state for %d cores, scheduler has %d", len(st.Cores), n)
	}
	if len(st.BusyUntil) != len(m.busyUntil) {
		return fmt.Errorf("mem: state has %d bank timers, scheduler has %d", len(st.BusyUntil), len(m.busyUntil))
	}
	size := object.Addr(len(m.data))
	checkAddr := func(what string, a object.Addr) error {
		if a >= size {
			return fmt.Errorf("mem: state %s address %d outside memory (%d words)", what, a, size)
		}
		return nil
	}
	for i, c := range st.Cores {
		if len(c.HeaderStores) > m.sqDepth || len(c.BodyStores) > m.sqDepth {
			return fmt.Errorf("mem: state core %d store queue exceeds depth %d", i, m.sqDepth)
		}
		for _, b := range []LoadBuffer{c.HeaderLoad, c.BodyLoad} {
			if b.Valid {
				if err := checkAddr("load", b.Addr); err != nil {
					return err
				}
			}
		}
		for _, s := range append(append([]StoreReq(nil), c.HeaderStores...), c.BodyStores...) {
			if err := checkAddr("store", s.Addr); err != nil {
				return err
			}
		}
	}
	var lastDone int64
	for _, s := range st.Inflight {
		if err := checkAddr("inflight store", s.Addr); err != nil {
			return err
		}
		if s.DoneAt < lastDone {
			return fmt.Errorf("mem: state inflight stores not ordered by completion cycle")
		}
		lastDone = s.DoneAt
	}
	if len(st.Completions) > len(m.completions.buf) {
		return fmt.Errorf("mem: state has %d load completions, capacity is %d",
			len(st.Completions), len(m.completions.buf))
	}
	for _, e := range st.Completions {
		if ci := int(e >> 1 & 0x7fff); ci >= n {
			return fmt.Errorf("mem: state load completion for core %d, have %d", ci, n)
		}
	}

	m.cycle = st.Cycle
	m.rr = st.RR
	if n > 0 {
		m.rr %= n
		if m.rr < 0 {
			m.rr += n
		}
	}
	m.seq = st.Seq
	m.stats = st.Stats
	copy(m.busyUntil, st.BusyUntil)

	restoreBuffer := func(b *buffer, s LoadBuffer) {
		*b = buffer{
			valid:    s.Valid,
			accepted: s.Accepted,
			ready:    s.Ready,
			addr:     s.Addr,
			data:     s.Data,
			doneAt:   s.DoneAt,
		}
		if s.Valid {
			m.validLoads++
			if !s.Accepted {
				m.unaccepted++
			} else if !s.Ready {
				m.acceptedLoads++
			}
		}
	}
	restoreQueue := func(q *storeRing, reqs []StoreReq, header bool) {
		q.head, q.n = 0, 0
		for _, s := range reqs {
			q.push(storeReq{addr: s.Addr, data: s.Data, seq: s.Seq})
			m.unaccepted++
			m.storeQueued++
			if header {
				m.hdrCnt[s.Addr] += hdrCntQueuedOne
			}
		}
	}

	m.unaccepted, m.storeQueued, m.validLoads, m.acceptedLoads = 0, 0, 0, 0
	clear(m.waiting)
	clear(m.waitMask)
	for i, c := range st.Cores {
		restoreBuffer(&m.bufs[i][HeaderLoad], c.HeaderLoad)
		restoreBuffer(&m.bufs[i][BodyLoad], c.BodyLoad)
		restoreQueue(&m.storeQ[i][storeIdx(HeaderStore)], c.HeaderStores, true)
		restoreQueue(&m.storeQ[i][storeIdx(BodyStore)], c.BodyStores, false)
		var w uint8
		for _, p := range loadPorts {
			if b := &m.bufs[i][p]; b.valid && !b.accepted {
				w |= 1 << p
			}
		}
		if len(c.HeaderStores) > 0 {
			w |= 1 << HeaderStore
		}
		if len(c.BodyStores) > 0 {
			w |= 1 << BodyStore
		}
		if m.waiting[i] = w; w != 0 {
			m.waitMask[i>>6] |= 1 << (i & 63)
		}
	}
	m.inflight = m.inflight[:0]
	m.inflightHead = 0
	for _, s := range st.Inflight {
		m.inflight = append(m.inflight, inflightStore{
			addr: s.Addr, data: s.Data, header: s.Header, doneAt: s.DoneAt,
		})
		if s.Header {
			m.hdrCnt[s.Addr] += hdrCntInflightOne
		}
	}
	m.completions.head, m.completions.n = 0, 0
	for _, e := range st.Completions {
		m.completions.push(e)
	}
	if m.completions.n != m.acceptedLoads {
		return fmt.Errorf("mem: state has %d load completions for %d accepted loads",
			m.completions.n, m.acceptedLoads)
	}
	return nil
}
