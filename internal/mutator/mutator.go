// Package mutator models the main processor's side of the system (paper
// Section V-E): a single-threaded application that allocates objects,
// mutates the object graph through a register/stack root set, and is stopped
// for the duration of each collection cycle.
//
// The mutator triggers a collection whenever an allocation does not fit in
// the current semispace, exactly as Core 1 of the coprocessor stops the main
// processor "when the current semispace is full". It optionally verifies
// every collection against the reference oracle, which turns any multi-cycle
// run into an end-to-end correctness test of the collector.
package mutator

import (
	"errors"
	"fmt"
	"math/rand"

	"hwgc/internal/gcalgo"
	"hwgc/internal/heap"
	"hwgc/internal/machine"
	"hwgc/internal/object"
)

// ErrHeapExhausted is returned when an allocation does not fit even directly
// after a collection cycle.
var ErrHeapExhausted = errors.New("mutator: allocation does not fit even after GC")

// Mutator drives a heap through allocation and collection cycles.
type Mutator struct {
	h   *heap.Heap
	m   *machine.Machine
	cfg machine.Config

	// Verify, when set, snapshots the heap before each collection and
	// checks the collector's output against the reference oracle.
	Verify bool

	collections []machine.Stats
}

// New creates a mutator over a fresh heap with the given semispace size,
// collected by a coprocessor with configuration cfg.
func New(semiWords int, cfg machine.Config) (*Mutator, error) {
	h := heap.New(semiWords)
	m, err := machine.New(h, cfg)
	if err != nil {
		return nil, err
	}
	return &Mutator{h: h, m: m, cfg: cfg}, nil
}

// Heap exposes the underlying heap.
func (mu *Mutator) Heap() *heap.Heap { return mu.h }

// Collections returns the statistics of every collection cycle so far.
func (mu *Mutator) Collections() []machine.Stats { return mu.collections }

// TotalGCCycles returns the cumulative clock cycles spent in collection.
func (mu *Mutator) TotalGCCycles() int64 {
	var t int64
	for _, s := range mu.collections {
		t += s.Cycles
	}
	return t
}

// Collect forces a collection cycle now.
func (mu *Mutator) Collect() (machine.Stats, error) {
	var before *gcalgo.Graph
	if mu.Verify {
		var err error
		before, err = gcalgo.Snapshot(mu.h)
		if err != nil {
			return machine.Stats{}, fmt.Errorf("mutator: pre-GC snapshot: %w", err)
		}
	}
	st, err := mu.m.Collect()
	if err != nil {
		return machine.Stats{}, err
	}
	if mu.Verify {
		if err := gcalgo.VerifyCollection(before, mu.h); err != nil {
			return machine.Stats{}, fmt.Errorf("mutator: collection %d corrupted the heap: %w", len(mu.collections), err)
		}
	}
	mu.collections = append(mu.collections, st)
	return st, nil
}

// Alloc allocates an object, running a collection cycle first if the current
// semispace is full (the stop-the-world trigger of Section V-E).
func (mu *Mutator) Alloc(pi, delta int) (object.Addr, error) {
	a, err := mu.h.Alloc(pi, delta)
	if err == nil {
		return a, nil
	}
	if !errors.Is(err, heap.ErrSpaceFull) {
		return object.NilPtr, err
	}
	if _, err := mu.Collect(); err != nil {
		return object.NilPtr, err
	}
	a, err = mu.h.Alloc(pi, delta)
	if err != nil {
		if errors.Is(err, heap.ErrSpaceFull) {
			return object.NilPtr, fmt.Errorf("%w (need %d words, %d free)", ErrHeapExhausted, object.Size(pi, delta), mu.h.FreeWords())
		}
		return object.NilPtr, err
	}
	return a, nil
}

// ChurnConfig parameterizes RunChurn.
type ChurnConfig struct {
	Ops       int   // number of mutator operations
	RootSlots int   // size of the simulated register/stack root set
	MaxPi     int   // maximum pointer slots per allocated object
	MaxDelta  int   // maximum data words per allocated object
	Seed      int64 // PRNG seed
}

// ChurnReport summarizes a churn run.
type ChurnReport struct {
	Allocated   int64 // objects allocated
	Dropped     int64 // root slots cleared (garbage creation)
	Collections int   // GC cycles triggered
	GCCycles    int64 // cumulative simulated clock cycles in GC
}

// RunChurn exercises the collector with a randomized allocate/mutate/drop
// workload: it maintains a root set of RootSlots slots and repeatedly either
// allocates a new object wired to existing ones, rewires pointers between
// live objects, or clears a root (creating garbage). Collections trigger
// automatically on semispace exhaustion. With Verify set on the mutator,
// this is an end-to-end stress test across many GC cycles.
func (mu *Mutator) RunChurn(cfg ChurnConfig) (ChurnReport, error) {
	if cfg.RootSlots < 1 {
		cfg.RootSlots = 8
	}
	if cfg.MaxPi < 1 {
		cfg.MaxPi = 4
	}
	if cfg.MaxDelta < 0 {
		cfg.MaxDelta = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := mu.h
	for h.NumRoots() < cfg.RootSlots {
		h.AddRoot(object.NilPtr)
	}

	var rep ChurnReport
	pre := len(mu.collections)

	// randomLive walks a short random path from a random non-nil root and
	// returns some live object (or nil).
	randomLive := func() object.Addr {
		r := h.Root(rng.Intn(cfg.RootSlots))
		if r == object.NilPtr {
			return object.NilPtr
		}
		cur := r
		for hop := 0; hop < 4; hop++ {
			hd := h.Header(cur)
			if hd.Pi == 0 || rng.Intn(3) == 0 {
				return cur
			}
			next := h.Ptr(cur, rng.Intn(hd.Pi))
			if next == object.NilPtr {
				return cur
			}
			cur = next
		}
		return cur
	}

	for op := 0; op < cfg.Ops; op++ {
		switch rng.Intn(10) {
		case 0: // drop a root: creates garbage
			h.SetRoot(rng.Intn(cfg.RootSlots), object.NilPtr)
			rep.Dropped++
		case 1, 2: // rewire a pointer between live objects
			src := randomLive()
			if src == object.NilPtr {
				continue
			}
			hd := h.Header(src)
			if hd.Pi == 0 {
				continue
			}
			h.SetPtr(src, rng.Intn(hd.Pi), randomLive())
		default: // allocate a new object and hang it somewhere reachable
			pi := rng.Intn(cfg.MaxPi + 1)
			delta := rng.Intn(cfg.MaxDelta + 1)
			a, err := mu.Alloc(pi, delta)
			if err != nil {
				return rep, fmt.Errorf("mutator: op %d: %w", op, err)
			}
			rep.Allocated++
			for i := 0; i < delta; i++ {
				h.SetData(a, i, rng.Uint64())
			}
			for i := 0; i < pi; i++ {
				if rng.Intn(2) == 0 {
					h.SetPtr(a, i, randomLive())
				}
			}
			// Anchor the new object: either in a root slot or in a live
			// object's pointer slot.
			if parent := randomLive(); parent != object.NilPtr && rng.Intn(3) != 0 {
				if hd := h.Header(parent); hd.Pi > 0 {
					h.SetPtr(parent, rng.Intn(hd.Pi), a)
					continue
				}
			}
			h.SetRoot(rng.Intn(cfg.RootSlots), a)
		}
	}
	rep.Collections = len(mu.collections) - pre
	rep.GCCycles = mu.TotalGCCycles()
	return rep, nil
}
