package mutator

import (
	"errors"
	"testing"

	"hwgc/internal/machine"
	"hwgc/internal/object"
)

func TestAllocTriggersCollection(t *testing.T) {
	mu, err := New(64, machine.Config{Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	mu.Verify = true
	h := mu.Heap()

	// One live object anchored in a root, then garbage until the space
	// fills; the next allocation must trigger a GC and succeed.
	live, err := mu.Alloc(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.AddRoot(live)
	for h.FreeWords() >= 8 {
		if _, err := mu.Alloc(0, 6); err != nil {
			t.Fatal(err)
		}
	}
	if len(mu.Collections()) != 0 {
		t.Fatal("premature collection")
	}
	a, err := mu.Alloc(0, 6)
	if err != nil {
		t.Fatalf("allocation after fill failed: %v", err)
	}
	if a == object.NilPtr {
		t.Fatal("nil address")
	}
	if len(mu.Collections()) != 1 {
		t.Fatalf("collections = %d, want 1", len(mu.Collections()))
	}
	if mu.TotalGCCycles() <= 0 {
		t.Fatal("no GC cycles recorded")
	}
	// The live object survived; its root was forwarded into the new space.
	if h.Header(h.Root(0)).Delta != 4 {
		t.Fatal("live object lost or corrupted")
	}
}

func TestHeapExhaustion(t *testing.T) {
	mu, err := New(32, machine.Config{Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := mu.Heap()
	// Keep everything live: exhaustion even after GC.
	for i := 0; i < 10; i++ {
		a, err := mu.Alloc(0, 3)
		if err != nil {
			if !errors.Is(err, ErrHeapExhausted) {
				t.Fatalf("wrong error: %v", err)
			}
			return
		}
		h.AddRoot(a)
	}
	t.Fatal("exhaustion never reported")
}

func TestChurnManyCollections(t *testing.T) {
	mu, err := New(2048, machine.Config{Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	mu.Verify = true // oracle-check every collection
	rep, err := mu.RunChurn(ChurnConfig{Ops: 8000, RootSlots: 8, MaxPi: 3, MaxDelta: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Allocated == 0 {
		t.Fatal("churn allocated nothing")
	}
	if rep.Collections < 2 {
		t.Fatalf("churn triggered only %d collections; want several", rep.Collections)
	}
	if err := mu.Heap().CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() ChurnReport {
		mu, err := New(1024, machine.Config{Cores: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := mu.RunChurn(ChurnConfig{Ops: 3000, RootSlots: 6, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("churn not deterministic: %+v vs %+v", a, b)
	}
}

func TestChurnAcrossCoreCountsAgreesOnHeapContents(t *testing.T) {
	// The collector must be semantics-free: the same churn sequence over
	// coprocessors of different sizes yields identical live graphs.
	shape := func(cores int) (int64, int) {
		mu, err := New(1024, machine.Config{Cores: cores})
		if err != nil {
			t.Fatal(err)
		}
		mu.Verify = true
		rep, err := mu.RunChurn(ChurnConfig{Ops: 3000, RootSlots: 6, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Allocated, mu.Heap().UsedWords()
	}
	a1, u1 := shape(1)
	a2, u2 := shape(8)
	if a1 != a2 || u1 != u2 {
		t.Fatalf("heap evolution depends on core count: (%d,%d) vs (%d,%d)", a1, u1, a2, u2)
	}
}
