package mutator

import (
	"testing"

	"hwgc/internal/machine"
)

// TestSoakAcrossConfigurations is the long-running end-to-end stress test:
// tens of collection cycles per configuration, every one verified by the
// oracle, across the option space (strides, header cache, mark-read
// optimization, FIFO pathologies, bank model, odd core counts).
func TestSoakAcrossConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is slow")
	}
	configs := []machine.Config{
		{Cores: 1},
		{Cores: 5},
		{Cores: 16},
		{Cores: 16, StrideWords: 8},
		{Cores: 16, HeaderCacheLines: 64},
		{Cores: 16, OptUnlockedMarkRead: true},
		{Cores: 16, FIFOCapacity: 4},
		{Cores: 16, DisableFIFO: true},
		{Cores: 16, MemBanks: 4},
		{Cores: 16, ExtraMemLatency: 20, MemBandwidth: 2},
		{Cores: 8, StrideWords: 4, HeaderCacheLines: 32, OptUnlockedMarkRead: true, MemBanks: 2},
	}
	for i, cfg := range configs {
		cfg := cfg
		mu, err := New(1536, cfg)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		mu.Verify = true
		rep, err := mu.RunChurn(ChurnConfig{Ops: 20000, RootSlots: 10, MaxPi: 3, MaxDelta: 8, Seed: int64(100 + i)})
		if err != nil {
			t.Fatalf("config %d (%+v): %v", i, cfg, err)
		}
		if rep.Collections < 5 {
			t.Errorf("config %d: only %d collections; the soak should cycle the heap repeatedly", i, rep.Collections)
		}
		if err := mu.Heap().CheckIntegrity(); err != nil {
			t.Fatalf("config %d: final heap corrupt: %v", i, err)
		}
	}
}
