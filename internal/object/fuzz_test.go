package object

import "testing"

// FuzzHeaderDecodeEncode checks that decoding any word and re-encoding the
// result is stable (Decode is total; Encode∘Decode is idempotent on the
// header's defined bits).
func FuzzHeaderDecodeEncode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(^uint64(0))
	f.Add(Header{Pi: MaxPi, Delta: MaxDelta, Mark: true, Gray: true, Link: 0xFFFFFFFF}.Encode())
	f.Add(uint64(0x123456789ABCDEF0))
	f.Fuzz(func(t *testing.T, w uint64) {
		h := Decode(w)
		if h.Pi < 0 || h.Pi > MaxPi || h.Delta < 0 || h.Delta > MaxDelta {
			t.Fatalf("decoded shape out of range: %+v", h)
		}
		w2 := h.Encode()
		if Decode(w2) != h {
			t.Fatalf("re-encode not stable: %#x -> %+v -> %#x", w, h, w2)
		}
		// The field extractors agree with the full decode.
		if Pi(w) != h.Pi || Delta(w) != h.Delta || Marked(w) != h.Mark ||
			GrayBit(w) != h.Gray || Link(w) != h.Link {
			t.Fatalf("extractors disagree on %#x", w)
		}
	})
}
