// Package object defines the word-level object model shared by every
// component of the system: the simulated coprocessor, the software baseline
// collectors, the reference collector, and the workload generators.
//
// The model follows Section V-D of the paper (Horvath & Meyer, ICPP 2010):
// each object consists of a two-word header followed by a body that is
// strictly partitioned into a pointer area of length π and a data area of
// length δ. The header carries the GC attributes: π, δ, the mark state, and
// either a forwarding pointer (fromspace, after evacuation) or a backlink
// (tospace, while the object frame is gray).
//
// The prototype stores the attributes in two words. We keep the two-word
// header layout in memory for fidelity — object addresses, sizes, and the
// access patterns all match — but pack all attribute fields into header
// word 0 so that a single header load is always sufficient. Header word 1 is
// reserved (the prototype keeps secondary attributes there; the mutator
// zeroes it at allocation and no collector reads it).
package object

// Word is one machine word of the simulated memory. The prototype is a
// 32-bit machine; we use 64-bit words so that the packed header (attributes
// plus a 32-bit forwarding pointer or backlink) fits into header word 0.
//
// Word is a type alias rather than a defined type so that the software
// baseline collectors can apply sync/atomic operations directly to words in
// the heap slice.
type Word = uint64

// Addr is a word address in the simulated memory. Address 0 is reserved as
// the nil pointer; no object may be placed there.
type Addr = uint32

// NilPtr is the null object reference.
const NilPtr Addr = 0

// HeaderWords is the size of an object header in words (paper Fig. 3).
const HeaderWords = 2

// Field widths of the packed header word 0.
const (
	piBits    = 12
	deltaBits = 12

	piShift    = 0
	deltaShift = piShift + piBits
	markShift  = deltaShift + deltaBits // bit 24
	grayShift  = markShift + 1          // bit 25
	linkShift  = 32                     // bits 32..63: forwarding ptr / backlink

	piMask    = (1 << piBits) - 1
	deltaMask = (1 << deltaBits) - 1
)

// MaxPi and MaxDelta bound the pointer-area and data-area lengths encodable
// in a header. Workloads that need larger logical arrays split them across
// several objects, exactly as the prototype's Java runtime would.
const (
	MaxPi    = piMask
	MaxDelta = deltaMask
)

// Header is the decoded form of header word 0.
type Header struct {
	Pi    int  // number of pointer slots in the body
	Delta int  // number of data words in the body
	Mark  bool // fromspace: object has been evacuated
	Gray  bool // tospace: frame allocated, body not yet copied
	Link  Addr // Mark: forwarding pointer; Gray: backlink to fromspace original
}

// Encode packs h into header word 0.
func (h Header) Encode() Word {
	if h.Pi < 0 || h.Pi > MaxPi {
		panic("object: pointer count out of range")
	}
	if h.Delta < 0 || h.Delta > MaxDelta {
		panic("object: data count out of range")
	}
	w := Word(h.Pi)<<piShift | Word(h.Delta)<<deltaShift
	if h.Mark {
		w |= 1 << markShift
	}
	if h.Gray {
		w |= 1 << grayShift
	}
	w |= Word(h.Link) << linkShift
	return w
}

// Decode unpacks header word 0.
func Decode(w Word) Header {
	return Header{
		Pi:    int(w >> piShift & piMask),
		Delta: int(w >> deltaShift & deltaMask),
		Mark:  w>>markShift&1 == 1,
		Gray:  w>>grayShift&1 == 1,
		Link:  Addr(w >> linkShift),
	}
}

// Pi extracts the pointer count without a full decode.
func Pi(w Word) int { return int(w >> piShift & piMask) }

// Delta extracts the data count without a full decode.
func Delta(w Word) int { return int(w >> deltaShift & deltaMask) }

// Marked reports the mark (evacuated) bit without a full decode.
func Marked(w Word) bool { return w>>markShift&1 == 1 }

// GrayBit reports the gray bit without a full decode.
func GrayBit(w Word) bool { return w>>grayShift&1 == 1 }

// Link extracts the forwarding pointer / backlink without a full decode.
func Link(w Word) Addr { return Addr(w >> linkShift) }

// BodyWords returns the body length, in words, of an object with the given
// header word.
func BodyWords(w Word) int { return Pi(w) + Delta(w) }

// SizeWords returns the total object size (header plus body) in words.
func SizeWords(w Word) int { return HeaderWords + BodyWords(w) }

// Size returns the total size in words of an object with pi pointer slots
// and delta data words.
func Size(pi, delta int) int { return HeaderWords + pi + delta }

// WithMark returns the header word with the mark bit set and the link field
// replaced by the forwarding pointer fwd. This is the single header store a
// collector performs to gray a fromspace object.
func WithMark(w Word, fwd Addr) Word {
	const attrMask = Word(piMask)<<piShift | Word(deltaMask)<<deltaShift
	return w&attrMask | 1<<markShift | Word(fwd)<<linkShift
}

// GrayHeader builds the header word installed in a freshly allocated tospace
// frame: attributes copied from the fromspace original, gray bit set, and
// the backlink to the original in the link field.
func GrayHeader(fromHdr Word, backlink Addr) Word {
	const attrMask = Word(piMask)<<piShift | Word(deltaMask)<<deltaShift
	return fromHdr&attrMask | 1<<grayShift | Word(backlink)<<linkShift
}

// BlackHeader builds the final header word written when an object is
// blackened: attributes only, gray bit and link cleared.
func BlackHeader(w Word) Word {
	const attrMask = Word(piMask)<<piShift | Word(deltaMask)<<deltaShift
	return w & attrMask
}

// PtrSlot returns the address of pointer slot i of the object at base.
func PtrSlot(base Addr, i int) Addr { return base + HeaderWords + Addr(i) }

// DataSlot returns the address of data word i of an object at base with pi
// pointer slots.
func DataSlot(base Addr, pi, i int) Addr { return base + HeaderWords + Addr(pi) + Addr(i) }
