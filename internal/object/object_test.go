package object

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Header{
		{},
		{Pi: 1},
		{Delta: 1},
		{Pi: MaxPi, Delta: MaxDelta},
		{Pi: 3, Delta: 7, Mark: true, Link: 12345},
		{Pi: 3, Delta: 7, Gray: true, Link: 1},
		{Pi: 0, Delta: 0, Mark: true, Gray: true, Link: 0xFFFFFFFF},
	}
	for _, h := range cases {
		got := Decode(h.Encode())
		if got != h {
			t.Errorf("round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestHeaderEncodeDecodeQuick(t *testing.T) {
	f := func(pi, delta uint16, mark, gray bool, link uint32) bool {
		h := Header{
			Pi:    int(pi) % (MaxPi + 1),
			Delta: int(delta) % (MaxDelta + 1),
			Mark:  mark,
			Gray:  gray,
			Link:  link,
		}
		return Decode(h.Encode()) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldExtractorsMatchDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		h := Header{
			Pi:    rng.Intn(MaxPi + 1),
			Delta: rng.Intn(MaxDelta + 1),
			Mark:  rng.Intn(2) == 0,
			Gray:  rng.Intn(2) == 0,
			Link:  rng.Uint32(),
		}
		w := h.Encode()
		if Pi(w) != h.Pi || Delta(w) != h.Delta || Marked(w) != h.Mark || GrayBit(w) != h.Gray || Link(w) != h.Link {
			t.Fatalf("extractors disagree with Decode for %+v", h)
		}
		if BodyWords(w) != h.Pi+h.Delta {
			t.Fatalf("BodyWords = %d, want %d", BodyWords(w), h.Pi+h.Delta)
		}
		if SizeWords(w) != HeaderWords+h.Pi+h.Delta {
			t.Fatalf("SizeWords = %d, want %d", SizeWords(w), HeaderWords+h.Pi+h.Delta)
		}
	}
}

func TestWithMarkPreservesShapeOnly(t *testing.T) {
	orig := Header{Pi: 5, Delta: 9, Gray: true, Link: 777}
	w := WithMark(orig.Encode(), 4242)
	got := Decode(w)
	want := Header{Pi: 5, Delta: 9, Mark: true, Link: 4242}
	if got != want {
		t.Errorf("WithMark: got %+v, want %+v", got, want)
	}
}

func TestGrayHeaderCarriesBacklinkAndShape(t *testing.T) {
	from := Header{Pi: 2, Delta: 3}.Encode()
	g := Decode(GrayHeader(from, 999))
	want := Header{Pi: 2, Delta: 3, Gray: true, Link: 999}
	if g != want {
		t.Errorf("GrayHeader: got %+v, want %+v", g, want)
	}
}

func TestBlackHeaderClearsBookkeeping(t *testing.T) {
	gray := Header{Pi: 2, Delta: 3, Gray: true, Link: 999}.Encode()
	blk := Decode(BlackHeader(gray))
	want := Header{Pi: 2, Delta: 3}
	if blk != want {
		t.Errorf("BlackHeader: got %+v, want %+v", blk, want)
	}
	marked := Header{Pi: 1, Delta: 0, Mark: true, Link: 5}.Encode()
	if got := Decode(BlackHeader(marked)); got != (Header{Pi: 1}) {
		t.Errorf("BlackHeader of marked: got %+v", got)
	}
}

func TestSlotAddressing(t *testing.T) {
	const base Addr = 100
	if PtrSlot(base, 0) != 102 || PtrSlot(base, 3) != 105 {
		t.Errorf("PtrSlot addressing wrong: %d %d", PtrSlot(base, 0), PtrSlot(base, 3))
	}
	// Data area starts after the pointer area.
	if DataSlot(base, 4, 0) != 106 || DataSlot(base, 4, 2) != 108 {
		t.Errorf("DataSlot addressing wrong: %d %d", DataSlot(base, 4, 0), DataSlot(base, 4, 2))
	}
	if Size(4, 3) != HeaderWords+7 {
		t.Errorf("Size(4,3) = %d", Size(4, 3))
	}
}

func TestEncodePanicsOnOutOfRange(t *testing.T) {
	for _, h := range []Header{
		{Pi: MaxPi + 1},
		{Delta: MaxDelta + 1},
		{Pi: -1},
		{Delta: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%+v) did not panic", h)
				}
			}()
			h.Encode()
		}()
	}
}
