package plan

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the plan decoder and
// that every accepted plan actually builds a structurally valid heap.
func FuzzRead(f *testing.F) {
	var seed bytes.Buffer
	spec := jlisp(f, 1)
	_ = Write(&seed, spec)
	f.Add(seed.String())
	f.Add(`{"Objs":[{"Pi":1,"Delta":1,"Ptrs":[0],"Data":[7]}],"Roots":[0,-1]}`)
	f.Add(`{"Objs":[],"Roots":[]}`)
	f.Add(`not json at all`)
	f.Add(`{"Objs":[{"Pi":-1}]}`)
	f.Fuzz(func(t *testing.T, in string) {
		p, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejected: fine
		}
		h, err := p.BuildHeap(2.0)
		if err != nil {
			// Accepted plans must at least be realizable in a heap sized
			// for them.
			t.Fatalf("validated plan failed to build: %v", err)
		}
		if err := h.CheckIntegrity(); err != nil {
			t.Fatalf("validated plan built a corrupt heap: %v", err)
		}
	})
}
