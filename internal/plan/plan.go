// Package plan is the single implementation of the JSON object-graph plan
// encoding shared by every consumer of custom workloads: the gcsim CLI
// (-plan files), the gcserved HTTP service (inline "Plan" request bodies),
// the fuzz target, and the public hwgc.ReadPlan/WritePlan API.
//
// Plans serialize as plain JSON ({"Objs":[{"Pi":..,"Delta":..,"Ptrs":[..],
// "Data":[..]}],"Roots":[..]}). Decoding is strict (unknown fields are
// rejected) and every accepted plan has been validated against the
// structural invariants of workload.Plan.Validate, so a decoded plan is
// always realizable into a heap.
package plan

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hwgc/internal/workload"
)

// Write encodes p as JSON.
func Write(w io.Writer, p *workload.Plan) error {
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// DecodeStrict decodes one JSON value from r into v, rejecting unknown
// fields and trailing non-whitespace data. It is the strict decoding
// discipline shared by the plan codec, the hwgc batch request codec and the
// HTTP handlers: anything the fuzz targets accept is exactly what the
// service accepts.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// Read decodes and validates a JSON plan.
func Read(r io.Reader) (*workload.Plan, error) {
	var p workload.Plan
	if err := DecodeStrict(r, &p); err != nil {
		return nil, fmt.Errorf("plan: decoding: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadFile decodes and validates the JSON plan stored at path.
func ReadFile(path string) (*workload.Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
