package plan

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hwgc/internal/workload"

	"os"
)

func jlisp(t testing.TB, scale int) *workload.Plan {
	t.Helper()
	spec, err := workload.Get("jlisp")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Plan(scale, 5)
}

func TestPlanJSONRoundTrip(t *testing.T) {
	orig := jlisp(t, 1)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatal("round trip changed the plan")
	}
	// And it still builds a valid heap.
	if _, err := got.BuildHeap(2.0); err != nil {
		t.Fatal(err)
	}
}

func TestReadValidation(t *testing.T) {
	cases := map[string]string{
		"empty":           `{"Objs":[],"Roots":[]}`,
		"pi mismatch":     `{"Objs":[{"Pi":2,"Delta":0,"Ptrs":[-1],"Data":[]}],"Roots":[0]}`,
		"delta mismatch":  `{"Objs":[{"Pi":0,"Delta":1,"Ptrs":[],"Data":[]}],"Roots":[0]}`,
		"wild pointer":    `{"Objs":[{"Pi":1,"Delta":0,"Ptrs":[5],"Data":[]}],"Roots":[0]}`,
		"negative target": `{"Objs":[{"Pi":1,"Delta":0,"Ptrs":[-2],"Data":[]}],"Roots":[0]}`,
		"wild root":       `{"Objs":[{"Pi":0,"Delta":0,"Ptrs":[],"Data":[]}],"Roots":[3]}`,
		"pi out of range": `{"Objs":[{"Pi":99999,"Delta":0,"Ptrs":[],"Data":[]}],"Roots":[0]}`,
		"unknown field":   `{"Objs":[],"Roots":[],"Bogus":1}`,
		"not json":        `hello`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}

	ok := `{"Objs":[{"Pi":1,"Delta":1,"Ptrs":[0],"Data":[7]}],"Roots":[0,-1]}`
	p, err := Read(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if p.Objs[0].Ptrs[0] != 0 || p.Objs[0].Data[0] != 7 {
		t.Fatal("content lost")
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	var buf bytes.Buffer
	if err := Write(&buf, jlisp(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objs) == 0 {
		t.Fatal("plan file read back empty")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
