package server

import (
	"net/http"
	"sync"

	"hwgc"
)

// maxBatchBodyBytes bounds /v1/batch bodies: up to MaxBatchItems inline
// plans at the single-request limit would be excessive, but batches of
// named benchmarks are tiny; 16 MiB comfortably covers mixed batches.
const maxBatchBodyBytes = 16 << 20

// handleBatch serves POST /v1/batch: every item runs through the same
// cache → bounded queue → worker path as the single-request endpoints,
// with per-item outcomes (one bad or backpressured item never fails the
// whole batch). The response is 200 when every item succeeded and 207
// Multi-Status when any item failed.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/batch", true, func(w http.ResponseWriter, r *http.Request) {
		if !requirePost(w, r) {
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
		req, err := hwgc.DecodeBatchRequest(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid batch: %v", err)
			return
		}
		resp := s.runBatch(r, req)
		code := http.StatusOK
		if resp.Failed > 0 {
			code = http.StatusMultiStatus
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = resp.Encode(w)
	})(w, r)
}

// runBatch executes every batch item with bounded concurrency (the worker
// pool size — more in-flight submissions than workers only inflates queue
// occupancy for unrelated traffic) and reports outcomes in request order.
func (s *Server) runBatch(r *http.Request, req *hwgc.BatchRequest) *hwgc.BatchResponse {
	resp := &hwgc.BatchResponse{Items: make([]hwgc.BatchItemResult, len(req.Items))}
	sem := make(chan struct{}, s.opts.Workers)
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp.Items[i] = s.runBatchItem(r, i, &req.Items[i])
		}(i)
	}
	wg.Wait()
	resp.Tally()
	s.metrics.batchItems.Add(int64(len(resp.Items)))
	s.metrics.batchFailed.Add(int64(resp.Failed))
	return resp
}

func (s *Server) runBatchItem(r *http.Request, i int, it *hwgc.BatchItem) hwgc.BatchItemResult {
	path, key, _, err := it.Prep()
	if err != nil {
		return hwgc.BatchItemResult{Index: i, Status: http.StatusBadRequest, Error: err.Error()}
	}
	if s.opts.MaxScale > 0 && it.Scale() > s.opts.MaxScale {
		return hwgc.BatchItemResult{Index: i, Key: key, Status: http.StatusBadRequest,
			Error: "scale exceeds server limit"}
	}
	var (
		kind string
		run  func() ([]byte, error)
	)
	if path == "/v1/collect" {
		kind, run = "collect", func() ([]byte, error) { return s.runCollect(*it.Collect) }
	} else {
		kind, run = "sweep", func() ([]byte, error) { return s.runSweep(*it.Sweep) }
	}
	body, _, err := s.execute(r.Context(), key, kind, run)
	if err != nil {
		code, msg := s.executeStatus(kind, err)
		return hwgc.BatchItemResult{Index: i, Key: key, Status: code, Error: msg}
	}
	return hwgc.BatchItemResult{Index: i, Key: key, Status: http.StatusOK, Body: body}
}
