package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"hwgc"
)

func compactJSON(t *testing.T, in []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, in); err != nil {
		t.Fatalf("compacting %q: %v", in, err)
	}
	return buf.Bytes()
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := map[time.Duration]int{
		500 * time.Millisecond:  1, // the regression: must not round to 0
		time.Millisecond:        1,
		time.Second:             1,
		1500 * time.Millisecond: 2,
		2 * time.Second:         2,
	}
	for d, want := range cases {
		if got := retryAfterSeconds(d); got != want {
			t.Errorf("retryAfterSeconds(%s) = %d, want %d", d, got, want)
		}
	}
}

// TestSubSecondRetryAfterHeader is the end-to-end regression test for the
// Retry-After rounding bug: a 500ms hint used to be emitted as
// "Retry-After: 0", which clients read as "retry immediately".
func TestSubSecondRetryAfterHeader(t *testing.T) {
	_, ts := slowServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 500 * time.Millisecond}, 200*time.Millisecond)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		rejected int
		retryHdr string
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"Bench":"jlisp","Seed":%d,"Config":{}}`, i+1)
			resp, _ := post(t, ts, "/v1/collect", body)
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				rejected++
				retryHdr = resp.Header.Get("Retry-After")
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if rejected == 0 {
		t.Fatal("no request was rejected; cannot check the Retry-After header")
	}
	if retryHdr != "1" {
		t.Fatalf("Retry-After = %q for a 500ms hint, want \"1\"", retryHdr)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	single := `{"Bench":"jlisp","Config":{"Cores":2}}`
	respS, bodyS := post(t, ts, "/v1/collect", single)
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("single collect status %d: %s", respS.StatusCode, bodyS)
	}

	batch := `{"Items":[
		{"Collect":{"Bench":"jlisp","Config":{"Cores":2}}},
		{"Sweep":{"Bench":"jlisp","Cores":[1,2],"Config":{}}},
		{},
		{"Collect":{"Bench":"jlisp","Scale":1,"Seed":42,"Config":{"Cores":2}}}
	]}`
	resp, body := post(t, ts, "/v1/batch", batch)
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("batch status %d, want 207 (one invalid item): %s", resp.StatusCode, body)
	}
	br, err := hwgc.DecodeBatchResponse(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if br.OK != 3 || br.Failed != 1 || len(br.Items) != 4 {
		t.Fatalf("batch tally OK=%d Failed=%d items=%d, want 3/1/4", br.OK, br.Failed, len(br.Items))
	}
	for i, it := range br.Items {
		if it.Index != i {
			t.Errorf("item %d reports index %d; results must stay in request order", i, it.Index)
		}
	}
	if br.Items[2].Status != http.StatusBadRequest || br.Items[2].Error == "" {
		t.Errorf("invalid item result: %+v, want per-item 400", br.Items[2])
	}
	// Item 0 ran the same simulation as the single request: the same JSON
	// document (the batch encoder re-indents nested bodies, so compare
	// compacted bytes).
	if !bytes.Equal(compactJSON(t, br.Items[0].Body), compactJSON(t, bodyS)) {
		t.Error("batch item body differs from the single-request response body")
	}
	// Item 3 is the spelled-out equivalent of item 0: same key, same body.
	if br.Items[3].Key != br.Items[0].Key || !bytes.Equal(br.Items[3].Body, br.Items[0].Body) {
		t.Error("equivalent batch items did not canonicalize to the same key/body")
	}
	if s.metrics.batchItems.Load() != 4 || s.metrics.batchFailed.Load() != 1 {
		t.Errorf("batch metrics items=%d failed=%d, want 4/1",
			s.metrics.batchItems.Load(), s.metrics.batchFailed.Load())
	}

	// An all-good batch is deterministic and returns 200.
	good := `{"Items":[{"Collect":{"Bench":"jlisp","Config":{"Cores":2}}}]}`
	r1, b1 := post(t, ts, "/v1/batch", good)
	r2, b2 := post(t, ts, "/v1/batch", good)
	if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
		t.Fatalf("good batch statuses %d/%d, want 200", r1.StatusCode, r2.StatusCode)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("repeated batch responses are not byte-identical")
	}
}

func TestBatchRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, MaxScale: 4})
	for name, body := range map[string]string{
		"no items":    `{}`,
		"empty items": `{"Items":[]}`,
		"not json":    `nope`,
	} {
		if resp, data := post(t, ts, "/v1/batch", body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, data)
		}
	}
	if resp, _ := get(t, ts, "/v1/batch"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch: status %d, want 405", resp.StatusCode)
	}
	// Over-scale items fail per item, not whole batch.
	resp, body := post(t, ts, "/v1/batch",
		`{"Items":[{"Collect":{"Bench":"jlisp","Scale":9,"Config":{}}},{"Collect":{"Bench":"jlisp","Config":{}}}]}`)
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("status %d, want 207: %s", resp.StatusCode, body)
	}
	br, err := hwgc.DecodeBatchResponse(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Status != http.StatusBadRequest || br.Items[1].Status != http.StatusOK {
		t.Fatalf("per-item statuses %d/%d, want 400/200", br.Items[0].Status, br.Items[1].Status)
	}
}

// TestBatchItemBackpressure drives the queue full with external traffic and
// verifies a batch item that cannot be admitted is reported as a per-item
// 429, not a hung request or a whole-batch failure.
func TestBatchItemBackpressure(t *testing.T) {
	_, ts := slowServer(t, Options{Workers: 1, QueueDepth: 1}, 400*time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // one occupies the worker, one fills the queue
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post(t, ts, "/v1/collect", fmt.Sprintf(`{"Bench":"jlisp","Seed":%d,"Config":{}}`, i+1))
		}(i)
		time.Sleep(60 * time.Millisecond)
	}

	resp, body := post(t, ts, "/v1/batch", `{"Items":[{"Collect":{"Bench":"jlisp","Seed":99,"Config":{}}}]}`)
	wg.Wait()
	if resp.StatusCode != http.StatusMultiStatus {
		t.Fatalf("status %d, want 207: %s", resp.StatusCode, body)
	}
	br, err := hwgc.DecodeBatchResponse(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if br.Items[0].Status != http.StatusTooManyRequests {
		t.Fatalf("item status %d, want 429: %+v", br.Items[0].Status, br.Items[0])
	}
}
