package server

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed LRU result cache. Keys are the hex SHA-256
// of the canonical request encoding (hwgc.CollectRequest.Key), values are
// complete encoded response bodies. Because every simulation is
// deterministic, a hit is byte-identical to what re-running the job would
// produce, so the cache is a pure fast path: it changes latency, never
// results.
//
// The cache is bounded both by entry count and by total body bytes; the
// least-recently-used entries are evicted first.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache creates a cache bounded to maxEntries responses and maxBytes
// total body bytes. Non-positive bounds disable the cache (every Get
// misses, every Put is dropped), which keeps the serving path uniform.
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the cached response body for key, marking it most recently
// used. The caller must not modify the returned slice.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting least-recently-used entries as needed
// to respect both bounds. Bodies larger than the byte bound are not cached.
func (c *Cache) Put(key string, body []byte) {
	if c.maxEntries <= 0 || c.maxBytes <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		// Deterministic simulations make re-stores byte-identical; just
		// refresh recency.
		c.ll.MoveToFront(e)
		return
	}
	e := c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.items[key] = e
	c.bytes += int64(len(body))
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.body))
	}
}

// Len returns the number of cached responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total cached body bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
