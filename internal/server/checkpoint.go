package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hwgc"
)

// ErrPreempted reports a collect job that was checkpointed to disk and
// stopped because the server is draining; the client gets 503 and the next
// server process (or the next request for the same key) resumes from the
// checkpoint instead of starting over.
var ErrPreempted = errors.New("server: job preempted by shutdown (checkpointed)")

// ckptMagic frames a checkpoint file: the canonical request JSON (so a
// restarted server knows what it was computing) followed by the machine
// snapshot.
const (
	ckptMagic  = "HWGCCKP1"
	ckptSuffix = ".ckpt"
)

// checkpointStore persists per-request checkpoints under one directory, one
// file per cache key. Writes go through a temp file + rename so a crash
// mid-write leaves either the previous checkpoint or none — never a torn
// file the resume path would have to distrust (the snapshot's CRC framing
// would catch it, but then the work would be lost).
type checkpointStore struct {
	dir string
}

func (c *checkpointStore) path(key string) string {
	return filepath.Join(c.dir, key+ckptSuffix)
}

// save atomically writes the checkpoint for key.
func (c *checkpointStore) save(key string, reqJSON, snap []byte) error {
	buf := make([]byte, 0, len(ckptMagic)+4+len(reqJSON)+len(snap))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(reqJSON)))
	buf = append(buf, reqJSON...)
	buf = append(buf, snap...)
	tmp, err := os.CreateTemp(c.dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// load reads and splits the checkpoint for key; ok is false when none
// exists. A present-but-corrupt file is an error.
func (c *checkpointStore) load(key string) (req hwgc.CollectRequest, snap []byte, ok bool, err error) {
	data, err := os.ReadFile(c.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return req, nil, false, nil
	}
	if err != nil {
		return req, nil, false, err
	}
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != ckptMagic {
		return req, nil, false, fmt.Errorf("server: checkpoint %s: bad header", c.path(key))
	}
	n := int(binary.LittleEndian.Uint32(data[len(ckptMagic):]))
	rest := data[len(ckptMagic)+4:]
	if n > len(rest) {
		return req, nil, false, fmt.Errorf("server: checkpoint %s: truncated request", c.path(key))
	}
	if err := json.Unmarshal(rest[:n], &req); err != nil {
		return req, nil, false, fmt.Errorf("server: checkpoint %s: request: %w", c.path(key), err)
	}
	return req, rest[n:], true, nil
}

// remove deletes key's checkpoint; a missing file is not an error (the
// normal case for uncheckpointed jobs).
func (c *checkpointStore) remove(key string) error {
	err := os.Remove(c.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// keys lists the cache keys with a checkpoint on disk.
func (c *checkpointStore) keys() ([]string, error) {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ckptSuffix) && !strings.HasPrefix(name, ".") {
			out = append(out, strings.TrimSuffix(name, ckptSuffix))
		}
	}
	return out, nil
}

// draining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// runCheckpointed is the collect execution path when checkpointing is
// enabled: it resumes from an on-disk checkpoint if one exists, steps the
// simulation in CheckpointCycles slices, persists a snapshot after each
// slice, and — when the server starts draining — stops at the next slice
// boundary with ErrPreempted, leaving the freshest checkpoint behind. A
// finished job removes its checkpoint and returns the exact bytes the
// uninterrupted path would have produced (the snapshot restore contract
// guarantees bit-identical Stats, so cached and recovered responses agree).
func (s *Server) runCheckpointed(req hwgc.CollectRequest) ([]byte, error) {
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	reqJSON, err := req.CanonicalJSON()
	if err != nil {
		return nil, err
	}

	var rc *hwgc.RequestCollection
	if _, snap, ok, err := s.ckpt.load(key); err == nil && ok {
		if rc, err = hwgc.ResumeCollectRequest(req, snap); err != nil {
			// A stale or corrupt checkpoint must not wedge the key: reclaim
			// the file and fall back to a fresh run.
			rc = nil
			if s.ckpt.remove(key) == nil {
				s.metrics.checkpointsReclaimed.Add(1)
			}
		} else {
			s.metrics.checkpointsResumed.Add(1)
		}
	}
	if rc == nil {
		if rc, err = hwgc.StartCollectRequest(req); err != nil {
			return nil, err
		}
	}

	for {
		done, err := rc.StepCycles(s.opts.CheckpointCycles)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		snap, err := rc.Snapshot()
		if err != nil {
			return nil, err
		}
		if err := s.ckpt.save(key, reqJSON, snap); err != nil {
			return nil, fmt.Errorf("server: saving checkpoint: %w", err)
		}
		s.metrics.checkpointsSaved.Add(1)
		if s.checkpointHook != nil {
			s.checkpointHook(key)
		}
		if s.isDraining() {
			s.metrics.jobsPreempted.Add(1)
			return nil, ErrPreempted
		}
	}

	resp, err := rc.Response()
	if err != nil {
		return nil, err
	}
	s.metrics.ObserveCollect(resp)
	var b bytes.Buffer
	if err := resp.Encode(&b); err != nil {
		return nil, err
	}
	if err := s.ckpt.remove(key); err != nil {
		return nil, fmt.Errorf("server: removing checkpoint: %w", err)
	}
	return b.Bytes(), nil
}

// sweepTemps deletes temp files a crash mid-save left behind, returning how
// many were reclaimed.
func (c *checkpointStore) sweepTemps() int {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.Type().IsRegular() && strings.HasPrefix(e.Name(), ".ckpt-") {
			if os.Remove(filepath.Join(c.dir, e.Name())) == nil {
				n++
			}
		}
	}
	return n
}

// recoverCheckpoints scans the checkpoint directory, garbage-collects what
// cannot be resumed (crash-orphaned temp files, unreadable checkpoints),
// and enqueues one background job per healthy orphaned checkpoint, so work
// preempted by the previous process finishes (and lands in the cache)
// without waiting for the client to retry. A full queue is not an error —
// the remaining checkpoints are still picked up on demand when their
// requests come back.
func (s *Server) recoverCheckpoints() {
	s.metrics.checkpointsReclaimed.Add(int64(s.ckpt.sweepTemps()))
	keys, err := s.ckpt.keys()
	if err != nil {
		return
	}
	for _, key := range keys {
		req, _, ok, err := s.ckpt.load(key)
		if err != nil {
			// Unreadable: it would fail every future resume the same way,
			// so holding on to the file reclaims nothing.
			if s.ckpt.remove(key) == nil {
				s.metrics.checkpointsReclaimed.Add(1)
			}
			continue
		}
		if !ok {
			continue
		}
		j := newJob(context.Background(), key, "collect", func() ([]byte, error) { return s.runCheckpointed(req) })
		if s.queue.TryPush(j) == nil {
			s.metrics.recoveriesEnqueued.Add(1)
		}
	}
}
