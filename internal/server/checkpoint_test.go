package server

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"hwgc"
)

// ckptReq is the request used across the crash/resume tests; search at
// cores 4 runs long enough to cross several small checkpoint intervals.
const ckptReq = `{"Bench":"search","Config":{"Cores":4}}`

// uninterruptedBody computes the byte-exact response the uninterrupted
// serving path would produce for ckptReq.
func uninterruptedBody(t *testing.T) []byte {
	t.Helper()
	req := hwgc.CollectRequest{Bench: "search", Config: hwgc.Config{Cores: 4}}
	body, err := encodeCollect(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestCheckpointPreemptResume is the crash/resume e2e: a server is killed
// (preempted via Shutdown, which is what gcserved's SIGTERM handler calls)
// mid-collection at a checkpoint boundary, a second server on the same
// checkpoint directory serves the same request, and the response must be
// byte-identical to an uninterrupted run.
func TestCheckpointPreemptResume(t *testing.T) {
	dir := t.TempDir()
	want := uninterruptedBody(t)

	// Server 1: preempt at the first checkpoint. The hook runs in the
	// worker goroutine after each save; it triggers Shutdown and waits for
	// the drain flag so the worker's next poll deterministically preempts.
	s1, err := New(Options{Workers: 1, CheckpointDir: dir, CheckpointCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	s1.checkpointHook = func(key string) {
		once.Do(func() {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_ = s1.Shutdown(ctx)
			}()
		})
		<-s1.draining
	}
	s1.Start()
	body, _, err := s1.execute(context.Background(), mustKey(t), "collect", func() ([]byte, error) {
		return s1.runCollect(mustReq(t))
	})
	if err == nil {
		t.Fatalf("preempted job returned a result: %s", body)
	}
	if code, msg := s1.executeStatus("collect", err); code != http.StatusServiceUnavailable || !strings.Contains(msg, "checkpointed") {
		t.Fatalf("preemption mapped to %d %q, want 503 + checkpointed", code, msg)
	}
	if s1.metrics.jobsPreempted.Load() == 0 || s1.metrics.checkpointsSaved.Load() == 0 {
		t.Fatal("preemption metrics not bumped")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one checkpoint on disk, got %v (err %v)", files, err)
	}

	// Server 2: same directory, fresh process. The same request must resume
	// from the checkpoint and produce the uninterrupted bytes.
	s2, ts := newTestServer(t, Options{Workers: 1, CheckpointDir: dir, CheckpointCycles: 1 << 40})
	resp, got := post(t, ts, "/v1/collect", ckptReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed request: status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed response differs from uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if s2.metrics.checkpointsResumed.Load() == 0 {
		t.Fatal("server 2 did not resume from the checkpoint")
	}
	// The finished job must remove its checkpoint.
	if files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(files) != 0 {
		t.Fatalf("checkpoint not removed after completion: %v", files)
	}
}

// TestCheckpointStartupRecovery checks that a restarted server finishes
// orphaned checkpoints in the background and serves the result from cache.
func TestCheckpointStartupRecovery(t *testing.T) {
	dir := t.TempDir()
	want := uninterruptedBody(t)
	key := mustKey(t)

	// Orphan a checkpoint: run a few slices by hand and stop.
	seedCheckpoint(t, dir, 2000)

	s, _ := newTestServer(t, Options{Workers: 1, CheckpointDir: dir, CheckpointCycles: 1 << 40})
	if s.metrics.recoveriesEnqueued.Load() != 1 {
		t.Fatalf("recoveries enqueued = %d, want 1", s.metrics.recoveriesEnqueued.Load())
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if body, ok := s.cache.Get(key); ok {
			if !bytes.Equal(body, want) {
				t.Fatal("recovered response differs from uninterrupted run")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovery job never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCheckpointCorruptFileFallsBack checks that a corrupt checkpoint is
// not fatal: the job restarts from scratch and still answers correctly.
func TestCheckpointCorruptFileFallsBack(t *testing.T) {
	dir := t.TempDir()
	want := uninterruptedBody(t)
	seedCheckpoint(t, dir, 2000)
	files, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(files) != 1 {
		t.Fatalf("seed produced %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-100] ^= 0xff // snapshot CRC breaks
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{Workers: 1, CheckpointDir: dir, CheckpointCycles: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	body, err := s.runCheckpointed(mustReq(t))
	if err != nil {
		t.Fatalf("corrupt checkpoint wedged the job: %v", err)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("fallback response differs from uninterrupted run")
	}
	if s.metrics.checkpointsResumed.Load() != 0 {
		t.Fatal("corrupt checkpoint counted as resumed")
	}
}

// TestCheckpointStartupSweep is the checkpoint-GC satellite: files that can
// never be resumed — crash-orphaned temp files and unreadable checkpoints —
// are deleted by the startup scan and counted as reclaimed, while healthy
// checkpoints survive and recover as before.
func TestCheckpointStartupSweep(t *testing.T) {
	dir := t.TempDir()
	seedCheckpoint(t, dir, 2000) // one healthy checkpoint
	if err := os.WriteFile(filepath.Join(dir, ".ckpt-12345"), []byte("torn temp"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, _ := newTestServer(t, Options{Workers: 1, CheckpointDir: dir, CheckpointCycles: 1 << 40})
	if got := s.metrics.checkpointsReclaimed.Load(); got != 2 {
		t.Fatalf("reclaimed = %d, want 2 (temp + unreadable)", got)
	}
	if s.metrics.recoveriesEnqueued.Load() != 1 {
		t.Fatalf("healthy checkpoint not recovered: %d", s.metrics.recoveriesEnqueued.Load())
	}
	for _, name := range []string{".ckpt-12345", "garbage.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s not deleted (err %v)", name, err)
		}
	}
	// The metric is on /metrics.
	var buf bytes.Buffer
	if err := s.metrics.WritePrometheus(&buf, s.queue, s.cache); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gcserved_checkpoint_files_reclaimed_total 2") {
		t.Error("reclaim metric missing from exposition")
	}
}

// TestCheckpointStoreRoundTrip unit-tests the on-disk framing.
func TestCheckpointStoreRoundTrip(t *testing.T) {
	st := &checkpointStore{dir: t.TempDir()}
	reqJSON := []byte(`{"Bench":"jlisp"}`)
	snap := []byte("not-a-real-snapshot")
	if err := st.save("k1", reqJSON, snap); err != nil {
		t.Fatal(err)
	}
	req, gotSnap, ok, err := st.load("k1")
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if req.Bench != "jlisp" || !bytes.Equal(gotSnap, snap) {
		t.Fatalf("round trip: %+v %q", req, gotSnap)
	}
	if _, _, ok, err := st.load("absent"); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	keys, err := st.keys()
	if err != nil || len(keys) != 1 || keys[0] != "k1" {
		t.Fatalf("keys: %v err=%v", keys, err)
	}
	if err := st.remove("k1"); err != nil {
		t.Fatal(err)
	}
	if err := st.remove("k1"); err != nil {
		t.Fatalf("second remove: %v", err)
	}
	// Truncated header is an error, not a silent miss.
	if err := os.WriteFile(st.path("bad"), []byte("HWGC"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.load("bad"); err == nil {
		t.Fatal("truncated checkpoint loaded without error")
	}
}

// mustReq returns the canonicalized test request.
func mustReq(t *testing.T) hwgc.CollectRequest {
	t.Helper()
	req := hwgc.CollectRequest{Bench: "search", Config: hwgc.Config{Cores: 4}}
	if err := req.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	return req
}

func mustKey(t *testing.T) string {
	t.Helper()
	req := mustReq(t)
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// seedCheckpoint runs the test request for the given number of cycles and
// leaves its checkpoint in dir, simulating a crashed process.
func seedCheckpoint(t *testing.T, dir string, cycles int64) {
	t.Helper()
	req := mustReq(t)
	rc, err := hwgc.StartCollectRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if done, err := rc.StepCycles(cycles); err != nil || done {
		t.Fatalf("seed run: done=%v err=%v", done, err)
	}
	snap, err := rc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	reqJSON, err := req.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	st := &checkpointStore{dir: dir}
	if err := st.save(mustKey(t), reqJSON, snap); err != nil {
		t.Fatal(err)
	}
}
