package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hwgc"
)

// maxBodyBytes bounds request bodies; inline plans are the only large
// payloads and 8 MiB of JSON is already a ~100k-object graph.
const maxBodyBytes = 8 << 20

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...)})
}

// statusRecorder captures the final status code for the request counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint with request/status counting and, when
// observeLatency is set, service-latency observation.
func (s *Server) instrument(path string, observeLatency bool, h func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.Request(path, rec.code)
		if observeLatency {
			s.metrics.Observe(time.Since(start))
		}
	}
}

// decodeJSON strictly decodes the request body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return false
	}
	return true
}

func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "%s requires POST", r.URL.Path)
		return false
	}
	return true
}

// serveJob is the shared serving path of the two POST endpoints: cache
// lookup first (the zero-cost fast path — a hit never touches the queue),
// then bounded admission with backpressure, then waiting under the
// per-request deadline.
func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, key, kind string, run func() ([]byte, error)) {
	if body, ok := s.cache.Get(key); ok {
		s.metrics.cacheHits.Add(1)
		writeResult(w, key, "HIT", body)
		return
	}
	s.metrics.cacheMisses.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.Timeout)
	defer cancel()
	job := newJob(ctx, key, kind, run)
	body, err := s.submit(ctx, job)
	switch {
	case err == nil:
		writeResult(w, key, "MISS", body)
	case errors.Is(err, ErrQueueFull):
		s.metrics.queueFull.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.opts.RetryAfter.Round(time.Second)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "job queue full (depth %d); retry later", s.queue.Cap())
	case errors.Is(err, ErrShuttingDown):
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "request deadline (%s) exceeded while %s", s.opts.Timeout, kind)
	default:
		writeError(w, http.StatusInternalServerError, "%s failed: %v", kind, err)
	}
}

func writeResult(w http.ResponseWriter, key, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("X-Cache-Key", key)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

func (s *Server) handleCollect(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/collect", true, func(w http.ResponseWriter, r *http.Request) {
		if !requirePost(w, r) {
			return
		}
		var req hwgc.CollectRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		key, err := req.Key() // canonicalizes in place
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		if s.opts.MaxScale > 0 && req.Scale > s.opts.MaxScale {
			writeError(w, http.StatusBadRequest, "scale %d exceeds server limit %d", req.Scale, s.opts.MaxScale)
			return
		}
		s.serveJob(w, r, key, "collect", func() ([]byte, error) { return s.runCollect(req) })
	})(w, r)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/sweep", true, func(w http.ResponseWriter, r *http.Request) {
		if !requirePost(w, r) {
			return
		}
		var req hwgc.SweepRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		key, err := req.Key() // canonicalizes in place
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid request: %v", err)
			return
		}
		if s.opts.MaxScale > 0 && req.Scale > s.opts.MaxScale {
			writeError(w, http.StatusBadRequest, "scale %d exceeds server limit %d", req.Scale, s.opts.MaxScale)
			return
		}
		s.serveJob(w, r, key, "sweep", func() ([]byte, error) { return s.runSweep(req) })
	})(w, r)
}

// workloadsBody is the GET /v1/workloads response.
type workloadsBody struct {
	Workloads  []string
	Baselines  []string
	CoreRange  [2]int
	PaperCores []int
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.instrument("/v1/workloads", false, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, "%s requires GET", r.URL.Path)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(workloadsBody{
			Workloads:  hwgc.Workloads(),
			Baselines:  hwgc.Baselines(),
			CoreRange:  [2]int{1, 64},
			PaperCores: hwgc.PaperCoreCounts,
		})
	})(w, r)
}

// healthBody is the GET /healthz response.
type healthBody struct {
	Status     string
	Workers    int
	QueueDepth int
	QueueCap   int
	CacheLen   int
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.instrument("/healthz", false, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(healthBody{
			Status:     "ok",
			Workers:    s.opts.Workers,
			QueueDepth: s.queue.Depth(),
			QueueCap:   s.queue.Cap(),
			CacheLen:   s.cache.Len(),
		})
	})(w, r)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.instrument("/metrics", false, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WritePrometheus(w, s.queue, s.cache)
	})(w, r)
}
